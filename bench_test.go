// Benchmark harness: one benchmark per paper table/figure (regenerating
// the experiment at small scale and reporting its headline metric), the
// ablation benches, and the engine/runner perf baselines. EXPERIMENTS.md
// indexes the experiments and their headline metrics.
//
// Run with: go test -bench=. -benchmem
package main

import (
	"fmt"
	"strings"
	"testing"

	"spybox/internal/arch"
	"spybox/internal/core"
	"spybox/internal/cudart"
	"spybox/internal/expt"
	"spybox/internal/game"
	"spybox/internal/l2cache"
	"spybox/internal/sim"
	"spybox/internal/xrand"
)

// benchParams gives every benchmark iteration a distinct seed so
// repeated iterations measure fresh machines, not cached state.
// Parallel is pinned to 1: the per-figure benches measure serial
// experiment cost, comparable across hosts; BenchmarkRunnerTrials
// measures the fan-out separately.
func benchParams(i int) expt.Params {
	return expt.Params{Seed: 0xb000 + uint64(i), Scale: expt.Small, Parallel: 1}
}

// runExperiment is the shared per-figure bench body.
func runExperiment(b *testing.B, id string, metric string) {
	b.Helper()
	e, ok := expt.Lookup(id)
	if !ok {
		b.Fatalf("no experiment %q", id)
	}
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := e.Run(benchParams(i))
		if err != nil {
			b.Fatal(err)
		}
		acc += res.Metrics[metric]
	}
	// testing.B forbids whitespace in metric units.
	unit := strings.NewReplacer(" ", "_", "+", "p").Replace(metric)
	b.ReportMetric(acc/float64(b.N), unit)
}

func BenchmarkFig4TimingHistogram(b *testing.B) {
	runExperiment(b, "fig4", "remote_boundary")
}

func BenchmarkFig5EvictionValidation(b *testing.B) {
	runExperiment(b, "fig5", "eviction_step_remote")
}

func BenchmarkTableICacheGeometry(b *testing.B) {
	runExperiment(b, "table1", "sets")
}

func BenchmarkFig7SetAlignment(b *testing.B) {
	runExperiment(b, "fig7", "aligned_fraction")
}

func BenchmarkFig9BandwidthErrorRate(b *testing.B) {
	runExperiment(b, "fig9", "best_bandwidth_MBps")
}

func BenchmarkFig10MessageTrace(b *testing.B) {
	runExperiment(b, "fig10", "bit_error_rate")
}

func BenchmarkFig11Memorygrams(b *testing.B) {
	runExperiment(b, "fig11", "total_misses_matmul")
}

func BenchmarkFig12Fingerprint(b *testing.B) {
	runExperiment(b, "fig12", "test_accuracy")
}

func BenchmarkFig13MissesPerSet(b *testing.B) {
	runExperiment(b, "fig13", "total_misses_h512")
}

func BenchmarkTableIIAvgMisses(b *testing.B) {
	runExperiment(b, "table2", "extraction_correct")
}

func BenchmarkFig14MLPMemorygrams(b *testing.B) {
	runExperiment(b, "fig14", "total_misses_h512")
}

func BenchmarkFig15EpochCount(b *testing.B) {
	runExperiment(b, "fig15", "epochs_detected")
}

func BenchmarkSecVINoiseMitigation(b *testing.B) {
	runExperiment(b, "sec6", "error_blocked_pct")
}

func BenchmarkSecVIIDetection(b *testing.B) {
	runExperiment(b, "sec7", "detected_covert channel active")
}

// --- Ablations (see EXPERIMENTS.md) ---

// tinyCfg is the small geometry the ablations attack, so each
// iteration is cheap.
func tinyCfg(policy l2cache.ReplacementPolicy, hash bool) l2cache.Config {
	return l2cache.Config{Sets: 64, Ways: 4, LineSize: 128, PageSize: 4096, Policy: policy, HashIndex: hash}
}

// covertErrorOn builds a covert channel on the given machine config
// and returns the transmission error rate. Discovery failures (the
// point of the randomized-replacement ablation) surface as an error.
func covertErrorOn(cfg l2cache.Config, seed uint64) (float64, error) {
	m := sim.MustNewMachine(sim.Options{Seed: seed, CacheCfg: cfg})
	thr := core.DefaultThresholds()
	trojan, err := core.NewAttacker(m, 0, 0, 24, thr, seed^1)
	if err != nil {
		return 0, err
	}
	spy, err := core.NewAttacker(m, 1, 0, 24, thr, seed^2)
	if err != nil {
		return 0, err
	}
	tg, err := trojan.DiscoverPageGroups(cfg.Ways)
	if err != nil {
		return 0, err
	}
	sg, err := spy.DiscoverPageGroups(cfg.Ways)
	if err != nil {
		return 0, err
	}
	pairs, err := core.AlignChannels(trojan, spy,
		trojan.AllEvictionSets(tg, cfg.Ways), spy.AllEvictionSets(sg, cfg.Ways), 2)
	if err != nil {
		return 0, err
	}
	ch, err := core.NewChannel(trojan, spy, pairs, core.DefaultCovertConfig())
	if err != nil {
		return 0, err
	}
	tx, err := ch.Transmit([]byte("ablation probe message"))
	if err != nil {
		return 0, err
	}
	return tx.ErrorRate(), nil
}

// BenchmarkAblationReplacementPolicy compares the attack under the
// observed LRU policy vs. a randomized-replacement defense: under
// randomization, eviction-set discovery and the channel degrade
// (often failing outright), confirming why deterministic LRU is
// load-bearing for the paper's attack.
func BenchmarkAblationReplacementPolicy(b *testing.B) {
	for _, bc := range []struct {
		name   string
		policy l2cache.ReplacementPolicy
	}{{"LRU", l2cache.LRU}, {"random", l2cache.RandomRepl}} {
		b.Run(bc.name, func(b *testing.B) {
			fails, errSum := 0, 0.0
			for i := 0; i < b.N; i++ {
				e, err := covertErrorOn(tinyCfg(bc.policy, true), 0xab1+uint64(i))
				if err != nil {
					fails++
					continue
				}
				errSum += e
			}
			b.ReportMetric(float64(fails)/float64(b.N), "attack_failures/op")
			if b.N > fails {
				b.ReportMetric(errSum/float64(b.N-fails), "bit_error_rate")
			}
		})
	}
}

// BenchmarkAblationIndexHash measures discovery with and without the
// physical index hash: discovery works either way (the attack never
// assumed the hash's shape), with comparable cost.
func BenchmarkAblationIndexHash(b *testing.B) {
	for _, bc := range []struct {
		name string
		hash bool
	}{{"hashed", true}, {"unhashed", false}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := sim.MustNewMachine(sim.Options{Seed: 0x4a5 + uint64(i), CacheCfg: tinyCfg(l2cache.LRU, bc.hash)})
				// 40 pages over 2 regions: every region gets enough
				// pages for full coverage at any seed.
				a, err := core.NewAttacker(m, 0, 0, 40, core.DefaultThresholds(), uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				groups, err := a.DiscoverPageGroups(4)
				if err != nil {
					b.Fatal(err)
				}
				if got := len(a.AllEvictionSets(groups, 4)); got != 64 {
					b.Fatalf("discovered %d sets, want 64", got)
				}
			}
		})
	}
}

// BenchmarkAblationProbeParallelism compares the faithful sequential
// Algorithm 1 pointer chase against the warp-parallel batched probe
// used in production discovery: same verdicts, very different cost.
func BenchmarkAblationProbeParallelism(b *testing.B) {
	m := sim.MustNewMachine(sim.Options{Seed: 0xfe, CacheCfg: tinyCfg(l2cache.LRU, true)})
	a, err := core.NewAttacker(m, 0, 0, 24, core.DefaultThresholds(), 9)
	if err != nil {
		b.Fatal(err)
	}
	target := a.LineVA(0, 0)
	chain := make([]uint64, a.Pages-1)
	for i := range chain {
		chain[i] = uint64((i + 1) * a.ChunkSize)
	}
	b.Run("sequential-alg1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := a.Algorithm1Chase(target, chain, len(chain)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warp-batched", func(b *testing.B) {
		vas := make([]arch.VA, len(chain))
		for i, off := range chain {
			vas[i] = a.Buf + arch.VA(off)
		}
		for i := 0; i < b.N; i++ {
			err := a.Proc.Launch("bench-trial", 0, func(k *cudart.Kernel) {
				k.TouchCG(target)
				k.ProbeSet(vas)
				k.TouchCG(target)
			})
			if err != nil {
				b.Fatal(err)
			}
			m.Run()
		}
	})
}

// BenchmarkAblationContentionNoise sweeps the port-contention noise
// coefficient and reports the covert channel error rate: the
// mechanism behind Fig. 9's error curve.
func BenchmarkAblationContentionNoise(b *testing.B) {
	for _, sigma := range []float64{7, 28, 112, 448} {
		b.Run(fmt.Sprintf("sigma%.0f", sigma), func(b *testing.B) {
			var errSum float64
			for i := 0; i < b.N; i++ {
				m := sim.MustNewMachine(sim.Options{
					Seed: 0xc0 + uint64(i), CacheCfg: tinyCfg(l2cache.LRU, true),
					ContentionSigmaPer: sigma,
				})
				thr := core.DefaultThresholds()
				trojan, _ := core.NewAttacker(m, 0, 0, 24, thr, 1)
				spy, _ := core.NewAttacker(m, 1, 0, 24, thr, 2)
				tg, err := trojan.DiscoverPageGroups(4)
				if err != nil {
					b.Fatal(err)
				}
				sg, err := spy.DiscoverPageGroups(4)
				if err != nil {
					b.Fatal(err)
				}
				pairs, err := core.AlignChannels(trojan, spy,
					trojan.AllEvictionSets(tg, 4), spy.AllEvictionSets(sg, 4), 2)
				if err != nil {
					b.Fatal(err)
				}
				ch, _ := core.NewChannel(trojan, spy, pairs, core.DefaultCovertConfig())
				tx, err := ch.Transmit([]byte("noise sweep"))
				if err != nil {
					b.Fatal(err)
				}
				errSum += tx.ErrorRate()
			}
			b.ReportMetric(errSum/float64(b.N), "bit_error_rate")
		})
	}
}

// --- Engine and runner perf baselines ---

// BenchmarkSchedulerEvents measures the discrete-event engine's hot
// path — park, heap push/pop, targeted wakeup, service — with varying
// numbers of live workers contending for the schedule. ns/op is the
// cost of one simulated shared-hardware event; events/s is the
// engine's throughput. This is the baseline the O(log n) parked-worker
// heap is held to.
func BenchmarkSchedulerEvents(b *testing.B) {
	for _, nw := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("workers%d", nw), func(b *testing.B) {
			m := sim.MustNewMachine(sim.Options{Seed: 0x5c4ed, NoiseOff: true})
			per := b.N/nw + 1
			b.ReportAllocs()
			b.ResetTimer()
			for w := 0; w < nw; w++ {
				base := uint64(0x100000 + w*0x40000)
				if _, err := m.Spawn(0, "bench", 0, func(wk *sim.Worker) {
					for i := 0; i < per; i++ {
						// Cycle over 32 lines: mostly L2 hits, so the
						// benchmark times the engine, not the HBM model.
						wk.TouchCG(arch.MakePA(0, base+uint64(i%32)*arch.CacheLineSize))
					}
				}); err != nil {
					b.Fatal(err)
				}
			}
			m.Run()
			b.ReportMetric(float64(nw*per)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkRunnerTrials measures trial fan-out overhead and scaling:
// eight identical trials per op, serially and over the worker pool.
// Machines come from the runner's per-worker pool (Params.MachineFor),
// so after the first trial each op is a Reset + run rather than a full
// build — the trial-path hot loop experiments actually ride. trials/s
// is the headline; on a multi-core host the parallel variant should
// approach serial * min(8, cores).
func BenchmarkRunnerTrials(b *testing.B) {
	const trials = 8
	body := func(t expt.Trial) (int, error) {
		m, err := t.Params.MachineFor(sim.Options{Seed: t.Params.Seed, NoiseOff: true})
		if err != nil {
			return 0, err
		}
		touches := 0
		if _, err := m.Spawn(0, "trial", 0, func(wk *sim.Worker) {
			for i := 0; i < 2000; i++ {
				wk.TouchCG(arch.MakePA(0, uint64(0x200000+(i%64)*arch.CacheLineSize)))
				touches++
			}
		}); err != nil {
			return 0, err
		}
		m.Run()
		return touches, nil
	}
	for _, parallel := range []int{1, 0} { // 0 = GOMAXPROCS
		name := fmt.Sprintf("parallel%d", parallel)
		if parallel == 0 {
			name = "parallelMax"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := expt.Params{Seed: 0xb417 + uint64(i), Scale: expt.Small, Parallel: parallel}
				out, err := expt.RunTrials(p, trials, body)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != trials {
					b.Fatalf("got %d trial results", len(out))
				}
			}
			b.ReportMetric(float64(trials*b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkMachineReset compares building a machine from scratch with
// rewinding one in place — the per-trial cost the MachinePool turns
// every repeat build into. The reset path's allocs/op should be 0.
func BenchmarkMachineReset(b *testing.B) {
	b.Run("new", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sim.MustNewMachine(sim.Options{Seed: uint64(i), NoiseOff: true})
		}
	})
	b.Run("reset", func(b *testing.B) {
		m := sim.MustNewMachine(sim.Options{Seed: 0, NoiseOff: true})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset(uint64(i))
		}
	})
}

// BenchmarkProbeAlloc measures the steady-state warp-probe event with
// -benchmem as the zero-allocation gate: the embedded request, the
// grow-only lats/hits scratch, and the slice-based contention tracker
// together must keep the per-event alloc count at 0 (the worker's
// one-time spawn and first-probe scratch growth amortize out over N).
func BenchmarkProbeAlloc(b *testing.B) {
	m := sim.MustNewMachine(sim.Options{Seed: 0xa110c, NoiseOff: true})
	pas := make([]arch.PA, 16)
	for i := range pas {
		pas[i] = arch.MakePA(0, uint64(0x300000+i*arch.CacheLineSize))
	}
	if _, err := m.Spawn(0, "probe", 0, func(w *sim.Worker) {
		for i := 0; i < b.N; i++ {
			w.ProbeLines(pas)
		}
	}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	m.Run()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "probes/s")
}

// BenchmarkExtMIGDefense regenerates the MIG-partitioning extension
// experiment: the attack must align on the stock box and fail under
// partitioning.
func BenchmarkExtMIGDefense(b *testing.B) {
	runExperiment(b, "mig", "mig_aligned")
}

// BenchmarkExtAllPairs regenerates the every-NVLink-pair timing sweep.
func BenchmarkExtAllPairs(b *testing.B) {
	runExperiment(b, "pairs", "connected_pairs")
}

// BenchmarkExtMultiGPU regenerates the additional-spy-GPUs extension.
func BenchmarkExtMultiGPU(b *testing.B) {
	runExperiment(b, "multigpu", "bw_2_4+4 sets")
}

// BenchmarkGameRound measures the arms-race engine's per-round
// decision cost — both policies plus trace recording — with -benchmem
// as the zero-allocation gate: policies are inline value state and
// the trace is preallocated, so a match of any length costs exactly
// one engine allocation up front.
func BenchmarkGameRound(b *testing.B) {
	const rounds = 64
	eng, err := game.New(game.Config{Rounds: rounds, Planes: 6, Aggressiveness: 0.75}, xrand.New(0x9a3e))
	if err != nil {
		b.Fatal(err)
	}
	obs := game.Observation{
		CovertRate: 9000, Threshold: 2000, ErrPct: 30,
		TxPlane: 1, LocalPlane: 1, BenignPlane: 5, ThrottledPlane: -1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%rounds == 0 {
			eng.Reset()
		}
		eng.Step(obs)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
}
