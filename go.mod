module spybox

go 1.21
