package main

import (
	"os/exec"
	"sort"
	"strings"
	"testing"
)

// detExemptions lists every spybox-internal dependency of the
// experiment runner that is deliberately OUTSIDE spylint's detrand
// deterministic-package set, each with the reason. The meta-test below
// pins the three-way split: every internal package reachable from
// internal/expt (the package the golden byte-identity tests execute)
// is either in spylint's list or in this map — so adding a new
// simulation package forces a decision, and a stale spylint list fails
// loudly instead of silently checking nothing.
var detExemptions = map[string]string{
	"spybox/internal/arch":     "constants and pure value types; nothing to perturb",
	"spybox/internal/xrand":    "the randomness source itself; seeded determinism is its own contract, pinned by its statistical tests",
	"spybox/internal/cudart":   "thin veneer over sim workers; determinism is inherited, and its scratch contract is what scratchalias checks",
	"spybox/internal/victim":   "victim programs execute on sim workers; their determinism is the simulator's",
	"spybox/internal/plot":     "renders reports after trials complete; droppederr covers it instead",
	"spybox/pkg/spybox/report": "result container shared with the service layer; droppederr covers it instead",
}

// TestDetPackagesMatchGoldenCoverage cross-checks spylint's determinism
// scope against the real import graph of the golden-tested experiments.
func TestDetPackagesMatchGoldenCoverage(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}

	// spylint's list, from the tool itself (not a copy that could drift).
	out, err := exec.Command("go", "run", "-C", "scripts/spylint", ".", "-det-packages").Output()
	if err != nil {
		t.Fatalf("go run scripts/spylint -det-packages: %v", err)
	}
	detList := strings.Fields(string(out))
	if len(detList) == 0 {
		t.Fatal("spylint -det-packages printed nothing")
	}
	det := map[string]bool{}
	for _, p := range detList {
		det[p] = true
	}

	// The packages the golden byte-identity tests actually execute:
	// everything internal/expt (their entry point) depends on.
	out, err = exec.Command("go", "list", "-deps", "./internal/expt").Output()
	if err != nil {
		t.Fatalf("go list -deps ./internal/expt: %v", err)
	}
	deps := map[string]bool{}
	for _, p := range strings.Fields(string(out)) {
		if strings.HasPrefix(p, "spybox/") {
			deps[p] = true
		}
	}

	var problems []string
	for p := range det {
		if !deps[p] {
			problems = append(problems, p+": in spylint's deterministic set but not reachable from internal/expt (stale entry?)")
		}
		if detExemptions[p] != "" {
			problems = append(problems, p+": listed both deterministic and exempt")
		}
	}
	for p := range deps {
		if !det[p] && detExemptions[p] == "" {
			problems = append(problems, p+": reachable from the golden-tested experiments but neither in spylint's deterministic set nor exempted here — decide which and record it")
		}
	}
	for p := range detExemptions {
		if !deps[p] {
			problems = append(problems, p+": exempted but no longer a dependency of internal/expt (stale exemption)")
		}
	}
	sort.Strings(problems)
	for _, p := range problems {
		t.Error(p)
	}
}
