// The batch subcommand: submit a sweep — experiments × scales ×
// seeds — in one request, which the server expands into one job per
// combination (POST /v1/jobs:batch), then optionally wait for the
// whole batch. Like submit/status/wait, it is a pure client of the
// HTTP API.

package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"spybox/pkg/spybox"
	"spybox/pkg/spybox/service"
)

// splitSeeds parses a comma-separated seed list ("1,2,3").
func splitSeeds(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("batch: bad seed %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// splitList splits a comma-separated string list, dropping blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func batchCmd(args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "spybox serve address")
	seeds := fs.String("seeds", "", "comma-separated seed list (empty means the server default seed)")
	scales := fs.String("scales", "", "comma-separated scale list: "+strings.Join(spybox.ScaleNames(), ", ")+" (empty means default)")
	archName := fs.String("arch", "", "architecture profile to simulate (empty means the paper's machine)")
	parallel := fs.Int("parallel", 0, "per-job trial worker pool (0 means every core; results are identical at any value)")
	client := fs.String("client", "", "fairness label: batches sharing it share one round-robin scheduling slot")
	priority := fs.Int("priority", 0, "claim priority for every job in the batch (default 0, the bulk tier)")
	wait := fs.Bool("wait", false, "wait until every job in the batch is terminal, reporting progress")
	asJSON := fs.Bool("json", false, "emit the BatchStatus as JSON")
	if len(args) == 0 {
		return fmt.Errorf("batch: missing experiment ID (try 'spybox list' or 'all')")
	}
	ids := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	seedList, err := splitSeeds(*seeds)
	if err != nil {
		return err
	}
	cli := service.NewClient(*addr)
	st, err := cli.SubmitBatch(service.BatchSpec{
		Experiments: splitIDs(ids),
		Scales:      splitList(*scales),
		Seeds:       seedList,
		Arch:        *archName,
		Parallel:    *parallel,
		Client:      *client,
		Priority:    *priority,
	})
	if err != nil {
		return err
	}
	if !*wait {
		if *asJSON {
			return printJSON(st)
		}
		fmt.Printf("%s: %d jobs (%s..%s)\n", st.ID, st.Total, st.Jobs[0], st.Jobs[len(st.Jobs)-1])
		return nil
	}
	// A SIGINT stops the waiting, not the batch — the jobs keep
	// draining server-side; cancel them individually if that's what
	// you want.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	st, err = cli.WaitBatch(ctx, st.ID)
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(st)
	}
	fmt.Printf("%s: %d jobs — %d done, %d failed, %d cancelled\n",
		st.ID, st.Total, st.Done, st.Failed, st.Cancelled)
	if st.Failed > 0 || st.Cancelled > 0 {
		return fmt.Errorf("batch %s finished with %d failed and %d cancelled jobs", st.ID, st.Failed, st.Cancelled)
	}
	return nil
}

func batchStatusCmd(args []string) error {
	fs := flag.NewFlagSet("batch-status", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "spybox serve address")
	asJSON := fs.Bool("json", false, "emit the BatchStatus as JSON")
	if len(args) == 0 {
		return fmt.Errorf("batch-status: missing batch ID (as printed by 'spybox batch')")
	}
	id := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	st, err := service.NewClient(*addr).Batch(id)
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(st)
	}
	fmt.Printf("%s: %d jobs — %d queued, %d running, %d done, %d failed, %d cancelled\n",
		st.ID, st.Total, st.Queued, st.Running, st.Done, st.Failed, st.Cancelled)
	return nil
}
