// Command spybox regenerates the paper's tables and figures on a
// simulated multi-GPU box (the paper's DGX-1 by default; see -arch).
// It is a thin client of the public pkg/spybox library API — anything
// it does, external programs can do too.
//
// Usage:
//
//	spybox list [-json]
//	spybox run <id>[,<id>...]|all [-seed N] [-scale SCALE] [-arch PROFILE]
//	           [-parallel N] [-format text|json] [-out DIR] [-progress]
//	spybox serve [-addr HOST:PORT] [-store DIR] [-workers N] [-queue N]
//	           [-owner NAME] [-lease DUR] [-poll DUR] [-compact BYTES]
//	spybox submit <id>[,<id>...]|all [-addr] [-seed N] [-scale SCALE] [-arch P]
//	           [-parallel N] [-wait [-format text|json] [-progress]]
//	spybox batch <id>[,<id>...]|all [-addr] [-seeds N,N,...] [-scales S,S,...]
//	           [-arch P] [-parallel N] [-client NAME] [-wait] [-json]
//	spybox batch-status <batch> [-addr] [-json]
//	spybox status <job> [-addr] [-json]
//	spybox wait <job> [-addr] [-format text|json] [-progress]
//
// run executes experiments in this process. With -format text (the
// default) each experiment prints its report to stdout with its wall
// time; -format json emits one schema-versioned JSON document for the
// whole run instead. A SIGINT cancels the run at the next trial
// boundary: completed experiments are kept (and still encoded in JSON
// mode) and the exit status is non-zero.
//
// serve boots the job service (pkg/spybox/service) over HTTP; submit,
// status, and wait are pure HTTP clients of it — duplicate
// submissions are answered from the server's result cache, and a
// job's report/v1 output is byte-identical to `spybox run` with the
// same seed, scale, and arch. See README.md in this directory for the
// full subcommand and flag reference.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"spybox/pkg/spybox"
	"spybox/pkg/spybox/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		if err := listCmd(os.Args[2:]); err != nil {
			fail(err)
		}
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fail(err)
		}
	case "serve":
		if err := serveCmd(os.Args[2:]); err != nil {
			fail(err)
		}
	case "submit":
		if err := submitCmd(os.Args[2:]); err != nil {
			fail(err)
		}
	case "batch":
		if err := batchCmd(os.Args[2:]); err != nil {
			fail(err)
		}
	case "batch-status":
		if err := batchStatusCmd(os.Args[2:]); err != nil {
			fail(err)
		}
	case "status":
		if err := statusCmd(os.Args[2:]); err != nil {
			fail(err)
		}
	case "wait":
		if err := waitCmd(os.Args[2:]); err != nil {
			fail(err)
		}
	default:
		usage()
		os.Exit(2)
	}
}

// fail prints one "spybox:"-prefixed line and exits; library errors
// already carry the prefix, which would otherwise double up.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "spybox:", strings.TrimPrefix(err.Error(), "spybox: "))
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  spybox list [-json]
  spybox run <id>[,<id>...]|all [-seed N] [-scale `+strings.Join(spybox.ScaleNames(), "|")+`] [-arch PROFILE] [-parallel N] [-format text|json] [-out DIR] [-progress]
  spybox serve [-addr HOST:PORT] [-store DIR] [-workers N] [-queue N] [-drain DUR] [-owner NAME] [-lease DUR] [-poll DUR] [-compact BYTES] [-batch-limit N]
  spybox submit <id>[,<id>...]|all [-addr HOST:PORT] [-seed N] [-scale SCALE] [-arch PROFILE] [-parallel N] [-wait [-format text|json] [-progress]]
  spybox batch <id>[,<id>...]|all [-addr HOST:PORT] [-seeds N,N,...] [-scales S,S,...] [-arch PROFILE] [-parallel N] [-client NAME] [-wait] [-json]
  spybox batch-status <batch> [-addr HOST:PORT] [-json]
  spybox status <job> [-addr HOST:PORT] [-json]
  spybox wait <job> [-addr HOST:PORT] [-format text|json] [-progress]`)
}

// printJSON writes one indented JSON value to stdout.
func printJSON(v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(b))
	return nil
}

func listCmd(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the experiment index as JSON (ID, title, trial decomposition, headline metric keys)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	infos := spybox.Experiments()
	if *asJSON {
		b, err := json.MarshalIndent(infos, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	for _, e := range infos {
		fmt.Printf("%-8s %s\n", e.ID, e.Title)
	}
	return nil
}

// selectIDs resolves a comma-separated ID list (or "all") to
// experiment IDs, validated and deduplicated in the order given.
// Validation happens entirely up front: every unknown ID is reported
// in one error alongside the valid names, before any trial starts.
func selectIDs(ids string) ([]string, error) {
	if ids == "all" {
		return spybox.ExpandIDs()
	}
	var todo []string
	for _, id := range strings.Split(ids, ",") {
		if id = strings.TrimSpace(id); id != "" {
			todo = append(todo, id)
		}
	}
	if len(todo) == 0 {
		return nil, fmt.Errorf("no experiment IDs in %q", ids)
	}
	return spybox.ExpandIDs(todo...)
}

// progressEvents prints the session's event stream to stderr, with
// the run clock on every line and the observed completion rate on
// trial finishes (trials complete out of order under -parallel, so
// the rate counts completions rather than trusting the index; the
// denominator is time since the experiment started, not since the
// whole run did, so later experiments' rates stay honest).
type progressEvents struct {
	trialsDone int
	expStart   time.Duration // run clock when the current experiment began
}

func (p *progressEvents) print(ev spybox.Event) {
	elapsed := ev.Elapsed.Seconds()
	switch ev.Kind {
	case spybox.ExperimentStart:
		p.trialsDone = 0
		p.expStart = ev.Elapsed
		fmt.Fprintf(os.Stderr, "spybox: %s: start — %s\n", ev.Experiment, ev.Title)
	case spybox.ExperimentDone:
		if ev.Err != nil {
			fmt.Fprintf(os.Stderr, "spybox: %s: failed after %.1fs: %v\n", ev.Experiment, elapsed, ev.Err)
		} else {
			fmt.Fprintf(os.Stderr, "spybox: %s: done in %.1fs\n", ev.Experiment, elapsed)
		}
	case spybox.TrialStart:
		fmt.Fprintf(os.Stderr, "spybox: %s: trial %d/%d start [%.1fs]\n", ev.Experiment, ev.Trial+1, ev.Trials, elapsed)
	case spybox.TrialDone:
		p.trialsDone++
		rate := ""
		if expElapsed := (ev.Elapsed - p.expStart).Seconds(); expElapsed > 0 {
			rate = fmt.Sprintf(", %.1f trials/s", float64(p.trialsDone)/expElapsed)
		}
		if ev.Err != nil {
			fmt.Fprintf(os.Stderr, "spybox: %s: trial %d/%d failed [%.1fs%s]: %v\n", ev.Experiment, ev.Trial+1, ev.Trials, elapsed, rate, ev.Err)
		} else {
			fmt.Fprintf(os.Stderr, "spybox: %s: trial %d/%d done [%.1fs%s]\n", ev.Experiment, ev.Trial+1, ev.Trials, elapsed, rate)
		}
	}
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed := fs.Uint64("seed", spybox.DefaultSeed, "experiment seed (results are deterministic per seed)")
	scaleStr := fs.String("scale", "default", "experiment scale: "+strings.Join(spybox.ScaleNames(), ", "))
	archName := fs.String("arch", "", "architecture profile to simulate: "+strings.Join(spybox.ProfileNames(), ", ")+
		" (default p100-dgx1, the paper's machine)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"worker pool size for trial-decomposed experiments (results are identical at any value)")
	format := fs.String("format", "text", "output format: text (human reports) or json (one schema-versioned document)")
	outDir := fs.String("out", "", "directory for CSV chart data and artifacts (optional)")
	progress := fs.Bool("progress", false, "print per-experiment and per-trial progress to stderr")
	if len(args) == 0 {
		return fmt.Errorf("run: missing experiment ID (try 'spybox list' or 'all')")
	}
	ids := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	scale, err := spybox.ParseScale(*scaleStr)
	if err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("run: -parallel must be >= 1 (got %d)", *parallel)
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("run: unknown format %q (text|json)", *format)
	}
	cfg := spybox.Config{Seed: *seed, Scale: scale, Parallel: *parallel, Arch: *archName}
	if *progress {
		cfg.Events = (&progressEvents{}).print
	}
	sess, err := spybox.Open(cfg)
	if err != nil {
		return err
	}
	todo, err := selectIDs(ids)
	if err != nil {
		return err
	}

	// A SIGINT (or SIGTERM) cancels the run at the next trial
	// boundary instead of killing in-flight work on the floor. The
	// first signal only cancels the context; restoring the default
	// disposition right after means a second signal kills the process
	// the old-fashioned way (an uncancellable trial can't trap the
	// user).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	var results []*spybox.Result
	var runErr error
	total := time.Now()
	for _, id := range todo {
		start := time.Now()
		res, err := sess.Run(ctx, id)
		results = append(results, res...)
		if err != nil {
			runErr = err
			break
		}
		if *format == "text" {
			if err := res[0].Print(os.Stdout); err != nil {
				return err
			}
			fmt.Printf("(%s completed in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
		if err := writeOutputs(*outDir, res[0], *format == "text"); err != nil {
			return err
		}
	}
	if *format == "text" && runErr == nil && len(todo) > 1 {
		fmt.Printf("(%d experiments completed in %.1fs, -parallel %d)\n",
			len(todo), time.Since(total).Seconds(), *parallel)
	}
	if *format == "json" {
		// The document still carries every completed result when the
		// run was interrupted: partial output is labelled, not lost.
		if err := report.Encode(os.Stdout, results...); err != nil {
			return err
		}
	}
	var interrupted *spybox.InterruptedError
	if errors.As(runErr, &interrupted) {
		return fmt.Errorf("run interrupted after %d/%d experiments: %v",
			len(results), len(todo), interrupted.Cause)
	}
	return runErr
}

// writeOutputs persists a result's chart data and binary artifacts
// under dir (no-op when dir is empty). Notes print only in text mode
// so JSON output stays a single well-formed document on stdout.
func writeOutputs(dir string, res *spybox.Result, notes bool) error {
	if dir == "" {
		return nil
	}
	if len(res.Series) > 0 {
		if err := writeCSV(dir, res, notes); err != nil {
			return err
		}
	}
	// Sorted order: map iteration would shuffle the output between
	// otherwise identical runs.
	names := make([]string, 0, len(res.Artifacts))
	for name := range res.Artifacts {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	for _, name := range names {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, res.Artifacts[name], 0o644); err != nil {
			return err
		}
		if notes {
			fmt.Printf("(artifact written to %s)\n", path)
		}
	}
	return nil
}

func writeCSV(dir string, res *spybox.Result, notes bool) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, res.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := report.CSV(f, res.Series); err != nil {
		f.Close()
		return err
	}
	// A short write can surface only at close (full disk); swallowing
	// it would print success over a truncated CSV.
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if notes {
		fmt.Printf("(chart data written to %s)\n\n", path)
	}
	return nil
}
