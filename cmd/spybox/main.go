// Command spybox regenerates the paper's tables and figures on the
// simulated DGX-1.
//
// Usage:
//
//	spybox list
//	spybox run <experiment>|all [-seed N] [-scale small|default|paper] [-out DIR]
//
// Each experiment prints its report to stdout; with -out, chart data
// is also written as CSV into DIR.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"spybox/internal/expt"
	"spybox/internal/plot"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range expt.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "spybox:", err)
			os.Exit(1)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  spybox list
  spybox run <experiment>|all [-seed N] [-scale small|default|paper] [-out DIR]`)
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed := fs.Uint64("seed", 20230612, "experiment seed (results are deterministic per seed)")
	scaleStr := fs.String("scale", "default", "experiment scale: small, default, or paper")
	outDir := fs.String("out", "", "directory for CSV chart data (optional)")
	if len(args) == 0 {
		return fmt.Errorf("run: missing experiment ID (try 'spybox list' or 'all')")
	}
	id := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	scale, err := expt.ParseScale(*scaleStr)
	if err != nil {
		return err
	}
	params := expt.Params{Seed: *seed, Scale: scale}

	var todo []expt.Experiment
	if id == "all" {
		todo = expt.Registry()
	} else {
		e, ok := expt.Lookup(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try 'spybox list')", id)
		}
		todo = []expt.Experiment{e}
	}
	for _, e := range todo {
		start := time.Now()
		res, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		res.Print(os.Stdout)
		fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		if *outDir != "" {
			if len(res.Series) > 0 {
				if err := writeCSV(*outDir, res); err != nil {
					return err
				}
			}
			for name, data := range res.Artifacts {
				if err := os.MkdirAll(*outDir, 0o755); err != nil {
					return err
				}
				path := filepath.Join(*outDir, name)
				if err := os.WriteFile(path, data, 0o644); err != nil {
					return err
				}
				fmt.Printf("(artifact written to %s)\n", path)
			}
		}
	}
	return nil
}

func writeCSV(dir string, res *expt.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, res.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := plot.CSV(f, res.Series); err != nil {
		return err
	}
	fmt.Printf("(chart data written to %s)\n\n", path)
	return nil
}
