// Command spybox regenerates the paper's tables and figures on a
// simulated multi-GPU box (the paper's DGX-1 by default; see -arch).
//
// Usage:
//
//	spybox list
//	spybox run <id>[,<id>...]|all [-seed N] [-scale small|default|paper] [-arch PROFILE] [-parallel N] [-out DIR]
//
// Each experiment prints its report to stdout with its wall time; with
// -out, chart data is also written as CSV into DIR. See README.md in
// this directory for the full flag reference.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"spybox/internal/arch"
	"spybox/internal/expt"
	"spybox/internal/plot"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range expt.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case "run":
		if err := runCmd(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "spybox:", err)
			os.Exit(1)
		}
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  spybox list
  spybox run <id>[,<id>...]|all [-seed N] [-scale small|default|paper] [-arch PROFILE] [-parallel N] [-out DIR]`)
}

// selectExperiments resolves a comma-separated ID list (or "all") to
// registry entries, in the order given.
func selectExperiments(ids string) ([]expt.Experiment, error) {
	if ids == "all" {
		return expt.Registry(), nil
	}
	var todo []expt.Experiment
	seen := map[string]bool{}
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			continue
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		e, ok := expt.Lookup(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (try 'spybox list')", id)
		}
		todo = append(todo, e)
	}
	if len(todo) == 0 {
		return nil, fmt.Errorf("no experiment IDs in %q", ids)
	}
	return todo, nil
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seed := fs.Uint64("seed", 20230612, "experiment seed (results are deterministic per seed)")
	scaleStr := fs.String("scale", "default", "experiment scale: small, default, or paper")
	archName := fs.String("arch", "", "architecture profile to simulate: "+strings.Join(arch.ProfileNames(), ", ")+
		" (default p100-dgx1, the paper's machine)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"worker pool size for trial-decomposed experiments (results are identical at any value)")
	outDir := fs.String("out", "", "directory for CSV chart data (optional)")
	if len(args) == 0 {
		return fmt.Errorf("run: missing experiment ID (try 'spybox list' or 'all')")
	}
	ids := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	scale, err := expt.ParseScale(*scaleStr)
	if err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("run: -parallel must be >= 1 (got %d)", *parallel)
	}
	params := expt.Params{Seed: *seed, Scale: scale, Parallel: *parallel, Arch: *archName}
	if _, err := params.ArchProfile(); err != nil {
		return err
	}

	todo, err := selectExperiments(ids)
	if err != nil {
		return err
	}
	total := time.Now()
	for _, e := range todo {
		start := time.Now()
		res, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		res.Print(os.Stdout)
		fmt.Printf("(%s completed in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		if *outDir != "" {
			if len(res.Series) > 0 {
				if err := writeCSV(*outDir, res); err != nil {
					return err
				}
			}
			// Sorted order: map iteration would shuffle the output
			// between otherwise identical runs.
			names := make([]string, 0, len(res.Artifacts))
			for name := range res.Artifacts {
				names = append(names, name)
			}
			sort.Strings(names)
			if len(names) > 0 {
				if err := os.MkdirAll(*outDir, 0o755); err != nil {
					return err
				}
			}
			for _, name := range names {
				path := filepath.Join(*outDir, name)
				if err := os.WriteFile(path, res.Artifacts[name], 0o644); err != nil {
					return err
				}
				fmt.Printf("(artifact written to %s)\n", path)
			}
		}
	}
	if len(todo) > 1 {
		fmt.Printf("(%d experiments completed in %.1fs, -parallel %d)\n",
			len(todo), time.Since(total).Seconds(), *parallel)
	}
	return nil
}

func writeCSV(dir string, res *expt.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, res.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := plot.CSV(f, res.Series); err != nil {
		f.Close()
		return err
	}
	// A short write can surface only at close (full disk); swallowing
	// it would print success over a truncated CSV.
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	fmt.Printf("(chart data written to %s)\n\n", path)
	return nil
}
