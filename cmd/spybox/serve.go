// The serve subcommand: boot the job service over HTTP. The actual
// listen address is printed on stdout (so `-addr 127.0.0.1:0` works
// in scripts), and a SIGINT/SIGTERM drains rather than kills — running
// jobs stop at their next trial boundary and persist the results
// completed so far; queued jobs stay queued in the store (give the
// server `-store DIR` and they survive the restart).
//
// -store names a directory, and any number of serve processes may
// point at the same one: they share its append-only job log, claim
// jobs under leases, and drain one queue as a fleet. A process that
// dies mid-job stops renewing its lease, and a peer reclaims the job
// once the lease expires (-lease bounds how long that takes).

package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"spybox/pkg/spybox/service"
)

func serveCmd(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use port 0 to pick a free port; the chosen one is printed)")
	storeDir := fs.String("store", "", "job store directory, shareable by several serve processes (default: in-memory only)")
	owner := fs.String("owner", "", "lease owner name in a shared store (default: hostname-pid)")
	lease := fs.Duration("lease", service.DefaultLeaseTTL, "job lease TTL: how long a crashed process's jobs stay stuck before a peer reclaims them")
	poll := fs.Duration("poll", service.DefaultPoll, "how often idle workers re-check a shared store for peers' submissions")
	compact := fs.Int64("compact", service.DefaultCompactBytes, "job log size in bytes that triggers snapshot compaction")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "how many jobs run concurrently")
	queueDepth := fs.Int("queue", 256, "how many jobs may wait before submissions are refused")
	batchLimit := fs.Int("batch-limit", service.DefaultBatchLimit, "how many jobs one POST /v1/jobs:batch sweep may expand to")
	drain := fs.Duration("drain", 60*time.Second, "how long shutdown waits for in-flight jobs to persist partial results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var store service.Store
	if *storeDir != "" {
		logStore, err := service.OpenLogStore(*storeDir, service.WithCompactBytes(*compact))
		if err != nil {
			return err
		}
		defer logStore.Close()
		store = logStore
	}
	svc, err := service.New(service.Options{
		Store: store, Workers: *workers, QueueDepth: *queueDepth,
		Owner: *owner, LeaseTTL: *lease, Poll: *poll, BatchLimit: *batchLimit,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("spybox: serving on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: service.NewHandler(svc)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		// Restore default signal disposition so a second signal kills
		// the process the old-fashioned way, then drain: cancel
		// running jobs (they stop at the next trial boundary and
		// persist partial results) and wait for the workers.
		stop()
		fmt.Fprintln(os.Stderr, "spybox: draining — in-flight jobs stop at the next trial boundary")
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		drainErr := svc.Close(drainCtx)
		// Closed subscriber streams have ended the running jobs' SSE
		// handlers; give idle connections a moment, then force-close
		// whatever is left (e.g. watchers of still-queued jobs).
		shutCtx, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel2()
		if err := srv.Shutdown(shutCtx); err != nil {
			_ = srv.Close()
		}
		return drainErr
	}
}
