// The client-side subcommands — submit, status, wait — are built
// purely on service.Client (the HTTP client of a `spybox serve`
// process). Nothing here touches the library's Session directly: if a
// capability is missing from the HTTP API, these commands can't paper
// over it, which is the point.

package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"spybox/pkg/spybox"
	"spybox/pkg/spybox/service"
)

// splitIDs turns the CLI's comma-separated experiment selection into
// a JobSpec list: "all" (or empty) means every experiment, spelled as
// an empty list so the server expands it. Validation is deliberately
// left to the server — these commands prove the HTTP API is enough.
func splitIDs(ids string) []string {
	if ids == "all" {
		return nil
	}
	var out []string
	for _, id := range strings.Split(ids, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

func submitCmd(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "spybox serve address")
	seed := fs.Uint64("seed", 0, "experiment seed (0 means the server default, "+fmt.Sprint(spybox.DefaultSeed)+")")
	scaleStr := fs.String("scale", "", "experiment scale: "+strings.Join(spybox.ScaleNames(), ", ")+" (empty means default)")
	archName := fs.String("arch", "", "architecture profile to simulate (empty means the paper's machine)")
	parallel := fs.Int("parallel", 0, "per-job trial worker pool (0 means every core; results are identical at any value)")
	priority := fs.Int("priority", 0, "claim priority: higher jumps ahead of queued lower-priority work (default 0, the bulk tier)")
	wait := fs.Bool("wait", false, "wait for the job and print its results (like 'spybox wait')")
	format := fs.String("format", "text", "with -wait: text (human reports) or json (the report/v1 document)")
	progress := fs.Bool("progress", false, "with -wait: stream the job's progress events to stderr")
	if len(args) == 0 {
		return fmt.Errorf("submit: missing experiment ID (try 'spybox list' or 'all')")
	}
	ids := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("submit: unknown format %q (text|json)", *format)
	}
	cli := service.NewClient(*addr)
	id, err := cli.Submit(spybox.JobSpec{
		Experiments: splitIDs(ids), Seed: *seed, Scale: *scaleStr, Arch: *archName, Parallel: *parallel,
		Priority: *priority,
	})
	if err != nil {
		return err
	}
	if !*wait {
		fmt.Println(id)
		return nil
	}
	return waitAndPrint(cli, id, *format, *progress)
}

func statusCmd(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "spybox serve address")
	asJSON := fs.Bool("json", false, "emit the full JobStatus as JSON")
	if len(args) == 0 {
		return fmt.Errorf("status: missing job ID (as printed by 'spybox submit')")
	}
	id := spybox.JobID(args[0])
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	cli := service.NewClient(*addr)
	status, err := cli.Job(id)
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(status)
	}
	fmt.Println(statusLine(status))
	return nil
}

// statusLine renders one human line of a JobStatus.
func statusLine(st spybox.JobStatus) string {
	line := fmt.Sprintf("%-8s %-9s %d/%d experiments", st.ID, st.State, st.Done, st.Total)
	if st.CacheHits > 0 {
		line += fmt.Sprintf(" (%d from cache)", st.CacheHits)
	}
	if st.Error != "" {
		line += " — " + st.Error
	}
	return line
}

func waitCmd(args []string) error {
	fs := flag.NewFlagSet("wait", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "spybox serve address")
	format := fs.String("format", "text", "text (human reports) or json (the report/v1 document)")
	progress := fs.Bool("progress", false, "stream the job's progress events to stderr while waiting")
	if len(args) == 0 {
		return fmt.Errorf("wait: missing job ID (as printed by 'spybox submit')")
	}
	id := spybox.JobID(args[0])
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("wait: unknown format %q (text|json)", *format)
	}
	return waitAndPrint(service.NewClient(*addr), id, *format, *progress)
}

// waitAndPrint waits for the job (streaming progress when asked) and
// prints its results — the report/v1 document in json mode, the text
// reports otherwise. A job that ended cancelled or failed still gets
// its partial results printed, then a non-zero exit. A SIGINT stops
// the waiting, not the remote job — cancel with DELETE (or resubmit
// and Cancel) if that's what you want; the job keeps running
// server-side by design.
func waitAndPrint(cli *service.Client, id spybox.JobID, format string, progress bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var status spybox.JobStatus
	var err error
	if progress {
		status, err = cli.Events(ctx, id, printEventMsg)
	} else {
		status, err = cli.Wait(ctx, id)
	}
	if err != nil {
		return err
	}
	// A draining server ends the wait with the job's non-terminal
	// status (it stays queued in the store for the next start); there
	// are no results to fetch yet, so say that instead of tripping
	// over the result endpoint's 409.
	if !status.State.Terminal() {
		return fmt.Errorf("server stopped before %s ran (still %s) — it stays queued if the server has -store; wait again after restart",
			status.ID, status.State)
	}
	if format == "json" {
		doc, err := cli.ResultDocument(id)
		if err != nil {
			return err
		}
		if _, err := os.Stdout.Write(doc); err != nil {
			return err
		}
	} else {
		results, err := cli.Result(id)
		if err != nil {
			return err
		}
		for _, r := range results {
			if err := r.Print(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	if status.State != spybox.JobDone {
		return fmt.Errorf("%s %s after %d/%d experiments: %s",
			status.ID, status.State, status.Done, status.Total, status.Error)
	}
	return nil
}

// printEventMsg renders one wire progress event to stderr, with the
// run clock and — on trial completions — the observed trial rate.
func printEventMsg(ev service.EventMsg) {
	elapsed := ev.ElapsedMS / 1000
	switch ev.Kind {
	case "experiment-start":
		fmt.Fprintf(os.Stderr, "spybox: %s: %s: start — %s\n", ev.Job, ev.Experiment, ev.Title)
	case "experiment-done":
		if ev.Error != "" {
			fmt.Fprintf(os.Stderr, "spybox: %s: %s: failed after %.1fs: %s\n", ev.Job, ev.Experiment, elapsed, ev.Error)
		} else {
			fmt.Fprintf(os.Stderr, "spybox: %s: %s: done in %.1fs\n", ev.Job, ev.Experiment, elapsed)
		}
	case "trial-start":
		fmt.Fprintf(os.Stderr, "spybox: %s: %s: trial %d/%d start [%.1fs]\n", ev.Job, ev.Experiment, ev.Trial+1, ev.Trials, elapsed)
	case "trial-done":
		if ev.Error != "" {
			fmt.Fprintf(os.Stderr, "spybox: %s: %s: trial %d/%d failed [%.1fs]: %s\n", ev.Job, ev.Experiment, ev.Trial+1, ev.Trials, elapsed, ev.Error)
		} else {
			fmt.Fprintf(os.Stderr, "spybox: %s: %s: trial %d/%d done [%.1fs]\n", ev.Job, ev.Experiment, ev.Trial+1, ev.Trials, elapsed)
		}
	}
}
