package spybox

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Arch: "bogus-gpu"}); err == nil {
		t.Error("unknown arch accepted")
	}
	if _, err := Open(Config{Parallel: -1}); err == nil {
		t.Error("negative parallel accepted")
	}
	if _, err := Open(Config{Scale: Scale(99)}); err == nil {
		t.Error("invalid scale accepted")
	}
	sess, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Config().Seed; got != DefaultSeed {
		t.Errorf("zero seed defaulted to %d, want %d", got, DefaultSeed)
	}
	if got := sess.Profile().Name; got != "p100-dgx1" {
		t.Errorf("default profile %q, want the paper's machine", got)
	}
}

func TestExperimentsMetadata(t *testing.T) {
	infos := Experiments()
	if len(infos) != 20 {
		t.Fatalf("%d experiments, want 20", len(infos))
	}
	for _, e := range infos {
		if e.ID == "" || e.Title == "" || e.Trials == "" || len(e.HeadlineMetrics) == 0 {
			t.Errorf("incomplete metadata: %+v", e)
		}
	}
	fig9, ok := LookupExperiment("fig9")
	if !ok || !strings.Contains(fig9.Trials, "per") {
		t.Errorf("fig9 metadata: %+v (ok=%v)", fig9, ok)
	}
	if _, ok := LookupExperiment("nope"); ok {
		t.Error("bogus ID found")
	}
}

func TestRunUnknownID(t *testing.T) {
	sess, err := Open(Config{Scale: Small})
	if err != nil {
		t.Fatal(err)
	}
	// Every unknown ID is reported at once, with the valid names, and
	// nothing runs.
	var events int
	sess2, err := Open(Config{Scale: Small, Events: func(Event) { events++ }})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess2.Run(context.Background(), "nope", "fig4", "bogus")
	if err == nil || !strings.Contains(err.Error(), `"bogus", "nope"`) || !strings.Contains(err.Error(), "valid: fig4,") {
		t.Errorf("unknown IDs: %v", err)
	}
	if events != 0 {
		t.Errorf("%d events fired for an invalid selection", events)
	}
	if _, err := sess.Run(context.Background(), "nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown ID: %v", err)
	}
}

func TestExpandIDs(t *testing.T) {
	all, err := ExpandIDs()
	if err != nil || len(all) != len(Experiments()) || all[0] != "fig4" {
		t.Errorf("ExpandIDs() = %v, %v", all, err)
	}
	got, err := ExpandIDs("fig9", "fig4", "fig9")
	if err != nil || strings.Join(got, ",") != "fig9,fig4" {
		t.Errorf("dedup/order: %v, %v", got, err)
	}
	if _, err := ExpandIDs("zzz"); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("single unknown: %v", err)
	}
}

// TestRunWithEvents runs a real (fast, single-shot) experiment and
// checks both the structured result and the event sequence.
func TestRunWithEvents(t *testing.T) {
	t.Parallel()
	var mu sync.Mutex
	var events []Event
	sess, err := Open(Config{Scale: Small, Parallel: 1, Events: func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	results, err := sess.Run(context.Background(), "fig4")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != "fig4" {
		t.Fatalf("results: %+v", results)
	}
	if results[0].Metrics["remote_boundary"] <= 0 {
		t.Error("fig4 metrics missing")
	}
	if len(results[0].Records) == 0 {
		t.Error("fig4 records missing")
	}
	want := []EventKind{ExperimentStart, TrialStart, TrialDone, ExperimentDone}
	if len(events) != len(want) {
		t.Fatalf("saw %d events (%+v), want %d", len(events), events, len(want))
	}
	for i, ev := range events {
		if ev.Kind != want[i] {
			t.Errorf("event %d is %v, want %v", i, ev.Kind, want[i])
		}
		if ev.Experiment != "fig4" || ev.Err != nil {
			t.Errorf("event %d: %+v", i, ev)
		}
	}
	if events[1].Trial != 0 || events[1].Trials != 1 {
		t.Errorf("trial event counts: %+v", events[1])
	}
}

// TestRunCancelledBeforeStart: a context cancelled up front yields an
// InterruptedError with nothing completed, without running anything.
func TestRunCancelledBeforeStart(t *testing.T) {
	sess, err := Open(Config{Scale: Small})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := sess.Run(ctx, "fig4")
	if len(results) != 0 {
		t.Errorf("cancelled run returned %d results", len(results))
	}
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v, want *InterruptedError", err)
	}
	if ie.Completed != 0 || ie.Total != 1 {
		t.Errorf("interrupted counts: %+v", ie)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) is false for %v", err)
	}
}

// TestRunCancelledMidExperiment cancels from the first trial's Done
// event of a trial-decomposed experiment: the runner must stop at the
// next trial boundary and surface an InterruptedError.
func TestRunCancelledMidExperiment(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var trialsDone int
	sess, err := Open(Config{Scale: Small, Parallel: 1, Events: func(ev Event) {
		if ev.Kind == TrialDone {
			trialsDone++
			cancel()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	results, err := sess.Run(ctx, "fig9")
	if len(results) != 0 {
		t.Errorf("interrupted run returned %d completed results", len(results))
	}
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v, want *InterruptedError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause of %v is not context.Canceled", err)
	}
	if trialsDone != 1 {
		t.Errorf("%d trials ran after cancellation at the first, want 1", trialsDone)
	}
}

// TestRunJobTagsEvents: a tagged run threads its job ID into every
// event — including the trial-level ones, which travel through the
// expt runner's hooks — and Elapsed never runs backwards.
func TestRunJobTagsEvents(t *testing.T) {
	t.Parallel()
	var mu sync.Mutex
	var events []Event
	sess, err := Open(Config{Scale: Small, Parallel: 1, Events: func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.RunJob(context.Background(), "job-7", "fig4"); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	var last Event
	sawTrial := false
	for i, ev := range events {
		if ev.Job != "job-7" {
			t.Errorf("event %d has job %q, want job-7", i, ev.Job)
		}
		if i > 0 && ev.Elapsed < last.Elapsed {
			t.Errorf("event %d Elapsed %v < previous %v", i, ev.Elapsed, last.Elapsed)
		}
		if ev.Kind == TrialStart || ev.Kind == TrialDone {
			sawTrial = true
		}
		last = ev
	}
	if !sawTrial {
		t.Error("no trial-level events carried the job tag")
	}
}

// TestSessionMachine drives the machine-scripting surface: the session
// machine carries the session's profile.
func TestSessionMachine(t *testing.T) {
	sess, err := Open(Config{Scale: Small, Arch: "v100-dgx2"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := sess.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumGPUs() != 16 || m.Profile().Name != "v100-dgx2" {
		t.Errorf("machine on %q with %d GPUs, want v100-dgx2 with 16", m.Profile().Name, m.NumGPUs())
	}
}

func TestScaleReExports(t *testing.T) {
	if got, err := ParseScale("paper"); err != nil || got != Paper {
		t.Errorf("ParseScale(paper) = %v, %v", got, err)
	}
	if len(Scales()) != 3 || len(ScaleNames()) != 3 {
		t.Errorf("scales: %v / %v", Scales(), ScaleNames())
	}
}
