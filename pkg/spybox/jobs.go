// The job-oriented API surface: specs, states, statuses, and the
// JobService interface that both implementations in pkg/spybox/service
// satisfy — the in-process engine (service.New) and the HTTP client
// (service.NewClient). Code written against JobService runs unchanged
// against a local worker pool or a remote `spybox serve`; the CLI's
// submit/status/wait subcommands are built purely on the client half,
// which is what keeps the HTTP API honest.

package spybox

import (
	"context"
	"errors"
	"fmt"
)

// JobID names one submitted job. IDs are assigned by the service
// ("job-1", "job-2", ...), are unique per store for its lifetime, and
// are safe to embed in URLs.
type JobID string

// JobState is the lifecycle of a job:
//
//	queued -> running -> done
//	                  -> failed     (an experiment errored)
//	                  -> cancelled  (Cancel or server drain; partial
//	                                 results are kept)
//	queued -> cancelled             (never starts)
type JobState int

const (
	// JobQueued: accepted and persisted, waiting for a worker.
	JobQueued JobState = iota
	// JobRunning: claimed by a worker; progress streams as events.
	JobRunning
	// JobDone: every experiment completed; results are available.
	JobDone
	// JobFailed: an experiment errored; completed results are kept.
	JobFailed
	// JobCancelled: stopped by Cancel or a server drain; results
	// completed before the interruption are kept.
	JobCancelled
)

// jobStateNames is the wire spelling of each state (see MarshalJSON).
var jobStateNames = [...]string{"queued", "running", "done", "failed", "cancelled"}

// String returns the wire spelling of the state.
func (s JobState) String() string {
	if s >= 0 && int(s) < len(jobStateNames) {
		return jobStateNames[s]
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// Terminal reports whether the state is final: no worker will touch
// the job again and its results (possibly partial) are persisted.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// MarshalJSON encodes the state by name, so stores and HTTP payloads
// stay readable and stable if the iota order ever grows.
func (s JobState) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a state name written by MarshalJSON.
func (s *JobState) UnmarshalJSON(b []byte) error {
	for i, name := range jobStateNames {
		if string(b) == `"`+name+`"` {
			*s = JobState(i)
			return nil
		}
	}
	return fmt.Errorf("spybox: unknown job state %s", b)
}

// JobSpec is one submission: which experiments to run and the
// session configuration to run them under. A spec is wire-shaped, so
// Scale travels as its flag spelling ("small", "default", "paper");
// zero values take the CLI defaults — DefaultSeed, the "default"
// scale (ParseScale("")), the paper's machine, every core. An empty
// Experiments list means every registered experiment, in paper order.
type JobSpec struct {
	Experiments []string `json:"experiments,omitempty"`
	Seed        uint64   `json:"seed,omitempty"`
	Scale       string   `json:"scale,omitempty"`
	Arch        string   `json:"arch,omitempty"`
	// Parallel bounds the trial worker pool of this job's session; 0
	// means every available core. Results are bit-identical at any
	// value, which is why Parallel is excluded from the result cache
	// key.
	Parallel int `json:"parallel,omitempty"`
	// Client optionally names the submitter. The service schedules
	// round-robin across clients (jobs without one share the
	// "interactive" slot, batch jobs default to their batch ID), so a
	// thousand-job sweep cannot starve other submitters. Client never
	// affects results and is excluded from the result cache key.
	Client string `json:"client,omitempty"`
	// Priority orders claiming: higher-priority jobs are leased ahead
	// of the round-robin fairness rotation, which only applies among
	// the groups whose best waiting priority ties. The default 0 is
	// the bulk tier; an interactive submitter can jump a queued sweep
	// with any positive value. Priority never affects results and is
	// excluded from the result cache key.
	Priority int `json:"priority,omitempty"`
}

// JobStatus is the observable state of a job. Progress counts whole
// experiments (trial-level progress streams as events); CacheHits says
// how many of the completed experiments were answered from the result
// cache instead of being re-simulated.
type JobStatus struct {
	ID        JobID    `json:"id"`
	Spec      JobSpec  `json:"spec"`
	State     JobState `json:"state"`
	Done      int      `json:"done"`  // experiments completed (including cache hits)
	Total     int      `json:"total"` // experiments requested, after ExpandIDs
	CacheHits int      `json:"cache_hits,omitempty"`
	Error     string   `json:"error,omitempty"` // failure or interruption cause, on terminal states
	// Batch groups the jobs expanded from one POST /v1/jobs:batch
	// sweep; empty for directly submitted jobs.
	Batch string `json:"batch,omitempty"`
}

// ErrNoJob is returned (possibly wrapped) by JobService methods given
// a job ID the store has never seen or has deleted.
var ErrNoJob = errors.New("spybox: no such job")

// ErrClosed is returned by Submit after the service began draining:
// the job was not accepted and will not run.
var ErrClosed = errors.New("spybox: service closed")

// JobService is the job-oriented way to drive the simulator: submit
// experiment runs as asynchronous jobs, observe them, and collect
// their structured results. pkg/spybox/service provides both
// implementations — service.New (in-process store + worker pool +
// result cache) and service.NewClient (HTTP client of a `spybox
// serve` process); they are interchangeable by construction.
type JobService interface {
	// Submit validates the spec (every experiment ID, the scale, the
	// architecture profile) and enqueues the job, returning its ID.
	// Validation happens entirely up front: a bad spec runs nothing.
	Submit(spec JobSpec) (JobID, error)
	// Job reports the job's current status, or ErrNoJob.
	Job(id JobID) (JobStatus, error)
	// Wait blocks until the job stops progressing and returns its
	// status: terminal for a finished job, still queued if the
	// service drained out from under it (the job survives in a
	// durable store for the next start), or the current snapshot with
	// the context's error if ctx ends first.
	Wait(ctx context.Context, id JobID) (JobStatus, error)
	// Cancel stops the job: queued jobs never start, running jobs stop
	// at the next trial boundary with their completed results
	// persisted. Cancelling a terminal job is a no-op.
	Cancel(id JobID) error
	// Result returns the job's completed results — the full set for
	// done jobs, the completed prefix for failed or cancelled ones,
	// and an error wrapping ErrNoJob for unknown jobs. Calling it on a
	// non-terminal job is an error; Wait first.
	Result(id JobID) ([]*Result, error)
}
