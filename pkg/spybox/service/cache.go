// The content-addressed result cache. Results are a pure function of
// (seed, scale, arch, experiment) — the determinism the golden tests
// pin — so a duplicate submission can be answered with the stored
// bytes instead of a re-simulation. Parallel is deliberately not part
// of the key: it changes wall time, never results. The schema version
// is part of the key so a build that changes the report layout can
// never serve a stale shape.

package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"spybox/pkg/spybox/report"
)

// CacheKey addresses one experiment result by content: the report
// schema version plus every Config field results depend on, plus the
// experiment ID. Callers pass normalized values (defaulted seed,
// canonical scale spelling, resolved profile name) so equivalent specs
// share an entry.
func CacheKey(seed uint64, scale, arch, experiment string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00%s\x00%s\x00%s", report.Schema, seed, scale, arch, experiment)
	return hex.EncodeToString(h.Sum(nil))
}

// Cache maps CacheKeys to encoded results, counting hits and misses.
// Entries are stored as their report/v1 encoding and decoded afresh on
// every Get, so no caller can mutate another's result; the codec's
// pinned round-trip stability is what keeps a cached response
// byte-identical to the simulated one. The cache is bounded: past the
// limit the oldest entry is evicted (each entry is a whole report
// document, and a stream of distinct seeds would otherwise grow the
// process without bound).
type Cache struct {
	mu           sync.Mutex
	entries      map[string][]byte
	order        []string // insertion order, for FIFO eviction
	limit        int
	hits, misses atomic.Int64
}

// DefaultCacheEntries bounds NewCache; use NewCacheSize to choose.
const DefaultCacheEntries = 1024

// NewCache returns an empty cache holding up to DefaultCacheEntries.
func NewCache() *Cache { return NewCacheSize(DefaultCacheEntries) }

// NewCacheSize returns an empty cache holding up to limit entries
// (<= 0 means DefaultCacheEntries).
func NewCacheSize(limit int) *Cache {
	if limit <= 0 {
		limit = DefaultCacheEntries
	}
	return &Cache{entries: map[string][]byte{}, limit: limit}
}

// Get returns a fresh copy of the cached result for key, counting the
// lookup as a hit or a miss.
func (c *Cache) Get(key string) (*report.Result, bool) {
	c.mu.Lock()
	b, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	results, err := report.Decode(bytes.NewReader(b))
	if err != nil || len(results) != 1 {
		// An undecodable entry can only mean cache corruption; treat
		// it as a miss and drop it rather than serving garbage. The
		// key must leave order too: a dangling order entry would be
		// re-appended by the next Put of this key, and each repeat of
		// that cycle would grow order by one forever.
		c.mu.Lock()
		delete(c.entries, key)
		for i, k := range c.order {
			if k == key {
				c.order = append(c.order[:i], c.order[i+1:]...)
				break
			}
		}
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return results[0], true
}

// Put stores the result under key, evicting the oldest entry when
// full. Encoding failures are returned so the caller can decide to
// serve fresh results uncached rather than fail the job.
func (c *Cache) Put(key string, r *report.Result) error {
	var buf bytes.Buffer
	if err := report.Encode(&buf, r); err != nil {
		return err
	}
	c.mu.Lock()
	if _, exists := c.entries[key]; !exists {
		c.order = append(c.order, key)
	}
	c.entries[key] = buf.Bytes()
	for len(c.entries) > c.limit && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.mu.Unlock()
	return nil
}

// Stats returns the hit and miss counts since construction.
func (c *Cache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
