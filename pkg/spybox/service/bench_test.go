package service

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"spybox/pkg/spybox"
)

// BenchmarkServiceSubmit measures the job pipeline's overhead on the
// cache-hit path — submit, queue, worker claim, cache lookup, store
// updates, wait — with the simulation itself amortized out by a warm
// cache. This is the service's request-latency floor: what a
// duplicate submission costs once the box is warm. Alongside the
// ns/op it writes BENCH_service.json (the start of the service perf
// trajectory; CI's bench job exercises it every run).
func BenchmarkServiceSubmit(b *testing.B) {
	svc, err := New(Options{Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close(context.Background())
	spec := spybox.JobSpec{Experiments: []string{"fig4"}, Scale: "small", Parallel: 1}
	warm, err := svc.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	if st, err := svc.Wait(context.Background(), warm); err != nil || st.State != spybox.JobDone {
		b.Fatalf("warmup: %+v, %v", st, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := svc.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		st, err := svc.Wait(context.Background(), id)
		if err != nil || st.State != spybox.JobDone || st.CacheHits != 1 {
			b.Fatalf("iteration %d: %+v, %v", i, st, err)
		}
	}
	b.StopTimer()
	hits, misses := svc.cache.Stats()
	doc := struct {
		Benchmark   string  `json:"benchmark"`
		Jobs        int     `json:"jobs"`
		NsPerSubmit float64 `json:"ns_per_submit"`
		CacheHits   int64   `json:"cache_hits"`
		CacheMisses int64   `json:"cache_misses"`
	}{
		Benchmark: "ServiceSubmit", Jobs: b.N,
		NsPerSubmit: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		CacheHits:   hits, CacheMisses: misses,
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_service.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
