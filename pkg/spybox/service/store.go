// Job persistence: the Store interface, the jobTable state machine
// both implementations share, and MemStore (the default for tests and
// throwaway servers). The durable implementation is LogStore (log.go):
// an append-only record log plus compaction snapshot that N serve
// processes can share through one directory.
//
// Stores are also the fleet's scheduler: a worker takes work by
// Claim-ing the next runnable job under a time-limited lease, renewing
// it while the job runs. A process that dies mid-job simply stops
// renewing, and once the lease expires any other process reclaims the
// job — that is the whole crash-recovery story, and it is why the
// claim/renew/release operations live in the store (the one component
// every process in a fleet shares) rather than in the service.

package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"spybox/pkg/spybox"
	"spybox/pkg/spybox/report"
)

// Lease records which worker currently owns a claimed job and until
// when. A lease is live while Expires is in the future; an expired
// lease means its owner died (or stalled past renewal) and the job is
// reclaimable.
type Lease struct {
	Owner   string    `json:"owner"`
	Expires time.Time `json:"expires"`
}

// live reports whether the lease is held at instant now.
func (l *Lease) live(now time.Time) bool {
	return l != nil && now.Before(l.Expires)
}

// Record is everything a store persists about one job: its status,
// the results completed so far (the full set once done, a prefix for
// failed or cancelled jobs), and — maintained by Claim/Renew/Release,
// never by Put — the lease of the worker running it.
type Record struct {
	Status spybox.JobStatus `json:"status"`
	// Lease is read-only to callers: Put ignores the field (claiming
	// is a separate, atomic operation) and clears any lease when the
	// record goes terminal.
	Lease   *Lease           `json:"lease,omitempty"`
	Results []*report.Result `json:"results,omitempty"`
}

// clone deep-copies a record so no caller can mutate store state
// through a returned value (or have the store capture a slice the
// caller still owns). Results go through report.Clone; the spec's
// experiment list and the lease are copied too.
func (r Record) clone() Record {
	out := r
	if r.Status.Spec.Experiments != nil {
		out.Status.Spec.Experiments = append([]string(nil), r.Status.Spec.Experiments...)
	}
	if r.Lease != nil {
		l := *r.Lease
		out.Lease = &l
	}
	if r.Results != nil {
		out.Results = make([]*report.Result, len(r.Results))
		for i, res := range r.Results {
			out.Results[i] = res.Clone()
		}
	}
	return out
}

// Counts is the by-state census of a store, cheap enough to call on
// every Submit (unlike List, which deep-copies every record).
type Counts struct {
	Total     int `json:"total"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// Leased counts non-terminal records under a live lease.
	Leased int `json:"leased"`
}

// ErrExists is returned by Create when the record's ID is already
// present — the caller must pick another ID, never overwrite.
var ErrExists = errors.New("service: job ID already exists")

// ErrNotOwner is returned by Renew and Release when the caller does
// not hold the job's lease (it expired and another worker claimed the
// job, or it was never claimed).
var ErrNotOwner = errors.New("service: lease not held by this owner")

// Store persists job records and schedules them across workers.
// Implementations must be safe for concurrent use; List returns
// records in submission order. Mutating a returned Record never
// changes stored state — reads are deep copies.
type Store interface {
	// Put inserts or replaces the record keyed by Status.ID. The
	// record's Lease field is ignored: an existing lease is kept,
	// except that a terminal record's lease is cleared (its run is
	// over).
	Put(rec Record) error
	// Create is Put that fails with ErrExists when the ID is already
	// present, so concurrent processes sharing a store never allocate
	// the same job ID.
	Create(rec Record) error
	// Get returns a deep copy of the record for id, reporting whether
	// it exists.
	Get(id spybox.JobID) (Record, bool, error)
	// List returns a deep copy of every record, in submission order.
	List() ([]Record, error)
	// Delete removes the record for id; deleting an absent id is a
	// no-op.
	Delete(id spybox.JobID) error
	// Counts reports the by-state census without copying records.
	Counts() (Counts, error)
	// Claim atomically leases the next runnable job to owner for ttl
	// and returns it. Runnable means non-terminal with no live lease:
	// a queued job, or a running job whose worker stopped renewing
	// (crashed) — the caller re-runs the latter from scratch.
	// Candidates with the highest Spec.Priority go first; among the
	// tied groups they are picked round-robin across fairness groups
	// (Spec.Client, else Status.Batch, else the shared interactive
	// slot), oldest-first within a group, so one huge batch cannot
	// starve other submitters and an urgent job cannot wait out a
	// queued sweep. ok is false when nothing is runnable.
	Claim(owner string, ttl time.Duration) (rec Record, ok bool, err error)
	// Renew extends owner's lease on id by ttl from now. It fails
	// with ErrNotOwner when owner no longer holds the lease and with
	// spybox.ErrNoJob when the record is gone — either way the caller
	// has lost the job and must stop writing to it.
	Renew(id spybox.JobID, owner string, ttl time.Duration) error
	// Release clears owner's lease without touching the record's
	// state, returning a claimed-but-unstarted job to the queue (e.g.
	// on shutdown between Claim and the running transition).
	Release(id spybox.JobID, owner string) error
}

// jobTable is the in-memory state machine shared by MemStore and
// LogStore: records in submission order, the runnable set, and the
// round-robin fairness cursor. It does no locking and no copying —
// wrappers own both.
type jobTable struct {
	byID  map[spybox.JobID]*Record
	order []spybox.JobID
	// pending holds IDs that may be runnable (non-terminal), in
	// submission order, compacted lazily during claim scans so that
	// claiming stays O(live jobs) on a store full of finished ones.
	pending []spybox.JobID
	// cursor is the fairness group served last; the next claim starts
	// from the group after it in sorted cyclic order.
	cursor string
	counts Counts
}

func newJobTable() *jobTable {
	return &jobTable{byID: map[spybox.JobID]*Record{}}
}

// countState adjusts the census for one record entering (+1) or
// leaving (-1) its state.
func (t *jobTable) countState(state spybox.JobState, d int) {
	switch state {
	case spybox.JobQueued:
		t.counts.Queued += d
	case spybox.JobRunning:
		t.counts.Running += d
	case spybox.JobDone:
		t.counts.Done += d
	case spybox.JobFailed:
		t.counts.Failed += d
	case spybox.JobCancelled:
		t.counts.Cancelled += d
	}
}

// put applies Put semantics: upsert, keep the stored lease (the Lease
// field of the argument is ignored), clear it on terminal records.
func (t *jobTable) put(rec Record) {
	id := rec.Status.ID
	prev, existed := t.byID[id]
	if existed {
		rec.Lease = prev.Lease
		t.countState(prev.Status.State, -1)
		if prev.Status.State.Terminal() && !rec.Status.State.Terminal() {
			// Resurrected: a lazy claim-scan compaction may have
			// dropped the ID from pending while it was terminal.
			inPending := false
			for _, p := range t.pending {
				if p == id {
					inPending = true
					break
				}
			}
			if !inPending {
				t.pending = append(t.pending, id)
			}
		}
	} else {
		t.order = append(t.order, id)
		t.counts.Total++
		if !rec.Status.State.Terminal() {
			t.pending = append(t.pending, id)
		}
		rec.Lease = nil
	}
	if rec.Status.State.Terminal() {
		rec.Lease = nil
	}
	t.countState(rec.Status.State, 1)
	t.byID[id] = &rec
}

func (t *jobTable) delete(id spybox.JobID) {
	rec, ok := t.byID[id]
	if !ok {
		return
	}
	t.countState(rec.Status.State, -1)
	t.counts.Total--
	delete(t.byID, id)
	for i, o := range t.order {
		if o == id {
			t.order = append(t.order[:i], t.order[i+1:]...)
			break
		}
	}
	// pending is compacted lazily on the next claim scan.
}

func (t *jobTable) get(id spybox.JobID) (*Record, bool) {
	rec, ok := t.byID[id]
	return rec, ok
}

func (t *jobTable) list() []Record {
	out := make([]Record, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, *t.byID[id])
	}
	return out
}

// leasedCount is O(pending): terminal records never hold leases.
func (t *jobTable) leasedCount(now time.Time) int {
	n := 0
	for _, id := range t.pending {
		if rec, ok := t.byID[id]; ok && !rec.Status.State.Terminal() && rec.Lease.live(now) {
			n++
		}
	}
	return n
}

// fairnessGroup buckets a record for round-robin claiming: explicit
// client first, then its batch, then the shared interactive slot.
func fairnessGroup(rec *Record) string {
	if rec.Status.Spec.Client != "" {
		return "client\x00" + rec.Status.Spec.Client
	}
	if rec.Status.Batch != "" {
		return "batch\x00" + rec.Status.Batch
	}
	return ""
}

// pickClaim chooses the next runnable job at instant now, compacting
// the pending set as it scans, without mutating any record. ok is
// false when nothing is runnable. Priority trumps fairness: only the
// groups whose best waiting job ties the highest priority enter the
// round-robin rotation, and within a group the oldest job at that
// priority is served (submission order breaks ties).
func (t *jobTable) pickClaim(now time.Time) (spybox.JobID, bool) {
	type candidate struct {
		id   spybox.JobID
		prio int
	}
	best := map[string]candidate{} // fairness group -> top-priority, oldest runnable
	var groups []string
	live := t.pending[:0]
	for _, id := range t.pending {
		rec, ok := t.byID[id]
		if !ok || rec.Status.State.Terminal() {
			continue // deleted or finished: drop from pending
		}
		live = append(live, id)
		if rec.Lease.live(now) {
			continue // another worker is on it
		}
		g := fairnessGroup(rec)
		prev, seen := best[g]
		if !seen {
			best[g] = candidate{id: id, prio: rec.Status.Spec.Priority}
			groups = append(groups, g)
		} else if rec.Status.Spec.Priority > prev.prio {
			// Strictly higher only: at equal priority the earlier
			// submission keeps the slot (oldest-first within a group).
			best[g] = candidate{id: id, prio: rec.Status.Spec.Priority}
		}
	}
	t.pending = live
	if len(groups) == 0 {
		return "", false
	}
	maxPrio := best[groups[0]].prio
	for _, g := range groups[1:] {
		if p := best[g].prio; p > maxPrio {
			maxPrio = p
		}
	}
	top := groups[:0]
	for _, g := range groups {
		if best[g].prio == maxPrio {
			top = append(top, g)
		}
	}
	// Serve the first tied group strictly after the cursor in sorted
	// cyclic order, so successive claims rotate across every waiting
	// group of the leading priority.
	sort.Strings(top)
	next := top[0]
	for _, g := range top {
		if g > t.cursor {
			next = g
			break
		}
	}
	t.cursor = next
	return best[next].id, true
}

// setLease stamps (or clears, with a nil lease) the lease on id.
func (t *jobTable) setLease(id spybox.JobID, lease *Lease) {
	if rec, ok := t.byID[id]; ok {
		rec.Lease = lease
	}
}

// MemStore is the in-memory Store: a jobTable behind a mutex, with
// deep copies across the read boundary.
type MemStore struct {
	mu  sync.Mutex
	tbl *jobTable
	now func() time.Time // test hook; time.Now otherwise
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{tbl: newJobTable(), now: time.Now}
}

// Put implements Store.
func (s *MemStore) Put(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tbl.put(rec.clone())
	return nil
}

// Create implements Store.
func (s *MemStore) Create(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.tbl.get(rec.Status.ID); ok {
		return fmt.Errorf("%w: %s", ErrExists, rec.Status.ID)
	}
	s.tbl.put(rec.clone())
	return nil
}

// Get implements Store.
func (s *MemStore) Get(id spybox.JobID) (Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.tbl.get(id)
	if !ok {
		return Record{}, false, nil
	}
	return rec.clone(), true, nil
}

// List implements Store.
func (s *MemStore) List() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.tbl.list()
	out := make([]Record, len(recs))
	for i, rec := range recs {
		out[i] = rec.clone()
	}
	return out, nil
}

// Delete implements Store.
func (s *MemStore) Delete(id spybox.JobID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tbl.delete(id)
	return nil
}

// Counts implements Store.
func (s *MemStore) Counts() (Counts, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.tbl.counts
	c.Leased = s.tbl.leasedCount(s.now())
	return c, nil
}

// Claim implements Store.
func (s *MemStore) Claim(owner string, ttl time.Duration) (Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	id, ok := s.tbl.pickClaim(now)
	if !ok {
		return Record{}, false, nil
	}
	s.tbl.setLease(id, &Lease{Owner: owner, Expires: now.Add(ttl)})
	rec, _ := s.tbl.get(id)
	return rec.clone(), true, nil
}

// Renew implements Store.
func (s *MemStore) Renew(id spybox.JobID, owner string, ttl time.Duration) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.tbl.get(id)
	if !ok {
		return fmt.Errorf("%w: %s", spybox.ErrNoJob, id)
	}
	// An expired-but-unclaimed lease is still renewable: had another
	// worker claimed the job in the meantime, the owner would differ.
	if rec.Lease == nil || rec.Lease.Owner != owner {
		return fmt.Errorf("%w: %s on %s", ErrNotOwner, owner, id)
	}
	s.tbl.setLease(id, &Lease{Owner: owner, Expires: s.now().Add(ttl)})
	return nil
}

// Release implements Store.
func (s *MemStore) Release(id spybox.JobID, owner string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.tbl.get(id)
	if !ok {
		return fmt.Errorf("%w: %s", spybox.ErrNoJob, id)
	}
	if rec.Lease == nil || rec.Lease.Owner != owner {
		return fmt.Errorf("%w: %s on %s", ErrNotOwner, owner, id)
	}
	s.tbl.setLease(id, nil)
	return nil
}
