// Job persistence: the Store interface and its two implementations.
// MemStore is the default for tests and throwaway servers; FileStore
// writes one JSON document per mutation (atomically, via rename) so a
// served queue survives a process restart — the service re-enqueues
// every non-terminal record it loads.

package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"spybox/pkg/spybox"
	"spybox/pkg/spybox/report"
)

// Record is everything a store persists about one job: its status and
// the results completed so far (the full set once done, a prefix for
// failed or cancelled jobs).
type Record struct {
	Status  spybox.JobStatus `json:"status"`
	Results []*report.Result `json:"results,omitempty"`
}

// Store persists job records. Implementations must be safe for
// concurrent use; List returns records in submission order, which is
// also the order the service re-enqueues surviving jobs in after a
// restart.
type Store interface {
	// Put inserts or replaces the record keyed by Status.ID.
	Put(rec Record) error
	// Get returns the record for id, reporting whether it exists.
	Get(id spybox.JobID) (Record, bool, error)
	// List returns every record, in submission order.
	List() ([]Record, error)
	// Delete removes the record for id; deleting an absent id is a
	// no-op.
	Delete(id spybox.JobID) error
}

// MemStore is the in-memory Store: a map plus the submission order.
type MemStore struct {
	mu    sync.Mutex
	byID  map[spybox.JobID]Record
	order []spybox.JobID
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{byID: map[spybox.JobID]Record{}}
}

// Put implements Store.
func (s *MemStore) Put(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[rec.Status.ID]; !ok {
		s.order = append(s.order, rec.Status.ID)
	}
	s.byID[rec.Status.ID] = rec
	return nil
}

// Get implements Store.
func (s *MemStore) Get(id spybox.JobID) (Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.byID[id]
	return rec, ok, nil
}

// List implements Store.
func (s *MemStore) List() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.byID[id])
	}
	return out, nil
}

// Delete implements Store.
func (s *MemStore) Delete(id spybox.JobID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[id]; !ok {
		return nil
	}
	delete(s.byID, id)
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}

// StoreSchema tags the FileStore document layout, mirroring the
// report schema policy: a different tag means a different layout, and
// NewFileStore refuses it instead of misreading it.
const StoreSchema = "spybox.jobs/v1"

// storeDoc is the on-disk shape of a FileStore.
type storeDoc struct {
	SchemaVersion string   `json:"schema"`
	Jobs          []Record `json:"jobs"`
}

// FileStore is the JSON-file Store: every mutation rewrites the file
// through a temp-file rename, so the document on disk is always a
// complete, parseable snapshot and queued jobs survive a restart.
type FileStore struct {
	mu   sync.Mutex
	path string
	mem  *MemStore // authoritative in-memory view, flushed on mutation
}

// NewFileStore opens (or creates) the store at path, loading any
// existing document.
func NewFileStore(path string) (*FileStore, error) {
	s := &FileStore{path: path, mem: NewMemStore()}
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: reading job store: %w", err)
	}
	var doc storeDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("service: parsing job store %s: %w", path, err)
	}
	if doc.SchemaVersion != StoreSchema {
		return nil, fmt.Errorf("service: job store %s has schema %q (this build reads %q)",
			path, doc.SchemaVersion, StoreSchema)
	}
	for _, rec := range doc.Jobs {
		if err := s.mem.Put(rec); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// flush writes the current snapshot; callers hold s.mu.
func (s *FileStore) flush() error {
	jobs, err := s.mem.List()
	if err != nil {
		return err
	}
	if jobs == nil {
		jobs = []Record{} // "jobs" must be an array, never null
	}
	b, err := json.MarshalIndent(storeDoc{SchemaVersion: StoreSchema, Jobs: jobs}, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encoding job store: %w", err)
	}
	b = append(b, '\n')
	if dir := filepath.Dir(s.path); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp := s.path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path)
}

// Put implements Store. A failed flush is rolled back in memory, so
// the in-memory view never claims state the caller was told did not
// persist (a phantom queued job would sit unrunnable forever).
func (s *FileStore) Put(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, existed, _ := s.mem.Get(rec.Status.ID)
	if err := s.mem.Put(rec); err != nil {
		return err
	}
	if err := s.flush(); err != nil {
		if existed {
			_ = s.mem.Put(prev)
		} else {
			_ = s.mem.Delete(rec.Status.ID)
		}
		return err
	}
	return nil
}

// Get implements Store.
func (s *FileStore) Get(id spybox.JobID) (Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Get(id)
}

// List implements Store.
func (s *FileStore) List() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.List()
}

// Delete implements Store, with the same rollback-on-failed-flush
// contract as Put (the restored record rejoins the order at the end —
// content consistency is what matters on a dying disk).
func (s *FileStore) Delete(id spybox.JobID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, existed, _ := s.mem.Get(id)
	if err := s.mem.Delete(id); err != nil {
		return err
	}
	if err := s.flush(); err != nil {
		if existed {
			_ = s.mem.Put(prev)
		}
		return err
	}
	return nil
}
