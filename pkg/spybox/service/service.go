// Package service is the job-oriented layer above pkg/spybox: a
// durable job store, a bounded worker pool multiplexing jobs onto
// per-config pooled Sessions, a content-addressed result cache, and
// an HTTP server/client pair speaking the /v1 jobs API.
//
// Both halves implement spybox.JobService:
//
//	svc, _ := service.New(service.Options{})        // in-process
//	cli := service.NewClient("http://host:8080")    // over HTTP
//
// Submit validates a JobSpec entirely up front, persists it, and a
// worker runs its experiments one at a time — answering each from the
// result cache when an identical (seed, scale, arch, experiment) has
// already been simulated under this schema version, which determinism
// makes byte-identical to a fresh run. Cancellation stops a running
// job at the next trial boundary and persists the results completed
// so far; Close drains the pool the same way, and a LogStore brings
// still-queued jobs back after a restart.
//
// Workers do not share an in-memory queue: they Claim jobs from the
// store under time-limited leases (see Store). That makes the store
// the only coordination point, so any number of services — across
// processes — can share one LogStore directory and drain one queue as
// a fleet, each job running exactly once while its owner keeps
// renewing, and reclaimed by a peer if the owner dies.
package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spybox/pkg/spybox"
	"spybox/pkg/spybox/report"
)

// Default claim-loop tuning; Options overrides both.
const (
	DefaultLeaseTTL = 10 * time.Second
	DefaultPoll     = 250 * time.Millisecond
)

// Options parameterize New.
type Options struct {
	// Store persists jobs; nil means a fresh in-memory store. Jobs left
	// non-terminal by a previous process are not touched at startup —
	// they are simply claimable (immediately if unleased, after lease
	// expiry if their owner died mid-run) and re-run from scratch;
	// determinism makes the re-run identical.
	Store Store
	// Cache is the result cache; nil means a fresh empty one.
	Cache *Cache
	// Workers bounds how many jobs run concurrently; <= 0 means 2.
	// Each job's trial-level parallelism is its own Spec.Parallel.
	Workers int
	// QueueDepth bounds how many jobs may wait; <= 0 means 256.
	// Submit fails when the queue is full rather than blocking.
	QueueDepth int
	// Owner names this process in the store's lease table; empty means
	// "<hostname>-<pid>". Owners sharing a store must be distinct.
	Owner string
	// LeaseTTL is how long a claimed job stays this process's before a
	// peer may reclaim it; leases are renewed every LeaseTTL/3 while
	// the job runs. <= 0 means DefaultLeaseTTL. Shorter means faster
	// takeover after a crash but less tolerance for stalls.
	LeaseTTL time.Duration
	// Poll is how often idle workers re-check the store for jobs
	// submitted by peer processes, and waiters re-check for jobs
	// finished by them. <= 0 means DefaultPoll. Purely local activity
	// never waits on it.
	Poll time.Duration
	// BatchLimit caps how many jobs one SubmitBatch sweep may expand
	// to; <= 0 means DefaultBatchLimit.
	BatchLimit int
}

// jobRT is the runtime (never persisted) state of a job this process
// is running; it exists from claim to terminal write.
type jobRT struct {
	cancel context.CancelFunc
	done   chan struct{} // closed when this process is done with the job
}

// Service is the in-process JobService implementation.
type Service struct {
	store      Store
	cache      *Cache
	workers    int
	queueDepth int
	owner      string
	leaseTTL   time.Duration
	poll       time.Duration
	batchLimit int

	mu     sync.Mutex
	rt     map[spybox.JobID]*jobRT                         // jobs running in this process
	subs   map[spybox.JobID]map[chan spybox.Event]struct{} // Watch streams
	change chan struct{}                                   // closed+replaced on every local state change
	seq    int
	closed bool

	wake chan struct{} // nudges an idle worker after Submit
	stop chan struct{}
	wg   sync.WaitGroup

	smu      sync.Mutex
	sessions map[sessionKey]*spybox.Session
}

var _ spybox.JobService = (*Service)(nil)

// New builds a service over the given store and starts its worker
// pool. Jobs already in the store are left as-is: workers claim the
// runnable ones (queued, or running under an expired lease) the same
// way they claim fresh submissions.
func New(opts Options) (*Service, error) {
	if opts.Store == nil {
		opts.Store = NewMemStore()
	}
	if opts.Cache == nil {
		opts.Cache = NewCache()
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.Owner == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "spybox"
		}
		opts.Owner = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.Poll <= 0 {
		opts.Poll = DefaultPoll
	}
	if opts.BatchLimit <= 0 {
		opts.BatchLimit = DefaultBatchLimit
	}
	s := &Service{
		store:      opts.Store,
		cache:      opts.Cache,
		workers:    opts.Workers,
		queueDepth: opts.QueueDepth,
		owner:      opts.Owner,
		leaseTTL:   opts.LeaseTTL,
		poll:       opts.Poll,
		batchLimit: opts.BatchLimit,
		rt:         map[spybox.JobID]*jobRT{},
		subs:       map[spybox.JobID]map[chan spybox.Event]struct{}{},
		change:     make(chan struct{}),
		wake:       make(chan struct{}, 1),
		stop:       make(chan struct{}),
		sessions:   map[sessionKey]*spybox.Session{},
	}
	recs, err := s.store.List()
	if err != nil {
		return nil, fmt.Errorf("service: loading job store: %w", err)
	}
	for _, rec := range recs {
		// Track the highest previously assigned sequence number so
		// restarted services never reuse an ID. (Create still guards
		// against a peer racing past us: ErrExists just bumps seq.)
		if n, ok := strings.CutPrefix(string(rec.Status.ID), "job-"); ok {
			if v, err := strconv.Atoi(n); err == nil && v > s.seq {
				s.seq = v
			}
		}
	}
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wg.Add(1)
	go s.observer()
	return s, nil
}

// notifyChangeLocked wakes every Wait by closing the change channel
// and installing a fresh one. Callers hold s.mu.
func (s *Service) notifyChangeLocked() {
	close(s.change)
	s.change = make(chan struct{})
}

// sessionKey identifies one pooled Session by the normalized Config
// fields that matter to it.
type sessionKey struct {
	seed     uint64
	scale    string
	arch     string
	parallel int
}

// normalize validates a spec up front and canonicalizes it: every
// experiment ID resolved (one error lists them all, with the valid
// names), the scale parsed and respelled, the seed defaulted, and the
// arch replaced by its resolved profile name so equivalent specs share
// cache entries and pooled sessions. Nothing runs on a bad spec.
func normalize(spec spybox.JobSpec) (spybox.JobSpec, error) {
	ids, err := spybox.ExpandIDs(spec.Experiments...)
	if err != nil {
		return spybox.JobSpec{}, err
	}
	spec.Experiments = ids
	scale, err := spybox.ParseScale(spec.Scale)
	if err != nil {
		return spybox.JobSpec{}, err
	}
	spec.Scale = scale.String()
	if spec.Seed == 0 {
		spec.Seed = spybox.DefaultSeed
	}
	sess, err := spybox.Open(spybox.Config{
		Seed: spec.Seed, Scale: scale, Arch: spec.Arch, Parallel: spec.Parallel,
	})
	if err != nil {
		return spybox.JobSpec{}, err
	}
	spec.Arch = sess.Profile().Name
	return spec, nil
}

// session returns the pooled Session for a normalized spec, opening
// it on first use with the service's event dispatcher. Sessions are
// safe for concurrent Run calls, so one session serves every job that
// shares its config.
func (s *Service) session(spec spybox.JobSpec) (*spybox.Session, error) {
	k := sessionKey{seed: spec.Seed, scale: spec.Scale, arch: spec.Arch, parallel: spec.Parallel}
	s.smu.Lock()
	defer s.smu.Unlock()
	if sess := s.sessions[k]; sess != nil {
		return sess, nil
	}
	scale, err := spybox.ParseScale(spec.Scale)
	if err != nil {
		return nil, err
	}
	sess, err := spybox.Open(spybox.Config{
		Seed: spec.Seed, Scale: scale, Arch: spec.Arch, Parallel: spec.Parallel,
		Events: s.publish,
	})
	if err != nil {
		return nil, err
	}
	s.sessions[k] = sess
	return sess, nil
}

// Submit implements spybox.JobService: validate, persist as queued
// (Create, so an ID collision with a peer process retries with the
// next sequence number instead of overwriting), nudge a worker.
func (s *Service) Submit(spec spybox.JobSpec) (spybox.JobID, error) {
	norm, err := normalize(spec)
	if err != nil {
		return "", err
	}
	status := spybox.JobStatus{Spec: norm, State: spybox.JobQueued, Total: len(norm.Experiments)}
	return s.submitStatus(status)
}

// submitStatus persists a pre-normalized queued status under a fresh
// ID; SubmitBatch shares it to stamp Batch on expanded jobs.
func (s *Service) submitStatus(status spybox.JobStatus) (spybox.JobID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", spybox.ErrClosed
	}
	counts, err := s.store.Counts()
	if err != nil {
		return "", fmt.Errorf("service: checking queue depth: %w", err)
	}
	if counts.Queued >= s.queueDepth {
		return "", fmt.Errorf("service: queue full (%d jobs pending)", counts.Queued)
	}
	for {
		s.seq++
		status.ID = spybox.JobID(fmt.Sprintf("job-%d", s.seq))
		err := s.store.Create(Record{Status: status})
		if err == nil {
			break
		}
		if !errors.Is(err, ErrExists) {
			s.seq--
			return "", fmt.Errorf("service: persisting job: %w", err)
		}
		// A peer sharing the store took this ID; try the next one.
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return status.ID, nil
}

// Job implements spybox.JobService.
func (s *Service) Job(id spybox.JobID) (spybox.JobStatus, error) {
	rec, ok, err := s.store.Get(id)
	if err != nil {
		return spybox.JobStatus{}, err
	}
	if !ok {
		return spybox.JobStatus{}, fmt.Errorf("%w: %s", spybox.ErrNoJob, id)
	}
	return rec.Status, nil
}

// Jobs returns every job's status, in submission order.
func (s *Service) Jobs() ([]spybox.JobStatus, error) {
	recs, err := s.store.List()
	if err != nil {
		return nil, err
	}
	out := make([]spybox.JobStatus, len(recs))
	for i, rec := range recs {
		out[i] = rec.Status
	}
	return out, nil
}

// Wait implements spybox.JobService. Local completions wake it
// immediately through the change broadcast; jobs finished by a peer
// process are noticed within one poll interval.
func (s *Service) Wait(ctx context.Context, id spybox.JobID) (spybox.JobStatus, error) {
	if ctx == nil {
		//spylint:allow ctxflow documented nil-ctx default: a nil ctx means wait forever, per the JobService contract
		ctx = context.Background()
	}
	for {
		s.mu.Lock()
		ch := s.change
		closed := s.closed
		running := s.rt[id] != nil
		s.mu.Unlock()
		status, err := s.Job(id)
		if err != nil || status.State.Terminal() {
			return status, err
		}
		if closed && !running {
			// Drained: nothing in this process will finish the job. It
			// survives (still queued) in a durable store for the next
			// start; report where it stands.
			return status, nil
		}
		timer := time.NewTimer(s.poll)
		select {
		case <-ch: // local state change: re-check immediately
		case <-timer.C: // a peer may have finished it
		case <-ctx.Done():
			timer.Stop()
			return status, ctx.Err()
		}
		timer.Stop()
	}
}

// Cancel implements spybox.JobService: queued jobs go terminal
// immediately and never start; jobs running in this process have
// their context cancelled, so the worker stops at the next trial
// boundary and persists the results completed so far; jobs running in
// a peer process are marked cancelled in the store — the peer's next
// lease renewal fails and it abandons the run (its partial results are
// lost; they lived only in its memory). Terminal jobs are left
// untouched.
func (s *Service) Cancel(id spybox.JobID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cancelLocked(id)
}

func (s *Service) cancelLocked(id spybox.JobID) error {
	rec, ok, err := s.store.Get(id)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s", spybox.ErrNoJob, id)
	}
	if rec.Status.State.Terminal() {
		return nil
	}
	if rt := s.rt[id]; rt != nil {
		// Running here (or claimed and about to): the run's context
		// stops it, and the worker persists partials and finishes.
		if rt.cancel != nil {
			rt.cancel()
		}
		return nil
	}
	// Queued, or running in a peer process. Terminal Put clears any
	// lease; a peer mid-run loses its lease and stands down without
	// writing (see the leaseLost guard in runJob).
	if rec.Status.State == spybox.JobRunning || rec.Lease.live(time.Now()) {
		rec.Status.Error = "cancelled while running elsewhere"
	} else {
		rec.Status.Error = "cancelled before start"
	}
	rec.Status.State = spybox.JobCancelled
	if err := s.store.Put(rec); err != nil {
		return err
	}
	s.closeSubsLocked(id)
	s.notifyChangeLocked()
	return nil
}

// Delete cancels the job if it is still live and removes its record.
// A job running in this process must finish persisting its partial
// results before the record can be removed out from under it; ctx
// bounds that wait (nil means wait indefinitely). The job stays
// cancelled either way — on ctx expiry only the record removal is
// abandoned.
func (s *Service) Delete(ctx context.Context, id spybox.JobID) error {
	if ctx == nil {
		//spylint:allow ctxflow documented nil-ctx default: wait for the run to persist, as before the ctx parameter existed
		ctx = context.Background()
	}
	s.mu.Lock()
	if err := s.cancelLocked(id); err != nil {
		s.mu.Unlock()
		return err
	}
	rt := s.rt[id]
	s.mu.Unlock()
	if rt != nil {
		select {
		case <-rt.done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s.mu.Lock()
	s.closeSubsLocked(id)
	s.notifyChangeLocked()
	s.mu.Unlock()
	return s.store.Delete(id)
}

// Result implements spybox.JobService.
func (s *Service) Result(id spybox.JobID) ([]*report.Result, error) {
	rec, ok, err := s.store.Get(id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", spybox.ErrNoJob, id)
	}
	if !rec.Status.State.Terminal() {
		return nil, fmt.Errorf("service: job %s is %s; results come after it finishes (Wait first)",
			id, rec.Status.State)
	}
	return rec.Results, nil
}

// Watch subscribes to a job's progress events. The channel closes
// when the job reaches a terminal state (immediately, for already
// terminal jobs); a slow receiver drops events rather than stalling
// the simulation. Only the process running the job sees its events,
// so a stream opened on a peer's job carries nothing and simply
// closes when the job finishes. The returned func unsubscribes.
func (s *Service) Watch(id spybox.JobID) (<-chan spybox.Event, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok, err := s.store.Get(id)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", spybox.ErrNoJob, id)
	}
	ch := make(chan spybox.Event, 64)
	if rec.Status.State.Terminal() || s.closed {
		close(ch)
		return ch, func() {}, nil
	}
	if s.subs[id] == nil {
		s.subs[id] = map[chan spybox.Event]struct{}{}
	}
	s.subs[id][ch] = struct{}{}
	unsub := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if set, ok := s.subs[id]; ok {
			if _, live := set[ch]; live {
				delete(set, ch)
				close(ch)
				if len(set) == 0 {
					delete(s.subs, id)
				}
			}
		}
	}
	return ch, unsub, nil
}

// publish fans a session event out to the job's subscribers. It is
// the Events callback of every pooled session, so ev.Job identifies
// the run.
func (s *Service) publish(ev spybox.Event) {
	if ev.Job == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for ch := range s.subs[ev.Job] {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, never stall the simulation
		}
	}
}

// closeSubsLocked ends every Watch stream for id. Callers hold s.mu.
func (s *Service) closeSubsLocked(id spybox.JobID) {
	for ch := range s.subs[id] {
		close(ch)
	}
	delete(s.subs, id)
}

// finishLocked closes out this process's runtime state for a job that
// reached a terminal state (or was lost to a peer): done is closed so
// Delete stops blocking, every subscriber stream ends, waiters are
// woken, and the rt entry is dropped so a long-lived server doesn't
// accumulate one per job ever run. Callers hold s.mu.
func (s *Service) finishLocked(id spybox.JobID) {
	if rt := s.rt[id]; rt != nil {
		select {
		case <-rt.done:
		default:
			close(rt.done)
		}
		delete(s.rt, id)
	}
	s.closeSubsLocked(id)
	s.notifyChangeLocked()
}

// worker claims and runs jobs until Close. An idle worker sleeps
// until a local Submit nudges it or the poll interval elapses (a peer
// process may have submitted into the shared store).
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		rec, ok, err := s.store.Claim(s.owner, s.leaseTTL)
		if err == nil && ok {
			s.runJob(rec)
			continue // drain: look for more before sleeping
		}
		timer := time.NewTimer(s.poll)
		select {
		case <-s.stop:
			timer.Stop()
			return
		case <-s.wake:
		case <-timer.C:
		}
		timer.Stop()
	}
}

// observer closes Watch streams for jobs that a peer process finished
// (locally run jobs close theirs through finishLocked, immediately).
// It only touches the store while streams are open.
func (s *Service) observer() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.poll)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.mu.Lock()
			for id := range s.subs {
				if s.rt[id] != nil {
					continue // running here: finishLocked will close it
				}
				rec, ok, err := s.store.Get(id)
				if err != nil {
					continue
				}
				if !ok || rec.Status.State.Terminal() {
					s.closeSubsLocked(id)
					s.notifyChangeLocked()
				}
			}
			s.mu.Unlock()
		}
	}
}

// runJob executes one claimed job: each experiment answered from the
// cache when possible, simulated on the pooled session otherwise,
// with the record updated after every experiment so observers (and
// the store) always hold the latest progress. A renewal goroutine
// keeps the lease alive; losing it (the process stalled past the TTL
// and a peer reclaimed the job, or a peer cancelled it) aborts the
// run, and the terminal write is skipped — whoever holds the lease
// now owns the record.
func (s *Service) runJob(claimed Record) {
	id := claimed.Status.ID
	s.mu.Lock()
	select {
	case <-s.stop:
		// Draining: return the claim so the job stays queued for a
		// peer or the next start.
		s.mu.Unlock()
		_ = s.store.Release(id, s.owner)
		return
	default:
	}
	rec, ok, err := s.store.Get(id)
	if err != nil {
		// The claim is real even when the record cannot be read back
		// (a transient store error): return it rather than squat on
		// the lease until the TTL expires.
		s.mu.Unlock()
		_ = s.store.Release(id, s.owner)
		return
	}
	if !ok || rec.Status.State.Terminal() {
		// Deleted or cancelled between claim and here; the record is
		// gone or a terminal Put already cleared the lease.
		s.mu.Unlock()
		//spylint:allow leaselife deleted or terminal record: the lease died with it, nothing to release
		return
	}
	//spylint:allow ctxflow the job outlives the submitting request; cancellation routes through Cancel/Delete and lease loss, not a caller ctx
	ctx, cancel := context.WithCancel(context.Background())
	rt := &jobRT{cancel: cancel, done: make(chan struct{})}
	s.rt[id] = rt
	rec.Status.State = spybox.JobRunning
	rec.Status.Done = 0
	rec.Status.CacheHits = 0
	rec.Status.Error = ""
	putErr := s.store.Put(rec)
	s.mu.Unlock()
	defer cancel()

	// Renew the lease while the job runs. A failed renewal means the
	// job is no longer ours; stop simulating and stand down.
	var leaseLost atomic.Bool
	renewStop := make(chan struct{})
	renewDone := make(chan struct{})
	go func() {
		defer close(renewDone)
		ticker := time.NewTicker(s.leaseTTL / 3)
		defer ticker.Stop()
		for {
			select {
			case <-renewStop:
				return
			case <-ticker.C:
				if err := s.store.Renew(id, s.owner, s.leaseTTL); err != nil {
					leaseLost.Store(true)
					cancel()
					return
				}
			}
		}
	}()

	spec := rec.Status.Spec
	var results []*report.Result
	cacheHits := 0
	runErr := putErr
	if runErr == nil {
		var sess *spybox.Session
		sess, runErr = s.session(spec)
		for _, exptID := range spec.Experiments {
			if runErr != nil {
				break
			}
			if ctx.Err() != nil {
				runErr = &spybox.InterruptedError{
					Completed: len(results), Total: len(spec.Experiments), Cause: ctx.Err(),
				}
				break
			}
			key := CacheKey(spec.Seed, spec.Scale, spec.Arch, exptID)
			if r, ok := s.cache.Get(key); ok {
				cacheHits++
				results = append(results, r)
				s.publishCached(id, exptID)
			} else {
				var rs []*report.Result
				rs, runErr = sess.RunJob(ctx, id, exptID)
				results = append(results, rs...)
				if runErr != nil {
					break
				}
				// An uncacheable result is still served fresh; only
				// future duplicates pay for the failed Put.
				_ = s.cache.Put(key, rs[0])
			}
			// Progress checkpoint. No s.mu: while the job is running,
			// this goroutine is the record's only writer (cancellation
			// routes through rt.cancel, Delete blocks on rt.done, and
			// stores serialize internally). Results stay in memory
			// until the terminal write — a restart re-runs non-terminal
			// jobs from scratch anyway, so persisting partials per
			// experiment would only bloat the job log with every
			// completed payload.
			if leaseLost.Load() {
				break
			}
			if cur, ok, _ := s.store.Get(id); ok {
				cur.Status.Done = len(results)
				cur.Status.CacheHits = cacheHits
				_ = s.store.Put(cur)
			}
		}
	}
	close(renewStop)
	<-renewDone

	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.finishLocked(id)
	if leaseLost.Load() {
		// A peer owns (or cancelled) the job now; writing a terminal
		// record here could clobber its run. Stand down silently.
		return
	}
	rec, ok, _ = s.store.Get(id)
	if !ok { // deleted mid-run; runtime state still needs closing out
		//spylint:allow leaselife record deleted mid-run: the lease died with it, nothing to write or release
		return
	}
	rec.Status.Done = len(results)
	rec.Status.CacheHits = cacheHits
	rec.Results = results
	var interrupted *spybox.InterruptedError
	switch {
	case runErr == nil:
		rec.Status.State = spybox.JobDone
	case errors.As(runErr, &interrupted):
		rec.Status.State = spybox.JobCancelled
		rec.Status.Error = runErr.Error()
	default:
		rec.Status.State = spybox.JobFailed
		rec.Status.Error = runErr.Error()
	}
	_ = s.store.Put(rec)
}

// publishCached emits the experiment start/done pair for a cache hit,
// so SSE consumers see the same shape of stream whether an experiment
// was simulated or served from cache.
func (s *Service) publishCached(id spybox.JobID, exptID string) {
	title := ""
	if info, ok := spybox.LookupExperiment(exptID); ok {
		title = info.Title
	}
	s.publish(spybox.Event{Kind: spybox.ExperimentStart, Job: id, Experiment: exptID, Title: title, Trial: -1})
	s.publish(spybox.Event{Kind: spybox.ExperimentDone, Job: id, Experiment: exptID, Title: title, Trial: -1})
}

// Close drains the service: Submit starts refusing, jobs running here
// are cancelled (stopping at their next trial boundary, persisting
// the results completed so far), queued jobs stay queued in the store
// — for the next start, or for peer processes still draining the same
// store. Close returns when every worker has finished persisting, or
// with the context's error if that takes longer.
func (s *Service) Close(ctx context.Context) error {
	if ctx == nil {
		//spylint:allow ctxflow documented nil-ctx default: a nil ctx means drain without a deadline
		ctx = context.Background()
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.stop)
		for _, rt := range s.rt {
			if rt.cancel != nil {
				rt.cancel() // the worker persists partials, then finishes the rt
			}
		}
		// End Watch streams on jobs this process isn't running —
		// nothing here will ever feed them — and wake every Wait so it
		// can observe the drain.
		for id := range s.subs {
			if s.rt[id] == nil {
				s.closeSubsLocked(id)
			}
		}
		s.notifyChangeLocked()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain incomplete: %w", ctx.Err())
	}
}

// Stats is an operational snapshot of the service.
type Stats struct {
	Jobs      int `json:"jobs"` // records in the store
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
	// Leased counts non-terminal jobs under a live lease, across every
	// process sharing the store.
	Leased      int    `json:"leased"`
	Workers     int    `json:"workers"`
	Owner       string `json:"owner"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
	CacheSize   int    `json:"cache_entries"`
}

// Stats counts jobs by state and reports the cache counters. Counts
// come from the store's census, not a full List, so Stats stays cheap
// on a store full of finished jobs.
func (s *Service) Stats() (Stats, error) {
	c, err := s.store.Counts()
	if err != nil {
		return Stats{}, err
	}
	st := Stats{
		Jobs: c.Total, Queued: c.Queued, Running: c.Running,
		Done: c.Done, Failed: c.Failed, Cancelled: c.Cancelled,
		Leased: c.Leased, Workers: s.workers, Owner: s.owner,
		CacheSize: s.cache.Len(),
	}
	st.CacheHits, st.CacheMisses = s.cache.Stats()
	return st, nil
}

// Experiments exposes the registry metadata (spybox.Experiments) so
// the HTTP layer and clients discover experiments through the same
// index, sorted stably by registry (paper) order.
func (s *Service) Experiments() []spybox.ExperimentInfo {
	return spybox.Experiments()
}
