// Package service is the job-oriented layer above pkg/spybox: a
// durable job store, a bounded worker pool multiplexing jobs onto
// per-config pooled Sessions, a content-addressed result cache, and
// an HTTP server/client pair speaking the /v1 jobs API.
//
// Both halves implement spybox.JobService:
//
//	svc, _ := service.New(service.Options{})        // in-process
//	cli := service.NewClient("http://host:8080")    // over HTTP
//
// Submit validates a JobSpec entirely up front, persists it, and a
// worker runs its experiments one at a time — answering each from the
// result cache when an identical (seed, scale, arch, experiment) has
// already been simulated under this schema version, which determinism
// makes byte-identical to a fresh run. Cancellation stops a running
// job at the next trial boundary and persists the results completed
// so far; Close drains the pool the same way, and a FileStore brings
// still-queued jobs back after a restart.
package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"spybox/pkg/spybox"
	"spybox/pkg/spybox/report"
)

// Options parameterize New.
type Options struct {
	// Store persists jobs; nil means a fresh in-memory store. Every
	// non-terminal record found in the store at startup is re-enqueued
	// (a record still marked running belonged to a process that died
	// mid-job; determinism makes the re-run identical).
	Store Store
	// Cache is the result cache; nil means a fresh empty one.
	Cache *Cache
	// Workers bounds how many jobs run concurrently; <= 0 means 2.
	// Each job's trial-level parallelism is its own Spec.Parallel.
	Workers int
	// QueueDepth bounds how many jobs may wait; <= 0 means 256.
	// Submit fails when the queue is full rather than blocking.
	QueueDepth int
}

// jobRT is the runtime (never persisted) state of a live job.
type jobRT struct {
	cancel context.CancelFunc             // non-nil while running
	done   chan struct{}                  // closed on terminal state
	subs   map[chan spybox.Event]struct{} // event subscribers (Watch)
}

// Service is the in-process JobService implementation.
type Service struct {
	store   Store
	cache   *Cache
	workers int

	mu     sync.Mutex
	rt     map[spybox.JobID]*jobRT
	seq    int
	closed bool

	queue chan spybox.JobID
	stop  chan struct{}
	wg    sync.WaitGroup

	smu      sync.Mutex
	sessions map[sessionKey]*spybox.Session
}

var _ spybox.JobService = (*Service)(nil)

// New builds a service over the given store and starts its worker
// pool. Non-terminal jobs already in the store are re-enqueued in
// submission order.
func New(opts Options) (*Service, error) {
	if opts.Store == nil {
		opts.Store = NewMemStore()
	}
	if opts.Cache == nil {
		opts.Cache = NewCache()
	}
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	s := &Service{
		store:    opts.Store,
		cache:    opts.Cache,
		workers:  opts.Workers,
		rt:       map[spybox.JobID]*jobRT{},
		queue:    make(chan spybox.JobID, opts.QueueDepth),
		stop:     make(chan struct{}),
		sessions: map[sessionKey]*spybox.Session{},
	}
	recs, err := s.store.List()
	if err != nil {
		return nil, fmt.Errorf("service: loading job store: %w", err)
	}
	for _, rec := range recs {
		// Track the highest previously assigned sequence number so
		// restarted services never reuse an ID.
		if n, ok := strings.CutPrefix(string(rec.Status.ID), "job-"); ok {
			if v, err := strconv.Atoi(n); err == nil && v > s.seq {
				s.seq = v
			}
		}
		if rec.Status.State.Terminal() {
			continue
		}
		if rec.Status.State == spybox.JobRunning {
			rec.Status.State = spybox.JobQueued
			if err := s.store.Put(rec); err != nil {
				return nil, err
			}
		}
		s.rt[rec.Status.ID] = newJobRT()
		select {
		case s.queue <- rec.Status.ID:
		default:
			return nil, fmt.Errorf("service: job store holds more queued jobs than QueueDepth %d", opts.QueueDepth)
		}
	}
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

func newJobRT() *jobRT {
	return &jobRT{done: make(chan struct{}), subs: map[chan spybox.Event]struct{}{}}
}

// sessionKey identifies one pooled Session by the normalized Config
// fields that matter to it.
type sessionKey struct {
	seed     uint64
	scale    string
	arch     string
	parallel int
}

// normalize validates a spec up front and canonicalizes it: every
// experiment ID resolved (one error lists them all, with the valid
// names), the scale parsed and respelled, the seed defaulted, and the
// arch replaced by its resolved profile name so equivalent specs share
// cache entries and pooled sessions. Nothing runs on a bad spec.
func normalize(spec spybox.JobSpec) (spybox.JobSpec, error) {
	ids, err := spybox.ExpandIDs(spec.Experiments...)
	if err != nil {
		return spybox.JobSpec{}, err
	}
	spec.Experiments = ids
	scale, err := spybox.ParseScale(spec.Scale)
	if err != nil {
		return spybox.JobSpec{}, err
	}
	spec.Scale = scale.String()
	if spec.Seed == 0 {
		spec.Seed = spybox.DefaultSeed
	}
	sess, err := spybox.Open(spybox.Config{
		Seed: spec.Seed, Scale: scale, Arch: spec.Arch, Parallel: spec.Parallel,
	})
	if err != nil {
		return spybox.JobSpec{}, err
	}
	spec.Arch = sess.Profile().Name
	return spec, nil
}

// session returns the pooled Session for a normalized spec, opening
// it on first use with the service's event dispatcher. Sessions are
// safe for concurrent Run calls, so one session serves every job that
// shares its config.
func (s *Service) session(spec spybox.JobSpec) (*spybox.Session, error) {
	k := sessionKey{seed: spec.Seed, scale: spec.Scale, arch: spec.Arch, parallel: spec.Parallel}
	s.smu.Lock()
	defer s.smu.Unlock()
	if sess := s.sessions[k]; sess != nil {
		return sess, nil
	}
	scale, err := spybox.ParseScale(spec.Scale)
	if err != nil {
		return nil, err
	}
	sess, err := spybox.Open(spybox.Config{
		Seed: spec.Seed, Scale: scale, Arch: spec.Arch, Parallel: spec.Parallel,
		Events: s.publish,
	})
	if err != nil {
		return nil, err
	}
	s.sessions[k] = sess
	return sess, nil
}

// Submit implements spybox.JobService: validate, persist as queued,
// enqueue.
func (s *Service) Submit(spec spybox.JobSpec) (spybox.JobID, error) {
	norm, err := normalize(spec)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", spybox.ErrClosed
	}
	s.seq++
	id := spybox.JobID(fmt.Sprintf("job-%d", s.seq))
	rec := Record{Status: spybox.JobStatus{
		ID: id, Spec: norm, State: spybox.JobQueued, Total: len(norm.Experiments),
	}}
	if err := s.store.Put(rec); err != nil {
		s.seq--
		return "", fmt.Errorf("service: persisting job: %w", err)
	}
	// Persist, enqueue, and publish the runtime state in one critical
	// section: Close cannot slip between the closed check and the
	// enqueue (which would accept a job no worker will ever run), and
	// no observer can find the job before its runtime state exists.
	select {
	case s.queue <- id:
		s.rt[id] = newJobRT()
		return id, nil
	default:
		// Full queue: withdraw the record so the ID never resurfaces
		// as a phantom queued job after a restart. The sequence number
		// is reclaimed only if the withdrawal stuck — an ID must never
		// be reused over a record that refused to die.
		if err := s.store.Delete(id); err == nil {
			s.seq--
		}
		return "", fmt.Errorf("service: queue full (%d jobs pending)", cap(s.queue))
	}
}

// Job implements spybox.JobService.
func (s *Service) Job(id spybox.JobID) (spybox.JobStatus, error) {
	rec, ok, err := s.store.Get(id)
	if err != nil {
		return spybox.JobStatus{}, err
	}
	if !ok {
		return spybox.JobStatus{}, fmt.Errorf("%w: %s", spybox.ErrNoJob, id)
	}
	return rec.Status, nil
}

// Jobs returns every job's status, in submission order.
func (s *Service) Jobs() ([]spybox.JobStatus, error) {
	recs, err := s.store.List()
	if err != nil {
		return nil, err
	}
	out := make([]spybox.JobStatus, len(recs))
	for i, rec := range recs {
		out[i] = rec.Status
	}
	return out, nil
}

// Wait implements spybox.JobService.
func (s *Service) Wait(ctx context.Context, id spybox.JobID) (spybox.JobStatus, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	status, err := s.Job(id)
	if err != nil || status.State.Terminal() {
		return status, err
	}
	s.mu.Lock()
	rt := s.rt[id]
	s.mu.Unlock()
	if rt != nil {
		select {
		case <-rt.done:
		case <-ctx.Done():
			return status, ctx.Err()
		}
	}
	return s.Job(id)
}

// Cancel implements spybox.JobService: queued jobs go terminal
// immediately and never start; running jobs have their context
// cancelled, so the worker stops at the next trial boundary and
// persists the results completed so far. Terminal jobs are left
// untouched.
func (s *Service) Cancel(id spybox.JobID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cancelLocked(id)
}

func (s *Service) cancelLocked(id spybox.JobID) error {
	rec, ok, err := s.store.Get(id)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s", spybox.ErrNoJob, id)
	}
	rt := s.rt[id]
	switch rec.Status.State {
	case spybox.JobQueued:
		rec.Status.State = spybox.JobCancelled
		rec.Status.Error = "cancelled before start"
		if err := s.store.Put(rec); err != nil {
			return err
		}
		s.finishLocked(id, rt)
	case spybox.JobRunning:
		if rt != nil && rt.cancel != nil {
			rt.cancel()
		}
	}
	return nil
}

// Delete cancels the job if it is still live and removes its record.
func (s *Service) Delete(id spybox.JobID) error {
	s.mu.Lock()
	if err := s.cancelLocked(id); err != nil {
		s.mu.Unlock()
		return err
	}
	rt := s.rt[id]
	s.mu.Unlock()
	if rt != nil {
		// A running job must finish persisting its partial results
		// before the record can be removed out from under it.
		<-rt.done
	}
	s.mu.Lock()
	delete(s.rt, id)
	s.mu.Unlock()
	return s.store.Delete(id)
}

// Result implements spybox.JobService.
func (s *Service) Result(id spybox.JobID) ([]*report.Result, error) {
	rec, ok, err := s.store.Get(id)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", spybox.ErrNoJob, id)
	}
	if !rec.Status.State.Terminal() {
		return nil, fmt.Errorf("service: job %s is %s; results come after it finishes (Wait first)",
			id, rec.Status.State)
	}
	return rec.Results, nil
}

// Watch subscribes to a job's progress events. The channel closes
// when the job reaches a terminal state (immediately, for already
// terminal jobs); a slow receiver drops events rather than stalling
// the simulation. The returned func unsubscribes.
func (s *Service) Watch(id spybox.JobID) (<-chan spybox.Event, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok, err := s.store.Get(id)
	if err != nil {
		return nil, nil, err
	}
	if !ok {
		return nil, nil, fmt.Errorf("%w: %s", spybox.ErrNoJob, id)
	}
	ch := make(chan spybox.Event, 64)
	rt := s.rt[id]
	if rt == nil { // terminal (or store-loaded terminal): closed stream
		close(ch)
		return ch, func() {}, nil
	}
	select {
	case <-rt.done:
		close(ch)
		return ch, func() {}, nil
	default:
	}
	rt.subs[ch] = struct{}{}
	unsub := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if _, live := rt.subs[ch]; live {
			delete(rt.subs, ch)
			close(ch)
		}
	}
	return ch, unsub, nil
}

// publish fans a session event out to the job's subscribers. It is
// the Events callback of every pooled session, so ev.Job identifies
// the run.
func (s *Service) publish(ev spybox.Event) {
	if ev.Job == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rt := s.rt[ev.Job]
	if rt == nil {
		return
	}
	for ch := range rt.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, never stall the simulation
		}
	}
}

// finishLocked closes out a job's runtime state: done is closed,
// every subscriber stream ends, and the rt entry is dropped so a
// long-lived server doesn't accumulate one per job ever run (Wait,
// Watch, publish, and Cancel all treat a missing rt as "no longer
// live"). Callers hold s.mu and have already persisted the terminal
// record.
func (s *Service) finishLocked(id spybox.JobID, rt *jobRT) {
	if rt == nil {
		return
	}
	select {
	case <-rt.done:
		return // already finished
	default:
	}
	close(rt.done)
	rt.cancel = nil
	for ch := range rt.subs {
		delete(rt.subs, ch)
		close(ch)
	}
	delete(s.rt, id)
}

// worker drains the queue until Close.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		select {
		case <-s.stop:
			return
		case id := <-s.queue:
			s.runJob(id)
		}
	}
}

// runJob executes one queued job: each experiment answered from the
// cache when possible, simulated on the pooled session otherwise,
// with the record updated after every experiment so observers (and
// the store) always hold the latest progress.
func (s *Service) runJob(id spybox.JobID) {
	s.mu.Lock()
	rec, ok, err := s.store.Get(id)
	if err != nil || !ok || rec.Status.State != spybox.JobQueued {
		s.mu.Unlock()
		return // cancelled or deleted while queued
	}
	select {
	case <-s.stop:
		// Draining: leave the job queued so a FileStore-backed
		// service picks it up after restart.
		s.mu.Unlock()
		return
	default:
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt := s.rt[id]
	if rt == nil { // store-loaded job raced a Delete; nothing to run
		s.mu.Unlock()
		cancel()
		return
	}
	rt.cancel = cancel
	rec.Status.State = spybox.JobRunning
	putErr := s.store.Put(rec)
	s.mu.Unlock()
	defer cancel()

	spec := rec.Status.Spec
	var results []*report.Result
	cacheHits := 0
	runErr := putErr
	if runErr == nil {
		var sess *spybox.Session
		sess, runErr = s.session(spec)
		for _, exptID := range spec.Experiments {
			if runErr != nil {
				break
			}
			if ctx.Err() != nil {
				runErr = &spybox.InterruptedError{
					Completed: len(results), Total: len(spec.Experiments), Cause: ctx.Err(),
				}
				break
			}
			key := CacheKey(spec.Seed, spec.Scale, spec.Arch, exptID)
			if r, ok := s.cache.Get(key); ok {
				cacheHits++
				results = append(results, r)
				s.publishCached(id, exptID)
			} else {
				var rs []*report.Result
				rs, runErr = sess.RunJob(ctx, id, exptID)
				results = append(results, rs...)
				if runErr != nil {
					break
				}
				// An uncacheable result is still served fresh; only
				// future duplicates pay for the failed Put.
				_ = s.cache.Put(key, rs[0])
			}
			// Progress checkpoint. No s.mu: while the job is running,
			// this goroutine is the record's only writer (queued-state
			// cancellation can't touch it any more, Delete blocks on
			// rt.done, and stores serialize internally). Results stay
			// in memory until the terminal write — a restart re-runs
			// non-terminal jobs from scratch anyway, so persisting
			// partials per experiment would only bloat every FileStore
			// rewrite with all completed payloads.
			if cur, ok, _ := s.store.Get(id); ok {
				cur.Status.Done = len(results)
				cur.Status.CacheHits = cacheHits
				_ = s.store.Put(cur)
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok, _ = s.store.Get(id)
	if !ok { // deleted mid-run; runtime state still needs closing out
		s.finishLocked(id, rt)
		return
	}
	rec.Status.Done = len(results)
	rec.Status.CacheHits = cacheHits
	rec.Results = results
	var interrupted *spybox.InterruptedError
	switch {
	case runErr == nil:
		rec.Status.State = spybox.JobDone
	case errors.As(runErr, &interrupted):
		rec.Status.State = spybox.JobCancelled
		rec.Status.Error = runErr.Error()
	default:
		rec.Status.State = spybox.JobFailed
		rec.Status.Error = runErr.Error()
	}
	_ = s.store.Put(rec)
	s.finishLocked(id, rt)
}

// publishCached emits the experiment start/done pair for a cache hit,
// so SSE consumers see the same shape of stream whether an experiment
// was simulated or served from cache.
func (s *Service) publishCached(id spybox.JobID, exptID string) {
	title := ""
	if info, ok := spybox.LookupExperiment(exptID); ok {
		title = info.Title
	}
	s.publish(spybox.Event{Kind: spybox.ExperimentStart, Job: id, Experiment: exptID, Title: title, Trial: -1})
	s.publish(spybox.Event{Kind: spybox.ExperimentDone, Job: id, Experiment: exptID, Title: title, Trial: -1})
}

// Close drains the service: Submit starts refusing, running jobs are
// cancelled (stopping at their next trial boundary, persisting the
// results completed so far), queued jobs stay queued in the store for
// the next start. Close returns when every worker has finished
// persisting, or with the context's error if that takes longer.
func (s *Service) Close(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.stop)
		for id, rt := range s.rt {
			if rt.cancel != nil {
				rt.cancel() // running: the worker persists partials, then finishes the rt
				continue
			}
			// Queued: the job stays queued in the store for the next
			// start, but its runtime is over — release Wait callers
			// and end Watch streams now, or they would hang on a job
			// no worker will ever claim. (A worker that already
			// popped the ID but hasn't marked it running is blocked
			// on s.mu right now and will observe stop and walk away.)
			if rec, ok, _ := s.store.Get(id); ok && rec.Status.State == spybox.JobQueued {
				s.finishLocked(id, rt)
			}
		}
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("service: drain incomplete: %w", ctx.Err())
	}
}

// Stats is an operational snapshot of the service.
type Stats struct {
	Jobs        int   `json:"jobs"` // records in the store
	Queued      int   `json:"queued"`
	Running     int   `json:"running"`
	Done        int   `json:"done"`
	Failed      int   `json:"failed"`
	Cancelled   int   `json:"cancelled"`
	Workers     int   `json:"workers"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheSize   int   `json:"cache_entries"`
}

// Stats counts jobs by state and reports the cache counters.
func (s *Service) Stats() (Stats, error) {
	recs, err := s.store.List()
	if err != nil {
		return Stats{}, err
	}
	st := Stats{Jobs: len(recs), Workers: s.workers, CacheSize: s.cache.Len()}
	st.CacheHits, st.CacheMisses = s.cache.Stats()
	for _, rec := range recs {
		switch rec.Status.State {
		case spybox.JobQueued:
			st.Queued++
		case spybox.JobRunning:
			st.Running++
		case spybox.JobDone:
			st.Done++
		case spybox.JobFailed:
			st.Failed++
		case spybox.JobCancelled:
			st.Cancelled++
		}
	}
	return st, nil
}

// Experiments exposes the registry metadata (spybox.Experiments) so
// the HTTP layer and clients discover experiments through the same
// index, sorted stably by registry (paper) order.
func (s *Service) Experiments() []spybox.ExperimentInfo {
	return spybox.Experiments()
}
