// The HTTP client of a `spybox serve` process. Client implements
// spybox.JobService, so code written against the interface switches
// between in-process and remote execution by swapping a constructor —
// and the CLI's submit/status/wait subcommands are built purely on
// this type, which keeps the HTTP API complete enough to self-host.

package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"spybox/pkg/spybox"
	"spybox/pkg/spybox/report"
)

// Client speaks the /v1 jobs API.
type Client struct {
	base string
	hc   *http.Client
}

var _ spybox.JobService = (*Client)(nil)

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). The scheme is defaulted to http:// and a
// trailing slash is dropped, so bare "host:port" works too.
func NewClient(base string) *Client {
	base = strings.TrimSuffix(base, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: base, hc: &http.Client{}}
}

// do runs one request and decodes the JSON response into out (when
// non-nil), mapping error payloads back to errors — 404s on job
// resources unwrap to spybox.ErrNoJob, 503s to spybox.ErrClosed, so
// errors.Is works across the wire.
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return c.asError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// asError turns a non-2xx response into an error carrying the
// server's message.
func (c *Client) asError(resp *http.Response) error {
	var e errorJSON
	msg := resp.Status
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		msg = e.Error
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		if strings.Contains(msg, spybox.ErrNoJob.Error()) {
			return fmt.Errorf("%w (%s)", spybox.ErrNoJob, strings.TrimPrefix(msg, spybox.ErrNoJob.Error()+": "))
		}
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w (%s)", spybox.ErrClosed, resp.Status)
	}
	return fmt.Errorf("service: %s %s: %s", resp.Request.Method, resp.Request.URL.Path, msg)
}

// Submit implements spybox.JobService.
func (c *Client) Submit(spec spybox.JobSpec) (spybox.JobID, error) {
	var status spybox.JobStatus
	if err := c.do(http.MethodPost, "/v1/jobs", spec, &status); err != nil {
		return "", err
	}
	return status.ID, nil
}

// SubmitBatch submits a sweep (POST /v1/jobs:batch); the server
// expands it into one job per experiment × scale × seed combination.
func (c *Client) SubmitBatch(spec BatchSpec) (BatchStatus, error) {
	var st BatchStatus
	err := c.do(http.MethodPost, "/v1/jobs:batch", spec, &st)
	return st, err
}

// Batch fetches a batch's member jobs and census (GET /v1/batches/{id}).
func (c *Client) Batch(id string) (BatchStatus, error) {
	var st BatchStatus
	err := c.do(http.MethodGet, "/v1/batches/"+id, nil, &st)
	return st, err
}

// WaitBatch polls until every job in the batch is terminal (or ctx
// ends), with the same gentle backoff as Wait.
func (c *Client) WaitBatch(ctx context.Context, id string) (BatchStatus, error) {
	if ctx == nil {
		//spylint:allow ctxflow documented nil-ctx default: a nil ctx means poll until the batch is terminal
		ctx = context.Background()
	}
	delay := 25 * time.Millisecond
	for {
		st, err := c.Batch(id)
		if err != nil || st.Terminal() {
			return st, err
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > 500*time.Millisecond {
			delay = 500 * time.Millisecond
		}
	}
}

// Job implements spybox.JobService.
func (c *Client) Job(id spybox.JobID) (spybox.JobStatus, error) {
	var status spybox.JobStatus
	err := c.do(http.MethodGet, "/v1/jobs/"+string(id), nil, &status)
	return status, err
}

// Jobs lists every job on the server, in submission order.
func (c *Client) Jobs() ([]spybox.JobStatus, error) {
	var jobs []spybox.JobStatus
	err := c.do(http.MethodGet, "/v1/jobs", nil, &jobs)
	return jobs, err
}

// Wait implements spybox.JobService by polling with gentle backoff
// (25ms doubling to 500ms). Polling rather than holding an SSE stream
// keeps Wait robust against proxies that buffer event streams; use
// Events for live progress.
func (c *Client) Wait(ctx context.Context, id spybox.JobID) (spybox.JobStatus, error) {
	if ctx == nil {
		//spylint:allow ctxflow documented nil-ctx default: a nil ctx means wait forever, per the JobService contract
		ctx = context.Background()
	}
	delay := 25 * time.Millisecond
	for {
		status, err := c.Job(id)
		if err != nil || status.State.Terminal() {
			return status, err
		}
		select {
		case <-ctx.Done():
			return status, ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > 500*time.Millisecond {
			delay = 500 * time.Millisecond
		}
	}
}

// Cancel implements spybox.JobService (POST .../cancel — the record
// survives; see Delete).
func (c *Client) Cancel(id spybox.JobID) error {
	return c.do(http.MethodPost, "/v1/jobs/"+string(id)+"/cancel", nil, nil)
}

// Delete cancels the job if live and removes its record.
func (c *Client) Delete(id spybox.JobID) error {
	return c.do(http.MethodDelete, "/v1/jobs/"+string(id), nil, nil)
}

// Result implements spybox.JobService, decoding the report/v1
// document the server serves for terminal jobs.
func (c *Client) Result(id spybox.JobID) ([]*report.Result, error) {
	doc, err := c.ResultDocument(id)
	if err != nil {
		return nil, err
	}
	return report.Decode(bytes.NewReader(doc))
}

// ResultDocument returns the raw report/v1 bytes of a terminal job,
// exactly as the server sent them — for consumers that care about
// byte identity (the cache smoke test) or just pipe the document on.
func (c *Client) ResultDocument(id spybox.JobID) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/v1/jobs/"+string(id)+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, c.asError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Experiments fetches the registry metadata (GET /v1/experiments).
func (c *Client) Experiments() ([]spybox.ExperimentInfo, error) {
	var infos []spybox.ExperimentInfo
	err := c.do(http.MethodGet, "/v1/experiments", nil, &infos)
	return infos, err
}

// Stats fetches the queue and cache counters (GET /v1/stats).
func (c *Client) Stats() (Stats, error) {
	var st Stats
	err := c.do(http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Events consumes the job's SSE stream, invoking fn for every
// progress message, until the stream's final status message (or the
// context ends). The returned status is normally terminal, but a
// draining server closes the streams of still-queued jobs — check
// State.Terminal() before fetching results. fn may be nil to just
// wait on the stream.
func (c *Client) Events(ctx context.Context, id spybox.JobID, fn func(EventMsg)) (spybox.JobStatus, error) {
	if ctx == nil {
		//spylint:allow ctxflow documented nil-ctx default: a nil ctx means follow the stream to its final status
		ctx = context.Background()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+string(id)+"/events", nil)
	if err != nil {
		return spybox.JobStatus{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return spybox.JobStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return spybox.JobStatus{}, c.asError(resp)
	}
	var event string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data := []byte(line[len("data: "):])
			switch event {
			case "progress":
				var msg EventMsg
				if err := json.Unmarshal(data, &msg); err == nil && fn != nil {
					fn(msg)
				}
			case "status":
				var status spybox.JobStatus
				if err := json.Unmarshal(data, &status); err != nil {
					return spybox.JobStatus{}, fmt.Errorf("service: bad terminal status: %w", err)
				}
				return status, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return spybox.JobStatus{}, ctx.Err()
		}
		return spybox.JobStatus{}, err
	}
	return spybox.JobStatus{}, errors.New("service: event stream ended without a terminal status")
}
