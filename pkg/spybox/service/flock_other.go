//go:build !unix

package service

import (
	"errors"
	"os"
)

// Cross-process store sharing relies on flock, which this platform
// does not provide; LogStore refuses to open rather than running a
// fleet without mutual exclusion.
func flockExclusive(f *os.File) error {
	return errors.New("service: shared job stores require flock, unavailable on this platform")
}

func funlock(f *os.File) error { return nil }
