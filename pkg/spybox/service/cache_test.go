package service

import (
	"testing"

	"spybox/pkg/spybox/report"
)

func TestCacheKeyDiscriminates(t *testing.T) {
	base := CacheKey(1, "small", "p100-dgx1", "fig4")
	for name, other := range map[string]string{
		"seed":       CacheKey(2, "small", "p100-dgx1", "fig4"),
		"scale":      CacheKey(1, "paper", "p100-dgx1", "fig4"),
		"arch":       CacheKey(1, "small", "v100-dgx2", "fig4"),
		"experiment": CacheKey(1, "small", "p100-dgx1", "fig9"),
	} {
		if other == base {
			t.Errorf("key ignores %s", name)
		}
	}
	if CacheKey(1, "small", "p100-dgx1", "fig4") != base {
		t.Error("key is not stable")
	}
}

func TestCacheHitMissCountersAndIsolation(t *testing.T) {
	c := NewCache()
	key := CacheKey(1, "small", "p100-dgx1", "fig4")
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	r := report.New("fig4", "timing")
	r.SetMetric("local_boundary", "cycles", 400)
	if err := c.Put(key, r); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || got.Metrics["local_boundary"] != 400 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	// Mutating a returned result must not leak into the cache.
	got.SetMetric("local_boundary", "cycles", 999)
	again, _ := c.Get(key)
	if again.Metrics["local_boundary"] != 400 {
		t.Error("cache entry mutated through a returned result")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 2, 1", hits, misses)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

// TestCacheCorruptedEntryDropKeepsOrderBounded is the regression test
// for the order-list leak: dropping a corrupted entry on Get used to
// leave its key in the FIFO order list, so each corrupt→drop→re-Put
// cycle grew the list by one forever (and eviction accounting drifted
// with it).
func TestCacheCorruptedEntryDropKeepsOrderBounded(t *testing.T) {
	c := NewCacheSize(4)
	key := CacheKey(1, "small", "p100-dgx1", "fig4")
	for cycle := 0; cycle < 10; cycle++ {
		if err := c.Put(key, report.New("fig4", "t")); err != nil {
			t.Fatal(err)
		}
		// Corrupt the stored bytes in place, as disk rot or a codec
		// bug would.
		c.mu.Lock()
		c.entries[key] = []byte("not a report document")
		c.mu.Unlock()
		if _, ok := c.Get(key); ok {
			t.Fatal("corrupted entry served")
		}
		if c.Len() != 0 {
			t.Fatalf("cycle %d: corrupted entry not dropped (Len %d)", cycle, c.Len())
		}
		c.mu.Lock()
		orderLen := len(c.order)
		c.mu.Unlock()
		if orderLen != 0 {
			t.Fatalf("cycle %d: dropped key still in order (len %d)", cycle, orderLen)
		}
	}
	// The cache still works and evicts correctly after the churn.
	put := func(seed uint64) string {
		k := CacheKey(seed, "small", "p100-dgx1", "fig4")
		if err := c.Put(k, report.New("fig4", "t")); err != nil {
			t.Fatal(err)
		}
		return k
	}
	keys := []string{put(1), put(2), put(3), put(4), put(5)}
	if c.Len() != 4 {
		t.Fatalf("Len = %d after overflow, want 4", c.Len())
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Error("oldest entry survived eviction")
	}
	if _, ok := c.Get(keys[4]); !ok {
		t.Error("newest entry evicted")
	}
}

func TestCacheEvictsOldestAtLimit(t *testing.T) {
	c := NewCacheSize(2)
	put := func(seed uint64) string {
		key := CacheKey(seed, "small", "p100-dgx1", "fig4")
		if err := c.Put(key, report.New("fig4", "t")); err != nil {
			t.Fatal(err)
		}
		return key
	}
	k1, k2, k3 := put(1), put(2), put(3)
	if c.Len() != 2 {
		t.Fatalf("Len = %d after overflow, want 2", c.Len())
	}
	if _, ok := c.Get(k1); ok {
		t.Error("oldest entry survived eviction")
	}
	for _, k := range []string{k2, k3} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("recent entry %s evicted", k[:8])
		}
	}
	// Re-putting an existing key is an update, not growth.
	put(3)
	if c.Len() != 2 {
		t.Errorf("Len = %d after re-put", c.Len())
	}
}
