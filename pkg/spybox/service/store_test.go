package service

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"spybox/pkg/spybox"
	"spybox/pkg/spybox/report"
)

func rec(id string, state spybox.JobState) Record {
	return Record{Status: spybox.JobStatus{
		ID: spybox.JobID(id), State: state,
		Spec:  spybox.JobSpec{Experiments: []string{"fig4"}, Seed: 1, Scale: "small", Arch: "p100-dgx1"},
		Total: 1,
	}}
}

// storeContract drives any Store through put/create/replace/list/
// delete/counts and the claim/renew/release lease cycle.
func storeContract(t *testing.T, s Store) {
	t.Helper()
	for _, id := range []string{"job-1", "job-2", "job-3"} {
		if err := s.Put(rec(id, spybox.JobQueued)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Create(rec("job-1", spybox.JobQueued)); !errors.Is(err, ErrExists) {
		t.Errorf("Create over an existing ID: %v", err)
	}
	if err := s.Create(rec("job-4", spybox.JobQueued)); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job-4"); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("job-2")
	if err != nil || !ok || got.Status.ID != "job-2" {
		t.Fatalf("Get(job-2) = %+v, %v, %v", got, ok, err)
	}
	if _, ok, _ := s.Get("job-9"); ok {
		t.Error("Get found an absent job")
	}
	// Replacement keeps the submission order.
	r := rec("job-1", spybox.JobDone)
	r.Results = []*report.Result{report.New("fig4", "t")}
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, r := range list {
		ids = append(ids, string(r.Status.ID))
	}
	if strings.Join(ids, ",") != "job-1,job-2,job-3" {
		t.Fatalf("List order %v, want submission order", ids)
	}
	if list[0].Status.State != spybox.JobDone || len(list[0].Results) != 1 {
		t.Errorf("replaced record not returned: %+v", list[0])
	}
	c, err := s.Counts()
	if err != nil || c.Total != 3 || c.Queued != 2 || c.Done != 1 || c.Leased != 0 {
		t.Fatalf("Counts = %+v, %v", c, err)
	}

	// Claim leases the oldest runnable job; the lease blocks a second
	// claim of the same record but not of its peers.
	claimed, ok, err := s.Claim("w1", time.Minute)
	if err != nil || !ok || claimed.Status.ID != "job-2" {
		t.Fatalf("Claim = %+v, %v, %v (want job-2: job-1 is done)", claimed.Status, ok, err)
	}
	if claimed.Lease == nil || claimed.Lease.Owner != "w1" {
		t.Fatalf("claimed without a lease: %+v", claimed.Lease)
	}
	claimed2, ok, err := s.Claim("w2", time.Minute)
	if err != nil || !ok || claimed2.Status.ID != "job-3" {
		t.Fatalf("second Claim = %+v, %v, %v", claimed2.Status, ok, err)
	}
	if _, ok, _ := s.Claim("w3", time.Minute); ok {
		t.Error("third Claim found work with everything leased or terminal")
	}
	if c, _ := s.Counts(); c.Leased != 2 {
		t.Errorf("Leased = %d, want 2", c.Leased)
	}
	// Renew and Release enforce ownership.
	if err := s.Renew("job-2", "w2", time.Minute); !errors.Is(err, ErrNotOwner) {
		t.Errorf("foreign Renew: %v", err)
	}
	if err := s.Renew("job-2", "w1", time.Minute); err != nil {
		t.Errorf("owner Renew: %v", err)
	}
	if err := s.Renew("job-9", "w1", time.Minute); !errors.Is(err, spybox.ErrNoJob) {
		t.Errorf("Renew on absent job: %v", err)
	}
	if err := s.Release("job-3", "w1"); !errors.Is(err, ErrNotOwner) {
		t.Errorf("foreign Release: %v", err)
	}
	if err := s.Release("job-3", "w2"); err != nil {
		t.Fatal(err)
	}
	// Released work is immediately claimable again.
	reclaimed, ok, err := s.Claim("w3", time.Minute)
	if err != nil || !ok || reclaimed.Status.ID != "job-3" {
		t.Fatalf("reclaim after release = %+v, %v, %v", reclaimed.Status, ok, err)
	}
	// A terminal Put clears the lease; Put never otherwise touches it.
	running := claimed
	running.Status.State = spybox.JobRunning
	running.Lease = nil // callers cannot smuggle lease edits through Put
	if err := s.Put(running); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := s.Get("job-2"); got.Lease == nil || got.Lease.Owner != "w1" {
		t.Errorf("Put dropped the lease: %+v", got.Lease)
	}
	done := running
	done.Status.State = spybox.JobDone
	if err := s.Put(done); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := s.Get("job-2"); got.Lease != nil {
		t.Errorf("terminal Put kept the lease: %+v", got.Lease)
	}
	if err := s.Renew("job-2", "w1", time.Minute); !errors.Is(err, ErrNotOwner) {
		t.Errorf("Renew after terminal put: %v", err)
	}

	if err := s.Delete("job-2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job-2"); err != nil { // absent delete is a no-op
		t.Fatal(err)
	}
	if list, _ = s.List(); len(list) != 2 {
		t.Fatalf("after delete, %d records", len(list))
	}
}

func TestMemStore(t *testing.T) { storeContract(t, NewMemStore()) }

func TestLogStore(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	storeContract(t, s)

	// Reopen: the log replays, including submission order and leases.
	s2, err := OpenLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	list, err := s2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Status.ID != "job-1" || list[1].Status.ID != "job-3" {
		t.Fatalf("reopened store holds %+v", list)
	}
	if list[0].Status.State != spybox.JobDone || len(list[0].Results) != 1 || list[0].Results[0].ID != "fig4" {
		t.Errorf("reopened record lost data: %+v", list[0])
	}
	if list[1].Lease == nil || list[1].Lease.Owner != "w3" {
		t.Errorf("reopened record lost its lease: %+v", list[1].Lease)
	}
}

// TestLogStoreMutationIsolation pins the deep-copy read path: mutating
// a Record returned by Get or List must never change stored state.
// (The old FileStore returned aliased Results slices, so a caller
// appending to them corrupted the store in memory.)
func TestStoreMutationIsolation(t *testing.T) {
	for _, tc := range []struct {
		name string
		open func(t *testing.T) Store
	}{
		{"mem", func(t *testing.T) Store { return NewMemStore() }},
		{"log", func(t *testing.T) Store {
			s, err := OpenLogStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			return s
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.open(t)
			r := rec("job-1", spybox.JobDone)
			res := report.New("fig4", "t")
			res.SetMetric("m", "cycles", 1)
			res.Artifacts = map[string][]byte{"bits": {1, 2, 3}}
			r.Results = []*report.Result{res}
			if err := s.Put(r); err != nil {
				t.Fatal(err)
			}
			// The caller's own slices must not be captured either.
			res.SetMetric("m", "cycles", 999)
			r.Status.Spec.Experiments[0] = "tampered"

			got, _, err := s.Get("job-1")
			if err != nil {
				t.Fatal(err)
			}
			if got.Results[0].Metrics["m"] != 1 || got.Status.Spec.Experiments[0] != "fig4" {
				t.Fatalf("store captured caller-owned memory: %+v", got)
			}
			// Mutate everything reachable from the returned record.
			got.Results[0].SetMetric("m", "cycles", 777)
			got.Results[0].Artifacts["bits"][0] = 9
			got.Results = append(got.Results[:0], nil)
			got.Status.Spec.Experiments[0] = "clobbered"

			again, _, err := s.Get("job-1")
			if err != nil {
				t.Fatal(err)
			}
			if again.Results[0].Metrics["m"] != 1 {
				t.Error("metric mutated through a returned record")
			}
			if again.Results[0].Artifacts["bits"][0] != 1 {
				t.Error("artifact bytes mutated through a returned record")
			}
			if again.Status.Spec.Experiments[0] != "fig4" {
				t.Error("spec mutated through a returned record")
			}
			list, err := s.List()
			if err != nil {
				t.Fatal(err)
			}
			list[0].Results[0].SetMetric("m", "cycles", 555)
			if final, _, _ := s.Get("job-1"); final.Results[0].Metrics["m"] != 1 {
				t.Error("metric mutated through List")
			}
		})
	}
}

// TestLogStoreTornFinalRecord simulates a crash mid-append: replay
// keeps every whole record, truncates the torn tail, and the store
// keeps working.
func TestLogStoreTornFinalRecord(t *testing.T) {
	for name, mangle := range map[string]func([]byte) []byte{
		// Half a frame header.
		"short-header": func(b []byte) []byte { return append(b, 0, 0) },
		// A plausible header whose payload never made it.
		"short-payload": func(b []byte) []byte {
			return append(b, 0, 0, 1, 0, 0xde, 0xad, 0xbe, 0xef, 'x')
		},
		// A whole frame whose payload bits rotted (CRC mismatch).
		"crc-mismatch": func(b []byte) []byte {
			fr := frame([]byte(`{"op":"delete","id":"job-1"}`))
			fr[9] ^= 0xff
			return append(b, fr...)
		},
		// A garbage length prefix.
		"garbage-length": func(b []byte) []byte {
			var hdr [8]byte
			binary.BigEndian.PutUint32(hdr[:4], 1<<30)
			return append(b, hdr[:]...)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := OpenLogStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(rec("job-1", spybox.JobQueued)); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(rec("job-2", spybox.JobQueued)); err != nil {
				t.Fatal(err)
			}
			s.Close()
			logPath := filepath.Join(dir, "log")
			b, err := os.ReadFile(logPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(logPath, mangle(b), 0o644); err != nil {
				t.Fatal(err)
			}
			s2, err := OpenLogStore(dir)
			if err != nil {
				t.Fatalf("torn log refused: %v", err)
			}
			defer s2.Close()
			if s2.TornRecords() != 1 {
				t.Errorf("TornRecords = %d, want 1", s2.TornRecords())
			}
			list, err := s2.List()
			if err != nil || len(list) != 2 {
				t.Fatalf("whole records lost: %d, %v", len(list), err)
			}
			// The truncated store accepts appends again and they stick.
			if err := s2.Put(rec("job-3", spybox.JobQueued)); err != nil {
				t.Fatal(err)
			}
			s3, err := OpenLogStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			if s3.TornRecords() != 0 {
				t.Errorf("reopen after truncation still torn: %d", s3.TornRecords())
			}
			if list, _ := s3.List(); len(list) != 3 {
				t.Errorf("post-truncation append lost: %d records", len(list))
			}
		})
	}
}

// TestLogStoreCompaction drives the log over its threshold and checks
// the snapshot+reset round-trip, including a reopen.
func TestLogStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenLogStore(dir, WithCompactBytes(1)) // every append compacts
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"job-1", "job-2", "job-3"} {
		if err := s.Put(rec(id, spybox.JobQueued)); err != nil {
			t.Fatal(err)
		}
	}
	done := rec("job-1", spybox.JobDone)
	done.Results = []*report.Result{report.New("fig4", "t")}
	if err := s.Put(done); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job-2"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("no snapshot after compaction: %v", err)
	}
	list, err := s.List()
	if err != nil || len(list) != 2 {
		t.Fatalf("compacted store lists %d records, %v", len(list), err)
	}
	s.Close()
	s2, err := OpenLogStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	list, err = s2.List()
	if err != nil || len(list) != 2 || list[0].Status.ID != "job-1" || list[1].Status.ID != "job-3" {
		t.Fatalf("reopened compacted store: %+v, %v", list, err)
	}
	if list[0].Status.State != spybox.JobDone || len(list[0].Results) != 1 {
		t.Errorf("compaction lost results: %+v", list[0])
	}
}

// TestLogStoreSchemaRefusal: foreign layouts are refused, not misread.
func TestLogStoreSchemaRefusal(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "log"),
		frame([]byte(`{"schema":"spybox.joblog/v999","gen":0}`)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLogStore(dir); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("foreign log schema opened: %v", err)
	}
	// The old single-file JSON store is refused with a pointer, not
	// silently shadowed by a fresh directory.
	file := filepath.Join(t.TempDir(), "jobs.json")
	if err := os.WriteFile(file, []byte(`{"schema":"spybox.jobs/v1","jobs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLogStore(file); err == nil || !strings.Contains(err.Error(), "directory") {
		t.Errorf("file-path store opened: %v", err)
	}
}

// TestLeaseExpiryReclaim: an owner that stops renewing loses the job
// to the next claimer; its stale Renew/Release then fail.
func TestLeaseExpiryReclaim(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	for _, tc := range []struct {
		name string
		open func(t *testing.T) Store
	}{
		{"mem", func(t *testing.T) Store {
			s := NewMemStore()
			s.now = clock
			return s
		}},
		{"log", func(t *testing.T) Store {
			s, err := OpenLogStore(t.TempDir(), withClock(clock))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { s.Close() })
			return s
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			now = time.Unix(1000, 0)
			s := tc.open(t)
			if err := s.Put(rec("job-1", spybox.JobQueued)); err != nil {
				t.Fatal(err)
			}
			if _, ok, err := s.Claim("dead", 10*time.Second); err != nil || !ok {
				t.Fatalf("claim: %v %v", ok, err)
			}
			// Mark it running, as the dead worker would have.
			r, _, _ := s.Get("job-1")
			r.Status.State = spybox.JobRunning
			if err := s.Put(r); err != nil {
				t.Fatal(err)
			}
			// While the lease is live, nobody else gets the job.
			if _, ok, _ := s.Claim("w2", 10*time.Second); ok {
				t.Fatal("leased job reclaimed early")
			}
			// After expiry, the job — still marked running — is handed
			// to the next claimer for a from-scratch re-run.
			now = now.Add(11 * time.Second)
			got, ok, err := s.Claim("w2", 10*time.Second)
			if err != nil || !ok || got.Status.ID != "job-1" {
				t.Fatalf("expired lease not reclaimed: %+v %v %v", got.Status, ok, err)
			}
			if got.Lease.Owner != "w2" {
				t.Errorf("lease owner after reclaim: %+v", got.Lease)
			}
			// The dead owner's writes are refused.
			if err := s.Renew("job-1", "dead", 10*time.Second); !errors.Is(err, ErrNotOwner) {
				t.Errorf("stale Renew: %v", err)
			}
			if err := s.Release("job-1", "dead"); !errors.Is(err, ErrNotOwner) {
				t.Errorf("stale Release: %v", err)
			}
		})
	}
}

// TestClaimFairness: claims rotate round-robin across fairness groups
// (client, batch, interactive) so one bulk submitter cannot starve
// the rest.
func TestClaimFairness(t *testing.T) {
	s := NewMemStore()
	put := func(id, client, batch string) {
		r := rec(id, spybox.JobQueued)
		r.Status.Spec.Client = client
		r.Status.Batch = batch
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	// A big batch submitted first, then an interactive job, then one
	// from a named client.
	for i := 1; i <= 6; i++ {
		put("job-"+string(rune('0'+i)), "", "batch-1")
	}
	put("job-7", "", "")      // interactive
	put("job-8", "alice", "") // named client
	var order []string
	for {
		got, ok, err := s.Claim("w", time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		g := got.Status.Spec.Client
		if g == "" {
			g = got.Status.Batch
		}
		if g == "" {
			g = "interactive"
		}
		order = append(order, g)
	}
	if len(order) != 8 {
		t.Fatalf("claimed %d jobs, want 8", len(order))
	}
	// The three groups alternate while all have work: the interactive
	// job and alice's job must both land within the first three claims
	// even though six batch jobs were submitted ahead of them.
	head := strings.Join(order[:3], ",")
	if !strings.Contains(head, "interactive") || !strings.Contains(head, "alice") {
		t.Errorf("head-of-line blocking: first claims were %v", order)
	}
	// Once only the batch remains, its jobs drain back-to-back.
	tail := order[3:]
	for _, g := range tail {
		if g != "batch-1" {
			t.Errorf("unexpected tail group %q in %v", g, order)
		}
	}
}

// TestClaimPriority: a high-priority interactive job submitted after
// a queued sweep is claimed first, ahead of the fairness rotation;
// equal priorities keep submission order within a group; and once the
// urgent work drains, the bulk tier resumes round-robin.
func TestClaimPriority(t *testing.T) {
	s := NewMemStore()
	put := func(id, batch string, prio int) {
		r := rec(id, spybox.JobQueued)
		r.Status.Batch = batch
		r.Status.Spec.Priority = prio
		if err := s.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	// A whole sweep lands first, then an urgent interactive job, then
	// a second interactive job at the same urgency.
	for i := 1; i <= 4; i++ {
		put("job-"+string(rune('0'+i)), "batch-1", 0)
	}
	put("job-5", "", 5) // interactive, urgent
	put("job-6", "", 5) // interactive, equally urgent, later

	var order []spybox.JobID
	for {
		got, ok, err := s.Claim("w", time.Minute)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		order = append(order, got.Status.ID)
	}
	if len(order) != 6 {
		t.Fatalf("claimed %d jobs, want 6", len(order))
	}
	// The urgent jobs overtake the entire queued sweep, oldest first.
	if order[0] != "job-5" || order[1] != "job-6" {
		t.Errorf("priority jobs did not overtake the sweep: claim order %v", order)
	}
	for _, id := range order[2:] {
		if got := s.tbl.byID[id].Status.Batch; got != "batch-1" {
			t.Errorf("unexpected job %s (group %q) in the bulk tail of %v", id, got, order)
		}
	}
}
