package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spybox/pkg/spybox"
	"spybox/pkg/spybox/report"
)

func rec(id string, state spybox.JobState) Record {
	return Record{Status: spybox.JobStatus{
		ID: spybox.JobID(id), State: state,
		Spec:  spybox.JobSpec{Experiments: []string{"fig4"}, Seed: 1, Scale: "small", Arch: "p100-dgx1"},
		Total: 1,
	}}
}

// storeContract drives any Store through put/replace/list/delete.
func storeContract(t *testing.T, s Store) {
	t.Helper()
	for _, id := range []string{"job-1", "job-2", "job-3"} {
		if err := s.Put(rec(id, spybox.JobQueued)); err != nil {
			t.Fatal(err)
		}
	}
	got, ok, err := s.Get("job-2")
	if err != nil || !ok || got.Status.ID != "job-2" {
		t.Fatalf("Get(job-2) = %+v, %v, %v", got, ok, err)
	}
	if _, ok, _ := s.Get("job-9"); ok {
		t.Error("Get found an absent job")
	}
	// Replacement keeps the submission order.
	r := rec("job-1", spybox.JobDone)
	r.Results = []*report.Result{report.New("fig4", "t")}
	if err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, r := range list {
		ids = append(ids, string(r.Status.ID))
	}
	if strings.Join(ids, ",") != "job-1,job-2,job-3" {
		t.Fatalf("List order %v, want submission order", ids)
	}
	if list[0].Status.State != spybox.JobDone || len(list[0].Results) != 1 {
		t.Errorf("replaced record not returned: %+v", list[0])
	}
	if err := s.Delete("job-2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("job-2"); err != nil { // absent delete is a no-op
		t.Fatal(err)
	}
	if list, _ = s.List(); len(list) != 2 {
		t.Fatalf("after delete, %d records", len(list))
	}
}

func TestMemStore(t *testing.T) { storeContract(t, NewMemStore()) }

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.json")
	s, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, s)

	// Reopen: the document round-trips, including submission order.
	s2, err := NewFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	list, err := s2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].Status.ID != "job-1" || list[1].Status.ID != "job-3" {
		t.Fatalf("reopened store holds %+v", list)
	}
	if list[0].Status.State != spybox.JobDone || len(list[0].Results) != 1 || list[0].Results[0].ID != "fig4" {
		t.Errorf("reopened record lost data: %+v", list[0])
	}

	// A foreign schema is refused, not misread.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"spybox.jobs/v999","jobs":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileStore(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("foreign schema opened: %v", err)
	}
}
