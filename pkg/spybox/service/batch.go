// Batch submission: one sweep spec — experiments × scales × seeds —
// expanded server-side into one job per combination, all stamped with
// a shared batch ID. Expanding on the server keeps sweeps atomic-ish
// (one request, one validation pass, contiguous IDs) and lets a fleet
// drain the pieces in parallel; the batch ID is the fairness group, so
// a thousand-job sweep round-robins against interactive submitters
// instead of starving them.

package service

import (
	"errors"
	"fmt"

	"spybox/pkg/spybox"
)

// DefaultBatchLimit caps how many jobs one batch may expand to when
// Options.BatchLimit is unset.
const DefaultBatchLimit = 1024

// ErrNoBatch is returned by Batch for an ID no job carries.
var ErrNoBatch = errors.New("service: no such batch")

// BatchSpec is one sweep request: the cross product of experiments,
// scales, and seeds becomes one job per (experiment, scale, seed)
// combination, every job sharing Arch, Parallel, and Client. Zero
// values default like JobSpec's: all experiments, the default scale,
// the default seed.
type BatchSpec struct {
	Experiments []string `json:"experiments,omitempty"`
	Scales      []string `json:"scales,omitempty"`
	Seeds       []uint64 `json:"seeds,omitempty"`
	Arch        string   `json:"arch,omitempty"`
	Parallel    int      `json:"parallel,omitempty"`
	// Client overrides the batch ID as the fairness group, letting one
	// submitter's many batches share a single round-robin slot.
	Client string `json:"client,omitempty"`
	// Priority stamps every expanded job; see JobSpec.Priority.
	Priority int `json:"priority,omitempty"`
}

// BatchStatus aggregates a batch's jobs: the member IDs in submission
// order and the by-state census. Done==Total means the sweep is fully
// drained.
type BatchStatus struct {
	ID        string         `json:"id"`
	Jobs      []spybox.JobID `json:"jobs"`
	Total     int            `json:"total"`
	Queued    int            `json:"queued"`
	Running   int            `json:"running"`
	Done      int            `json:"done"`
	Failed    int            `json:"failed"`
	Cancelled int            `json:"cancelled"`
}

// Terminal reports whether every job in the batch has finished.
func (b BatchStatus) Terminal() bool {
	return b.Total > 0 && b.Done+b.Failed+b.Cancelled == b.Total
}

// expandBatch validates the sweep and returns one normalized JobSpec
// per combination. Validation is all-up-front like Submit's: a bad
// scale or experiment anywhere in the sweep submits nothing.
func expandBatch(spec BatchSpec, limit int) ([]spybox.JobSpec, error) {
	ids, err := spybox.ExpandIDs(spec.Experiments...)
	if err != nil {
		return nil, err
	}
	scales := spec.Scales
	if len(scales) == 0 {
		scales = []string{""}
	}
	seeds := spec.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{0}
	}
	n := len(ids) * len(scales) * len(seeds)
	if n == 0 {
		return nil, errors.New("service: batch expands to zero jobs")
	}
	if n > limit {
		return nil, fmt.Errorf("service: batch expands to %d jobs, over the limit of %d", n, limit)
	}
	specs := make([]spybox.JobSpec, 0, n)
	for _, scale := range scales {
		for _, seed := range seeds {
			for _, id := range ids {
				norm, err := normalize(spybox.JobSpec{
					Experiments: []string{id},
					Seed:        seed,
					Scale:       scale,
					Arch:        spec.Arch,
					Parallel:    spec.Parallel,
					Client:      spec.Client,
					Priority:    spec.Priority,
				})
				if err != nil {
					return nil, err
				}
				specs = append(specs, norm)
			}
		}
	}
	return specs, nil
}

// SubmitBatch validates and expands the sweep, persists every job
// (queued, stamped with the shared batch ID), and returns the batch
// status. The batch ID is "batch-<n>" where job-<n> is the sweep's
// first job, which is unique without any extra cross-process counter.
func (s *Service) SubmitBatch(spec BatchSpec) (BatchStatus, error) {
	specs, err := expandBatch(spec, s.batchLimit)
	if err != nil {
		return BatchStatus{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return BatchStatus{}, spybox.ErrClosed
	}
	counts, err := s.store.Counts()
	if err != nil {
		return BatchStatus{}, fmt.Errorf("service: checking queue depth: %w", err)
	}
	if counts.Queued+len(specs) > s.queueDepth {
		return BatchStatus{}, fmt.Errorf("service: batch of %d jobs over queue capacity (%d pending, %d max)",
			len(specs), counts.Queued, s.queueDepth)
	}
	batch := ""
	st := BatchStatus{}
	for i, norm := range specs {
		for {
			s.seq++
			if i == 0 {
				// The first member names the batch; if its ID is taken
				// by a racing peer, the retry renames both together.
				batch = fmt.Sprintf("batch-%d", s.seq)
			}
			status := spybox.JobStatus{
				ID:    spybox.JobID(fmt.Sprintf("job-%d", s.seq)),
				Spec:  norm,
				State: spybox.JobQueued,
				Total: len(norm.Experiments),
				Batch: batch,
			}
			err := s.store.Create(Record{Status: status})
			if err == nil {
				st.Jobs = append(st.Jobs, status.ID)
				break
			}
			if !errors.Is(err, ErrExists) {
				// Jobs created before the failure stand — they are
				// valid, runnable members of a smaller batch.
				return BatchStatus{}, fmt.Errorf("service: persisting batch job %d of %d: %w", i+1, len(specs), err)
			}
		}
	}
	st.ID = batch
	st.Total = len(st.Jobs)
	st.Queued = len(st.Jobs)
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return st, nil
}

// Batch reports the batch's member jobs and census, or ErrNoBatch.
func (s *Service) Batch(id string) (BatchStatus, error) {
	recs, err := s.store.List()
	if err != nil {
		return BatchStatus{}, err
	}
	st := BatchStatus{ID: id}
	for _, rec := range recs {
		if rec.Status.Batch != id {
			continue
		}
		st.Jobs = append(st.Jobs, rec.Status.ID)
		st.Total++
		switch rec.Status.State {
		case spybox.JobQueued:
			st.Queued++
		case spybox.JobRunning:
			st.Running++
		case spybox.JobDone:
			st.Done++
		case spybox.JobFailed:
			st.Failed++
		case spybox.JobCancelled:
			st.Cancelled++
		}
	}
	if st.Total == 0 {
		return BatchStatus{}, fmt.Errorf("%w: %s", ErrNoBatch, id)
	}
	return st, nil
}
