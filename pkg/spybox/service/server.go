// The HTTP face of the service: a hand-routed /v1 API (kept free of
// Go 1.22 mux patterns so the module's 1.21 floor holds) returning
// JSON everywhere, report/v1 documents for results, and server-sent
// events for progress.
//
//	POST   /v1/jobs             submit a JobSpec        -> 202 JobStatus
//	POST   /v1/jobs:batch       submit a BatchSpec      -> 202 BatchStatus
//	GET    /v1/jobs             list jobs               -> 200 [JobStatus]
//	GET    /v1/jobs/{id}        one job                 -> 200 JobStatus
//	DELETE /v1/jobs/{id}        cancel + forget         -> 204
//	POST   /v1/jobs/{id}/cancel cancel, keep the record -> 200 JobStatus
//	GET    /v1/jobs/{id}/result report/v1 document      -> 200 (409 until terminal)
//	GET    /v1/jobs/{id}/events SSE progress stream
//	GET    /v1/batches/{id}     batch census            -> 200 BatchStatus
//	GET    /v1/experiments      registry metadata       -> 200 [ExperimentInfo]
//	GET    /v1/stats            queue + cache counters  -> 200 Stats

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"spybox/pkg/spybox"
	"spybox/pkg/spybox/report"
)

// EventMsg is the wire form of a progress event, carried in the data
// field of each SSE "progress" message. Elapsed is milliseconds since
// the job's current run began.
type EventMsg struct {
	Job        string  `json:"job,omitempty"`
	Kind       string  `json:"kind"`
	Experiment string  `json:"experiment,omitempty"`
	Title      string  `json:"title,omitempty"`
	Trial      int     `json:"trial"`
	Trials     int     `json:"trials,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms"`
	Error      string  `json:"error,omitempty"`
}

// eventMsg converts a session event to its wire form.
func eventMsg(ev spybox.Event) EventMsg {
	msg := EventMsg{
		Job: string(ev.Job), Kind: ev.Kind.String(),
		Experiment: ev.Experiment, Title: ev.Title,
		Trial: ev.Trial, Trials: ev.Trials,
		ElapsedMS: float64(ev.Elapsed) / float64(time.Millisecond),
	}
	if ev.Err != nil {
		msg.Error = ev.Err.Error()
	}
	return msg
}

// NewHandler wraps the service in its HTTP API.
func NewHandler(svc *Service) http.Handler {
	return &handler{svc: svc}
}

type handler struct {
	svc *Service
}

// errorJSON is the body of every non-2xx response.
type errorJSON struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorJSON{Error: err.Error()})
}

// writeServiceError maps service errors onto status codes: unknown
// jobs are 404, a draining service is 503, everything else 500.
func writeServiceError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, spybox.ErrNoJob):
		writeError(w, http.StatusNotFound, err)
	case errors.Is(err, spybox.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func (h *handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// The version prefix is mandatory — serving the same routes
	// unversioned would let clients grow dependencies a future /v2
	// could not break.
	path, ok := strings.CutPrefix(r.URL.Path, "/v1")
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no such resource %q (the API lives under /v1)", r.URL.Path))
		return
	}
	switch {
	case path == "/experiments":
		h.method(w, r, http.MethodGet, func() { writeJSON(w, http.StatusOK, h.svc.Experiments()) })
	case path == "/stats":
		h.method(w, r, http.MethodGet, func() {
			st, err := h.svc.Stats()
			if err != nil {
				writeServiceError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
		})
	case path == "/jobs:batch":
		h.method(w, r, http.MethodPost, func() { h.submitBatch(w, r) })
	case strings.HasPrefix(path, "/batches/"):
		h.method(w, r, http.MethodGet, func() { h.batch(w, path[len("/batches/"):]) })
	case path == "/jobs":
		switch r.Method {
		case http.MethodPost:
			h.submit(w, r)
		case http.MethodGet:
			jobs, err := h.svc.Jobs()
			if err != nil {
				writeServiceError(w, err)
				return
			}
			writeJSON(w, http.StatusOK, jobs)
		default:
			w.Header().Set("Allow", "GET, POST")
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		}
	case strings.HasPrefix(path, "/jobs/"):
		idStr, sub, _ := strings.Cut(path[len("/jobs/"):], "/")
		id := spybox.JobID(idStr)
		switch sub {
		case "":
			h.job(w, r, id)
		case "result":
			h.method(w, r, http.MethodGet, func() { h.result(w, id) })
		case "events":
			h.method(w, r, http.MethodGet, func() { h.events(w, r, id) })
		case "cancel":
			h.method(w, r, http.MethodPost, func() { h.cancel(w, id) })
		default:
			writeError(w, http.StatusNotFound, fmt.Errorf("no such resource %q", r.URL.Path))
		}
	default:
		writeError(w, http.StatusNotFound, fmt.Errorf("no such resource %q", r.URL.Path))
	}
}

// method guards a single-method route.
func (h *handler) method(w http.ResponseWriter, r *http.Request, want string, serve func()) {
	if r.Method != want {
		w.Header().Set("Allow", want)
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	serve()
}

func (h *handler) submit(w http.ResponseWriter, r *http.Request) {
	var spec spybox.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	id, err := h.svc.Submit(spec)
	if err != nil {
		if errors.Is(err, spybox.ErrClosed) {
			writeServiceError(w, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	status, err := h.svc.Job(id)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+string(id))
	writeJSON(w, http.StatusAccepted, status)
}

func (h *handler) submitBatch(w http.ResponseWriter, r *http.Request) {
	var spec BatchSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad batch spec: %w", err))
		return
	}
	st, err := h.svc.SubmitBatch(spec)
	if err != nil {
		if errors.Is(err, spybox.ErrClosed) {
			writeServiceError(w, err)
		} else {
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	w.Header().Set("Location", "/v1/batches/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (h *handler) batch(w http.ResponseWriter, id string) {
	st, err := h.svc.Batch(id)
	if err != nil {
		if errors.Is(err, ErrNoBatch) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *handler) job(w http.ResponseWriter, r *http.Request, id spybox.JobID) {
	switch r.Method {
	case http.MethodGet:
		status, err := h.svc.Job(id)
		if err != nil {
			writeServiceError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, status)
	case http.MethodDelete:
		if err := h.svc.Delete(r.Context(), id); err != nil {
			writeServiceError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

func (h *handler) cancel(w http.ResponseWriter, id spybox.JobID) {
	if err := h.svc.Cancel(id); err != nil {
		writeServiceError(w, err)
		return
	}
	status, err := h.svc.Job(id)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (h *handler) result(w http.ResponseWriter, id spybox.JobID) {
	results, err := h.svc.Result(id)
	if err != nil {
		if status, jerr := h.svc.Job(id); jerr == nil && !status.State.Terminal() {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeServiceError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = report.Encode(w, results...)
}

// events streams the job's progress as SSE: one "progress" message
// per session event, then a final "status" message with the terminal
// JobStatus, then the stream closes. Watching a finished job yields
// just the "status" message, so late consumers still get closure.
func (h *handler) events(w http.ResponseWriter, r *http.Request, id spybox.JobID) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, errors.New("streaming unsupported by this server"))
		return
	}
	ch, unsub, err := h.svc.Watch(id)
	if err != nil {
		writeServiceError(w, err)
		return
	}
	defer unsub()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	send := func(event string, v any) {
		b, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
		flusher.Flush()
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				if status, err := h.svc.Job(id); err == nil {
					send("status", status)
				}
				return
			}
			send("progress", eventMsg(ev))
		case <-r.Context().Done():
			return
		}
	}
}
