package service

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"spybox/pkg/spybox"
	"spybox/pkg/spybox/report"
)

// newTestService starts a service that is drained at test end.
func newTestService(t *testing.T, opts Options) *Service {
	t.Helper()
	svc, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Close(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return svc
}

func smallSpec(ids ...string) spybox.JobSpec {
	return spybox.JobSpec{Experiments: ids, Scale: "small", Parallel: 1}
}

// encode renders results as the report/v1 document, for byte-level
// comparison.
func encode(t *testing.T, results []*report.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := report.Encode(&buf, results...); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// waitUntil polls cond every 5ms until it holds or the deadline.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSubmitValidation(t *testing.T) {
	svc := newTestService(t, Options{Workers: 1})
	cases := []struct {
		spec spybox.JobSpec
		want string
	}{
		{smallSpec("bogus", "fig4", "nope"), `unknown experiments "bogus", "nope"`},
		{spybox.JobSpec{Experiments: []string{"fig4"}, Scale: "huge"}, "unknown scale"},
		{spybox.JobSpec{Experiments: []string{"fig4"}, Arch: "z80"}, "profile"},
		{spybox.JobSpec{Experiments: []string{"fig4"}, Parallel: -1}, "Parallel"},
	}
	for _, tc := range cases {
		if _, err := svc.Submit(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Submit(%+v) error %v, want substring %q", tc.spec, err, tc.want)
		}
	}
	// A bad spec runs nothing: the store stays empty.
	if jobs, _ := svc.Jobs(); len(jobs) != 0 {
		t.Errorf("invalid submissions left %d jobs", len(jobs))
	}
	// The unknown-ID error names the valid experiments.
	_, err := svc.Submit(smallSpec("bogus"))
	if err == nil || !strings.Contains(err.Error(), "valid: fig4,") {
		t.Errorf("unknown-ID error does not list valid names: %v", err)
	}
}

func TestJobLifecycleCacheAndByteIdentity(t *testing.T) {
	t.Parallel()
	svc := newTestService(t, Options{Workers: 1})
	id, err := svc.Submit(smallSpec("fig4"))
	if err != nil {
		t.Fatal(err)
	}
	status, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != spybox.JobDone || status.Done != 1 || status.Total != 1 || status.CacheHits != 0 {
		t.Fatalf("first job status: %+v", status)
	}
	// The spec is normalized: defaults filled, arch resolved.
	if status.Spec.Seed != spybox.DefaultSeed || status.Spec.Arch != "p100-dgx1" {
		t.Errorf("spec not normalized: %+v", status.Spec)
	}
	results, err := svc.Result(id)
	if err != nil || len(results) != 1 {
		t.Fatalf("Result = %d results, %v", len(results), err)
	}

	// Byte-identical to a direct Session.Run with the same config.
	sess, err := spybox.Open(spybox.Config{Scale: spybox.Small, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sess.Run(context.Background(), "fig4")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, results), encode(t, direct)) {
		t.Error("service result differs from direct Session.Run")
	}

	// The duplicate is served from cache — and still byte-identical.
	id2, err := svc.Submit(smallSpec("fig4"))
	if err != nil {
		t.Fatal(err)
	}
	status2, err := svc.Wait(context.Background(), id2)
	if err != nil {
		t.Fatal(err)
	}
	if status2.State != spybox.JobDone || status2.CacheHits != 1 {
		t.Fatalf("duplicate status: %+v", status2)
	}
	results2, err := svc.Result(id2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, results2), encode(t, results)) {
		t.Error("cached result differs from simulated result")
	}
	hits, misses := svc.cache.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache counters: %d hits, %d misses; want 1, 1", hits, misses)
	}
	st, err := svc.Stats()
	if err != nil || st.Done != 2 || st.CacheHits != 1 || st.CacheSize != 1 {
		t.Errorf("Stats = %+v, %v", st, err)
	}
}

// TestConcurrentSubmits is the acceptance scenario: 8 concurrent
// submissions of seeded experiments, every result byte-identical to a
// direct Session.Run of the same (seed, experiment).
func TestConcurrentSubmits(t *testing.T) {
	t.Parallel()
	svc := newTestService(t, Options{Workers: 4})
	type sub struct {
		seed uint64
		id   spybox.JobID
	}
	subs := make([]sub, 8)
	var wg sync.WaitGroup
	errc := make(chan error, len(subs))
	for i := range subs {
		subs[i].seed = uint64(100 + i/2) // four distinct seeds, each submitted twice
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := smallSpec("fig4")
			spec.Seed = subs[i].seed
			id, err := svc.Submit(spec)
			if err != nil {
				errc <- err
				return
			}
			subs[i].id = id
			if _, err := svc.Wait(context.Background(), id); err != nil {
				errc <- err
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for _, s := range subs {
		status, err := svc.Job(s.id)
		if err != nil || status.State != spybox.JobDone {
			t.Fatalf("job %s: %+v, %v", s.id, status, err)
		}
		results, err := svc.Result(s.id)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := spybox.Open(spybox.Config{Seed: s.seed, Scale: spybox.Small, Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := sess.Run(context.Background(), "fig4")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encode(t, results), encode(t, direct)) {
			t.Errorf("seed %d: concurrent service result differs from direct run", s.seed)
		}
	}
}

func TestCancelQueuedNeverStarts(t *testing.T) {
	t.Parallel()
	svc := newTestService(t, Options{Workers: 1})
	// Occupy the only worker, then queue a second job behind it.
	long, err := svc.Submit(smallSpec("fig9"))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "first job running", func() bool {
		st, _ := svc.Job(long)
		return st.State == spybox.JobRunning
	})
	queued, err := svc.Submit(smallSpec("fig4"))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	st, err := svc.Job(queued)
	if err != nil || st.State != spybox.JobCancelled || st.Done != 0 {
		t.Fatalf("cancelled-queued status: %+v, %v", st, err)
	}
	if !strings.Contains(st.Error, "before start") {
		t.Errorf("cancelled-queued error: %q", st.Error)
	}
	if results, err := svc.Result(queued); err != nil || len(results) != 0 {
		t.Errorf("cancelled-queued results: %d, %v", len(results), err)
	}
	// Cancelling a terminal job is a no-op, not an error.
	if err := svc.Cancel(queued); err != nil {
		t.Errorf("re-cancel: %v", err)
	}
	if _, err := svc.Wait(context.Background(), long); err != nil {
		t.Fatal(err)
	}
	// The worker never ran the cancelled job.
	if st, _ := svc.Job(queued); st.State != spybox.JobCancelled || st.Done != 0 {
		t.Errorf("cancelled job was touched by the worker: %+v", st)
	}
}

func TestCancelRunningKeepsPartialResults(t *testing.T) {
	t.Parallel()
	svc := newTestService(t, Options{Workers: 1})
	id, err := svc.Submit(smallSpec("fig4", "fig9"))
	if err != nil {
		t.Fatal(err)
	}
	// Let the fast first experiment finish, then cancel during the
	// second (fig9 runs multiple trials, so there is a boundary to
	// stop at).
	waitUntil(t, "first experiment done", func() bool {
		st, _ := svc.Job(id)
		return st.Done >= 1 || st.State.Terminal()
	})
	if err := svc.Cancel(id); err != nil {
		t.Fatal(err)
	}
	status, err := svc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != spybox.JobCancelled {
		t.Fatalf("status after cancel: %+v", status)
	}
	if !strings.Contains(status.Error, "interrupted") {
		t.Errorf("cancellation cause not an interruption: %q", status.Error)
	}
	results, err := svc.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != status.Done || len(results) < 1 || results[0].ID != "fig4" {
		t.Errorf("partial results: %d (status.Done %d)", len(results), status.Done)
	}
}

func TestCloseDrains(t *testing.T) {
	t.Parallel()
	svc, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	running, err := svc.Submit(smallSpec("fig9"))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "job running", func() bool {
		st, _ := svc.Job(running)
		return st.State == spybox.JobRunning
	})
	queued, err := svc.Submit(smallSpec("fig4"))
	if err != nil {
		t.Fatal(err)
	}
	// A Wait pending on the queued job must be released by the drain
	// (no worker will ever claim the job), returning its still-queued
	// status rather than hanging.
	waited := make(chan spybox.JobStatus, 1)
	go func() {
		st, _ := svc.Wait(context.Background(), queued)
		waited <- st
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case st := <-waited:
		if st.State != spybox.JobQueued {
			t.Errorf("drained Wait returned %+v", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait on a queued job hung through the drain")
	}
	// The running job went terminal (cancelled at a trial boundary,
	// or done if it beat the drain); the queued one is still queued,
	// ready for a restart to pick up.
	st, err := svc.Job(running)
	if err != nil || !st.State.Terminal() {
		t.Errorf("in-flight job after drain: %+v, %v", st, err)
	}
	if st.State == spybox.JobCancelled && !strings.Contains(st.Error, "interrupted") {
		t.Errorf("drained job error: %q", st.Error)
	}
	if st, _ := svc.Job(queued); st.State != spybox.JobQueued {
		t.Errorf("queued job after drain: %+v", st)
	}
	if _, err := svc.Submit(smallSpec("fig4")); !errors.Is(err, spybox.ErrClosed) {
		t.Errorf("Submit after Close: %v", err)
	}
	// Close is idempotent.
	if err := svc.Close(ctx); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestWatchStreamsJobTaggedEvents(t *testing.T) {
	t.Parallel()
	svc := newTestService(t, Options{Workers: 1})
	id, err := svc.Submit(smallSpec("fig9"))
	if err != nil {
		t.Fatal(err)
	}
	ch, unsub, err := svc.Watch(id)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub()
	var events []spybox.Event
	for ev := range ch { // closes when the job goes terminal
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("no events observed")
	}
	sawTrialDone := false
	var lastElapsed time.Duration
	for _, ev := range events {
		if ev.Job != id {
			t.Fatalf("event for job %q on %q's stream", ev.Job, id)
		}
		if ev.Kind == spybox.TrialDone {
			sawTrialDone = true
			if ev.Elapsed < lastElapsed {
				t.Errorf("Elapsed went backwards: %v after %v", ev.Elapsed, lastElapsed)
			}
			lastElapsed = ev.Elapsed
		}
	}
	if !sawTrialDone {
		t.Errorf("no trial-done among %d events", len(events))
	}
	// Watching a finished job yields a closed (empty) stream.
	ch2, unsub2, err := svc.Watch(id)
	if err != nil {
		t.Fatal(err)
	}
	defer unsub2()
	if _, open := <-ch2; open {
		t.Error("terminal job's stream delivered an event")
	}
	if _, _, err := svc.Watch("job-999"); !errors.Is(err, spybox.ErrNoJob) {
		t.Errorf("Watch on unknown job: %v", err)
	}
}

func TestLogStoreRestartRequeues(t *testing.T) {
	t.Parallel()
	store, err := OpenLogStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	// Seed the store as a dead server would have left it: one job
	// still queued, one caught mid-run (its lease long expired with
	// its owner), one already done.
	queued := rec("job-2", spybox.JobQueued)
	midRun := rec("job-3", spybox.JobRunning)
	finished := rec("job-1", spybox.JobDone)
	finished.Status.Done = 1
	for _, r := range []Record{finished, queued, midRun} {
		if err := store.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	svc := newTestService(t, Options{Workers: 1, Store: store})
	for _, id := range []spybox.JobID{"job-2", "job-3"} {
		status, err := svc.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if status.State != spybox.JobDone || status.Done != 1 {
			t.Errorf("requeued %s finished as %+v", id, status)
		}
	}
	if st, _ := svc.Job("job-1"); st.State != spybox.JobDone {
		t.Errorf("terminal job disturbed by restart: %+v", st)
	}
	// New IDs continue after the highest stored sequence number.
	id, err := svc.Submit(smallSpec("fig4"))
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-4" {
		t.Errorf("post-restart ID %s, want job-4", id)
	}
}

func TestDeleteForgetsJob(t *testing.T) {
	t.Parallel()
	svc := newTestService(t, Options{Workers: 1})
	id, err := svc.Submit(smallSpec("fig4"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if err := svc.Delete(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Job(id); !errors.Is(err, spybox.ErrNoJob) {
		t.Errorf("deleted job still known: %v", err)
	}
	if err := svc.Delete(context.Background(), id); !errors.Is(err, spybox.ErrNoJob) {
		t.Errorf("double delete: %v", err)
	}
}

// TestResultBeforeTerminal pins the Wait-first contract.
func TestResultBeforeTerminal(t *testing.T) {
	t.Parallel()
	svc := newTestService(t, Options{Workers: 1})
	id, err := svc.Submit(smallSpec("fig9"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Result(id); err == nil {
		t.Error("Result on a live job succeeded")
	} else if errors.Is(err, spybox.ErrNoJob) {
		t.Errorf("live job misreported as unknown: %v", err)
	}
	if _, err := svc.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Result(id); err != nil {
		t.Errorf("Result after Wait: %v", err)
	}
}

// TestWaitHonoursContext: a Wait bounded by a context returns when
// the context does, without disturbing the job.
func TestWaitHonoursContext(t *testing.T) {
	t.Parallel()
	svc := newTestService(t, Options{Workers: 1})
	id, err := svc.Submit(smallSpec("fig9"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := svc.Wait(ctx, id); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("bounded Wait: %v", err)
	}
	status, err := svc.Wait(context.Background(), id)
	if err != nil || status.State != spybox.JobDone {
		t.Errorf("job after abandoned Wait: %+v, %v", status, err)
	}
}

// claimGetFailStore wraps a Store and fails the first Get that
// follows the first successful Claim, simulating a transient store
// read error in the claim-to-run window.
type claimGetFailStore struct {
	Store
	mu      sync.Mutex
	armed   bool // a Claim succeeded; the next Get fails
	tripped bool // the one injected failure has been served
}

func (s *claimGetFailStore) Claim(owner string, ttl time.Duration) (Record, bool, error) {
	rec, ok, err := s.Store.Claim(owner, ttl)
	s.mu.Lock()
	if ok && !s.tripped {
		s.armed = true
	}
	s.mu.Unlock()
	return rec, ok, err
}

func (s *claimGetFailStore) Get(id spybox.JobID) (Record, bool, error) {
	s.mu.Lock()
	if s.armed && !s.tripped {
		s.armed, s.tripped = false, true
		s.mu.Unlock()
		return Record{}, false, errors.New("injected transient store failure")
	}
	s.mu.Unlock()
	return s.Store.Get(id)
}

// TestTransientGetFailureReleasesClaim pins the claim-leak fix: when
// the record cannot be read back right after Claim (a transient store
// error), the worker must Release the claim rather than abandon the
// job with the lease still held. With the Release the job returns to
// the queue and completes promptly; without it the job sits leased
// and unrun until the TTL expires — far beyond this test's deadline.
func TestTransientGetFailureReleasesClaim(t *testing.T) {
	t.Parallel()
	st := &claimGetFailStore{Store: NewMemStore()}
	svc := newTestService(t, Options{
		Workers: 1,
		Store:   st,
		Poll:    20 * time.Millisecond,
		// Recovery must come from the Release, not lease expiry.
		LeaseTTL: time.Minute,
	})
	id, err := svc.Submit(smallSpec("fig4"))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "injected Get failure to be served", func() bool {
		st.mu.Lock()
		defer st.mu.Unlock()
		return st.tripped
	})
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	status, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait after transient store failure: %v (claim was never released)", err)
	}
	if status.State != spybox.JobDone {
		t.Fatalf("job state = %v, want JobDone", status.State)
	}
}

// TestDeleteHonoursContext: Delete waiting for a running job to
// persist gives up when the context does; the job stays cancelled
// and a later unbounded Delete still removes the record.
func TestDeleteHonoursContext(t *testing.T) {
	t.Parallel()
	svc := newTestService(t, Options{Workers: 1})
	id, err := svc.Submit(spybox.JobSpec{Experiments: []string{"fig9"}, Scale: "default", Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "job to start", func() bool {
		st, err := svc.Job(id)
		return err == nil && st.State == spybox.JobRunning
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := svc.Delete(ctx, id); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded Delete: %v", err)
	}
	if err := svc.Delete(context.Background(), id); err != nil {
		t.Fatalf("unbounded Delete after bounded one: %v", err)
	}
	if _, err := svc.Job(id); !errors.Is(err, spybox.ErrNoJob) {
		t.Errorf("deleted job still known: %v", err)
	}
}
