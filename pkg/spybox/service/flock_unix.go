//go:build unix

package service

import (
	"fmt"
	"os"
	"syscall"
)

// flockExclusive takes an exclusive advisory lock on f, blocking until
// it is available. flock locks are per open file description, so two
// LogStores in one process (as in tests) exclude each other exactly
// like two processes do.
func flockExclusive(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		return fmt.Errorf("service: locking %s: %w", f.Name(), err)
	}
	return nil
}

// funlock releases the lock taken by flockExclusive.
func funlock(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_UN); err != nil {
		return fmt.Errorf("service: unlocking %s: %w", f.Name(), err)
	}
	return nil
}
