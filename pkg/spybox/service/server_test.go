package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spybox/pkg/spybox"
)

// newTestServer boots a drained-at-exit service behind httptest and
// returns its client.
func newTestServer(t *testing.T, opts Options) (*Service, *Client) {
	t.Helper()
	svc := newTestService(t, opts)
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)
	return svc, NewClient(ts.URL)
}

func TestHTTPEndToEnd(t *testing.T) {
	t.Parallel()
	_, cli := newTestServer(t, Options{Workers: 2})

	// The registry rides the wire intact.
	infos, err := cli.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	if want := spybox.Experiments(); len(infos) != len(want) || infos[0].ID != want[0].ID {
		t.Fatalf("experiments over HTTP: %d entries", len(infos))
	}

	id, err := cli.Submit(smallSpec("fig4"))
	if err != nil {
		t.Fatal(err)
	}
	status, err := cli.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != spybox.JobDone || status.Done != 1 {
		t.Fatalf("status over HTTP: %+v", status)
	}
	results, err := cli.Result(id)
	if err != nil || len(results) != 1 || results[0].ID != "fig4" {
		t.Fatalf("Result over HTTP: %d results, %v", len(results), err)
	}

	// The served document is byte-identical to a direct Session.Run's
	// encoding — and the duplicate, answered from cache, matches it.
	doc, err := cli.ResultDocument(id)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := spybox.Open(spybox.Config{Scale: spybox.Small, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sess.Run(context.Background(), "fig4")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, encode(t, direct)) {
		t.Error("served document differs from direct Session.Run encoding")
	}
	id2, err := cli.Submit(smallSpec("fig4"))
	if err != nil {
		t.Fatal(err)
	}
	status2, err := cli.Wait(context.Background(), id2)
	if err != nil {
		t.Fatal(err)
	}
	if status2.CacheHits != 1 {
		t.Errorf("duplicate not served from cache: %+v", status2)
	}
	doc2, err := cli.ResultDocument(id2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, doc2) {
		t.Error("cached document differs from simulated one")
	}
	st, err := cli.Stats()
	if err != nil || st.CacheHits != 1 || st.Done != 2 {
		t.Errorf("Stats over HTTP: %+v, %v", st, err)
	}
	jobs, err := cli.Jobs()
	if err != nil || len(jobs) != 2 || jobs[0].ID != id {
		t.Errorf("Jobs over HTTP: %+v, %v", jobs, err)
	}
}

// TestHTTPConcurrentSubmits is the acceptance scenario end to end:
// 8 clients submit seeded experiments to one server at once and every
// result document matches a direct Session.Run byte for byte.
func TestHTTPConcurrentSubmits(t *testing.T) {
	t.Parallel()
	_, cli := newTestServer(t, Options{Workers: 4})
	const n = 8
	docs := make([][]byte, n)
	seeds := make([]uint64, n)
	errc := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		seeds[i] = uint64(7000 + i%4) // four distinct seeds, two submitters each
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := smallSpec("fig4")
			spec.Seed = seeds[i]
			id, err := cli.Submit(spec)
			if err != nil {
				errc <- err
				return
			}
			if st, err := cli.Wait(context.Background(), id); err != nil || st.State != spybox.JobDone {
				errc <- fmt.Errorf("job %s: %+v, %v", id, st, err)
				return
			}
			docs[i], err = cli.ResultDocument(id)
			if err != nil {
				errc <- err
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		sess, err := spybox.Open(spybox.Config{Seed: seeds[i], Scale: spybox.Small, Parallel: 1})
		if err != nil {
			t.Fatal(err)
		}
		direct, err := sess.Run(context.Background(), "fig4")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(docs[i], encode(t, direct)) {
			t.Errorf("submitter %d (seed %d): served document differs from direct run", i, seeds[i])
		}
	}
}

func TestHTTPSSEProgress(t *testing.T) {
	t.Parallel()
	_, cli := newTestServer(t, Options{Workers: 1})
	id, err := cli.Submit(smallSpec("fig9"))
	if err != nil {
		t.Fatal(err)
	}
	var msgs []EventMsg
	status, err := cli.Events(context.Background(), id, func(m EventMsg) { msgs = append(msgs, m) })
	if err != nil {
		t.Fatal(err)
	}
	if status.State != spybox.JobDone {
		t.Fatalf("terminal SSE status: %+v", status)
	}
	if len(msgs) == 0 {
		t.Fatal("no progress messages on the SSE stream")
	}
	for _, m := range msgs {
		if m.Job != string(id) || m.Experiment != "fig9" {
			t.Fatalf("stray message on %s's stream: %+v", id, m)
		}
	}
	// A finished job's stream still closes with the terminal status.
	late, err := cli.Events(context.Background(), id, nil)
	if err != nil || late.State != spybox.JobDone {
		t.Errorf("late SSE join: %+v, %v", late, err)
	}
}

func TestHTTPCancelKeepsPartialResults(t *testing.T) {
	t.Parallel()
	_, cli := newTestServer(t, Options{Workers: 1})
	id, err := cli.Submit(smallSpec("fig4", "fig9"))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "first experiment done", func() bool {
		st, err := cli.Job(id)
		return err == nil && (st.Done >= 1 || st.State.Terminal())
	})
	if err := cli.Cancel(id); err != nil {
		t.Fatal(err)
	}
	status, err := cli.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != spybox.JobCancelled || !strings.Contains(status.Error, "interrupted") {
		t.Fatalf("cancelled-over-HTTP status: %+v", status)
	}
	results, err := cli.Result(id)
	if err != nil || len(results) < 1 || results[0].ID != "fig4" {
		t.Errorf("partial results over HTTP: %d, %v", len(results), err)
	}
}

func TestHTTPErrors(t *testing.T) {
	t.Parallel()
	_, cli := newTestServer(t, Options{Workers: 1})

	if _, err := cli.Job("job-404"); !errors.Is(err, spybox.ErrNoJob) {
		t.Errorf("unknown job over HTTP: %v", err)
	}
	if err := cli.Delete("job-404"); !errors.Is(err, spybox.ErrNoJob) {
		t.Errorf("delete unknown job: %v", err)
	}
	if _, err := cli.Submit(smallSpec("bogus")); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("bad spec over HTTP: %v", err)
	}

	// A live job's result endpoint says "not yet", not "not found".
	id, err := cli.Submit(smallSpec("fig9"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Result(id); err == nil || errors.Is(err, spybox.ErrNoJob) {
		t.Errorf("early result fetch: %v", err)
	}
	if _, err := cli.Wait(context.Background(), id); err != nil {
		t.Fatal(err)
	}
	if err := cli.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Job(id); !errors.Is(err, spybox.ErrNoJob) {
		t.Errorf("deleted job still served: %v", err)
	}
}

func TestHTTPRoutingRejects(t *testing.T) {
	t.Parallel()
	svc := newTestService(t, Options{Workers: 1})
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)
	check := func(method, path string, wantCode int) {
		t.Helper()
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Errorf("%s %s = %d, want %d", method, path, resp.StatusCode, wantCode)
		}
		if wantCode >= 400 {
			var e errorJSON
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Errorf("%s %s: error body missing (%v)", method, path, err)
			}
		}
	}
	check(http.MethodGet, "/v1/nope", http.StatusNotFound)
	check(http.MethodGet, "/nope", http.StatusNotFound)
	check(http.MethodGet, "/jobs", http.StatusNotFound) // the version prefix is mandatory
	check(http.MethodGet, "/stats", http.StatusNotFound)
	check(http.MethodDelete, "/v1/experiments", http.StatusMethodNotAllowed)
	check(http.MethodPut, "/v1/jobs", http.StatusMethodNotAllowed)
	check(http.MethodPost, "/v1/jobs/job-1/result", http.StatusMethodNotAllowed)
	check(http.MethodGet, "/v1/jobs/job-1/frobnicate", http.StatusNotFound)

	// Unknown spec fields are a client bug, rejected loudly.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiments":["fig4"],"bogus_field":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field accepted: %d", resp.StatusCode)
	}
}

// TestClientWaitBackoffBounded: Wait returns promptly once the job
// finishes even from the longest backoff step.
func TestClientWaitDeadline(t *testing.T) {
	t.Parallel()
	_, cli := newTestServer(t, Options{Workers: 1})
	id, err := cli.Submit(smallSpec("fig9"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := cli.Wait(ctx, id); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("bounded Wait over HTTP: %v", err)
	}
	status, err := cli.Wait(context.Background(), id)
	if err != nil || status.State != spybox.JobDone {
		t.Errorf("unbounded Wait after deadline: %+v, %v", status, err)
	}
}
