// LogStore: the durable, shareable Store. One directory holds an
// append-only record log plus a compaction snapshot, and any number of
// serve processes open the same directory — every mutation happens
// under an exclusive flock, so the log is a single serialized history
// that each process replays incrementally to keep its in-memory view
// current.
//
// On-disk layout (all files tagged with the LogSchema version):
//
//	lock           flock target; contentless
//	log            header frame, then one frame per mutation
//	snapshot.json  full state as of the last compaction
//
// Each frame is length-framed JSON: a 4-byte big-endian payload
// length, a 4-byte big-endian CRC32 (IEEE) of the payload, then the
// payload. Appends are fsynced before the mutation is acknowledged, so
// an acknowledged job survives power loss; a crash mid-append leaves a
// torn final frame, which replay detects (short or CRC-mismatched) and
// truncates away — only the unacknowledged mutation is lost.
//
// When the log outgrows its threshold the writer compacts: the full
// state is written to snapshot.json (temp file, fsync, rename, fsync
// directory — the crash-safety the old rewrite-everything FileStore
// claimed but skipped), then the log is reset to a header frame with a
// bumped generation. Peers notice the generation change on their next
// sync and reload from the snapshot. A crash between the snapshot
// rename and the log reset is healed on the next open: replaying the
// stale log over the new snapshot is idempotent (puts are whole-record
// writes), after which the reset is completed.

package service

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"spybox/pkg/spybox"
)

// LogSchema tags the joblog layout — the log's header frame and the
// snapshot document. A different tag means a different layout, and
// OpenLogStore refuses it instead of misreading it.
const LogSchema = "spybox.joblog/v1"

// DefaultCompactBytes is the log size past which a mutation triggers
// compaction.
const DefaultCompactBytes = 1 << 20

// maxFrameBytes bounds a single frame; a length prefix beyond it can
// only be garbage (the store would never write one), so replay treats
// it as a torn record instead of allocating gigabytes.
const maxFrameBytes = 64 << 20

// logHeader is the first frame of every log generation.
type logHeader struct {
	Schema string `json:"schema"`
	Gen    uint64 `json:"gen"`
}

// snapshotDoc is the shape of snapshot.json.
type snapshotDoc struct {
	Schema string   `json:"schema"`
	Gen    uint64   `json:"gen"`
	Jobs   []Record `json:"jobs"`
}

// Log operation kinds, one per mutation the log records.
const (
	opPut     = "put"
	opDelete  = "delete"
	opClaim   = "claim"
	opRelease = "release"
)

// logOp is one mutation frame. Claim doubles as renew (a fresh expiry
// for the same owner); a put of a terminal record implies release.
type logOp struct {
	Op      string       `json:"op"`
	Record  *Record      `json:"record,omitempty"` // put
	ID      spybox.JobID `json:"id,omitempty"`     // delete / claim / release
	Owner   string       `json:"owner,omitempty"`  // claim
	Expires time.Time    `json:"expires,omitempty"`
}

// apply replays one operation onto the table — the single definition
// of what each log record means, used by live mutation and by replay.
func (t *jobTable) apply(op logOp) {
	switch op.Op {
	case opPut:
		if op.Record != nil {
			t.put(op.Record.clone())
		}
	case opDelete:
		t.delete(op.ID)
	case opClaim:
		t.setLease(op.ID, &Lease{Owner: op.Owner, Expires: op.Expires})
	case opRelease:
		t.setLease(op.ID, nil)
	}
	// Unknown ops are skipped: v1 readers tolerate additive growth.
}

// LogStore is the append-only file Store. Safe for concurrent use in
// one process (mutex) and across processes sharing the directory
// (flock around every operation, incremental replay on entry).
type LogStore struct {
	mu  sync.Mutex
	dir string
	now func() time.Time

	compactBytes int64
	lockF        *os.File
	logF         *os.File

	tbl    *jobTable
	gen    uint64
	offset int64 // replay position: everything before it is in tbl
	torn   int   // torn frames truncated away since open
}

// LogStoreOption customizes OpenLogStore.
type LogStoreOption func(*LogStore)

// WithCompactBytes sets the log size that triggers compaction
// (default DefaultCompactBytes); tests use tiny thresholds.
func WithCompactBytes(n int64) LogStoreOption {
	return func(s *LogStore) { s.compactBytes = n }
}

// withClock replaces the lease clock, for expiry tests.
func withClock(now func() time.Time) LogStoreOption {
	return func(s *LogStore) { s.now = now }
}

// OpenLogStore opens (or initializes) the store directory at dir.
// Any number of processes may hold the same directory open; every
// operation synchronizes through the shared log.
func OpenLogStore(dir string, opts ...LogStoreOption) (*LogStore, error) {
	if fi, err := os.Stat(dir); err == nil && !fi.IsDir() {
		return nil, fmt.Errorf("service: job store %s is a file, not a directory (the pre-joblog JSON store is not readable by this build; start fresh with a directory)", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: creating job store dir: %w", err)
	}
	s := &LogStore{
		dir:          dir,
		now:          time.Now,
		compactBytes: DefaultCompactBytes,
		tbl:          newJobTable(),
	}
	for _, opt := range opts {
		opt(s)
	}
	var err error
	if s.lockF, err = os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644); err != nil {
		return nil, fmt.Errorf("service: opening store lock: %w", err)
	}
	if s.logF, err = os.OpenFile(s.logPath(), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644); err != nil {
		s.lockF.Close()
		return nil, fmt.Errorf("service: opening job log: %w", err)
	}
	if err := s.locked(func() error { return nil }); err != nil { // initial sync under the lock
		s.Close()
		return nil, err
	}
	return s, nil
}

func (s *LogStore) logPath() string      { return filepath.Join(s.dir, "log") }
func (s *LogStore) snapshotPath() string { return filepath.Join(s.dir, "snapshot.json") }

// Close releases the store's file handles. It does not compact; the
// directory is valid as-is for the next open.
func (s *LogStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, f := range []*os.File{s.logF, s.lockF} {
		if f != nil {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	s.logF, s.lockF = nil, nil
	return first
}

// locked runs fn with the process mutex and the cross-process flock
// held, after syncing the in-memory view with whatever peers appended.
func (s *LogStore) locked(fn func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lockF == nil {
		return fmt.Errorf("service: job store %s is closed", s.dir)
	}
	if err := flockExclusive(s.lockF); err != nil {
		return err
	}
	defer funlock(s.lockF)
	if err := s.syncLocked(); err != nil {
		return err
	}
	return fn()
}

// frame encodes one length+CRC framed payload.
func frame(payload []byte) []byte {
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf
}

// readFrameAt decodes the frame at off. ok is false for a torn frame:
// short header, short payload, implausible length, CRC mismatch.
func (s *LogStore) readFrameAt(off int64) (payload []byte, next int64, ok bool, err error) {
	var hdr [8]byte
	n, rerr := s.logF.ReadAt(hdr[:], off)
	if rerr == io.EOF && n == 0 {
		return nil, off, false, io.EOF
	}
	if n < len(hdr) {
		return nil, off, false, nil // torn header
	}
	size := binary.BigEndian.Uint32(hdr[0:4])
	if size > maxFrameBytes {
		return nil, off, false, nil // garbage length: torn
	}
	payload = make([]byte, size)
	if n, _ := s.logF.ReadAt(payload, off+8); n < int(size) {
		return nil, off, false, nil // torn payload
	}
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(hdr[4:8]) {
		return nil, off, false, nil // corrupt payload: treated as torn
	}
	return payload, off + 8 + int64(size), true, nil
}

// syncLocked brings the in-memory view up to date with the shared
// files; callers hold the flock. A generation change (a peer
// compacted) triggers a full reload from the snapshot; otherwise only
// the frames appended since the last sync are replayed.
func (s *LogStore) syncLocked() error {
	header, _, ok, err := s.readFrameAt(0)
	if err == io.EOF || (!ok && err == nil && s.offset == 0) {
		// Empty (or torn-before-first-use) log: initialize generation
		// 0, or whatever generation a completed snapshot dictates.
		return s.reloadLocked()
	}
	if !ok {
		return fmt.Errorf("service: job log %s: unreadable header frame", s.logPath())
	}
	var hdr logHeader
	if err := json.Unmarshal(header, &hdr); err != nil {
		return fmt.Errorf("service: job log %s: parsing header: %w", s.logPath(), err)
	}
	if hdr.Schema != LogSchema {
		return fmt.Errorf("service: job log %s has schema %q (this build reads %q)", s.logPath(), hdr.Schema, LogSchema)
	}
	if s.offset == 0 || hdr.Gen != s.gen {
		return s.reloadLocked()
	}
	return s.replayLocked(s.offset)
}

// reloadLocked rebuilds the view from scratch: snapshot (if any),
// then the log. It also heals a crash that died between the snapshot
// rename and the log reset, by completing the reset.
func (s *LogStore) reloadLocked() error {
	s.tbl = newJobTable()
	s.gen = 0
	snapGen := uint64(0)
	haveSnap := false
	if b, err := os.ReadFile(s.snapshotPath()); err == nil {
		var doc snapshotDoc
		if err := json.Unmarshal(b, &doc); err != nil {
			return fmt.Errorf("service: parsing snapshot %s: %w", s.snapshotPath(), err)
		}
		if doc.Schema != LogSchema {
			return fmt.Errorf("service: snapshot %s has schema %q (this build reads %q)", s.snapshotPath(), doc.Schema, LogSchema)
		}
		for _, rec := range doc.Jobs {
			lease := rec.Lease
			s.tbl.put(rec) // put ignores the lease field...
			s.tbl.setLease(rec.Status.ID, lease)
		}
		snapGen, haveSnap = doc.Gen, true
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("service: reading snapshot: %w", err)
	}

	header, next, ok, err := s.readFrameAt(0)
	var hdr logHeader
	switch {
	case err == io.EOF, !ok && err == nil:
		// Brand-new (or torn-at-birth) log: write the header for the
		// current generation.
		if err := s.resetLogLocked(snapGen); err != nil {
			return err
		}
		s.gen = snapGen
		return nil
	case err != nil:
		return err
	default:
		if err := json.Unmarshal(header, &hdr); err != nil {
			return fmt.Errorf("service: job log %s: parsing header: %w", s.logPath(), err)
		}
		if hdr.Schema != LogSchema {
			return fmt.Errorf("service: job log %s has schema %q (this build reads %q)", s.logPath(), hdr.Schema, LogSchema)
		}
	}
	switch {
	case haveSnap && hdr.Gen < snapGen:
		// A compaction crashed after renaming the snapshot but before
		// resetting the log. The stale log's mutations are all folded
		// into the snapshot already — replaying them would be
		// idempotent — so just complete the reset.
		if err := s.replayFramesLocked(next); err != nil {
			return err
		}
		if err := s.resetLogLocked(snapGen); err != nil {
			return err
		}
		s.gen = snapGen
		return nil
	case haveSnap && hdr.Gen > snapGen:
		return fmt.Errorf("service: job log %s is generation %d but snapshot is %d — directory corrupted", s.logPath(), hdr.Gen, snapGen)
	case !haveSnap && hdr.Gen != 0:
		return fmt.Errorf("service: job log %s is generation %d but no snapshot exists — directory corrupted", s.logPath(), hdr.Gen)
	}
	s.gen = hdr.Gen
	s.offset = next
	return s.replayLocked(next)
}

// replayFramesLocked applies frames from off to the end without
// updating the replay offset (used when healing a stale log).
func (s *LogStore) replayFramesLocked(off int64) error {
	for {
		payload, next, ok, err := s.readFrameAt(off)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !ok {
			return nil // torn tail; resetLogLocked discards it anyway
		}
		var op logOp
		if json.Unmarshal(payload, &op) == nil {
			s.tbl.apply(op)
		}
		off = next
	}
}

// replayLocked applies frames from off to the end of the log,
// truncating a torn final frame away (we hold the exclusive lock, so
// the torn frame can only be the leavings of a crashed writer).
func (s *LogStore) replayLocked(off int64) error {
	for {
		payload, next, ok, err := s.readFrameAt(off)
		if err == io.EOF {
			s.offset = off
			return nil
		}
		if err != nil {
			return err
		}
		if !ok {
			s.torn++
			if err := s.logF.Truncate(off); err != nil {
				return fmt.Errorf("service: truncating torn job log record: %w", err)
			}
			if err := s.logF.Sync(); err != nil {
				return err
			}
			s.offset = off
			return nil
		}
		var op logOp
		if uerr := json.Unmarshal(payload, &op); uerr != nil {
			// A CRC-valid but unparseable frame is not torn — it is a
			// writer bug or foreign data; refuse rather than guessing.
			return fmt.Errorf("service: job log %s: corrupt record at offset %d: %w", s.logPath(), off, uerr)
		}
		s.tbl.apply(op)
		off = next
	}
}

// appendLocked writes one operation frame with fsync, then applies it
// to the in-memory view. Callers hold the flock via locked.
func (s *LogStore) appendLocked(op logOp) error {
	payload, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("service: encoding job log record: %w", err)
	}
	buf := frame(payload)
	if _, err := s.logF.Write(buf); err != nil {
		return fmt.Errorf("service: appending to job log: %w", err)
	}
	if err := s.logF.Sync(); err != nil {
		return fmt.Errorf("service: syncing job log: %w", err)
	}
	s.tbl.apply(op)
	s.offset += int64(len(buf))
	if s.offset > s.compactBytes {
		return s.compactLocked()
	}
	return nil
}

// resetLogLocked rewrites the log as just a header frame for gen,
// fsynced.
func (s *LogStore) resetLogLocked(gen uint64) error {
	if err := s.logF.Truncate(0); err != nil {
		return fmt.Errorf("service: resetting job log: %w", err)
	}
	payload, err := json.Marshal(logHeader{Schema: LogSchema, Gen: gen})
	if err != nil {
		return err
	}
	buf := frame(payload)
	if _, err := s.logF.Write(buf); err != nil {
		return fmt.Errorf("service: writing job log header: %w", err)
	}
	if err := s.logF.Sync(); err != nil {
		return err
	}
	s.offset = int64(len(buf))
	return nil
}

// compactLocked folds the log into snapshot.json and resets the log
// under a bumped generation. The snapshot write is the crash-safe
// sequence the old FileStore skipped: temp file, fsync the file,
// rename, fsync the directory — a power loss leaves either the old
// snapshot or the new one, never a torn or unlinked in-between.
func (s *LogStore) compactLocked() error {
	doc := snapshotDoc{Schema: LogSchema, Gen: s.gen + 1, Jobs: s.tbl.list()}
	if doc.Jobs == nil {
		doc.Jobs = []Record{}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("service: encoding snapshot: %w", err)
	}
	b = append(b, '\n')
	tmp := s.snapshotPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return fmt.Errorf("service: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("service: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.snapshotPath()); err != nil {
		return err
	}
	if err := syncDir(s.dir); err != nil {
		return err
	}
	if err := s.resetLogLocked(doc.Gen); err != nil {
		return err
	}
	s.gen = doc.Gen
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives power
// loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("service: syncing store directory: %w", err)
	}
	return nil
}

// Compact forces a compaction regardless of log size.
func (s *LogStore) Compact() error {
	return s.locked(s.compactLocked)
}

// TornRecords reports how many torn log frames this store has
// truncated away since it was opened.
func (s *LogStore) TornRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.torn
}

// Put implements Store.
func (s *LogStore) Put(rec Record) error {
	rec = rec.clone()
	return s.locked(func() error {
		return s.appendLocked(logOp{Op: opPut, Record: &rec})
	})
}

// Create implements Store.
func (s *LogStore) Create(rec Record) error {
	rec = rec.clone()
	return s.locked(func() error {
		if _, ok := s.tbl.get(rec.Status.ID); ok {
			return fmt.Errorf("%w: %s", ErrExists, rec.Status.ID)
		}
		return s.appendLocked(logOp{Op: opPut, Record: &rec})
	})
}

// Get implements Store.
func (s *LogStore) Get(id spybox.JobID) (Record, bool, error) {
	var rec Record
	var ok bool
	err := s.locked(func() error {
		if r, found := s.tbl.get(id); found {
			rec, ok = r.clone(), true
		}
		return nil
	})
	return rec, ok, err
}

// List implements Store.
func (s *LogStore) List() ([]Record, error) {
	var out []Record
	err := s.locked(func() error {
		recs := s.tbl.list()
		out = make([]Record, len(recs))
		for i, rec := range recs {
			out[i] = rec.clone()
		}
		return nil
	})
	return out, err
}

// Delete implements Store.
func (s *LogStore) Delete(id spybox.JobID) error {
	return s.locked(func() error {
		if _, ok := s.tbl.get(id); !ok {
			return nil // absent delete is a no-op, and needs no log record
		}
		return s.appendLocked(logOp{Op: opDelete, ID: id})
	})
}

// Counts implements Store.
func (s *LogStore) Counts() (Counts, error) {
	var c Counts
	err := s.locked(func() error {
		c = s.tbl.counts
		c.Leased = s.tbl.leasedCount(s.now())
		return nil
	})
	return c, err
}

// Claim implements Store.
func (s *LogStore) Claim(owner string, ttl time.Duration) (Record, bool, error) {
	var rec Record
	var claimed bool
	err := s.locked(func() error {
		now := s.now()
		id, ok := s.tbl.pickClaim(now)
		if !ok {
			return nil
		}
		if err := s.appendLocked(logOp{Op: opClaim, ID: id, Owner: owner, Expires: now.Add(ttl)}); err != nil {
			return err
		}
		r, _ := s.tbl.get(id)
		rec, claimed = r.clone(), true
		return nil
	})
	return rec, claimed, err
}

// Renew implements Store.
func (s *LogStore) Renew(id spybox.JobID, owner string, ttl time.Duration) error {
	return s.locked(func() error {
		rec, ok := s.tbl.get(id)
		if !ok {
			return fmt.Errorf("%w: %s", spybox.ErrNoJob, id)
		}
		if rec.Lease == nil || rec.Lease.Owner != owner {
			return fmt.Errorf("%w: %s on %s", ErrNotOwner, owner, id)
		}
		return s.appendLocked(logOp{Op: opClaim, ID: id, Owner: owner, Expires: s.now().Add(ttl)})
	})
}

// Release implements Store.
func (s *LogStore) Release(id spybox.JobID, owner string) error {
	return s.locked(func() error {
		rec, ok := s.tbl.get(id)
		if !ok {
			return fmt.Errorf("%w: %s", spybox.ErrNoJob, id)
		}
		if rec.Lease == nil || rec.Lease.Owner != owner {
			return fmt.Errorf("%w: %s on %s", ErrNotOwner, owner, id)
		}
		return s.appendLocked(logOp{Op: opRelease, ID: id})
	})
}
