// Fleet and batch behavior: several Service instances (as several
// processes would) sharing one LogStore directory, lease reclaim of a
// crashed owner's job, and server-side sweep expansion with fairness.

package service

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"spybox/pkg/spybox"
)

// claimCounter counts successful claims through a Store, so a test
// can assert exactly-once scheduling: with no crashes, total claims
// across a fleet must equal total jobs.
type claimCounter struct {
	Store
	n atomic.Int64
}

func (c *claimCounter) Claim(owner string, ttl time.Duration) (Record, bool, error) {
	rec, ok, err := c.Store.Claim(owner, ttl)
	if ok {
		c.n.Add(1)
	}
	return rec, ok, err
}

// fleetOptions are fast-reacting settings for multi-service tests.
func fleetOptions(store Store, owner string) Options {
	return Options{
		Store: store, Owner: owner, Workers: 2,
		Poll: 20 * time.Millisecond, LeaseTTL: time.Minute,
	}
}

// TestFleetSharedStoreExactlyOnce is the fleet acceptance test in one
// process: two Services, each with its own LogStore handle on one
// directory, drain one queue — every job claimed exactly once, and
// both sides read identical result bytes back from the shared store.
func TestFleetSharedStoreExactlyOnce(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	open := func() *claimCounter {
		s, err := OpenLogStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return &claimCounter{Store: s}
	}
	storeA, storeB := open(), open()
	svcA := newTestService(t, fleetOptions(storeA, "A"))
	svcB := newTestService(t, fleetOptions(storeB, "B"))

	// Submissions through A become visible to B's workers via the log,
	// and vice versa.
	var ids []spybox.JobID
	for i := 0; i < 3; i++ {
		spec := smallSpec("fig4")
		spec.Seed = uint64(200 + i)
		id, err := svcA.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// B allocated no IDs yet, so its first Submit races A's job-1..3
	// and must skip to the next free sequence number, not overwrite.
	specB := smallSpec("fig4")
	specB.Seed = 300
	idB, err := svcB.Submit(specB)
	if err != nil {
		t.Fatal(err)
	}
	if idB != "job-4" {
		t.Errorf("cross-process ID allocation gave %s, want job-4", idB)
	}
	ids = append(ids, idB)

	// Either side can wait on any job, whoever ran it.
	for _, id := range ids {
		st, err := svcB.Wait(context.Background(), id)
		if err != nil || st.State != spybox.JobDone || st.Done != 1 {
			t.Fatalf("fleet job %s: %+v, %v", id, st, err)
		}
	}
	if total := storeA.n.Load() + storeB.n.Load(); total != int64(len(ids)) {
		t.Errorf("%d claims for %d jobs — not exactly once", total, len(ids))
	}
	// Results read back identically through both handles.
	for _, id := range ids {
		ra, err := svcA.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := svcB.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encode(t, ra), encode(t, rb)) {
			t.Errorf("job %s reads differently through the two stores", id)
		}
	}
}

// TestFleetReclaimsCrashedOwner: a job claimed and marked running by a
// worker that died (no renewals) is reclaimed after its lease expires
// and re-run from scratch by a live service.
func TestFleetReclaimsCrashedOwner(t *testing.T) {
	t.Parallel()
	store, err := OpenLogStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.Put(rec("job-1", spybox.JobQueued)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := store.Claim("dead", 50*time.Millisecond); err != nil || !ok {
		t.Fatalf("seed claim: %v %v", ok, err)
	}
	r, _, _ := store.Get("job-1")
	r.Status.State = spybox.JobRunning
	r.Status.Done = 0
	if err := store.Put(r); err != nil {
		t.Fatal(err)
	}

	svc := newTestService(t, fleetOptions(store, "alive"))
	st, err := svc.Wait(context.Background(), "job-1")
	if err != nil || st.State != spybox.JobDone || st.Done != 1 {
		t.Fatalf("reclaimed job: %+v, %v", st, err)
	}
	if results, err := svc.Result("job-1"); err != nil || len(results) != 1 {
		t.Fatalf("reclaimed job results: %d, %v", len(results), err)
	}
}

// TestSubmitBatchExpandsAndStaysFair: a sweep expands into stamped
// jobs, the batch census tracks them, and with one worker an
// interactive job overtakes the still-queued bulk of the batch.
func TestSubmitBatchExpandsAndStaysFair(t *testing.T) {
	t.Parallel()
	svc := newTestService(t, Options{Workers: 1})
	seeds := []uint64{401, 402, 403}
	st, err := svc.SubmitBatch(BatchSpec{
		Experiments: []string{"fig9"}, Seeds: seeds, Scales: []string{"small"}, Parallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != len(seeds) || len(st.Jobs) != len(seeds) || st.Queued != len(seeds) {
		t.Fatalf("batch expansion: %+v", st)
	}
	if st.ID == "" || !strings.HasPrefix(st.ID, "batch-") {
		t.Fatalf("batch ID %q", st.ID)
	}
	for _, id := range st.Jobs {
		js, err := svc.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if js.Batch != st.ID {
			t.Errorf("job %s carries batch %q, want %q", id, js.Batch, st.ID)
		}
		if len(js.Spec.Experiments) != 1 || js.Spec.Experiments[0] != "fig9" || js.Spec.Scale != "small" {
			t.Errorf("job %s spec not expanded: %+v", id, js.Spec)
		}
	}

	// An interactive job submitted behind the batch: round-robin must
	// run it before the batch drains (fig9 jobs are slow, fig4 fast).
	inter, err := svc.Submit(smallSpec("fig4"))
	if err != nil {
		t.Fatal(err)
	}
	is, err := svc.Wait(context.Background(), inter)
	if err != nil || is.State != spybox.JobDone {
		t.Fatalf("interactive job: %+v, %v", is, err)
	}
	mid, err := svc.Batch(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Done == mid.Total {
		t.Error("interactive job only ran after the whole batch drained")
	}

	waitUntil(t, "batch terminal", func() bool {
		b, err := svc.Batch(st.ID)
		return err == nil && b.Terminal()
	})
	final, err := svc.Batch(st.ID)
	if err != nil || final.Done != final.Total || final.Failed != 0 {
		t.Fatalf("final batch census: %+v, %v", final, err)
	}
	if _, err := svc.Batch("batch-999"); !errors.Is(err, ErrNoBatch) {
		t.Errorf("unknown batch: %v", err)
	}
}

// TestSubmitBatchValidation: a bad sweep submits nothing, and the
// expansion limit is enforced before any job is created.
func TestSubmitBatchValidation(t *testing.T) {
	t.Parallel()
	svc := newTestService(t, Options{Workers: 1, BatchLimit: 4})
	cases := []BatchSpec{
		{Experiments: []string{"bogus"}},
		{Experiments: []string{"fig4"}, Scales: []string{"huge"}},
		{Experiments: []string{"fig4"}, Seeds: []uint64{1, 2, 3, 4, 5}}, // over BatchLimit
	}
	for _, spec := range cases {
		if _, err := svc.SubmitBatch(spec); err == nil {
			t.Errorf("SubmitBatch(%+v) accepted", spec)
		}
	}
	if jobs, _ := svc.Jobs(); len(jobs) != 0 {
		t.Errorf("invalid batches left %d jobs", len(jobs))
	}
}

// TestHTTPBatch drives the sweep endpoints over the wire: submit,
// census, wait, and the 404/400 edges.
func TestHTTPBatch(t *testing.T) {
	t.Parallel()
	_, cli := newTestServer(t, Options{Workers: 2})
	st, err := cli.SubmitBatch(BatchSpec{
		Experiments: []string{"fig4"}, Seeds: []uint64{501, 502}, Scales: []string{"small"}, Parallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 2 || len(st.Jobs) != 2 {
		t.Fatalf("batch over HTTP: %+v", st)
	}
	final, err := cli.WaitBatch(context.Background(), st.ID)
	if err != nil || final.Done != 2 {
		t.Fatalf("WaitBatch: %+v, %v", final, err)
	}
	// Every member is a plain job too, with results.
	for _, id := range final.Jobs {
		results, err := cli.Result(id)
		if err != nil || len(results) != 1 {
			t.Fatalf("batch member %s results: %d, %v", id, len(results), err)
		}
	}
	if _, err := cli.Batch("batch-999"); err == nil || !strings.Contains(err.Error(), "no such batch") {
		t.Errorf("unknown batch over HTTP: %v", err)
	}
	if _, err := cli.SubmitBatch(BatchSpec{Experiments: []string{"bogus"}}); err == nil {
		t.Error("bad batch accepted over HTTP")
	}
}
