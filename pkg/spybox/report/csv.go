package report

import (
	"fmt"
	"io"
	"strings"
)

// CSV writes series as columns: x, then one y column per series
// (series are assumed to share X; shorter series pad with blanks).
func CSV(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return nil
	}
	header := []string{"x"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	n := 0
	for _, s := range series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(series)+1)
		if i < len(series[0].X) {
			row = append(row, fmt.Sprintf("%g", series[0].X[i]))
		} else {
			row = append(row, "")
		}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%g", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
