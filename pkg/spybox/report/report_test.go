package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// sample builds a result exercising every record kind, units,
// artifacts, and series.
func sample() *Result {
	r := New("figX", "A sample experiment")
	r.Notef("%-6s %-10s", "sets", "bw")
	r.Rowf("%-6d %-10.4f", F("sets", 4), FU("bandwidth", "MB/s", 3.95))
	r.Rowf("policy %s ok=%v", F("policy", "LRU"), F("ok", true))
	r.Blank()
	r.Chart("| *\n| **\n+---")
	r.Errorf("ARTIFACT ERROR: %s", "disk is lava")
	r.SetMetric("bw", "MB/s", 3.95)
	r.SetMetric("aligned", "", 1)
	r.Series = []Series{{Name: "bw", X: []float64{1, 2}, Y: []float64{0.5, 1}}}
	r.Artifacts["x.pgm"] = []byte{1, 2, 3}
	return r
}

func TestRowfTextFromFields(t *testing.T) {
	r := New("x", "t")
	r.Rowf("%-6d %-10.4f %s", F("sets", 4), FU("bw", "MB/s", 3.95), F("tag", "hi"))
	rec := r.Records[0]
	if rec.Kind != KindRow {
		t.Errorf("kind = %q", rec.Kind)
	}
	if want := "4      3.9500     hi"; rec.Text != want {
		t.Errorf("text %q, want %q", rec.Text, want)
	}
	if len(rec.Fields) != 3 || rec.Fields[1].Unit != "MB/s" || rec.Fields[1].Value != 3.95 {
		t.Errorf("fields %+v", rec.Fields)
	}
}

func TestPrintLayout(t *testing.T) {
	r := New("figX", "Title here")
	r.Notef("line one")
	r.Rowf("v=%d", F("v", 7))
	r.SetMetric("zz", "", 2)
	r.SetMetric("aa", "cycles", 1.5)
	var b strings.Builder
	r.Print(&b)
	want := "=== figX — Title here ===\n" +
		"line one\n" +
		"v=7\n" +
		"metrics:\n" +
		"  aa                               1.5\n" +
		"  zz                               2\n" +
		"\n"
	if b.String() != want {
		t.Errorf("print output:\n%q\nwant:\n%q", b.String(), want)
	}
}

func TestLines(t *testing.T) {
	r := sample()
	lines := r.Lines()
	if len(lines) != len(r.Records) {
		t.Fatalf("%d lines for %d records", len(lines), len(r.Records))
	}
	if lines[3] != "" {
		t.Errorf("blank record renders %q", lines[3])
	}
	if !strings.Contains(lines[5], "disk is lava") {
		t.Errorf("error record text %q", lines[5])
	}
}

func TestMetricListSortedWithUnits(t *testing.T) {
	r := sample()
	ms := r.MetricList()
	if len(ms) != 2 || ms[0].Key != "aligned" || ms[1].Key != "bw" {
		t.Fatalf("metric list %+v", ms)
	}
	if ms[1].Unit != "MB/s" || ms[1].Value != 3.95 {
		t.Errorf("bw metric %+v", ms[1])
	}
}

func TestJSONRoundTripStable(t *testing.T) {
	var first bytes.Buffer
	if err := Encode(&first, sample()); err != nil {
		t.Fatal(err)
	}
	decoded, err := Decode(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded %d results", len(decoded))
	}
	r := decoded[0]
	if r.ID != "figX" || r.Metrics["bw"] != 3.95 || r.Units["bw"] != "MB/s" {
		t.Errorf("decoded result lost data: %+v", r)
	}
	if !bytes.Equal(r.Artifacts["x.pgm"], []byte{1, 2, 3}) {
		t.Errorf("artifact bytes corrupted: %v", r.Artifacts)
	}
	var second bytes.Buffer
	if err := Encode(&second, decoded...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("encode(decode(doc)) != doc:\n--- first ---\n%s\n--- second ---\n%s", first.String(), second.String())
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	doc := `{"schema": "spybox.report/v999", "results": []}`
	if _, err := Decode(strings.NewReader(doc)); err == nil || !strings.Contains(err.Error(), "v999") {
		t.Errorf("wrong-schema decode: %v", err)
	}
	if _, err := Decode(strings.NewReader(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestNonFiniteValuesEncode(t *testing.T) {
	r := New("inf", "degenerate ratios")
	r.Rowf("ratio %.2fx nan %.1f", F("ratio", math.Inf(1)), F("nan", math.NaN()))
	r.SetMetric("growth", "x", math.Inf(1))
	r.Series = []Series{{Name: "deg", X: []float64{1, 2}, Y: []float64{math.NaN(), math.Inf(-1)}}}
	var first bytes.Buffer
	if err := Encode(&first, r); err != nil {
		t.Fatalf("non-finite values broke encoding: %v", err)
	}
	decoded, err := Decode(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(decoded[0].Metrics["growth"], 1) {
		t.Errorf("growth decoded to %v, want +Inf", decoded[0].Metrics["growth"])
	}
	y := decoded[0].Series[0].Y
	if !math.IsNaN(y[0]) || !math.IsInf(y[1], -1) {
		t.Errorf("series points decoded to %v, want [NaN -Inf]", y)
	}
	var second bytes.Buffer
	if err := Encode(&second, decoded...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("non-finite round trip not stable")
	}
}

func TestCSV(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "b", X: []float64{1}, Y: []float64{30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "x,a,b\n1,10,30\n2,20,\n"
	if b.String() != want {
		t.Errorf("csv %q, want %q", b.String(), want)
	}
	var empty strings.Builder
	if err := CSV(&empty, nil); err != nil || empty.Len() != 0 {
		t.Errorf("empty CSV wrote %q, err %v", empty.String(), err)
	}
}
