// Package report is the structured result model of the spybox
// reproduction: every experiment produces a Result made of ordered
// Records (keyed fields with an exact text rendering), headline
// Metrics with units, chart Series, and binary Artifacts.
//
// Two renderers consume the model. The text renderer (Result.Print)
// reproduces the historical free-form reports byte-for-byte — the
// repository's golden tests pin this. The JSON codec (Encode/Decode)
// emits a schema-versioned machine-readable document that decodes and
// re-encodes to identical bytes, so external tooling can rely on it.
package report

import (
	"fmt"
	"io"
	"sort"
)

// Field is one keyed value of a Record. Value is a JSON-friendly
// scalar: string, bool, or any integer or float type. Producers pass
// the same values the text rendering formats, so the two views can
// never drift apart.
type Field struct {
	Key   string `json:"key"`
	Unit  string `json:"unit,omitempty"`
	Value any    `json:"value"`
}

// F builds a unitless field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// FU builds a field carrying a unit ("cycles", "MB/s", "%", ...).
func FU(key, unit string, value any) Field { return Field{Key: key, Unit: unit, Value: value} }

// Record kinds. Rows carry data in Fields; the other kinds are
// presentation-only (their payload is the Text).
const (
	KindRow   = "row"   // a data row; Fields hold the keyed values
	KindNote  = "note"  // narrative commentary or a table header
	KindChart = "chart" // a pre-rendered multi-line figure block
	KindBlank = "blank" // a spacer line
	KindError = "error" // a non-fatal problem surfaced in the report
)

// Record is one ordered row of an experiment report. Text is the
// exact human-readable rendering (what the text renderer prints);
// Fields are the machine-readable values of KindRow records.
type Record struct {
	Kind   string  `json:"kind"`
	Text   string  `json:"text"`
	Fields []Field `json:"fields,omitempty"`
}

// Metric is one headline number with its unit, as encoded to JSON.
type Metric struct {
	Key   string  `json:"key"`
	Unit  string  `json:"unit,omitempty"`
	Value float64 `json:"value"`
}

// Series is one named line of (x, y) chart points (also exported as
// CSV by the CLI's -out flag).
type Series struct {
	Name string    `json:"name"`
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
}

// Result is one experiment's reproduction output.
type Result struct {
	ID    string
	Title string
	// Records are the report rows, in print order.
	Records []Record
	// Series are optional chart data (also exported as CSV).
	Series []Series
	// Metrics are the headline numbers, keyed for EXPERIMENTS.md.
	// Units holds the optional unit per metric key; use SetMetric to
	// keep both in step.
	Metrics map[string]float64
	Units   map[string]string
	// Artifacts are binary outputs (PGM memorygram images), written
	// next to the CSVs when the CLI is given -out.
	Artifacts map[string][]byte
}

// New starts an empty result.
func New(id, title string) *Result {
	return &Result{ID: id, Title: title, Metrics: map[string]float64{}, Artifacts: map[string][]byte{}}
}

// Rowf appends a data row. The text rendering is
// fmt.Sprintf(format, field values in order) — the fields are the
// single source of both views, which is what keeps the text reports
// byte-identical to the pre-structured code while the same values
// flow into JSON.
func (r *Result) Rowf(format string, fields ...Field) {
	args := make([]any, len(fields))
	for i, f := range fields {
		args[i] = f.Value
	}
	r.Records = append(r.Records, Record{Kind: KindRow, Text: fmt.Sprintf(format, args...), Fields: fields})
}

// Notef appends a commentary or table-header record; the arguments
// are formatted into the text only.
func (r *Result) Notef(format string, args ...any) {
	r.Records = append(r.Records, Record{Kind: KindNote, Text: fmt.Sprintf(format, args...)})
}

// Errorf appends a non-fatal problem record (e.g. an artifact that
// failed to render) so the failure is visible in the report.
func (r *Result) Errorf(format string, args ...any) {
	r.Records = append(r.Records, Record{Kind: KindError, Text: fmt.Sprintf(format, args...)})
}

// Chart appends a pre-rendered multi-line figure block (ASCII chart,
// histogram, memorygram, confusion matrix).
func (r *Result) Chart(text string) {
	r.Records = append(r.Records, Record{Kind: KindChart, Text: text})
}

// Blank appends a spacer line.
func (r *Result) Blank() {
	r.Records = append(r.Records, Record{Kind: KindBlank})
}

// SetMetric records a headline metric and its unit.
func (r *Result) SetMetric(key, unit string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[key] = v
	if unit != "" {
		if r.Units == nil {
			r.Units = map[string]string{}
		}
		r.Units[key] = unit
	}
}

// MetricList returns the metrics as typed records, sorted by key (the
// order the text renderer prints and the JSON codec encodes).
func (r *Result) MetricList() []Metric {
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Metric, len(keys))
	for i, k := range keys {
		out[i] = Metric{Key: k, Unit: r.Units[k], Value: r.Metrics[k]}
	}
	return out
}

// Lines returns the text rendering of each record, in order — the
// report body as the pre-structured code stored it.
func (r *Result) Lines() []string {
	out := make([]string, len(r.Records))
	for i, rec := range r.Records {
		out[i] = rec.Text
	}
	return out
}

// Print writes the full text report: header, record texts in order,
// and the sorted metrics block. This rendering is pinned byte-for-byte
// by the repository's golden tests. It returns the first write error:
// a report truncated by a full disk or closed pipe must not pass
// silently for a caller saving artifacts.
func (r *Result) Print(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pf("=== %s — %s ===\n", r.ID, r.Title)
	for _, rec := range r.Records {
		pf("%s\n", rec.Text)
	}
	if len(r.Metrics) > 0 {
		pf("metrics:\n")
		for _, m := range r.MetricList() {
			pf("  %-32s %g\n", m.Key, m.Value)
		}
	}
	pf("\n")
	return err
}

// Clone returns a deep copy of the result: mutating the copy (its
// records, fields, series points, metrics, or artifact bytes) never
// touches the original. Stores and caches hand Clones across their
// read boundary so persisted state cannot be edited behind their
// back. Field values are the JSON-friendly scalars the model
// documents (string, bool, numbers), so copying the Field struct
// copies the value.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	out := &Result{ID: r.ID, Title: r.Title}
	if r.Records != nil {
		out.Records = make([]Record, len(r.Records))
		for i, rec := range r.Records {
			out.Records[i] = rec
			if rec.Fields != nil {
				out.Records[i].Fields = append([]Field(nil), rec.Fields...)
			}
		}
	}
	if r.Series != nil {
		out.Series = make([]Series, len(r.Series))
		for i, s := range r.Series {
			out.Series[i] = Series{
				Name: s.Name,
				X:    append([]float64(nil), s.X...),
				Y:    append([]float64(nil), s.Y...),
			}
		}
	}
	if r.Metrics != nil {
		out.Metrics = make(map[string]float64, len(r.Metrics))
		for k, v := range r.Metrics {
			out.Metrics[k] = v
		}
	}
	if r.Units != nil {
		out.Units = make(map[string]string, len(r.Units))
		for k, v := range r.Units {
			out.Units[k] = v
		}
	}
	if r.Artifacts != nil {
		out.Artifacts = make(map[string][]byte, len(r.Artifacts))
		for k, v := range r.Artifacts {
			out.Artifacts[k] = append([]byte(nil), v...)
		}
	}
	return out
}
