// The versioned JSON encoding of results. A Document wraps the
// results with a schema tag; Decode refuses documents from a
// different schema version instead of misreading them. The encoding
// is stable: Encode(Decode(doc)) reproduces doc byte-for-byte (the
// schema test pins this), so the schema version only moves when the
// shape of the document changes.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Schema identifies the JSON document layout. Consumers should treat
// any other value as unreadable; see the schema policy in the README.
const Schema = "spybox.report/v1"

// Document is the top-level JSON value: a schema tag plus the results
// of one run.
type Document struct {
	SchemaVersion string    `json:"schema"`
	Results       []*Result `json:"results"`
}

// Encode writes the results as an indented, schema-tagged JSON
// document. Output is deterministic: field order is fixed, metric
// lists are key-sorted, and artifact maps encode in sorted key order.
func Encode(w io.Writer, results ...*Result) error {
	if results == nil {
		results = []*Result{} // "results" must be an array, never null
	}
	doc := Document{SchemaVersion: Schema, Results: results}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("report: encoding results: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Decode reads a document produced by Encode, verifying the schema
// version before trusting the payload.
func Decode(r io.Reader) ([]*Result, error) {
	var doc Document
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("report: decoding document: %w", err)
	}
	if doc.SchemaVersion != Schema {
		return nil, fmt.Errorf("report: unsupported schema %q (this build reads %q)", doc.SchemaVersion, Schema)
	}
	return doc.Results, nil
}

// resultJSON is the wire shape of a Result: metrics become a
// key-sorted list with units, everything else encodes directly.
type resultJSON struct {
	ID        string            `json:"id"`
	Title     string            `json:"title"`
	Records   []Record          `json:"records"`
	Metrics   []Metric          `json:"metrics"`
	Series    []Series          `json:"series,omitempty"`
	Artifacts map[string][]byte `json:"artifacts,omitempty"`
}

// MarshalJSON encodes the metrics as an ordered list so units ride
// along and the output is deterministic.
func (r *Result) MarshalJSON() ([]byte, error) {
	art := r.Artifacts
	if len(art) == 0 {
		art = nil
	}
	return json.Marshal(resultJSON{
		ID: r.ID, Title: r.Title, Records: r.Records,
		Metrics: r.MetricList(), Series: r.Series, Artifacts: art,
	})
}

// UnmarshalJSON rebuilds the metric and unit maps from the wire list.
func (r *Result) UnmarshalJSON(b []byte) error {
	var w resultJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = Result{ID: w.ID, Title: w.Title, Records: w.Records, Series: w.Series,
		Metrics: map[string]float64{}, Artifacts: map[string][]byte{}}
	for _, m := range w.Metrics {
		r.SetMetric(m.Key, m.Unit, m.Value)
	}
	for name, data := range w.Artifacts {
		r.Artifacts[name] = data
	}
	return nil
}

// jsonValue maps non-finite floats to their string spelling: JSON has
// no NaN/Inf literals and encoding/json would otherwise fail the whole
// document over one degenerate ratio. Strings round-trip stably.
func jsonValue(v any) any {
	switch f := v.(type) {
	case float64:
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return strconv.FormatFloat(f, 'g', -1, 64)
		}
	case float32:
		if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
			return strconv.FormatFloat(float64(f), 'g', -1, 32)
		}
	}
	return v
}

// MarshalJSON guards field values against non-finite floats.
func (f Field) MarshalJSON() ([]byte, error) {
	type wire Field // drops the method, keeps the tags
	w := wire(f)
	w.Value = jsonValue(w.Value)
	return json.Marshal(w)
}

// wireFloats guards a float slice for the wire: finite values stay
// numbers, non-finite ones become their string spelling. A nil slice
// stays nil so the encoding of absent axes is unchanged.
func wireFloats(xs []float64) []any {
	if xs == nil {
		return nil
	}
	out := make([]any, len(xs))
	for i, x := range xs {
		out[i] = jsonValue(x)
	}
	return out
}

// parseWireFloat reads a wire value written by jsonValue back into a
// float64.
func parseWireFloat(what string, v any) (float64, error) {
	switch v := v.(type) {
	case float64:
		return v, nil
	case string:
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return 0, fmt.Errorf("report: %s has non-numeric value %q", what, v)
		}
		return f, nil
	}
	return 0, fmt.Errorf("report: %s has value of type %T", what, v)
}

// seriesWire lets chart points carry string-spelled non-finite floats.
type seriesWire struct {
	Name string `json:"name"`
	X    []any  `json:"x"`
	Y    []any  `json:"y"`
}

// MarshalJSON guards chart points against non-finite floats.
func (s Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(seriesWire{Name: s.Name, X: wireFloats(s.X), Y: wireFloats(s.Y)})
}

// UnmarshalJSON accepts both numeric and string-spelled points.
func (s *Series) UnmarshalJSON(b []byte) error {
	var w seriesWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	parse := func(axis string, vs []any) ([]float64, error) {
		if vs == nil {
			return nil, nil
		}
		out := make([]float64, len(vs))
		for i, v := range vs {
			f, err := parseWireFloat(fmt.Sprintf("series %q %s[%d]", w.Name, axis, i), v)
			if err != nil {
				return nil, err
			}
			out[i] = f
		}
		return out, nil
	}
	x, err := parse("x", w.X)
	if err != nil {
		return err
	}
	y, err := parse("y", w.Y)
	if err != nil {
		return err
	}
	*s = Series{Name: w.Name, X: x, Y: y}
	return nil
}

// metricWire lets Metric.Value carry either a number or the string
// spelling of a non-finite float.
type metricWire struct {
	Key   string `json:"key"`
	Unit  string `json:"unit,omitempty"`
	Value any    `json:"value"`
}

// MarshalJSON guards metric values against non-finite floats.
func (m Metric) MarshalJSON() ([]byte, error) {
	return json.Marshal(metricWire{Key: m.Key, Unit: m.Unit, Value: jsonValue(m.Value)})
}

// UnmarshalJSON accepts both numeric and string-spelled values.
func (m *Metric) UnmarshalJSON(b []byte) error {
	var w metricWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	m.Key, m.Unit = w.Key, w.Unit
	f, err := parseWireFloat(fmt.Sprintf("metric %q", w.Key), w.Value)
	if err != nil {
		return err
	}
	m.Value = f
	return nil
}
