// The machine-level scripting toolkit: re-exports of the simulator
// and attack-suite types external users drive directly when the
// experiment layer is too coarse — build a machine, characterize
// timing, discover eviction sets, align channels across processes,
// transmit covertly, and spy on victims. The examples/ directory
// walks these end to end; the type aliases keep the full method sets
// usable without importing internal packages (which module boundaries
// forbid).
package spybox

import (
	"spybox/internal/arch"
	"spybox/internal/classify"
	"spybox/internal/core"
	"spybox/internal/memgram"
	"spybox/internal/sim"
	"spybox/internal/victim"
)

// --- the simulated box ---

// Machine is the simulated multi-GPU box: a conservative
// discrete-event engine over GPUs, L2 caches, HBM, and the NVLink
// fabric. Identical seeds give identical cycle-for-cycle runs.
type Machine = sim.Machine

// MachineOptions parameterize machine construction (seed, optional
// architecture profile, MIG partitions, ...).
type MachineOptions = sim.Options

// NewMachine builds a simulated box. A nil Profile means the paper's
// p100-dgx1.
func NewMachine(opts MachineOptions) (*Machine, error) { return sim.NewMachine(opts) }

// MustNewMachine is NewMachine for known-good options; it panics on
// error.
func MustNewMachine(opts MachineOptions) *Machine { return sim.MustNewMachine(opts) }

// DeviceID names one GPU of the box.
type DeviceID = arch.DeviceID

// Profile bundles one GPU generation's box: GPU count, NVLink
// topology, L2 geometry, and the calibrated latency model.
type Profile = arch.Profile

// Profiles lists every named architecture profile.
func Profiles() []Profile { return arch.Profiles() }

// ProfileNames lists the -arch spellings of every profile.
func ProfileNames() []string { return arch.ProfileNames() }

// LookupProfile resolves a profile by name.
func LookupProfile(name string) (Profile, error) { return arch.LookupProfile(name) }

// --- timing characterization and eviction sets (Sec. III) ---

// TimingProfile is a Fig. 4 characterization: per-class latency
// samples, the histogram, and the derived thresholds.
type TimingProfile = core.TimingProfile

// Thresholds separate the four access-time classes.
type Thresholds = core.Thresholds

// CharacterizeTiming times the four access classes (local/remote ×
// hit/miss) between two GPUs and derives classification thresholds.
func CharacterizeTiming(m *Machine, devLocal, devRemote DeviceID, accesses int, seed uint64) (*TimingProfile, error) {
	return core.CharacterizeTiming(m, devLocal, devRemote, accesses, seed)
}

// Attacker is one attacking process: a buffer on the target GPU plus
// the discovery, validation, geometry-inference, monitoring, and
// probing machinery over it.
type Attacker = core.Attacker

// EvictionSet is one discovered set of cache-colliding lines.
type EvictionSet = core.EvictionSet

// Geometry is a reverse-engineered L2 architecture (Table I).
type Geometry = core.Geometry

// NewAttacker builds an attacker on dev whose buffer lives on the
// target GPU.
func NewAttacker(m *Machine, dev, target DeviceID, pages int, thr Thresholds, seed uint64) (*Attacker, error) {
	return core.NewAttacker(m, dev, target, pages, thr, seed)
}

// --- the covert channel (Sec. IV) ---

// AlignedPair couples a trojan eviction set with the spy set that
// collides with it in the target L2.
type AlignedPair = core.AlignedPair

// CovertConfig paces the channel's bit protocol.
type CovertConfig = core.CovertConfig

// Channel is an aligned trojan->spy covert channel.
type Channel = core.Channel

// AlignChannels aligns numSets trojan/spy set pairs across processes
// (Fig. 7's procedure, repeated).
func AlignChannels(trojan, spy *Attacker, trojanSets, spyCandidates []EvictionSet, numSets int) ([]AlignedPair, error) {
	return core.AlignChannels(trojan, spy, trojanSets, spyCandidates, numSets)
}

// NewChannel builds a covert channel over aligned set pairs.
func NewChannel(trojan, spy *Attacker, pairs []AlignedPair, cfg CovertConfig) (*Channel, error) {
	return core.NewChannel(trojan, spy, pairs, cfg)
}

// DefaultCovertConfig returns the paper-calibrated channel pacing.
func DefaultCovertConfig() CovertConfig { return core.DefaultCovertConfig() }

// BitsToBytes packs received bits into bytes.
func BitsToBytes(bits []byte) []byte { return core.BitsToBytes(bits) }

// --- side-channel monitoring and victims (Sec. V) ---

// MonitorOptions parameterize a Prime+Probe monitoring run.
type MonitorOptions = core.MonitorOptions

// MonitorResult holds the per-epoch, per-set miss matrix.
type MonitorResult = core.MonitorResult

// VictimApp is one of the six victim applications of Fig. 11.
type VictimApp = victim.App

// VictimConfig sizes a victim application.
type VictimConfig = victim.Config

// VictimAppNames lists the six victim applications, in Fig. 11 order.
func VictimAppNames() []string { return append([]string(nil), victim.AppNames...) }

// NewVictimApp builds a victim application by name on dev.
func NewVictimApp(name string, m *Machine, dev DeviceID, seed uint64, cfg VictimConfig) (*VictimApp, error) {
	return victim.NewApp(name, m, dev, seed, cfg)
}

// MLPVictim trains a small MLP on-device — the model-extraction
// target of Sec. V-B.
type MLPVictim = victim.MLPVictim

// MLPVictimConfig sizes the MLP victim (hidden width, epochs, ...).
type MLPVictimConfig = victim.MLPVictimConfig

// NewMLPVictim builds an MLP victim on dev.
func NewMLPVictim(m *Machine, dev DeviceID, seed uint64, cfg MLPVictimConfig) (*MLPVictim, error) {
	return victim.NewMLPVictim(m, dev, seed, cfg)
}

// Memorygram is the per-set, per-epoch miss image of a monitored
// victim (Fig. 11/14/15).
type Memorygram = memgram.Gram

// NewMemorygram builds a memorygram from a monitor's miss matrix.
func NewMemorygram(miss [][]int, label string) (*Memorygram, error) { return memgram.New(miss, label) }

// ClassifySample is one (features, class) pair for fingerprinting.
type ClassifySample = classify.Sample

// KNN is a k-nearest-neighbour fingerprint classifier.
type KNN = classify.KNN

// NewKNN builds a k-NN classifier over training samples.
func NewKNN(k int, train []ClassifySample) (*KNN, error) { return classify.NewKNN(k, train) }
