package spybox

import (
	"encoding/json"
	"testing"
)

func TestJobStateJSONRoundTrip(t *testing.T) {
	states := []JobState{JobQueued, JobRunning, JobDone, JobFailed, JobCancelled}
	for _, s := range states {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back JobState
		if err := json.Unmarshal(b, &back); err != nil || back != s {
			t.Errorf("%v -> %s -> %v (%v)", s, b, back, err)
		}
	}
	var bogus JobState
	if err := json.Unmarshal([]byte(`"exploded"`), &bogus); err == nil {
		t.Error("unknown state accepted")
	}
	wantTerminal := map[JobState]bool{
		JobQueued: false, JobRunning: false,
		JobDone: true, JobFailed: true, JobCancelled: true,
	}
	for s, want := range wantTerminal {
		if s.Terminal() != want {
			t.Errorf("%v.Terminal() = %v", s, s.Terminal())
		}
	}
}
