// Package spybox is the public library API of the reproduction: the
// one supported way to drive the simulated multi-GPU box and its
// attack suite from outside this repository.
//
// Open a Session with a Config, then Run experiments by ID:
//
//	sess, err := spybox.Open(spybox.Config{Scale: spybox.Small})
//	results, err := sess.Run(ctx, "fig9")
//
// Run returns structured results (pkg/spybox/report): typed record
// rows, keyed metrics with units, chart series, and artifacts, with a
// text renderer that matches the CLI's reports byte-for-byte and a
// schema-versioned JSON encoding (report.Encode). Long runs are
// observable through Config.Events (per-experiment and per-trial
// start/finish) and cancellable through the context; a cancelled run
// returns the completed results alongside an *InterruptedError.
//
// For direct machine-level scripting below the experiment layer —
// building machines, characterizing timing, discovering eviction
// sets, driving covert channels and victims by hand — see the
// re-exported toolkit in machine.go (Session.NewMachine, NewAttacker,
// AlignChannels, ...). The examples/ directory exercises both layers.
package spybox

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"spybox/internal/expt"
	"spybox/pkg/spybox/report"
)

// DefaultSeed is the root seed the repository's reference reports are
// generated with.
const DefaultSeed uint64 = 20230612

// Scale selects experiment sizing; see the Small/Default/Paper
// constants.
type Scale = expt.Scale

// Experiment scales, in increasing cost order.
const (
	Small   = expt.Small   // unit-test sizing: seconds per experiment
	Default = expt.Default // CLI sizing: paper-shaped results in minutes
	Paper   = expt.Paper   // approaches the paper's sample counts
)

// ParseScale maps a flag spelling ("small", "default", "paper") to a
// Scale; the empty string means Default.
func ParseScale(s string) (Scale, error) { return expt.ParseScale(s) }

// Scales lists every scale, in increasing cost order.
func Scales() []Scale { return expt.Scales() }

// ScaleNames returns the flag spellings of every scale.
func ScaleNames() []string { return expt.ScaleNames() }

// Structured result model, re-exported from pkg/spybox/report.
type (
	Result = report.Result
	Record = report.Record
	Field  = report.Field
	Metric = report.Metric
	Series = report.Series
)

// EventKind tags a progress event.
type EventKind int

const (
	// ExperimentStart fires before an experiment's first trial.
	ExperimentStart EventKind = iota
	// ExperimentDone fires after an experiment completes or fails.
	ExperimentDone
	// TrialStart fires when a trial is claimed by a runner worker.
	TrialStart
	// TrialDone fires when a trial finishes.
	TrialDone
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case ExperimentStart:
		return "experiment-start"
	case ExperimentDone:
		return "experiment-done"
	case TrialStart:
		return "trial-start"
	case TrialDone:
		return "trial-done"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one progress notification of a running session.
type Event struct {
	Kind       EventKind
	Job        JobID  // job tag of the run (see Session.RunJob); empty for plain Run
	Experiment string // experiment ID
	Title      string
	Trial      int           // trial index; -1 on experiment-level events
	Trials     int           // trial count; 0 when unknown
	Elapsed    time.Duration // monotonic time since the Run call began
	Err        error         // failure cause, on *Done events only
}

// Config parameterizes a Session.
type Config struct {
	// Seed is the root seed; every result is a pure function of
	// (Seed, Scale, Arch). 0 means DefaultSeed.
	Seed uint64
	// Scale selects experiment sizing (zero value: Small).
	Scale Scale
	// Arch names the architecture profile to simulate (see
	// ProfileNames). Empty means the paper's p100-dgx1.
	Arch string
	// Parallel bounds the trial worker pool; 0 means every available
	// core. Results are bit-identical at any value.
	Parallel int
	// Events, when non-nil, receives progress events. Delivery is
	// serialized — the callback is never invoked concurrently — and
	// synchronous, so it should return quickly.
	Events func(Event)
}

// Session is an opened, validated configuration against which
// experiments run. Sessions are safe for concurrent Run calls.
type Session struct {
	cfg     Config
	profile Profile
	mu      sync.Mutex // serializes Events delivery
}

// Open validates the configuration and resolves its architecture
// profile.
func Open(cfg Config) (*Session, error) {
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeed
	}
	if cfg.Parallel < 0 {
		return nil, fmt.Errorf("spybox: Parallel must be >= 0 (got %d)", cfg.Parallel)
	}
	valid := false
	for _, s := range Scales() {
		if cfg.Scale == s {
			valid = true
		}
	}
	if !valid {
		return nil, fmt.Errorf("spybox: invalid scale %d", int(cfg.Scale))
	}
	prof, err := expt.Params{Arch: cfg.Arch}.ArchProfile()
	if err != nil {
		return nil, fmt.Errorf("spybox: %w", err)
	}
	return &Session{cfg: cfg, profile: prof}, nil
}

// Config returns a copy of the session's (defaulted) configuration.
func (s *Session) Config() Config { return s.cfg }

// Profile returns the resolved architecture profile the session
// simulates.
func (s *Session) Profile() Profile { return s.profile }

// NewMachine builds a fresh simulated machine on the session's
// profile and seed, for machine-level scripting below the experiment
// layer (see machine.go for the toolkit that drives it).
func (s *Session) NewMachine() (*Machine, error) {
	prof := s.profile
	return NewMachine(MachineOptions{Seed: s.cfg.Seed, Profile: &prof})
}

// ExperimentInfo describes one registered experiment: its trial
// decomposition and headline metric keys (patterns like
// `total_misses_<app>` expand per the placeholder), so tooling can
// discover experiments without parsing report text.
type ExperimentInfo struct {
	ID              string   `json:"id"`
	Title           string   `json:"title"`
	Trials          string   `json:"trials"`
	HeadlineMetrics []string `json:"headline_metrics"`
}

// Experiments lists every registered experiment, in paper order.
func Experiments() []ExperimentInfo {
	reg := expt.Registry()
	out := make([]ExperimentInfo, len(reg))
	for i, e := range reg {
		out[i] = ExperimentInfo{ID: e.ID, Title: e.Title, Trials: e.Trials, HeadlineMetrics: e.Headline}
	}
	return out
}

// LookupExperiment finds a registered experiment's metadata by ID.
func LookupExperiment(id string) (ExperimentInfo, bool) {
	e, ok := expt.Lookup(id)
	if !ok {
		return ExperimentInfo{}, false
	}
	return ExperimentInfo{ID: e.ID, Title: e.Title, Trials: e.Trials, HeadlineMetrics: e.Headline}, true
}

// InterruptedError reports a run stopped by its context: Results on
// the Run return hold the experiments that completed before the
// interruption. Unwrap exposes the context's error, so
// errors.Is(err, context.Canceled) works.
type InterruptedError struct {
	Completed int   // experiments fully completed
	Total     int   // experiments requested
	Cause     error // the context's error (possibly wrapped by the runner)
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("spybox: run interrupted after %d/%d experiments: %v", e.Completed, e.Total, e.Cause)
}

func (e *InterruptedError) Unwrap() error { return e.Cause }

// emit delivers an event to the configured observer, serialized.
func (s *Session) emit(ev Event) {
	if s.cfg.Events == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg.Events(ev)
}

// resolve maps IDs to registry entries, preserving order and dropping
// duplicates; no IDs means every registered experiment. Every unknown
// ID is reported at once, before any trial starts.
func resolve(ids []string) ([]expt.Experiment, error) {
	if len(ids) == 0 {
		return expt.Registry(), nil
	}
	var out []expt.Experiment
	var unknown []string
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		e, ok := expt.Lookup(id)
		if !ok {
			unknown = append(unknown, id)
			continue
		}
		out = append(out, e)
	}
	if len(unknown) > 0 {
		return nil, unknownIDsError(unknown)
	}
	return out, nil
}

// unknownIDsError names every unknown ID and every valid one, so a
// typo'd batch fails with one actionable message instead of one error
// per rerun.
func unknownIDsError(unknown []string) error {
	sort.Strings(unknown)
	var valid []string
	for _, e := range expt.Registry() {
		valid = append(valid, e.ID)
	}
	noun := "experiment"
	if len(unknown) > 1 {
		noun = "experiments"
	}
	quoted := make([]string, len(unknown))
	for i, id := range unknown {
		quoted[i] = fmt.Sprintf("%q", id)
	}
	return fmt.Errorf("spybox: unknown %s %s (valid: %s)",
		noun, strings.Join(quoted, ", "), strings.Join(valid, ", "))
}

// ExpandIDs validates and normalizes an experiment selection: IDs are
// deduplicated in order, every unknown ID is reported in one error
// (alongside the valid names), and an empty selection expands to every
// registered experiment in paper order. Session.Run and the service
// layer both resolve their selections through this, so validation
// happens before any trial starts.
func ExpandIDs(ids ...string) ([]string, error) {
	todo, err := resolve(ids)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(todo))
	for i, e := range todo {
		out[i] = e.ID
	}
	return out, nil
}

// Run executes the named experiments in order (all of them when no
// IDs are given) and returns their structured results. The context
// cancels the run at the next trial boundary; the completed results
// are still returned, alongside an *InterruptedError. Progress
// streams through Config.Events.
func (s *Session) Run(ctx context.Context, ids ...string) ([]*Result, error) {
	return s.RunJob(ctx, "", ids...)
}

// RunJob is Run with a job tag: every progress event of the run
// carries the tag in Event.Job, and the tag is threaded through the
// trial runner's hooks, so one Events observer can demultiplex
// concurrent runs. The service layer (pkg/spybox/service) drives
// sessions exclusively through this; an empty tag is plain Run. The
// tag never influences results.
func (s *Session) RunJob(ctx context.Context, job JobID, ids ...string) ([]*Result, error) {
	if ctx == nil {
		//spylint:allow ctxflow documented nil-ctx default: a nil ctx means run to completion uncancelled
		ctx = context.Background()
	}
	todo, err := resolve(ids)
	if err != nil {
		return nil, err
	}
	// Wall-clock use is deliberate and confined to progress events:
	// pkg/spybox is the service layer, outside spylint's detrand
	// deterministic-package set. Event.Elapsed feeds human-facing
	// progress (SSE streams, CLI spinners) and never flows into
	// experiment results — those are produced entirely inside the
	// deterministic internal/* packages, where the wall clock is banned.
	start := time.Now()
	var results []*Result
	for _, e := range todo {
		if ctx.Err() != nil {
			return results, &InterruptedError{Completed: len(results), Total: len(todo), Cause: ctx.Err()}
		}
		e := e
		p := expt.Params{
			Seed: s.cfg.Seed, Scale: s.cfg.Scale, Parallel: s.cfg.Parallel, Arch: s.cfg.Arch,
			Ctx: ctx, Job: string(job),
			Hooks: &expt.TrialHooks{
				Start: func(tag string, i, n int) {
					s.emit(Event{Kind: TrialStart, Job: JobID(tag), Experiment: e.ID, Title: e.Title,
						Trial: i, Trials: n, Elapsed: time.Since(start)})
				},
				Done: func(tag string, i, n int, err error) {
					s.emit(Event{Kind: TrialDone, Job: JobID(tag), Experiment: e.ID, Title: e.Title,
						Trial: i, Trials: n, Elapsed: time.Since(start), Err: err})
				},
			},
		}
		s.emit(Event{Kind: ExperimentStart, Job: job, Experiment: e.ID, Title: e.Title,
			Trial: -1, Elapsed: time.Since(start)})
		r, err := e.Run(p)
		s.emit(Event{Kind: ExperimentDone, Job: job, Experiment: e.ID, Title: e.Title,
			Trial: -1, Elapsed: time.Since(start), Err: err})
		if err != nil {
			// Only a genuine cancellation (the runner wraps the
			// context's error) becomes an InterruptedError; a trial
			// that failed on its own merits while the context happened
			// to be cancelled stays a failure — the runner's
			// failure-wins rule, preserved here.
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				return results, &InterruptedError{Completed: len(results), Total: len(todo), Cause: err}
			}
			return results, fmt.Errorf("spybox: %s: %w", e.ID, err)
		}
		results = append(results, r)
	}
	return results, nil
}
