// End-to-end integration tests: the complete attack pipeline at full
// P100 geometry, exercised exactly as the examples and the CLI drive
// it. These complement the per-package unit tests, which mostly use a
// scaled-down cache.
package main

import (
	"bytes"
	"strings"
	"testing"

	"spybox/internal/core"
	"spybox/internal/expt"
	"spybox/internal/sim"
)

// TestEndToEndCovertMessage runs characterization -> discovery ->
// alignment -> transmission on the real DGX-1 geometry and requires
// the paper's headline behaviour: the message arrives.
func TestEndToEndCovertMessage(t *testing.T) {
	m := sim.MustNewMachine(sim.Options{Seed: 424242})
	prof, err := core.CharacterizeTiming(m, 0, 1, 48, 1)
	if err != nil {
		t.Fatal(err)
	}
	trojan, err := core.NewAttacker(m, 0, 0, 176, prof.Thresholds, 2)
	if err != nil {
		t.Fatal(err)
	}
	spy, err := core.NewAttacker(m, 1, 0, 176, prof.Thresholds, 3)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := trojan.DiscoverPageGroups(trojan.Ways())
	if err != nil {
		t.Fatal(err)
	}
	sg, err := spy.DiscoverPageGroups(spy.Ways())
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := core.AlignChannels(trojan, spy,
		trojan.AllEvictionSets(tg, trojan.Ways()),
		spy.AllEvictionSets(sg, spy.Ways()), 2)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := core.NewChannel(trojan, spy, pairs, core.DefaultCovertConfig())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("Hello! How are you?")
	tx, err := ch.Transmit(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got := core.BitsToBytes(tx.ReceivedBits); !bytes.Equal(got, msg) {
		t.Fatalf("message corrupted: %q (%d bit errors)", got, tx.BitErrors)
	}
	// And the reliable (FEC) path on the same channel.
	got, _, _, err := ch.TransmitReliable([]byte("second message, with FEC"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second message, with FEC" {
		t.Fatalf("FEC transmit failed: %q", got)
	}
}

// TestEndToEndDeterminism re-runs a full experiment and demands
// byte-identical reports: the simulator's core guarantee.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() string {
		r, err := expt.Fig10(expt.Params{Seed: 99, Scale: expt.Small})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		r.Print(&sb)
		return sb.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatal("identical seeds produced different experiment reports")
	}
}

// TestEndToEndAllExperimentsSmoke ensures every registered experiment
// at least constructs its report without error. The heavyweight ones
// are exercised individually in internal/expt; this guards the
// registry wiring (run only with -short disabled... it is quick
// except fig12, which is skipped under -short).
func TestEndToEndAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test of all experiments skipped in -short mode")
	}
	for _, e := range expt.Registry() {
		if e.ID == "fig12" && testing.Short() {
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r, err := e.Run(expt.Params{Seed: 7, Scale: expt.Small})
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Records) == 0 {
				t.Error("empty report")
			}
		})
	}
}
