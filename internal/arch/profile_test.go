package arch

import (
	"strings"
	"testing"
)

// TestP100ProfileMatchesConstants pins the compatibility contract: the
// default profile IS the historical constant set, field for field, so
// a machine built from it cannot drift from pre-profile behaviour.
func TestP100ProfileMatchesConstants(t *testing.T) {
	p := P100DGX1()
	if p.NumGPUs != NumGPUs || p.NumSMs != NumSMs ||
		p.SharedMemPerSM != SharedMemPerSM ||
		p.MaxSharedMemPerBlock != MaxSharedMemPerBlock ||
		p.MaxBlocksPerSM != MaxBlocksPerSM {
		t.Errorf("P100 box shape diverged from constants: %+v", p)
	}
	if p.L2Sets != L2Sets || p.L2Ways != L2Ways || p.L2LineSize != CacheLineSize {
		t.Errorf("P100 L2 geometry diverged from constants: %+v", p)
	}
	if p.L2SizeBytes() != L2Size {
		t.Errorf("L2SizeBytes = %d, want %d", p.L2SizeBytes(), L2Size)
	}
	lat := p.Lat
	if lat.L2Hit != LatL2Hit || lat.HBM != LatHBM || lat.NVLinkHop != LatNVLinkHop ||
		lat.RemoteMissExtra != LatRemoteMissExtra || lat.SharedMem != LatSharedMem ||
		lat.ClockRead != LatClockRead || lat.ALUOp != LatALUOp || lat.HeavyOp != LatHeavyOp ||
		lat.HitII != HitII || lat.MissII != MissII {
		t.Errorf("P100 latency model diverged from constants: %+v", lat)
	}
	if lat.JitterSigma != JitterSigma || lat.ContentionSigmaPer != ContentionSigmaPer ||
		lat.ClockHz != ClockHz {
		t.Errorf("P100 noise/clock model diverged from constants: %+v", lat)
	}
	if p.Topology != TopoDGX1 {
		t.Errorf("P100 topology = %v, want cube-mesh", p.Topology)
	}
}

func TestNamedProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.HashRegions() < 1 {
			t.Errorf("%s: no hash regions", p.Name)
		}
		if p.Seconds(Cycles(p.Lat.ClockHz)) != 1.0 {
			t.Errorf("%s: Seconds(ClockHz cycles) != 1s", p.Name)
		}
	}
}

func TestProfileGenerationsDiffer(t *testing.T) {
	v, a := V100DGX2(), A100Class()
	if v.NumGPUs != 16 || v.Topology != TopoAllToAll {
		t.Errorf("v100-dgx2 box shape: %+v", v)
	}
	if v.L2SizeBytes() != 6<<20 {
		t.Errorf("v100-dgx2 L2 = %d, want 6 MB", v.L2SizeBytes())
	}
	if a.L2SizeBytes() <= v.L2SizeBytes() || a.L2Ways <= v.L2Ways {
		t.Errorf("a100-class L2 not larger/wider than v100: %d B x %d ways", a.L2SizeBytes(), a.L2Ways)
	}
	p := P100DGX1()
	if !(p.L2SizeBytes() < v.L2SizeBytes() && v.L2SizeBytes() < a.L2SizeBytes()) {
		t.Error("L2 capacity not monotone across generations")
	}
}

func TestProfileValidateRejects(t *testing.T) {
	bad := func(mutate func(*Profile)) Profile {
		p := P100DGX1()
		mutate(&p)
		return p
	}
	badV100 := func(mutate func(*Profile)) Profile {
		p := V100DGX2()
		mutate(&p)
		return p
	}
	cases := map[string]Profile{
		"zero gpus":       bad(func(p *Profile) { p.NumGPUs = 0 }),
		"too many gpus":   bad(func(p *Profile) { p.NumGPUs = MaxGPUs + 1 }),
		"cube-mesh 16":    bad(func(p *Profile) { p.NumGPUs = 16 }),
		"non-pow2 sets":   bad(func(p *Profile) { p.L2Sets = 3000 }),
		"zero ways":       bad(func(p *Profile) { p.L2Ways = 0 }),
		"huge line":       bad(func(p *Profile) { p.L2LineSize = 2 * PageSize }),
		"no clock":        bad(func(p *Profile) { p.Lat.ClockHz = 0 }),
		"no hbm latency":  bad(func(p *Profile) { p.Lat.HBM = 0 }),
		"no hit latency":  bad(func(p *Profile) { p.Lat.L2Hit = 0 }),
		"shared mem flip": bad(func(p *Profile) { p.SharedMemPerSM = 1 }),
		"fabric on cube-mesh": bad(func(p *Profile) {
			p.Fabric = FabricConfig{Planes: 6, PortSlots: 1, PortService: 8, EgressLat: 100, SwitchLat: 160, IngressLat: 100}
		}),
		"fabric no slots": badV100(func(p *Profile) { p.Fabric.PortSlots = 0 }),
		"fabric no stage": badV100(func(p *Profile) { p.Fabric.SwitchLat = 0 }),
		"fabric free port": badV100(func(p *Profile) {
			p.Fabric.PortService = 0
		}),
		"fabric sum mismatch": badV100(func(p *Profile) { p.Fabric.SwitchLat += 10 }),
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: invalid profile accepted", name)
		}
	}
	var zero Profile
	if err := zero.Validate(); err == nil {
		t.Error("zero profile accepted")
	}
}

func TestLookupProfile(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := LookupProfile(name)
		if err != nil || p.Name != name {
			t.Errorf("LookupProfile(%q) = %v, %v", name, p.Name, err)
		}
	}
	if _, err := LookupProfile("h100-nvl"); err == nil {
		t.Error("unknown profile accepted")
	} else if !strings.Contains(err.Error(), "p100-dgx1") {
		t.Errorf("lookup error should list known profiles, got: %v", err)
	}
}
