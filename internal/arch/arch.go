// Package arch defines the shared architectural vocabulary for the
// simulated DGX-1 multi-GPU machine: address and cycle types, device
// identifiers, and the calibrated latency model used throughout the
// simulator.
//
// Every other package speaks in these types; arch itself depends on
// nothing, so it can be imported from anywhere without cycles.
package arch

import "fmt"

// Cycles counts GPU clock cycles. All simulated time is expressed in
// cycles of the (boost) SM clock.
type Cycles uint64

// PA is a physical address in the machine-wide physical address space.
// The top bits select the home GPU (the device whose HBM holds the
// frame); see SplitPA.
type PA uint64

// VA is a virtual address inside one process's address space.
type VA uint64

// DeviceID identifies one GPU in the box (0..NumGPUs-1).
type DeviceID int

// KernelID identifies a launched kernel within a machine run.
type KernelID int

// ProcessID identifies a process (a CUDA context owner).
type ProcessID int

// P100 / DGX-1 geometry, as reverse engineered by the paper (Table I)
// and the DGX-1 white paper. These constants are the values of the
// default p100-dgx1 profile (profile.go); machine-dependent code
// should read geometry from its Profile (or the constructed cache
// config) rather than from these.
const (
	// NumGPUs is the number of Tesla P100s in a DGX-1.
	NumGPUs = 8
	// NumSMs is the number of streaming multiprocessors per P100.
	NumSMs = 56
	// WarpSize is the number of lanes per warp.
	WarpSize = 32
	// SharedMemPerSM is the shared memory capacity per SM in bytes.
	SharedMemPerSM = 64 << 10
	// MaxSharedMemPerBlock is the per-thread-block shared memory cap
	// on Pascal (half the SM's capacity), which Sec. VI exploits for
	// occupancy blocking.
	MaxSharedMemPerBlock = 32 << 10
	// MaxBlocksPerSM is the per-SM resident thread block limit.
	MaxBlocksPerSM = 32

	// CacheLineSize is the L2 line size in bytes.
	CacheLineSize = 128
	// L2Sets is the number of L2 cache sets (Table I).
	L2Sets = 2048
	// L2Ways is the L2 associativity (Table I).
	L2Ways = 16
	// L2Size is the total L2 capacity: 2048 sets x 16 ways x 128 B = 4 MB.
	L2Size = L2Sets * L2Ways * CacheLineSize

	// PageSize is the GPU virtual memory page size (64 KB). One page
	// spans PageSize/CacheLineSize = 512 consecutive cache lines, and
	// therefore covers 512 consecutive cache sets: addresses within a
	// page index consecutively, which the paper's discovery
	// optimization relies on.
	PageSize = 64 << 10
	// LinesPerPage is the number of cache lines per page.
	LinesPerPage = PageSize / CacheLineSize

	// HBMBytesPerGPU is the simulated per-GPU HBM2 capacity. The real
	// P100 has 16 GB; the simulator models a 1 GB window per GPU,
	// which is far larger than any buffer the attacks use and keeps
	// frame bookkeeping cheap.
	HBMBytesPerGPU = 1 << 30

	// ClockHz is the P100 boost clock used to convert cycles to
	// seconds when reporting bandwidth.
	ClockHz = 1_480_000_000
)

// Latency model (cycles), calibrated against the paper's Fig. 4
// clusters and Fig. 10 signal levels; the fig4 and fig10 experiments
// (see EXPERIMENTS.md) reproduce both calibrations end to end.
const (
	// LatL2Hit is the cost of an L2 hit observed from the home GPU.
	LatL2Hit Cycles = 268
	// LatHBM is the additional cost of an L2 miss serviced by HBM.
	LatHBM Cycles = 172
	// LatNVLinkHop is the round-trip cost added per NVLink hop.
	LatNVLinkHop Cycles = 362
	// LatRemoteMissExtra is the extra serialization charged when a
	// remote access also misses in the home L2 (the returning fill
	// and the reply share the link).
	LatRemoteMissExtra Cycles = 148
	// LatSharedMem is the cost of a shared-memory access. Shared
	// memory is per-SM scratchpad and never touches L2, which is why
	// the attacks buffer timing samples there.
	LatSharedMem Cycles = 28
	// LatClockRead is the overhead of reading the cycle counter.
	LatClockRead Cycles = 4
	// LatALUOp is the cost charged for one dummy arithmetic op.
	LatALUOp Cycles = 2
	// LatHeavyOp is the cost of one "computationally heavy dummy
	// instruction" (the trigonometric busy-wait the trojan uses while
	// transmitting a '0').
	LatHeavyOp Cycles = 48

	// HitII is the initiation interval between warp-parallel L2 hits:
	// a warp probing n lines overlaps their latencies, paying the max
	// plus (n-1) issue slots.
	HitII Cycles = 10
	// MissII is the extra per-miss serialization within one
	// warp-parallel probe (HBM/port conflicts don't fully overlap).
	MissII Cycles = 36
)

// Derived nominal latencies for the four access classes (before
// jitter). These are what the reverse-engineering step rediscovers.
const (
	NomLocalHit   = LatL2Hit                                              // 268
	NomLocalMiss  = LatL2Hit + LatHBM                                     // 440
	NomRemoteHit  = LatL2Hit + LatNVLinkHop                               // 630
	NomRemoteMiss = LatL2Hit + LatNVLinkHop + LatHBM + LatRemoteMissExtra // 950
)

// Noise model defaults.
const (
	// JitterSigma is the baseline timing jitter standard deviation.
	JitterSigma = 6.0
	// ContentionSigmaPer is added to the jitter sigma per additional
	// concurrently active context on the same L2. This term is what
	// degrades the covert channel as more sets/blocks run in parallel
	// (Fig. 9) and under background noise (Sec. VI).
	ContentionSigmaPer = 14.0
)

// DeviceBits is the number of PA bits reserved for the device ID,
// sized for MaxGPUs (profiles range from the 8-GPU DGX-1 to 16-GPU
// NVSwitch boxes, with headroom).
const DeviceBits = 6

// deviceShift positions the device ID above the per-GPU offset space.
const deviceShift = 30 // log2(HBMBytesPerGPU)

// MakePA assembles a physical address from a device and a byte offset
// within that device's HBM.
func MakePA(dev DeviceID, off uint64) PA {
	if off >= HBMBytesPerGPU {
		panic(fmt.Sprintf("arch: HBM offset %#x out of range", off))
	}
	return PA(uint64(dev)<<deviceShift | off)
}

// SplitPA decomposes a physical address into its home device and the
// byte offset within that device's HBM.
func (pa PA) SplitPA() (DeviceID, uint64) {
	return DeviceID(uint64(pa) >> deviceShift), uint64(pa) & (HBMBytesPerGPU - 1)
}

// HomeDevice returns the GPU whose HBM holds this physical address.
// Per the paper's reverse engineering, this is also the GPU whose L2
// caches the line, regardless of which GPU issues the access.
func (pa PA) HomeDevice() DeviceID {
	d, _ := pa.SplitPA()
	return d
}

// LineAddr returns the address with the line-offset bits cleared.
func (pa PA) LineAddr() PA { return pa &^ (CacheLineSize - 1) }

// LineAddr returns the virtual address with line-offset bits cleared.
func (va VA) LineAddr() VA { return va &^ (CacheLineSize - 1) }

// PageNumber returns the virtual page number of the address.
func (va VA) PageNumber() uint64 { return uint64(va) / PageSize }

// PageOffset returns the byte offset within the page.
func (va VA) PageOffset() uint64 { return uint64(va) % PageSize }

// FrameNumber returns the physical frame number (machine-wide).
func (pa PA) FrameNumber() uint64 { return uint64(pa) / PageSize }

// Seconds converts a cycle count to wall-clock seconds at the P100
// boost clock. Profile-aware code should use Profile.Seconds, which
// applies the profile's own clock.
func (c Cycles) Seconds() float64 { return float64(c) / ClockHz }

// String renders cycles with a unit suffix for logs.
func (c Cycles) String() string { return fmt.Sprintf("%dcy", uint64(c)) }

// String renders a device ID like "GPU3".
func (d DeviceID) String() string { return fmt.Sprintf("GPU%d", int(d)) }

// Valid reports whether the device ID can name a GPU in any supported
// box (it fits the PA encoding). Whether the device actually exists
// depends on the machine's profile; per-machine code checks against
// the real GPU count.
func (d DeviceID) Valid() bool { return d >= 0 && int(d) < MaxGPUs }
