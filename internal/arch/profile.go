// Architecture profiles: the knobs that distinguish one multi-GPU box
// from another. The paper reverse engineers one machine (the Pascal
// DGX-1, Table I); a Profile bundles everything that was previously a
// package-level constant — L2 geometry, the calibrated latency model,
// SM resources, GPU count, and the NVLink topology family — so the
// same attacks can be swept across machine generations (the archsweep
// experiment). P100DGX1() reproduces the historical constants exactly;
// a machine built from it is byte-identical to the pre-profile code.
package arch

import "fmt"

// TopologyKind names an NVLink fabric family. The concrete link graph
// is built by internal/nvlink from (kind, GPU count).
type TopologyKind int

const (
	// TopoDGX1 is the Pascal DGX-1 hybrid cube-mesh: two fully
	// connected quads joined by four cube edges. Requires 8 GPUs.
	TopoDGX1 TopologyKind = iota
	// TopoAllToAll is an NVSwitch-style crossbar (DGX-2, DGX A100):
	// every GPU reaches every other in one hop, so peer access never
	// fails and the "unconnected pair" error class disappears.
	TopoAllToAll
)

// String names the topology family for reports.
func (k TopologyKind) String() string {
	switch k {
	case TopoDGX1:
		return "cube-mesh"
	case TopoAllToAll:
		return "all-to-all"
	default:
		return fmt.Sprintf("topology(%d)", int(k))
	}
}

// LatencyModel is the per-profile calibrated timing model. The
// P100 values reproduce the paper's Fig. 4 clusters; other profiles
// shift the cluster centers, which the attacks must (and do) re-learn
// through CharacterizeTiming rather than assume.
type LatencyModel struct {
	L2Hit           Cycles // L2 hit observed from the home GPU
	HBM             Cycles // additional cost of a miss serviced by DRAM
	NVLinkHop       Cycles // round-trip cost per NVLink hop
	RemoteMissExtra Cycles // extra serialization for remote misses
	SharedMem       Cycles // shared-memory access
	ClockRead       Cycles // cycle-counter read overhead
	ALUOp           Cycles // one dummy arithmetic op
	HeavyOp         Cycles // one heavy (trigonometric) dummy op
	HitII           Cycles // issue interval between warp-parallel hits
	MissII          Cycles // extra per-miss serialization in a probe

	JitterSigma        float64 // baseline timing jitter stddev
	ContentionSigmaPer float64 // added sigma per concurrent context

	ClockHz uint64 // boost clock, for cycles -> seconds
}

// FabricConfig describes an NVSwitch-style two-stage fabric: a remote
// transaction leaves through the source GPU's egress port, crosses one
// of Planes switch planes, and arrives through the destination GPU's
// ingress port. The zero config (Planes == 0) means point-to-point
// NVLink with a single flat hop charge — the Pascal DGX-1 path, which
// must stay byte-identical to the pre-fabric simulator.
//
// Each ordered GPU pair is pinned to plane (src+dst) mod Planes, the
// way an address-interleaved NVSwitch stripes a fixed route per pair.
// Pinning is what lets the Sec. VII detector localize a covert stream
// to the plane it rides (see internal/expt's sec7 and fabricsweep).
type FabricConfig struct {
	// Planes is the number of physical switch planes (six NVSwitches
	// in a DGX-2 half-shelf).
	Planes int
	// PortSlots is how many transactions one GPU-side port services
	// concurrently; a burst beyond that waits for the earliest free
	// slot (FIFO backpressure, surfaced as latency).
	PortSlots int
	// PortService is the per-transaction occupancy of one port slot —
	// the serialization that makes co-scheduled streams on a shared
	// port contend.
	PortService Cycles
	// EgressLat, SwitchLat and IngressLat split the uncontended
	// traversal: GPU egress port -> switch plane -> ingress GPU port.
	// The named profiles keep their sum equal to Lat.NVLinkHop so the
	// two-stage path moves no timing cluster, only adds contention.
	EgressLat, SwitchLat, IngressLat Cycles
}

// Enabled reports whether the profile models a switch-plane fabric.
func (f FabricConfig) Enabled() bool { return f.Planes > 0 }

// PlaneFor is the single authoritative pinning rule: the switch plane
// the ordered pair (src, dst) rides, or -1 without a fabric. Symmetric
// in src and dst, so request and reply share a plane.
func (f FabricConfig) PlaneFor(src, dst DeviceID) int {
	if !f.Enabled() {
		return -1
	}
	return (int(src) + int(dst)) % f.Planes
}

// TraversalLat returns the uncontended two-stage traversal cost.
func (f FabricConfig) TraversalLat() Cycles { return f.EgressLat + f.SwitchLat + f.IngressLat }

// Profile is one machine configuration: a named GPU box the simulator
// can build. The zero Profile is invalid; start from a named profile
// and override fields as needed.
type Profile struct {
	Name string

	// Box shape.
	NumGPUs  int
	Topology TopologyKind

	// Per-GPU SM resources (the Sec. VI occupancy model).
	NumSMs               int
	SharedMemPerSM       int
	MaxSharedMemPerBlock int
	MaxBlocksPerSM       int

	// L2 geometry (the Table I attack surface). The VM page size and
	// per-GPU HBM window stay global (PageSize, HBMBytesPerGPU): all
	// modelled generations use 64 KB GPU pages, and the HBM window is
	// a simulator bound, not a hardware parameter.
	L2Sets     int
	L2Ways     int
	L2LineSize int

	// Fabric models the NVSwitch two-stage path with per-port
	// contention; the zero value keeps flat point-to-point hops.
	Fabric FabricConfig

	Lat LatencyModel
}

// MaxGPUs bounds the device IDs any profile may use; it exists so the
// PA encoding (DeviceBits above the 1 GB per-GPU offset window) has
// headroom for every box we model, not to describe any real machine.
// Tying it to DeviceBits keeps the two from drifting apart.
const MaxGPUs = 1 << DeviceBits

// L2SizeBytes returns the L2 capacity implied by the geometry.
func (p Profile) L2SizeBytes() int { return p.L2Sets * p.L2Ways * p.L2LineSize }

// L2LinesPerPage returns how many L2 lines one VM page spans.
func (p Profile) L2LinesPerPage() int { return PageSize / p.L2LineSize }

// HashRegions returns how many page-sized index regions the L2 holds —
// the number of conflict groups eviction-set discovery must find.
func (p Profile) HashRegions() int {
	r := p.L2Sets / p.L2LinesPerPage()
	if r < 1 {
		r = 1
	}
	return r
}

// Seconds converts a cycle count to wall-clock seconds at this
// profile's boost clock.
func (p Profile) Seconds(c Cycles) float64 { return float64(c) / float64(p.Lat.ClockHz) }

// Validate reports a descriptive error for malformed profiles.
func (p Profile) Validate() error {
	pow2 := func(n int) bool { return n > 0 && n&(n-1) == 0 }
	switch {
	case p.NumGPUs < 1 || p.NumGPUs > MaxGPUs:
		return fmt.Errorf("arch: profile %q: NumGPUs %d outside [1,%d]", p.Name, p.NumGPUs, MaxGPUs)
	case p.Topology == TopoDGX1 && p.NumGPUs != 8:
		return fmt.Errorf("arch: profile %q: the DGX-1 cube-mesh needs exactly 8 GPUs, got %d", p.Name, p.NumGPUs)
	case p.NumSMs < 1:
		return fmt.Errorf("arch: profile %q: NumSMs must be positive, got %d", p.Name, p.NumSMs)
	case p.SharedMemPerSM < p.MaxSharedMemPerBlock || p.MaxSharedMemPerBlock < 1:
		return fmt.Errorf("arch: profile %q: shared memory %d/%d (per SM / max per block) inconsistent",
			p.Name, p.SharedMemPerSM, p.MaxSharedMemPerBlock)
	case p.MaxBlocksPerSM < 1:
		return fmt.Errorf("arch: profile %q: MaxBlocksPerSM must be positive, got %d", p.Name, p.MaxBlocksPerSM)
	case !pow2(p.L2Sets):
		return fmt.Errorf("arch: profile %q: L2Sets must be a power of two, got %d", p.Name, p.L2Sets)
	case p.L2Ways < 1:
		return fmt.Errorf("arch: profile %q: L2Ways must be positive, got %d", p.Name, p.L2Ways)
	case !pow2(p.L2LineSize) || p.L2LineSize > PageSize:
		return fmt.Errorf("arch: profile %q: L2LineSize must be a power of two <= the page size, got %d", p.Name, p.L2LineSize)
	case p.Lat.L2Hit == 0 || p.Lat.HBM == 0 || p.Lat.NVLinkHop == 0:
		// A zero latency would silently degenerate the hit/miss
		// thresholds every attack phase classifies against.
		return fmt.Errorf("arch: profile %q: latency model incomplete (L2Hit %d, HBM %d, NVLinkHop %d; all must be positive)",
			p.Name, uint64(p.Lat.L2Hit), uint64(p.Lat.HBM), uint64(p.Lat.NVLinkHop))
	case p.Lat.ClockHz == 0:
		return fmt.Errorf("arch: profile %q: ClockHz must be set", p.Name)
	case p.Fabric.Enabled() && p.Topology != TopoAllToAll:
		// Switch planes only make sense behind a crossbar; the DGX-1
		// cube-mesh is direct GPU-to-GPU links.
		return fmt.Errorf("arch: profile %q: a switch-plane fabric requires an all-to-all topology, got %v",
			p.Name, p.Topology)
	case p.Fabric.Enabled() && p.Fabric.PortSlots < 1:
		return fmt.Errorf("arch: profile %q: fabric PortSlots must be positive, got %d", p.Name, p.Fabric.PortSlots)
	case p.Fabric.Enabled() && (p.Fabric.EgressLat == 0 || p.Fabric.SwitchLat == 0 || p.Fabric.IngressLat == 0):
		return fmt.Errorf("arch: profile %q: fabric stage latencies incomplete (egress %d, switch %d, ingress %d; all must be positive)",
			p.Name, uint64(p.Fabric.EgressLat), uint64(p.Fabric.SwitchLat), uint64(p.Fabric.IngressLat))
	case p.Fabric.Enabled() && p.Fabric.PortService == 0:
		// Zero service time would make ports infinitely fast and the
		// contention model a silent no-op.
		return fmt.Errorf("arch: profile %q: fabric PortService must be positive", p.Name)
	case p.Fabric.Enabled() && p.Fabric.TraversalLat() != p.Lat.NVLinkHop:
		// The timing model derives remote classes from NVLinkHop; a
		// two-stage sum that disagrees would silently shift every
		// remote access away from the calibrated clusters.
		return fmt.Errorf("arch: profile %q: fabric stages sum to %d cycles but Lat.NVLinkHop is %d; they must match",
			p.Name, uint64(p.Fabric.TraversalLat()), uint64(p.Lat.NVLinkHop))
	}
	return nil
}

// String summarizes the profile for reports.
func (p Profile) String() string {
	topo := p.Topology.String()
	if p.Fabric.Enabled() {
		topo = fmt.Sprintf("%s, %d switch planes", topo, p.Fabric.Planes)
	}
	return fmt.Sprintf("%s: %d GPUs (%s), %d SMs/GPU, L2 %d sets x %d ways x %d B = %d KB, %.2f GHz",
		p.Name, p.NumGPUs, topo, p.NumSMs, p.L2Sets, p.L2Ways, p.L2LineSize,
		p.L2SizeBytes()>>10, float64(p.Lat.ClockHz)/1e9)
}

// p100Latency is the paper-calibrated model; every value equals the
// historical package constant, which is what keeps the default profile
// byte-identical to the pre-profile simulator.
func p100Latency() LatencyModel {
	return LatencyModel{
		L2Hit:           LatL2Hit,
		HBM:             LatHBM,
		NVLinkHop:       LatNVLinkHop,
		RemoteMissExtra: LatRemoteMissExtra,
		SharedMem:       LatSharedMem,
		ClockRead:       LatClockRead,
		ALUOp:           LatALUOp,
		HeavyOp:         LatHeavyOp,
		HitII:           HitII,
		MissII:          MissII,

		JitterSigma:        JitterSigma,
		ContentionSigmaPer: ContentionSigmaPer,

		ClockHz: ClockHz,
	}
}

// P100DGX1 is the paper's machine: eight Tesla P100s in the DGX-1
// hybrid cube-mesh, with the Table I cache geometry and the Fig. 4
// latency calibration. This is the default everywhere a profile is
// not given.
func P100DGX1() Profile {
	return Profile{
		Name:     "p100-dgx1",
		NumGPUs:  NumGPUs,
		Topology: TopoDGX1,

		NumSMs:               NumSMs,
		SharedMemPerSM:       SharedMemPerSM,
		MaxSharedMemPerBlock: MaxSharedMemPerBlock,
		MaxBlocksPerSM:       MaxBlocksPerSM,

		L2Sets:     L2Sets,
		L2Ways:     L2Ways,
		L2LineSize: CacheLineSize,

		Lat: p100Latency(),
	}
}

// V100DGX2 is a Volta DGX-2-class box: sixteen V100s behind NVSwitch
// (every pair one hop apart), a 6 MB 24-way L2, and a slightly faster
// clock. The NVSwitch traversal costs more than a direct Pascal link
// (request and reply each cross the switch fabric).
func V100DGX2() Profile {
	p := P100DGX1()
	p.Name = "v100-dgx2"
	p.NumGPUs = 16
	p.Topology = TopoAllToAll
	p.NumSMs = 80
	p.SharedMemPerSM = 96 << 10
	p.MaxSharedMemPerBlock = 96 << 10
	p.L2Sets = 2048
	p.L2Ways = 24 // 2048 x 24 x 128 B = 6 MB
	p.Lat.L2Hit = 232
	p.Lat.HBM = 160
	p.Lat.NVLinkHop = 430
	p.Lat.ClockHz = 1_530_000_000
	// The DGX-2 NVSwitch fabric: each V100 drives one NVLink2 port
	// into each of the six switch planes. The stage split sums to the
	// 430-cycle NVLinkHop, so an uncontended traversal is unchanged;
	// only co-scheduled streams sharing a port pay queueing.
	// PortService stays at or below Lat.HitII so a port drains at
	// least as fast as one warp can issue: a solo worker never queues
	// behind its own bursts, and only genuinely concurrent streams
	// contend.
	p.Fabric = FabricConfig{
		Planes:      6,
		PortSlots:   1,
		PortService: 8,
		EgressLat:   120,
		SwitchLat:   190,
		IngressLat:  120,
	}
	return p
}

// A100Class is an Ampere-generation 8-GPU box (DGX A100-shaped):
// all-to-all NVSwitch fabric, more SMs, and a larger, wider L2 (2048
// sets x 32 ways = 8 MB — scaled down from the real 40 MB the same
// way the HBM window is, but preserving the doubled associativity the
// eviction-set search must rediscover: every eviction set needs 32
// conflicting lines here, twice the P100's).
func A100Class() Profile {
	p := P100DGX1()
	p.Name = "a100-class"
	p.NumGPUs = 8
	p.Topology = TopoAllToAll
	p.NumSMs = 108
	p.SharedMemPerSM = 164 << 10
	p.MaxSharedMemPerBlock = 160 << 10
	p.L2Sets = 2048
	p.L2Ways = 32 // 2048 x 32 x 128 B = 8 MB
	p.Lat.L2Hit = 200
	p.Lat.HBM = 140
	p.Lat.NVLinkHop = 300
	p.Lat.ClockHz = 1_410_000_000
	// DGX A100 shape: six switch planes, but NVLink3 pairs two links
	// per GPU per plane (two service slots) and moves lines faster.
	// Stages again sum to the profile's NVLinkHop, and PortService
	// stays below Lat.HitII (see V100DGX2).
	p.Fabric = FabricConfig{
		Planes:      6,
		PortSlots:   2,
		PortService: 6,
		EgressLat:   85,
		SwitchLat:   130,
		IngressLat:  85,
	}
	return p
}

// Profiles returns every named profile, in generation order.
func Profiles() []Profile {
	return []Profile{P100DGX1(), V100DGX2(), A100Class()}
}

// ProfileNames returns the names of all named profiles.
func ProfileNames() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// LookupProfile resolves a profile by name.
func LookupProfile(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("arch: unknown profile %q (have %v)", name, ProfileNames())
}
