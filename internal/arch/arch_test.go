package arch

import (
	"testing"
	"testing/quick"
)

func TestMakeSplitPARoundTrip(t *testing.T) {
	f := func(devRaw uint8, offRaw uint32) bool {
		dev := DeviceID(devRaw % NumGPUs)
		off := uint64(offRaw) % HBMBytesPerGPU
		pa := MakePA(dev, off)
		d, o := pa.SplitPA()
		return d == dev && o == off && pa.HomeDevice() == dev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMakePAOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MakePA with oversized offset did not panic")
		}
	}()
	MakePA(0, HBMBytesPerGPU)
}

func TestDistinctDevicesDistinctPAs(t *testing.T) {
	seen := map[PA]bool{}
	for d := DeviceID(0); d < NumGPUs; d++ {
		pa := MakePA(d, 0x1234)
		if seen[pa] {
			t.Fatalf("PA collision for %v", d)
		}
		seen[pa] = true
	}
}

func TestLineAddr(t *testing.T) {
	pa := PA(0x1234)
	if got := pa.LineAddr(); got != 0x1200 {
		t.Errorf("PA LineAddr = %#x", uint64(got))
	}
	va := VA(0x12ff)
	if got := va.LineAddr(); got != 0x1280 {
		t.Errorf("VA LineAddr = %#x", uint64(got))
	}
}

func TestPageArithmetic(t *testing.T) {
	va := VA(3*PageSize + 100)
	if va.PageNumber() != 3 || va.PageOffset() != 100 {
		t.Errorf("page number/offset = %d/%d", va.PageNumber(), va.PageOffset())
	}
	pa := MakePA(1, 2*PageSize)
	if pa.FrameNumber() != uint64(pa)/PageSize {
		t.Error("FrameNumber inconsistent")
	}
}

func TestGeometryConstantsConsistent(t *testing.T) {
	if L2Size != 4<<20 {
		t.Errorf("L2Size = %d, want 4MB (Table I)", L2Size)
	}
	if LinesPerPage != 512 {
		t.Errorf("LinesPerPage = %d", LinesPerPage)
	}
	if NomLocalHit != 268 || NomLocalMiss != 440 || NomRemoteHit != 630 || NomRemoteMiss != 950 {
		t.Errorf("nominal latencies = %d/%d/%d/%d, want 268/440/630/950 (Fig. 4, Fig. 10)",
			NomLocalHit, NomLocalMiss, NomRemoteHit, NomRemoteMiss)
	}
}

func TestSeconds(t *testing.T) {
	if got := Cycles(ClockHz).Seconds(); got != 1.0 {
		t.Errorf("1s of cycles = %v s", got)
	}
}

func TestStringers(t *testing.T) {
	if DeviceID(3).String() != "GPU3" {
		t.Error("DeviceID stringer")
	}
	if Cycles(42).String() != "42cy" {
		t.Error("Cycles stringer")
	}
}

func TestDeviceValid(t *testing.T) {
	// Valid bounds the PA encoding (MaxGPUs), not any one box: device
	// 8 is invalid on the 8-GPU DGX-1 but real on a 16-GPU DGX-2, so
	// per-box existence is checked against the machine's profile.
	if !DeviceID(0).Valid() || !DeviceID(7).Valid() || !DeviceID(15).Valid() {
		t.Error("valid devices rejected")
	}
	if DeviceID(-1).Valid() || DeviceID(MaxGPUs).Valid() {
		t.Error("invalid devices accepted")
	}
}
