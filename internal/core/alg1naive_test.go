package core

import (
	"testing"
)

func TestFindEvictionSetNaive(t *testing.T) {
	m := tinyMachine(71)
	a, err := NewAttacker(m, 0, 0, 20, DefaultThresholds(), 71)
	if err != nil {
		t.Fatal(err)
	}
	target := a.LineVA(0, 0)
	targetSet := trueSet(t, a, target)
	candidates := make([]uint64, 0, a.Pages-1)
	wantConflict := map[uint64]bool{}
	for p := 1; p < a.Pages; p++ {
		off := uint64(p * a.ChunkSize)
		candidates = append(candidates, off)
		if trueSet(t, a, a.LineVA(p, 0)) == targetSet {
			wantConflict[off] = true
		}
	}
	if len(wantConflict) < 5 {
		t.Skipf("only %d true conflicters", len(wantConflict))
	}
	found, err := a.FindEvictionSetNaive(target, candidates)
	if err != nil {
		t.Fatal(err)
	}
	// Every found offset must be a true conflicter.
	for _, off := range found {
		if !wantConflict[off] {
			t.Errorf("offset %#x wrongly reported as conflicting", off)
		}
	}
	// Remove-and-repeat stops once fewer than `ways` conflicters
	// remain in the chase, so it finds all but ways-1 of them.
	if want := len(wantConflict) - 3; len(found) < want {
		t.Errorf("found %d conflicters, want at least %d of %d", len(found), want, len(wantConflict))
	}
}

func TestFindEvictionSetNaiveNoConflict(t *testing.T) {
	m := tinyMachine(72)
	a, err := NewAttacker(m, 0, 0, 20, DefaultThresholds(), 72)
	if err != nil {
		t.Fatal(err)
	}
	target := a.LineVA(0, 0)
	targetSet := trueSet(t, a, target)
	// Candidates from the other region only: no conflicters exist.
	var candidates []uint64
	for p := 1; p < a.Pages; p++ {
		if trueSet(t, a, a.LineVA(p, 0)) != targetSet {
			candidates = append(candidates, uint64(p*a.ChunkSize))
		}
	}
	if _, err := a.FindEvictionSetNaive(target, candidates); err == nil {
		t.Error("no-conflict candidate set should fail")
	}
	if _, err := a.FindEvictionSetNaive(target, nil); err == nil {
		t.Error("empty candidates should fail")
	}
}

func TestVerifyEvictionSet(t *testing.T) {
	m := tinyMachine(73)
	a, err := NewAttacker(m, 0, 0, 24, DefaultThresholds(), 73)
	if err != nil {
		t.Fatal(err)
	}
	target := a.LineVA(0, 0)
	targetSet := trueSet(t, a, target)
	var conflicters, mixed []uint64
	for p := 1; p < a.Pages; p++ {
		off := uint64(p * a.ChunkSize)
		if trueSet(t, a, a.LineVA(p, 0)) == targetSet {
			conflicters = append(conflicters, off)
		} else if len(mixed) < 2 {
			mixed = append(mixed, off)
		}
	}
	if len(conflicters) < 4 {
		t.Skipf("only %d conflicters", len(conflicters))
	}
	ok, err := a.VerifyEvictionSet(target, conflicters, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("true eviction set failed verification")
	}
	// Diluted set (2 real + 2 wrong): 4 chased lines contain only 2
	// conflicters -> target survives -> verification fails.
	diluted := append(append([]uint64(nil), conflicters[:2]...), mixed...)
	ok, err = a.VerifyEvictionSet(target, diluted, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("diluted set passed verification")
	}
	if _, err := a.VerifyEvictionSet(target, conflicters[:2], 4); err == nil {
		t.Error("undersized set should error")
	}
}
