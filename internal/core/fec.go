// Forward error correction for the covert channel. The paper reports
// a 1.3% raw bit error rate and leaves reliability to repetition; a
// real deployment would layer coding on top, so the channel here
// optionally transports Hamming(7,4)-encoded payloads: every
// single-bit error per 7-bit codeword is corrected, turning the raw
// channel into a near-lossless one at 4/7 of the bandwidth.
package core

// hammingG maps a 4-bit nibble to its 7-bit codeword: bits are
// [d1 d2 d3 d4 p1 p2 p3] with the standard Hamming(7,4) parities.
func hammingEncodeNibble(n byte) byte {
	d1 := n >> 3 & 1
	d2 := n >> 2 & 1
	d3 := n >> 1 & 1
	d4 := n & 1
	p1 := d1 ^ d2 ^ d4
	p2 := d1 ^ d3 ^ d4
	p3 := d2 ^ d3 ^ d4
	// Codeword layout (bit 6 .. bit 0): p1 p2 d1 p3 d2 d3 d4.
	return p1<<6 | p2<<5 | d1<<4 | p3<<3 | d2<<2 | d3<<1 | d4
}

// hammingDecodeNibble corrects up to one flipped bit and returns the
// nibble plus whether a correction happened.
func hammingDecodeNibble(cw byte) (nibble byte, corrected bool) {
	bit := func(i uint) byte { return cw >> (7 - i) & 1 } // 1-based position
	s1 := bit(1) ^ bit(3) ^ bit(5) ^ bit(7)
	s2 := bit(2) ^ bit(3) ^ bit(6) ^ bit(7)
	s3 := bit(4) ^ bit(5) ^ bit(6) ^ bit(7)
	syndrome := s3<<2 | s2<<1 | s1
	if syndrome != 0 {
		cw ^= 1 << (7 - syndrome)
		corrected = true
	}
	d1 := cw >> 4 & 1
	d2 := cw >> 2 & 1
	d3 := cw >> 1 & 1
	d4 := cw & 1
	return d1<<3 | d2<<2 | d3<<1 | d4, corrected
}

// HammingEncode expands a message into its Hamming(7,4) bit stream
// (14 bits per input byte), MSB-first nibbles.
func HammingEncode(msg []byte) []byte {
	bits := make([]byte, 0, len(msg)*14)
	emit := func(cw byte) {
		for i := 6; i >= 0; i-- {
			bits = append(bits, cw>>uint(i)&1)
		}
	}
	for _, b := range msg {
		emit(hammingEncodeNibble(b >> 4))
		emit(hammingEncodeNibble(b & 0xf))
	}
	return bits
}

// HammingDecode inverts HammingEncode, correcting single-bit errors
// per codeword. It returns the message and the number of codewords
// that needed correction; trailing partial codewords are dropped.
func HammingDecode(bits []byte) (msg []byte, corrected int) {
	var nibbles []byte
	for i := 0; i+7 <= len(bits); i += 7 {
		var cw byte
		for j := 0; j < 7; j++ {
			cw = cw<<1 | bits[i+j]&1
		}
		n, c := hammingDecodeNibble(cw)
		if c {
			corrected++
		}
		nibbles = append(nibbles, n)
	}
	for i := 0; i+2 <= len(nibbles); i += 2 {
		msg = append(msg, nibbles[i]<<4|nibbles[i+1])
	}
	return msg, corrected
}

// TransmitReliable sends msg with Hamming(7,4) FEC over the channel
// and decodes with correction. It returns the recovered message, the
// number of corrected codewords, and the underlying raw transmission
// (for bandwidth/error accounting).
func (c *Channel) TransmitReliable(msg []byte) (recovered []byte, corrected int, raw *Transmission, err error) {
	return c.TransmitReliableWith(msg, nil)
}

// TransmitReliableWith is TransmitReliable with TransmitWith's
// beforeRun hook, so concurrent workloads (defense samplers, benign
// noise) can key their termination off the FEC-coded transfer exactly
// as they do off a raw one.
func (c *Channel) TransmitReliableWith(msg []byte, beforeRun func(stop *bool) error) (recovered []byte, corrected int, raw *Transmission, err error) {
	bits := HammingEncode(msg)
	packed := BitsToBytes(padBits(bits))
	raw, err = c.TransmitWith(packed, beforeRun)
	if err != nil {
		return nil, 0, nil, err
	}
	recovered, corrected = HammingDecode(raw.ReceivedBits[:len(bits)])
	return recovered, corrected, raw, nil
}

// padBits extends a bit string to a whole number of bytes so it can
// ride the byte-oriented Transmit.
func padBits(bits []byte) []byte {
	for len(bits)%8 != 0 {
		bits = append(bits, 0)
	}
	return bits
}
