// Multi-GPU covert channel: the scaling direction the paper names but
// does not explore ("Using additional parallelism (e.g., involving
// additional GPUs) can further improve bandwidth"). Several spy
// processes on different GPUs — each NVLink-connected to the target —
// receive disjoint subsets of the bit stream through the target GPU's
// L2 simultaneously.
package core

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/cudart"
)

// Branch is one spy endpoint of a multi-GPU channel: a spy process
// plus the set pairs aligned between it and the trojan.
type Branch struct {
	Spy   *Attacker
	Pairs []AlignedPair
}

// MultiChannel fans a transmission out over multiple spy GPUs.
type MultiChannel struct {
	Trojan   *Attacker
	Branches []Branch
	Cfg      CovertConfig
}

// NewMultiChannel validates and assembles a multi-GPU channel. Every
// branch's spy must target the trojan's GPU.
func NewMultiChannel(trojan *Attacker, branches []Branch, cfg CovertConfig) (*MultiChannel, error) {
	if len(branches) == 0 {
		return nil, fmt.Errorf("core: multichannel needs at least one branch")
	}
	total := 0
	for i, b := range branches {
		if b.Spy == nil || len(b.Pairs) == 0 {
			return nil, fmt.Errorf("core: branch %d is empty", i)
		}
		if b.Spy.Target != trojan.Target {
			return nil, fmt.Errorf("core: branch %d spies on %v, trojan uses %v",
				i, b.Spy.Target, trojan.Target)
		}
		total += len(b.Pairs)
	}
	if total == 0 {
		return nil, fmt.Errorf("core: no aligned pairs")
	}
	if cfg.BitPeriod == 0 {
		cfg = DefaultCovertConfig()
	}
	return &MultiChannel{Trojan: trojan, Branches: branches, Cfg: cfg}, nil
}

// TotalSets returns the number of parallel cache-set channels.
func (mc *MultiChannel) TotalSets() int {
	n := 0
	for _, b := range mc.Branches {
		n += len(b.Pairs)
	}
	return n
}

// Transmit sends msg striped round-robin across every set pair of
// every branch. The decode logic matches Channel.Transmit; each
// branch's spy classifies with its own thresholds.
func (mc *MultiChannel) Transmit(msg []byte) (*Transmission, error) {
	bits := BytesToBits(msg)
	if len(bits) == 0 {
		return nil, fmt.Errorf("core: empty message")
	}
	type lane struct {
		spy  *Attacker
		pair AlignedPair
	}
	var lanes []lane
	for _, b := range mc.Branches {
		for _, p := range b.Pairs {
			lanes = append(lanes, lane{spy: b.Spy, pair: p})
		}
	}
	n := len(lanes)
	streams := splitRoundRobin(bits, n)
	T := mc.Cfg.BitPeriod
	samples := make([][]probeSample, n)

	for li, ln := range lanes {
		li, ln := li, ln
		stream := streams[li]
		err := mc.Trojan.Proc.Launch(fmt.Sprintf("mtrojan-%d", li), 0, func(k *cudart.Kernel) {
			for bi, b := range stream {
				epochEnd := arch.Cycles(bi+1) * T
				for k.Now() < epochEnd {
					if b == 1 {
						k.ProbeSet(ln.pair.TE.Lines)
						k.Busy(2)
					} else {
						k.BusyHeavy(8)
					}
				}
			}
		})
		if err != nil {
			return nil, err
		}
		boundary := ln.spy.Thr.Boundary(ln.spy.Remote())
		endTime := arch.Cycles(len(stream))*T + T/2
		err = ln.spy.Proc.Launch(fmt.Sprintf("mspy-%d", li), arch.MaxSharedMemPerBlock, func(k *cudart.Kernel) {
			k.ProbeSet(ln.pair.SE.Lines)
			for k.Now() < endTime {
				lats, _ := k.ProbeSet(ln.pair.SE.Lines)
				misses := 0
				var sum float64
				for _, l := range lats {
					if float64(l) > boundary {
						misses++
					}
					sum += float64(l)
				}
				k.SharedWrite()
				samples[li] = append(samples[li], probeSample{
					t: k.Now(), misses: misses, avgLat: sum / float64(len(lats)),
				})
			}
		})
		if err != nil {
			return nil, err
		}
	}
	mc.Trojan.m.Run()

	decoded := make([][]byte, n)
	var lastSample arch.Cycles
	guard := arch.Cycles(float64(T) * mc.Cfg.GuardFrac)
	for li := range lanes {
		stream := streams[li]
		decoded[li] = make([]byte, len(stream))
		for bi := range stream {
			lo, hi := arch.Cycles(bi)*T+guard, arch.Cycles(bi+1)*T
			ones, zeros := 0, 0
			for _, s := range samples[li] {
				if s.t < lo || s.t >= hi {
					continue
				}
				if s.misses*2 > len(lanes[li].pair.SE.Lines) {
					ones++
				} else {
					zeros++
				}
			}
			if ones > zeros {
				decoded[li][bi] = 1
			}
		}
		if k := len(samples[li]); k > 0 && samples[li][k-1].t > lastSample {
			lastSample = samples[li][k-1].t
		}
	}
	rx := mergeRoundRobin(decoded, len(bits))
	tx := &Transmission{
		SentBits: bits, ReceivedBits: rx, Duration: lastSample,
		ClockHz: mc.Trojan.m.Profile().Lat.ClockHz,
	}
	for i := range bits {
		if bits[i] != rx[i] {
			tx.BitErrors++
		}
	}
	for _, s := range samples[0] {
		tx.Trace = append(tx.Trace, TracePoint{T: s.t, AvgLat: s.avgLat})
	}
	return tx, nil
}
