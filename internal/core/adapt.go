// Live channel reconfiguration. An adaptive sender does not rebuild
// its eviction sets between messages — it keeps the established
// channel and retunes the cheap knobs: the bit period (pulse rate),
// the FEC strength, and — on switch fabrics — which plane its remote
// probe traffic rides. The arms-race game engine (internal/game)
// drives these between rounds; Transmit reads Cfg at call time, so a
// Reconfigure takes effect on the next transmission without
// disturbing one in flight.
package core

import (
	"fmt"

	"spybox/internal/arch"
)

// Reconfigure swaps the channel's transmission parameters after
// validating them. The new config applies from the next Transmit.
func (c *Channel) Reconfigure(cfg CovertConfig) error {
	if cfg.BitPeriod <= 0 {
		return fmt.Errorf("core: Reconfigure: BitPeriod must be positive, got %d", cfg.BitPeriod)
	}
	if cfg.GuardFrac < 0 || cfg.GuardFrac >= 0.5 {
		return fmt.Errorf("core: Reconfigure: GuardFrac must be in [0, 0.5), got %g", cfg.GuardFrac)
	}
	c.Cfg = cfg
	return nil
}

// Plane returns the switch plane the spy's remote probe traffic rides
// (route overrides included), or -1 on point-to-point boxes.
func (c *Channel) Plane() int {
	return c.Spy.m.Topology().PlaneFor(c.Spy.Proc.Device(), c.Spy.Target)
}

// SetPlane re-pins the spy↔target pair's route onto the given switch
// plane (plane hopping: the attacker's countermove when a plane is
// being throttled or watched). Negative restores the default route.
// Errors on point-to-point boxes, where there is no plane to hop.
func (c *Channel) SetPlane(plane int) error {
	return c.Spy.m.Topology().PinPlane(c.Spy.Proc.Device(), c.Spy.Target, plane)
}

// NumPlanes returns the switch-plane count of the attacked box (0
// without a fabric) so policies can size their hop space.
func (c *Channel) NumPlanes() int { return c.Spy.m.Topology().NumPlanes() }

// BitPeriods returns the rate ladder an adaptive sender modulates
// over: the default period, one faster step, and two slower ones.
// Slower steps trade bandwidth for cleaner epochs (more probes per
// bit); the faster step is the attacker pressing its luck when the
// channel is clean.
func BitPeriods() [4]arch.Cycles {
	d := DefaultCovertConfig().BitPeriod
	return [4]arch.Cycles{d * 3 / 4, d, d * 3 / 2, d * 9 / 4}
}
