package core

import (
	"math"
	"testing"

	"spybox/internal/arch"
	"spybox/internal/l2cache"
	"spybox/internal/sim"
)

// tinyCache is a small geometry that keeps discovery tests fast:
// 64 sets x 4 ways, 4 KB hash chunks -> 32 lines per chunk, 2 regions.
func tinyCache() l2cache.Config {
	return l2cache.Config{Sets: 64, Ways: 4, LineSize: 128, PageSize: 4096, Policy: l2cache.LRU, HashIndex: true}
}

func tinyMachine(seed uint64) *sim.Machine {
	return sim.MustNewMachine(sim.Options{Seed: seed, CacheCfg: tinyCache()})
}

// trueSet returns the ground-truth physical set index of an attacker
// address. Test-only instrumentation: attack code never sees this.
func trueSet(t *testing.T, a *Attacker, va arch.VA) int {
	t.Helper()
	pa, err := a.Proc.Translate(va)
	if err != nil {
		t.Fatal(err)
	}
	return a.m.Device(a.Target).L2().SetIndex(pa)
}

func TestDefaultThresholds(t *testing.T) {
	thr := DefaultThresholds()
	if thr.IsMiss(arch.NomLocalHit, false) || !thr.IsMiss(arch.NomLocalMiss, false) {
		t.Error("local classification wrong")
	}
	if thr.IsMiss(arch.NomRemoteHit, true) || !thr.IsMiss(arch.NomRemoteMiss, true) {
		t.Error("remote classification wrong")
	}
	if thr.String() == "" {
		t.Error("empty String()")
	}
}

func TestCharacterizeTimingFindsFourClusters(t *testing.T) {
	m := sim.MustNewMachine(sim.Options{Seed: 1})
	p, err := CharacterizeTiming(m, 0, 1, 48, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := [4]float64{float64(arch.NomLocalHit), float64(arch.NomLocalMiss),
		float64(arch.NomRemoteHit), float64(arch.NomRemoteMiss)}
	for i, c := range p.Thresholds.Centers {
		if math.Abs(c-want[i]) > 40 {
			t.Errorf("cluster %d center = %.0f, want near %.0f", i, c, want[i])
		}
	}
	if lb := p.Thresholds.LocalBoundary; lb <= want[0] || lb >= want[1] {
		t.Errorf("local boundary %.0f outside (%v,%v)", lb, want[0], want[1])
	}
	if rb := p.Thresholds.RemoteBoundary; rb <= want[2] || rb >= want[3] {
		t.Errorf("remote boundary %.0f outside (%v,%v)", rb, want[2], want[3])
	}
	if len(p.LocalHit) != 48 || len(p.RemoteMiss) != 48 {
		t.Errorf("sample counts %d/%d", len(p.LocalHit), len(p.RemoteMiss))
	}
	if p.Histogram.Total() != 4*48 {
		t.Errorf("histogram holds %d samples", p.Histogram.Total())
	}
	if _, err := CharacterizeTiming(m, 0, 1, 3, 1); err == nil {
		t.Error("tiny sample count accepted")
	}
}

func TestNewAttackerValidation(t *testing.T) {
	m := tinyMachine(2)
	if _, err := NewAttacker(m, 0, 0, 1, DefaultThresholds(), 5); err == nil {
		t.Error("1 page accepted")
	}
	// Remote attacker to a non-linked GPU must fail at peer access.
	if _, err := NewAttacker(m, 1, 6, 8, DefaultThresholds(), 5); err == nil {
		t.Error("attacker across non-linked GPUs accepted")
	}
	a, err := NewAttacker(m, 1, 0, 8, DefaultThresholds(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Remote() {
		t.Error("GPU1->GPU0 attacker should be remote")
	}
	if a.ChunkSize != 4096 || a.LinesPerChunk != 32 {
		t.Errorf("chunk geometry %d/%d", a.ChunkSize, a.LinesPerChunk)
	}
}

func TestAlgorithm1Chase(t *testing.T) {
	m := tinyMachine(3)
	a, err := NewAttacker(m, 0, 0, 12, DefaultThresholds(), 7)
	if err != nil {
		t.Fatal(err)
	}
	// Build a chain over offset-0 lines of all chunks; locate the
	// target's true conflicters to know the expected outcome.
	target := a.LineVA(0, 0)
	targetSet := trueSet(t, a, target)
	var sameSet, diffSet []uint64
	for p := 1; p < a.Pages; p++ {
		off := uint64(p * a.ChunkSize)
		if trueSet(t, a, a.LineVA(p, 0)) == targetSet {
			sameSet = append(sameSet, off)
		} else {
			diffSet = append(diffSet, off)
		}
	}
	if len(sameSet) < 4 {
		t.Skipf("seed yields only %d conflicters", len(sameSet))
	}
	// Chasing only different-set lines must not evict the target.
	_, second, err := a.Algorithm1Chase(target, diffSet, len(diffSet))
	if err != nil {
		t.Fatal(err)
	}
	if a.isMiss(second) {
		t.Errorf("target evicted by non-conflicting chase (lat %v)", second)
	}
	// Chasing >= ways conflicting lines must evict it.
	_, second, err = a.Algorithm1Chase(target, sameSet, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !a.isMiss(second) {
		t.Errorf("target survived a conflicting chase (lat %v)", second)
	}
}

func TestDiscoverPageGroupsMatchesGroundTruth(t *testing.T) {
	for _, tc := range []struct {
		name   string
		attDev arch.DeviceID
		seed   uint64
	}{
		{"local", 0, 11},
		{"remote", 1, 12},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := tinyMachine(tc.seed)
			a, err := NewAttacker(m, tc.attDev, 0, 24, DefaultThresholds(), tc.seed)
			if err != nil {
				t.Fatal(err)
			}
			groups, err := a.DiscoverPageGroups(4)
			if err != nil {
				t.Fatal(err)
			}
			// Ground truth: chunk region = set of its offset-0 line /
			// lines-per-chunk.
			wantGroup := make(map[int]int)
			for p := 0; p < a.Pages; p++ {
				wantGroup[p] = trueSet(t, a, a.LineVA(p, 0)) / a.LinesPerChunk
			}
			// Every discovered group must be region-pure and complete.
			seen := make(map[int]bool)
			for _, g := range groups.Groups {
				region := wantGroup[g[0]]
				for _, p := range g {
					if wantGroup[p] != region {
						t.Errorf("group mixes regions: page %d is region %d, group is %d",
							p, wantGroup[p], region)
					}
					if seen[p] {
						t.Errorf("page %d in two groups", p)
					}
					seen[p] = true
				}
			}
			if len(seen) != a.Pages {
				t.Errorf("classified %d of %d pages", len(seen), a.Pages)
			}
			// Groups must be maximal: count regions.
			regions := make(map[int]bool)
			for _, r := range wantGroup {
				regions[r] = true
			}
			if len(groups.Groups) != len(regions) {
				t.Errorf("found %d groups, ground truth has %d regions",
					len(groups.Groups), len(regions))
			}
		})
	}
}

func TestGroupOf(t *testing.T) {
	g := &PageGroups{Groups: [][]int{{0, 2}, {1, 3}}}
	if g.GroupOf(3) != 1 || g.GroupOf(0) != 0 {
		t.Error("GroupOf wrong")
	}
	if g.GroupOf(99) != -1 {
		t.Error("missing page should be -1")
	}
}

func TestEvictionSetsCoverDistinctPhysicalSets(t *testing.T) {
	m := tinyMachine(21)
	a, err := NewAttacker(m, 0, 0, 24, DefaultThresholds(), 21)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := a.DiscoverPageGroups(4)
	if err != nil {
		t.Fatal(err)
	}
	sets := a.AllEvictionSets(groups, 4)
	if len(sets) != 64 { // 2 regions x 32 offsets = full tiny cache
		t.Fatalf("built %d eviction sets, want 64", len(sets))
	}
	seenPhys := make(map[int]bool)
	for _, es := range sets {
		if len(es.Lines) != 4 {
			t.Fatalf("set has %d lines", len(es.Lines))
		}
		phys := trueSet(t, a, es.Lines[0])
		for _, va := range es.Lines[1:] {
			if got := trueSet(t, a, va); got != phys {
				t.Fatalf("eviction set spans physical sets %d and %d", phys, got)
			}
		}
		if seenPhys[phys] {
			t.Fatalf("two eviction sets map to physical set %d", phys)
		}
		seenPhys[phys] = true
	}
}

func TestEvictionSetForValidation(t *testing.T) {
	m := tinyMachine(22)
	a, _ := NewAttacker(m, 0, 0, 24, DefaultThresholds(), 22)
	groups := &PageGroups{Groups: [][]int{{0, 1, 2}}}
	if _, err := a.EvictionSetFor(groups, 5, 0, 4); err == nil {
		t.Error("bad group index accepted")
	}
	if _, err := a.EvictionSetFor(groups, 0, 0, 4); err == nil {
		t.Error("undersized group accepted")
	}
	if _, err := a.EvictionSetFor(&PageGroups{Groups: [][]int{{0, 1, 2, 3}}}, 0, 99, 4); err == nil {
		t.Error("offset beyond chunk accepted")
	}
}

func TestAliased(t *testing.T) {
	m := tinyMachine(23)
	a, err := NewAttacker(m, 0, 0, 24, DefaultThresholds(), 23)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := a.DiscoverPageGroups(4)
	if err != nil {
		t.Fatal(err)
	}
	g := groups.Groups[0]
	if len(g) < 8 {
		t.Skipf("group too small: %d", len(g))
	}
	s1 := EvictionSet{Lines: a.pagesToVAs(g[0:4], 0), Group: 0, Offset: 0}
	s2 := EvictionSet{Lines: a.pagesToVAs(g[4:8], 0), Group: 0, Offset: 0}
	al, err := a.Aliased(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if !al {
		t.Error("same-set pair not detected as aliased")
	}
	s3 := EvictionSet{Lines: a.pagesToVAs(g[4:8], 1), Group: 0, Offset: 1}
	al, err = a.Aliased(s1, s3)
	if err != nil {
		t.Fatal(err)
	}
	if al {
		t.Error("distinct-set pair reported aliased")
	}
}

func TestDeduplicateSets(t *testing.T) {
	m := tinyMachine(24)
	a, err := NewAttacker(m, 0, 0, 24, DefaultThresholds(), 24)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := a.DiscoverPageGroups(4)
	if err != nil {
		t.Fatal(err)
	}
	g := groups.Groups[0]
	if len(g) < 8 {
		t.Skipf("group too small: %d", len(g))
	}
	// Fabricate a wrongly-split discovery: two "groups" that are
	// halves of one real group. Their sets alias pairwise.
	mk := func(pages []int, group, off int) EvictionSet {
		return EvictionSet{Lines: a.pagesToVAs(pages, off), Group: group, Offset: off}
	}
	sets := []EvictionSet{
		mk(g[0:4], 0, 0), mk(g[0:4], 0, 1),
		mk(g[4:8], 1, 0), mk(g[4:8], 1, 1), // aliases of the above
	}
	dedup, err := a.DeduplicateSets(sets)
	if err != nil {
		t.Fatal(err)
	}
	if len(dedup) != 2 {
		t.Fatalf("dedup kept %d sets, want 2", len(dedup))
	}
	for _, s := range dedup {
		if s.Group != 0 {
			t.Errorf("dedup kept the aliased group: %+v", s)
		}
	}
	// No-alias input passes through intact.
	clean := []EvictionSet{mk(g[0:4], 0, 0), mk(g[0:4], 0, 1)}
	dedup, err = a.DeduplicateSets(clean)
	if err != nil {
		t.Fatal(err)
	}
	if len(dedup) != 2 {
		t.Errorf("clean sets were dropped: %d", len(dedup))
	}
}

func TestDiscoverConsolidatesFragmentedGroups(t *testing.T) {
	// Seed 0xb001 at 176 pages on the real P100 geometry yields a hash
	// region with just 29 pages — below the 2*ways-1 threshold phase A
	// needs — which fragmented discovery into 14 + 15 singleton groups
	// before the consolidation pass existed. Full-geometry regression.
	m := sim.MustNewMachine(sim.Options{Seed: 0xb001})
	a, err := NewAttacker(m, 0, 0, 176, DefaultThresholds(), 0xb001^0x31)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := a.DiscoverPageGroups(arch.L2Ways)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups.Groups) != 4 {
		sizes := make([]int, len(groups.Groups))
		for i, g := range groups.Groups {
			sizes[i] = len(g)
		}
		t.Fatalf("discovery fragmented: %d groups with sizes %v", len(groups.Groups), sizes)
	}
	total := 0
	for _, g := range groups.Groups {
		total += len(g)
		// Ground-truth purity of each consolidated group.
		region := trueSet(t, a, a.LineVA(g[0], 0)) / a.LinesPerChunk
		for _, p := range g {
			if r := trueSet(t, a, a.LineVA(p, 0)) / a.LinesPerChunk; r != region {
				t.Fatalf("page %d consolidated into wrong region (%d vs %d)", p, r, region)
			}
		}
	}
	if total != a.Pages {
		t.Fatalf("classified %d of %d pages", total, a.Pages)
	}
}
