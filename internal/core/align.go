// Cross-process eviction-set alignment (Sec. IV-A, Algorithm 2,
// Fig. 7). After discovery, each process holds eviction sets it can
// only name locally; to communicate, the trojan and spy must find
// pairs of sets — one from each process — that hash to the same
// physical cache set. The test is contention itself: the trojan
// hammers one of its sets while the spy times probes of a candidate;
// an elevated average access time means the two sets collide.
package core

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/cudart"
	"spybox/internal/stats"
)

// AlignedPair couples a trojan eviction set with the spy eviction set
// that maps to the same physical cache set.
type AlignedPair struct {
	TE EvictionSet // trojan's set (local to the target GPU)
	SE EvictionSet // spy's set (probed remotely over NVLink)
}

// AlignConfig sizes the Algorithm 2 contention test. The paper uses
// 400000 trojan loops and 150000 spy loops on silicon; the simulated
// machine needs far fewer probes for the contention to be visible,
// and the paper itself notes the loop counts can be reduced.
type AlignConfig struct {
	TrojanLoops int // probe passes the trojan hammers per test
	SpyLoops    int // probe passes the spy averages per test
}

// DefaultAlignConfig returns loop counts scaled for the simulator
// while preserving the paper's ~8:3 local:remote ratio.
func DefaultAlignConfig() AlignConfig {
	return AlignConfig{TrojanLoops: 320, SpyLoops: 120}
}

// AlignPair is Algorithm 2 verbatim for one (TE, SE) candidate pair:
// the trojan accesses TE in a pointer-chase loop for TrojanLoops
// iterations while the spy accumulates the average per-access time of
// SE over SpyLoops iterations. It returns the spy's average
// per-access time and whether that indicates a collision.
func AlignPair(trojan, spy *Attacker, te, se EvictionSet, cfg AlignConfig) (avg float64, mapped bool, err error) {
	if len(te.Lines) == 0 || len(se.Lines) == 0 {
		return 0, false, fmt.Errorf("core: empty eviction set")
	}
	if cfg.TrojanLoops <= 0 || cfg.SpyLoops <= 0 {
		cfg = DefaultAlignConfig()
	}
	if err := trojan.Proc.Launch("align-trojan", 0, func(k *cudart.Kernel) {
		for i := 0; i < cfg.TrojanLoops; i++ { // Alg. 2 outer loop
			k.ProbeSet(te.Lines) // lines 5-13: chase the set
			k.Busy(4)            // line 15: dummy operation
		}
	}); err != nil {
		return 0, false, err
	}
	var timer2 float64 // Alg. 2's accumulated per-access average
	if err := spy.Proc.Launch("align-spy", 0, func(k *cudart.Kernel) {
		for i := 0; i < cfg.SpyLoops; i++ {
			lats, _ := k.ProbeSet(se.Lines) // lines 5-13
			var timer1 arch.Cycles
			for _, l := range lats {
				timer1 += l // line 11: accumulate access cycles
			}
			timer2 += float64(timer1) / float64(len(lats)) // line 14
			k.Busy(4)
		}
	}); err != nil {
		return 0, false, err
	}
	trojan.m.Run()
	avg = timer2 / float64(cfg.SpyLoops) // line 17
	return avg, avg > spy.Thr.Boundary(spy.Remote()), nil
}

// AlignSweep finds, in a single concurrent run, which of the spy's
// candidate sets collides with the trojan set te: the trojan hammers
// te continuously while the spy visits every candidate a few times
// and averages per-access latency. The candidate with the highest
// average — provided it crosses the spy's miss boundary — is the
// match. This is the "reduced probing values" optimization the paper
// mentions; the decision criterion is identical to AlignPair's.
func AlignSweep(trojan, spy *Attacker, te EvictionSet, candidates []EvictionSet, probesPer int) (matchIdx int, avgs []float64, err error) {
	if probesPer <= 0 {
		probesPer = 3
	}
	stop := false
	if err := trojan.Proc.Launch("sweep-trojan", 0, func(k *cudart.Kernel) {
		for !stop {
			k.ProbeSet(te.Lines)
			k.Busy(4)
		}
	}); err != nil {
		return -1, nil, err
	}
	avgs = make([]float64, len(candidates))
	if err := spy.Proc.Launch("sweep-spy", 0, func(k *cudart.Kernel) {
		defer func() { stop = true }()
		for ci, cand := range candidates {
			k.ProbeSet(cand.Lines) // warm the candidate (prime)
			var sum float64
			n := 0
			for p := 0; p < probesPer; p++ {
				lats, _ := k.ProbeSet(cand.Lines)
				for _, l := range lats {
					sum += float64(l)
					n++
				}
			}
			avgs[ci] = sum / float64(n)
			k.SharedWrite()
		}
	}); err != nil {
		return -1, nil, err
	}
	trojan.m.Run()
	best := stats.ArgMax(avgs)
	if best < 0 || avgs[best] <= spy.Thr.Boundary(spy.Remote()) {
		return -1, avgs, nil
	}
	return best, avgs, nil
}

// AlignChannels establishes numSets aligned pairs between trojan and
// spy. Trojan sets are drawn from one conflict group at consecutive
// page offsets; for each, the spy sweeps its candidate sets. An error
// is returned if any trojan set finds no spy counterpart (which, with
// full-cache coverage on the spy side, indicates a discovery failure).
func AlignChannels(trojan, spy *Attacker, trojanSets, spyCandidates []EvictionSet, numSets int) ([]AlignedPair, error) {
	if numSets > len(trojanSets) {
		return nil, fmt.Errorf("core: want %d channels, trojan has %d sets", numSets, len(trojanSets))
	}
	var pairs []AlignedPair
	used := make(map[int]bool)
	for i := 0; i < numSets; i++ {
		te := trojanSets[i]
		idx, _, err := AlignSweep(trojan, spy, te, spyCandidates, 3)
		if err != nil {
			return nil, err
		}
		if idx < 0 {
			return nil, fmt.Errorf("core: no spy set aligns with trojan set (group %d, offset %d)", te.Group, te.Offset)
		}
		if used[idx] {
			return nil, fmt.Errorf("core: spy set %d matched two trojan sets; aliasing in discovery", idx)
		}
		used[idx] = true
		pairs = append(pairs, AlignedPair{TE: te, SE: spyCandidates[idx]})
	}
	return pairs, nil
}
