package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"spybox/internal/xrand"
)

func TestHammingRoundTripClean(t *testing.T) {
	msg := []byte("covert channel payload")
	got, corrected := HammingDecode(HammingEncode(msg))
	if !bytes.Equal(got, msg) {
		t.Fatalf("round trip: %q", got)
	}
	if corrected != 0 {
		t.Fatalf("clean stream reported %d corrections", corrected)
	}
}

func TestHammingCorrectsSingleBitErrors(t *testing.T) {
	msg := []byte{0xA5, 0x3C, 0xFF, 0x00}
	bits := HammingEncode(msg)
	// Flip exactly one bit in every codeword.
	rng := xrand.New(9)
	for cw := 0; cw*7 < len(bits); cw++ {
		bits[cw*7+rng.Intn(7)] ^= 1
	}
	got, corrected := HammingDecode(bits)
	if !bytes.Equal(got, msg) {
		t.Fatalf("decode with 1 error/codeword failed: %x", got)
	}
	if corrected != len(bits)/7 {
		t.Errorf("corrected %d of %d codewords", corrected, len(bits)/7)
	}
}

func TestHammingRoundTripProperty(t *testing.T) {
	f := func(msg []byte, flipSeed uint16) bool {
		bits := HammingEncode(msg)
		rng := xrand.New(uint64(flipSeed))
		// At most one flip per codeword, randomly applied.
		for cw := 0; cw*7 < len(bits); cw++ {
			if rng.Bool() {
				bits[cw*7+rng.Intn(7)] ^= 1
			}
		}
		got, _ := HammingDecode(bits)
		return bytes.Equal(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingNibbleExhaustive(t *testing.T) {
	// Every nibble, every single-bit corruption: must decode exactly.
	for n := byte(0); n < 16; n++ {
		cw := hammingEncodeNibble(n)
		if got, c := hammingDecodeNibble(cw); got != n || c {
			t.Fatalf("clean nibble %x decoded to %x (corrected=%v)", n, got, c)
		}
		for bit := uint(0); bit < 7; bit++ {
			got, c := hammingDecodeNibble(cw ^ 1<<bit)
			if got != n || !c {
				t.Fatalf("nibble %x, flipped bit %d: got %x (corrected=%v)", n, bit, got, c)
			}
		}
	}
}

func TestTransmitReliable(t *testing.T) {
	m := tinyMachine(81)
	trojan, tg := discoverOn(t, m, 0, 0, 24, 81)
	spy, sg := discoverOn(t, m, 1, 0, 24, 82)
	pairs, err := AlignChannels(trojan, spy,
		trojan.AllEvictionSets(tg, 4), spy.AllEvictionSets(sg, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(trojan, spy, pairs, DefaultCovertConfig())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("FEC over cache contention")
	got, corrected, raw, err := ch.TransmitReliable(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("reliable transmit failed: %q (raw errors %d, corrected %d)",
			got, raw.BitErrors, corrected)
	}
	if raw.BandwidthMBps() <= 0 {
		t.Error("no bandwidth recorded")
	}
}
