// The Prime+Probe side-channel monitor (Sec. V). The spy, sitting on
// a different GPU, sweeps its eviction sets over the victim GPU's L2:
// each probe measures the per-line access times of one set,
// classifies them hit/miss against the reverse-engineered thresholds,
// and re-primes the set as a side effect. Accumulated over time, the
// per-set miss counts form the *memorygram* — the paper's Figs. 11,
// 13, 14 and 15 are renderings of exactly this structure.
package core

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/cudart"
)

// MonitorResult is the raw memorygram: Miss[epoch][set] counts how
// many lines of monitored set `set` missed during probe sweep
// `epoch`. A miss means somebody — the victim — displaced the spy's
// line since the previous sweep.
type MonitorResult struct {
	Miss       [][]int
	NumSets    int
	Epochs     int
	Duration   arch.Cycles
	ProbeCount int
}

// AvgMissesPerSet returns the mean total misses per monitored set
// over the whole run — Table II's statistic.
func (r *MonitorResult) AvgMissesPerSet() float64 {
	if r.NumSets == 0 {
		return 0
	}
	total := 0
	for _, row := range r.Miss {
		for _, m := range row {
			total += m
		}
	}
	return float64(total) / float64(r.NumSets)
}

// SetTotals returns total misses per set (the Fig. 13 histogram data).
func (r *MonitorResult) SetTotals() []int {
	totals := make([]int, r.NumSets)
	for _, row := range r.Miss {
		for s, m := range row {
			totals[s] += m
		}
	}
	return totals
}

// EpochTotals returns total misses per probe sweep (activity over
// time; quiet stretches separate training epochs in Fig. 15).
func (r *MonitorResult) EpochTotals() []int {
	totals := make([]int, len(r.Miss))
	for e, row := range r.Miss {
		for _, m := range row {
			totals[e] += m
		}
	}
	return totals
}

// MonitorOptions configure a monitoring run.
type MonitorOptions struct {
	// Epochs is the number of probe sweeps over all monitored sets.
	Epochs int
	// StopEarly, if non-nil, is checked between sweeps; when it
	// returns true the monitor stops (e.g. the victim finished).
	// Remaining epochs are recorded as all-zero rows so result
	// dimensions stay fixed for the classifier.
	StopEarly func() bool
	// SettleSweeps is how many initial prime-only sweeps to run
	// before recording (the first sweep of a cold buffer misses
	// everywhere and would be pure noise). Default 1.
	SettleSweeps int
	// DoneFlag, if non-nil, is set true when the monitor kernel
	// finishes; long-running victims use it to stop themselves so the
	// machine run can complete.
	DoneFlag *bool
}

// Monitor performs the side-channel measurement: it probes each set
// in sets once per epoch, recording per-set miss counts. The caller
// launches the victim before calling Machine.Run — Monitor only
// launches the spy kernel and must be paired with a run of the
// machine by the caller via RunMachine... (see MonitorConcurrent).
//
// Most callers want MonitorConcurrent, which handles the pairing.
func (a *Attacker) launchMonitor(sets []EvictionSet, opts MonitorOptions, res *MonitorResult) error {
	if len(sets) == 0 {
		return fmt.Errorf("core: no sets to monitor")
	}
	if opts.Epochs <= 0 {
		return fmt.Errorf("core: epochs must be positive")
	}
	settle := opts.SettleSweeps
	if settle == 0 {
		settle = 1
	}
	boundary := a.Thr.Boundary(a.Remote())
	res.NumSets = len(sets)
	res.Epochs = opts.Epochs
	res.Miss = make([][]int, opts.Epochs)
	for i := range res.Miss {
		res.Miss[i] = make([]int, len(sets))
	}
	// The spy block uses the full 32 KB shared-memory allowance as its
	// sample buffer, as in the paper.
	return a.Proc.Launch("pp-monitor", arch.MaxSharedMemPerBlock, func(k *cudart.Kernel) {
		if opts.DoneFlag != nil {
			defer func() { *opts.DoneFlag = true }()
		}
		for s := 0; s < settle; s++ {
			for _, set := range sets {
				k.ProbeSet(set.Lines)
			}
		}
		start := k.Now()
		for e := 0; e < opts.Epochs; e++ {
			if opts.StopEarly != nil && opts.StopEarly() {
				break
			}
			for si, set := range sets {
				lats, _ := k.ProbeSet(set.Lines)
				misses := 0
				for _, l := range lats {
					if float64(l) > boundary {
						misses++
					}
				}
				res.Miss[e][si] = misses
				res.ProbeCount++
				k.SharedWrite()
			}
		}
		res.Duration = k.Now() - start
	})
}

// MonitorConcurrent launches the spy monitor, then the victim via
// launchVictim, runs the machine to completion, and returns the
// memorygram. launchVictim typically launches one or more victim
// kernels and may set a flag the monitor's StopEarly consults.
func (a *Attacker) MonitorConcurrent(sets []EvictionSet, opts MonitorOptions, launchVictim func() error) (*MonitorResult, error) {
	var res MonitorResult
	if err := a.launchMonitor(sets, opts, &res); err != nil {
		return nil, err
	}
	if launchVictim != nil {
		if err := launchVictim(); err != nil {
			return nil, err
		}
	}
	a.m.Run()
	return &res, nil
}
