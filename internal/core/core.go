// Package core implements the paper's contribution: user-level
// reverse engineering of the multi-GPU L2 cache hierarchy and the
// cross-GPU Prime+Probe covert and side channel attacks built on it.
//
// The package is written the way the paper's CUDA code is written —
// against the cudart API only, with no visibility into VA->PA mappings
// or cache internals. Everything the attacks know, they learned from
// timing:
//
//   - timing.go     characterizes the four access classes and derives
//     hit/miss thresholds (Fig. 4);
//   - evset.go      discovers eviction sets with the Algorithm 1
//     pointer chase, de-aliases them (Fig. 6), and
//     derives the Table I geometry;
//   - align.go      aligns eviction sets across two processes with the
//     Algorithm 2 contention test (Fig. 7);
//   - covert.go     is the cross-GPU covert channel (Figs. 8-10);
//   - probe.go      is the Prime+Probe side-channel monitor producing
//     memorygrams (Figs. 11-15).
package core

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/cudart"
	"spybox/internal/sim"
	"spybox/internal/stats"
)

// Thresholds carries the timing knowledge the reverse-engineering step
// produces: the four cluster centers and the decision boundaries the
// attacks use to classify an access as hit or miss.
type Thresholds struct {
	// Centers are the four cluster means in ascending order:
	// local hit, local miss, remote hit, remote miss.
	Centers [4]float64
	// LocalBoundary separates local hits from local misses.
	LocalBoundary float64
	// RemoteBoundary separates remote hits from remote misses.
	RemoteBoundary float64
}

// Boundary returns the hit/miss decision boundary for the given access
// locality.
func (t Thresholds) Boundary(remote bool) float64 {
	if remote {
		return t.RemoteBoundary
	}
	return t.LocalBoundary
}

// IsMiss classifies one access latency.
func (t Thresholds) IsMiss(lat arch.Cycles, remote bool) bool {
	return float64(lat) > t.Boundary(remote)
}

// String summarizes the thresholds for reports.
func (t Thresholds) String() string {
	return fmt.Sprintf("centers=[%.0f %.0f %.0f %.0f] localBoundary=%.0f remoteBoundary=%.0f",
		t.Centers[0], t.Centers[1], t.Centers[2], t.Centers[3], t.LocalBoundary, t.RemoteBoundary)
}

// TimingProfile is the full result of the Fig. 4 characterization:
// raw samples per class, the derived thresholds, and the combined
// histogram as the paper plots it.
type TimingProfile struct {
	LocalHit, LocalMiss   []float64
	RemoteHit, RemoteMiss []float64
	Thresholds            Thresholds
	Histogram             *stats.Histogram
}

// CharacterizeTiming reproduces the Sec. III-A microbenchmark: a
// process on devLocal times cold and warm accesses to a buffer homed
// on its own GPU, and a second process on devRemote times cold and
// warm accesses to a buffer homed on devLocal (reached over NVLink).
// The four resulting clusters are separated with 1-D k-means and the
// midpoints between adjacent relevant clusters become the decision
// thresholds.
//
// accesses is the number of lines sampled per class; the paper uses
// 48 per loop and repeats. It must be at least 8 for the clustering
// to be meaningful.
func CharacterizeTiming(m *sim.Machine, devLocal, devRemote arch.DeviceID, accesses int, seed uint64) (*TimingProfile, error) {
	if accesses < 8 {
		return nil, fmt.Errorf("core: need >=8 accesses per class, got %d", accesses)
	}
	local, err := cudart.NewProcess(m, devLocal, seed)
	if err != nil {
		return nil, err
	}
	remote, err := cudart.NewProcess(m, devRemote, seed+1)
	if err != nil {
		return nil, err
	}
	if err := remote.EnablePeerAccess(devLocal); err != nil {
		return nil, err
	}

	// Spread samples over distinct pages so DRAM row locality does not
	// compress the miss cluster into a single spike.
	bufSize := uint64(accesses) * arch.PageSize
	localBuf, err := local.Malloc(bufSize)
	if err != nil {
		return nil, err
	}
	remoteBuf, err := remote.MallocOnDevice(devLocal, bufSize)
	if err != nil {
		return nil, err
	}

	p := &TimingProfile{}
	sample := func(proc *cudart.Process, buf arch.VA, miss, hit *[]float64) error {
		err := proc.Launch("timing", 0, func(k *cudart.Kernel) {
			for i := 0; i < accesses; i++ {
				va := buf + arch.VA(uint64(i)*arch.PageSize)
				// Cold access: DRAM (local) or remote DRAM.
				lat := k.TouchCG(va)
				k.SharedWrite() // record in shared buffer, off the L2 path
				*miss = append(*miss, float64(lat))
				// Warm access: L2 hit at the home GPU.
				lat = k.TouchCG(va)
				k.SharedWrite()
				*hit = append(*hit, float64(lat))
			}
		})
		if err != nil {
			return err
		}
		m.Run()
		return nil
	}
	if err := sample(local, localBuf, &p.LocalMiss, &p.LocalHit); err != nil {
		return nil, err
	}
	if err := sample(remote, remoteBuf, &p.RemoteMiss, &p.RemoteHit); err != nil {
		return nil, err
	}

	all := make([]float64, 0, 4*accesses)
	all = append(all, p.LocalHit...)
	all = append(all, p.LocalMiss...)
	all = append(all, p.RemoteHit...)
	all = append(all, p.RemoteMiss...)

	centers, _ := stats.KMeans1D(all, 4)
	gaps := stats.ClusterGaps(centers)
	copy(p.Thresholds.Centers[:], centers)
	p.Thresholds.LocalBoundary = gaps[0]  // between local hit and local miss
	p.Thresholds.RemoteBoundary = gaps[2] // between remote hit and remote miss

	h := stats.NewHistogram(stats.Min(all)-20, stats.Max(all)+20, 64)
	h.AddAll(all)
	p.Histogram = h
	return p, nil
}

// DefaultThresholds returns thresholds computed from the nominal P100
// latency model, for tests and for attack phases that reuse an
// earlier characterization ("one time, offline" in the threat model).
func DefaultThresholds() Thresholds {
	return DefaultThresholdsFor(arch.P100DGX1())
}

// DefaultThresholdsFor derives nominal thresholds from a profile's
// latency model — the centers CharacterizeTiming would rediscover on
// a quiet machine of that architecture.
func DefaultThresholdsFor(p arch.Profile) Thresholds {
	localHit := float64(p.Lat.L2Hit)
	localMiss := float64(p.Lat.L2Hit + p.Lat.HBM)
	remoteHit := float64(p.Lat.L2Hit + p.Lat.NVLinkHop)
	remoteMiss := float64(p.Lat.L2Hit + p.Lat.NVLinkHop + p.Lat.HBM + p.Lat.RemoteMissExtra)
	return Thresholds{
		Centers:        [4]float64{localHit, localMiss, remoteHit, remoteMiss},
		LocalBoundary:  (localHit + localMiss) / 2,
		RemoteBoundary: (remoteHit + remoteMiss) / 2,
	}
}
