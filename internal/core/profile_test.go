package core

import (
	"testing"

	"spybox/internal/arch"
	"spybox/internal/l2cache"
	"spybox/internal/sim"
)

// profileMachine builds a machine on the given named profile.
func profileMachine(t *testing.T, prof arch.Profile, seed uint64) *sim.Machine {
	t.Helper()
	m, err := sim.NewMachine(sim.Options{Seed: seed, Profile: &prof})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDiscoveryUnderProfiles runs eviction-set discovery end to end on
// non-P100 geometries: the DGX-2 profile (24-way L2) and a tiny
// 64-set single-region cache. Discovery must read the associativity
// from the machine, partition pages into the geometry's hash-region
// count, and the resulting eviction sets must really evict — the
// staircase appears at the profile's `ways`, not the P100's 16.
func TestDiscoveryUnderProfiles(t *testing.T) {
	t.Parallel()
	v100 := arch.V100DGX2()
	cases := []struct {
		name        string
		machine     func(t *testing.T) *sim.Machine
		pages       int
		wantWays    int
		wantregions int
	}{
		{
			// DGX-2: 4 hash regions of a 24-way cache. 240 pages give
			// each region ~60 >= 2*24+12 — the same margin the
			// experiments use (discoveryPages at Small scale).
			name:        "v100-dgx2",
			machine:     func(t *testing.T) *sim.Machine { return profileMachine(t, v100, 0xd62) },
			pages:       240,
			wantWays:    24,
			wantregions: 4,
		},
		{
			// Tiny 64-set cache with 8 KB hash chunks: a single region
			// (sets == lines per chunk), so every page conflicts with
			// every other and discovery must return one giant group.
			name: "tiny-64set",
			machine: func(t *testing.T) *sim.Machine {
				return sim.MustNewMachine(sim.Options{
					Seed: 0x64,
					CacheCfg: l2cache.Config{
						Sets: 64, Ways: 4, LineSize: 128, PageSize: 8192,
						Policy: l2cache.LRU, HashIndex: true,
					},
				})
			},
			pages:       24,
			wantWays:    4,
			wantregions: 1,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			m := c.machine(t)
			att, err := NewAttacker(m, 0, 0, c.pages, DefaultThresholdsFor(m.Profile()), 0xabc)
			if err != nil {
				t.Fatal(err)
			}
			if att.Ways() != c.wantWays {
				t.Fatalf("Ways() = %d, want %d", att.Ways(), c.wantWays)
			}
			groups, err := att.DiscoverPageGroups(att.Ways())
			if err != nil {
				t.Fatal(err)
			}
			if len(groups.Groups) != c.wantregions {
				sizes := make([]int, len(groups.Groups))
				for i, g := range groups.Groups {
					sizes[i] = len(g)
				}
				t.Fatalf("discovered %d conflict groups (sizes %v), want %d",
					len(groups.Groups), sizes, c.wantregions)
			}
			// Ground truth: every page of a group must share its region.
			for gi, g := range groups.Groups {
				want := trueSet(t, att, att.LineVA(g[0], 0))
				for _, p := range g {
					if got := trueSet(t, att, att.LineVA(p, 0)); got != want {
						t.Errorf("group %d: page %d in set %d, group is set %d", gi, p, got, want)
					}
				}
			}
			// The eviction staircase steps exactly at the profile's
			// associativity (Fig. 5 on this geometry).
			big := groups.Groups[0]
			for _, g := range groups.Groups {
				if len(g) > len(big) {
					big = g
				}
			}
			maxLines := c.wantWays + 4
			points, err := att.ValidateEvictionSet(big, maxLines)
			if err != nil {
				t.Fatal(err)
			}
			step := -1
			for _, pt := range points {
				if pt.Evicted && step < 0 {
					step = pt.LinesAccessed
				}
				if step >= 0 && !pt.Evicted {
					t.Errorf("staircase dipped after k=%d at k=%d", step, pt.LinesAccessed)
				}
			}
			if step != c.wantWays {
				t.Errorf("eviction step at k=%d, want %d", step, c.wantWays)
			}
		})
	}
}

// TestAttackerReadsGeometryFromMachine pins the tentpole invariant for
// every named profile without running discovery: the attacker's chunk
// size, line size, and associativity come from the machine it targets.
func TestAttackerReadsGeometryFromMachine(t *testing.T) {
	t.Parallel()
	for _, prof := range arch.Profiles() {
		m := profileMachine(t, prof, 7)
		att, err := NewAttacker(m, 0, 0, 4, DefaultThresholdsFor(prof), 9)
		if err != nil {
			t.Fatal(err)
		}
		if att.Ways() != prof.L2Ways || att.LineSize != prof.L2LineSize {
			t.Errorf("%s: attacker sees %d ways / %d B lines, profile has %d / %d",
				prof.Name, att.Ways(), att.LineSize, prof.L2Ways, prof.L2LineSize)
		}
		if att.LinesPerChunk != arch.PageSize/prof.L2LineSize {
			t.Errorf("%s: LinesPerChunk = %d", prof.Name, att.LinesPerChunk)
		}
	}
}
