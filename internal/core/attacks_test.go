package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"spybox/internal/arch"
	"spybox/internal/cudart"
	"spybox/internal/l2cache"
	"spybox/internal/sim"
)

// discoverOn builds an attacker with discovered groups on a tiny
// machine, used by the geometry/alignment/covert tests.
func discoverOn(t *testing.T, m *sim.Machine, dev, target arch.DeviceID, pages int, seed uint64) (*Attacker, *PageGroups) {
	t.Helper()
	a, err := NewAttacker(m, dev, target, pages, DefaultThresholds(), seed)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := a.DiscoverPageGroups(4)
	if err != nil {
		t.Fatal(err)
	}
	return a, groups
}

func TestInferAssociativity(t *testing.T) {
	m := tinyMachine(31)
	a, groups := discoverOn(t, m, 0, 0, 24, 31)
	big := groups.Groups[0]
	if len(groups.Groups[1]) > len(big) {
		big = groups.Groups[1]
	}
	ways, err := a.InferAssociativity(big, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ways != 4 {
		t.Errorf("inferred associativity %d, want 4", ways)
	}
}

func TestInferLineSize(t *testing.T) {
	m := tinyMachine(32)
	// Fresh attacker whose pages were never touched.
	a, err := NewAttacker(m, 0, 0, 12, DefaultThresholds(), 99)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := a.InferLineSize(0)
	if err != nil {
		t.Fatal(err)
	}
	if ls != 128 {
		t.Errorf("inferred line size %d, want 128", ls)
	}
}

func TestInferReplacementPolicy(t *testing.T) {
	m := tinyMachine(33)
	a, groups := discoverOn(t, m, 0, 0, 24, 33)
	big := groups.Groups[0]
	if len(groups.Groups) > 1 && len(groups.Groups[1]) > len(big) {
		big = groups.Groups[1]
	}
	pol, err := a.InferReplacementPolicy(big, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if pol != "LRU" {
		t.Errorf("policy = %q, want LRU", pol)
	}
}

func TestInferReplacementPolicyRandomized(t *testing.T) {
	cfg := tinyCache()
	cfg.Policy = l2cache.RandomRepl
	m := sim.MustNewMachine(sim.Options{Seed: 34, CacheCfg: cfg})
	a, err := NewAttacker(m, 0, 0, 24, DefaultThresholds(), 34)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := a.DiscoverPageGroups(4)
	if err != nil {
		t.Fatal(err)
	}
	big := groups.Groups[0]
	for _, g := range groups.Groups {
		if len(g) > len(big) {
			big = g
		}
	}
	if len(big) < 6 {
		t.Skipf("largest group too small: %d", len(big))
	}
	pol, err := a.InferReplacementPolicy(big, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if pol != "randomized" {
		t.Errorf("policy = %q, want randomized", pol)
	}
}

func TestInferGeometryTableI(t *testing.T) {
	m := tinyMachine(35)
	a, groups := discoverOn(t, m, 0, 0, 24, 35)
	fresh, err := NewAttacker(m, 0, 0, 10, DefaultThresholds(), 777)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := a.InferGeometry(groups, 8, fresh)
	if err != nil {
		t.Fatal(err)
	}
	want := Geometry{LineSize: 128, Ways: 4, Sets: 64, CacheBytes: 64 * 4 * 128, Policy: "LRU"}
	if geo != want {
		t.Errorf("geometry = %+v, want %+v", geo, want)
	}
	if geo.String() == "" {
		t.Error("empty geometry string")
	}
}

func TestValidateEvictionSetStaircase(t *testing.T) {
	m := tinyMachine(36)
	a, groups := discoverOn(t, m, 0, 0, 32, 36)
	big := groups.Groups[0]
	for _, g := range groups.Groups {
		if len(g) > len(big) {
			big = g
		}
	}
	maxLines := len(big) - 1
	if maxLines > 12 {
		maxLines = 12
	}
	points, err := a.ValidateEvictionSet(big, maxLines)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range points {
		wantEvicted := pt.LinesAccessed >= 4
		if pt.Evicted != wantEvicted {
			t.Errorf("k=%d: evicted=%v (lat %v), want %v",
				pt.LinesAccessed, pt.Evicted, pt.TargetLat, wantEvicted)
		}
	}
}

// alignedGroundTruth finds a (trojanSet, spySet) pair mapping to the
// same physical set, and one deliberately mismatched pair.
func alignedGroundTruth(t *testing.T, trojan, spy *Attacker, tg, sg *PageGroups) (te EvictionSet, seMatch, seMiss EvictionSet) {
	t.Helper()
	tsets := trojan.AllEvictionSets(tg, 4)
	ssets := spy.AllEvictionSets(sg, 4)
	physOf := func(a *Attacker, es EvictionSet) int { return trueSet(t, a, es.Lines[0]) }
	for _, ts := range tsets {
		tp := physOf(trojan, ts)
		for _, ss := range ssets {
			if physOf(spy, ss) == tp {
				for _, sm := range ssets {
					if physOf(spy, sm) != tp {
						return ts, ss, sm
					}
				}
			}
		}
	}
	t.Fatal("no aligned pair exists; discovery broken")
	return
}

func TestAlignPair(t *testing.T) {
	m := tinyMachine(41)
	trojan, tg := discoverOn(t, m, 0, 0, 24, 41)
	spy, sg := discoverOn(t, m, 1, 0, 24, 42)
	te, seMatch, seMiss := alignedGroundTruth(t, trojan, spy, tg, sg)

	avg, mapped, err := AlignPair(trojan, spy, te, seMatch, DefaultAlignConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !mapped {
		t.Errorf("matching pair not detected (avg %.0f)", avg)
	}
	avg, mapped, err = AlignPair(trojan, spy, te, seMiss, DefaultAlignConfig())
	if err != nil {
		t.Fatal(err)
	}
	if mapped {
		t.Errorf("mismatched pair reported aligned (avg %.0f)", avg)
	}
}

func TestAlignSweepAndChannels(t *testing.T) {
	m := tinyMachine(43)
	trojan, tg := discoverOn(t, m, 0, 0, 24, 43)
	spy, sg := discoverOn(t, m, 1, 0, 24, 44)
	tsets := trojan.AllEvictionSets(tg, 4)
	ssets := spy.AllEvictionSets(sg, 4)
	if len(tsets) < 4 || len(ssets) != 64 {
		t.Fatalf("sets: trojan %d, spy %d", len(tsets), len(ssets))
	}
	idx, avgs, err := AlignSweep(trojan, spy, tsets[0], ssets, 3)
	if err != nil {
		t.Fatal(err)
	}
	if idx < 0 {
		t.Fatal("sweep found no match")
	}
	if got, want := trueSet(t, spy, ssets[idx].Lines[0]), trueSet(t, trojan, tsets[0].Lines[0]); got != want {
		t.Errorf("sweep matched physical set %d, trojan uses %d (avg %.0f)", got, want, avgs[idx])
	}

	pairs, err := AlignChannels(trojan, spy, tsets, ssets, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 4 {
		t.Fatalf("aligned %d pairs", len(pairs))
	}
	for _, p := range pairs {
		tp := trueSet(t, trojan, p.TE.Lines[0])
		sp := trueSet(t, spy, p.SE.Lines[0])
		if tp != sp {
			t.Errorf("pair misaligned: trojan set %d vs spy set %d", tp, sp)
		}
	}
}

func TestBitsRoundTrip(t *testing.T) {
	msg := []byte("Hello! How are you?")
	bits := BytesToBits(msg)
	if len(bits) != len(msg)*8 {
		t.Fatalf("bit count %d", len(bits))
	}
	if got := BitsToBytes(bits); !bytes.Equal(got, msg) {
		t.Fatalf("round trip: %q", got)
	}
	f := func(data []byte) bool {
		return bytes.Equal(BitsToBytes(BytesToBits(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinSplitMerge(t *testing.T) {
	bits := []byte{1, 0, 1, 1, 0, 0, 1, 0, 1, 1}
	for _, n := range []int{1, 2, 3, 4} {
		streams := splitRoundRobin(bits, n)
		if got := mergeRoundRobin(streams, len(bits)); !bytes.Equal(got, bits) {
			t.Errorf("n=%d: merge = %v", n, got)
		}
	}
}

func TestCovertChannelRoundTrip(t *testing.T) {
	m := tinyMachine(51)
	trojan, tg := discoverOn(t, m, 0, 0, 24, 51)
	spy, sg := discoverOn(t, m, 1, 0, 24, 52)
	pairs, err := AlignChannels(trojan, spy,
		trojan.AllEvictionSets(tg, 4), spy.AllEvictionSets(sg, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewChannel(trojan, spy, pairs, DefaultCovertConfig())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("Hi GPU")
	tx, err := ch.Transmit(msg)
	if err != nil {
		t.Fatal(err)
	}
	if rate := tx.ErrorRate(); rate > 0.05 {
		t.Errorf("error rate %.3f too high in quiet machine", rate)
	}
	if got := BitsToBytes(tx.ReceivedBits); !bytes.Equal(got, msg) && tx.BitErrors == 0 {
		t.Errorf("zero errors but message mismatch: %q", got)
	}
	if tx.BandwidthMBps() <= 0 {
		t.Error("bandwidth not positive")
	}
	if len(tx.Trace) == 0 {
		t.Error("no Fig. 10 trace recorded")
	}
}

func TestChannelValidation(t *testing.T) {
	if _, err := NewChannel(nil, nil, nil, CovertConfig{}); err == nil {
		t.Error("empty pair list accepted")
	}
}

func TestMonitorSeesVictimSets(t *testing.T) {
	m := tinyMachine(61)
	spy, sg := discoverOn(t, m, 1, 0, 24, 61)
	sets := spy.AllEvictionSets(sg, 4)

	// Victim on GPU0 hammers one specific line repeatedly; its true
	// set must light up in the memorygram while others stay dark.
	victim := cudart.MustNewProcess(m, 0, 62)
	vbuf, err := victim.Malloc(8 * arch.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	vpa, _ := victim.Translate(vbuf)
	victimSet := m.Device(0).L2().SetIndex(vpa)

	stop := false
	res, err := spy.MonitorConcurrent(sets, MonitorOptions{Epochs: 12, StopEarly: func() bool { return stop }}, func() error {
		return victim.Launch("victim", 0, func(k *cudart.Kernel) {
			defer func() { stop = true }()
			for i := 0; i < 3000; i++ {
				k.TouchCG(vbuf)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	totals := res.SetTotals()
	// Find the monitored set index corresponding to the victim's set.
	hot := -1
	for si, es := range sets {
		if trueSet(t, spy, es.Lines[0]) == victimSet {
			hot = si
		}
	}
	if hot < 0 {
		t.Fatal("victim set not covered by spy sets")
	}
	if totals[hot] == 0 {
		t.Fatalf("victim activity invisible: totals[%d]=0", hot)
	}
	for si, tot := range totals {
		if si != hot && tot > totals[hot]/2 {
			t.Errorf("idle set %d shows %d misses (hot set has %d)", si, tot, totals[hot])
		}
	}
	if res.AvgMissesPerSet() <= 0 {
		t.Error("average misses not positive")
	}
	if len(res.EpochTotals()) != 12 {
		t.Errorf("epoch totals length %d", len(res.EpochTotals()))
	}
}

func TestMonitorValidation(t *testing.T) {
	m := tinyMachine(63)
	spy, sg := discoverOn(t, m, 1, 0, 24, 63)
	sets := spy.AllEvictionSets(sg, 4)
	if _, err := spy.MonitorConcurrent(nil, MonitorOptions{Epochs: 4}, nil); err == nil {
		t.Error("no sets accepted")
	}
	if _, err := spy.MonitorConcurrent(sets, MonitorOptions{Epochs: 0}, nil); err == nil {
		t.Error("zero epochs accepted")
	}
}

func TestMonitorQuietMachineIsDark(t *testing.T) {
	m := tinyMachine(64)
	spy, sg := discoverOn(t, m, 1, 0, 24, 64)
	sets := spy.AllEvictionSets(sg, 4)
	res, err := spy.MonitorConcurrent(sets, MonitorOptions{Epochs: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, tot := range res.SetTotals() {
		total += tot
	}
	if total != 0 {
		t.Errorf("quiet machine shows %d misses", total)
	}
}

func TestMultiChannelTwoSpies(t *testing.T) {
	// Trojan on GPU0; spies on GPU1 and GPU2 (both NVLink-connected to
	// GPU0 in the DGX-1 quad), each carrying half the bit stream.
	m := tinyMachine(91)
	trojan, tg := discoverOn(t, m, 0, 0, 24, 91)
	spy1, sg1 := discoverOn(t, m, 1, 0, 24, 92)
	spy2, sg2 := discoverOn(t, m, 2, 0, 24, 93)
	tsets := trojan.AllEvictionSets(tg, 4)
	p1, err := AlignChannels(trojan, spy1, tsets[:2], spy1.AllEvictionSets(sg1, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := AlignChannels(trojan, spy2, tsets[2:4], spy2.AllEvictionSets(sg2, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := NewMultiChannel(trojan, []Branch{{Spy: spy1, Pairs: p1}, {Spy: spy2, Pairs: p2}}, DefaultCovertConfig())
	if err != nil {
		t.Fatal(err)
	}
	if mc.TotalSets() != 4 {
		t.Fatalf("TotalSets = %d", mc.TotalSets())
	}
	msg := []byte("multi-GPU fan-out")
	tx, err := mc.Transmit(msg)
	if err != nil {
		t.Fatal(err)
	}
	if tx.ErrorRate() > 0.05 {
		t.Errorf("multichannel error rate %.3f", tx.ErrorRate())
	}
	if got := BitsToBytes(tx.ReceivedBits); tx.BitErrors == 0 && string(got) != string(msg) {
		t.Errorf("message mismatch: %q", got)
	}
}

func TestMultiChannelValidation(t *testing.T) {
	m := tinyMachine(94)
	trojan, _ := discoverOn(t, m, 0, 0, 24, 94)
	if _, err := NewMultiChannel(trojan, nil, CovertConfig{}); err == nil {
		t.Error("no branches accepted")
	}
	if _, err := NewMultiChannel(trojan, []Branch{{}}, CovertConfig{}); err == nil {
		t.Error("empty branch accepted")
	}
	// Spy targeting the wrong GPU must be rejected.
	spyWrong, wg := discoverOn(t, m, 2, 3, 24, 95)
	pairs := []AlignedPair{{TE: EvictionSet{Lines: []arch.VA{0}}, SE: spyWrong.AllEvictionSets(wg, 4)[0]}}
	if _, err := NewMultiChannel(trojan, []Branch{{Spy: spyWrong, Pairs: pairs}}, CovertConfig{}); err == nil {
		t.Error("mismatched spy target accepted")
	}
}
