// The cross-GPU covert channel (Sec. IV, Figs. 8-10). A trojan on GPU
// A and a spy on GPU B communicate through Prime+Probe contention on
// GPU A's L2: the spy keeps its aligned sets primed and probes them
// continuously; for each bit period the trojan either hammers its own
// aligned set ('1', evicting the spy's lines so the spy's probes miss)
// or spins on heavy arithmetic ('0', leaving the spy's lines resident
// so its probes hit). Multiple aligned set pairs carry bits in
// parallel, one thread block per set on each side.
package core

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/cudart"
)

// CovertConfig shapes a transmission.
type CovertConfig struct {
	// BitPeriod is the epoch length per bit in cycles. It must give
	// the spy a few probes per epoch; DefaultCovertConfig picks a
	// value matched to the simulator's probe costs.
	BitPeriod arch.Cycles
	// GuardFrac is the fraction of each epoch the decoder discards at
	// the boundary (transition smear).
	GuardFrac float64
}

// DefaultCovertConfig returns transmission parameters tuned the way
// the paper tunes its "controlling parameters": the spy fits ~3
// probes per bit period.
func DefaultCovertConfig() CovertConfig {
	return CovertConfig{BitPeriod: 6000, GuardFrac: 0.18}
}

// probeSample is one spy probe observation.
type probeSample struct {
	t      arch.Cycles // spy clock at probe completion
	misses int         // lines classified as misses
	avgLat float64     // mean per-line latency (the Fig. 10 y-axis)
}

// Transmission is the outcome of one covert message transfer.
type Transmission struct {
	SentBits     []byte // ground truth, one bit per element
	ReceivedBits []byte
	BitErrors    int
	// Duration is the spy-side time from first to last sample.
	Duration arch.Cycles
	// Trace is the set-0 spy probe series (time, mean latency),
	// which reproduces Fig. 10's waveform.
	Trace []TracePoint
	// ClockHz converts Duration to seconds; filled from the machine's
	// profile by Transmit (0 falls back to the P100 clock).
	ClockHz uint64
}

// TracePoint is one point of the Fig. 10 waveform.
type TracePoint struct {
	T      arch.Cycles
	AvgLat float64
}

// ErrorRate returns the fraction of bits received incorrectly.
func (tx *Transmission) ErrorRate() float64 {
	if len(tx.SentBits) == 0 {
		return 0
	}
	return float64(tx.BitErrors) / float64(len(tx.SentBits))
}

// BandwidthMBps returns the achieved bandwidth in megabytes per
// second of simulated time at the transmitting machine's clock.
func (tx *Transmission) BandwidthMBps() float64 {
	if tx.Duration == 0 {
		return 0
	}
	hz := tx.ClockHz
	if hz == 0 {
		hz = arch.ClockHz
	}
	bytes := float64(len(tx.SentBits)) / 8
	return bytes / 1e6 / (float64(tx.Duration) / float64(hz))
}

// Channel is an established covert channel: aligned set pairs plus
// the processes at both ends.
type Channel struct {
	Trojan *Attacker
	Spy    *Attacker
	Pairs  []AlignedPair
	Cfg    CovertConfig
}

// NewChannel wires up a channel over the given aligned pairs.
func NewChannel(trojan, spy *Attacker, pairs []AlignedPair, cfg CovertConfig) (*Channel, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("core: channel needs at least one aligned pair")
	}
	if cfg.BitPeriod == 0 {
		cfg = DefaultCovertConfig()
	}
	return &Channel{Trojan: trojan, Spy: spy, Pairs: pairs, Cfg: cfg}, nil
}

// BytesToBits expands a message into bits, MSB first.
func BytesToBits(msg []byte) []byte {
	bits := make([]byte, 0, len(msg)*8)
	for _, b := range msg {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (b>>uint(i))&1)
		}
	}
	return bits
}

// BitsToBytes packs bits (MSB first) into bytes, truncating any
// partial trailing byte.
func BitsToBytes(bits []byte) []byte {
	out := make([]byte, 0, len(bits)/8)
	for i := 0; i+8 <= len(bits); i += 8 {
		var b byte
		for j := 0; j < 8; j++ {
			b = b<<1 | bits[i+j]&1
		}
		out = append(out, b)
	}
	return out
}

// splitRoundRobin deals bits across n streams: stream s gets bits
// s, s+n, s+2n, ...
func splitRoundRobin(bits []byte, n int) [][]byte {
	streams := make([][]byte, n)
	for i, b := range bits {
		streams[i%n] = append(streams[i%n], b)
	}
	return streams
}

// mergeRoundRobin inverts splitRoundRobin for total bits.
func mergeRoundRobin(streams [][]byte, total int) []byte {
	out := make([]byte, total)
	for s, st := range streams {
		for j, b := range st {
			idx := j*len(streams) + s
			if idx < total {
				out[idx] = b
			}
		}
	}
	return out
}

// Transmit sends msg across the channel and returns the decoded
// result with ground truth for error accounting. One trojan thread
// block and one spy thread block run per aligned pair; the bit stream
// is dealt round-robin across pairs.
func (c *Channel) Transmit(msg []byte) (*Transmission, error) {
	return c.TransmitWith(msg, nil)
}

// TransmitWith is Transmit with a hook: after the trojan and spy
// kernels are launched but before the machine runs, beforeRun is
// called with a flag that flips to true once every spy block has
// finished receiving. Concurrent workloads (background noise, the
// Sec. VI experiments) key their termination off that flag so the
// machine run can complete.
func (c *Channel) TransmitWith(msg []byte, beforeRun func(stop *bool) error) (*Transmission, error) {
	bits := BytesToBits(msg)
	if len(bits) == 0 {
		return nil, fmt.Errorf("core: empty message")
	}
	n := len(c.Pairs)
	streams := splitRoundRobin(bits, n)
	T := c.Cfg.BitPeriod

	samples := make([][]probeSample, n)
	boundary := c.Spy.Thr.Boundary(c.Spy.Remote())
	stop := new(bool)
	spiesLeft := n

	for si := range c.Pairs {
		si := si
		pair := c.Pairs[si]
		stream := streams[si]

		// Trojan sender: per bit epoch, hammer the set for '1' or
		// burn heavy arithmetic for '0'. The paper's trojan uses one
		// warp (32 threads) per thread block.
		err := c.Trojan.Proc.Launch(fmt.Sprintf("trojan-set%d", si), 0, func(k *cudart.Kernel) {
			for bi, b := range stream {
				epochEnd := arch.Cycles(bi+1) * T
				for k.Now() < epochEnd {
					if b == 1 {
						k.ProbeSet(pair.TE.Lines)
						k.Busy(2)
					} else {
						k.BusyHeavy(8)
					}
				}
			}
		})
		if err != nil {
			return nil, err
		}

		// Spy receiver: the paper's spy block runs 1024 threads — one
		// warp probes while the rest drain the shared-memory sample
		// buffer to global memory; the 32 KB shared buffer is its
		// occupancy cost.
		endTime := arch.Cycles(len(stream))*T + T/2
		err = c.Spy.Proc.Launch(fmt.Sprintf("spy-set%d", si), arch.MaxSharedMemPerBlock, func(k *cudart.Kernel) {
			defer func() {
				spiesLeft--
				if spiesLeft == 0 {
					*stop = true
				}
			}()
			k.ProbeSet(pair.SE.Lines) // initial prime
			for k.Now() < endTime {
				lats, _ := k.ProbeSet(pair.SE.Lines)
				misses := 0
				var sum float64
				for _, l := range lats {
					if float64(l) > boundary {
						misses++
					}
					sum += float64(l)
				}
				k.SharedWrite() // record into shared buffer
				samples[si] = append(samples[si], probeSample{
					t:      k.Now(),
					misses: misses,
					avgLat: sum / float64(len(lats)),
				})
			}
		})
		if err != nil {
			return nil, err
		}
	}
	if beforeRun != nil {
		if err := beforeRun(stop); err != nil {
			return nil, err
		}
	}
	c.Trojan.m.Run()

	// Decode each stream: majority of per-probe miss-count decisions
	// within the epoch's guarded window.
	decoded := make([][]byte, n)
	var lastSample arch.Cycles
	for si := range c.Pairs {
		stream := streams[si]
		decoded[si] = make([]byte, len(stream))
		guard := arch.Cycles(float64(T) * c.Cfg.GuardFrac)
		for bi := range stream {
			lo, hi := arch.Cycles(bi)*T+guard, arch.Cycles(bi+1)*T
			ones, zeros := 0, 0
			for _, s := range samples[si] {
				if s.t < lo || s.t >= hi {
					continue
				}
				if s.misses*2 > len(c.Pairs[si].SE.Lines) {
					ones++
				} else {
					zeros++
				}
			}
			if ones > zeros {
				decoded[si][bi] = 1
			}
		}
		if k := len(samples[si]); k > 0 && samples[si][k-1].t > lastSample {
			lastSample = samples[si][k-1].t
		}
	}

	rx := mergeRoundRobin(decoded, len(bits))
	tx := &Transmission{
		SentBits: bits, ReceivedBits: rx, Duration: lastSample,
		ClockHz: c.Trojan.m.Profile().Lat.ClockHz,
	}
	for i := range bits {
		if bits[i] != rx[i] {
			tx.BitErrors++
		}
	}
	for _, s := range samples[0] {
		tx.Trace = append(tx.Trace, TracePoint{T: s.t, AvgLat: s.avgLat})
	}
	return tx, nil
}
