// Eviction-set discovery: the Sec. III-B reverse engineering. The
// attacker allocates a buffer on the target GPU and, using timing
// alone, partitions its pages into conflict groups, builds one
// eviction set per (group, page-offset) pair, eliminates aliases, and
// derives the Table I cache geometry.
package core

import (
	"fmt"
	"sort"

	"spybox/internal/arch"
	"spybox/internal/cudart"
	"spybox/internal/sim"
)

// EvictionSet is a collection of attacker virtual addresses whose
// lines hash to one physical cache set. Group and Offset are the
// attacker-local name of the set: which conflict group of pages it
// came from and at which line offset within the page. The attacker
// never learns the physical set index.
type EvictionSet struct {
	Lines  []arch.VA
	Group  int
	Offset int
}

// Attacker is one malicious process together with its probe buffer on
// the target GPU and the timing thresholds from the offline
// characterization.
type Attacker struct {
	Proc   *cudart.Process
	Target arch.DeviceID
	Buf    arch.VA
	Pages  int
	Thr    Thresholds

	// ChunkSize is the span of consecutive cache indexing: the cache's
	// page-hash granularity. On the P100 it equals the 64 KB VM page;
	// the attacker learns it from the consecutive-indexing observation
	// (Sec. III-B). All discovery operates chunk-wise.
	ChunkSize     int
	LinesPerChunk int
	// LineSize is the target cache's line size in bytes (profile-
	// dependent; 128 B on every machine the paper touches).
	LineSize int

	m *sim.Machine
}

// Machine returns the box the attacker runs on.
func (a *Attacker) Machine() *sim.Machine { return a.m }

// Ways returns the associativity of the target GPU's L2 — the ground
// truth the machine profile fixes. Attack phases that come after
// reverse engineering (the paper's "one time, offline" step) read it
// from here instead of a package constant so the same code ports
// across architecture profiles.
func (a *Attacker) Ways() int {
	return a.m.Device(a.Target).L2().Config().Ways
}

// NewAttacker creates a process on dev, allocates pages*64KB on
// target (enabling peer access when target is remote), and returns
// the ready attacker. More pages make conflict groups larger and the
// discovery more robust; 256 is a good default against the P100
// geometry (each of the 4 hash regions collects ~64 pages).
func NewAttacker(m *sim.Machine, dev, target arch.DeviceID, pages int, thr Thresholds, seed uint64) (*Attacker, error) {
	if pages < 2 {
		return nil, fmt.Errorf("core: need at least 2 pages, got %d", pages)
	}
	proc, err := cudart.NewProcess(m, dev, seed)
	if err != nil {
		return nil, err
	}
	if dev != target {
		if err := proc.EnablePeerAccess(target); err != nil {
			return nil, err
		}
	}
	cacheCfg := m.Device(target).L2().Config()
	buf, err := proc.MallocOnDevice(target, uint64(pages)*uint64(cacheCfg.PageSize))
	if err != nil {
		return nil, err
	}
	return &Attacker{
		Proc:          proc,
		Target:        target,
		Buf:           buf,
		Pages:         pages,
		Thr:           thr,
		ChunkSize:     cacheCfg.PageSize,
		LinesPerChunk: cacheCfg.LinesPerPage(),
		LineSize:      cacheCfg.LineSize,
		m:             m,
	}, nil
}

// Remote reports whether the attacker reaches its buffer over NVLink.
func (a *Attacker) Remote() bool { return a.Proc.Device() != a.Target }

// LineVA returns the address of line lineOff within page (chunk).
func (a *Attacker) LineVA(page, lineOff int) arch.VA {
	return a.Buf + arch.VA(page*a.ChunkSize+lineOff*a.LineSize)
}

// isMiss classifies a measured latency for this attacker's locality.
func (a *Attacker) isMiss(lat arch.Cycles) bool { return a.Thr.IsMiss(lat, a.Remote()) }

// trialProbe runs one conflict trial: load the target line (caching
// it), access every chase line as a warp probe, then time the target
// again. It reports whether the target was evicted. This is the
// batched production form of Algorithm 1's inner loop; see
// Algorithm1Chase for the faithful sequential pointer-chase version.
func (a *Attacker) trialProbe(target arch.VA, chase []arch.VA) (evicted bool, err error) {
	var lat arch.Cycles
	err = a.Proc.Launch("evset-trial", 0, func(k *cudart.Kernel) {
		k.TouchCG(target)
		if len(chase) > 0 {
			k.ProbeSet(chase)
		}
		lat = k.TouchCG(target)
		k.SharedWrite()
	})
	if err != nil {
		return false, err
	}
	a.m.Run()
	return a.isMiss(lat), nil
}

// trialVotes runs trialProbe an odd number of times and majority-votes
// to shrug off timing jitter near the threshold.
func (a *Attacker) trialVotes(target arch.VA, chase []arch.VA, votes int) (bool, error) {
	miss := 0
	for v := 0; v < votes; v++ {
		ev, err := a.trialProbe(target, chase)
		if err != nil {
			return false, err
		}
		if ev {
			miss++
		}
	}
	return miss*2 > votes, nil
}

// Algorithm1Chase is the faithful Sec. III-B Algorithm 1 kernel: a
// data-dependent pointer chase. The chain is written into the buffer
// itself, the target is timed before and after traversing
// numOfElements links, and both times are buffered in shared memory
// exactly as in the paper's listing. It returns the two target
// latencies.
func (a *Attacker) Algorithm1Chase(target arch.VA, chainOffsets []uint64, numOfElements int) (first, second arch.Cycles, err error) {
	if numOfElements > len(chainOffsets) {
		numOfElements = len(chainOffsets)
	}
	// Host-side chain setup (device-side in the paper; identical cache
	// effect here because the chase itself reloads every line).
	for i := 0; i < len(chainOffsets); i++ {
		next := chainOffsets[(i+1)%len(chainOffsets)]
		a.Proc.WriteU64(a.Buf+arch.VA(chainOffsets[i]), next)
	}
	err = a.Proc.Launch("algorithm1", 0, func(k *cudart.Kernel) {
		_, lat := k.LdCG(target) // line 2-5: timed target access
		k.SharedWrite()          // line 7: sharedTimeBuff[0]
		first = lat
		idx := chainOffsets[0]
		for i := 0; i < numOfElements; i++ { // line 9-14: pointer chase
			v, _ := k.LdCG(a.Buf + arch.VA(idx))
			k.Busy(1) // line 12: dummy += nxtIdx
			idx = v
		}
		_, lat = k.LdCG(target) // line 16-19: timed re-access
		k.SharedWrite()         // line 21: sharedTimeBuff[1]
		second = lat
	})
	if err != nil {
		return 0, 0, err
	}
	a.m.Run()
	return first, second, nil
}

// PageGroups is the result of conflict discovery: pages of the
// attacker's buffer partitioned by which hash region their lines land
// in. Pages in one group conflict pairwise at every line offset.
type PageGroups struct {
	Groups [][]int // page indices, each group sorted ascending
}

// GroupOf returns the index of the group containing page, or -1.
func (g *PageGroups) GroupOf(page int) int {
	for gi, grp := range g.Groups {
		for _, p := range grp {
			if p == page {
				return gi
			}
		}
	}
	return -1
}

// DiscoverPageGroups partitions the buffer's pages into conflict
// groups using timing only. It exploits the page-consecutive indexing
// the paper observes: it suffices to classify pages by their offset-0
// lines, because two pages either conflict at every offset or at none.
//
// For each still-unclassified target page the search runs in two
// phases. Phase A is Algorithm 1's remove-and-repeat: chase through
// the offset-0 lines of all unclassified pages; while the target gets
// evicted, binary-search the shortest evicting prefix — its last
// element is a conflicting page — remove it and repeat. Phase A ends
// with (ways-1) conflicting pages still hiding in the chase, so Phase
// B tests every remaining page p individually by chasing (ways-1)
// known group members plus p.
func (a *Attacker) DiscoverPageGroups(ways int) (*PageGroups, error) {
	if ways < 2 {
		return nil, fmt.Errorf("core: implausible associativity %d", ways)
	}
	unclassified := make([]int, a.Pages)
	for i := range unclassified {
		unclassified[i] = i
	}
	var groups [][]int

	for len(unclassified) > 0 {
		targetPage := unclassified[0]
		rest := append([]int(nil), unclassified[1:]...)
		target := a.LineVA(targetPage, 0)
		group := []int{targetPage}

		// Phase A: remove-and-repeat over the full chase.
		chase := append([]int(nil), rest...)
		for {
			full := a.pagesToVAs(chase, 0)
			evicted, err := a.trialVotes(target, full, 3)
			if err != nil {
				return nil, err
			}
			if !evicted {
				break
			}
			// Binary search the minimal evicting prefix length.
			lo, hi := 1, len(chase)
			for lo < hi {
				mid := (lo + hi) / 2
				ev, err := a.trialVotes(target, a.pagesToVAs(chase[:mid], 0), 3)
				if err != nil {
					return nil, err
				}
				if ev {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			conflicter := chase[lo-1]
			group = append(group, conflicter)
			chase = append(chase[:lo-1], chase[lo:]...)
		}

		// Phase B: with >= ways-1 known members we can test the rest
		// individually. If phase A found fewer (tiny buffers), the
		// leftover pages stay unclassified for a later target.
		if len(group) >= ways {
			helpers := a.pagesToVAs(group[1:ways], 0)
			for _, p := range chase {
				probe := append(append([]arch.VA(nil), helpers...), a.LineVA(p, 0))
				evicted, err := a.trialVotes(target, probe, 3)
				if err != nil {
					return nil, err
				}
				if evicted {
					group = append(group, p)
				}
			}
		}

		sort.Ints(group)
		groups = append(groups, group)
		unclassified = subtract(unclassified, group)
	}

	// Consolidation pass: when a conflict group holds just under
	// 2*ways-1 pages, phase A under-collects and the remainder
	// fragments into undersized groups (in the worst case singletons).
	// Absorb stragglers back:
	//
	//   - a group with >= ways members tests a candidate directly
	//     (target = member 0, chase = members 1..ways-1 plus the
	//     candidate: exactly `ways` distinct conflicting lines evict
	//     the target iff the candidate belongs);
	//   - a group with exactly ways-1 members bootstraps with a PAIR
	//     of candidates (target = candidate 1, chase = all ways-1
	//     members plus candidate 2: eviction requires both candidates
	//     to belong, which is exactly the fragmentation situation).
	//
	// Repeat until stable; once a ways-1 group absorbs one page it
	// graduates to the direct test.
	for changed := true; changed; {
		changed = false
		sort.Slice(groups, func(i, j int) bool { return len(groups[i]) > len(groups[j]) })
		for li := 0; li < len(groups); li++ {
			large := groups[li]
			// Collect the straggler pool: pages of smaller groups.
			var pool []int
			for ui := li + 1; ui < len(groups); ui++ {
				if len(groups[ui]) < ways {
					pool = append(pool, groups[ui]...)
				}
			}
			if len(pool) == 0 {
				continue
			}
			var absorbed []int
			if len(large) >= ways {
				target := a.LineVA(large[0], 0)
				helpers := a.pagesToVAs(large[1:ways], 0)
				for _, p := range pool {
					probe := append(append([]arch.VA(nil), helpers...), a.LineVA(p, 0))
					evicted, err := a.trialVotes(target, probe, 3)
					if err != nil {
						return nil, err
					}
					if evicted {
						absorbed = append(absorbed, p)
					}
				}
			} else {
				// m < ways members: bootstrap with k = ways - m pool
				// candidates. The target (another candidate) evicts
				// only if it AND every chosen candidate conflict with
				// the group, so a success absorbs them all soundly.
				// For k=1 all ordered pairs are tried (pools can
				// interleave stragglers of different regions); larger
				// k uses cyclic windows, which suffices because deep
				// fragmentation pools are region-pure in practice.
				k := ways - len(large)
				members := a.pagesToVAs(large, 0)
				tryBoot := func(target int, extras []int) (bool, error) {
					probe := append(append([]arch.VA(nil), members...), a.pagesToVAs(extras, 0)...)
					return a.trialVotes(a.LineVA(target, 0), probe, 3)
				}
				if k == 1 {
					for i := 0; i < len(pool) && len(absorbed) == 0; i++ {
						for j := 0; j < len(pool) && len(absorbed) == 0; j++ {
							if i == j {
								continue
							}
							ok, err := tryBoot(pool[i], pool[j:j+1])
							if err != nil {
								return nil, err
							}
							if ok {
								absorbed = append(absorbed, pool[i], pool[j])
							}
						}
					}
				} else if len(pool) > k {
					for r := 0; r < len(pool) && len(absorbed) == 0; r++ {
						rot := make([]int, 0, len(pool))
						rot = append(rot, pool[r:]...)
						rot = append(rot, pool[:r]...)
						ok, err := tryBoot(rot[0], rot[1:1+k])
						if err != nil {
							return nil, err
						}
						if ok {
							absorbed = append(absorbed, rot[:1+k]...)
						}
					}
				}
			}
			if len(absorbed) > 0 {
				changed = true
				groups[li] = append(groups[li], absorbed...)
				sort.Ints(groups[li])
				drop := make(map[int]bool, len(absorbed))
				for _, p := range absorbed {
					drop[p] = true
				}
				var rebuilt [][]int
				for gi, g := range groups {
					if gi == li {
						rebuilt = append(rebuilt, g)
						continue
					}
					var kept []int
					for _, p := range g {
						if !drop[p] {
							kept = append(kept, p)
						}
					}
					if len(kept) > 0 {
						rebuilt = append(rebuilt, kept)
					}
				}
				groups = rebuilt
				break // restart the scan with updated groups
			}
		}
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i][0] < groups[j][0] })
	return &PageGroups{Groups: groups}, nil
}

// pagesToVAs maps page indices to their line addresses at lineOff.
func (a *Attacker) pagesToVAs(pages []int, lineOff int) []arch.VA {
	out := make([]arch.VA, len(pages))
	for i, p := range pages {
		out[i] = a.LineVA(p, lineOff)
	}
	return out
}

// subtract returns xs without any element of ys, preserving order.
func subtract(xs, ys []int) []int {
	drop := make(map[int]bool, len(ys))
	for _, y := range ys {
		drop[y] = true
	}
	out := xs[:0]
	for _, x := range xs {
		if !drop[x] {
			out = append(out, x)
		}
	}
	return out
}

// EvictionSetFor builds the eviction set for (group, lineOff): lines
// at that offset in the first `ways` pages of the group.
func (a *Attacker) EvictionSetFor(groups *PageGroups, group, lineOff, ways int) (EvictionSet, error) {
	if group < 0 || group >= len(groups.Groups) {
		return EvictionSet{}, fmt.Errorf("core: no conflict group %d", group)
	}
	g := groups.Groups[group]
	if len(g) < ways {
		return EvictionSet{}, fmt.Errorf("core: group %d has only %d pages, need %d", group, len(g), ways)
	}
	if lineOff < 0 || lineOff >= a.LinesPerChunk {
		return EvictionSet{}, fmt.Errorf("core: line offset %d outside page", lineOff)
	}
	return EvictionSet{
		Lines:  a.pagesToVAs(g[:ways], lineOff),
		Group:  group,
		Offset: lineOff,
	}, nil
}

// AllEvictionSets enumerates one eviction set per unique cache set the
// attacker can name: every (group, offset) pair for groups large
// enough. With a 256-page buffer against the P100 this yields all
// 2048 physical sets.
func (a *Attacker) AllEvictionSets(groups *PageGroups, ways int) []EvictionSet {
	var out []EvictionSet
	for gi, g := range groups.Groups {
		if len(g) < ways {
			continue
		}
		for off := 0; off < a.LinesPerChunk; off++ {
			es, err := a.EvictionSetFor(groups, gi, off, ways)
			if err == nil {
				out = append(out, es)
			}
		}
	}
	return out
}

// Aliased tests whether two discovered eviction sets map to the same
// physical cache set (the Fig. 6 problem). It probes the union and
// then re-probes s1: if the two sets alias, 2*ways lines thrash one
// set and the re-probe sees mostly misses; if they are distinct sets,
// both fit and the re-probe hits.
func (a *Attacker) Aliased(s1, s2 EvictionSet) (bool, error) {
	union := append(append([]arch.VA(nil), s1.Lines...), s2.Lines...)
	var lats []arch.Cycles
	err := a.Proc.Launch("alias-check", 0, func(k *cudart.Kernel) {
		k.ProbeSet(union)
		k.ProbeSet(union) // settle LRU state
		lats, _ = k.ProbeSet(s1.Lines)
		k.SharedWrite()
	})
	if err != nil {
		return false, err
	}
	a.m.Run()
	misses := 0
	for _, l := range lats {
		if a.isMiss(l) {
			misses++
		}
	}
	return misses*2 > len(lats), nil
}

// DeduplicateSets drops any eviction set aliasing an earlier one,
// returning sets that cover distinct physical cache sets. The paper
// performs this test for every newly discovered set; with the
// page-group construction aliases only arise if two groups were
// wrongly split, so this doubles as a discovery validity check.
func (a *Attacker) DeduplicateSets(sets []EvictionSet) ([]EvictionSet, error) {
	// Same group+offset pairs are unique by construction; aliases can
	// only occur across groups at equal offsets. Compare group
	// representatives instead of all pairs to keep this O(groups^2).
	type key struct{ group, off int }
	reps := make(map[int]EvictionSet) // group -> offset-0 set
	aliasedGroups := make(map[int]bool)
	var groupsSeen []int
	for _, s := range sets {
		if s.Offset != 0 {
			continue
		}
		if _, ok := reps[s.Group]; ok {
			continue
		}
		for _, prev := range groupsSeen {
			al, err := a.Aliased(reps[prev], s)
			if err != nil {
				return nil, err
			}
			if al && !aliasedGroups[prev] {
				aliasedGroups[s.Group] = true
				break
			}
		}
		reps[s.Group] = s
		if !aliasedGroups[s.Group] {
			groupsSeen = append(groupsSeen, s.Group)
		}
	}
	var out []EvictionSet
	seen := make(map[key]bool)
	for _, s := range sets {
		k := key{s.Group, s.Offset}
		if aliasedGroups[s.Group] || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, s)
	}
	return out, nil
}
