// The faithful, unoptimized Algorithm 1 discovery loop: a sequential
// pointer chase with remove-and-repeat, exactly as Sec. III-B
// describes it. Production code uses the page-accelerated
// DiscoverPageGroups; this version exists for fidelity, for the
// probe-parallelism ablation, and because the paper's own text is the
// specification it is tested against.
package core

import (
	"fmt"

	"spybox/internal/arch"
)

// FindEvictionSetNaive discovers one eviction set for the target line
// using only Algorithm 1 semantics: chase through candidate lines
// (sequential, data-dependent loads), detect the target's eviction
// from its re-access time, attribute it to the most recently added
// element by shrinking the chase, remove that element into the set,
// and repeat until the chase no longer evicts. candidates are byte
// offsets into the attacker's buffer; the returned offsets all
// conflict with the target.
//
// The cost is O(found * log(n)) full chases; on the real 4 MB cache
// the paper additionally skips addresses (their "optimization
// methodologies"), which DiscoverPageGroups generalizes.
func (a *Attacker) FindEvictionSetNaive(target arch.VA, candidates []uint64) ([]uint64, error) {
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: no candidate addresses")
	}
	chase := append([]uint64(nil), candidates...)
	var conflicters []uint64

	evicts := func(prefix int) (bool, error) {
		// Majority vote of 3 sequential pointer-chase trials.
		miss := 0
		for v := 0; v < 3; v++ {
			_, second, err := a.Algorithm1Chase(target, chase[:prefix], prefix)
			if err != nil {
				return false, err
			}
			if a.isMiss(second) {
				miss++
			}
		}
		return miss >= 2, nil
	}

	for len(chase) > 0 {
		full, err := evicts(len(chase))
		if err != nil {
			return nil, err
		}
		if !full {
			break
		}
		// Find the minimal evicting prefix; its last element is the
		// conflicter ("the eviction ... is caused by accessing the
		// last address that got accessed").
		lo, hi := 1, len(chase)
		for lo < hi {
			mid := (lo + hi) / 2
			ev, err := evicts(mid)
			if err != nil {
				return nil, err
			}
			if ev {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		conflicters = append(conflicters, chase[lo-1])
		chase = append(chase[:lo-1], chase[lo:]...)
	}
	if len(conflicters) == 0 {
		return nil, fmt.Errorf("core: target has no conflicters among %d candidates", len(candidates))
	}
	return conflicters, nil
}

// VerifyEvictionSet checks a discovered conflict set the way the paper
// validates its sets: re-run the chase restricted to the recorded
// addresses and confirm the target is evicted exactly when at least
// `ways` of them are chased.
func (a *Attacker) VerifyEvictionSet(target arch.VA, conflicters []uint64, ways int) (bool, error) {
	if len(conflicters) < ways {
		return false, fmt.Errorf("core: only %d conflicters, need %d", len(conflicters), ways)
	}
	// One fewer than ways must NOT evict...
	_, second, err := a.Algorithm1Chase(target, conflicters[:ways-1], ways-1)
	if err != nil {
		return false, err
	}
	if a.isMiss(second) {
		return false, nil
	}
	// ...and exactly ways must evict, reliably.
	for trial := 0; trial < 3; trial++ {
		_, second, err := a.Algorithm1Chase(target, conflicters[:ways], ways)
		if err != nil {
			return false, err
		}
		if !a.isMiss(second) {
			return false, nil
		}
	}
	return true, nil
}
