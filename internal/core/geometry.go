// Cache geometry inference: the experiments behind Table I and the
// Fig. 5 eviction-set validation, all conducted from user level with
// timing only.
package core

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/cudart"
)

// Geometry is the attacker's reconstruction of Table I.
type Geometry struct {
	LineSize   int
	Ways       int
	Sets       int
	CacheBytes int
	Policy     string // "LRU" or "randomized"
}

// String renders the geometry like the paper's Table I.
func (g Geometry) String() string {
	return fmt.Sprintf("L2: %d B total, %d sets x %d ways x %d B lines, %s replacement",
		g.CacheBytes, g.Sets, g.Ways, g.LineSize, g.Policy)
}

// InferLineSize determines the cache line size by touching the first
// byte of a fresh page and then timing an access at growing deltas: a
// hit means the delta still falls in the loaded line. Each delta uses
// a fresh, never-touched page so no eviction primitive is needed.
// Pages are consumed starting at firstFreshPage.
func (a *Attacker) InferLineSize(firstFreshPage int) (int, error) {
	delta := 16
	page := firstFreshPage
	for delta <= a.ChunkSize/2 {
		if page >= a.Pages {
			return 0, fmt.Errorf("core: ran out of fresh pages at delta %d", delta)
		}
		base := a.LineVA(page, 0)
		var lat arch.Cycles
		d := delta
		err := a.Proc.Launch("linesize", 0, func(k *cudart.Kernel) {
			k.TouchCG(base)
			lat = k.TouchCG(base + arch.VA(d))
			k.SharedWrite()
		})
		if err != nil {
			return 0, err
		}
		a.m.Run()
		if a.isMiss(lat) {
			return delta, nil // first delta landing in a new line
		}
		delta *= 2
		page++
	}
	return 0, fmt.Errorf("core: no line boundary found up to %d", a.ChunkSize/2)
}

// InferAssociativity finds the number of ways: chase k conflicting
// lines after loading a target and find the smallest k that evicts
// it. conflictPages must all belong to one conflict group; at least
// maxWays+1 pages are needed.
func (a *Attacker) InferAssociativity(conflictPages []int, maxWays int) (int, error) {
	if len(conflictPages) < maxWays+1 {
		return 0, fmt.Errorf("core: need %d conflicting pages, have %d", maxWays+1, len(conflictPages))
	}
	target := a.LineVA(conflictPages[0], 0)
	for k := 1; k <= maxWays; k++ {
		chase := a.pagesToVAs(conflictPages[1:1+k], 0)
		evicted, err := a.trialVotes(target, chase, 5)
		if err != nil {
			return 0, err
		}
		if evicted {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: no eviction up to %d ways", maxWays)
}

// InferReplacementPolicy distinguishes deterministic LRU from
// randomized replacement. It fills a set with `ways` lines in order,
// accesses one extra conflicting line, and checks which resident line
// died: under LRU it is always the oldest; under randomization the
// victim varies across trials.
func (a *Attacker) InferReplacementPolicy(conflictPages []int, ways, trials int) (string, error) {
	if len(conflictPages) < ways+2 {
		return "", fmt.Errorf("core: need %d conflicting pages, have %d", ways+2, len(conflictPages))
	}
	oldestEvicted := 0
	for tr := 0; tr < trials; tr++ {
		fill := a.pagesToVAs(conflictPages[:ways], 0)
		extra := a.LineVA(conflictPages[ways+tr%2], 0)
		var lats []arch.Cycles
		err := a.Proc.Launch("replacement", 0, func(k *cudart.Kernel) {
			for _, va := range fill { // ordered fill: element 0 is LRU
				k.TouchCG(va)
			}
			k.TouchCG(extra)
			// Probe in REVERSE order so testing younger lines first
			// cannot cascade-evict the older ones we care about.
			rev := make([]arch.VA, len(fill))
			for i := range fill {
				rev[i] = fill[len(fill)-1-i]
			}
			lats, _ = k.ProbeSet(rev)
			k.SharedWrite()
		})
		if err != nil {
			return "", err
		}
		a.m.Run()
		// lats is reversed: last element corresponds to fill[0].
		missIdx := -1
		for i := len(lats) - 1; i >= 0; i-- {
			if a.isMiss(lats[i]) {
				missIdx = len(lats) - 1 - i // index in fill order
				break
			}
		}
		if missIdx == 0 {
			oldestEvicted++
		}
	}
	if oldestEvicted == trials {
		return "LRU", nil
	}
	return "randomized", nil
}

// InferGeometry runs the complete Table I reconstruction. groups must
// come from DiscoverPageGroups; freshPages indexes the first pages
// never touched by discovery (InferLineSize needs cold lines, so
// allocate a few extra pages beyond what discovery probed, or accept
// the default line size from a prior run).
func (a *Attacker) InferGeometry(groups *PageGroups, maxWays int, freshAttacker *Attacker) (Geometry, error) {
	var g Geometry
	// Use the largest conflict group for the associativity and policy
	// experiments.
	best := 0
	for i, grp := range groups.Groups {
		if len(grp) > len(groups.Groups[best]) {
			best = i
		}
	}
	ways, err := a.InferAssociativity(groups.Groups[best], maxWays)
	if err != nil {
		return g, err
	}
	policy, err := a.InferReplacementPolicy(groups.Groups[best], ways, 7)
	if err != nil {
		return g, err
	}
	lineSize, err := freshAttacker.InferLineSize(0)
	if err != nil {
		return g, err
	}
	// Number of sets: each conflict group holds LinesPerChunk distinct
	// consecutive sets (page-consecutive indexing, which discovery
	// already leaned on), so sets = groups x lines-per-page.
	linesPerPage := a.ChunkSize / lineSize
	g = Geometry{
		LineSize: lineSize,
		Ways:     ways,
		Sets:     len(groups.Groups) * linesPerPage,
		Policy:   policy,
	}
	g.CacheBytes = g.Sets * g.Ways * g.LineSize
	return g, nil
}

// ValidationPoint is one x/y pair of the Fig. 5 sweep.
type ValidationPoint struct {
	LinesAccessed int
	TargetLat     arch.Cycles // target re-access latency
	Evicted       bool
}

// ValidateEvictionSet reproduces Fig. 5: for k = 1..maxLines it loads
// a target line, chases k lines of the conflict set, and times the
// target again. The latency staircases up exactly when k reaches the
// associativity — and stays up for every larger k — confirming the
// set is real and replacement is deterministic LRU.
func (a *Attacker) ValidateEvictionSet(conflictPages []int, maxLines int) ([]ValidationPoint, error) {
	if len(conflictPages) < maxLines+1 {
		return nil, fmt.Errorf("core: need %d conflict pages, have %d", maxLines+1, len(conflictPages))
	}
	target := a.LineVA(conflictPages[0], 0)
	points := make([]ValidationPoint, 0, maxLines)
	for k := 1; k <= maxLines; k++ {
		chase := a.pagesToVAs(conflictPages[1:1+k], 0)
		var lat arch.Cycles
		err := a.Proc.Launch("fig5", 0, func(kr *cudart.Kernel) {
			kr.TouchCG(target)
			kr.ProbeSet(chase)
			lat = kr.TouchCG(target)
			kr.SharedWrite()
		})
		if err != nil {
			return nil, err
		}
		a.m.Run()
		points = append(points, ValidationPoint{
			LinesAccessed: k,
			TargetLat:     lat,
			Evicted:       a.isMiss(lat),
		})
	}
	return points, nil
}
