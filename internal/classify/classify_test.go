package classify

import (
	"testing"

	"spybox/internal/xrand"
)

// synthetic blobs: class c centered at unit vector e_c with noise.
func blobs(n, classes, dim int, noise float64, rng *xrand.Source) []Sample {
	var out []Sample
	for i := 0; i < n; i++ {
		c := i % classes
		x := make([]float64, dim)
		for d := range x {
			x[d] = rng.Norm() * noise
		}
		x[c%dim] += 1
		out = append(out, Sample{X: x, Y: c})
	}
	return out
}

func TestSoftmaxSeparatesBlobs(t *testing.T) {
	rng := xrand.New(1)
	data := blobs(120, 4, 10, 0.1, rng)
	train, _, test := Split(data, 0.6, 0, rng)
	clf, err := TrainSoftmax(train, 4, DefaultSoftmaxConfig(), rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	conf := Evaluate(clf, test, []string{"a", "b", "c", "d"})
	if acc := conf.Accuracy(); acc < 0.95 {
		t.Fatalf("softmax accuracy %.2f on separable blobs", acc)
	}
}

func TestSoftmaxTrainAccuracy(t *testing.T) {
	rng := xrand.New(2)
	data := blobs(24, 6, 432, 0.05, rng)
	clf, err := TrainSoftmax(data, 6, DefaultSoftmaxConfig(), rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	conf := Evaluate(clf, data, []string{"a", "b", "c", "d", "e", "f"})
	if acc := conf.Accuracy(); acc < 0.99 {
		t.Fatalf("softmax cannot even fit 24 training samples: %.2f", acc)
	}
}

func TestSoftmaxValidation(t *testing.T) {
	if _, err := TrainSoftmax(nil, 2, SoftmaxConfig{}, xrand.New(1)); err == nil {
		t.Error("empty training set accepted")
	}
	bad := []Sample{{X: []float64{1}, Y: 5}}
	if _, err := TrainSoftmax(bad, 2, SoftmaxConfig{}, xrand.New(1)); err == nil {
		t.Error("out-of-range label accepted")
	}
	ragged := []Sample{{X: []float64{1, 2}, Y: 0}, {X: []float64{1}, Y: 1}}
	if _, err := TrainSoftmax(ragged, 2, SoftmaxConfig{}, xrand.New(1)); err == nil {
		t.Error("ragged dims accepted")
	}
}

func TestKNN(t *testing.T) {
	rng := xrand.New(3)
	data := blobs(60, 3, 8, 0.05, rng)
	train, _, test := Split(data, 0.7, 0, rng)
	knn, err := NewKNN(3, train)
	if err != nil {
		t.Fatal(err)
	}
	conf := Evaluate(knn, test, []string{"a", "b", "c"})
	if acc := conf.Accuracy(); acc < 0.9 {
		t.Fatalf("kNN accuracy %.2f", acc)
	}
	if _, err := NewKNN(0, train); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewKNN(1, nil); err == nil {
		t.Error("empty train accepted")
	}
}

func TestSplitFractions(t *testing.T) {
	rng := xrand.New(4)
	data := blobs(100, 2, 4, 0.1, rng)
	train, val, test := Split(data, 0.5, 0.2, rng)
	if len(train) != 50 || len(val) != 20 || len(test) != 30 {
		t.Fatalf("split sizes %d/%d/%d", len(train), len(val), len(test))
	}
	defer func() {
		if recover() == nil {
			t.Error("bad fractions accepted")
		}
	}()
	Split(data, 0.9, 0.2, rng)
}

func TestConfusionAccounting(t *testing.T) {
	c := &Confusion{M: [][]int{{3, 1}, {0, 4}}, Names: []string{"x", "y"}}
	if acc := c.Accuracy(); acc != 7.0/8 {
		t.Errorf("accuracy %v", acc)
	}
	if ca := c.ClassAccuracy(0); ca != 0.75 {
		t.Errorf("class accuracy %v", ca)
	}
	if c.String() == "" {
		t.Error("empty confusion string")
	}
	empty := &Confusion{M: [][]int{{0}}, Names: []string{"x"}}
	if empty.Accuracy() != 0 || empty.ClassAccuracy(0) != 0 {
		t.Error("empty confusion should be 0")
	}
}

func TestNeuralSeparatesBlobs(t *testing.T) {
	rng := xrand.New(21)
	data := blobs(180, 6, 40, 0.15, rng)
	train, _, test := Split(data, 0.6, 0, rng)
	clf, err := TrainNeural(train, 6, DefaultNeuralConfig(), rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	conf := Evaluate(clf, test, []string{"a", "b", "c", "d", "e", "f"})
	if acc := conf.Accuracy(); acc < 0.9 {
		t.Fatalf("neural accuracy %.2f on separable blobs", acc)
	}
}

func TestNeuralValidation(t *testing.T) {
	if _, err := TrainNeural(nil, 2, NeuralConfig{}, xrand.New(1)); err == nil {
		t.Error("empty training set accepted")
	}
	bad := []Sample{{X: []float64{1}, Y: 7}}
	if _, err := TrainNeural(bad, 2, NeuralConfig{}, xrand.New(1)); err == nil {
		t.Error("bad label accepted")
	}
}
