// Package classify provides the fingerprinting classifier of Sec. V-A.
// The paper trains an image classifier over memorygram pictures; here
// the same role is played by multinomial logistic regression (softmax)
// over downsampled memorygram images, trained from scratch with SGD,
// plus a k-nearest-neighbour baseline. Both are stdlib-only.
package classify

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"spybox/internal/xrand"
)

// Sample is one labelled feature vector (a flattened memorygram
// image and its victim-application class).
type Sample struct {
	X []float64
	Y int
}

// Split partitions samples into train/validation/test sets by the
// given fractions (test receives the remainder), shuffling with rng.
// Mirrors the paper's 150/150/1200-per-class split methodology.
func Split(samples []Sample, trainFrac, valFrac float64, rng *xrand.Source) (train, val, test []Sample) {
	if trainFrac < 0 || valFrac < 0 || trainFrac+valFrac > 1 {
		panic("classify: bad split fractions")
	}
	idx := rng.Perm(len(samples))
	nTrain := int(trainFrac * float64(len(samples)))
	nVal := int(valFrac * float64(len(samples)))
	for i, id := range idx {
		switch {
		case i < nTrain:
			train = append(train, samples[id])
		case i < nTrain+nVal:
			val = append(val, samples[id])
		default:
			test = append(test, samples[id])
		}
	}
	return train, val, test
}

// Predictor is anything that classifies a feature vector.
type Predictor interface {
	Predict(x []float64) int
}

// Softmax is multinomial logistic regression with a bias term.
type Softmax struct {
	Classes int
	Dim     int
	W       [][]float64 // [Classes][Dim+1], last column is bias
}

// SoftmaxConfig controls training.
type SoftmaxConfig struct {
	Epochs int
	LR     float64
	L2     float64 // weight decay
}

// DefaultSoftmaxConfig works well for 32x32 memorygram images.
func DefaultSoftmaxConfig() SoftmaxConfig {
	return SoftmaxConfig{Epochs: 60, LR: 0.08, L2: 1e-4}
}

// TrainSoftmax fits a softmax classifier with SGD over shuffled
// epochs. All samples must share the dimensionality of the first.
func TrainSoftmax(train []Sample, classes int, cfg SoftmaxConfig, rng *xrand.Source) (*Softmax, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("classify: empty training set")
	}
	dim := len(train[0].X)
	for i, s := range train {
		if len(s.X) != dim {
			return nil, fmt.Errorf("classify: sample %d has dim %d, want %d", i, len(s.X), dim)
		}
		if s.Y < 0 || s.Y >= classes {
			return nil, fmt.Errorf("classify: sample %d has label %d outside [0,%d)", i, s.Y, classes)
		}
	}
	m := &Softmax{Classes: classes, Dim: dim, W: make([][]float64, classes)}
	for c := range m.W {
		m.W[c] = make([]float64, dim+1)
	}
	if cfg.Epochs <= 0 {
		cfg = DefaultSoftmaxConfig()
	}
	for ep := 0; ep < cfg.Epochs; ep++ {
		order := rng.Perm(len(train))
		for _, i := range order {
			s := train[i]
			probs := m.probs(s.X)
			for c := 0; c < classes; c++ {
				g := probs[c]
				if c == s.Y {
					g--
				}
				w := m.W[c]
				step := cfg.LR * g
				for d, v := range s.X {
					w[d] -= step*v + cfg.LR*cfg.L2*w[d]
				}
				w[dim] -= step
			}
		}
	}
	return m, nil
}

// probs returns class probabilities for x.
func (m *Softmax) probs(x []float64) []float64 {
	logits := make([]float64, m.Classes)
	maxL := math.Inf(-1)
	for c, w := range m.W {
		s := w[m.Dim]
		for d, v := range x {
			s += w[d] * v
		}
		logits[c] = s
		if s > maxL {
			maxL = s
		}
	}
	var z float64
	for c := range logits {
		logits[c] = math.Exp(logits[c] - maxL)
		z += logits[c]
	}
	for c := range logits {
		logits[c] /= z
	}
	return logits
}

// Predict returns the most likely class for x.
func (m *Softmax) Predict(x []float64) int {
	probs := m.probs(x)
	best := 0
	for c, p := range probs {
		if p > probs[best] {
			best = c
		}
	}
	return best
}

// KNN is a k-nearest-neighbour classifier over Euclidean distance —
// the baseline the softmax model is compared against.
type KNN struct {
	K    int
	Data []Sample
}

// NewKNN stores the training data. k must be positive.
func NewKNN(k int, train []Sample) (*KNN, error) {
	if k <= 0 || len(train) == 0 {
		return nil, fmt.Errorf("classify: bad kNN parameters (k=%d, n=%d)", k, len(train))
	}
	return &KNN{K: k, Data: train}, nil
}

// Predict votes among the k nearest training samples.
func (kn *KNN) Predict(x []float64) int {
	type nd struct {
		d float64
		y int
	}
	ds := make([]nd, len(kn.Data))
	for i, s := range kn.Data {
		var d float64
		for j, v := range s.X {
			diff := v - x[j]
			d += diff * diff
		}
		ds[i] = nd{d, s.Y}
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
	k := kn.K
	if k > len(ds) {
		k = len(ds)
	}
	votes := map[int]int{}
	for _, n := range ds[:k] {
		votes[n.y]++
	}
	best, bestN := -1, -1
	//spylint:allow detrand order-independent fold: max vote count with smallest-class tie-break
	for y, n := range votes {
		if n > bestN || (n == bestN && y < best) {
			best, bestN = y, n
		}
	}
	return best
}

// Confusion is a confusion matrix: M[actual][predicted].
type Confusion struct {
	M     [][]int
	Names []string
}

// Evaluate runs the predictor over test data, producing the confusion
// matrix (Fig. 12).
func Evaluate(p Predictor, test []Sample, classNames []string) *Confusion {
	n := len(classNames)
	c := &Confusion{M: make([][]int, n), Names: classNames}
	for i := range c.M {
		c.M[i] = make([]int, n)
	}
	for _, s := range test {
		pred := p.Predict(s.X)
		if s.Y >= 0 && s.Y < n && pred >= 0 && pred < n {
			c.M[s.Y][pred]++
		}
	}
	return c
}

// Accuracy is the overall fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	correct, total := 0, 0
	for i, row := range c.M {
		for j, v := range row {
			total += v
			if i == j {
				correct += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// ClassAccuracy is per-class recall.
func (c *Confusion) ClassAccuracy(class int) float64 {
	total := 0
	for _, v := range c.M[class] {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(c.M[class][class]) / float64(total)
}

// String renders the matrix with class names, like Fig. 12.
func (c *Confusion) String() string {
	var b strings.Builder
	width := 6
	for _, n := range c.Names {
		if len(n) > width {
			width = len(n)
		}
	}
	fmt.Fprintf(&b, "%-*s", width+1, "")
	for _, n := range c.Names {
		fmt.Fprintf(&b, "%*s", width+1, n)
	}
	b.WriteByte('\n')
	for i, row := range c.M {
		fmt.Fprintf(&b, "%-*s", width+1, c.Names[i])
		for _, v := range row {
			fmt.Fprintf(&b, "%*d", width+1, v)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "overall accuracy: %.2f%%\n", 100*c.Accuracy())
	return b.String()
}
