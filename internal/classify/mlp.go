// A small one-hidden-layer neural classifier — the closer analogue of
// the paper's image classifier than plain softmax regression. Stdlib
// only, trained by SGD with ReLU hidden units.
package classify

import (
	"fmt"
	"math"

	"spybox/internal/xrand"
)

// NeuralNet is a dim -> hidden -> classes perceptron with ReLU hidden
// activations and a softmax output.
type NeuralNet struct {
	Dim, Hidden, Classes int
	W1                   [][]float64 // [Hidden][Dim+1], bias last
	W2                   [][]float64 // [Classes][Hidden+1], bias last
}

// NeuralConfig controls neural-classifier training.
type NeuralConfig struct {
	Hidden int
	Epochs int
	LR     float64
	L2     float64
}

// DefaultNeuralConfig suits memorygram feature vectors.
func DefaultNeuralConfig() NeuralConfig {
	return NeuralConfig{Hidden: 48, Epochs: 120, LR: 0.02, L2: 1e-4}
}

// TrainNeural fits the network on the training samples.
func TrainNeural(train []Sample, classes int, cfg NeuralConfig, rng *xrand.Source) (*NeuralNet, error) {
	if len(train) == 0 {
		return nil, fmt.Errorf("classify: empty training set")
	}
	dim := len(train[0].X)
	for i, s := range train {
		if len(s.X) != dim {
			return nil, fmt.Errorf("classify: sample %d has dim %d, want %d", i, len(s.X), dim)
		}
		if s.Y < 0 || s.Y >= classes {
			return nil, fmt.Errorf("classify: label %d outside [0,%d)", s.Y, classes)
		}
	}
	if cfg.Hidden <= 0 {
		cfg = DefaultNeuralConfig()
	}
	n := &NeuralNet{Dim: dim, Hidden: cfg.Hidden, Classes: classes}
	n.W1 = make([][]float64, cfg.Hidden)
	s1 := math.Sqrt(2 / float64(dim))
	for h := range n.W1 {
		n.W1[h] = make([]float64, dim+1)
		for d := 0; d < dim; d++ {
			n.W1[h][d] = rng.Norm() * s1
		}
	}
	n.W2 = make([][]float64, classes)
	s2 := math.Sqrt(2 / float64(cfg.Hidden))
	for c := range n.W2 {
		n.W2[c] = make([]float64, cfg.Hidden+1)
		for h := 0; h < cfg.Hidden; h++ {
			n.W2[c][h] = rng.Norm() * s2
		}
	}

	hid := make([]float64, cfg.Hidden)
	for ep := 0; ep < cfg.Epochs; ep++ {
		for _, i := range rng.Perm(len(train)) {
			s := train[i]
			probs := n.forward(s.X, hid)
			// Output gradient.
			for c := 0; c < classes; c++ {
				g := probs[c]
				if c == s.Y {
					g--
				}
				w := n.W2[c]
				for h := 0; h < cfg.Hidden; h++ {
					w[h] -= cfg.LR * (g*hid[h] + cfg.L2*w[h])
				}
				w[cfg.Hidden] -= cfg.LR * g
			}
			// Hidden gradient (ReLU mask).
			for h := 0; h < cfg.Hidden; h++ {
				if hid[h] <= 0 {
					continue
				}
				var g float64
				for c := 0; c < classes; c++ {
					gc := probs[c]
					if c == s.Y {
						gc--
					}
					g += gc * n.W2[c][h]
				}
				w := n.W1[h]
				step := cfg.LR * g
				for d, v := range s.X {
					w[d] -= step*v + cfg.LR*cfg.L2*w[d]
				}
				w[dim] -= cfg.LR * g
			}
		}
	}
	return n, nil
}

// forward computes class probabilities; hid receives the hidden
// activations (scratch buffer of length Hidden).
func (n *NeuralNet) forward(x []float64, hid []float64) []float64 {
	for h := 0; h < n.Hidden; h++ {
		w := n.W1[h]
		s := w[n.Dim]
		for d, v := range x {
			s += w[d] * v
		}
		if s < 0 {
			s = 0
		}
		hid[h] = s
	}
	logits := make([]float64, n.Classes)
	maxL := math.Inf(-1)
	for c := 0; c < n.Classes; c++ {
		w := n.W2[c]
		s := w[n.Hidden]
		for h := 0; h < n.Hidden; h++ {
			s += w[h] * hid[h]
		}
		logits[c] = s
		if s > maxL {
			maxL = s
		}
	}
	var z float64
	for c := range logits {
		logits[c] = math.Exp(logits[c] - maxL)
		z += logits[c]
	}
	for c := range logits {
		logits[c] /= z
	}
	return logits
}

// Predict returns the most likely class for x.
func (n *NeuralNet) Predict(x []float64) int {
	hid := make([]float64, n.Hidden)
	probs := n.forward(x, hid)
	best := 0
	for c, p := range probs {
		if p > probs[best] {
			best = c
		}
	}
	return best
}
