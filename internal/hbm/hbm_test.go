package hbm

import (
	"testing"

	"spybox/internal/arch"
)

func TestReadLineLatency(t *testing.T) {
	s := New(0)
	// Cold access: full HBM latency.
	if got := s.ReadLine(arch.PA(0)); got != arch.LatHBM {
		t.Errorf("cold read latency = %v, want %v", got, arch.LatHBM)
	}
	// Same row: discounted.
	if got := s.ReadLine(arch.PA(128)); got >= arch.LatHBM {
		t.Errorf("open-row read latency = %v, want < %v", got, arch.LatHBM)
	}
	// Different row: full latency again.
	if got := s.ReadLine(arch.PA(4 * RowSize)); got != arch.LatHBM {
		t.Errorf("row-miss latency = %v, want %v", got, arch.LatHBM)
	}
}

func TestStatsAccounting(t *testing.T) {
	s := New(3)
	if s.Device() != 3 {
		t.Errorf("Device = %v", s.Device())
	}
	s.ReadLine(0)
	s.ReadLine(128)  // row hit
	s.ReadLine(8192) // row miss
	reads, rowHits, bytes := s.Stats()
	if reads != 3 || rowHits != 1 || bytes != 3*arch.CacheLineSize {
		t.Errorf("stats = (%d,%d,%d)", reads, rowHits, bytes)
	}
	s.ResetStats()
	reads, rowHits, bytes = s.Stats()
	if reads != 0 || rowHits != 0 || bytes != 0 {
		t.Error("ResetStats did not clear")
	}
	// Row state survives the reset, as on hardware.
	if got := s.ReadLine(arch.PA(8192 + 128)); got >= arch.LatHBM {
		t.Error("open row forgotten across stats reset")
	}
}

// TestNewSizedUsesProfileLineSize guards the Sec. VII traffic
// accounting fix: bytesRead must count the configured fill size, not
// the hard-coded P100 128 B constant.
func TestNewSizedUsesProfileLineSize(t *testing.T) {
	s := NewSized(2, 256, 100)
	s.ReadLine(0)
	s.ReadLine(arch.PA(4 * RowSize))
	if _, _, bytes := s.Stats(); bytes != 512 {
		t.Errorf("bytesRead = %d after two 256 B fills, want 512", bytes)
	}
	if s.LineSize() != 256 {
		t.Errorf("LineSize() = %d", s.LineSize())
	}
	// Zero values fall back to the P100 defaults.
	d := NewSized(0, 0, 0)
	d.ReadLine(0)
	if _, _, bytes := d.Stats(); bytes != arch.CacheLineSize {
		t.Errorf("default bytesRead = %d, want %d", bytes, arch.CacheLineSize)
	}
}
