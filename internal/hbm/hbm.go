// Package hbm models the per-GPU HBM2 DRAM stack. The attacks never
// look inside DRAM — they only see its latency through L2 misses — so
// the model is deliberately small: a fixed service latency with light
// row-buffer locality, plus the traffic accounting the Sec. VII
// detection study consumes.
package hbm

import (
	"spybox/internal/arch"
)

// RowSize is the modelled DRAM row-buffer span. Consecutive accesses
// within a row are marginally cheaper, mirroring the mild locality
// effects visible in the paper's histograms (the miss cluster has
// spread even in a quiet machine).
const RowSize = 2 << 10

// Stack is one GPU's HBM.
type Stack struct {
	//spylint:allow resetcomplete identity is fixed at construction; Reset rewinds state, not wiring
	dev arch.DeviceID
	// lineSize is the bytes per L2 fill, from the machine profile.
	//spylint:allow resetcomplete geometry is config-derived, identical across trials
	lineSize uint64
	// lat is the DRAM service latency beyond the L2 lookup.
	//spylint:allow resetcomplete latency is config-derived, identical across trials
	lat arch.Cycles

	openRow   uint64
	haveRow   bool
	reads     uint64
	rowHits   uint64
	bytesRead uint64
}

// New returns the HBM stack for device dev with the P100 fill size and
// service latency.
func New(dev arch.DeviceID) *Stack {
	return NewSized(dev, arch.CacheLineSize, arch.LatHBM)
}

// NewSized returns the HBM stack for device dev serving L2 fills of
// lineSize bytes with the given DRAM latency. The fill size must come
// from the machine's cache geometry: traffic accounting (Sec. VII)
// counts bytesRead per fill, which is wrong for any non-128 B profile
// if the P100 constant is hard-coded.
func NewSized(dev arch.DeviceID, lineSize int, lat arch.Cycles) *Stack {
	if lineSize <= 0 {
		lineSize = arch.CacheLineSize
	}
	if lat == 0 {
		lat = arch.LatHBM
	}
	return &Stack{dev: dev, lineSize: uint64(lineSize), lat: lat}
}

// Device returns the GPU this stack belongs to.
func (s *Stack) Device() arch.DeviceID { return s.dev }

// LineSize returns the bytes served per L2 fill.
func (s *Stack) LineSize() int { return int(s.lineSize) }

// ReadLine services an L2 fill for the line at pa and returns the DRAM
// portion of the latency (the cycles beyond the L2 lookup itself).
func (s *Stack) ReadLine(pa arch.PA) arch.Cycles {
	s.reads++
	s.bytesRead += s.lineSize
	row := uint64(pa) / RowSize
	lat := s.lat
	if s.haveRow && row == s.openRow {
		s.rowHits++
		lat -= s.lat / 8 // open-row discount
	}
	s.openRow, s.haveRow = row, true
	return lat
}

// Stats returns cumulative read counters.
func (s *Stack) Stats() (reads, rowHits, bytesRead uint64) {
	return s.reads, s.rowHits, s.bytesRead
}

// ResetStats clears the counters (row state persists, as on hardware).
func (s *Stack) ResetStats() {
	s.reads, s.rowHits, s.bytesRead = 0, 0, 0
}

// Reset restores the stack to its freshly constructed state: counters
// cleared and the row buffer closed, so a pooled machine's first fill
// sees the same cold row a fresh machine's would.
func (s *Stack) Reset() {
	s.ResetStats()
	s.openRow, s.haveRow = 0, false
}
