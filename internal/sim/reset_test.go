package sim

import (
	"fmt"
	"sync"
	"testing"

	"spybox/internal/arch"
	"spybox/internal/l2cache"
	"spybox/internal/nvlink"
)

// resetWorkload drives a machine through every event kind — local and
// remote touches, warp probes, streaming ranges — with jitter live,
// and returns the full latency trace. Any divergence between a fresh
// and a reset machine shows up here, because every latency folds in
// the jitter RNG, cache state, HBM row state, and fabric clocks.
func resetWorkload(t *testing.T, m *Machine) []arch.Cycles {
	t.Helper()
	var local, remote []arch.Cycles
	if err := m.EnablePeer(1, 0); err != nil {
		t.Fatal(err)
	}
	_, err := m.Spawn(0, "local", 0, func(w *Worker) {
		for i := 0; i < 40; i++ {
			local = append(local, w.TouchCG(arch.MakePA(0, uint64(0x10000+i*256))))
		}
		pas := make([]arch.PA, 8)
		for i := range pas {
			pas[i] = arch.MakePA(0, uint64(0x40000+i*arch.CacheLineSize))
		}
		lats, total := w.ProbeLines(pas)
		local = append(local, lats...)
		local = append(local, total)
		_, st := w.StreamRange(arch.MakePA(0, 0x80000), 32, arch.CacheLineSize)
		local = append(local, st)
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Spawn(1, "remote", 0, func(w *Worker) {
		// Remote touches of device 0's memory: cached in the home L2,
		// traversing the fabric, contending with the local worker.
		for i := 0; i < 40; i++ {
			remote = append(remote, w.TouchCG(arch.MakePA(0, uint64(0x10000+i*256))))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	return append(local, remote...)
}

func TestMachineResetByteIdentical(t *testing.T) {
	profile := func(name string) *arch.Profile {
		p, err := arch.LookupProfile(name)
		if err != nil {
			t.Fatal(err)
		}
		return &p
	}
	cases := []struct {
		name string
		opts Options
	}{
		{"p100-dgx1", Options{Profile: profile("p100-dgx1")}},
		{"v100-dgx2", Options{Profile: profile("v100-dgx2")}},
		{"a100-class", Options{Profile: profile("a100-class")}},
		{"p100-mig", Options{Profile: profile("p100-dgx1"), MIGPartitions: 4}},
		{"v100-contended", Options{Profile: profile("v100-dgx2"), ContentionSigmaPer: 3.5}},
		{"p100-noiseoff", Options{Profile: profile("p100-dgx1"), NoiseOff: true}},
	}
	const seed = 0xdecaf
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := tc.opts
			fresh.Seed = seed
			want := resetWorkload(t, MustNewMachine(fresh))

			// Build with a different seed, dirty every subsystem with a
			// full run, then Reset to the reference seed and rerun.
			dirty := tc.opts
			dirty.Seed = seed ^ 0x5a5a5a5a
			m := MustNewMachine(dirty)
			resetWorkload(t, m)
			m.Reset(seed)
			got := resetWorkload(t, m)

			if len(got) != len(want) {
				t.Fatalf("trace lengths differ: reset %d vs fresh %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("reset run diverges from fresh at sample %d: %v vs %v", i, got[i], want[i])
				}
			}

			// A second Reset must replay just as exactly.
			m.Reset(seed)
			again := resetWorkload(t, m)
			for i := range want {
				if again[i] != want[i] {
					t.Fatalf("second reset diverges at sample %d: %v vs %v", i, again[i], want[i])
				}
			}
		})
	}
}

func TestMachinePoolReusesAndResets(t *testing.T) {
	pool := NewMachinePool()
	opts := Options{Seed: 7}
	m1, err := pool.Get(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := resetWorkload(t, m1)
	pool.Put(m1)

	opts.Seed = 7
	m2, err := pool.Get(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m1 {
		t.Fatal("pool did not reuse the returned machine")
	}
	got := resetWorkload(t, m2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pooled rerun diverges at sample %d: %v vs %v", i, got[i], want[i])
		}
	}
	if hits, misses := pool.Stats(); hits != 1 || misses != 1 {
		t.Errorf("pool stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	// While m2 is leased, a same-fingerprint Get must build fresh —
	// two live machines never alias.
	m3, err := pool.Get(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m2 {
		t.Fatal("pool handed out a leased machine")
	}
	pool.Recycle()
}

func TestMachinePoolUnpoolableTopology(t *testing.T) {
	topo, err := nvlink.FromProfile(arch.P100DGX1())
	if err != nil {
		t.Fatal(err)
	}
	pool := NewMachinePool()
	opts := Options{Seed: 1, Topology: topo}
	m1, err := pool.Get(opts)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(m1) // ignored: unpoolable machines are never tracked
	m2, err := pool.Get(opts)
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("machines built from a caller-provided Topology must not pool")
	}
	if hits, _ := pool.Stats(); hits != 0 {
		t.Errorf("unpoolable options recorded %d pool hits", hits)
	}
}

// TestMachinePoolConcurrent exercises pooling from many goroutines
// under the -race CI job, in both supported shapes: a shared pool with
// explicit Put (a machine is returned only by the goroutine holding
// it), and the runner's one-pool-per-worker shape where the worker
// sweeps its own leases with Recycle. Small cache geometry keeps the
// machines cheap.
func TestMachinePoolConcurrent(t *testing.T) {
	cfg := l2cache.Config{Sets: 64, Ways: 4, LineSize: arch.CacheLineSize,
		PageSize: arch.PageSize, Policy: l2cache.LRU, HashIndex: true}
	touch := func(pool *MachinePool, g, i int) error {
		m, err := pool.Get(Options{Seed: uint64(g*100 + i), CacheCfg: cfg, NoiseOff: true})
		if err != nil {
			return err
		}
		var lat arch.Cycles
		if _, err := m.Spawn(0, fmt.Sprintf("g%d", g), 0, func(w *Worker) {
			lat = w.TouchCG(arch.MakePA(0, 0x10000))
		}); err != nil {
			return err
		}
		m.Run()
		if lat != arch.NomLocalMiss {
			return fmt.Errorf("goroutine %d iter %d: cold touch = %v, want %v", g, i, lat, arch.NomLocalMiss)
		}
		pool.Put(m)
		return nil
	}
	shared := NewMachinePool()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Shared pool: this goroutine Puts back only what it got.
			for i := 0; i < 4; i++ {
				if err := touch(shared, g, i); err != nil {
					errs <- err
					return
				}
			}
			// Private pool, runner-shaped: Recycle sweeps own leases.
			own := NewMachinePool()
			for i := 0; i < 4; i++ {
				if _, err := own.Get(Options{Seed: uint64(i), CacheCfg: cfg, NoiseOff: true}); err != nil {
					errs <- err
					return
				}
				own.Recycle()
			}
			if hits, _ := own.Stats(); hits != 3 {
				errs <- fmt.Errorf("goroutine %d: private pool hits = %d, want 3", g, hits)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
