package sim

import (
	"testing"

	"spybox/internal/arch"
	"spybox/internal/l2cache"
)

// quiet returns a machine with jitter disabled for exact assertions.
func quiet(seed uint64) *Machine {
	return MustNewMachine(Options{Seed: seed, NoiseOff: true})
}

func TestLocalHitMissLatencies(t *testing.T) {
	m := quiet(1)
	pa := arch.MakePA(0, 0x10000)
	var first, second arch.Cycles
	_, err := m.Spawn(0, "probe", 0, func(w *Worker) {
		first = w.TouchCG(pa)
		second = w.TouchCG(pa)
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if first != arch.NomLocalMiss {
		t.Errorf("cold local access = %v, want %v", first, arch.NomLocalMiss)
	}
	if second != arch.NomLocalHit {
		t.Errorf("warm local access = %v, want %v", second, arch.NomLocalHit)
	}
}

func TestRemoteHitMissLatenciesAndHomeCaching(t *testing.T) {
	// The paper's central discovery: a remote access is cached in the
	// HOME GPU's L2, not the requester's.
	m := quiet(2)
	if err := m.EnablePeer(1, 0); err != nil {
		t.Fatal(err)
	}
	pa := arch.MakePA(0, 0x20000) // homed on GPU0
	var first, second arch.Cycles
	_, err := m.Spawn(1, "remote", 0, func(w *Worker) {
		first = w.TouchCG(pa)
		second = w.TouchCG(pa)
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if first != arch.NomRemoteMiss {
		t.Errorf("cold remote access = %v, want %v", first, arch.NomRemoteMiss)
	}
	if second != arch.NomRemoteHit {
		t.Errorf("warm remote access = %v, want %v", second, arch.NomRemoteHit)
	}
	if !m.Device(0).L2().Contains(pa) {
		t.Error("line not cached in home GPU L2")
	}
	if m.Device(1).L2().Contains(pa) {
		t.Error("line wrongly cached in requester L2")
	}
}

func TestRemoteWarmsLocalObserver(t *testing.T) {
	// If a remote GPU pulled a line into GPU0's L2, a subsequent LOCAL
	// access on GPU0 must hit: the cache is genuinely shared.
	m := quiet(3)
	m.EnablePeer(1, 0)
	pa := arch.MakePA(0, 0x30000)
	var remoteDone bool
	var localLat arch.Cycles
	m.Spawn(1, "warm", 0, func(w *Worker) {
		w.TouchCG(pa)
		remoteDone = true
	})
	m.Spawn(0, "observe", 0, func(w *Worker) {
		for !remoteDone {
			w.Busy(1000)
			w.Yield()
		}
		localLat = w.TouchCG(pa)
	})
	m.Run()
	if localLat != arch.NomLocalHit {
		t.Errorf("local access after remote warm = %v, want %v", localLat, arch.NomLocalHit)
	}
}

func TestPeerAccessRequired(t *testing.T) {
	m := quiet(4)
	pa := arch.MakePA(0, 0)
	defer func() {
		if recover() == nil {
			t.Error("remote access without peer enablement should panic (device fault)")
		}
	}()
	m.Spawn(1, "illegal", 0, func(w *Worker) {
		w.TouchCG(pa)
	})
	m.Run()
}

func TestEnablePeerRequiresNVLink(t *testing.T) {
	m := quiet(5)
	// 0 and 5 are not directly connected on a DGX-1.
	if err := m.EnablePeer(0, 5); err == nil {
		t.Fatal("EnablePeer(0,5) should fail: no direct NVLink")
	}
	if err := m.EnablePeer(0, 4); err != nil {
		t.Fatalf("EnablePeer(0,4) should succeed: %v", err)
	}
	if err := m.EnablePeer(2, 2); err != nil {
		t.Fatalf("self peer should be trivially fine: %v", err)
	}
}

func TestDeterministicConcurrentRuns(t *testing.T) {
	// Two workers interleave; the full latency trace must be identical
	// across machine rebuilds with the same seed, including jitter.
	run := func() []arch.Cycles {
		m := MustNewMachine(Options{Seed: 77})
		m.EnablePeer(1, 0)
		var trace []arch.Cycles
		for wi := 0; wi < 2; wi++ {
			dev := arch.DeviceID(wi)
			m.Spawn(dev, "w", 0, func(w *Worker) {
				for i := 0; i < 50; i++ {
					pa := arch.MakePA(0, uint64(0x40000+i*arch.CacheLineSize))
					lat := w.TouchCG(pa)
					trace = append(trace, lat)
				}
			})
		}
		m.Run()
		return trace
	}
	t1, t2 := run(), run()
	if len(t1) != len(t2) || len(t1) != 100 {
		t.Fatalf("trace lengths %d, %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestClockAdvances(t *testing.T) {
	m := quiet(6)
	var c0, c1, c2 arch.Cycles
	m.Spawn(0, "clock", 0, func(w *Worker) {
		c0 = w.Clock()
		w.Busy(100)
		c1 = w.Clock()
		w.BusyHeavy(10)
		c2 = w.Clock()
	})
	m.Run()
	if c1 < c0+100*arch.LatALUOp {
		t.Errorf("Busy did not advance clock: %v -> %v", c0, c1)
	}
	if c2 < c1+10*arch.LatHeavyOp {
		t.Errorf("BusyHeavy did not advance clock: %v -> %v", c1, c2)
	}
}

func TestProbeLinesAggregateAndPerLine(t *testing.T) {
	m := quiet(7)
	pas := make([]arch.PA, 16)
	for i := range pas {
		pas[i] = arch.MakePA(0, uint64(0x80000+i*arch.CacheLineSize))
	}
	var cold, warm []arch.Cycles
	var coldHits, warmHits []bool
	var coldTotal, warmTotal arch.Cycles
	m.Spawn(0, "probe", 0, func(w *Worker) {
		// ProbeLines returns worker-owned scratch, valid only until the
		// next probe: retaining the cold results requires a copy-out.
		lats, hits, total := w.ProbeLinesHits(pas)
		cold = append([]arch.Cycles(nil), lats...)
		coldHits = append([]bool(nil), hits...)
		coldTotal = total
		warm, warmHits, warmTotal = w.ProbeLinesHits(pas)
	})
	m.Run()
	for i := range pas {
		// Cold misses pay HBM latency, minus at most the open-row
		// discount for row-buffer neighbours.
		if cold[i] > arch.NomLocalMiss || cold[i] < arch.NomLocalMiss-arch.LatHBM/8 {
			t.Errorf("cold line %d = %v, want ~%v", i, cold[i], arch.NomLocalMiss)
		}
		if warm[i] != arch.NomLocalHit {
			t.Errorf("warm line %d = %v", i, warm[i])
		}
		// Ground-truth hit flags agree with the latency classes.
		if coldHits[i] {
			t.Errorf("cold line %d reported as L2 hit", i)
		}
		if !warmHits[i] {
			t.Errorf("warm line %d reported as L2 miss", i)
		}
	}
	// Aggregate reflects memory-level parallelism: far less than the
	// sum, more than a single access.
	wantWarm := arch.NomLocalHit + 15*arch.HitII
	if warmTotal != wantWarm {
		t.Errorf("warm aggregate = %v, want %v", warmTotal, wantWarm)
	}
	wantColdMax := arch.NomLocalMiss + 15*arch.HitII + 16*arch.MissII
	if coldTotal > wantColdMax || coldTotal <= warmTotal {
		t.Errorf("cold aggregate = %v, want in (%v, %v]", coldTotal, warmTotal, wantColdMax)
	}
}

func TestStreamRange(t *testing.T) {
	m := quiet(8)
	base := arch.MakePA(0, 0x100000)
	var misses1, misses2 int
	m.Spawn(0, "stream", 0, func(w *Worker) {
		misses1, _ = w.StreamRange(base, 64, arch.CacheLineSize)
		misses2, _ = w.StreamRange(base, 64, arch.CacheLineSize)
	})
	m.Run()
	if misses1 != 64 {
		t.Errorf("cold stream misses = %d, want 64", misses1)
	}
	if misses2 != 0 {
		t.Errorf("warm stream misses = %d, want 0", misses2)
	}
}

func TestSpawnOccupancyIntegration(t *testing.T) {
	m := quiet(9)
	// Fill GPU0's shared memory, then a shared-memory-needing spawn
	// must fail while a zero-shared-mem one succeeds.
	for i := 0; i < 2*arch.NumSMs; i++ {
		if _, err := m.Spawn(0, "blocker", arch.MaxSharedMemPerBlock, func(w *Worker) {}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Spawn(0, "noise", 1024, func(w *Worker) {}); err == nil {
		t.Fatal("spawn should fail on saturated GPU")
	}
	if _, err := m.Spawn(0, "free", 0, func(w *Worker) {}); err != nil {
		t.Fatal(err)
	}
	m.Run()
	// After Run, reservations are released.
	if _, err := m.Spawn(0, "after", 1024, func(w *Worker) {}); err != nil {
		t.Fatalf("post-run spawn failed: %v", err)
	}
	m.Run()
}

func TestSpawnBadDevice(t *testing.T) {
	m := quiet(10)
	if _, err := m.Spawn(arch.DeviceID(99), "x", 0, func(w *Worker) {}); err == nil {
		t.Fatal("spawn on missing device should fail")
	}
}

func TestContentionRaisesJitter(t *testing.T) {
	// With noise on, the dispersion of probe latencies must grow when
	// other workers hammer the same L2 — the mechanism behind the
	// Fig. 9 error-rate curve.
	spread := func(nNoisy int) float64 {
		m := MustNewMachine(Options{Seed: 11})
		var minLat, maxLat arch.Cycles = 1 << 62, 0
		stop := false
		for i := 0; i < nNoisy; i++ {
			off := uint64(0x400000 + i*0x10000)
			m.Spawn(0, "noisy", 0, func(w *Worker) {
				for !stop {
					w.TouchCG(arch.MakePA(0, off))
					w.Busy(10)
				}
			})
		}
		m.Spawn(0, "meter", 0, func(w *Worker) {
			pa := arch.MakePA(0, 0x500000)
			w.TouchCG(pa)
			for i := 0; i < 300; i++ {
				lat := w.TouchCG(pa)
				if lat < minLat {
					minLat = lat
				}
				if lat > maxLat {
					maxLat = lat
				}
			}
			stop = true
		})
		m.Run()
		return float64(maxLat - minLat)
	}
	alone := spread(0)
	crowded := spread(6)
	if crowded <= alone {
		t.Errorf("jitter spread did not grow with contention: alone=%v crowded=%v", alone, crowded)
	}
}

func TestNVLinkTrafficAccounted(t *testing.T) {
	m := quiet(12)
	m.EnablePeer(1, 0)
	m.Spawn(1, "traffic", 0, func(w *Worker) {
		for i := 0; i < 20; i++ {
			w.TouchCG(arch.MakePA(0, uint64(i*arch.CacheLineSize)))
		}
	})
	m.Run()
	link := m.Topology().LinkBetween(0, 1)
	if link.Transactions != 20 {
		t.Errorf("link transactions = %d, want 20", link.Transactions)
	}
}

func TestCustomCacheConfig(t *testing.T) {
	cfg := l2cache.Config{Sets: 64, Ways: 4, LineSize: 128, PageSize: 4096, Policy: l2cache.LRU, HashIndex: true}
	m := MustNewMachine(Options{Seed: 13, CacheCfg: cfg, NoiseOff: true})
	if got := m.Device(0).L2().Config().Sets; got != 64 {
		t.Errorf("custom sets = %d", got)
	}
}

func TestYieldInterleavesEqualClocks(t *testing.T) {
	// Two workers at the same clock must interleave by worker ID
	// deterministically, and Yield must not deadlock.
	m := quiet(14)
	var order []string
	m.Spawn(0, "a", 0, func(w *Worker) {
		for i := 0; i < 3; i++ {
			order = append(order, "a")
			w.Yield()
		}
	})
	m.Spawn(0, "b", 0, func(w *Worker) {
		for i := 0; i < 3; i++ {
			order = append(order, "b")
			w.Yield()
		}
	})
	m.Run()
	if len(order) != 6 {
		t.Fatalf("order = %v", order)
	}
}

func TestMIGFrameFilter(t *testing.T) {
	m := MustNewMachine(Options{Seed: 20, MIGPartitions: 2, NoiseOff: true})
	if m.MIGPartitions() != 2 {
		t.Fatal("partitions not recorded")
	}
	// Partition regions: 4 regions, 2 partitions -> pid 0 gets
	// regions {0,1}, pid 1 gets {2,3}.
	f0, f1 := m.FrameFilter(0), m.FrameFilter(1)
	for frame := uint64(0); frame < 16; frame++ {
		r := int(frame % 4)
		if got := f0(frame); got != (r < 2) {
			t.Errorf("pid0 frame %d (region %d): allow=%v", frame, r, got)
		}
		if got := f1(frame); got != (r >= 2) {
			t.Errorf("pid1 frame %d (region %d): allow=%v", frame, r, got)
		}
	}
	// Hash must be off under MIG so regions are physical.
	if m.Device(0).L2().Config().HashIndex {
		t.Error("index hash left enabled under MIG")
	}
	// No partitioning -> nil filter.
	m2 := MustNewMachine(Options{Seed: 21, NoiseOff: true})
	if m2.FrameFilter(0) != nil {
		t.Error("unpartitioned machine returned a frame filter")
	}
}

// TestMachineFromProfile builds machines on each named profile and
// checks the box shape plus the profile latency model end to end: a
// local hit on a V100 box must cost the V100's L2 latency, a remote
// access must add the NVSwitch hop, and GPUs 8..15 must be real,
// peer-reachable devices (the old fixed 8x8 arrays made them
// unrepresentable).
func TestMachineFromProfile(t *testing.T) {
	for _, prof := range arch.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			m, err := NewMachine(Options{Seed: 5, Profile: &prof, NoiseOff: true})
			if err != nil {
				t.Fatal(err)
			}
			if m.NumGPUs() != prof.NumGPUs {
				t.Fatalf("NumGPUs = %d, want %d", m.NumGPUs(), prof.NumGPUs)
			}
			if m.Profile().Name != prof.Name {
				t.Fatalf("Profile() = %q", m.Profile().Name)
			}
			if cfg := m.Device(0).L2().Config(); cfg.Sets != prof.L2Sets || cfg.Ways != prof.L2Ways {
				t.Fatalf("device cache %dx%d, want %dx%d", cfg.Sets, cfg.Ways, prof.L2Sets, prof.L2Ways)
			}
			if m.Device(0).NumSMs() != prof.NumSMs {
				t.Fatalf("NumSMs = %d, want %d", m.Device(0).NumSMs(), prof.NumSMs)
			}
			// Highest-numbered GPU directly linked to GPU0: device 15 on
			// the DGX-2 crossbar, device 4 on the cube-mesh.
			peers := m.Topology().Peers(0)
			last := peers[len(peers)-1]
			if err := m.EnablePeer(last, 0); err != nil {
				t.Fatalf("peer %v->0: %v", last, err)
			}
			var missLat, hitLat, remoteHit arch.Cycles
			w, err := m.Spawn(0, "local", 0, func(w *Worker) {
				missLat = w.TouchCG(arch.MakePA(0, 0x10000))
				hitLat = w.TouchCG(arch.MakePA(0, 0x10000))
			})
			if err != nil {
				t.Fatal(err)
			}
			_ = w
			m.Run()
			if hitLat != prof.Lat.L2Hit {
				t.Errorf("local hit = %v, want %v", hitLat, prof.Lat.L2Hit)
			}
			if missLat < prof.Lat.L2Hit+prof.Lat.HBM/2 {
				t.Errorf("local miss = %v, implausibly cheap", missLat)
			}
			_, err = m.Spawn(last, "remote", 0, func(w *Worker) {
				remoteHit = w.TouchCG(arch.MakePA(0, 0x10000))
			})
			if err != nil {
				t.Fatal(err)
			}
			m.Run()
			if remoteHit != prof.Lat.L2Hit+prof.Lat.NVLinkHop {
				t.Errorf("remote hit from %v = %v, want %v", last, remoteHit, prof.Lat.L2Hit+prof.Lat.NVLinkHop)
			}
		})
	}
}

// TestDGX2PeerRules pins the topology semantics per profile: on the
// cube-mesh, unconnected pairs refuse peer access; on NVSwitch boxes
// every pair is reachable.
func TestDGX2PeerRules(t *testing.T) {
	p100, v100 := arch.P100DGX1(), arch.V100DGX2()
	m1 := MustNewMachine(Options{Seed: 1, Profile: &p100})
	if err := m1.EnablePeer(0, 5); err == nil {
		t.Error("DGX-1: GPU0->GPU5 has no direct link and must refuse peer access")
	}
	m2 := MustNewMachine(Options{Seed: 1, Profile: &v100})
	for dst := 1; dst < 16; dst++ {
		if err := m2.EnablePeer(0, arch.DeviceID(dst)); err != nil {
			t.Errorf("DGX-2: GPU0->GPU%d: %v", dst, err)
		}
	}
}
