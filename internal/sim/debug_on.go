//go:build simdebug

package sim

// simDebug enables the scheduler's invariant checks (double-park
// detection plus full heap verification after every mutation).
const simDebug = true
