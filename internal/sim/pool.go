// Machine pooling: trial runners burn most of their time building
// fresh boxes (a DGX-2's L2 arrays alone are hundreds of thousands of
// way slots), yet every machine built from the same Options differs
// only by seed — which Reset rewinds in place. A MachinePool hands out
// reset machines keyed by an Options fingerprint, turning the
// per-trial cost from "allocate a box" into "memclr a box".
package sim

import (
	"fmt"
	"sync"
)

// fingerprint returns a pooling key for the options and whether the
// options are poolable at all. The key covers everything that shapes a
// machine except the seed (Reset replaces the seed). Options carrying
// a caller-provided Topology are not poolable: the topology is shared
// mutable state, so two machines built from it would alias fabric
// counters and port clocks.
func (o Options) fingerprint() (string, bool) {
	if o.Topology != nil {
		return "", false
	}
	name := "<default>"
	var prof string
	if o.Profile != nil {
		name = o.Profile.Name
		prof = fmt.Sprintf("%+v", *o.Profile)
	}
	return fmt.Sprintf("%s|%s|%+v|noise=%t|cont=%g|mig=%d",
		name, prof, o.CacheCfg, o.NoiseOff, o.ContentionSigmaPer, o.MIGPartitions), true
}

// MachinePool recycles machines across trials. Get returns a machine
// reset to the requested seed (reusing a pooled one when the options
// fingerprint matches); Put returns it when the trial is done. A
// machine handed out by Get is never handed out again until it comes
// back via Put or Recycle, so two live machines never alias state.
//
// The pool is safe for concurrent use, but the expected shape — one
// pool per trial worker — means contention is rare.
type MachinePool struct {
	mu     sync.Mutex
	free   map[string][]*Machine
	leased map[*Machine]string
	hits   uint64
	misses uint64
}

// NewMachinePool returns an empty pool.
func NewMachinePool() *MachinePool {
	return &MachinePool{
		free:   make(map[string][]*Machine),
		leased: make(map[*Machine]string),
	}
}

// Get returns a machine built (or reset) from opts. Unpoolable options
// fall through to NewMachine; the machine is then simply not recycled.
func (p *MachinePool) Get(opts Options) (*Machine, error) {
	if p == nil {
		return NewMachine(opts)
	}
	key, ok := opts.fingerprint()
	if !ok {
		return NewMachine(opts)
	}
	p.mu.Lock()
	if ms := p.free[key]; len(ms) > 0 {
		m := ms[len(ms)-1]
		p.free[key] = ms[:len(ms)-1]
		p.leased[m] = key
		p.hits++
		p.mu.Unlock()
		m.Reset(opts.Seed)
		return m, nil
	}
	p.misses++
	p.mu.Unlock()
	m, err := NewMachine(opts)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.leased[m] = key
	p.mu.Unlock()
	return m, nil
}

// Put returns a leased machine to the pool. Machines the pool does not
// know (built directly, or from unpoolable options) are ignored.
func (p *MachinePool) Put(m *Machine) {
	if p == nil || m == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key, ok := p.leased[m]
	if !ok {
		return
	}
	delete(p.leased, m)
	p.free[key] = append(p.free[key], m)
}

// Recycle returns every leased machine to the pool at once — the
// between-trials sweep for callers that don't track individual
// machines (a trial may build several and drop them on the floor).
// Because it reclaims ALL leases, it is only safe when one goroutine
// owns every outstanding lease — the runner's one-pool-per-worker
// shape. Goroutines sharing a pool must return machines with Put.
func (p *MachinePool) Recycle() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	//spylint:allow detrand free-list order is unobservable: Get resets every machine before reuse
	for m, key := range p.leased {
		delete(p.leased, m)
		p.free[key] = append(p.free[key], m)
	}
}

// Stats reports how many Gets were served from the pool versus by
// building a new machine.
func (p *MachinePool) Stats() (hits, misses uint64) {
	if p == nil {
		return 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}
