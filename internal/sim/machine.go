// Machine assembly and the memory-event service path: this file is
// where the NUMA caching behaviour the paper reverse engineers
// actually lives (home-GPU L2 caching, NVLink traversal, contention-
// dependent jitter). The box shape and latency model come from an
// arch.Profile — the paper's P100 DGX-1 by default.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"spybox/internal/arch"
	"spybox/internal/gpu"
	"spybox/internal/l2cache"
	"spybox/internal/nvlink"
	"spybox/internal/vmem"
	"spybox/internal/xrand"
)

// Options configure machine construction.
type Options struct {
	Seed uint64
	// Profile selects the architecture (GPU count, L2 geometry, SM
	// resources, latency model, topology family). nil means the
	// paper's machine, arch.P100DGX1(). Explicit CacheCfg / Topology
	// below override the corresponding profile-derived defaults.
	Profile  *arch.Profile
	CacheCfg l2cache.Config
	Topology *nvlink.Topology
	// NoiseOff disables all timing jitter; useful in unit tests that
	// assert exact latencies.
	NoiseOff bool
	// ContentionSigmaPer overrides arch.ContentionSigmaPer when > 0.
	ContentionSigmaPer float64
	// MIGPartitions, when > 1, enables a MIG-style isolation defense
	// (Sec. VII): the cache index hash is disabled and every process
	// is confined to the frames of one of N disjoint cache-set
	// partitions (process ID modulo N). Two tenants in different
	// partitions can then never contend in the L2, which is exactly
	// the property the paper says defeats these attacks — and which
	// the mig defense experiment demonstrates.
	MIGPartitions int
}

// Machine is the whole simulated multi-GPU box.
//
// Fields exempted from the resetcomplete check below are fixed by the
// Config at construction and shared by every trial a pooled machine
// runs: the pool keys leases by config, so Reset(seed) rewinds state
// derived from the seed and leaves config-derived fields in place.
type Machine struct {
	//spylint:allow resetcomplete profile is part of the pool key, identical across leases
	prof    arch.Profile
	devices []*gpu.Device
	topo    *nvlink.Topology
	phys    *vmem.PhysMem

	eng    *engine
	jitter *xrand.Source
	root   *xrand.Source

	//spylint:allow resetcomplete latency model is config-derived, identical across leases
	lat arch.LatencyModel
	// lineSize is the L2 line width in bytes, from the cache geometry.
	//spylint:allow resetcomplete geometry is config-derived, identical across leases
	lineSize int
	//spylint:allow resetcomplete noise switch is part of the pool key
	noiseOff bool
	// hasFabric gates burst tallying off the p100 hot path.
	//spylint:allow resetcomplete topology flag is config-derived, identical across leases
	hasFabric bool
	//spylint:allow resetcomplete contention sigma is config-derived, identical across leases
	contSigmaPer float64
	//spylint:allow resetcomplete MIG layout is part of the pool key
	migPartitions int

	// peerEnabled[src][dst]: src may access memory homed on dst.
	peerEnabled [][]bool

	// Recent-accessor tracking per device for the contention noise
	// term. A compact slice, not a map: jitterFor runs on every single
	// line access, and at the handful of concurrently live workers an
	// attack runs, a linear stamp/count/prune pass does no hashing and
	// no per-access garbage.
	lastTouch [][]touchRec

	runMu sync.Mutex

	// pidCtr allocates process IDs for this machine (see AllocPID).
	pidCtr atomic.Int64
}

// contentionWindow is how many engine events back a worker still
// counts as "concurrently active" on an L2.
const contentionWindow = 96

// touchRec records one worker's most recent event on a device's L2.
// Holding the *Worker rather than its ID lets the liveness check read
// w.state directly instead of probing the engine's worker map.
type touchRec struct {
	w  *Worker
	ev uint64
}

// NewMachine builds a machine shaped by opts.Profile (the paper's
// P100 DGX-1 when nil). Zero-value fields of opts get profile
// defaults; an explicit CacheCfg or Topology overrides the profile's.
func NewMachine(opts Options) (*Machine, error) {
	prof := arch.P100DGX1()
	if opts.Profile != nil {
		prof = *opts.Profile
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if opts.CacheCfg == (l2cache.Config{}) {
		opts.CacheCfg = l2cache.FromProfile(prof)
	}
	if opts.Topology == nil {
		topo, err := nvlink.FromProfile(prof)
		if err != nil {
			return nil, err
		}
		opts.Topology = topo
	}
	if opts.MIGPartitions > 1 {
		// Partitioned instances address dedicated L2 banks directly;
		// the hash would smear partitions across each other.
		opts.CacheCfg.HashIndex = false
	}
	n := opts.Topology.NumGPUs()
	root := xrand.New(opts.Seed ^ 0x5b7a1e4c90d3f821)
	m := &Machine{
		prof:          prof,
		topo:          opts.Topology,
		phys:          vmem.NewPhysMem(n),
		eng:           newEngine(),
		root:          root,
		jitter:        root.Split(),
		lat:           prof.Lat,
		lineSize:      opts.CacheCfg.LineSize,
		noiseOff:      opts.NoiseOff,
		hasFabric:     opts.Topology.HasFabric(),
		contSigmaPer:  prof.Lat.ContentionSigmaPer,
		migPartitions: opts.MIGPartitions,
	}
	if opts.ContentionSigmaPer > 0 {
		m.contSigmaPer = opts.ContentionSigmaPer
	}
	devCfg := gpu.FromProfile(prof)
	devCfg.Cache = opts.CacheCfg
	m.peerEnabled = make([][]bool, n)
	m.lastTouch = make([][]touchRec, n)
	for i := 0; i < n; i++ {
		d, err := gpu.New(arch.DeviceID(i), devCfg, root.Split())
		if err != nil {
			return nil, err
		}
		m.devices = append(m.devices, d)
		m.peerEnabled[i] = make([]bool, n)
	}
	return m, nil
}

// Reset rewinds the machine to the state NewMachine would have built
// it in with the given seed, reusing every existing allocation: RNG
// streams are re-derived in construction order, caches flushed, HBM
// row buffers closed, physical memory emptied (page buffers recycled),
// fabric counters and port clocks cleared, peer access revoked, the
// contention tracker drained, and the PID counter rewound. A reset
// machine's runs are byte-identical to a fresh machine's — the golden
// tests pin this — which is what makes pooling observably invisible.
//
// Reset is only legal between Runs (no live workers); the engine
// panics otherwise.
func (m *Machine) Reset(seed uint64) {
	m.runMu.Lock()
	defer m.runMu.Unlock()
	m.eng.reset()
	// Replay NewMachine's derivation order exactly: root, then the
	// jitter stream, then one child per device.
	m.root.Reseed(seed ^ 0x5b7a1e4c90d3f821)
	m.jitter.ReseedFrom(m.root)
	m.phys.Reset()
	m.topo.ResetStats()
	m.topo.ResetPortClocks()
	m.topo.ResetRouting()
	for i, d := range m.devices {
		d.Reset(m.root)
		clear(m.peerEnabled[i])
		m.lastTouch[i] = m.lastTouch[i][:0]
	}
	m.pidCtr.Store(0)
}

// MustNewMachine panics on construction error (fixed configs).
func MustNewMachine(opts Options) *Machine {
	m, err := NewMachine(opts)
	if err != nil {
		panic(err)
	}
	return m
}

// Device returns GPU dev.
func (m *Machine) Device(dev arch.DeviceID) *gpu.Device { return m.devices[dev] }

// Profile returns the architecture profile the machine was built from.
func (m *Machine) Profile() arch.Profile { return m.prof }

// LineSize returns the L2 line size the machine was built with (the
// cache geometry's, which an Options.CacheCfg override may have set
// independently of the profile).
func (m *Machine) LineSize() int { return m.lineSize }

// NumGPUs returns the number of GPUs in the box.
func (m *Machine) NumGPUs() int { return len(m.devices) }

// Topology returns the NVLink fabric.
func (m *Machine) Topology() *nvlink.Topology { return m.topo }

// Phys returns machine physical memory.
func (m *Machine) Phys() *vmem.PhysMem { return m.phys }

// Root returns the machine's root RNG; Split it for per-component
// streams rather than drawing from it directly.
func (m *Machine) Root() *xrand.Source { return m.root }

// AllocPID hands out this machine's next process ID. Atomic: trial
// workers build processes on distinct machines, but nothing stops two
// processes being created on one machine from different goroutines,
// and tying the counter to the machine (rather than a package-level
// map keyed by it) also lets finished machines be collected.
func (m *Machine) AllocPID() arch.ProcessID {
	return arch.ProcessID(m.pidCtr.Add(1) - 1)
}

// EnablePeer lets GPU src read memory homed on dst. Mirrors
// cudaDeviceEnablePeerAccess: it fails unless a direct NVLink
// connects the two, the behaviour the paper reports.
func (m *Machine) EnablePeer(src, dst arch.DeviceID) error {
	if src == dst {
		return nil
	}
	if !m.topo.Connected(src, dst) {
		return fmt.Errorf("sim: peer access %v->%v unavailable: %v and %v are not connected via NVLink",
			src, dst, src, dst)
	}
	m.peerEnabled[src][dst] = true
	return nil
}

// PeerEnabled reports whether src may access memory homed on dst.
func (m *Machine) PeerEnabled(src, dst arch.DeviceID) bool {
	if src == dst {
		return true
	}
	if src < 0 || dst < 0 || int(src) >= len(m.peerEnabled) || int(dst) >= len(m.peerEnabled) {
		return false
	}
	return m.peerEnabled[src][dst]
}

// FrameFilter returns the frame placement policy for a process under
// the machine's isolation configuration, or nil when placement is
// unrestricted. Under MIG-style partitioning, process pid may only
// receive frames whose cache region belongs to partition pid mod N,
// so tenants of different partitions can never share a cache set.
func (m *Machine) FrameFilter(pid arch.ProcessID) func(uint64) bool {
	if m.migPartitions <= 1 {
		return nil
	}
	cfg := m.devices[0].L2().Config()
	regions := cfg.Sets / cfg.LinesPerPage()
	if regions < m.migPartitions {
		regions = m.migPartitions
	}
	part := int(pid) % m.migPartitions
	perPart := regions / m.migPartitions
	lo, hi := part*perPart, (part+1)*perPart
	return func(frame uint64) bool {
		r := int(frame % uint64(regions))
		return r >= lo && r < hi
	}
}

// MIGPartitions reports the configured partition count (0 or 1 means
// partitioning is off).
func (m *Machine) MIGPartitions() int { return m.migPartitions }

// opKind distinguishes event request types.
type opKind int

const (
	opLoad opKind = iota
	opProbe
	opStream
	opYield
)

// request is one shared-hardware event. Each Worker embeds exactly one
// and reuses it for every op it issues: the event loop is fully
// serialized, so a request is only ever live between one yield and the
// matching service, and reuse keeps the hot path allocation-free. The
// lats/hits result slices are grow-only scratch owned by the worker.
type request struct {
	kind opKind

	// opLoad
	pa       arch.PA
	loadData bool

	// opProbe
	pas []arch.PA

	// opStream
	base   arch.PA
	count  int
	stride int

	// results
	value   uint64
	lat     arch.Cycles
	hit     bool
	lats    []arch.Cycles
	hits    []bool
	misses  int
	touched []int // set indices touched (opStream, optional)
}

// Worker is one simulated thread block's execution context.
type Worker struct {
	eng     *engine
	m       *Machine
	cond    *sync.Cond
	id      int
	name    string
	dev     arch.DeviceID
	clock   arch.Cycles
	state   int
	heapIdx int // position in the engine's parked heap, or noHeapIdx

	pending *request
	res     *gpu.BlockReservation

	// req is the worker's reusable event record (see request); bursts
	// is service-side fabric-burst scratch, likewise grow-only.
	req    request
	bursts []homeBurst
}

// Spawn creates a worker (one simulated thread block) on dev running
// body. sharedMemBytes participates in SM occupancy; pass 0 when the
// kernel does not use shared memory for anything the scheduler should
// know about.
func (m *Machine) Spawn(dev arch.DeviceID, name string, sharedMemBytes int, body func(*Worker)) (*Worker, error) {
	if int(dev) >= len(m.devices) {
		return nil, fmt.Errorf("sim: no such device %d", int(dev))
	}
	res, err := m.devices[dev].PlaceBlock(sharedMemBytes)
	if err != nil {
		return nil, err
	}
	w := &Worker{m: m, eng: m.eng, dev: dev, name: name, res: res}
	w.cond = sync.NewCond(&m.eng.mu)
	m.eng.register(w, func(w *Worker) {
		defer w.res.Release()
		body(w)
	})
	return w, nil
}

// Run drives the machine until every spawned worker finishes. It is
// the host-side synchronization point (cudaDeviceSynchronize across
// the whole box). Fabric port clocks reset per run: kernel clocks all
// start at zero, so backlog left by a previous run's kernels (whose
// clocks ran far ahead) would otherwise stall this run's first bursts
// for phantom cycles.
func (m *Machine) Run() {
	m.runMu.Lock()
	defer m.runMu.Unlock()
	m.topo.ResetPortClocks()
	m.eng.runAll(m.service)
}

// --- Worker-facing operations (called from kernel goroutines) ---

// Name returns the worker's debug name.
func (w *Worker) Name() string { return w.name }

// Device returns the GPU the worker runs on.
func (w *Worker) Device() arch.DeviceID { return w.dev }

// Clock reads the cycle counter, charging the read overhead, like the
// CUDA clock() intrinsic.
func (w *Worker) Clock() arch.Cycles {
	w.clock += w.m.lat.ClockRead
	return w.clock
}

// Now returns the current cycle without measurement overhead (host /
// instrumentation use; attack code should use Clock).
func (w *Worker) Now() arch.Cycles { return w.clock }

// Busy advances the worker's clock by n dummy ALU operations.
func (w *Worker) Busy(n int) {
	w.clock += arch.Cycles(n) * w.m.lat.ALUOp
}

// BusyHeavy advances the clock by n "computationally heavy dummy
// instructions" — the trigonometric busy-wait the trojan uses while
// transmitting a '0'.
func (w *Worker) BusyHeavy(n int) {
	w.clock += arch.Cycles(n) * w.m.lat.HeavyOp
}

// SharedWrite models buffering a value in on-SM shared memory (the
// attacks record timing samples there to keep the measurement path
// off the L2).
func (w *Worker) SharedWrite() {
	w.clock += w.m.lat.SharedMem
}

// LoadCG performs an L1-bypassing cached load (__ldcg) of the 8-byte
// word at physical address pa, returning the loaded value and the
// access latency. One engine event.
func (w *Worker) LoadCG(pa arch.PA) (uint64, arch.Cycles) {
	v, lat, _ := w.LoadCGHit(pa)
	return v, lat
}

// LoadCGHit is LoadCG plus the ground-truth L2 hit flag, for callers
// (tests, diagnostics) that should not re-derive hit/miss from latency
// thresholds. Attack code models the real machine and must keep using
// latency classification.
func (w *Worker) LoadCGHit(pa arch.PA) (uint64, arch.Cycles, bool) {
	req := &w.req
	req.kind = opLoad
	req.pa = pa
	req.loadData = true
	w.yield(req)
	return req.value, req.lat, req.hit
}

// TouchCG is LoadCG without data (for kernels that only shape cache
// state); it still moves the line through the L2.
func (w *Worker) TouchCG(pa arch.PA) arch.Cycles {
	lat, _ := w.TouchCGHit(pa)
	return lat
}

// TouchCGHit is TouchCG plus the ground-truth L2 hit flag.
func (w *Worker) TouchCGHit(pa arch.PA) (arch.Cycles, bool) {
	req := &w.req
	req.kind = opLoad
	req.pa = pa
	req.loadData = false
	w.yield(req)
	return req.lat, req.hit
}

// ProbeLines accesses every line in pas as one warp-parallel probe:
// per-line latencies are measured individually, and the aggregate
// charge models memory-level parallelism (max latency plus issue
// intervals plus per-miss serialization). One engine event.
//
// The returned slice is the worker's own scratch buffer: it is valid
// until this worker's next ProbeLines/ProbeLinesHits call, and callers
// that retain latencies across probes must copy them out.
//
//spylint:scratch
func (w *Worker) ProbeLines(pas []arch.PA) (lats []arch.Cycles, total arch.Cycles) {
	lats, _, total = w.ProbeLinesHits(pas)
	return lats, total
}

// ProbeLinesHits is ProbeLines plus the per-line ground-truth hit
// flags. Both returned slices are worker-owned scratch with the same
// lifetime rule as ProbeLines.
//
//spylint:scratch
func (w *Worker) ProbeLinesHits(pas []arch.PA) (lats []arch.Cycles, hits []bool, total arch.Cycles) {
	req := &w.req
	req.kind = opProbe
	req.pas = pas
	w.yield(req)
	req.pas = nil
	return req.lats, req.hits, req.lat
}

// StreamRange touches count lines starting at physical address base
// with the given byte stride, as a streaming warp would. It returns
// the number of L2 misses and the total cycles charged. One engine
// event regardless of count, which keeps large victim workloads cheap
// to simulate.
func (w *Worker) StreamRange(base arch.PA, count, stride int) (misses int, total arch.Cycles) {
	req := &w.req
	req.kind = opStream
	req.base = base
	req.count = count
	req.stride = stride
	w.yield(req)
	return req.misses, req.lat
}

// Yield parks the worker for one no-op event, letting equal-clock
// peers run. Rarely needed; spin loops that contain real events never
// starve anyone.
func (w *Worker) Yield() {
	w.req.kind = opYield
	w.yield(&w.req)
}

// --- Event service (engine goroutine, lock held) ---

// homeBurst tallies one event's remote lines per home device so the
// whole event can reserve fabric ports as a single burst. Almost every
// event touches at most one remote home, so a tiny ordered slice beats
// a map and keeps iteration deterministic.
type homeBurst struct {
	dev arch.DeviceID
	n   int
}

// addBurst counts one remote line bound for dev.
func addBurst(list []homeBurst, dev arch.DeviceID) []homeBurst {
	for i := range list {
		if list[i].dev == dev {
			list[i].n++
			return list
		}
	}
	return append(list, homeBurst{dev: dev, n: 1})
}

// reserveBursts books switch-fabric port occupancy for the event's
// remote lines (arriving at the worker's current clock) and returns
// the total FIFO queue delay. Zero on point-to-point boxes, so the
// P100 path is untouched.
func (m *Machine) reserveBursts(w *Worker, bursts []homeBurst) arch.Cycles {
	var wait arch.Cycles
	for _, b := range bursts {
		wait += m.topo.ReserveBurst(w.dev, b.dev, b.n, w.clock)
	}
	return wait
}

// service applies one request to shared hardware state.
//
//spylint:hotpath
func (m *Machine) service(w *Worker, req *request) {
	switch req.kind {
	case opYield:
		// no-op: the park/resume itself is the point
	case opLoad:
		lat, hit := m.accessLine(w, req.pa)
		if home := req.pa.HomeDevice(); m.hasFabric && home != w.dev {
			// A single load observes its own port backlog directly.
			lat += m.topo.ReserveBurst(w.dev, home, 1, w.clock)
		}
		if req.loadData {
			req.value = m.phys.ReadU64(req.pa)
		}
		req.hit = hit
		req.lat = lat
		w.clock += lat
	case opProbe:
		if n := len(req.pas); cap(req.lats) < n {
			req.lats = make([]arch.Cycles, n) //spylint:allow hotalloc grow-only scratch: capacity is kept on the pooled request and reused by every later probe
			req.hits = make([]bool, n)        //spylint:allow hotalloc grow-only scratch: capacity is kept on the pooled request and reused by every later probe
		} else {
			req.lats = req.lats[:n]
			req.hits = req.hits[:n]
		}
		var maxLat arch.Cycles
		bursts := w.bursts[:0]
		misses := 0
		for i, pa := range req.pas {
			lat, hit := m.accessLine(w, pa)
			req.lats[i] = lat
			req.hits[i] = hit
			if !hit {
				misses++
			}
			if lat > maxLat {
				maxLat = lat
			}
			if home := pa.HomeDevice(); m.hasFabric && home != w.dev {
				bursts = addBurst(bursts, home)
			}
		}
		total := maxLat
		if n := len(req.pas); n > 1 {
			total += arch.Cycles(n-1) * m.lat.HitII
		}
		total += arch.Cycles(misses) * m.lat.MissII
		// The warp's remote lines cross the fabric as one burst: the
		// port backlog delays the probe as a whole, never one line's
		// measured latency — classification stays clean under load.
		total += m.reserveBursts(w, bursts)
		w.bursts = bursts
		req.misses = misses
		req.lat = total
		w.clock += total
	case opStream:
		var total arch.Cycles
		bursts := w.bursts[:0]
		misses := 0
		for i := 0; i < req.count; i++ {
			pa := req.base + arch.PA(i*req.stride)
			lat, hit := m.accessLine(w, pa)
			if !hit {
				misses++
			}
			// Streaming warps overlap almost everything; charge the
			// issue interval per line plus full latency for the first.
			if i == 0 {
				total += lat
			} else {
				total += m.lat.HitII
				if !hit {
					total += m.lat.MissII
				}
			}
			if home := pa.HomeDevice(); m.hasFabric && home != w.dev {
				bursts = addBurst(bursts, home)
			}
		}
		// One streaming event is one fabric burst; its port occupancy
		// is what backpressures co-scheduled streams on the same plane.
		total += m.reserveBursts(w, bursts)
		w.bursts = bursts
		req.misses = misses
		req.lat = total
		w.clock += total
	}
}

// accessLine performs the NUMA L2 access for one line and returns its
// latency and hit status. This is the mechanism the whole paper rests
// on: the line is cached in the L2 of the GPU that *homes* the
// physical page, never the requester's.
func (m *Machine) accessLine(w *Worker, pa arch.PA) (arch.Cycles, bool) {
	home := pa.HomeDevice()
	remote := home != w.dev
	if remote && !m.PeerEnabled(w.dev, home) {
		panic(fmt.Sprintf("sim: worker %q on %v accessed %v memory without peer access",
			w.name, w.dev, home))
	}
	hit, _ := m.devices[home].L2().Access(pa &^ arch.PA(m.lineSize-1))
	lat := m.lat.L2Hit
	if !hit {
		lat += m.devices[home].HBM().ReadLine(pa)
	}
	if remote {
		hop, err := m.topo.Traverse(w.dev, home, m.lineSize)
		if err != nil {
			// ErrNotConnected carries no pair identity (it is a
			// sentinel so Traverse never allocates); add it here.
			panic(fmt.Sprintf("sim: %v -> %v: %v", w.dev, home, err))
		}
		lat += hop
		if !hit {
			lat += m.lat.RemoteMissExtra
		}
	}
	lat += m.jitterFor(w, home)
	return lat, hit
}

// jitterFor samples the timing noise for an access by worker w to the
// L2 of device home. Noise grows with the number of other workers
// recently active on the same L2 — the port/bank contention that
// drives the Fig. 9 error-rate curve.
func (m *Machine) jitterFor(w *Worker, home arch.DeviceID) arch.Cycles {
	// One linear pass over the device's recent accessors: stamp w,
	// count live others within the window, and compact stale records
	// out in place. No hashing, no map churn — this runs per line.
	now := m.eng.eventNo
	recs := m.lastTouch[home]
	kept := recs[:0]
	others := 0
	stamped := false
	for _, r := range recs {
		if r.w == w {
			r.ev = now
			stamped = true
		} else if r.w.state == stateDone || now-r.ev > contentionWindow {
			// Only live workers within the recency window count: a
			// worker from a finished kernel cannot contend for ports.
			continue
		} else {
			others++
		}
		kept = append(kept, r)
	}
	if !stamped {
		kept = append(kept, touchRec{w: w, ev: now})
	}
	m.lastTouch[home] = kept
	if m.noiseOff {
		return 0
	}
	sigma := m.lat.JitterSigma + m.contSigmaPer*float64(others)
	j := m.jitter.NormSigma(sigma)
	if j < 0 {
		// Latencies have a hard floor; fold the negative tail back so
		// the mean stays near nominal but dispersion is preserved.
		j = -j / 2
	}
	return arch.Cycles(j + 0.5)
}

// ContentionLevel reports how many distinct workers touched dev's L2
// within the trailing contention window (diagnostic hook).
func (m *Machine) ContentionLevel(dev arch.DeviceID) int {
	n := 0
	for _, r := range m.lastTouch[dev] {
		if m.eng.eventNo-r.ev <= contentionWindow {
			n++
		}
	}
	return n
}
