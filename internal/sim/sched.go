// The parked-worker scheduler queue: an indexed binary min-heap keyed
// by (clock, id). Every simulated L2/HBM access parks its worker once,
// so push/pop here is the hottest path in the whole simulator; the
// heap replaces an older per-event sort of all worker IDs, taking the
// scheduling step from O(n log n) with an allocation per event to an
// allocation-free O(log n).
package sim

// parkedHeap orders parked workers by (clock, id), the same total
// order the engine has always serviced events in: smallest local clock
// first, ties broken by the lower worker ID. Each worker caches its
// heap position in heapIdx, making membership checks and future
// reposition operations O(1) to locate.
type parkedHeap struct {
	ws []*Worker
}

// noHeapIdx marks a worker that is not currently in the heap.
const noHeapIdx = -1

func (h *parkedHeap) len() int { return len(h.ws) }

// grow pre-sizes the backing array for at least n parked workers, so a
// kernel launch storm (every block parking its first event at once)
// never pays append growth inside the event loop.
func (h *parkedHeap) grow(n int) {
	if cap(h.ws) >= n {
		return
	}
	ws := make([]*Worker, len(h.ws), n)
	copy(ws, h.ws)
	h.ws = ws
}

func (h *parkedHeap) less(i, j int) bool {
	a, b := h.ws[i], h.ws[j]
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	return a.id < b.id
}

func (h *parkedHeap) swap(i, j int) {
	h.ws[i], h.ws[j] = h.ws[j], h.ws[i]
	h.ws[i].heapIdx = i
	h.ws[j].heapIdx = j
}

// push adds a freshly parked worker. Under -tags simdebug the index
// doubles as a scheduler invariant: a worker must never be parked
// twice without being serviced in between, and the whole heap is
// re-verified after every mutation.
//
//spylint:hotpath
func (h *parkedHeap) push(w *Worker) {
	if simDebug && w.heapIdx != noHeapIdx {
		panic("sim: worker parked while already in the scheduler heap")
	}
	w.heapIdx = len(h.ws)
	h.ws = append(h.ws, w)
	h.up(w.heapIdx)
	if simDebug {
		h.verify()
	}
}

// verify checks the full heap invariant — parent ordering and heapIdx
// consistency — and panics on violation. Compiled to a no-op call site
// unless built with -tags simdebug.
func (h *parkedHeap) verify() {
	if !simDebug {
		return
	}
	for i := range h.ws {
		if h.ws[i].heapIdx != i {
			panic("sim: parked heap index out of sync with worker")
		}
		if i > 0 && h.less(i, (i-1)/2) {
			panic("sim: parked heap ordering invariant violated")
		}
	}
}

// popMin removes and returns the (clock, id)-minimal parked worker.
// Returns nil on an empty heap; the engine treats that as an invariant
// violation.
//
//spylint:hotpath
func (h *parkedHeap) popMin() *Worker {
	if len(h.ws) == 0 {
		return nil
	}
	min := h.ws[0]
	last := len(h.ws) - 1
	h.swap(0, last)
	h.ws[last] = nil // release the reference for GC
	h.ws = h.ws[:last]
	if last > 0 {
		h.down(0)
	}
	min.heapIdx = noHeapIdx
	if simDebug {
		h.verify()
	}
	return min
}

func (h *parkedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *parkedHeap) down(i int) {
	n := len(h.ws)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h.less(l, least) {
			least = l
		}
		if r < n && h.less(r, least) {
			least = r
		}
		if least == i {
			return
		}
		h.swap(i, least)
		i = least
	}
}
