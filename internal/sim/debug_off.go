//go:build !simdebug

package sim

// simDebug gates the scheduler's invariant checks. The default build
// compiles them out of the hot path entirely; `go test -tags simdebug`
// turns them back on.
const simDebug = false
