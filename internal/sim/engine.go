// Package sim contains the conservative discrete-event engine that
// executes simulated GPU kernels and the Machine that ties devices,
// interconnect, and physical memory together.
//
// Kernels are ordinary Go functions running in goroutines. Every
// shared-hardware interaction (an L2/HBM access, a warp-parallel
// probe, a streaming touch) is one *event*: the worker parks, the
// engine waits until every live worker is parked, services the parked
// worker with the smallest local clock (ties broken by worker ID), and
// resumes it. Because exactly one worker executes between parks, the
// simulation is fully serialized and deterministic: identical seeds
// give identical cycle-for-cycle runs, including all timing jitter.
//
// Scheduling is O(log n) per event: parked workers sit in an indexed
// min-heap keyed by (clock, id) — see sched.go — and every wakeup is a
// targeted Signal to a single goroutine. The engine goroutine is woken
// exactly once per scheduling round, by the last worker to park; each
// resumed worker is woken through its own condition variable. No
// broadcast is ever needed.
//
// This mirrors how the attacks see the machine: each thread block has
// its own clock() domain, while the L2s, HBM and NVLink are globally
// shared and ordered.
package sim

import (
	"fmt"
	"sync"
)

// worker states.
const (
	stateRunning = iota
	stateParked
	stateDone
)

// engine serializes workers by simulated time.
type engine struct {
	mu sync.Mutex
	// hostCond wakes the engine goroutine in runAll. Its only waiter
	// is the host, so workers Signal it (never Broadcast), and only
	// when they are the last runner to park or finish.
	hostCond *sync.Cond
	workers  map[int]*Worker
	parked   parkedHeap
	running  int // workers currently executing user code
	nextID   int
	eventNo  uint64
}

func newEngine() *engine {
	e := &engine{workers: make(map[int]*Worker)}
	e.hostCond = sync.NewCond(&e.mu)
	return e
}

// reset rewinds the engine to its freshly constructed state so worker
// IDs and event numbers replay identically on a reused machine. It is
// only legal between runs, when no workers exist.
func (e *engine) reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.workers) != 0 || e.running != 0 || e.parked.len() != 0 {
		panic("sim: engine reset with live workers")
	}
	e.nextID = 0
	e.eventNo = 0
}

// register adds a worker in the running state and starts its body.
func (e *engine) register(w *Worker, body func(*Worker)) {
	e.mu.Lock()
	w.id = e.nextID
	e.nextID++
	w.state = stateRunning
	w.heapIdx = noHeapIdx
	e.workers[w.id] = w
	e.running++
	// Every registered worker may be parked simultaneously (a launch
	// storm parks all blocks at clock 0); size the heap for that now so
	// the event loop never grows it.
	e.parked.grow(len(e.workers))
	e.mu.Unlock()

	go func() {
		defer func() {
			e.mu.Lock()
			w.state = stateDone
			delete(e.workers, w.id)
			e.running--
			if e.running == 0 {
				e.hostCond.Signal()
			}
			e.mu.Unlock()
		}()
		// A freshly registered worker must not touch shared state
		// before the engine schedules it: park once at clock 0 (or at
		// its launch clock) with a no-op request.
		w.yield(nil)
		body(w)
	}()
}

// yield parks the worker with a pending request and blocks until the
// engine has serviced it. The last runner to park hands control to the
// engine with a single targeted signal.
//
//spylint:hotpath
func (w *Worker) yield(req *request) {
	e := w.eng
	e.mu.Lock()
	w.pending = req
	w.state = stateParked
	e.parked.push(w)
	e.running--
	if e.running == 0 {
		e.hostCond.Signal()
	}
	for w.state == stateParked {
		w.cond.Wait()
	}
	e.mu.Unlock()
}

// runAll drives the engine until no workers remain. It must be called
// from the host goroutine after workers are registered.
//
//spylint:hotpath
func (e *engine) runAll(service func(*Worker, *request)) {
	e.mu.Lock()
	for {
		// Wait until every live worker is parked.
		for e.running > 0 {
			e.hostCond.Wait()
		}
		if len(e.workers) == 0 {
			e.mu.Unlock()
			return
		}
		w := e.parked.popMin()
		if w == nil {
			panic(fmt.Sprintf("sim: scheduler invariant violated: %d workers, none parked", len(e.workers)))
		}
		req := w.pending
		w.pending = nil
		e.eventNo++
		// Service while holding the engine lock: exactly one worker
		// mutates shared hardware state at a time, in clock order.
		if req != nil {
			service(w, req) //spylint:allow hotalloc the only service implementation is Machine.service, itself vetted as a //spylint:hotpath root
		}
		w.state = stateRunning
		e.running++
		w.cond.Signal()
		// Wait for this worker to park again (or finish) before
		// considering the next event, preserving total order.
	}
}
