// The trial runner: experiments decompose into independent trials
// (one simulated Machine each), the runner fans them out over a
// bounded worker pool, and results are merged in trial order. Because
// every trial's seed is derived only from (run seed, trial index) and
// merging ignores completion order, a run is bit-identical at any
// parallelism level — `-parallel 1` and `-parallel 8` produce the same
// reports, metrics, and artifacts. EXPERIMENTS.md lists which
// experiments are trial-decomposed and at what granularity.
package expt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"spybox/internal/xrand"
)

// Trial identifies one unit of runner work: its index within the
// experiment and the Params the trial body should run with. The
// embedded Params carry the trial's derived seed and always have
// Parallel == 1, so a trial can never recursively fan out.
type Trial struct {
	Index  int
	Params Params
}

// TrialSeed derives the seed for a trial from the run seed: trial i
// gets the ith output of the splitmix64 stream seeded with the run
// seed. Well-mixed, collision-free across indices, and a pure
// function of (seed, trial) — the property that makes parallel and
// serial runs identical.
func TrialSeed(seed uint64, trial int) uint64 {
	return xrand.SplitMix64At(seed, uint64(trial))
}

// parallelism resolves the effective worker count: Params.Parallel
// when positive, otherwise every available core.
func (p Params) parallelism() int {
	if p.Parallel > 0 {
		return p.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// RunTrials executes n independent trials over a worker pool of
// p.parallelism() goroutines and returns the outputs in trial order.
// Each trial receives Params with its TrialSeed-derived seed. On
// failure the error of the lowest-indexed failing trial is returned —
// the same one a serial run would have stopped at.
func RunTrials[T any](p Params, n int, run func(t Trial) (T, error)) ([]T, error) {
	return runPool(p.parallelism(), n, func(i int) (T, error) {
		tp := p
		tp.Seed = TrialSeed(p.Seed, i)
		tp.Parallel = 1
		return run(Trial{Index: i, Params: tp})
	})
}

// OneTrial adapts a monolithic single-shot experiment body to the
// trial API: one inline trial carrying the run's own seed (no
// derivation), so existing single-shot experiments keep their exact
// historical outputs — including their errors, which gain no
// "trial 0" framing because there are no trials to speak of.
func OneTrial(body func(Params) (*Result, error)) func(Params) (*Result, error) {
	return func(p Params) (*Result, error) {
		return body(p)
	}
}

// runPool is the bounded fan-out shared by RunTrials and OneTrial:
// `workers` goroutines claim indices 0..n-1 in order and write results
// into an index-addressed slice, which is what makes the merge step
// order-independent of scheduling.
func runPool[T any](workers, n int, run func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := run(i)
			if err != nil {
				return nil, fmt.Errorf("trial %d: %w", i, err)
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next      atomic.Int64
		lowestErr atomic.Int64 // lowest failing index seen so far
		mu        sync.Mutex
		errTrial  = n
		firstErr  error
		wg        sync.WaitGroup
	)
	next.Store(-1)
	lowestErr.Store(int64(n))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				// Skip trials above the lowest failure seen so far:
				// their results would be discarded anyway. lowestErr
				// only decreases, so every skipped index stays above
				// the final errTrial — trials at or below it all run,
				// and the lowest-indexed error (the one a serial run
				// stops at) still wins.
				if int64(i) > lowestErr.Load() {
					continue
				}
				v, err := run(i)
				if err != nil {
					mu.Lock()
					if i < errTrial {
						errTrial, firstErr = i, err
					}
					lowestErr.Store(int64(errTrial))
					mu.Unlock()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("trial %d: %w", errTrial, firstErr)
	}
	return out, nil
}
