// The trial runner: experiments decompose into independent trials
// (one simulated Machine each), the runner fans them out over a
// bounded worker pool, and results are merged in trial order. Because
// every trial's seed is derived only from (run seed, trial index) and
// merging ignores completion order, a run is bit-identical at any
// parallelism level — `-parallel 1` and `-parallel 8` produce the same
// reports, metrics, and artifacts. EXPERIMENTS.md lists which
// experiments are trial-decomposed and at what granularity.
//
// The runner is also where cancellation and progress live: it checks
// Params.Ctx before claiming each trial (so a SIGINT'd run stops at
// the next trial boundary instead of being killed mid-flight) and
// reports per-trial start/finish through Params.Hooks.
package expt

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"spybox/internal/sim"
	"spybox/internal/xrand"
)

// poolingDisabled turns off machine pooling in the runner (trials then
// build every machine fresh). Test hook: the pooled-determinism tests
// flip it to prove pooled and fresh runs are byte-identical — which is
// also why it cannot perturb results: either setting must produce the
// same bytes, and TestPoolingObservablyInvisible pins that.
//
//spylint:allow detrand test hook; pooled and fresh runs are proven byte-identical
var poolingDisabled bool

// newTrialPool returns the machine pool for one trial worker, or nil
// when pooling is disabled.
func newTrialPool() *sim.MachinePool {
	if poolingDisabled {
		return nil
	}
	return sim.NewMachinePool()
}

// Trial identifies one unit of runner work: its index within the
// experiment and the Params the trial body should run with. The
// embedded Params carry the trial's derived seed and always have
// Parallel == 1, so a trial can never recursively fan out.
type Trial struct {
	Index  int
	Params Params
}

// TrialSeed derives the seed for a trial from the run seed: trial i
// gets the ith output of the splitmix64 stream seeded with the run
// seed. Well-mixed, collision-free across indices, and a pure
// function of (seed, trial) — the property that makes parallel and
// serial runs identical.
func TrialSeed(seed uint64, trial int) uint64 {
	return xrand.SplitMix64At(seed, uint64(trial))
}

// parallelism resolves the effective worker count: Params.Parallel
// when positive, otherwise every available core.
func (p Params) parallelism() int {
	if p.Parallel > 0 {
		return p.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// RunTrials executes n independent trials over a worker pool of
// p.parallelism() goroutines and returns the outputs in trial order.
// Each trial receives Params with its TrialSeed-derived seed. On
// failure the error of the lowest-indexed failing trial is returned —
// the same one a serial run would have stopped at. A cancelled
// context wins only when no trial failed; the returned error then
// wraps the context's error.
func RunTrials[T any](p Params, n int, run func(t Trial) (T, error)) ([]T, error) {
	return runPool(p.ctx(), p.Hooks, p.Job, p.parallelism(), n, func(i int, pool *sim.MachinePool) (T, error) {
		tp := p
		tp.Seed = TrialSeed(p.Seed, i)
		tp.Parallel = 1
		tp.Hooks = nil // trials never recursively observe
		tp.pool = pool // machines recycle within this worker
		return run(Trial{Index: i, Params: tp})
	})
}

// OneTrial adapts a monolithic single-shot experiment body to the
// trial API: one inline trial carrying the run's own seed (no
// derivation), so existing single-shot experiments keep their exact
// historical outputs — including their errors, which gain no
// "trial 0" framing because there are no trials to speak of. The
// adapter still honours cancellation (checked before the body runs;
// single-shot bodies are not interruptible mid-flight) and reports
// the body as trial 0 of 1 to the progress hooks.
func OneTrial(body func(Params) (*Result, error)) func(Params) (*Result, error) {
	return func(p Params) (*Result, error) {
		if err := p.ctx().Err(); err != nil {
			return nil, fmt.Errorf("run cancelled: %w", err)
		}
		hooks, job := p.Hooks, p.Job
		p.Hooks = nil
		hooks.start(job, 0, 1)
		r, err := body(p)
		hooks.done(job, 0, 1, err)
		return r, err
	}
}

// runPool is the bounded fan-out behind RunTrials: `workers`
// goroutines claim indices 0..n-1 in order and write results into an
// index-addressed slice, which is what makes the merge step
// order-independent of scheduling. Each worker owns one machine pool,
// passed to run and swept (Recycle) after every trial, so machines
// recycle within a worker but never migrate between goroutines.
func runPool[T any](ctx context.Context, hooks *TrialHooks, job string, workers, n int, run func(i int, pool *sim.MachinePool) (T, error)) ([]T, error) {
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		pool := newTrialPool()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("run cancelled before trial %d/%d: %w", i, n, err)
			}
			hooks.start(job, i, n)
			v, err := run(i, pool)
			pool.Recycle()
			hooks.done(job, i, n, err)
			if err != nil {
				return nil, fmt.Errorf("trial %d: %w", i, err)
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next      atomic.Int64
		lowestErr atomic.Int64 // lowest failing index seen so far
		mu        sync.Mutex
		errTrial  = n
		firstErr  error
		cancelled atomic.Int64 // lowest index refused because ctx was done
		wg        sync.WaitGroup
	)
	next.Store(-1)
	lowestErr.Store(int64(n))
	cancelled.Store(int64(n))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool := newTrialPool()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				// A done context stops the pool at the next trial
				// boundary: in-flight trials finish (their machines
				// stay consistent), unclaimed trials are abandoned.
				if ctx.Err() != nil {
					for {
						c := cancelled.Load()
						if int64(i) >= c || cancelled.CompareAndSwap(c, int64(i)) {
							break
						}
					}
					return
				}
				// Skip trials above the lowest failure seen so far:
				// their results would be discarded anyway. lowestErr
				// only decreases, so every skipped index stays above
				// the final errTrial — trials at or below it all run,
				// and the lowest-indexed error (the one a serial run
				// stops at) still wins.
				if int64(i) > lowestErr.Load() {
					continue
				}
				hooks.start(job, i, n)
				v, err := run(i, pool)
				pool.Recycle()
				hooks.done(job, i, n, err)
				if err != nil {
					mu.Lock()
					if i < errTrial {
						errTrial, firstErr = i, err
					}
					lowestErr.Store(int64(errTrial))
					mu.Unlock()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, fmt.Errorf("trial %d: %w", errTrial, firstErr)
	}
	if c := cancelled.Load(); c < int64(n) {
		return nil, fmt.Errorf("run cancelled before trial %d/%d: %w", c, n, ctx.Err())
	}
	return out, nil
}
