package expt

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestTrialSeedDistinctAndStable(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 1000; i++ {
		s := TrialSeed(20230612, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("TrialSeed collision: trials %d and %d -> %#x", prev, i, s)
		}
		seen[s] = i
		if s != TrialSeed(20230612, i) {
			t.Fatalf("TrialSeed(%d) not stable", i)
		}
	}
	if TrialSeed(1, 0) == TrialSeed(2, 0) {
		t.Error("different run seeds gave the same trial seed")
	}
}

func TestRunTrialsOrderAndSeeds(t *testing.T) {
	p := Params{Seed: 42, Scale: Small, Parallel: 4}
	out, err := RunTrials(p, 17, func(tr Trial) ([2]uint64, error) {
		if tr.Params.Parallel != 1 {
			t.Errorf("trial %d sees Parallel=%d, want 1 (no nested fan-out)", tr.Index, tr.Params.Parallel)
		}
		return [2]uint64{uint64(tr.Index), tr.Params.Seed}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o[0] != uint64(i) {
			t.Errorf("slot %d holds trial %d: merge order broken", i, o[0])
		}
		if o[1] != TrialSeed(42, i) {
			t.Errorf("trial %d ran with seed %#x, want TrialSeed-derived %#x", i, o[1], TrialSeed(42, i))
		}
	}
}

func TestRunTrialsLowestError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("boom %d", i) }
	for _, parallel := range []int{1, 8} {
		p := Params{Seed: 7, Scale: Small, Parallel: parallel}
		_, err := RunTrials(p, 12, func(tr Trial) (int, error) {
			if tr.Index == 3 || tr.Index == 9 {
				return 0, boom(tr.Index)
			}
			return tr.Index, nil
		})
		if err == nil || !strings.Contains(err.Error(), "trial 3") || !strings.Contains(err.Error(), "boom 3") {
			t.Errorf("parallel=%d: got %v, want the lowest-indexed failure (trial 3)", parallel, err)
		}
	}
}

func TestOneTrialPreservesSeed(t *testing.T) {
	var got uint64
	run := OneTrial(func(p Params) (*Result, error) {
		got = p.Seed
		return newResult("x", "x"), nil
	})
	if _, err := run(Params{Seed: 99, Scale: Small, Parallel: 8}); err != nil {
		t.Fatal(err)
	}
	if got != 99 {
		t.Errorf("OneTrial derived the seed (%d), want the run seed 99 untouched", got)
	}
}

func TestOneTrialPropagatesError(t *testing.T) {
	sentinel := errors.New("nope")
	run := OneTrial(func(Params) (*Result, error) { return nil, sentinel })
	if _, err := run(smallParams()); !errors.Is(err, sentinel) {
		t.Errorf("got %v, want wrapped sentinel", err)
	}
}

// TestParallelDeterminism is the runner's core guarantee: the same
// seed produces an identical Result — report text, metrics, series,
// and artifacts — whether trials run serially or 8 wide.
func TestParallelDeterminism(t *testing.T) {
	cases := []struct {
		id    string
		run   func(Params) (*Result, error)
		arch  string // architecture profile; empty means p100-dgx1
		heavy bool   // skipped under -short; the four light cases always run
	}{
		{"fig9", Fig9, "", false},
		{"fig11", Fig11, "", false},
		{"table2", TableII, "", true},
		{"mig", MIG, "", false},
		{"pairs", Pairs, "", false},
		{"archsweep", ArchSweep, "", true},
		// The switch-fabric cases: port-queue state is per-machine and
		// arrival-ordered by the engine, so contention delays must not
		// vary with the worker-pool size either.
		{"fabricsweep", FabricSweep, "", true},
		{"sec7-v100", SecVII, "v100-dgx2", true},
		// The arms-race game threads one xrand stream through policy
		// decisions, payload draws, and sampler seeds across every
		// round, so any worker-pool leakage would scramble a trace.
		{"armsrace", ArmsRace, "", true},
		{"armsrace-v100", ArmsRace, "v100-dgx2", true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			if c.heavy && testing.Short() {
				t.Skip("heavy determinism case skipped in -short CI runs")
			}
			t.Parallel()
			render := func(parallel int) (string, map[string]float64, map[string][]byte) {
				r, err := c.run(Params{Seed: 20230612, Scale: Small, Parallel: parallel, Arch: c.arch})
				if err != nil {
					t.Fatalf("parallel=%d: %v", parallel, err)
				}
				var sb strings.Builder
				r.Print(&sb)
				return sb.String(), r.Metrics, r.Artifacts
			}
			rep1, met1, art1 := render(1)
			rep8, met8, art8 := render(8)
			if rep1 != rep8 {
				t.Errorf("reports differ between -parallel 1 and -parallel 8:\n--- serial ---\n%s\n--- parallel ---\n%s", rep1, rep8)
			}
			if !reflect.DeepEqual(met1, met8) {
				t.Errorf("metrics differ: serial %v, parallel %v", met1, met8)
			}
			if len(art1) != len(art8) {
				t.Fatalf("artifact sets differ: %d vs %d", len(art1), len(art8))
			}
			for name, data := range art1 {
				if !bytes.Equal(data, art8[name]) {
					t.Errorf("artifact %s differs between parallelism levels", name)
				}
			}
		})
	}
}
