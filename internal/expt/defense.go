// E13-E14: the defense-side studies — Sec. VI noise mitigation via
// occupancy blocking and Sec. VII NVLink-traffic detection.
package expt

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/core"
	"spybox/internal/cudart"
	"spybox/internal/mitigate"
	"spybox/internal/victim"
	"spybox/internal/xrand"
)

// secVIMessageBytes sizes the probe transmissions.
func secVIMessageBytes(s Scale) int {
	if s == Small {
		return 32
	}
	return 128
}

// SecVI measures the covert channel's error rate in three conditions:
// quiet machine, with a concurrent noise application on the target
// GPU, and with the noise application locked out by occupancy
// blocking (the paper's mitigation). Trial-decomposed: one trial per
// condition. Every condition deliberately rebuilds the same machine
// from the run seed (rather than the trial seed), so the three error
// rates form a controlled comparison where only the condition differs.
func SecVI(p Params) (*Result, error) {
	const noiseBlocks = 28
	const noiseShared = 8 << 10

	type sec6Trial struct {
		errRate float64
		placed  int
	}
	conds := []struct{ withNoise, withBlocking bool }{
		{false, false}, // quiet machine
		{true, false},  // concurrent noise app
		{true, true},   // noise + occupancy blocking
	}
	outs, err := RunTrials(p, len(conds), func(t Trial) (sec6Trial, error) {
		withNoise, withBlocking := conds[t.Index].withNoise, conds[t.Index].withBlocking
		pair, err := setupAttackPair(Params{Seed: p.Seed, Scale: p.Scale, Parallel: 1})
		if err != nil {
			return sec6Trial{}, err
		}
		pairs, err := core.AlignChannels(pair.trojan, pair.spy, pair.trojanSets, pair.spySets, 2)
		if err != nil {
			return sec6Trial{}, err
		}
		ch, err := core.NewChannel(pair.trojan, pair.spy, pairs, core.DefaultCovertConfig())
		if err != nil {
			return sec6Trial{}, err
		}
		msgRNG := xrand.New(p.Seed ^ 0x6e)
		msg := make([]byte, secVIMessageBytes(p.Scale))
		for i := range msg {
			msg[i] = byte(msgRNG.Uint64())
		}

		var blocker *mitigate.OccupancyBlocker
		var innerStop *bool
		if withBlocking {
			blocker, err = mitigate.Occupy(pair.m, trojanGPU, p.Seed^0xb10c,
				func() bool { return innerStop != nil && *innerStop })
			if err != nil {
				return sec6Trial{}, err
			}
		}
		var noisePlaced int
		tx, err := ch.TransmitWith(msg, func(stop *bool) error {
			innerStop = stop
			if withNoise {
				noise, nerr := mitigate.NewNoise(pair.m, trojanGPU, p.Seed^0x401, noiseBlocks, noiseShared)
				if nerr != nil {
					return nerr
				}
				noisePlaced, nerr = noise.Launch(stop)
				return nerr
			}
			return nil
		})
		if err != nil {
			return sec6Trial{}, err
		}
		_ = blocker
		return sec6Trial{errRate: tx.ErrorRate(), placed: noisePlaced}, nil
	})
	if err != nil {
		return nil, err
	}

	r := newResult("sec6", "Noise mitigation via occupancy blocking")
	quiet, noisy, blocked := outs[0].errRate, outs[1].errRate, outs[2].errRate
	placedNoisy, placedBlocked := outs[1].placed, outs[2].placed
	r.Notef("%-34s %-12s %s", "condition", "error rate", "noise blocks resident")
	r.Rowf("%-34s %-12.2f%% %d",
		f("condition", "quiet machine"), fu("error", "%", 100*quiet), f("noise_blocks", 0))
	r.Rowf("%-34s %-12.2f%% %d",
		f("condition", "concurrent noise app"), fu("error", "%", 100*noisy), f("noise_blocks", placedNoisy))
	r.Rowf("%-34s %-12.2f%% %d",
		f("condition", "noise + occupancy blocking"), fu("error", "%", 100*blocked), f("noise_blocks", placedBlocked))
	r.Blank()
	r.Notef("blocking pins all leftover shared memory, so the noise app cannot co-reside")
	r.Notef("and the channel recovers its quiet-machine quality (Sec. VI).")
	r.SetMetric("error_quiet_pct", "%", 100*quiet)
	r.SetMetric("error_noisy_pct", "%", 100*noisy)
	r.SetMetric("error_blocked_pct", "%", 100*blocked)
	r.SetMetric("noise_blocks_without_blocking", "blocks", float64(placedNoisy))
	r.SetMetric("noise_blocks_with_blocking", "blocks", float64(placedBlocked))
	return r, nil
}

// SecVII evaluates the proposed detector: per-subwindow NVLink
// traffic sampling under (a) an idle fabric, (b) benign workloads
// including a coarse peer-to-peer bulk transfer, and (c) the covert
// channel. The decision statistic is the MEDIAN subwindow rate on the
// busiest link: sustained fine-grained probing keeps every subwindow
// hot, while benign bulk transfers light up only the burst's window.
func SecVII(p Params) (*Result, error) {
	pair, err := setupAttackPair(p)
	if err != nil {
		return nil, err
	}
	pairs, err := core.AlignChannels(pair.trojan, pair.spy, pair.trojanSets, pair.spySets, 2)
	if err != nil {
		return nil, err
	}
	ch, err := core.NewChannel(pair.trojan, pair.spy, pairs, core.DefaultCovertConfig())
	if err != nil {
		return nil, err
	}
	const samplerGPU arch.DeviceID = 7
	const interval arch.Cycles = 150_000
	const thresholdPerMCycle = 2000.0

	r := newResult("sec7", "NVLink traffic detection")
	r.Notef("%-30s %-10s %-16s %-16s %s", "window", "subwins", "median rate/Mcy", "peak rate/Mcy", "detected")

	report := func(name string, s *mitigate.Sampler) {
		med, peak := s.MedianMaxLinkRate(), s.PeakMaxLinkRate()
		hit := med > thresholdPerMCycle
		r.Rowf("%-30s %-10d %-16.1f %-16.1f %v",
			f("window", name), f("subwindows", len(s.Windows())),
			fu("median_rate", "txns/Mcycle", med), fu("peak_rate", "txns/Mcycle", peak),
			f("detected", hit))
		r.SetMetric("median_rate_"+name, "txns/Mcycle", med)
		if hit {
			r.SetMetric("detected_"+name, "", 1)
		} else {
			r.SetMetric("detected_"+name, "", 0)
		}
	}

	// (a) idle fabric: only a local workload on GPU2 runs.
	idleSampler := mitigate.NewSampler(pair.m.Topology(), interval)
	idleDone := false
	idle := victim.NewVectorAdd(pair.m, 2, p.Seed^0x700, victim.Config{ArrayKB: 256, Passes: 6, ChunkDelay: 1500})
	if err := idleSampler.Launch(pair.m, samplerGPU, p.Seed^0x710, func() bool { return idleDone }); err != nil {
		return nil, err
	}
	if err := idle.Launch(&idleDone); err != nil {
		return nil, err
	}
	pair.m.Run()
	report("idle (local workload only)", idleSampler)

	// (b) benign: a victim on GPU0 plus a coarse one-shot peer-to-peer
	// bulk copy GPU1 -> GPU0 (what real multi-GPU apps do).
	benSampler := mitigate.NewSampler(pair.m.Topology(), interval)
	benDone, bulkDone := false, false
	bulk := cudart.MustNewProcess(pair.m, spyGPU, p.Seed^0x701)
	if err := bulk.EnablePeerAccess(trojanGPU); err != nil {
		return nil, err
	}
	remoteBuf, err := bulk.MallocOnDevice(trojanGPU, 512*1024)
	if err != nil {
		return nil, err
	}
	if err := benSampler.Launch(pair.m, samplerGPU, p.Seed^0x711, func() bool { return benDone && bulkDone }); err != nil {
		return nil, err
	}
	if err := bulk.Launch("bulk-copy", 0, func(k *cudart.Kernel) {
		defer func() { bulkDone = true }()
		k.Stream(remoteBuf, 512*1024/arch.CacheLineSize, arch.CacheLineSize)
	}); err != nil {
		return nil, err
	}
	ben := victim.NewVectorAdd(pair.m, trojanGPU, p.Seed^0x702, victim.Config{ArrayKB: 256, Passes: 8, ChunkDelay: 1500})
	if err := ben.Launch(&benDone); err != nil {
		return nil, err
	}
	pair.m.Run()
	report("benign (victims + bulk P2P)", benSampler)

	// (c) covert channel window.
	covSampler := mitigate.NewSampler(pair.m.Topology(), interval)
	msg := make([]byte, secVIMessageBytes(p.Scale))
	rng := xrand.New(p.Seed ^ 0x703)
	for i := range msg {
		msg[i] = byte(rng.Uint64())
	}
	tx, err := ch.TransmitWith(msg, func(stop *bool) error {
		return covSampler.Launch(pair.m, samplerGPU, p.Seed^0x712, func() bool { return *stop })
	})
	if err != nil {
		return nil, err
	}
	report("covert channel active", covSampler)

	r.Blank()
	r.Rowf("covert error rate during detection window: %.2f%%",
		fu("covert_error", "%", 100*tx.ErrorRate()))
	r.Rowf("threshold: median busiest-link rate > %.0f txns/Mcycle.",
		fu("threshold", "txns/Mcycle", thresholdPerMCycle))
	r.Notef("the covert channel's line-granular probing keeps every subwindow hot; benign")
	r.Notef("peer traffic is a one-shot burst, so its median subwindow is quiet (Sec. VII).")

	// On switch-based boxes the two-stage fabric pins each GPU pair to
	// one plane, so the detector can go beyond "a stream exists" and
	// name the plane it rides.
	if planeRates := covSampler.PlaneMedianRates(); len(planeRates) > 0 {
		r.Blank()
		r.Notef("per-plane median subwindow rates during the covert window:")
		for i, rate := range planeRates {
			r.Rowf("  switch plane %d: %8.1f txns/Mcy",
				f("plane", i), fu("rate", "txns/Mcycle", rate))
			r.SetMetric(fmt.Sprintf("plane_rate_%d", i), "txns/Mcycle", rate)
		}
		truth := pair.m.Topology().PlaneFor(spyGPU, trojanGPU)
		if plane, rate := covSampler.LocalizePlane(thresholdPerMCycle); plane >= 0 {
			r.Rowf("covert stream localized to switch plane %d (%.1f txns/Mcy; pair %v-%v is pinned to plane %d)",
				f("localized_plane", plane), fu("rate", "txns/Mcycle", rate),
				f("spy_gpu", spyGPU), f("trojan_gpu", trojanGPU), f("true_plane", truth))
			r.SetMetric("localized_plane", "", float64(plane))
		} else {
			r.Rowf("covert stream not localized to a single plane (pair %v-%v is pinned to plane %d)",
				f("spy_gpu", spyGPU), f("trojan_gpu", trojanGPU), f("true_plane", truth))
		}
	}
	return r, nil
}
