// E18 "archsweep": sweep the paper's attack chain across architecture
// profiles (P100/DGX-1 -> V100/DGX-2 -> A100-class). The paper frames
// its findings as a class of attacks on multi-GPU boxes, not one box;
// this experiment asks the Sec. VII question directly — how do the
// channels behave as cache geometry, GPU count, and topology change?
// For each profile it re-runs, from scratch and with timing only:
//
//  1. the Fig. 4 timing characterization (the four latency clusters
//     move with the profile's latency model and must be re-learned);
//  2. the Table I geometry reverse engineering (sets, associativity,
//     line size, replacement policy — the discovered geometry is
//     checked against the profile's ground truth);
//  3. the Fig. 7 cross-process eviction-set alignment;
//  4. a covert transmission with bandwidth and error rate.
//
// Trial-decomposed: one trial per profile. Trials deliberately seed
// from the run seed (like mig and pairs) so the only thing that
// differs between them is the architecture; parallel/serial identity
// is untouched because the seeding is a pure function of the trial
// index.
package expt

import (
	"spybox/internal/arch"
	"spybox/internal/core"
	"spybox/internal/sim"
	"spybox/internal/xrand"
)

// archsweepSets is how many aligned set pairs the covert phase drives.
const archsweepSets = 2

// archsweepMessageBytes is the covert message length per scale.
func archsweepMessageBytes(s Scale) int {
	switch s {
	case Small:
		return 32
	case Paper:
		return 512
	default:
		return 160
	}
}

// archOut is one profile's sweep outcome.
type archOut struct {
	prof       arch.Profile
	centers    [4]float64
	localB     float64
	remoteB    float64
	geo        core.Geometry
	geoOK      bool
	trojanSets int
	spySets    int
	alignedIdx int
	bw         float64
	errPct     float64
}

// archSweepTrial runs the full attack chain on one profile.
func archSweepTrial(p Params, prof arch.Profile) (archOut, error) {
	out := archOut{prof: prof, alignedIdx: -1}
	tp := p
	tp.Arch = prof.Name
	m := machineFor(tp, sim.Options{Seed: p.Seed})

	// 1. Timing characterization: thresholds are re-learned per
	// profile, never carried over.
	timing, err := core.CharacterizeTiming(m, trojanGPU, spyGPU, 48, p.Seed^0xfeed)
	if err != nil {
		return out, err
	}
	out.centers = timing.Thresholds.Centers
	out.localB = timing.Thresholds.LocalBoundary
	out.remoteB = timing.Thresholds.RemoteBoundary

	// 2. Geometry reverse engineering on the trojan GPU.
	pages := discoveryPages(prof, p.Scale)
	trojan, err := core.NewAttacker(m, trojanGPU, trojanGPU, pages, timing.Thresholds, p.Seed^0x1)
	if err != nil {
		return out, err
	}
	tg, err := trojan.DiscoverPageGroups(trojan.Ways())
	if err != nil {
		return out, err
	}
	fresh, err := core.NewAttacker(m, trojanGPU, trojanGPU, 16, timing.Thresholds, p.Seed^0x32)
	if err != nil {
		return out, err
	}
	out.geo, err = trojan.InferGeometry(tg, 2*prof.L2Ways, fresh)
	if err != nil {
		return out, err
	}
	out.geoOK = out.geo.Sets == prof.L2Sets && out.geo.Ways == prof.L2Ways &&
		out.geo.LineSize == prof.L2LineSize && out.geo.Policy == "LRU"

	// 3. Cross-process alignment from the spy GPU over NVLink.
	spy, err := core.NewAttacker(m, spyGPU, trojanGPU, pages, timing.Thresholds, p.Seed^0x2)
	if err != nil {
		return out, err
	}
	sg, err := spy.DiscoverPageGroups(spy.Ways())
	if err != nil {
		return out, err
	}
	tSets := trojan.AllEvictionSets(tg, trojan.Ways())
	sSets := spy.AllEvictionSets(sg, spy.Ways())
	out.trojanSets, out.spySets = len(tSets), len(sSets)
	if len(tSets) == 0 || len(sSets) == 0 {
		return out, nil // attack dead on this profile; still a result
	}
	out.alignedIdx, _, err = core.AlignSweep(trojan, spy, tSets[0], sSets, 3)
	if err != nil {
		return out, err
	}
	if out.alignedIdx < 0 {
		return out, nil
	}

	// 4. Covert transmission over a fixed number of aligned pairs.
	chPairs, err := core.AlignChannels(trojan, spy, tSets, sSets, archsweepSets)
	if err != nil {
		return out, err
	}
	ch, err := core.NewChannel(trojan, spy, chPairs, core.DefaultCovertConfig())
	if err != nil {
		return out, err
	}
	msgRNG := xrand.New(p.Seed ^ 0xa5eed)
	msg := make([]byte, archsweepMessageBytes(p.Scale))
	for i := range msg {
		msg[i] = byte(msgRNG.Uint64())
	}
	tx, err := ch.Transmit(msg)
	if err != nil {
		return out, err
	}
	out.bw = tx.BandwidthMBps()
	out.errPct = tx.ErrorRate() * 100
	return out, nil
}

// ArchSweep reruns the attack chain on every named profile and reports
// how each stage ports. Params.Arch is ignored: the sweep covers all
// profiles by construction.
func ArchSweep(p Params) (*Result, error) {
	profs := arch.Profiles()
	outs, err := RunTrials(p, len(profs), func(t Trial) (archOut, error) {
		return archSweepTrial(p, profs[t.Index])
	})
	if err != nil {
		return nil, err
	}

	r := newResult("archsweep", "Attack portability across GPU box generations")
	ported := 0
	for _, o := range outs {
		name := o.prof.Name
		r.Rowf("--- %s", f("box", o.prof.String()))
		r.Rowf("timing clusters: [%.0f %.0f %.0f %.0f] cy, boundaries local %.0f / remote %.0f",
			fu("cluster_local_hit", "cycles", o.centers[0]), fu("cluster_local_miss", "cycles", o.centers[1]),
			fu("cluster_remote_hit", "cycles", o.centers[2]), fu("cluster_remote_miss", "cycles", o.centers[3]),
			fu("local_boundary", "cycles", o.localB), fu("remote_boundary", "cycles", o.remoteB))
		r.Rowf("geometry RE:     measured %d sets x %d ways x %d B (%s), truth %d x %d x %d — %s",
			f("measured_sets", o.geo.Sets), f("measured_ways", o.geo.Ways),
			fu("measured_line_size", "bytes", o.geo.LineSize), f("policy", o.geo.Policy),
			f("true_sets", o.prof.L2Sets), f("true_ways", o.prof.L2Ways),
			fu("true_line_size", "bytes", o.prof.L2LineSize), f("geo_verdict", verdict(o.geoOK)))
		r.Rowf("eviction sets:   trojan covers %d, spy covers %d; cross-process alignment %s",
			f("trojan_sets", o.trojanSets), f("spy_sets", o.spySets),
			f("align_verdict", verdict(o.alignedIdx >= 0)))
		if o.alignedIdx >= 0 {
			r.Rowf("covert channel:  %.4f MB/s at %.2f%% error over %d sets",
				fu("bandwidth", "MB/s", o.bw), fu("error", "%", o.errPct), f("sets", archsweepSets))
		} else {
			r.Notef("covert channel:  not established")
		}
		r.Blank()
		if o.geoOK && o.alignedIdx >= 0 {
			ported++
		}
		suffix := "_" + name
		r.SetMetric("geo_ok"+suffix, "", boolAsMetric(o.geoOK))
		r.SetMetric("aligned"+suffix, "", boolAsMetric(o.alignedIdx >= 0))
		r.SetMetric("measured_ways"+suffix, "", float64(o.geo.Ways))
		r.SetMetric("measured_sets"+suffix, "", float64(o.geo.Sets))
		r.SetMetric("bw_MBps"+suffix, "MB/s", o.bw)
		r.SetMetric("err_pct"+suffix, "%", o.errPct)
	}
	r.Rowf("the attack chain ports end to end on %d/%d profiles: the channels are a property",
		f("ported", ported), f("profiles", len(profs)))
	r.Notef("of NUMA home-L2 caching over NVLink, not of any one machine's constants. Wider")
	r.Notef("associativity raises discovery cost (eviction sets need `ways` lines) and all-to-all")
	r.Notef("fabrics remove the unconnected-pair refusals, but neither closes the channel.")
	r.SetMetric("profiles", "", float64(len(profs)))
	r.SetMetric("ported", "", float64(ported))
	return r, nil
}

// verdict renders a pass/fail tag for report lines.
func verdict(ok bool) string {
	if ok {
		return "OK"
	}
	return "MISMATCH"
}

// boolAsMetric maps a verdict into the metrics table.
func boolAsMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
