package expt

import (
	"bytes"
	"testing"
)

// TestPoolingObservablyInvisible runs a trial-decomposed experiment
// with machine pooling on (the default) and forced off, serial and
// parallel, and demands byte-identical rendered reports. This is the
// contract that lets the runner recycle machines at all: a pooled
// trial must be indistinguishable from one on a fresh box.
//
// Not t.Parallel(): it flips the package-level poolingDisabled hook.
func TestPoolingObservablyInvisible(t *testing.T) {
	render := func(parallel int, disabled bool) []byte {
		poolingDisabled = disabled
		defer func() { poolingDisabled = false }()
		r, err := Fig11(Params{Seed: 20230612, Scale: Small, Parallel: parallel})
		if err != nil {
			t.Fatalf("parallel=%d pooling-disabled=%t: %v", parallel, disabled, err)
		}
		var buf bytes.Buffer
		r.Print(&buf)
		return buf.Bytes()
	}
	want := render(1, true) // fresh machines, serial: the reference
	for _, tc := range []struct {
		name     string
		parallel int
	}{
		{"pooled-serial", 1},
		{"pooled-parallel", 4},
	} {
		if got := render(tc.parallel, false); !bytes.Equal(got, want) {
			t.Errorf("%s: report diverges from fresh-machine run (%d vs %d bytes)",
				tc.name, len(got), len(want))
		}
	}
}
