package expt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenArmsrace pins the armsrace report — and with it the
// per-round trace format and both policies' full decision sequences —
// byte-for-byte on the paper's machine at the default seed.
// Regenerate with -update only when a policy or format change is
// intended and reviewed.
func TestGoldenArmsrace(t *testing.T) {
	if testing.Short() {
		t.Skip("armsrace plays four full matches; skipped in -short CI runs")
	}
	t.Parallel()
	p := Params{Seed: 20230612, Scale: Small, Parallel: 1, Arch: "p100-dgx1"}
	r, err := ArmsRace(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	path := filepath.Join("testdata", "golden_armsrace_small.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("armsrace output diverged from the golden file.\n"+
			"got %d bytes, want %d; first divergence near byte %d",
			buf.Len(), len(want), firstDiff(buf.Bytes(), want))
	}
}

// TestArmsRaceDominates asserts the experiment's headline claim at
// the default seed: on both shipped profiles at least one adaptive
// defender setting strictly dominates the static Sec. VII baseline —
// same or better detection rate, higher attacker error rate, and no
// extra benign false positives.
func TestArmsRaceDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("armsrace plays four full matches per profile; skipped in -short CI runs")
	}
	for _, archName := range []string{"", "v100-dgx2"} {
		archName := archName
		name := archName
		if name == "" {
			name = "p100-dgx1"
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			r, err := ArmsRace(Params{Seed: 20230612, Scale: Small, Parallel: 1, Arch: archName})
			if err != nil {
				t.Fatal(err)
			}
			if r.Metrics["dominates"] != 1 {
				t.Errorf("no adaptive setting dominates the static baseline on %s", name)
			}
			if r.Metrics["err_pct_contain"] <= r.Metrics["err_pct_static"] {
				t.Errorf("containment did not raise the attacker error rate: %g <= %g",
					r.Metrics["err_pct_contain"], r.Metrics["err_pct_static"])
			}
		})
	}
}
