// Package expt regenerates every table and figure of the paper's
// evaluation. Each experiment is a function from Params to a Result —
// the structured report model in pkg/spybox/report, holding typed
// record rows, keyed metrics with units, chart series, and binary
// artifacts; cmd/spybox, the public pkg/spybox API, the benchmark
// harness, and EXPERIMENTS.md all consume these.
//
// Repetition-heavy experiments are decomposed into independent trials
// executed by the runner (runner.go); the per-experiment index, trial
// granularity, scales, and headline metrics live in EXPERIMENTS.md
// and in the registry's Trials/Headline metadata.
package expt

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"

	"spybox/internal/arch"
	"spybox/internal/core"
	"spybox/internal/sim"
	"spybox/pkg/spybox/report"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Small is for unit tests and benchmarks: seconds per experiment.
	Small Scale = iota
	// Default is the CLI scale: paper-shaped results in minutes.
	Default
	// Paper approaches the paper's sample counts where feasible.
	Paper
)

// Scales lists every scale, in increasing cost order.
func Scales() []Scale { return []Scale{Small, Default, Paper} }

// String returns the flag spelling of the scale, the inverse of
// ParseScale.
func (s Scale) String() string {
	switch s {
	case Small:
		return "small"
	case Default:
		return "default"
	case Paper:
		return "paper"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// ScaleNames returns the flag spellings of every scale (for CLI help
// and error messages).
func ScaleNames() []string {
	scales := Scales()
	out := make([]string, len(scales))
	for i, s := range scales {
		out[i] = s.String()
	}
	return out
}

// ParseScale maps a flag string to a Scale. The empty string means
// Default.
func ParseScale(s string) (Scale, error) {
	if s == "" {
		return Default, nil
	}
	for _, sc := range Scales() {
		if s == sc.String() {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("expt: unknown scale %q (%s)", s, strings.Join(ScaleNames(), "|"))
}

// TrialHooks observe the runner's per-trial lifecycle. Both callbacks
// may be invoked concurrently from worker goroutines; a nil hook set
// (or a nil callback) is silently skipped. The job argument is
// Params.Job, threaded through verbatim so one observer can
// demultiplex the trial streams of concurrently running jobs.
type TrialHooks struct {
	Start func(job string, index, total int)
	Done  func(job string, index, total int, err error)
}

func (h *TrialHooks) start(job string, index, total int) {
	if h != nil && h.Start != nil {
		h.Start(job, index, total)
	}
}

func (h *TrialHooks) done(job string, index, total int, err error) {
	if h != nil && h.Done != nil {
		h.Done(job, index, total, err)
	}
}

// Params parameterize one experiment run.
type Params struct {
	Seed  uint64
	Scale Scale
	// Parallel bounds how many trials of a decomposed experiment run
	// concurrently (each trial is its own simulated Machine). 0 means
	// use every available core. Results are bit-identical at any
	// value; see runner.go.
	Parallel int
	// Arch names the architecture profile to build machines from
	// (arch.ProfileNames). Empty means the paper's p100-dgx1, which
	// reproduces pre-profile reports byte-for-byte.
	Arch string
	// Ctx, when non-nil, cancels a run cleanly between trials (the
	// runner checks it before claiming each trial). A cancelled run
	// returns an error wrapping Ctx's error.
	Ctx context.Context
	// Hooks, when non-nil, observe per-trial start/finish — the
	// progress stream pkg/spybox exposes for long runs.
	Hooks *TrialHooks
	// Job is an opaque tag (the service layer's job ID) the runner
	// threads into every Hooks callback, so trial-level progress from
	// concurrent jobs can be told apart. It never influences results.
	Job string

	// pool, when non-nil, recycles machines across this worker's
	// trials (set by the runner; one pool per trial worker, so pooled
	// machines never cross goroutines). Because Machine.Reset is
	// byte-identical to fresh construction, pooling never influences
	// results — the pooled-determinism tests pin this.
	pool *sim.MachinePool
}

// ctx resolves the run's context; nil means never cancelled.
func (p Params) ctx() context.Context {
	if p.Ctx != nil {
		return p.Ctx
	}
	//spylint:allow ctxflow documented nil-ctx default: an unset Params.Ctx means the run is never cancelled
	return context.Background()
}

// ArchProfile resolves the run's architecture profile.
func (p Params) ArchProfile() (arch.Profile, error) {
	if p.Arch == "" {
		return arch.P100DGX1(), nil
	}
	return arch.LookupProfile(p.Arch)
}

// mustProfile is ArchProfile for experiment bodies; the CLI validates
// -arch before any experiment runs, so a failure here is a programming
// error.
func (p Params) mustProfile() arch.Profile {
	prof, err := p.ArchProfile()
	if err != nil {
		panic(err)
	}
	return prof
}

// MachineFor builds a machine on the run's architecture profile with
// the remaining options as given. Inside a trial the runner supplies a
// per-worker machine pool, so a matching machine from an earlier trial
// is reset to opts.Seed and reused instead of being rebuilt; outside
// the runner it is plain construction.
func (p Params) MachineFor(opts sim.Options) (*sim.Machine, error) {
	prof, err := p.ArchProfile()
	if err != nil {
		return nil, err
	}
	opts.Profile = &prof
	return p.pool.Get(opts) // a nil pool falls through to sim.NewMachine
}

// machineFor is MachineFor for experiment bodies, which run behind a
// CLI that has already validated -arch; a failure here is a
// programming error.
func machineFor(p Params, opts sim.Options) *sim.Machine {
	m, err := p.MachineFor(opts)
	if err != nil {
		panic(err)
	}
	return m
}

// Result is the structured experiment report (see pkg/spybox/report):
// ordered records with keyed fields, metrics with units, series, and
// artifacts, rendered as byte-identical text or schema-versioned JSON.
type Result = report.Result

// newResult starts an empty report.
func newResult(id, title string) *Result { return report.New(id, title) }

// f and fu build record fields (fu carries a unit); see report.F/FU.
func f(key string, v any) report.Field        { return report.F(key, v) }
func fu(key, unit string, v any) report.Field { return report.FU(key, unit, v) }

// attachPGM renders a memorygram into the result's artifacts. A
// failed render must not pass silently (the run would report success
// while dropping the artifact), so the error is recorded in the
// report records where the CLI prints it.
func attachPGM(r *Result, name string, g interface{ WritePGM(io.Writer) error }) {
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		r.Errorf("ARTIFACT ERROR: rendering %s.pgm failed: %v", name, err)
		return
	}
	r.Artifacts[name+".pgm"] = buf.Bytes()
}

// Experiment couples an ID with its runner and the machine-readable
// metadata tooling discovers via `spybox list -json`: the trial
// decomposition and the headline metric keys (patterns like
// `total_misses_<app>` expand per the placeholder).
type Experiment struct {
	ID       string
	Title    string
	Trials   string
	Headline []string
	Run      func(Params) (*Result, error)
}

// Registry lists all experiments in paper order. Trial-decomposed
// experiments (see runner.go and EXPERIMENTS.md) are registered
// directly; single-shot experiments ride the trivial OneTrial adapter
// so everything the CLI runs goes through the runner.
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig4", Title: "Local and remote GPU access time (timing characterization)",
			Trials:   "single-shot",
			Headline: []string{"local_boundary", "remote_boundary"},
			Run:      OneTrial(Fig4)},
		{ID: "fig5", Title: "Validating the eviction set determination",
			Trials:   "single-shot",
			Headline: []string{"eviction_step_local", "eviction_step_remote"},
			Run:      OneTrial(Fig5)},
		{ID: "table1", Title: "L2 cache architecture (reverse engineered)",
			Trials:   "single-shot",
			Headline: []string{"sets", "ways", "line_size", "cache_bytes", "policy_lru"},
			Run:      OneTrial(TableI)},
		{ID: "fig7", Title: "Eviction set alignment across processes",
			Trials:   "single-shot",
			Headline: []string{"aligned_fraction", "matched_avg_cycles", "unmatched_avg_cycles"},
			Run:      OneTrial(Fig7)},
		{ID: "fig9", Title: "Covert channel bandwidth and error rate vs. cache sets",
			Trials:   "one per (set count, repetition)",
			Headline: []string{"best_bandwidth_MBps", "error_at_1_set_pct", "error_at_max_sets_pct"},
			Run:      Fig9},
		{ID: "fig10", Title: "Covert message waveform received by spy",
			Trials:   "single-shot",
			Headline: []string{"zero_level_cycles", "one_level_cycles", "bit_error_rate"},
			Run:      OneTrial(Fig10)},
		{ID: "fig11", Title: "Memorygrams of six victim applications",
			Trials:   "one per victim application",
			Headline: []string{"total_misses_<app>"},
			Run:      Fig11},
		{ID: "fig12", Title: "Application fingerprinting confusion matrix",
			Trials:   "one victim class per trial",
			Headline: []string{"test_accuracy", "knn_accuracy", "softmax_accuracy", "recall_<app>"},
			Run:      Fig12},
		{ID: "fig13", Title: "MLP cache misses per set histogram",
			Trials:   "one per hidden size",
			Headline: []string{"total_misses_h<H>"},
			Run:      Fig13},
		{ID: "table2", Title: "Average misses over all cache sets vs. hidden neurons",
			Trials:   "4 reference + 4 extraction measurements",
			Headline: []string{"avg_misses_h<H>", "monotone_in_hidden", "extraction_correct"},
			Run:      TableII},
		{ID: "fig14", Title: "Memorygram of MLP with 128 vs 512 neurons",
			Trials:   "single-shot",
			Headline: []string{"total_misses_h128", "total_misses_h512"},
			Run:      OneTrial(Fig14)},
		{ID: "fig15", Title: "Two-epoch MLP memorygram and epoch counting",
			Trials:   "single-shot",
			Headline: []string{"epochs_detected", "epochs_true"},
			Run:      OneTrial(Fig15)},
		{ID: "sec6", Title: "Noise mitigation via occupancy blocking",
			Trials:   "one per condition (quiet / noisy / blocked)",
			Headline: []string{"error_quiet_pct", "error_noisy_pct", "error_blocked_pct", "noise_blocks_without_blocking", "noise_blocks_with_blocking"},
			Run:      SecVI},
		{ID: "sec7", Title: "NVLink traffic detection of cross-GPU attacks",
			Trials:   "single-shot",
			Headline: []string{"detected_<window>", "median_rate_<window>", "plane_rate_<i>", "localized_plane"},
			Run:      OneTrial(SecVII)},
		{ID: "mig", Title: "MIG-style partitioning defense (extension)",
			Trials:   "one per machine (stock / partitioned)",
			Headline: []string{"baseline_aligned", "mig_aligned"},
			Run:      MIG},
		{ID: "pairs", Title: "Cross-GPU timing across every NVLink pair (extension)",
			Trials:   "one per ordered GPU pair",
			Headline: []string{"connected_pairs", "refused_pairs", "hit_spread_cycles", "miss_spread_cycles"},
			Run:      Pairs},
		{ID: "multigpu", Title: "Covert channel over additional spy GPUs (extension)",
			Trials:   "one per spy configuration",
			Headline: []string{"bw_<config>", "err_<config>"},
			Run:      MultiGPU},
		{ID: "archsweep", Title: "Attack portability across GPU box generations (extension)",
			Trials:   "one per architecture profile",
			Headline: []string{"ported", "geo_ok_<profile>", "aligned_<profile>", "bw_MBps_<profile>", "err_pct_<profile>"},
			Run:      ArchSweep},
		{ID: "fabricsweep", Title: "Covert channel under switch-port contention (extension)",
			Trials:   "one per competitor count (0-3)",
			Headline: []string{"bw_MBps_<k>streams", "err_pct_<k>streams", "queue_cycles_<k>streams", "err_rise_pct", "queue_growth"},
			Run:      FabricSweep},
		{ID: "armsrace", Title: "Closed-loop attacker-vs-defense arms race (extension)",
			Trials:   "one per defender setting (static baseline + 3 adaptive)",
			Headline: []string{"det_rate_<setting>", "fp_rate_<setting>", "goodput_MBps_<setting>", "err_pct_<setting>", "cost_<setting>", "dominates"},
			Run:      ArmsRace},
	}
}

// lookupIndex is the ID -> Experiment map, built once from Registry().
// Write-once under sync.Once and derived from the static registry, so
// no trial can observe it in two states.
var (
	//spylint:allow detrand write-once sync.Once guard, never perturbs a trial
	lookupOnce sync.Once
	//spylint:allow detrand built once from the static registry, read-only afterwards
	lookupMap map[string]Experiment
)

// Lookup finds an experiment by ID in O(1).
func Lookup(id string) (Experiment, bool) {
	lookupOnce.Do(func() {
		reg := Registry()
		lookupMap = make(map[string]Experiment, len(reg))
		for _, e := range reg {
			lookupMap[e.ID] = e
		}
	})
	e, ok := lookupMap[id]
	return e, ok
}

// --- shared setup helpers ---

// trojanGPU and spyGPU are the attack endpoints used throughout: two
// NVLink-connected GPUs of the DGX-1, matching the paper's GPU A/B.
const (
	trojanGPU arch.DeviceID = 0
	spyGPU    arch.DeviceID = 1
)

// attackPair is the post-reverse-engineering state both channel
// experiments start from: trojan and spy attackers with discovered,
// de-aliased eviction sets over the trojan GPU's L2.
type attackPair struct {
	m          *sim.Machine
	trojan     *core.Attacker
	spy        *core.Attacker
	trojanSets []core.EvictionSet
	spySets    []core.EvictionSet
}

// discoveryPages returns the attacker buffer size (in 64 KB pages)
// for a scale on the run's architecture. Discovery needs every
// conflict group to hold at least 2*ways-1 pages (phase A hides
// ways-1 conflicters; phase B then needs ways-1 helpers), so the
// buffer must sit comfortably above regions*(2*ways-1) pages. On the
// P100 (4 regions, 16 ways) these sizes are the historical 176/256.
func discoveryPages(prof arch.Profile, s Scale) int {
	regions := prof.HashRegions()
	switch s {
	case Small:
		return regions * (2*prof.L2Ways + 12)
	default:
		return regions * 4 * prof.L2Ways
	}
}

// setupAttackPair builds machine + both attackers and runs discovery
// on each. The thresholds come from a real Fig. 4 characterization
// run, not from constants; the cache geometry (associativity, buffer
// sizing) comes from the machine's profile, never from the P100
// package constants.
func setupAttackPair(p Params) (*attackPair, error) {
	m := machineFor(p, sim.Options{Seed: p.Seed})
	prof, err := core.CharacterizeTiming(m, trojanGPU, spyGPU, 48, p.Seed^0xfeed)
	if err != nil {
		return nil, err
	}
	pages := discoveryPages(m.Profile(), p.Scale)
	trojan, err := core.NewAttacker(m, trojanGPU, trojanGPU, pages, prof.Thresholds, p.Seed^0x1)
	if err != nil {
		return nil, err
	}
	spy, err := core.NewAttacker(m, spyGPU, trojanGPU, pages, prof.Thresholds, p.Seed^0x2)
	if err != nil {
		return nil, err
	}
	tg, err := trojan.DiscoverPageGroups(trojan.Ways())
	if err != nil {
		return nil, err
	}
	sg, err := spy.DiscoverPageGroups(spy.Ways())
	if err != nil {
		return nil, err
	}
	tSets := trojan.AllEvictionSets(tg, trojan.Ways())
	sSets := spy.AllEvictionSets(sg, spy.Ways())
	return &attackPair{m: m, trojan: trojan, spy: spy, trojanSets: tSets, spySets: sSets}, nil
}

// setupSpy builds only the remote spy side (for side channels, where
// no trojan exists — the victim is an ordinary application).
func setupSpy(m *sim.Machine, p Params, pages int) (*core.Attacker, []core.EvictionSet, error) {
	prof, err := core.CharacterizeTiming(m, trojanGPU, spyGPU, 48, p.Seed^0xfeed)
	if err != nil {
		return nil, nil, err
	}
	spy, err := core.NewAttacker(m, spyGPU, trojanGPU, pages, prof.Thresholds, p.Seed^0x2)
	if err != nil {
		return nil, nil, err
	}
	sg, err := spy.DiscoverPageGroups(spy.Ways())
	if err != nil {
		return nil, nil, err
	}
	return spy, spy.AllEvictionSets(sg, spy.Ways()), nil
}
