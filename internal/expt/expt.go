// Package expt regenerates every table and figure of the paper's
// evaluation. Each experiment is a function from Params to a Result
// holding the printable rows/series the paper reports; cmd/spybox,
// the benchmark harness, and EXPERIMENTS.md all consume these.
//
// Repetition-heavy experiments are decomposed into independent trials
// executed by the runner (runner.go); the per-experiment index, trial
// granularity, scales, and headline metrics live in EXPERIMENTS.md.
package expt

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"

	"spybox/internal/arch"
	"spybox/internal/core"
	"spybox/internal/plot"
	"spybox/internal/sim"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Small is for unit tests and benchmarks: seconds per experiment.
	Small Scale = iota
	// Default is the CLI scale: paper-shaped results in minutes.
	Default
	// Paper approaches the paper's sample counts where feasible.
	Paper
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return Small, nil
	case "default", "":
		return Default, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("expt: unknown scale %q (small|default|paper)", s)
}

// Params parameterize one experiment run.
type Params struct {
	Seed  uint64
	Scale Scale
	// Parallel bounds how many trials of a decomposed experiment run
	// concurrently (each trial is its own simulated Machine). 0 means
	// use every available core. Results are bit-identical at any
	// value; see runner.go.
	Parallel int
	// Arch names the architecture profile to build machines from
	// (arch.ProfileNames). Empty means the paper's p100-dgx1, which
	// reproduces pre-profile reports byte-for-byte.
	Arch string
}

// ArchProfile resolves the run's architecture profile.
func (p Params) ArchProfile() (arch.Profile, error) {
	if p.Arch == "" {
		return arch.P100DGX1(), nil
	}
	return arch.LookupProfile(p.Arch)
}

// mustProfile is ArchProfile for experiment bodies; the CLI validates
// -arch before any experiment runs, so a failure here is a programming
// error.
func (p Params) mustProfile() arch.Profile {
	prof, err := p.ArchProfile()
	if err != nil {
		panic(err)
	}
	return prof
}

// machineFor builds a machine on the run's architecture profile with
// the remaining options as given.
func machineFor(p Params, opts sim.Options) *sim.Machine {
	prof := p.mustProfile()
	opts.Profile = &prof
	return sim.MustNewMachine(opts)
}

// Result is one experiment's reproduction output.
type Result struct {
	ID    string
	Title string
	// Lines are the human-readable report, printed in order.
	Lines []string
	// Series are optional chart data (also exported as CSV).
	Series []plot.Series
	// Metrics are the headline numbers, keyed for EXPERIMENTS.md.
	Metrics map[string]float64
	// Artifacts are binary outputs (PGM memorygram images), written
	// next to the CSVs when the CLI is given -out.
	Artifacts map[string][]byte
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Metrics: map[string]float64{}, Artifacts: map[string][]byte{}}
}

// attachPGM renders a memorygram into the result's artifacts. A
// failed render must not pass silently (the run would report success
// while dropping the artifact), so the error is recorded in the
// report lines where the CLI prints it.
func (r *Result) attachPGM(name string, g interface{ WritePGM(io.Writer) error }) {
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		r.addf("ARTIFACT ERROR: rendering %s.pgm failed: %v", name, err)
		return
	}
	r.Artifacts[name+".pgm"] = buf.Bytes()
}

// addf appends a formatted report line.
func (r *Result) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// Print writes the full report.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "=== %s — %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		fmt.Fprintln(w, l)
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w, "metrics:")
		for _, k := range keys {
			fmt.Fprintf(w, "  %-32s %g\n", k, r.Metrics[k])
		}
	}
	fmt.Fprintln(w)
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Params) (*Result, error)
}

// Registry lists all experiments in paper order. Trial-decomposed
// experiments (see runner.go and EXPERIMENTS.md) are registered
// directly; single-shot experiments ride the trivial OneTrial adapter
// so everything the CLI runs goes through the runner.
func Registry() []Experiment {
	return []Experiment{
		{"fig4", "Local and remote GPU access time (timing characterization)", OneTrial(Fig4)},
		{"fig5", "Validating the eviction set determination", OneTrial(Fig5)},
		{"table1", "L2 cache architecture (reverse engineered)", OneTrial(TableI)},
		{"fig7", "Eviction set alignment across processes", OneTrial(Fig7)},
		{"fig9", "Covert channel bandwidth and error rate vs. cache sets", Fig9},
		{"fig10", "Covert message waveform received by spy", OneTrial(Fig10)},
		{"fig11", "Memorygrams of six victim applications", Fig11},
		{"fig12", "Application fingerprinting confusion matrix", Fig12},
		{"fig13", "MLP cache misses per set histogram", Fig13},
		{"table2", "Average misses over all cache sets vs. hidden neurons", TableII},
		{"fig14", "Memorygram of MLP with 128 vs 512 neurons", OneTrial(Fig14)},
		{"fig15", "Two-epoch MLP memorygram and epoch counting", OneTrial(Fig15)},
		{"sec6", "Noise mitigation via occupancy blocking", SecVI},
		{"sec7", "NVLink traffic detection of cross-GPU attacks", OneTrial(SecVII)},
		{"mig", "MIG-style partitioning defense (extension)", MIG},
		{"pairs", "Cross-GPU timing across every NVLink pair (extension)", Pairs},
		{"multigpu", "Covert channel over additional spy GPUs (extension)", MultiGPU},
		{"archsweep", "Attack portability across GPU box generations (extension)", ArchSweep},
		{"fabricsweep", "Covert channel under switch-port contention (extension)", FabricSweep},
	}
}

// lookupIndex is the ID -> Experiment map, built once from Registry().
var (
	lookupOnce sync.Once
	lookupMap  map[string]Experiment
)

// Lookup finds an experiment by ID in O(1).
func Lookup(id string) (Experiment, bool) {
	lookupOnce.Do(func() {
		reg := Registry()
		lookupMap = make(map[string]Experiment, len(reg))
		for _, e := range reg {
			lookupMap[e.ID] = e
		}
	})
	e, ok := lookupMap[id]
	return e, ok
}

// --- shared setup helpers ---

// trojanGPU and spyGPU are the attack endpoints used throughout: two
// NVLink-connected GPUs of the DGX-1, matching the paper's GPU A/B.
const (
	trojanGPU arch.DeviceID = 0
	spyGPU    arch.DeviceID = 1
)

// attackPair is the post-reverse-engineering state both channel
// experiments start from: trojan and spy attackers with discovered,
// de-aliased eviction sets over the trojan GPU's L2.
type attackPair struct {
	m          *sim.Machine
	trojan     *core.Attacker
	spy        *core.Attacker
	trojanSets []core.EvictionSet
	spySets    []core.EvictionSet
}

// discoveryPages returns the attacker buffer size (in 64 KB pages)
// for a scale on the run's architecture. Discovery needs every
// conflict group to hold at least 2*ways-1 pages (phase A hides
// ways-1 conflicters; phase B then needs ways-1 helpers), so the
// buffer must sit comfortably above regions*(2*ways-1) pages. On the
// P100 (4 regions, 16 ways) these sizes are the historical 176/256.
func discoveryPages(prof arch.Profile, s Scale) int {
	regions := prof.HashRegions()
	switch s {
	case Small:
		return regions * (2*prof.L2Ways + 12)
	default:
		return regions * 4 * prof.L2Ways
	}
}

// setupAttackPair builds machine + both attackers and runs discovery
// on each. The thresholds come from a real Fig. 4 characterization
// run, not from constants; the cache geometry (associativity, buffer
// sizing) comes from the machine's profile, never from the P100
// package constants.
func setupAttackPair(p Params) (*attackPair, error) {
	m := machineFor(p, sim.Options{Seed: p.Seed})
	prof, err := core.CharacterizeTiming(m, trojanGPU, spyGPU, 48, p.Seed^0xfeed)
	if err != nil {
		return nil, err
	}
	pages := discoveryPages(m.Profile(), p.Scale)
	trojan, err := core.NewAttacker(m, trojanGPU, trojanGPU, pages, prof.Thresholds, p.Seed^0x1)
	if err != nil {
		return nil, err
	}
	spy, err := core.NewAttacker(m, spyGPU, trojanGPU, pages, prof.Thresholds, p.Seed^0x2)
	if err != nil {
		return nil, err
	}
	tg, err := trojan.DiscoverPageGroups(trojan.Ways())
	if err != nil {
		return nil, err
	}
	sg, err := spy.DiscoverPageGroups(spy.Ways())
	if err != nil {
		return nil, err
	}
	tSets := trojan.AllEvictionSets(tg, trojan.Ways())
	sSets := spy.AllEvictionSets(sg, spy.Ways())
	return &attackPair{m: m, trojan: trojan, spy: spy, trojanSets: tSets, spySets: sSets}, nil
}

// setupSpy builds only the remote spy side (for side channels, where
// no trojan exists — the victim is an ordinary application).
func setupSpy(m *sim.Machine, p Params, pages int) (*core.Attacker, []core.EvictionSet, error) {
	prof, err := core.CharacterizeTiming(m, trojanGPU, spyGPU, 48, p.Seed^0xfeed)
	if err != nil {
		return nil, nil, err
	}
	spy, err := core.NewAttacker(m, spyGPU, trojanGPU, pages, prof.Thresholds, p.Seed^0x2)
	if err != nil {
		return nil, nil, err
	}
	sg, err := spy.DiscoverPageGroups(spy.Ways())
	if err != nil {
		return nil, nil, err
	}
	return spy, spy.AllEvictionSets(sg, spy.Ways()), nil
}
