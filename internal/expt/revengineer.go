// E1-E4: the reverse-engineering experiments (Fig. 4, Fig. 5,
// Table I, Fig. 7).
package expt

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/core"
	"spybox/internal/plot"
	"spybox/internal/sim"
	"spybox/internal/stats"
)

// Fig4 reproduces the timing characterization histogram: four access
// classes (local hit/miss, remote hit/miss over NVLink), their
// cluster centers, and the derived thresholds.
func Fig4(p Params) (*Result, error) {
	m := machineFor(p, sim.Options{Seed: p.Seed})
	accesses := 48
	if p.Scale == Paper {
		accesses = 192
	}
	prof, err := core.CharacterizeTiming(m, trojanGPU, spyGPU, accesses, p.Seed)
	if err != nil {
		return nil, err
	}
	r := newResult("fig4", "Local and remote GPU access time")
	r.addf("%d accesses per class; histogram of all %d samples:", accesses, 4*accesses)
	r.Lines = append(r.Lines, prof.Histogram.Render(48))
	classes := []struct {
		name    string
		samples []float64
		nominal arch.Cycles
	}{
		{"local L2 hit", prof.LocalHit, arch.NomLocalHit},
		{"local L2 miss (HBM)", prof.LocalMiss, arch.NomLocalMiss},
		{"remote L2 hit (NVLink)", prof.RemoteHit, arch.NomRemoteHit},
		{"remote L2 miss", prof.RemoteMiss, arch.NomRemoteMiss},
	}
	for i, c := range classes {
		s := stats.Summarize(c.samples)
		r.addf("%-24s measured mean %6.0f cy (center %6.0f)  [paper cluster ~%d cy]",
			c.name, s.Mean, prof.Thresholds.Centers[i], uint64(c.nominal))
		r.Metrics["center_"+c.name[:8]] = prof.Thresholds.Centers[i]
	}
	r.addf("thresholds: %s", prof.Thresholds)
	r.Metrics["local_boundary"] = prof.Thresholds.LocalBoundary
	r.Metrics["remote_boundary"] = prof.Thresholds.RemoteBoundary
	return r, nil
}

// Fig5 reproduces the eviction-set validation sweep on both the local
// and the remote GPU: target re-access latency vs. number of conflict
// lines chased, with the step at the associativity boundary (16).
func Fig5(p Params) (*Result, error) {
	pair, err := setupAttackPair(p)
	if err != nil {
		return nil, err
	}
	maxLines := 48
	r := newResult("fig5", "Validating the eviction set determination")
	for _, side := range []struct {
		name string
		att  *core.Attacker
	}{{"local", pair.trojan}, {"remote", pair.spy}} {
		groups, err := side.att.DiscoverPageGroups(side.att.Ways())
		if err != nil {
			return nil, err
		}
		big := groups.Groups[0]
		for _, g := range groups.Groups {
			if len(g) > len(big) {
				big = g
			}
		}
		lines := maxLines
		if lines > len(big)-1 {
			lines = len(big) - 1
		}
		points, err := side.att.ValidateEvictionSet(big, lines)
		if err != nil {
			return nil, err
		}
		series := plot.Series{Name: side.name}
		step := -1
		for _, pt := range points {
			series.X = append(series.X, float64(pt.LinesAccessed))
			series.Y = append(series.Y, float64(pt.TargetLat))
			if pt.Evicted && step < 0 {
				step = pt.LinesAccessed
			}
		}
		r.Series = append(r.Series, series)
		r.addf("%s GPU: eviction begins at k=%d conflict lines (paper: every 16th access)", side.name, step)
		r.Metrics["eviction_step_"+side.name] = float64(step)
	}
	r.Lines = append(r.Lines, plot.Line(r.Series, 64, 14, "conflict lines accessed", "target access cycles"))
	return r, nil
}

// TableI reproduces the reverse-engineered L2 architecture table from
// pure timing experiments: line size, associativity, set count, total
// size and replacement policy.
func TableI(p Params) (*Result, error) {
	m := machineFor(p, sim.Options{Seed: p.Seed})
	prof, err := core.CharacterizeTiming(m, trojanGPU, spyGPU, 48, p.Seed^0xfeed)
	if err != nil {
		return nil, err
	}
	att, err := core.NewAttacker(m, trojanGPU, trojanGPU, discoveryPages(m.Profile(), p.Scale), prof.Thresholds, p.Seed^0x31)
	if err != nil {
		return nil, err
	}
	groups, err := att.DiscoverPageGroups(att.Ways())
	if err != nil {
		return nil, err
	}
	fresh, err := core.NewAttacker(m, trojanGPU, trojanGPU, 16, prof.Thresholds, p.Seed^0x32)
	if err != nil {
		return nil, err
	}
	// Search associativities up to twice the true value (32 on the
	// P100): the attacker must find the boundary, not assume it.
	geo, err := att.InferGeometry(groups, 2*m.Profile().L2Ways, fresh)
	if err != nil {
		return nil, err
	}
	r := newResult("table1", "L2 cache architecture")
	r.addf("%-24s %-12s %s", "Cache Attribute", "Measured", "Paper (Table I)")
	r.addf("%-24s %-12d %s", "L2 cache size", geo.CacheBytes, "4 MB")
	r.addf("%-24s %-12d %s", "Number of sets", geo.Sets, "2048")
	r.addf("%-24s %-12d %s", "Cache line size", geo.LineSize, "128 B")
	r.addf("%-24s %-12d %s", "Cache lines per set", geo.Ways, "16")
	r.addf("%-24s %-12s %s", "Replacement policy", geo.Policy, "LRU")
	r.Metrics["sets"] = float64(geo.Sets)
	r.Metrics["ways"] = float64(geo.Ways)
	r.Metrics["line_size"] = float64(geo.LineSize)
	r.Metrics["cache_bytes"] = float64(geo.CacheBytes)
	if geo.Policy == "LRU" {
		r.Metrics["policy_lru"] = 1
	}
	return r, nil
}

// Fig7 reproduces the cross-process alignment experiment: one trojan
// eviction set checked against spy candidates; matched candidates
// show elevated average access time, unmatched ones do not.
func Fig7(p Params) (*Result, error) {
	pair, err := setupAttackPair(p)
	if err != nil {
		return nil, err
	}
	numTrojanSets := 4
	r := newResult("fig7", "Eviction set alignment among multiple processes")
	var matchedAvgs, unmatchedAvgs []float64
	aligned := 0
	for i := 0; i < numTrojanSets; i++ {
		te := pair.trojanSets[i]
		idx, avgs, err := core.AlignSweep(pair.trojan, pair.spy, te, pair.spySets, 3)
		if err != nil {
			return nil, err
		}
		if idx >= 0 {
			aligned++
			matchedAvgs = append(matchedAvgs, avgs[idx])
			for ci, a := range avgs {
				if ci != idx {
					unmatchedAvgs = append(unmatchedAvgs, a)
				}
			}
			// Confirm with the pairwise Algorithm 2 test.
			avg, mapped, err := core.AlignPair(pair.trojan, pair.spy, te, pair.spySets[idx], core.DefaultAlignConfig())
			if err != nil {
				return nil, err
			}
			r.addf("trojan set (group %d, offset %3d) -> spy set #%4d: sweep avg %4.0f cy, Alg.2 avg %4.0f cy, mapped=%v",
				te.Group, te.Offset, idx, avgs[idx], avg, mapped)
		} else {
			r.addf("trojan set (group %d, offset %3d): NO MATCH FOUND", te.Group, te.Offset)
		}
	}
	mm, um := stats.Mean(matchedAvgs), stats.Mean(unmatchedAvgs)
	r.addf("matched spy sets avg probe: %.0f cy; unmatched: %.0f cy (separation %.2fx)",
		mm, um, mm/um)
	r.addf("aligned %d/%d trojan sets", aligned, numTrojanSets)
	r.Metrics["aligned_fraction"] = float64(aligned) / float64(numTrojanSets)
	r.Metrics["matched_avg_cycles"] = mm
	r.Metrics["unmatched_avg_cycles"] = um
	return r, nil
}

var _ = fmt.Sprintf // keep fmt for addf users
