// E1-E4: the reverse-engineering experiments (Fig. 4, Fig. 5,
// Table I, Fig. 7).
package expt

import (
	"spybox/internal/arch"
	"spybox/internal/core"
	"spybox/internal/plot"
	"spybox/internal/sim"
	"spybox/internal/stats"
)

// Fig4 reproduces the timing characterization histogram: four access
// classes (local hit/miss, remote hit/miss over NVLink), their
// cluster centers, and the derived thresholds.
func Fig4(p Params) (*Result, error) {
	m := machineFor(p, sim.Options{Seed: p.Seed})
	accesses := 48
	if p.Scale == Paper {
		accesses = 192
	}
	prof, err := core.CharacterizeTiming(m, trojanGPU, spyGPU, accesses, p.Seed)
	if err != nil {
		return nil, err
	}
	r := newResult("fig4", "Local and remote GPU access time")
	r.Rowf("%d accesses per class; histogram of all %d samples:",
		f("accesses_per_class", accesses), f("total_samples", 4*accesses))
	r.Chart(prof.Histogram.Render(48))
	classes := []struct {
		name    string
		samples []float64
		nominal arch.Cycles
	}{
		{"local L2 hit", prof.LocalHit, arch.NomLocalHit},
		{"local L2 miss (HBM)", prof.LocalMiss, arch.NomLocalMiss},
		{"remote L2 hit (NVLink)", prof.RemoteHit, arch.NomRemoteHit},
		{"remote L2 miss", prof.RemoteMiss, arch.NomRemoteMiss},
	}
	for i, c := range classes {
		s := stats.Summarize(c.samples)
		r.Rowf("%-24s measured mean %6.0f cy (center %6.0f)  [paper cluster ~%d cy]",
			f("class", c.name),
			fu("measured_mean", "cycles", s.Mean),
			fu("center", "cycles", prof.Thresholds.Centers[i]),
			fu("paper_cluster", "cycles", uint64(c.nominal)))
		r.SetMetric("center_"+c.name[:8], "cycles", prof.Thresholds.Centers[i])
	}
	r.Rowf("thresholds: %s", f("thresholds", prof.Thresholds.String()))
	r.SetMetric("local_boundary", "cycles", prof.Thresholds.LocalBoundary)
	r.SetMetric("remote_boundary", "cycles", prof.Thresholds.RemoteBoundary)
	return r, nil
}

// Fig5 reproduces the eviction-set validation sweep on both the local
// and the remote GPU: target re-access latency vs. number of conflict
// lines chased, with the step at the associativity boundary (16).
func Fig5(p Params) (*Result, error) {
	pair, err := setupAttackPair(p)
	if err != nil {
		return nil, err
	}
	maxLines := 48
	r := newResult("fig5", "Validating the eviction set determination")
	for _, side := range []struct {
		name string
		att  *core.Attacker
	}{{"local", pair.trojan}, {"remote", pair.spy}} {
		groups, err := side.att.DiscoverPageGroups(side.att.Ways())
		if err != nil {
			return nil, err
		}
		big := groups.Groups[0]
		for _, g := range groups.Groups {
			if len(g) > len(big) {
				big = g
			}
		}
		lines := maxLines
		if lines > len(big)-1 {
			lines = len(big) - 1
		}
		points, err := side.att.ValidateEvictionSet(big, lines)
		if err != nil {
			return nil, err
		}
		series := plot.Series{Name: side.name}
		step := -1
		for _, pt := range points {
			series.X = append(series.X, float64(pt.LinesAccessed))
			series.Y = append(series.Y, float64(pt.TargetLat))
			if pt.Evicted && step < 0 {
				step = pt.LinesAccessed
			}
		}
		r.Series = append(r.Series, series)
		r.Rowf("%s GPU: eviction begins at k=%d conflict lines (paper: every 16th access)",
			f("side", side.name), fu("eviction_step", "lines", step))
		r.SetMetric("eviction_step_"+side.name, "lines", float64(step))
	}
	r.Chart(plot.Line(r.Series, 64, 14, "conflict lines accessed", "target access cycles"))
	return r, nil
}

// TableI reproduces the reverse-engineered L2 architecture table from
// pure timing experiments: line size, associativity, set count, total
// size and replacement policy.
func TableI(p Params) (*Result, error) {
	m := machineFor(p, sim.Options{Seed: p.Seed})
	prof, err := core.CharacterizeTiming(m, trojanGPU, spyGPU, 48, p.Seed^0xfeed)
	if err != nil {
		return nil, err
	}
	att, err := core.NewAttacker(m, trojanGPU, trojanGPU, discoveryPages(m.Profile(), p.Scale), prof.Thresholds, p.Seed^0x31)
	if err != nil {
		return nil, err
	}
	groups, err := att.DiscoverPageGroups(att.Ways())
	if err != nil {
		return nil, err
	}
	fresh, err := core.NewAttacker(m, trojanGPU, trojanGPU, 16, prof.Thresholds, p.Seed^0x32)
	if err != nil {
		return nil, err
	}
	// Search associativities up to twice the true value (32 on the
	// P100): the attacker must find the boundary, not assume it.
	geo, err := att.InferGeometry(groups, 2*m.Profile().L2Ways, fresh)
	if err != nil {
		return nil, err
	}
	r := newResult("table1", "L2 cache architecture")
	r.Notef("%-24s %-12s %s", "Cache Attribute", "Measured", "Paper (Table I)")
	r.Rowf("%-24s %-12d %s",
		f("attribute", "L2 cache size"), fu("measured", "bytes", geo.CacheBytes), f("paper", "4 MB"))
	r.Rowf("%-24s %-12d %s",
		f("attribute", "Number of sets"), f("measured", geo.Sets), f("paper", "2048"))
	r.Rowf("%-24s %-12d %s",
		f("attribute", "Cache line size"), fu("measured", "bytes", geo.LineSize), f("paper", "128 B"))
	r.Rowf("%-24s %-12d %s",
		f("attribute", "Cache lines per set"), f("measured", geo.Ways), f("paper", "16"))
	r.Rowf("%-24s %-12s %s",
		f("attribute", "Replacement policy"), f("measured", geo.Policy), f("paper", "LRU"))
	r.SetMetric("sets", "", float64(geo.Sets))
	r.SetMetric("ways", "", float64(geo.Ways))
	r.SetMetric("line_size", "bytes", float64(geo.LineSize))
	r.SetMetric("cache_bytes", "bytes", float64(geo.CacheBytes))
	if geo.Policy == "LRU" {
		r.SetMetric("policy_lru", "", 1)
	}
	return r, nil
}

// Fig7 reproduces the cross-process alignment experiment: one trojan
// eviction set checked against spy candidates; matched candidates
// show elevated average access time, unmatched ones do not.
func Fig7(p Params) (*Result, error) {
	pair, err := setupAttackPair(p)
	if err != nil {
		return nil, err
	}
	numTrojanSets := 4
	r := newResult("fig7", "Eviction set alignment among multiple processes")
	var matchedAvgs, unmatchedAvgs []float64
	aligned := 0
	for i := 0; i < numTrojanSets; i++ {
		te := pair.trojanSets[i]
		idx, avgs, err := core.AlignSweep(pair.trojan, pair.spy, te, pair.spySets, 3)
		if err != nil {
			return nil, err
		}
		if idx >= 0 {
			aligned++
			matchedAvgs = append(matchedAvgs, avgs[idx])
			for ci, a := range avgs {
				if ci != idx {
					unmatchedAvgs = append(unmatchedAvgs, a)
				}
			}
			// Confirm with the pairwise Algorithm 2 test.
			avg, mapped, err := core.AlignPair(pair.trojan, pair.spy, te, pair.spySets[idx], core.DefaultAlignConfig())
			if err != nil {
				return nil, err
			}
			r.Rowf("trojan set (group %d, offset %3d) -> spy set #%4d: sweep avg %4.0f cy, Alg.2 avg %4.0f cy, mapped=%v",
				f("trojan_group", te.Group), f("trojan_offset", te.Offset), f("spy_set", idx),
				fu("sweep_avg", "cycles", avgs[idx]), fu("alg2_avg", "cycles", avg), f("mapped", mapped))
		} else {
			r.Rowf("trojan set (group %d, offset %3d): NO MATCH FOUND",
				f("trojan_group", te.Group), f("trojan_offset", te.Offset))
		}
	}
	mm, um := stats.Mean(matchedAvgs), stats.Mean(unmatchedAvgs)
	r.Rowf("matched spy sets avg probe: %.0f cy; unmatched: %.0f cy (separation %.2fx)",
		fu("matched_avg", "cycles", mm), fu("unmatched_avg", "cycles", um), f("separation", mm/um))
	r.Rowf("aligned %d/%d trojan sets", f("aligned", aligned), f("trojan_sets", numTrojanSets))
	r.SetMetric("aligned_fraction", "", float64(aligned)/float64(numTrojanSets))
	r.SetMetric("matched_avg_cycles", "cycles", mm)
	r.SetMetric("unmatched_avg_cycles", "cycles", um)
	return r, nil
}
