package expt

import (
	"strings"
	"testing"
)

// TestScaleRoundTrip: every scale's String spelling parses back to
// itself — the property the CLI flag help and the registry rely on.
func TestScaleRoundTrip(t *testing.T) {
	for _, s := range Scales() {
		got, err := ParseScale(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScale(%q) = %v, %v; want %v", s.String(), got, err, s)
		}
	}
	if len(Scales()) != 3 {
		t.Errorf("Scales() = %v, want the three documented scales", Scales())
	}
}

func TestScaleNames(t *testing.T) {
	names := ScaleNames()
	want := []string{"small", "default", "paper"}
	if len(names) != len(want) {
		t.Fatalf("ScaleNames() = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("ScaleNames()[%d] = %q, want %q", i, names[i], want[i])
		}
	}
	// The unknown-scale error names every valid spelling, so the CLI
	// never hardcodes the list again.
	_, err := ParseScale("bogus")
	if err == nil || !strings.Contains(err.Error(), strings.Join(want, "|")) {
		t.Errorf("ParseScale error %v does not enumerate the scales", err)
	}
}

func TestScaleStringUnknown(t *testing.T) {
	if got := Scale(42).String(); got != "Scale(42)" {
		t.Errorf("unknown scale renders %q", got)
	}
}
