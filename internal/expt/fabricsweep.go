// The "fabricsweep" extension: covert-channel quality under switch-
// port contention. On NVSwitch boxes the two-stage fabric model
// (internal/nvlink/fabric.go) pins every GPU pair to one switch plane
// and serializes traffic at the GPU-side ports. This experiment drives
// the covert channel while 0–3 competing bulk P2P streams ride the
// *same* egress port and plane as the spy's probes, and reports how
// bandwidth, error rate, and port queueing respond — the contention
// picture the flat per-hop charge could never show (it would have let
// every stream through at full speed, inflating archsweep's NVSwitch
// bandwidth numbers).
//
// Trial-decomposed: one trial per competitor count. Like sec6 and
// archsweep, trials deliberately seed their machines from the run seed
// so the four conditions form a controlled comparison — the only thing
// that differs is the number of co-scheduled streams.
package expt

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/core"
	"spybox/internal/cudart"
	"spybox/internal/xrand"
)

// fabricsweepStreams is the largest competitor count swept (0..N).
const fabricsweepStreams = 3

// fabricsweepArch resolves the profile the sweep runs on: the run's
// own architecture when it models a switch fabric, otherwise the
// DGX-2 profile — the default p100-dgx1 has point-to-point links and
// no planes to contend on.
func fabricsweepArch(p Params) string {
	prof := p.mustProfile()
	if prof.Fabric.Enabled() {
		return prof.Name
	}
	return "v100-dgx2"
}

// contentionTargets lists the GPUs a competitor on src can stream to
// so the transfer rides the given switch plane, excluding the attack
// endpoints (their L2s must stay untouched: the sweep isolates *port*
// contention from cache pollution). Competitor i targets entry
// i%len — several streams to one target still share src's egress port.
func contentionTargets(fab arch.FabricConfig, numGPUs int, src, avoidA, avoidB arch.DeviceID, plane int) []arch.DeviceID {
	var out []arch.DeviceID
	for d := arch.DeviceID(0); int(d) < numGPUs; d++ {
		if d == src || d == avoidA || d == avoidB {
			continue
		}
		if fab.PlaneFor(src, d) == plane {
			out = append(out, d)
		}
	}
	return out
}

// fabricTrial is one condition's outcome.
type fabricTrial struct {
	streams     int
	bw          float64
	errPct      float64
	planeTxns   uint64
	portBursts  uint64
	portQueued  uint64
	queueCycles arch.Cycles
	planeTotal  uint64
	linkTotal   uint64
}

// fabricsweepTrial runs the covert channel against `streams` competing
// bulk P2P streams pinned to the covert plane.
func fabricsweepTrial(p Params, archName string, streams int) (fabricTrial, error) {
	out := fabricTrial{streams: streams}
	// Condition trials rebuild the same machine from the run seed; see
	// the package comment and EXPERIMENTS.md.
	pair, err := setupAttackPair(Params{Seed: p.Seed, Scale: p.Scale, Parallel: 1, Arch: archName})
	if err != nil {
		return out, err
	}
	pairs, err := core.AlignChannels(pair.trojan, pair.spy, pair.trojanSets, pair.spySets, 2)
	if err != nil {
		return out, err
	}
	ch, err := core.NewChannel(pair.trojan, pair.spy, pairs, core.DefaultCovertConfig())
	if err != nil {
		return out, err
	}
	topo := pair.m.Topology()
	covPlane := topo.PlaneFor(spyGPU, trojanGPU)
	if covPlane < 0 {
		return out, fmt.Errorf("fabricsweep: profile %q has no switch fabric", archName)
	}
	targets := contentionTargets(pair.m.Profile().Fabric, pair.m.NumGPUs(), spyGPU, trojanGPU, spyGPU, covPlane)
	if len(targets) == 0 {
		return out, fmt.Errorf("fabricsweep: no contention targets on plane %d", covPlane)
	}

	// Competitors: independent processes on the spy's GPU bulk-reading
	// buffers homed on other GPUs of the covert plane. They share the
	// spy's egress port, nothing else — no line they touch lives in
	// the trojan's L2.
	type competitor struct {
		proc  *cudart.Process
		buf   arch.VA
		lines int
	}
	const bulkKB = 256
	comps := make([]competitor, streams)
	for i := range comps {
		proc, err := cudart.NewProcess(pair.m, spyGPU, p.Seed^uint64(0xfab0+i))
		if err != nil {
			return out, err
		}
		target := targets[i%len(targets)]
		if err := proc.EnablePeerAccess(target); err != nil {
			return out, err
		}
		buf, err := proc.MallocOnDevice(target, bulkKB*1024)
		if err != nil {
			return out, err
		}
		comps[i] = competitor{proc: proc, buf: buf, lines: bulkKB * 1024 / pair.m.LineSize()}
	}

	// Only the transmission window should be measured: discovery and
	// alignment also crossed the fabric.
	topo.ResetStats()
	msgRNG := xrand.New(p.Seed ^ 0xfab)
	msg := make([]byte, archsweepMessageBytes(p.Scale))
	for i := range msg {
		msg[i] = byte(msgRNG.Uint64())
	}
	tx, err := ch.TransmitWith(msg, func(stop *bool) error {
		for i, c := range comps {
			c := c
			rng := xrand.New(p.Seed ^ uint64(0xb01c+i))
			start := rng.Intn(c.lines - 32)
			if err := c.proc.Launch(fmt.Sprintf("bulk-%d", i), 0, func(k *cudart.Kernel) {
				for !*stop {
					k.Stream(c.buf+arch.VA(start*pair.m.LineSize()), 32, pair.m.LineSize())
					k.Busy(16)
				}
			}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return out, err
	}

	out.bw = tx.BandwidthMBps()
	out.errPct = tx.ErrorRate() * 100
	out.planeTxns = topo.Planes()[covPlane].Transactions
	out.planeTotal = topo.TotalPlaneTransactions()
	out.linkTotal = topo.TotalTransactions()
	port := topo.EgressPort(spyGPU, covPlane)
	out.portBursts, out.portQueued, out.queueCycles = port.Bursts, port.Queued, port.QueueCycles
	return out, nil
}

// FabricSweep measures covert bandwidth and error under 0–3 competing
// bulk P2P streams sharing the covert stream's switch plane and egress
// port. Runs on the architecture given by -arch when it has a switch
// fabric, otherwise on v100-dgx2.
func FabricSweep(p Params) (*Result, error) {
	archName := fabricsweepArch(p)
	outs, err := RunTrials(p, fabricsweepStreams+1, func(t Trial) (fabricTrial, error) {
		return fabricsweepTrial(p, archName, t.Index)
	})
	if err != nil {
		return nil, err
	}

	prof, err := arch.LookupProfile(archName)
	if err != nil {
		return nil, err
	}
	r := newResult("fabricsweep", "Covert channel under switch-port contention")
	r.Rowf("box: %s", f("box", prof.String()))
	r.Rowf("covert pair %v->%v rides switch plane %d; competitors share the spy's egress port",
		f("spy_gpu", spyGPU), f("trojan_gpu", trojanGPU),
		f("covert_plane", prof.Fabric.PlaneFor(spyGPU, trojanGPU)))
	r.Blank()
	r.Notef("%-14s %-12s %-10s %-14s %-20s %s", "bulk streams", "bw MB/s", "error %", "plane txns", "port bursts queued", "queue cycles")
	for _, o := range outs {
		r.Rowf("%-14d %-12.4f %-10.2f %-14d %7d / %-10d %d",
			f("streams", o.streams), fu("bandwidth", "MB/s", o.bw), fu("error", "%", o.errPct),
			f("plane_txns", o.planeTxns), f("port_queued", o.portQueued),
			f("port_bursts", o.portBursts), fu("queue_cycles", "cycles", uint64(o.queueCycles)))
		suffix := fmt.Sprintf("_%dstreams", o.streams)
		r.SetMetric("bw_MBps"+suffix, "MB/s", o.bw)
		r.SetMetric("err_pct"+suffix, "%", o.errPct)
		r.SetMetric("queue_cycles"+suffix, "cycles", float64(o.queueCycles))
		r.SetMetric("plane_txns"+suffix, "txns", float64(o.planeTxns))
		if o.planeTotal != o.linkTotal {
			// Accounting invariant: every traversal lands on exactly
			// one plane. A mismatch is a model bug worth shouting about.
			r.Errorf("ACCOUNTING ERROR: plane txns %d != link txns %d", o.planeTotal, o.linkTotal)
		}
	}
	r.Blank()
	r.Notef("competing streams queue FIFO at the shared egress port, so the spy's probe")
	r.Notef("bursts wait out the backlog. The covert protocol paces bits on a fixed slot")
	r.Notef("clock, so raw bandwidth barely moves — instead the queueing pushes probes off")
	r.Notef("their slots and the ERROR RATE climbs with every added stream, while the port")
	r.Notef("counters expose the contention directly (queued bursts, queue cycles).")
	r.SetMetric("streams_max", "", float64(fabricsweepStreams))
	r.SetMetric("err_rise_pct", "%", outs[fabricsweepStreams].errPct-outs[0].errPct)
	r.SetMetric("queue_growth", "x", float64(outs[fabricsweepStreams].queueCycles)/float64(max(1, uint64(outs[0].queueCycles))))
	return r, nil
}
