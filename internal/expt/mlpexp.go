// E9-E12: the deep-learning model-extraction side channel (Fig. 13,
// Table II, Fig. 14, Fig. 15).
package expt

import (
	"fmt"
	"sort"

	"spybox/internal/core"
	"spybox/internal/memgram"
	"spybox/internal/plot"
	"spybox/internal/sim"
	"spybox/internal/victim"
)

// mlpDims returns (monitored sets, epoch cap, victim config template)
// per scale. The paper monitors 1024 unique L2 sets.
func mlpDims(s Scale) (sets, epochCap int, cfg victim.MLPVictimConfig) {
	// The victim must outlive several full probe sweeps of the
	// monitored sets or the spy sees nothing (one sweep of 1024 sets
	// is ~1.7M cycles); batch counts below are sized for ~5+ sweeps
	// even at the smallest hidden width. EpochGapOps must idle the
	// victim for several sweeps so the Fig. 15 epoch boundary is
	// visible in the memorygram.
	switch s {
	case Small:
		return 192, 160, victim.MLPVictimConfig{Epochs: 1, Samples: 480, BatchSize: 16, EpochGapOps: 40_000}
	default:
		return 1024, 420, victim.MLPVictimConfig{Epochs: 6, Samples: 672, BatchSize: 16, EpochGapOps: 200_000}
	}
}

// mlpHiddenSizes is Table II's sweep.
//
//spylint:allow detrand effectively const: never written after initialization
var mlpHiddenSizes = []int{64, 128, 256, 512}

// recordMLPGram trains one MLP victim under the monitor.
func recordMLPGram(m *sim.Machine, spy *core.Attacker, sets []core.EvictionSet, epochCap int, v *victim.MLPVictim) (*memgram.Gram, *core.MonitorResult, error) {
	victimDone := false
	res, err := spy.MonitorConcurrent(sets, core.MonitorOptions{
		Epochs:    epochCap,
		StopEarly: func() bool { return victimDone },
	}, func() error { return v.Launch(&victimDone) })
	if err != nil {
		return nil, nil, err
	}
	gram, err := memgram.New(res.Miss, fmt.Sprintf("mlp-h%d", v.Cfg.Hidden))
	return gram, res, err
}

// mlpMeasure is the shared trial body for the MLP experiments: build
// a machine and spy from the trial seed, train one MLP victim with
// hidden width h under the monitor, and return the memorygram and
// monitor result.
func mlpMeasure(tp Params, h int) (*memgram.Gram, *core.MonitorResult, error) {
	m := machineFor(tp, sim.Options{Seed: tp.Seed})
	numSets, epochCap, base := mlpDims(tp.Scale)
	spy, spySets, err := setupSpy(m, tp, discoveryPages(m.Profile(), tp.Scale))
	if err != nil {
		return nil, nil, err
	}
	monitored := spreadSets(spySets, numSets)
	cfg := base
	cfg.Hidden = h
	v, err := victim.NewMLPVictim(m, trojanGPU, tp.Seed^uint64(h), cfg)
	if err != nil {
		return nil, nil, err
	}
	defer freeVictim(v)
	return recordMLPGram(m, spy, monitored, epochCap, v)
}

// Fig13 reproduces the per-set miss histograms for the four hidden
// sizes: miss intensity grows with the hidden layer. Trial-decomposed:
// one trial (machine + spy + victim) per hidden size.
func Fig13(p Params) (*Result, error) {
	grams, err := RunTrials(p, len(mlpHiddenSizes), func(t Trial) (*memgram.Gram, error) {
		gram, _, err := mlpMeasure(t.Params, mlpHiddenSizes[t.Index])
		return gram, err
	})
	if err != nil {
		return nil, err
	}
	r := newResult("fig13", "Cache misses per set for MLP victims")
	for i, h := range mlpHiddenSizes {
		gram := grams[i]
		totals := gram.SetTotals()
		fs := make([]float64, len(totals))
		for i, t := range totals {
			fs[i] = float64(t)
		}
		sort.Float64s(fs)
		med := fs[len(fs)/2]
		r.Rowf("hidden=%4d: total misses %7d, median per set %4.0f, max %4.0f",
			f("hidden", h), fu("total_misses", "misses", gram.Total()),
			fu("median_per_set", "misses", med), fu("max_per_set", "misses", fs[len(fs)-1]))
		r.SetMetric(fmt.Sprintf("total_misses_h%d", h), "misses", float64(gram.Total()))
	}
	r.Notef("miss intensity increases with hidden width, as in the paper's histograms.")
	return r, nil
}

// freeVictim returns an MLP victim's device allocations to the pool.
func freeVictim(v *victim.MLPVictim) {
	for _, al := range v.Proc.Space().Allocs() {
		// Every base comes straight from the live allocation list, so a
		// failed Free means the address space is corrupt — same class of
		// invariant violation the simulator panics on everywhere else.
		if err := v.Proc.Free(al.Base); err != nil {
			panic(fmt.Sprintf("expt: freeing victim allocation %#x: %v", uint64(al.Base), err))
		}
	}
}

// TableII reproduces the average-misses-over-all-sets table and the
// model-extraction decision: the attacker infers the hidden width by
// nearest-neighbour against a reference profile built offline.
// Trial-decomposed: the four reference measurements and the four
// extraction measurements are eight independent trials.
func TableII(p Params) (*Result, error) {
	paperAvg := map[int]float64{64: 5653, 128: 6846, 256: 8744, 512: 10197}
	nRef := len(mlpHiddenSizes)
	avgsOut, err := RunTrials(p, 2*nRef, func(t Trial) (float64, error) {
		_, res, err := mlpMeasure(t.Params, mlpHiddenSizes[t.Index%nRef])
		if err != nil {
			return 0, err
		}
		return res.AvgMissesPerSet(), nil
	})
	if err != nil {
		return nil, err
	}

	r := newResult("table2", "Average misses over all cache sets")
	r.Notef("%-18s %-22s %s", "Number of Neurons", "Measured Avg Misses", "Paper Avg Misses")
	reference := map[int]float64{}
	avgs := avgsOut[:nRef]
	for i, h := range mlpHiddenSizes {
		avg := avgs[i]
		reference[h] = avg
		r.Rowf("%-18d %-22.1f %.0f",
			f("neurons", h), fu("avg_misses", "misses", avg), fu("paper_avg_misses", "misses", paperAvg[h]))
		r.SetMetric(fmt.Sprintf("avg_misses_h%d", h), "misses", avg)
	}
	monotone := 1.0
	for i := 1; i < len(avgs); i++ {
		if avgs[i] <= avgs[i-1] {
			monotone = 0
		}
	}
	r.SetMetric("monotone_in_hidden", "", monotone)

	// Model extraction: fresh victims with unknown H (trials nRef..),
	// classified by nearest reference average.
	correct := 0
	for i, h := range mlpHiddenSizes {
		obs := avgsOut[nRef+i]
		best, bestD := 0, -1.0
		for _, cand := range mlpHiddenSizes {
			d := obs - reference[cand]
			if d < 0 {
				d = -d
			}
			if bestD < 0 || d < bestD {
				best, bestD = cand, d
			}
		}
		if best == h {
			correct++
		}
		r.Rowf("extraction trial: true hidden=%3d, observed avg %.1f -> inferred %d",
			f("true_hidden", h), fu("observed_avg", "misses", obs), f("inferred_hidden", best))
	}
	r.Rowf("model extraction: %d/%d hidden sizes recovered",
		f("extraction_correct", correct), f("extraction_total", len(mlpHiddenSizes)))
	r.SetMetric("extraction_correct", "", float64(correct))
	return r, nil
}

// Fig14 renders the MLP memorygrams for 128 and 512 hidden neurons.
func Fig14(p Params) (*Result, error) {
	m := machineFor(p, sim.Options{Seed: p.Seed})
	numSets, epochCap, base := mlpDims(p.Scale)
	spy, spySets, err := setupSpy(m, p, discoveryPages(m.Profile(), p.Scale))
	if err != nil {
		return nil, err
	}
	monitored := spreadSets(spySets, numSets)
	r := newResult("fig14", "Memorygram of the MLP application")
	var totals []float64
	for _, h := range []int{128, 512} {
		cfg := base
		cfg.Hidden = h
		v, err := victim.NewMLPVictim(m, trojanGPU, p.Seed^uint64(h), cfg)
		if err != nil {
			return nil, err
		}
		gram, _, err := recordMLPGram(m, spy, monitored, epochCap, v)
		if err != nil {
			return nil, err
		}
		r.Chart(gram.RenderASCII(64, 14))
		attachPGM(r, fmt.Sprintf("fig14_h%d", h), gram)
		totals = append(totals, float64(gram.Total()))
		r.SetMetric(fmt.Sprintf("total_misses_h%d", h), "misses", float64(gram.Total()))
		freeVictim(v)
	}
	if totals[1] > totals[0] {
		r.Notef("512-neuron run shows denser misses than 128, matching Fig. 14a/b.")
	}
	return r, nil
}

// Fig15 trains a two-epoch MLP and recovers the epoch count from the
// memorygram's activity bursts.
func Fig15(p Params) (*Result, error) {
	m := machineFor(p, sim.Options{Seed: p.Seed})
	numSets, epochCap, base := mlpDims(p.Scale)
	spy, spySets, err := setupSpy(m, p, discoveryPages(m.Profile(), p.Scale))
	if err != nil {
		return nil, err
	}
	monitored := spreadSets(spySets, numSets)
	cfg := base
	cfg.Hidden = 128
	cfg.Epochs = 2
	// Size each training epoch to span a few probe sweeps so the two
	// bursts are individually visible.
	if p.Scale == Small {
		cfg.Samples = 160
	} else {
		cfg.Samples = 640
	}
	v, err := victim.NewMLPVictim(m, trojanGPU, p.Seed^0x15, cfg)
	if err != nil {
		return nil, err
	}
	gram, _, err := recordMLPGram(m, spy, monitored, epochCap*2, v)
	if err != nil {
		return nil, err
	}
	r := newResult("fig15", "Memorygram for a two-epoch experiment")
	attachPGM(r, "fig15_two_epochs", gram)
	r.Chart(gram.RenderASCII(72, 14))
	bursts := gram.ActiveBursts(0.2, 2)
	r.Rowf("activity bursts detected: %d (victim trained %d epochs)",
		f("bursts_detected", bursts), f("epochs_trained", cfg.Epochs))
	r.Rowf("final training loss: %.3f", f("final_loss", v.FinalLoss))
	r.SetMetric("epochs_detected", "", float64(bursts))
	r.SetMetric("epochs_true", "", float64(cfg.Epochs))
	ep := gram.EpochTotals()
	series := plot.Series{Name: "misses per sweep"}
	for i, t := range ep {
		series.X = append(series.X, float64(i))
		series.Y = append(series.Y, float64(t))
	}
	r.Series = []plot.Series{series}
	return r, nil
}
