// E15-E16: extension experiments beyond the paper's figures.
//
//   - "mig": the isolation defense Sec. VII points to (NVIDIA
//     Multi-Instance GPU): with L2 sets and memory carved into
//     per-tenant partitions, the attack's alignment step cannot find
//     any colliding set pair, and the channel never comes up.
//   - "pairs": the paper notes its timings were "repeated by selecting
//     different peer-to-peer GPUs connected via NVLink" with similar
//     results, and that the runtime errors for unconnected GPUs; this
//     experiment sweeps every GPU pair in the box and verifies both.
package expt

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/core"
	"spybox/internal/cudart"
	"spybox/internal/sim"
	"spybox/internal/stats"
	"spybox/internal/xrand"
)

// MIG runs the covert-channel setup twice: on the stock machine
// (attack succeeds) and on a machine with two MIG-style partitions
// (alignment finds no colliding sets; the attack dies before a single
// bit moves). Trial-decomposed: the two attempts are independent
// trials; both deliberately seed from the run seed so the only
// difference between them is the partitioning.
func MIG(p Params) (*Result, error) {
	r := newResult("mig", "MIG-style partitioning defense (Sec. VII)")

	attempt := func(partitions int) (aligned bool, detail string, err error) {
		m := machineFor(p, sim.Options{Seed: p.Seed, MIGPartitions: partitions})
		prof, err := core.CharacterizeTiming(m, trojanGPU, spyGPU, 48, p.Seed^0xfeed)
		if err != nil {
			return false, "", err
		}
		pages := discoveryPages(m.Profile(), p.Scale)
		trojan, err := core.NewAttacker(m, trojanGPU, trojanGPU, pages, prof.Thresholds, p.Seed^0x1)
		if err != nil {
			return false, "", err
		}
		spy, err := core.NewAttacker(m, spyGPU, trojanGPU, pages, prof.Thresholds, p.Seed^0x2)
		if err != nil {
			return false, "", err
		}
		tg, err := trojan.DiscoverPageGroups(trojan.Ways())
		if err != nil {
			return false, "", err
		}
		sg, err := spy.DiscoverPageGroups(spy.Ways())
		if err != nil {
			return false, "", err
		}
		tSets := trojan.AllEvictionSets(tg, trojan.Ways())
		sSets := spy.AllEvictionSets(sg, spy.Ways())
		detail = fmt.Sprintf("trojan covers %d sets, spy covers %d sets", len(tSets), len(sSets))
		if len(tSets) == 0 || len(sSets) == 0 {
			return false, detail, nil
		}
		idx, _, err := core.AlignSweep(trojan, spy, tSets[0], sSets, 3)
		if err != nil {
			return false, detail, err
		}
		return idx >= 0, detail, nil
	}

	type migTrial struct {
		aligned bool
		detail  string
	}
	partitions := []int{0, 2}
	outs, err := RunTrials(p, len(partitions), func(t Trial) (migTrial, error) {
		aligned, detail, err := attempt(partitions[t.Index])
		return migTrial{aligned: aligned, detail: detail}, err
	})
	if err != nil {
		return nil, err
	}
	baseline, mig := outs[0].aligned, outs[1].aligned
	r.Rowf("stock DGX-1:        alignment found a colliding set pair: %v (%s)",
		f("aligned", baseline), f("detail", outs[0].detail))
	r.Rowf("2 MIG partitions:   alignment found a colliding set pair: %v (%s)",
		f("aligned", mig), f("detail", outs[1].detail))
	r.Blank()
	r.Notef("with per-tenant L2/memory partitions the spy's eviction sets and the trojan's")
	r.Notef("never share a physical set, so the Prime+Probe channel cannot be established —")
	r.Notef("the isolation property the paper credits MIG with (unavailable on Pascal).")
	r.SetMetric("baseline_aligned", "", boolAsMetric(baseline))
	r.SetMetric("mig_aligned", "", boolAsMetric(mig))
	return r, nil
}

// Pairs sweeps every ordered GPU pair of the DGX-1: for connected
// pairs it measures the remote hit/miss levels (which the paper found
// uniform across single-hop peers); for unconnected pairs it confirms
// the runtime refuses peer access. Trial-decomposed: one trial per
// ordered pair, each probing a freshly built machine. Every trial
// seeds its machine from the run seed, not the trial seed, so the
// cross-pair level spread measures topology, not per-machine jitter.
func Pairs(p Params) (*Result, error) {
	type pairTrial struct {
		connected      bool
		hitMean, missM float64
	}
	// Ordered pairs (a, b), a != b, in row-major order.
	nGPUs := p.mustProfile().NumGPUs
	nPairs := nGPUs * (nGPUs - 1)
	outs, err := RunTrials(p, nPairs, func(t Trial) (pairTrial, error) {
		a := arch.DeviceID(t.Index / (nGPUs - 1))
		rem := t.Index % (nGPUs - 1)
		b := arch.DeviceID(rem)
		if b >= a {
			b++
		}
		m := machineFor(p, sim.Options{Seed: p.Seed})
		proc, err := cudart.NewProcess(m, a, p.Seed^uint64(a*16+b))
		if err != nil {
			return pairTrial{}, err
		}
		if err := proc.EnablePeerAccess(b); err != nil {
			return pairTrial{connected: false}, nil
		}
		buf, err := proc.MallocOnDevice(b, 8*arch.PageSize)
		if err != nil {
			return pairTrial{}, err
		}
		var hits, misses []float64
		err = proc.Launch("pairprobe", 0, func(k *cudart.Kernel) {
			for i := 0; i < 8; i++ {
				va := buf + arch.VA(i*arch.PageSize)
				misses = append(misses, float64(k.TouchCG(va)))
				hits = append(hits, float64(k.TouchCG(va)))
			}
		})
		if err != nil {
			return pairTrial{}, err
		}
		m.Run()
		return pairTrial{connected: true, hitMean: stats.Mean(hits), missM: stats.Mean(misses)}, nil
	})
	if err != nil {
		return nil, err
	}
	r := newResult("pairs", "Cross-GPU timing across every NVLink pair")
	var hitMeans, missMeans []float64
	connected, refused := 0, 0
	for _, o := range outs {
		if !o.connected {
			refused++
			continue
		}
		connected++
		hitMeans = append(hitMeans, o.hitMean)
		missMeans = append(missMeans, o.missM)
	}
	hs, ms := stats.Summarize(hitMeans), stats.Summarize(missMeans)
	r.Rowf("connected ordered pairs: %d; peer access refused (no direct NVLink): %d",
		f("connected_pairs", connected), f("refused_pairs", refused))
	r.Rowf("remote hit  level across pairs: %s", f("hit_summary", hs.String()))
	r.Rowf("remote miss level across pairs: %s", f("miss_summary", ms.String()))
	r.Blank()
	r.Notef("timing is uniform across all single-hop peers, matching the paper's observation;")
	if refused > 0 {
		r.Rowf("the DGX-1 cube-mesh leaves %d of %d ordered pairs without a direct link.",
			f("refused_pairs", refused), f("total_pairs", connected+refused))
	} else {
		r.Rowf("the %s fabric connects every ordered pair directly — the unconnected-pair",
			f("topology", p.mustProfile().Topology.String()))
		r.Notef("error class the paper observed on the DGX-1 does not exist on this box.")
	}
	r.SetMetric("connected_pairs", "", float64(connected))
	r.SetMetric("refused_pairs", "", float64(refused))
	r.SetMetric("hit_spread_cycles", "cycles", hs.Max-hs.Min)
	r.SetMetric("miss_spread_cycles", "cycles", ms.Max-ms.Min)
	return r, nil
}

// MultiGPU explores the scaling the paper names but leaves open:
// spreading the spy side over additional GPUs. It compares a 4-set
// single-spy channel, an 8-set single-spy channel, and an 8-set
// channel split across two spy GPUs. Trial-decomposed: one trial per
// configuration, each rebuilding the same machine from the run seed so
// the configurations stay directly comparable.
func MultiGPU(p Params) (*Result, error) {
	type mgCfg struct {
		name     string
		twoSpies bool
		spy1Sets int // how many of spy1's aligned pairs the config uses
	}
	configs := []mgCfg{
		{"1 spy GPU, 4 sets", false, 4},
		{"1 spy GPU, 8 sets", false, 8},
		{"2 spy GPUs, 4+4 sets", true, 4},
	}
	type mgTrial struct {
		bw, errRate float64
	}
	outs, err := RunTrials(p, len(configs), func(t Trial) (mgTrial, error) {
		c := configs[t.Index]
		m := machineFor(p, sim.Options{Seed: p.Seed})
		prof, err := core.CharacterizeTiming(m, trojanGPU, spyGPU, 48, p.Seed^0xfeed)
		if err != nil {
			return mgTrial{}, err
		}
		pages := discoveryPages(m.Profile(), p.Scale)
		trojan, err := core.NewAttacker(m, trojanGPU, trojanGPU, pages, prof.Thresholds, p.Seed^0x1)
		if err != nil {
			return mgTrial{}, err
		}
		tg, err := trojan.DiscoverPageGroups(trojan.Ways())
		if err != nil {
			return mgTrial{}, err
		}
		tSets := trojan.AllEvictionSets(tg, trojan.Ways())

		newSpy := func(dev arch.DeviceID, seed uint64) (*core.Attacker, []core.EvictionSet, error) {
			spy, err := core.NewAttacker(m, dev, trojanGPU, pages, prof.Thresholds, seed)
			if err != nil {
				return nil, nil, err
			}
			sg, err := spy.DiscoverPageGroups(spy.Ways())
			if err != nil {
				return nil, nil, err
			}
			return spy, spy.AllEvictionSets(sg, spy.Ways()), nil
		}
		// Spies on GPU1 and GPU2: both in GPU0's fully connected quad.
		spy1, s1Sets, err := newSpy(1, p.Seed^0x2)
		if err != nil {
			return mgTrial{}, err
		}
		// Align only as many pairs as this configuration uses;
		// alignment walks trojan sets in order, so the first k pairs
		// match a longer alignment's prefix.
		pairs1, err := core.AlignChannels(trojan, spy1, tSets[:8], s1Sets, c.spy1Sets)
		if err != nil {
			return mgTrial{}, err
		}
		branches := []core.Branch{{Spy: spy1, Pairs: pairs1}}
		if c.twoSpies {
			spy2, s2Sets, err := newSpy(2, p.Seed^0x3)
			if err != nil {
				return mgTrial{}, err
			}
			pairs2, err := core.AlignChannels(trojan, spy2, tSets[8:16], s2Sets, 4)
			if err != nil {
				return mgTrial{}, err
			}
			branches = append(branches, core.Branch{Spy: spy2, Pairs: pairs2})
		}

		msgRNG := xrand.New(p.Seed ^ 0xd0)
		msg := make([]byte, secVIMessageBytes(p.Scale)*2)
		for i := range msg {
			msg[i] = byte(msgRNG.Uint64())
		}
		mc, err := core.NewMultiChannel(trojan, branches, core.DefaultCovertConfig())
		if err != nil {
			return mgTrial{}, err
		}
		tx, err := mc.Transmit(msg)
		if err != nil {
			return mgTrial{}, err
		}
		return mgTrial{bw: tx.BandwidthMBps(), errRate: tx.ErrorRate() * 100}, nil
	})
	if err != nil {
		return nil, err
	}

	r := newResult("multigpu", "Covert channel over additional spy GPUs (extension)")
	r.Notef("%-28s %-16s %s", "configuration", "bandwidth MB/s", "error %")
	for i, c := range configs {
		bw, er := outs[i].bw, outs[i].errRate
		r.Rowf("%-28s %-16.4f %.2f",
			f("configuration", c.name), fu("bandwidth", "MB/s", bw), fu("error", "%", er))
		key := c.name[:1] + "_" + c.name[len(c.name)-8:]
		r.SetMetric("bw_"+key, "MB/s", bw)
		r.SetMetric("err_"+key, "%", er)
	}
	r.Blank()
	r.Notef("aggregate bandwidth scales with total sets; splitting the spy side across two")
	r.Notef("GPUs carries the same payload while halving each receiver's load — the scaling")
	r.Notef("path the paper points to but does not evaluate. The shared bottleneck (the")
	r.Notef("target GPU's L2 ports) is unchanged, so error behaviour tracks total sets.")
	return r, nil
}
