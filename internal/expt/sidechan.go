// E7-E8: the application-fingerprinting side channel (Fig. 11
// memorygrams and the Fig. 12 confusion matrix).
package expt

import (
	"fmt"

	"spybox/internal/classify"
	"spybox/internal/core"
	"spybox/internal/memgram"
	"spybox/internal/sim"
	"spybox/internal/victim"
	"spybox/internal/xrand"
)

// gramFeatures delegates to the shared memgram feature extractor.
func gramFeatures(g *memgram.Gram) []float64 { return g.Features() }

// fingerprintDims returns (monitored sets, probe epochs, victim
// config) per scale. The paper monitors 256 sets for Fig. 11.
func fingerprintDims(s Scale) (sets, epochs int, vcfg victim.Config) {
	// ChunkDelay paces the victims so one working-set pass spans a few
	// spy sweeps; without it the memorygram saturates into a shapeless
	// band (see victim.Config).
	switch s {
	case Small:
		return 96, 56, victim.Config{ArrayKB: 256, Passes: 400, ChunkDelay: 2500}
	default:
		return 256, 96, victim.Config{ArrayKB: 512, Passes: 900, ChunkDelay: 6700}
	}
}

// fingerprintSamples is the per-class sample count for the
// classifier. The paper collects 1500 per class; simulated samples
// are slower to produce, so the default uses fewer and EXPERIMENTS.md
// records the difference.
func fingerprintSamples(s Scale) int {
	switch s {
	case Small:
		return 24
	case Paper:
		return 150
	default:
		return 64
	}
}

// spreadSets picks n monitored sets evenly strided across the spy's
// full enumeration, so every hash region is covered and any victim
// page is visible in about n/regions monitored rows. A contiguous
// block would sit inside one region and miss victims whose pages all
// hashed elsewhere.
func spreadSets(all []core.EvictionSet, n int) []core.EvictionSet {
	if n >= len(all) {
		return all
	}
	out := make([]core.EvictionSet, 0, n)
	stride := len(all) / n
	for i := 0; i < n; i++ {
		out = append(out, all[i*stride])
	}
	return out
}

// recordGram runs one victim under the spy's monitor and returns the
// memorygram. The victim's pass budget is generous; whichever of
// monitor/victim finishes first stops the other.
func recordGram(m *sim.Machine, spy *core.Attacker, sets []core.EvictionSet, epochs int, app *victim.App) (*memgram.Gram, error) {
	victimDone := false
	monitorDone := false
	app.Stop = &monitorDone
	res, err := spy.MonitorConcurrent(sets, core.MonitorOptions{
		Epochs:    epochs,
		StopEarly: func() bool { return victimDone },
		DoneFlag:  &monitorDone,
	}, func() error { return app.Launch(&victimDone) })
	if err != nil {
		return nil, err
	}
	return memgram.New(res.Miss, app.Name)
}

// Fig11 records one memorygram per victim application and renders
// them, reproducing the six-panel figure. Trial-decomposed: one trial
// per victim application, each recorded on its own machine by its own
// spy (also avoiding cross-application cache pollution).
func Fig11(p Params) (*Result, error) {
	numSets, epochs, vcfg := fingerprintDims(p.Scale)
	grams, err := RunTrials(p, len(victim.AppNames), func(t Trial) (*memgram.Gram, error) {
		m := machineFor(t.Params, sim.Options{Seed: t.Params.Seed})
		spy, spySets, err := setupSpy(m, t.Params, discoveryPages(m.Profile(), p.Scale))
		if err != nil {
			return nil, err
		}
		monitored := spreadSets(spySets, numSets)
		name := victim.AppNames[t.Index]
		app, err := victim.NewApp(name, m, trojanGPU, t.Params.Seed^0x100, vcfg)
		if err != nil {
			return nil, err
		}
		return recordGram(m, spy, monitored, epochs, app)
	})
	if err != nil {
		return nil, err
	}
	r := newResult("fig11", "Memorygram of 6 applications")
	for i, name := range victim.AppNames {
		gram := grams[i]
		r.Chart(gram.RenderASCII(64, 16))
		r.SetMetric("total_misses_"+name, "misses", float64(gram.Total()))
		attachPGM(r, "fig11_"+name, gram)
	}
	r.Notef("each application leaves a distinct footprint; x = spy timeline, y = spy set index.")
	return r, nil
}

// Fig12 runs the full fingerprinting attack: collect memorygram
// samples for every application, train the classifier, and report the
// confusion matrix and accuracy.
func Fig12(p Params) (*Result, error) {
	numSets, epochs, vcfg := fingerprintDims(p.Scale)
	perClass := fingerprintSamples(p.Scale)
	// One trial per class: each collects its class's sample set on its
	// own machine with its own spy, so classes fan out across cores.
	perClassSamples, err := RunTrials(p, len(victim.AppNames), func(t Trial) ([]classify.Sample, error) {
		m := machineFor(t.Params, sim.Options{Seed: t.Params.Seed})
		spy, spySets, err := setupSpy(m, t.Params, discoveryPages(m.Profile(), p.Scale))
		if err != nil {
			return nil, err
		}
		monitored := spreadSets(spySets, numSets)
		class := t.Index
		name := victim.AppNames[class]
		out := make([]classify.Sample, 0, perClass)
		for s := 0; s < perClass; s++ {
			app, err := victim.NewApp(name, m, trojanGPU, t.Params.Seed^uint64(s*7+13), vcfg)
			if err != nil {
				return nil, err
			}
			gram, err := recordGram(m, spy, monitored, epochs, app)
			if err != nil {
				return nil, err
			}
			out = append(out, classify.Sample{X: gramFeatures(gram), Y: class})
			// Return the victim's frames so hundreds of samples don't
			// exhaust simulated HBM.
			for _, al := range app.Proc.Space().Allocs() {
				if err := app.Proc.Free(al.Base); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	var samples []classify.Sample
	for _, cs := range perClassSamples {
		samples = append(samples, cs...)
	}
	rng := xrand.New(p.Seed ^ 0xfca)
	train, val, test := classify.Split(samples, 0.5, 0.17, rng)
	// The paper trains a neural image classifier and validates on a
	// held-out split; we train a small ReLU net and a softmax model
	// and let the validation set pick, as the split is for.
	short := []string{"VA", "HG", "BS", "MM", "QR", "WT"}
	nn, err := classify.TrainNeural(train, len(victim.AppNames), classify.DefaultNeuralConfig(), rng.Split())
	if err != nil {
		return nil, err
	}
	sm, err := classify.TrainSoftmax(train, len(victim.AppNames), classify.DefaultSoftmaxConfig(), rng.Split())
	if err != nil {
		return nil, err
	}
	var clf classify.Predictor = nn
	chosen := "neural"
	nnVal := classify.Evaluate(nn, val, short).Accuracy()
	smVal := classify.Evaluate(sm, val, short).Accuracy()
	valAcc := nnVal
	if smVal > nnVal {
		clf, chosen, valAcc = sm, "softmax", smVal
	}
	conf := classify.Evaluate(clf, test, short)
	smAcc := classify.Evaluate(sm, test, short).Accuracy()
	knn, err := classify.NewKNN(3, train)
	if err != nil {
		return nil, err
	}
	knnAcc := classify.Evaluate(knn, test, short).Accuracy()

	r := newResult("fig12", "Confusion matrix for application fingerprinting")
	r.Rowf("samples: %d per class (paper: 1500); split train/val/test = %d/%d/%d",
		f("samples_per_class", perClass), f("train", len(train)), f("val", len(val)), f("test", len(test)))
	r.Chart(conf.String())
	r.Rowf("model selected on validation: %s (val acc %.2f%%); softmax test: %.2f%%; kNN test: %.2f%%",
		f("model", chosen), fu("val_accuracy", "%", 100*valAcc),
		fu("softmax_test_accuracy", "%", 100*smAcc), fu("knn_test_accuracy", "%", 100*knnAcc))
	r.SetMetric("softmax_accuracy", "", smAcc)
	r.Notef("paper: 99.91%% over 7200 test samples")
	r.SetMetric("test_accuracy", "", conf.Accuracy())
	r.SetMetric("knn_accuracy", "", knnAcc)
	for c, name := range victim.AppNames {
		r.SetMetric(fmt.Sprintf("recall_%s", name), "", conf.ClassAccuracy(c))
	}
	return r, nil
}
