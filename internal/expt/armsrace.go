// The "armsrace" extension: the closed-loop attacker-vs-defense game
// internal/game implements, swept over defender aggressiveness. Each
// trial plays one full match — transmission epochs interleaved with
// defense observation windows on one machine — under a different
// defender setting, from the static Sec. VII baseline (observe and
// threshold, never act) up to a containment policy that partitions
// the suspect L2. The summaries trace the ROC-vs-goodput frontier:
// what detection a setting buys, what it costs the box, and how far
// it pushes the adaptive attacker's error rate up and goodput down.
//
// Trial-decomposed: one trial per defender setting. Like sec6 and
// fabricsweep, trials deliberately seed their machines (and the match
// rng, so the payload schedule matches) from the run seed — the four
// matches form a controlled comparison where only the policy differs.
package expt

import (
	"fmt"

	"spybox/internal/core"
	"spybox/internal/game"
	"spybox/internal/plot"
	"spybox/internal/xrand"
)

// armsraceSetting is one point on the defender sweep.
type armsraceSetting struct {
	name      string
	threshold float64
	aggr      float64
	static    bool
}

// armsraceSettings returns the sweep: the paper's static detector and
// three adaptive policies of increasing appetite. A function rather
// than a package var — expt is a detrand package.
func armsraceSettings() []armsraceSetting {
	return []armsraceSetting{
		// The Sec. VII baseline: threshold 2000 txns/Mcycle, no actions.
		{name: "static", threshold: 2000, aggr: 0, static: true},
		// Watchful: loose threshold, only cheap moves (no partition).
		{name: "lenient", threshold: 4000, aggr: 0.3},
		// Mid sweep: throttles localized planes, repins, retunes.
		{name: "aggressive", threshold: 700, aggr: 0.6},
		// Containment: partitions the suspect L2 on first detection.
		{name: "contain", threshold: 2000, aggr: 0.95},
	}
}

// armsraceRounds scales the match length.
func armsraceRounds(s Scale) int {
	if s == Small {
		return 4
	}
	return 6
}

// armsraceTrial is one setting's finished match.
type armsraceTrial struct {
	setting armsraceSetting
	res     *game.MatchResult
}

// ArmsRace plays one attacker-vs-defense match per defender setting
// and reports the per-round traces, per-setting summaries, and the
// ROC-vs-goodput series the sweep traces out.
func ArmsRace(p Params) (*Result, error) {
	settings := armsraceSettings()
	rounds := armsraceRounds(p.Scale)
	outs, err := RunTrials(p, len(settings), func(t Trial) (armsraceTrial, error) {
		s := settings[t.Index]
		out := armsraceTrial{setting: s}
		// Condition trials rebuild the same machine from the run seed;
		// see the package comment and EXPERIMENTS.md.
		pair, err := setupAttackPair(Params{Seed: p.Seed, Scale: p.Scale, Parallel: 1, Arch: p.Arch})
		if err != nil {
			return out, err
		}
		pairs, err := core.AlignChannels(pair.trojan, pair.spy, pair.trojanSets, pair.spySets, 2)
		if err != nil {
			return out, err
		}
		ch, err := core.NewChannel(pair.trojan, pair.spy, pairs, core.DefaultCovertConfig())
		if err != nil {
			return out, err
		}
		res, err := game.Play(pair.m, ch, game.MatchConfig{
			Rounds:         rounds,
			Threshold:      s.threshold,
			Aggressiveness: s.aggr,
			Static:         s.static,
		}, xrand.New(p.Seed^0xa55))
		if err != nil {
			return out, err
		}
		out.res = res
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	prof := p.mustProfile()
	r := newResult("armsrace", "Closed-loop attacker-vs-defense arms race")
	r.Rowf("box: %s", f("box", prof.String()))
	r.Rowf("%d defender settings, %d rounds each; suspect GPU %d, sampler GPU %d",
		f("settings", len(settings)), f("rounds", rounds),
		f("suspect_gpu", int(trojanGPU)), f("sampler_gpu", 7))
	r.Blank()

	for _, o := range outs {
		r.Notef("--- %s (threshold %.0f, aggressiveness %.2f) ---",
			o.setting.name, o.setting.threshold, o.setting.aggr)
		r.Notef("%-6s %-5s %-4s %-18s %-10s %-7s %-10s %-5s %-8s %-12s %s",
			"round", "det", "fp", "action", "threshold", "cost", "bitperiod", "fec", "txplane", "goodput MB/s", "err %")
		for _, tr := range o.res.Trace {
			r.Rowf("%-6d %-5s %-4s %-18s %-10.0f %-7.1f %-10d %-5s %-8d %-12.4f %.2f",
				f("round", tr.Round), f("det", yn(tr.Detected)), f("fp", yn(tr.FalsePos)),
				f("action", actionCell(tr)), fu("threshold", "txns/Mcycle", tr.Threshold),
				f("cost", tr.Cost), fu("bit_period", "cycles", uint64(tr.BitPeriod)),
				f("fec", yn(tr.FEC)), f("tx_plane", tr.TxPlane),
				fu("goodput", "MB/s", tr.GoodputMBps), fu("err", "%", tr.ErrPct))
		}
		r.Blank()
	}

	r.Notef("%-12s %-9s %-9s %-14s %-9s %-9s %s",
		"setting", "det rate", "fp rate", "goodput MB/s", "err %", "cost", "final thr")
	det := plot.Series{Name: "detection rate"}
	fpS := plot.Series{Name: "false-positive rate"}
	for _, o := range outs {
		s := o.res.Summary
		r.Rowf("%-12s %-9.2f %-9.2f %-14.4f %-9.2f %-9.1f %.0f",
			f("setting", o.setting.name), f("det_rate", s.DetectionRate), f("fp_rate", s.FalsePosRate),
			fu("goodput", "MB/s", s.MeanGoodputMBps), fu("err", "%", s.MeanErrPct),
			f("cost", s.DefenseCost), fu("final_thr", "txns/Mcycle", o.res.FinalThreshold))
		suffix := "_" + o.setting.name
		r.SetMetric("det_rate"+suffix, "", s.DetectionRate)
		r.SetMetric("fp_rate"+suffix, "", s.FalsePosRate)
		r.SetMetric("goodput_MBps"+suffix, "MB/s", s.MeanGoodputMBps)
		r.SetMetric("err_pct"+suffix, "%", s.MeanErrPct)
		r.SetMetric("cost"+suffix, "units", s.DefenseCost)
		det.X = append(det.X, s.MeanGoodputMBps)
		det.Y = append(det.Y, s.DetectionRate)
		fpS.X = append(fpS.X, s.MeanGoodputMBps)
		fpS.Y = append(fpS.Y, s.FalsePosRate)
	}
	r.Series = []plot.Series{det, fpS}
	r.Chart(plot.Line(r.Series, 64, 12, "attacker goodput MB/s", "rate"))

	// A setting dominates the static Sec. VII baseline when it keeps
	// the same detection rate while hurting the attacker more (higher
	// raw error) at no extra benign cost (no more false positives).
	base := outs[0].res.Summary
	dominant := ""
	for _, o := range outs[1:] {
		s := o.res.Summary
		if s.DetectionRate >= base.DetectionRate && s.MeanErrPct > base.MeanErrPct && s.FalsePosRate <= base.FalsePosRate {
			dominant = o.setting.name
			break
		}
	}
	r.Blank()
	if dominant != "" {
		r.Rowf("setting %q strictly dominates the static Sec. VII baseline:",
			f("dominant_setting", dominant))
		r.Notef("same or better detection, higher attacker error, no extra false positives.")
	} else {
		r.Rowf("no adaptive setting dominates the static baseline (%s)",
			f("dominant_setting", "none"))
	}
	r.SetMetric("dominates", "", b2f(dominant != ""))
	r.Notef("the adaptive defender's standing measures (L2 partition, plane derating)")
	r.Notef("break the attacker's probe timing without losing the NVLink traffic")
	r.Notef("signature — remote probes traverse the fabric on hit and miss alike.")
	return r, nil
}

// yn renders a boolean trace flag.
func yn(b bool) string {
	if b {
		return "y"
	}
	return "-"
}

// b2f is for boolean metrics.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// actionCell renders an action with its plane/factor operands.
func actionCell(tr game.RoundTrace) string {
	s := tr.Action.String()
	switch tr.Action {
	case game.ActThrottlePlane:
		return fmt.Sprintf("%s(%d,x%d)", s, tr.ActPlane, tr.Factor)
	case game.ActRepinVictim:
		return fmt.Sprintf("%s(%d)", s, tr.ActPlane)
	}
	return s
}
