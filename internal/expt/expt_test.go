package expt

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"spybox/internal/arch"
)

// smallParams runs every experiment at test scale.
func smallParams() Params { return Params{Seed: 20230612, Scale: Small} }

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"small": Small, "default": Default, "": Default, "paper": Paper} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScale("bogus"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) != 20 {
		t.Fatalf("registry has %d experiments, want 20", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.Run == nil || e.ID == "" || e.Title == "" {
			t.Errorf("incomplete registry entry %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Lookup("fig9"); !ok {
		t.Error("fig9 not found")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus ID found")
	}
}

func TestFig4(t *testing.T) {
	t.Parallel()
	r, err := Fig4(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	// The four characterized clusters must be ordered and separated.
	lb, rb := r.Metrics["local_boundary"], r.Metrics["remote_boundary"]
	if !(lb > 268 && lb < 440) {
		t.Errorf("local boundary %v out of range", lb)
	}
	if !(rb > 630 && rb < 950) {
		t.Errorf("remote boundary %v out of range", rb)
	}
}

func TestFig5(t *testing.T) {
	t.Parallel()
	r, err := Fig5(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Metrics["eviction_step_local"]; got != 16 {
		t.Errorf("local eviction step %v, want 16", got)
	}
	if got := r.Metrics["eviction_step_remote"]; got != 16 {
		t.Errorf("remote eviction step %v, want 16", got)
	}
}

func TestTableI(t *testing.T) {
	t.Parallel()
	r, err := TableI(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["sets"] != 2048 || r.Metrics["ways"] != 16 ||
		r.Metrics["line_size"] != 128 || r.Metrics["cache_bytes"] != 4<<20 ||
		r.Metrics["policy_lru"] != 1 {
		t.Errorf("Table I mismatch: %v", r.Metrics)
	}
}

func TestFig7(t *testing.T) {
	t.Parallel()
	r, err := Fig7(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["aligned_fraction"] != 1 {
		t.Errorf("aligned fraction %v, want 1", r.Metrics["aligned_fraction"])
	}
	if r.Metrics["matched_avg_cycles"] <= r.Metrics["unmatched_avg_cycles"] {
		t.Error("matched sets should show higher probe latency")
	}
}

func TestFig9(t *testing.T) {
	t.Parallel()
	r, err := Fig9(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["best_bandwidth_MBps"] <= 0 {
		t.Error("no bandwidth achieved")
	}
	if r.Metrics["error_at_1_set_pct"] > 10 {
		t.Errorf("single-set error %v%% too high", r.Metrics["error_at_1_set_pct"])
	}
	// Bandwidth must rise with parallel sets (the paper's key curve).
	bw := r.Series[0]
	if bw.Y[len(bw.Y)-1] <= bw.Y[0] {
		t.Errorf("bandwidth did not rise with sets: %v", bw.Y)
	}
}

func TestFig10(t *testing.T) {
	t.Parallel()
	r, err := Fig10(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	z, o := r.Metrics["zero_level_cycles"], r.Metrics["one_level_cycles"]
	if !(z > 550 && z < 800) {
		t.Errorf("'0' level %v, want ~630", z)
	}
	if !(o > 800 && o < 1200) {
		t.Errorf("'1' level %v, want ~950", o)
	}
	if r.Metrics["bit_error_rate"] > 0.05 {
		t.Errorf("bit error rate %v too high", r.Metrics["bit_error_rate"])
	}
	joined := strings.Join(r.Lines(), "\n")
	if !strings.Contains(joined, "Hello! How are you?") {
		t.Error("message not in report")
	}
}

func TestFig11(t *testing.T) {
	t.Parallel()
	r, err := Fig11(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"vectoradd", "histogram", "matmul"} {
		if r.Metrics["total_misses_"+name] <= 0 {
			t.Errorf("%s memorygram is dark", name)
		}
	}
}

func TestFig12(t *testing.T) {
	if testing.Short() {
		t.Skip("fig12 collects 144 fingerprint samples; skipped in -short CI runs")
	}
	t.Parallel()
	r, err := Fig12(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if acc := r.Metrics["test_accuracy"]; acc < 0.6 {
		t.Errorf("fingerprinting accuracy %.2f too low even at small scale", acc)
	}
}

func TestFig13(t *testing.T) {
	t.Parallel()
	r, err := Fig13(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["total_misses_h512"] <= r.Metrics["total_misses_h64"] {
		t.Errorf("misses did not grow with hidden width: %v", r.Metrics)
	}
}

func TestTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("table2 trains 8 MLP victims; skipped in -short CI runs")
	}
	t.Parallel()
	r, err := TableII(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["monotone_in_hidden"] != 1 {
		t.Errorf("average misses not monotone in hidden width: %v", r.Metrics)
	}
	if r.Metrics["extraction_correct"] < 3 {
		t.Errorf("model extraction recovered only %v/4", r.Metrics["extraction_correct"])
	}
}

func TestFig14(t *testing.T) {
	t.Parallel()
	r, err := Fig14(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["total_misses_h512"] <= r.Metrics["total_misses_h128"] {
		t.Error("512-neuron memorygram not denser than 128")
	}
}

func TestFig15(t *testing.T) {
	t.Parallel()
	r, err := Fig15(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["epochs_detected"] != r.Metrics["epochs_true"] {
		t.Errorf("detected %v epochs, trained %v", r.Metrics["epochs_detected"], r.Metrics["epochs_true"])
	}
}

func TestSecVI(t *testing.T) {
	t.Parallel()
	r, err := SecVI(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	quiet, noisy, blocked := r.Metrics["error_quiet_pct"], r.Metrics["error_noisy_pct"], r.Metrics["error_blocked_pct"]
	if noisy <= quiet {
		t.Errorf("noise did not degrade the channel: quiet %v%%, noisy %v%%", quiet, noisy)
	}
	if blocked >= noisy {
		t.Errorf("occupancy blocking did not help: noisy %v%%, blocked %v%%", noisy, blocked)
	}
	if r.Metrics["noise_blocks_with_blocking"] != 0 {
		t.Errorf("%v noise blocks placed despite blocking", r.Metrics["noise_blocks_with_blocking"])
	}
}

func TestSecVII(t *testing.T) {
	t.Parallel()
	r, err := SecVII(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Metrics["detected_covert channel active"]; got != 1 {
		t.Fatalf("covert channel not detected: detected = %v, median rate %v txns/Mcy",
			got, r.Metrics["median_rate_covert channel active"])
	}
	if got := r.Metrics["detected_benign (victims + bulk P2P)"]; got != 0 {
		t.Fatalf("false positive on benign workload: detected = %v, median rate %v txns/Mcy",
			got, r.Metrics["median_rate_benign (victims + bulk P2P)"])
	}
	if got := r.Metrics["detected_idle (local workload only)"]; got != 0 {
		t.Fatalf("false positive on idle fabric: detected = %v, median rate %v txns/Mcy",
			got, r.Metrics["median_rate_idle (local workload only)"])
	}
	// The paper's machine has point-to-point links: no plane metrics.
	if got, ok := r.Metrics["localized_plane"]; ok {
		t.Fatalf("p100-dgx1 reported localized_plane = %v; it has no switch fabric", got)
	}
}

// TestSecVIIPlaneLocalization runs the detector on the DGX-2 profile,
// where the two-stage fabric pins the covert pair to one switch plane
// and the detector must name it.
func TestSecVIIPlaneLocalization(t *testing.T) {
	if testing.Short() {
		t.Skip("sec7 on v100-dgx2 re-runs the full attack setup; skipped in -short CI runs")
	}
	t.Parallel()
	p := smallParams()
	p.Arch = "v100-dgx2"
	r, err := SecVII(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Metrics["detected_covert channel active"]; got != 1 {
		t.Fatalf("covert channel not detected on v100-dgx2: detected = %v, median rate %v txns/Mcy",
			got, r.Metrics["median_rate_covert channel active"])
	}
	prof, err := arch.LookupProfile("v100-dgx2")
	if err != nil {
		t.Fatal(err)
	}
	want := float64((0 + 1) % prof.Fabric.Planes) // trojan GPU0, spy GPU1
	got, ok := r.Metrics["localized_plane"]
	if !ok {
		t.Fatalf("covert stream not localized to any plane; plane rates: %v %v %v %v %v %v",
			r.Metrics["plane_rate_0"], r.Metrics["plane_rate_1"], r.Metrics["plane_rate_2"],
			r.Metrics["plane_rate_3"], r.Metrics["plane_rate_4"], r.Metrics["plane_rate_5"])
	}
	if got != want {
		t.Fatalf("localized_plane = %v, want %v (the covert pair's pinned plane)", got, want)
	}
	for i := 0; i < prof.Fabric.Planes; i++ {
		rate, ok := r.Metrics[fmt.Sprintf("plane_rate_%d", i)]
		if !ok {
			t.Fatalf("missing per-plane rate metric plane_rate_%d", i)
		}
		if i != int(want) && rate >= r.Metrics[fmt.Sprintf("plane_rate_%d", int(want))] {
			t.Fatalf("plane %d rate %v not below the covert plane's %v", i, rate,
				r.Metrics[fmt.Sprintf("plane_rate_%d", int(want))])
		}
	}
}

// TestFabricSweep checks the port-contention sweep: queueing and error
// rate must grow with competing streams while the accounting holds.
func TestFabricSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("fabricsweep runs four full channel setups on v100-dgx2; skipped in -short CI runs")
	}
	t.Parallel()
	r, err := FabricSweep(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	q0, q3 := r.Metrics["queue_cycles_0streams"], r.Metrics["queue_cycles_3streams"]
	if q3 <= 2*q0 {
		t.Fatalf("port queueing did not grow with competitors: %v cycles at 0 streams, %v at 3", q0, q3)
	}
	e0, e3 := r.Metrics["err_pct_0streams"], r.Metrics["err_pct_3streams"]
	if e3 <= e0 {
		t.Fatalf("contention did not degrade the channel: %v%% errors at 0 streams, %v%% at 3", e0, e3)
	}
	for k := 0; k < fabricsweepStreams; k++ {
		cur := r.Metrics[fmt.Sprintf("plane_txns_%dstreams", k)]
		next := r.Metrics[fmt.Sprintf("plane_txns_%dstreams", k+1)]
		if next <= cur {
			t.Fatalf("covert-plane traffic not increasing with streams: %v txns at %d, %v at %d",
				cur, k, next, k+1)
		}
	}
	for _, l := range r.Lines() {
		if strings.Contains(l, "ACCOUNTING ERROR") {
			t.Fatalf("plane/link accounting diverged: %s", l)
		}
	}
	if bw := r.Metrics["bw_MBps_0streams"]; bw <= 0 {
		t.Fatalf("no covert bandwidth on the quiet fabric: %v MB/s", bw)
	}
}

func TestMIG(t *testing.T) {
	t.Parallel()
	r, err := MIG(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Metrics["baseline_aligned"]; got != 1 {
		t.Fatalf("attack should succeed on the stock machine: baseline_aligned = %v", got)
	}
	if got := r.Metrics["mig_aligned"]; got != 0 {
		t.Fatalf("attack should fail under MIG partitioning: mig_aligned = %v", got)
	}
}

func TestPairs(t *testing.T) {
	t.Parallel()
	r, err := Pairs(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["connected_pairs"] != 32 || r.Metrics["refused_pairs"] != 24 {
		t.Errorf("pair counts %v/%v, want 32/24", r.Metrics["connected_pairs"], r.Metrics["refused_pairs"])
	}
	if r.Metrics["hit_spread_cycles"] > 40 {
		t.Errorf("remote hit levels vary %v cycles across pairs; paper found them uniform", r.Metrics["hit_spread_cycles"])
	}
}

func TestMultiGPU(t *testing.T) {
	if testing.Short() {
		t.Skip("multigpu runs three full channel setups; skipped in -short CI runs")
	}
	t.Parallel()
	r, err := MultiGPU(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	bw1, bw2 := r.Metrics["bw_1_, 4 sets"], r.Metrics["bw_2_4+4 sets"]
	if bw2 <= bw1 {
		t.Errorf("two-GPU fan-out bandwidth %v not above single 4-set %v", bw2, bw1)
	}
}

func TestArchSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("archsweep reruns the attack chain on three profiles; skipped in -short CI runs")
	}
	t.Parallel()
	r, err := ArchSweep(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics["profiles"] != 3 {
		t.Fatalf("swept %v profiles, want 3", r.Metrics["profiles"])
	}
	if r.Metrics["ported"] != 3 {
		t.Errorf("attack ported on %v/3 profiles: %v", r.Metrics["ported"], r.Metrics)
	}
	for _, name := range []string{"p100-dgx1", "v100-dgx2", "a100-class"} {
		if r.Metrics["geo_ok_"+name] != 1 {
			t.Errorf("%s: geometry reverse engineering failed", name)
		}
		if r.Metrics["bw_MBps_"+name] <= 0 {
			t.Errorf("%s: no covert bandwidth", name)
		}
	}
	// The measured associativities are the per-generation ground truth.
	if r.Metrics["measured_ways_p100-dgx1"] != 16 ||
		r.Metrics["measured_ways_v100-dgx2"] != 24 ||
		r.Metrics["measured_ways_a100-class"] != 32 {
		t.Errorf("measured ways wrong: %v", r.Metrics)
	}
}

// failingGram's render always fails; attachPGM must surface that in
// the report instead of silently dropping the artifact.
type failingGram struct{}

func (failingGram) WritePGM(io.Writer) error { return errors.New("disk is lava") }

type okGram struct{}

func (okGram) WritePGM(w io.Writer) error {
	_, err := w.Write([]byte("P5 1 1 255 x"))
	return err
}

func TestAttachPGMRecordsRenderErrors(t *testing.T) {
	r := newResult("x", "t")
	attachPGM(r, "good", okGram{})
	attachPGM(r, "bad", failingGram{})
	if _, ok := r.Artifacts["good.pgm"]; !ok {
		t.Error("successful render not attached")
	}
	if _, ok := r.Artifacts["bad.pgm"]; ok {
		t.Error("failed render attached an artifact")
	}
	joined := strings.Join(r.Lines(), "\n")
	if !strings.Contains(joined, "ARTIFACT ERROR") || !strings.Contains(joined, "disk is lava") {
		t.Errorf("render failure not recorded in report lines: %q", joined)
	}
}
