// E5-E6: the covert channel evaluation (Fig. 9 bandwidth/error curve
// and the Fig. 10 message waveform).
package expt

import (
	"spybox/internal/core"
	"spybox/internal/plot"
	"spybox/internal/xrand"
)

// fig9SetCounts returns the x-axis of the Fig. 9 sweep per scale.
func fig9SetCounts(s Scale) []int {
	switch s {
	case Small:
		return []int{1, 2, 4}
	default:
		return []int{1, 2, 4, 8, 16}
	}
}

// fig9MessageBytes is the covert message length per scale. The paper
// sends 1 Mb over 1000 runs; the simulated channel sends a shorter
// message (documented in EXPERIMENTS.md) — bandwidth and error rate
// are length-independent beyond a few hundred bits.
func fig9MessageBytes(s Scale) int {
	switch s {
	case Small:
		return 48
	case Paper:
		return 2048
	default:
		return 384
	}
}

func fig9Runs(s Scale) int {
	switch s {
	case Small:
		return 1
	case Paper:
		return 10
	default:
		return 3
	}
}

// fig9Trial is one (set count, run) transmission on its own machine.
type fig9Trial struct {
	bw, errRate float64
}

// Fig9 reproduces the bandwidth/error-rate tradeoff: transmit a
// message over 1..16 parallel cache sets and report MB/s and error
// percentage per configuration. Trial-decomposed: one trial per
// (set count, repetition), each with its own machine and attack pair.
func Fig9(p Params) (*Result, error) {
	counts := fig9SetCounts(p.Scale)
	runs := fig9Runs(p.Scale)
	outs, err := RunTrials(p, len(counts)*runs, func(t Trial) (fig9Trial, error) {
		numSets := counts[t.Index/runs]
		pair, err := setupAttackPair(t.Params)
		if err != nil {
			return fig9Trial{}, err
		}
		chPairs, err := core.AlignChannels(pair.trojan, pair.spy, pair.trojanSets, pair.spySets, numSets)
		if err != nil {
			return fig9Trial{}, err
		}
		ch, err := core.NewChannel(pair.trojan, pair.spy, chPairs, core.DefaultCovertConfig())
		if err != nil {
			return fig9Trial{}, err
		}
		msgRNG := xrand.New(t.Params.Seed ^ 0xc0de)
		msg := make([]byte, fig9MessageBytes(p.Scale))
		for i := range msg {
			msg[i] = byte(msgRNG.Uint64())
		}
		tx, err := ch.Transmit(msg)
		if err != nil {
			return fig9Trial{}, err
		}
		return fig9Trial{bw: tx.BandwidthMBps(), errRate: tx.ErrorRate()}, nil
	})
	if err != nil {
		return nil, err
	}
	r := newResult("fig9", "Bandwidth and error rate in covert channel")
	bwSeries := plot.Series{Name: "bandwidth MB/s"}
	errSeries := plot.Series{Name: "error %"}
	r.Notef("%-6s %-14s %-10s", "sets", "bandwidth MB/s", "error %")
	for ci, n := range counts {
		var bw, errRate float64
		for run := 0; run < runs; run++ {
			o := outs[ci*runs+run]
			bw += o.bw
			errRate += o.errRate
		}
		bw /= float64(runs)
		errRate = errRate / float64(runs) * 100
		r.Rowf("%-6d %-14.4f %-10.2f",
			f("sets", n), fu("bandwidth", "MB/s", bw), fu("error", "%", errRate))
		bwSeries.X = append(bwSeries.X, float64(n))
		bwSeries.Y = append(bwSeries.Y, bw)
		errSeries.X = append(errSeries.X, float64(n))
		errSeries.Y = append(errSeries.Y, errRate)
	}
	r.Series = []plot.Series{bwSeries, errSeries}
	r.Blank()
	r.Notef("paper: bandwidth rises with sets, error rises too; best 3.95 MB/s at 4 sets, 1.3%% error.")
	r.Notef("simulated probes are not warp-pipelined to silicon speed, so absolute MB/s is lower;")
	r.Notef("the shape (both curves rising, error exploding past ~4-8 sets) is the reproduced claim.")
	r.SetMetric("best_bandwidth_MBps", "MB/s", maxSlice(bwSeries.Y))
	r.SetMetric("error_at_max_sets_pct", "%", errSeries.Y[len(errSeries.Y)-1])
	r.SetMetric("error_at_1_set_pct", "%", errSeries.Y[0])
	return r, nil
}

func maxSlice(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Fig10 transmits the paper's greeting across the channel and renders
// the spy-side probe waveform: ~630-cycle plateaus for '0' bits and
// ~950-cycle plateaus for '1' bits, exactly the levels in the paper.
func Fig10(p Params) (*Result, error) {
	pair, err := setupAttackPair(p)
	if err != nil {
		return nil, err
	}
	pairs, err := core.AlignChannels(pair.trojan, pair.spy, pair.trojanSets, pair.spySets, 1)
	if err != nil {
		return nil, err
	}
	ch, err := core.NewChannel(pair.trojan, pair.spy, pairs, core.DefaultCovertConfig())
	if err != nil {
		return nil, err
	}
	msg := []byte("Hello! How are you? ")
	tx, err := ch.Transmit(msg)
	if err != nil {
		return nil, err
	}
	r := newResult("fig10", "Cross GPU covert message received by spy")
	decoded := core.BitsToBytes(tx.ReceivedBits)
	r.Rowf("sent:     %q", f("sent", string(msg)))
	r.Rowf("received: %q", f("received", string(decoded)))
	r.Rowf("bit errors: %d/%d (%.2f%%)",
		f("bit_errors", tx.BitErrors), f("bits_sent", len(tx.SentBits)), fu("error", "%", 100*tx.ErrorRate()))

	// Waveform: average latency per probe over time; split into two
	// level clusters for the report.
	var zeroLats, oneLats []float64
	T := ch.Cfg.BitPeriod
	series := plot.Series{Name: "spy probe avg latency"}
	for _, pt := range tx.Trace {
		series.X = append(series.X, float64(pt.T))
		series.Y = append(series.Y, pt.AvgLat)
		bitIdx := int(pt.T / T)
		if bitIdx < len(tx.SentBits) {
			if tx.SentBits[bitIdx] == 1 {
				oneLats = append(oneLats, pt.AvgLat)
			} else {
				zeroLats = append(zeroLats, pt.AvgLat)
			}
		}
	}
	r.Series = []plot.Series{series}
	limit := len(series.X)
	if limit > 400 {
		series.X, series.Y = series.X[:400], series.Y[:400]
	}
	r.Chart(plot.Line([]plot.Series{series}, 72, 12, "spy clock (cycles)", "probe cycles"))
	z, o := mean(zeroLats), mean(oneLats)
	r.Rowf("'0' level: %.0f cycles (paper: ~630); '1' level: %.0f cycles (paper: ~950)",
		fu("zero_level", "cycles", z), fu("one_level", "cycles", o))
	r.SetMetric("zero_level_cycles", "cycles", z)
	r.SetMetric("one_level_cycles", "cycles", o)
	r.SetMetric("bit_error_rate", "", tx.ErrorRate())
	return r, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
