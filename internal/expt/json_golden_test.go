package expt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"spybox/pkg/spybox/report"
)

// jsonGoldenExperiments freeze the JSON schema for one single-shot
// experiment (fig4) and one trial-decomposed experiment (fig9): any
// change to the document layout, record kinds, field keys/units, or
// metric encoding shows up as a golden diff — and a deliberate change
// must come with a schema version bump (see report.Schema and the
// version policy in the README).
var jsonGoldenExperiments = []string{"fig4", "fig9"}

// TestGoldenJSON pins the schema-versioned JSON encoding at the
// default seed, then round-trips the golden document: decoding and
// re-encoding must reproduce it byte-for-byte, the stability external
// tooling relies on. Regenerate with -update only alongside a
// reviewed schema change.
func TestGoldenJSON(t *testing.T) {
	t.Parallel()
	p := Params{Seed: 20230612, Scale: Small, Parallel: 1, Arch: "p100-dgx1"}
	for _, id := range jsonGoldenExperiments {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, ok := Lookup(id)
			if !ok {
				t.Fatalf("experiment %q not registered", id)
			}
			r, err := e.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := report.Encode(&buf, r); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden_"+id+".json")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s JSON diverged from the golden schema file.\n"+
					"got %d bytes, want %d; first divergence near byte %d\n"+
					"(an intended layout change needs a report.Schema version bump)",
					id, buf.Len(), len(want), firstDiff(buf.Bytes(), want))
			}

			// Decode-and-re-encode stability over the *golden* bytes:
			// what a consumer wrote yesterday must re-encode
			// identically today.
			decoded, err := report.Decode(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("golden document does not decode: %v", err)
			}
			var again bytes.Buffer
			if err := report.Encode(&again, decoded...); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again.Bytes(), want) {
				t.Errorf("%s: encode(decode(golden)) != golden; first divergence near byte %d",
					id, firstDiff(again.Bytes(), want))
			}
		})
	}
}
