package game

import (
	"reflect"
	"testing"

	"spybox/internal/core"
	"spybox/internal/xrand"
)

func newTestEngine(t *testing.T, cfg Config, seed uint64) *Engine {
	t.Helper()
	e, err := New(cfg, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	rng := xrand.New(1)
	if _, err := New(Config{Rounds: 0}, rng); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := New(Config{Rounds: 1, Planes: -1}, rng); err == nil {
		t.Error("negative planes accepted")
	}
	if _, err := New(Config{Rounds: 1, Aggressiveness: 1.5}, rng); err == nil {
		t.Error("aggressiveness > 1 accepted")
	}
	if _, err := New(Config{Rounds: 1}, nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestStaticDefenderNeverActs(t *testing.T) {
	e := newTestEngine(t, Config{Rounds: 6, Static: true, Aggressiveness: 1}, 2)
	obs := Observation{CovertRate: 9000, BenignRate: 5000, Threshold: 2000, LocalPlane: -1, BenignPlane: -1, TxPlane: -1, ThrottledPlane: -1}
	for i := 0; i < 6; i++ {
		tr := e.Step(obs)
		if tr.Action != ActNone {
			t.Fatalf("round %d: static defender acted: %v", i, tr.Action)
		}
		if !tr.Detected || !tr.FalsePos {
			t.Fatalf("round %d: detection flags wrong: %+v", i, tr)
		}
		if tr.Cost != 0 {
			t.Fatalf("round %d: static defender charged cost %g", i, tr.Cost)
		}
	}
}

func TestDefenderPartitionsOnFlatBox(t *testing.T) {
	e := newTestEngine(t, Config{Rounds: 4, Planes: 0, Aggressiveness: 0.6}, 3)
	obs := Observation{CovertRate: 9000, Threshold: 2000, LocalPlane: -1, BenignPlane: -1, TxPlane: -1, ThrottledPlane: -1}
	tr := e.Step(obs)
	if tr.Action != ActPartition {
		t.Fatalf("flat-box detection at aggr 0.6 gave %v, want partition", tr.Action)
	}
	if tr.Cost != CostPartitionSetup+CostPartitionRound {
		t.Errorf("partition round cost %g, want %g", tr.Cost, CostPartitionSetup+CostPartitionRound)
	}
	// With the partition standing, the same detection holds posture
	// and pays the per-round tax.
	obs.Partitioned = true
	tr = e.Step(obs)
	if tr.Action != ActNone || tr.Cost != CostPartitionRound {
		t.Errorf("standing partition: action %v cost %g, want hold at %g", tr.Action, tr.Cost, CostPartitionRound)
	}
}

func TestDefenderThrottleRepinEscalation(t *testing.T) {
	e := newTestEngine(t, Config{Rounds: 6, Planes: 6, Aggressiveness: 0.5}, 4)
	// Localized stream on plane 2: derate it.
	obs := Observation{CovertRate: 9000, Threshold: 2000, LocalPlane: 2, BenignPlane: 5, TxPlane: 2, ThrottledPlane: -1}
	tr := e.Step(obs)
	if tr.Action != ActThrottlePlane || tr.ActPlane != 2 || tr.Factor != 3 {
		t.Fatalf("localized detection gave %v plane %d factor %d, want throttle plane 2 factor 3", tr.Action, tr.ActPlane, tr.Factor)
	}
	// Benign pair rides the derated plane: repin it, avoiding both
	// the derated plane and the localized one.
	obs.ThrottledPlane, obs.ThrottleFactor = 2, 3
	obs.BenignPlane = 2
	obs.CovertRate = 100 // attacker gone quiet
	tr = e.Step(obs)
	if tr.Action != ActRepinVictim || tr.ActPlane != 0 {
		t.Fatalf("benign on derated plane gave %v plane %d, want repin to 0", tr.Action, tr.ActPlane)
	}
	if tr.Cost != CostReroute+CostThrottleRound {
		t.Errorf("repin cost %g, want %g (collateral ends with the repin)", tr.Cost, CostReroute+CostThrottleRound)
	}
	// Localized on a *different* plane: the throttle moves.
	obs.BenignPlane, obs.VictimRepinned = 0, true
	obs.CovertRate, obs.LocalPlane = 9000, 4
	tr = e.Step(obs)
	if tr.Action != ActThrottlePlane || tr.ActPlane != 4 {
		t.Fatalf("re-localized detection gave %v plane %d, want throttle plane 4", tr.Action, tr.ActPlane)
	}
}

func TestDefenderThresholdRetuning(t *testing.T) {
	e := newTestEngine(t, Config{Rounds: 8, Planes: 0, Aggressiveness: 1}, 5)
	// False positive without detection: raise.
	obs := Observation{CovertRate: 100, BenignRate: 3000, Threshold: 2000, LocalPlane: -1, BenignPlane: -1, TxPlane: -1, ThrottledPlane: -1}
	if tr := e.Step(obs); tr.Action != ActRaiseThreshold || tr.Cost != CostRetune {
		t.Fatalf("false positive gave %v cost %g", tr.Action, tr.Cost)
	}
	// Two quiet rounds: tighten on the second.
	obs.BenignRate = 100
	if tr := e.Step(obs); tr.Action != ActNone {
		t.Fatalf("first quiet round acted: %v", tr.Action)
	}
	if tr := e.Step(obs); tr.Action != ActLowerThreshold {
		t.Fatalf("second quiet round gave %v, want lower-threshold", tr.Action)
	}
}

func TestAttackerAdaptation(t *testing.T) {
	e := newTestEngine(t, Config{Rounds: 10, Planes: 6, Aggressiveness: 0}, 6)
	periods := core.BitPeriods()
	// Clean channel: after two clean rounds the sender presses rate.
	obs := Observation{CovertRate: 9000, Threshold: 20000, ErrPct: 0.5, TxPlane: 3, LocalPlane: -1, BenignPlane: -1, ThrottledPlane: -1}
	tr := e.Step(obs)
	if tr.BitPeriod != periods[1] || tr.FEC {
		t.Fatalf("round 0: period %d fec %v", tr.BitPeriod, tr.FEC)
	}
	tr = e.Step(obs)
	if tr.BitPeriod != periods[0] {
		t.Fatalf("after 2 clean rounds period %d, want faster rung %d", tr.BitPeriod, periods[0])
	}
	// Moderate errors: FEC turns on before the rate drops.
	obs.ErrPct = 15
	tr = e.Step(obs)
	if !tr.FEC || tr.BitPeriod != periods[0] {
		t.Fatalf("err 15%%: fec %v period %d, want FEC at same rate", tr.FEC, tr.BitPeriod)
	}
	// Broken channel: slow down and hop off the current plane.
	obs.ErrPct = 50
	tr = e.Step(obs)
	if tr.BitPeriod != periods[1] {
		t.Fatalf("err 50%%: period %d, want slower rung %d", tr.BitPeriod, periods[1])
	}
	if tr.TxPlane == obs.TxPlane || tr.TxPlane < 0 || tr.TxPlane >= 6 {
		t.Fatalf("err 50%%: hop landed on plane %d (was %d)", tr.TxPlane, obs.TxPlane)
	}
}

func TestAttackerHopsOnGoodputCollapse(t *testing.T) {
	e := newTestEngine(t, Config{Rounds: 4, Planes: 6}, 7)
	obs := Observation{ErrPct: 5, GoodputMBps: 10, TxPlane: 1, LocalPlane: -1, BenignPlane: -1, ThrottledPlane: -1}
	if tr := e.Step(obs); tr.TxPlane != 1 {
		t.Fatalf("hopped without cause to %d", tr.TxPlane)
	}
	obs.GoodputMBps = 2 // collapsed vs last round's 10
	if tr := e.Step(obs); tr.TxPlane == 1 {
		t.Fatal("goodput collapse did not trigger a hop")
	}
}

func TestEngineDeterminismAndReset(t *testing.T) {
	run := func() []RoundTrace {
		rng := xrand.New(99)
		e, err := New(Config{Rounds: 8, Planes: 6, Aggressiveness: 0.75}, rng)
		if err != nil {
			t.Fatal(err)
		}
		obs := Observation{CovertRate: 9000, Threshold: 2000, ErrPct: 30, TxPlane: 1, LocalPlane: 1, BenignPlane: 5, ThrottledPlane: -1}
		for i := 0; i < 8; i++ {
			tr := e.Step(obs)
			obs.TxPlane = tr.TxPlane
			if tr.Action == ActThrottlePlane {
				obs.ThrottledPlane = tr.ActPlane
			}
		}
		out := make([]RoundTrace, len(e.Trace()))
		copy(out, e.Trace())
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("identical seeds diverged")
	}

	// Reset rewinds in place without growing the trace backing array.
	rng := xrand.New(99)
	e, _ := New(Config{Rounds: 8, Planes: 6, Aggressiveness: 0.75}, rng)
	obs := Observation{CovertRate: 9000, Threshold: 2000, ErrPct: 30, TxPlane: 1, LocalPlane: 1, BenignPlane: 5, ThrottledPlane: -1}
	for i := 0; i < 8; i++ {
		e.Step(obs)
	}
	e.Reset()
	rng.Reseed(99)
	if len(e.Trace()) != 0 {
		t.Fatal("Reset left trace entries")
	}
	for i := 0; i < 8; i++ {
		tr := e.Step(obs)
		obs.TxPlane = tr.TxPlane
		if tr.Action == ActThrottlePlane {
			obs.ThrottledPlane = tr.ActPlane
		}
	}
	if !reflect.DeepEqual(e.Trace(), a) {
		t.Error("post-Reset replay diverged from fresh run")
	}
}

func TestStepDoesNotAllocate(t *testing.T) {
	e := newTestEngine(t, Config{Rounds: 64, Planes: 6, Aggressiveness: 0.75}, 11)
	obs := Observation{CovertRate: 9000, Threshold: 2000, ErrPct: 30, TxPlane: 1, LocalPlane: 1, BenignPlane: 5, ThrottledPlane: -1}
	i := 0
	allocs := testing.AllocsPerRun(256, func() {
		if i == 64 {
			e.Reset()
			i = 0
		}
		e.Step(obs)
		i++
	})
	if allocs != 0 {
		t.Errorf("Step allocated %.1f times per round", allocs)
	}
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Errorf("empty trace summarized to %+v", s)
	}
	trace := []RoundTrace{
		{Detected: true, GoodputMBps: 4, ErrPct: 2, Cost: 3},
		{Detected: true, FalsePos: true, GoodputMBps: 2, ErrPct: 50, Cost: 11},
		{GoodputMBps: 0, ErrPct: 50, Cost: 8},
		{GoodputMBps: 2, ErrPct: 10, Cost: 8},
	}
	s := Summarize(trace)
	want := Summary{Rounds: 4, DetectionRate: 0.5, FalsePosRate: 0.25, MeanGoodputMBps: 2, MeanErrPct: 28, DefenseCost: 30}
	if s != want {
		t.Errorf("Summarize = %+v, want %+v", s, want)
	}
}
