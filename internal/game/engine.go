// The decision core. Engine.Step is the round hot path the
// BenchmarkGameRound gate holds at zero allocations: both policies
// are inline value state, the trace is preallocated to the match
// length, and the returned RoundTrace is a value.
package game

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/xrand"
)

// Config shapes an engine.
type Config struct {
	// Rounds presizes the trace (and bounds nothing: Step past Rounds
	// still records, at the price of reallocation).
	Rounds int
	// Planes is the box's switch-plane count (0 = flat box).
	Planes int
	// Aggressiveness in [0,1] scales the defender's appetite for
	// standing measures; Static pins the Sec. VII baseline (observe
	// and threshold only, never act).
	Aggressiveness float64
	Static         bool
	// BitPeriod is the attacker's starting pulse period; 0 means the
	// channel default. It must be one of core.BitPeriods to move the
	// starting rung; otherwise the default rung is used.
	BitPeriod arch.Cycles
}

// Engine turns one Observation per round into a RoundTrace. It owns
// only policy state; actuator state lives with the caller's Controls.
type Engine struct {
	//spylint:allow resetcomplete construction-time constant; Reset replays the same config
	cfg Config
	//spylint:allow resetcomplete the caller owns the stream and reseeds it for replays
	rng   *xrand.Source
	def   defender
	atk   attacker
	trace []RoundTrace
}

// New builds an engine drawing all randomness from rng (the trial's
// stream — the engine never seeds itself).
func New(cfg Config, rng *xrand.Source) (*Engine, error) {
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("game: Rounds must be positive, got %d", cfg.Rounds)
	}
	if cfg.Planes < 0 {
		return nil, fmt.Errorf("game: negative plane count %d", cfg.Planes)
	}
	if cfg.Aggressiveness < 0 || cfg.Aggressiveness > 1 {
		return nil, fmt.Errorf("game: Aggressiveness %g outside [0,1]", cfg.Aggressiveness)
	}
	if rng == nil {
		return nil, fmt.Errorf("game: nil rng")
	}
	e := &Engine{cfg: cfg, rng: rng, trace: make([]RoundTrace, 0, cfg.Rounds)}
	e.Reset()
	return e, nil
}

// Reset rewinds the policies and empties the trace in place so a
// pooled engine can replay a match without reallocating. The rng is
// left alone; reseed it from outside for bit-identical replays.
func (e *Engine) Reset() {
	e.def = defender{aggr: e.cfg.Aggressiveness, static: e.cfg.Static}
	e.atk = newAttacker(e.cfg.BitPeriod)
	e.trace = e.trace[:0]
}

// Trace returns the rounds recorded so far (shared slice, valid until
// the next Reset).
func (e *Engine) Trace() []RoundTrace { return e.trace }

// Step consumes one round's observation, advances both policies, and
// records and returns the round. The defender and attacker both
// decide from the same observation — neither sees the other's move
// until the next round, which is what makes it a game.
//
//spylint:hotpath
func (e *Engine) Step(obs Observation) RoundTrace {
	detected := obs.CovertRate > obs.Threshold
	fp := obs.BenignRate > obs.Threshold

	act, actPlane, factor := e.def.decide(&obs, e.cfg.Planes, detected, fp)
	period, fec, txPlane := e.atk.adapt(e.rng, &obs, e.cfg.Planes)

	tr := RoundTrace{
		Round:       len(e.trace),
		Detected:    detected,
		FalsePos:    fp,
		Action:      act,
		ActPlane:    actPlane,
		Factor:      factor,
		Threshold:   obs.Threshold,
		Cost:        roundCost(&obs, act, actPlane),
		BitPeriod:   period,
		FEC:         fec,
		TxPlane:     txPlane,
		GoodputMBps: obs.GoodputMBps,
		ErrPct:      obs.ErrPct,
	}
	e.trace = append(e.trace, tr)
	return tr
}

// roundCost charges the action's one-shot cost plus the per-round tax
// of every measure standing after it.
func roundCost(obs *Observation, act Action, actPlane int) float64 {
	var cost float64
	switch act {
	case ActRaiseThreshold, ActLowerThreshold:
		cost = CostRetune
	case ActThrottlePlane:
		cost = CostThrottleSetup
	case ActRepinVictim:
		cost = CostReroute
	case ActPartition:
		cost = CostPartitionSetup
	}
	throttled := obs.ThrottledPlane
	if act == ActThrottlePlane {
		throttled = actPlane
	}
	benign := obs.BenignPlane
	if act == ActRepinVictim {
		benign = actPlane
	}
	if throttled >= 0 {
		cost += CostThrottleRound
		if benign == throttled {
			cost += CostCollateralRound
		}
	}
	if obs.Partitioned || act == ActPartition {
		cost += CostPartitionRound
	}
	return cost
}
