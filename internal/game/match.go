// The sim driver: Play runs a full match on one simulated machine.
// Each round is two Machine.Run windows — the covert transmission
// under the defense sampler, then a benign baseline (a local victim
// plus a paced peer-to-peer stream between two uninvolved GPUs) under
// a fresh sampler — followed by one Engine.Step and the actuation of
// both sides' moves through mitigate.Controls and the channel's live
// reconfiguration hooks.
package game

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/core"
	"spybox/internal/cudart"
	"spybox/internal/mitigate"
	"spybox/internal/nvlink"
	"spybox/internal/sim"
	"spybox/internal/victim"
	"spybox/internal/xrand"
)

// MatchConfig shapes a match. The zero value is not usable; Rounds,
// Threshold, and the engine knobs must be set, the rest defaults.
type MatchConfig struct {
	Rounds int
	// ChunkBytes is the payload transmitted per round.
	ChunkBytes int
	// Interval is the sampler subwindow length.
	Interval arch.Cycles
	// Threshold seeds the defender's detection boundary (txns/Mcycle).
	Threshold float64
	// Aggressiveness and Static configure the defender policy.
	Aggressiveness float64
	Static         bool

	// SamplerGPU hosts the defense sampler; VictimGPU a local compute
	// victim; BenignA->BenignB is the benign peer-to-peer stream whose
	// sustained rate is the false-positive baseline.
	SamplerGPU       arch.DeviceID
	VictimGPU        arch.DeviceID
	BenignA, BenignB arch.DeviceID

	// Benign stream pacing: BenignIters chunks of BenignLines lines,
	// each followed by BenignPause cycles of compute, sized so the
	// stream's sustained rate sits in the same decade as the
	// detection thresholds the sweep visits.
	BenignIters int
	BenignLines int
	BenignPause arch.Cycles
}

func (c *MatchConfig) setDefaults() {
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 8
	}
	if c.Interval == 0 {
		c.Interval = 50_000
	}
	if c.SamplerGPU == 0 {
		c.SamplerGPU = 7
	}
	if c.VictimGPU == 0 {
		c.VictimGPU = 4
	}
	if c.BenignA == 0 && c.BenignB == 0 {
		c.BenignA, c.BenignB = 2, 3
	}
	if c.BenignIters == 0 {
		c.BenignIters = 12
	}
	if c.BenignLines == 0 {
		c.BenignLines = 64
	}
	if c.BenignPause == 0 {
		c.BenignPause = 40_000
	}
}

// MatchResult is a finished match.
type MatchResult struct {
	Trace   []RoundTrace
	Summary Summary
	// FinalThreshold is where the defender's boundary ended up.
	FinalThreshold float64
}

// Play runs a match over an established channel on m. All randomness
// (payloads, process seeds, hop targets) comes from rng; a match is a
// pure function of (machine state, channel, cfg, rng state).
func Play(m *sim.Machine, ch *core.Channel, cfg MatchConfig, rng *xrand.Source) (*MatchResult, error) {
	cfg.setDefaults()
	if rng == nil {
		return nil, fmt.Errorf("game: Play needs an rng")
	}
	topo := m.Topology()
	planes := topo.NumPlanes()
	suspect := ch.Trojan.Proc.Device()
	ctrl, err := mitigate.NewControls(m, suspect, cfg.Threshold)
	if err != nil {
		return nil, err
	}
	eng, err := New(Config{
		Rounds:         cfg.Rounds,
		Planes:         planes,
		Aggressiveness: cfg.Aggressiveness,
		Static:         cfg.Static,
		BitPeriod:      ch.Cfg.BitPeriod,
	}, rng)
	if err != nil {
		return nil, err
	}

	fec := false
	repinned := false
	msg := make([]byte, cfg.ChunkBytes)
	for round := 0; round < cfg.Rounds; round++ {
		for i := range msg {
			msg[i] = byte(rng.Uint64())
		}

		// Covert window: transmit under the sampler's eye.
		cov := mitigate.NewSampler(topo, cfg.Interval)
		covSeed := rng.Uint64()
		hook := func(stop *bool) error {
			return cov.Launch(m, cfg.SamplerGPU, covSeed, func() bool { return *stop })
		}
		var raw *core.Transmission
		var okBytes int
		if fec {
			recovered, _, rawTx, terr := ch.TransmitReliableWith(msg, hook)
			if terr != nil {
				return nil, terr
			}
			raw, okBytes = rawTx, matchingBytes(msg, recovered)
		} else {
			rawTx, terr := ch.TransmitWith(msg, hook)
			if terr != nil {
				return nil, terr
			}
			raw, okBytes = rawTx, matchingBytes(msg, core.BitsToBytes(rawTx.ReceivedBits))
		}
		localPlane := -1
		if planes > 0 {
			localPlane, _ = cov.LocalizePlane(ctrl.Threshold())
		}

		// Benign window: the false-positive baseline.
		benRate, err := benignWindow(m, topo, &cfg, rng)
		if err != nil {
			return nil, err
		}

		throttledPlane, throttleFactor := ctrl.ThrottledPlane()
		obs := Observation{
			CovertRate:     cov.MedianMaxLinkRate(),
			LocalPlane:     localPlane,
			BenignRate:     benRate,
			BenignPlane:    topo.PlaneFor(cfg.BenignA, cfg.BenignB),
			Threshold:      ctrl.Threshold(),
			ThrottledPlane: throttledPlane,
			ThrottleFactor: throttleFactor,
			Partitioned:    ctrl.Partitioned(),
			VictimRepinned: repinned,
			TxPlane:        ch.Plane(),
			GoodputMBps:    goodputMBps(okBytes, raw),
			ErrPct:         100 * raw.ErrorRate(),
		}
		tr := eng.Step(obs)

		// Actuate the defender's move...
		switch tr.Action {
		case ActRaiseThreshold:
			ctrl.ScaleThreshold(1.5)
		case ActLowerThreshold:
			ctrl.ScaleThreshold(0.75)
		case ActThrottlePlane:
			err = ctrl.ThrottlePlane(tr.ActPlane, tr.Factor)
		case ActRepinVictim:
			err = ctrl.RepinPair(cfg.BenignA, cfg.BenignB, tr.ActPlane)
			repinned = err == nil
		case ActPartition:
			err = ctrl.SetPartition(true)
		}
		if err != nil {
			return nil, err
		}
		// ...and the attacker's.
		if tr.BitPeriod != ch.Cfg.BitPeriod {
			if err := ch.Reconfigure(core.CovertConfig{BitPeriod: tr.BitPeriod, GuardFrac: ch.Cfg.GuardFrac}); err != nil {
				return nil, err
			}
		}
		if planes > 0 && tr.TxPlane != obs.TxPlane {
			if err := ch.SetPlane(tr.TxPlane); err != nil {
				return nil, err
			}
		}
		fec = tr.FEC
	}

	trace := eng.Trace()
	return &MatchResult{
		Trace:          trace,
		Summary:        Summarize(trace),
		FinalThreshold: ctrl.Threshold(),
	}, nil
}

// benignWindow runs the baseline workloads under a fresh sampler and
// returns its median busiest-link rate.
func benignWindow(m *sim.Machine, topo *nvlink.Topology, cfg *MatchConfig, rng *xrand.Source) (float64, error) {
	ben := mitigate.NewSampler(topo, cfg.Interval)
	streamDone, victDone := false, false
	vict := victim.NewVectorAdd(m, cfg.VictimGPU, rng.Uint64(),
		victim.Config{ArrayKB: 256, Passes: 3, ChunkDelay: 1500})
	bp, err := cudart.NewProcess(m, cfg.BenignA, rng.Uint64())
	if err != nil {
		return 0, err
	}
	if err := bp.EnablePeerAccess(cfg.BenignB); err != nil {
		return 0, err
	}
	buf, err := bp.MallocOnDevice(cfg.BenignB, uint64(cfg.BenignLines*m.LineSize()))
	if err != nil {
		return 0, err
	}
	if err := ben.Launch(m, cfg.SamplerGPU, rng.Uint64(), func() bool { return streamDone }); err != nil {
		return 0, err
	}
	pauseOps := int(cfg.BenignPause / arch.LatHeavyOp)
	if err := bp.Launch("benign-stream", 0, func(k *cudart.Kernel) {
		defer func() { streamDone = true }()
		for it := 0; it < cfg.BenignIters; it++ {
			k.Stream(buf, cfg.BenignLines, m.LineSize())
			k.BusyHeavy(pauseOps)
			k.Yield()
		}
	}); err != nil {
		return 0, err
	}
	if err := vict.Launch(&victDone); err != nil {
		return 0, err
	}
	m.Run()
	return ben.MedianMaxLinkRate(), nil
}

// matchingBytes counts positions where got reproduces want.
func matchingBytes(want, got []byte) int {
	n := 0
	for i := range want {
		if i < len(got) && got[i] == want[i] {
			n++
		}
	}
	return n
}

// goodputMBps converts correctly delivered payload bytes over the
// transmission's duration to MB/s of simulated time.
func goodputMBps(okBytes int, raw *core.Transmission) float64 {
	if raw.Duration == 0 {
		return 0
	}
	hz := raw.ClockHz
	if hz == 0 {
		hz = arch.ClockHz
	}
	return float64(okBytes) / 1e6 / (float64(raw.Duration) / float64(hz))
}
