// Package game is the closed-loop attacker-vs-defense arms race the
// paper's Sec. VII only gestures at. A round-based engine interleaves
// covert transmission epochs with defense observation windows on one
// simulated machine: each round the defender reads the NVLink
// sampler's statistics and picks one management action (retune the
// detection threshold, derate the suspect switch plane, re-pin the
// benign victim's route, partition the suspect L2), while the
// attacker reads its own error-rate/goodput feedback and retunes the
// channel (pulse rate, Hamming-FEC strength, plane hopping). Every
// action carries a cost, so sweeping defender aggressiveness yields
// the ROC-vs-goodput trade-off curves of the armsrace experiment.
//
// The package splits decision from actuation: Engine (engine.go) is
// the pure, allocation-free decision core that turns one round's
// Observation into a RoundTrace, and Match (match.go) drives a real
// simulated machine around it. All randomness comes from the caller's
// xrand stream, so matches are bit-identical at any -parallel.
package game

import (
	"spybox/internal/arch"
)

// Action is the defender's per-round move.
type Action uint8

const (
	// ActNone holds the current posture.
	ActNone Action = iota
	// ActRaiseThreshold backs the detection threshold off after a
	// false positive on the benign baseline.
	ActRaiseThreshold
	// ActLowerThreshold tightens the threshold after quiet rounds.
	ActLowerThreshold
	// ActThrottlePlane derates the switch plane the stream was
	// localized to.
	ActThrottlePlane
	// ActRepinVictim re-routes the benign pair off a derated plane.
	ActRepinVictim
	// ActPartition halves the suspect GPU's L2 associativity.
	ActPartition
)

// String names the action for traces and reports.
func (a Action) String() string {
	switch a {
	case ActNone:
		return "hold"
	case ActRaiseThreshold:
		return "raise-threshold"
	case ActLowerThreshold:
		return "lower-threshold"
	case ActThrottlePlane:
		return "throttle-plane"
	case ActRepinVictim:
		return "repin-victim"
	case ActPartition:
		return "partition-l2"
	default:
		return "action(?)"
	}
}

// Per-action and per-round defense costs, in abstract management
// units. One-shot costs model the reconfiguration itself; per-round
// costs model the performance tax a standing measure imposes on the
// box (a derated plane slows every tenant on it, a halved L2 slows
// the suspect GPU's benign work most of all).
const (
	// CostRetune is a threshold move (raise or lower).
	CostRetune = 1.0
	// CostReroute is a route-table reprogram (victim re-pin).
	CostReroute = 2.0
	// CostThrottleSetup is issuing a plane derating.
	CostThrottleSetup = 2.0
	// CostThrottleRound accrues every round a plane stays derated.
	CostThrottleRound = 3.0
	// CostCollateralRound accrues every round the benign pair rides a
	// derated plane — the collateral damage re-pinning removes.
	CostCollateralRound = 6.0
	// CostPartitionSetup is flipping the L2 partition on.
	CostPartitionSetup = 3.0
	// CostPartitionRound accrues every round the partition stays on.
	CostPartitionRound = 8.0
)

// Observation is everything both policies may see at the top of a
// round: the defense sampler's statistics from the covert and benign
// windows, the current actuator posture, and the attacker's own
// channel feedback. The engine holds no actuator state itself — the
// caller's Controls object is the single source of truth and is
// reflected back in here each round.
type Observation struct {
	// CovertRate is the median busiest-link rate (txns/Mcycle) the
	// sampler saw during the transmission window.
	CovertRate float64
	// LocalPlane is the switch plane the sampler localized the stream
	// to, -1 when unlocalized (flat box, hopping stream, quiet).
	LocalPlane int
	// BenignRate is the median busiest-link rate during the benign
	// baseline window; above-threshold values are false positives.
	BenignRate float64
	// BenignPlane is the plane the benign pair's route rides, -1
	// without a fabric.
	BenignPlane int

	// Threshold is the detection threshold in force this round.
	Threshold float64
	// ThrottledPlane is the currently derated plane (-1 none) and
	// ThrottleFactor its derating.
	ThrottledPlane int
	ThrottleFactor int
	// Partitioned reports whether the suspect L2 partition is on.
	Partitioned bool
	// VictimRepinned reports whether the benign pair was re-routed.
	VictimRepinned bool

	// TxPlane is the plane the attacker's route currently rides (-1 on
	// flat boxes); attacker-side knowledge, invisible to the defender.
	TxPlane int
	// GoodputMBps and ErrPct are the attacker's feedback from the
	// round's transmission: correctly delivered payload bandwidth and
	// the raw channel bit error rate.
	GoodputMBps float64
	// ErrPct is the raw (pre-FEC) channel bit error rate in percent.
	ErrPct float64
}

// RoundTrace is one row of the per-round trace: what was observed,
// what the defender did, and the attacker configuration going into
// the next round.
type RoundTrace struct {
	Round    int
	Detected bool // covert window cleared the threshold
	FalsePos bool // benign window cleared it too

	// Defender: the action taken, its plane operand (-1 when not
	// plane-shaped), the derating factor for ActThrottlePlane, the
	// threshold the round's decisions used (pre-action), and the
	// defense cost charged this round (action + standing measures).
	Action    Action
	ActPlane  int
	Factor    int
	Threshold float64
	Cost      float64

	// Attacker: the channel configuration chosen for the next round.
	BitPeriod arch.Cycles
	FEC       bool
	TxPlane   int

	// Channel feedback measured this round.
	GoodputMBps float64
	ErrPct      float64
}

// Summary aggregates a finished match.
type Summary struct {
	Rounds          int
	DetectionRate   float64 // fraction of rounds the covert window alarmed
	FalsePosRate    float64 // fraction of rounds the benign window alarmed
	MeanGoodputMBps float64
	MeanErrPct      float64
	DefenseCost     float64 // total cost over the match
}

// Summarize folds a trace into per-match statistics.
func Summarize(trace []RoundTrace) Summary {
	s := Summary{Rounds: len(trace)}
	if len(trace) == 0 {
		return s
	}
	for _, tr := range trace {
		if tr.Detected {
			s.DetectionRate++
		}
		if tr.FalsePos {
			s.FalsePosRate++
		}
		s.MeanGoodputMBps += tr.GoodputMBps
		s.MeanErrPct += tr.ErrPct
		s.DefenseCost += tr.Cost
	}
	n := float64(len(trace))
	s.DetectionRate /= n
	s.FalsePosRate /= n
	s.MeanGoodputMBps /= n
	s.MeanErrPct /= n
	return s
}
