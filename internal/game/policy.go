// The two policies. Both are small deterministic state machines —
// everything they may consume arrives in the round's Observation, and
// the only randomness (the attacker's hop target) comes from the
// engine's xrand stream.
package game

import (
	"spybox/internal/arch"
	"spybox/internal/core"
	"spybox/internal/xrand"
)

// Defender thresholds on aggressiveness: how eager the policy is to
// escalate from watching to derating to partitioning.
const (
	// aggrThrottle is the minimum aggressiveness to derate a
	// localized plane.
	aggrThrottle = 0.25
	// aggrPartition is the minimum aggressiveness to partition when
	// the stream cannot be throttled away (flat box or unlocalized).
	aggrPartition = 0.5
	// aggrPartitionFabric is the minimum aggressiveness to partition
	// even though plane throttling is available.
	aggrPartitionFabric = 0.9
	// aggrTighten is the minimum aggressiveness to lower the
	// threshold after quietRounds quiet rounds.
	aggrTighten = 0.5
	// quietRounds is how many consecutive quiet rounds precede a
	// threshold tightening.
	quietRounds = 2
)

// defender escalates standing measures while the stream persists and
// retunes the threshold against the benign baseline.
type defender struct {
	aggr   float64
	static bool
	quiet  int
}

// decide picks this round's action. The plane operand is -1 for
// non-plane actions; factor is only meaningful for ActThrottlePlane.
func (d *defender) decide(obs *Observation, planes int, detected, fp bool) (act Action, plane, factor int) {
	plane = -1
	if d.static {
		return ActNone, -1, 0
	}
	if detected || fp {
		d.quiet = 0
	}
	if detected {
		// Partition when throttling cannot reach the stream — flat
		// box, or a fabric stream that would not localize (hopping) —
		// or when the policy is aggressive enough to stack measures.
		gate := aggrPartitionFabric
		if planes == 0 || obs.LocalPlane < 0 {
			gate = aggrPartition
		}
		if !obs.Partitioned && d.aggr >= gate {
			return ActPartition, -1, 0
		}
		if planes > 0 && obs.LocalPlane >= 0 && obs.LocalPlane != obs.ThrottledPlane && d.aggr >= aggrThrottle {
			return ActThrottlePlane, obs.LocalPlane, 2 + int(2*d.aggr)
		}
	}
	// A standing derating that punishes the benign pair gets fixed
	// whether or not this round alarmed.
	if planes > 0 && obs.ThrottledPlane >= 0 && obs.BenignPlane == obs.ThrottledPlane && !obs.VictimRepinned {
		return ActRepinVictim, pickRepinPlane(planes, obs.ThrottledPlane, obs.LocalPlane), 0
	}
	if detected {
		return ActNone, -1, 0
	}
	if fp {
		return ActRaiseThreshold, -1, 0
	}
	d.quiet++
	if d.quiet >= quietRounds && d.aggr >= aggrTighten {
		d.quiet = 0
		return ActLowerThreshold, -1, 0
	}
	return ActNone, -1, 0
}

// pickRepinPlane returns the lowest plane that is neither derated nor
// the one the stream was localized to — deterministic, so the
// defender needs no randomness.
func pickRepinPlane(planes, throttled, local int) int {
	for p := 0; p < planes; p++ {
		if p != throttled && p != local {
			return p
		}
	}
	return 0
}

// Attacker reaction thresholds on the raw channel bit error rate.
const (
	// errHopPct is the error rate past which the channel is broken
	// enough to slow down and hop planes.
	errHopPct = 25.0
	// errFECPct is the error rate past which FEC turns on.
	errFECPct = 10.0
	// errCleanPct is the error rate under which the channel counts as
	// clean; cleanRounds clean rounds in a row let the sender press
	// its rate back up.
	errCleanPct = 2.0
	cleanRounds = 2
	// goodputCollapse is the fraction of the previous round's goodput
	// under which the sender suspects a derated route and hops.
	goodputCollapse = 0.5
)

// attacker modulates the channel from its own feedback: pulse rate
// over the core.BitPeriods ladder, Hamming FEC on/off, and plane
// hopping on fabrics.
type attacker struct {
	periods     [4]arch.Cycles
	idx         int
	fec         bool
	clean       int
	lastGoodput float64
}

func newAttacker(start arch.Cycles) attacker {
	a := attacker{periods: core.BitPeriods(), idx: 1}
	if start > 0 {
		for i, p := range a.periods {
			if p == start {
				a.idx = i
			}
		}
	}
	return a
}

// adapt updates the attacker state from this round's feedback and
// returns the configuration for the next round. rng is only drawn
// from when a hop actually happens, so the stream's trajectory is a
// pure function of the observation sequence.
func (a *attacker) adapt(rng *xrand.Source, obs *Observation, planes int) (period arch.Cycles, fec bool, txPlane int) {
	hop := false
	switch {
	case obs.ErrPct > errHopPct:
		if a.idx < len(a.periods)-1 {
			a.idx++
		}
		hop = true
		a.clean = 0
	case obs.ErrPct > errFECPct:
		if !a.fec {
			a.fec = true
		} else if a.idx < len(a.periods)-1 {
			a.idx++
		}
		a.clean = 0
	case obs.ErrPct < errCleanPct:
		a.clean++
		if a.clean >= cleanRounds {
			if a.fec {
				a.fec = false
			} else if a.idx > 0 {
				a.idx--
			}
			a.clean = 0
		}
	default:
		a.clean = 0
	}
	if a.lastGoodput > 0 && obs.GoodputMBps < goodputCollapse*a.lastGoodput {
		hop = true
	}
	a.lastGoodput = obs.GoodputMBps

	txPlane = obs.TxPlane
	if hop && planes > 1 {
		next := rng.Intn(planes - 1)
		if obs.TxPlane >= 0 && next >= obs.TxPlane {
			next++
		}
		txPlane = next
	}
	return a.periods[a.idx], a.fec, txPlane
}
