package cudart

import (
	"testing"

	"spybox/internal/arch"
	"spybox/internal/sim"
)

func quietMachine(seed uint64) *sim.Machine {
	return sim.MustNewMachine(sim.Options{Seed: seed, NoiseOff: true})
}

func TestProcessLifecycle(t *testing.T) {
	m := quietMachine(1)
	p1 := MustNewProcess(m, 0, 100)
	p2 := MustNewProcess(m, 1, 200)
	if p1.PID() == p2.PID() {
		t.Error("PIDs collide")
	}
	if p1.Device() != 0 || p2.Device() != 1 {
		t.Error("device binding wrong")
	}
	if _, err := NewProcess(m, arch.DeviceID(99), 1); err == nil {
		t.Error("bad device accepted")
	}
}

func TestMallocHoming(t *testing.T) {
	m := quietMachine(2)
	p := MustNewProcess(m, 1, 7)
	local, err := p.Malloc(arch.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := p.Translate(local)
	if pa.HomeDevice() != 1 {
		t.Errorf("Malloc homed on %v, want GPU1", pa.HomeDevice())
	}
	remote, err := p.MallocOnDevice(0, arch.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	pa, _ = p.Translate(remote)
	if pa.HomeDevice() != 0 {
		t.Errorf("MallocOnDevice homed on %v, want GPU0", pa.HomeDevice())
	}
	if _, err := p.MallocOnDevice(arch.DeviceID(50), 1); err == nil {
		t.Error("MallocOnDevice on missing GPU accepted")
	}
}

func TestHostReadWrite(t *testing.T) {
	m := quietMachine(3)
	p := MustNewProcess(m, 0, 1)
	buf, _ := p.Malloc(4096)
	p.WriteU64(buf+16, 99)
	if got := p.ReadU64(buf + 16); got != 99 {
		t.Errorf("ReadU64 = %d", got)
	}
}

func TestKernelLdCGTimingAndData(t *testing.T) {
	m := quietMachine(4)
	p := MustNewProcess(m, 0, 2)
	buf, _ := p.Malloc(4096)
	p.WriteU64(buf, 0xabcdef)
	var v1, v2 uint64
	var lat1, lat2 arch.Cycles
	p.Launch("k", 0, func(k *Kernel) {
		v1, lat1 = k.LdCG(buf)
		v2, lat2 = k.LdCG(buf)
	})
	m.Run()
	if v1 != 0xabcdef || v2 != 0xabcdef {
		t.Errorf("loaded %#x/%#x", v1, v2)
	}
	if lat1 != arch.NomLocalMiss || lat2 != arch.NomLocalHit {
		t.Errorf("latencies %v/%v, want %v/%v", lat1, lat2, arch.NomLocalMiss, arch.NomLocalHit)
	}
}

func TestRemoteAllocationNeedsPeerAccess(t *testing.T) {
	m := quietMachine(5)
	spy := MustNewProcess(m, 1, 3)
	remoteBuf, _ := spy.MallocOnDevice(0, 4096)

	// Peer access to a non-NVLink-connected GPU fails like CUDA does.
	if err := spy.EnablePeerAccess(6); err == nil {
		t.Fatal("EnablePeerAccess(GPU6) from GPU1 should fail (no direct link)")
	}
	if err := spy.EnablePeerAccess(0); err != nil {
		t.Fatal(err)
	}
	var lat arch.Cycles
	spy.Launch("remote", 0, func(k *Kernel) {
		lat = k.TouchCG(remoteBuf)
	})
	m.Run()
	if lat != arch.NomRemoteMiss {
		t.Errorf("remote cold access = %v, want %v", lat, arch.NomRemoteMiss)
	}
}

func TestBuildPointerChase(t *testing.T) {
	m := quietMachine(6)
	p := MustNewProcess(m, 0, 4)
	buf, _ := p.Malloc(arch.PageSize)
	order := []int{0, 3, 1, 2}
	p.BuildPointerChase(buf, order, arch.CacheLineSize)

	// Chase through the buffer on-device and verify the traversal
	// visits elements in the intended order.
	var visited []uint64
	p.Launch("chase", 0, func(k *Kernel) {
		idx := uint64(order[0] * arch.CacheLineSize)
		for i := 0; i < len(order); i++ {
			visited = append(visited, idx)
			next, _ := k.LdCG(buf + arch.VA(idx))
			idx = next
		}
	})
	m.Run()
	want := []uint64{0, 3 * 128, 1 * 128, 2 * 128}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited[%d] = %d, want %d", i, visited[i], want[i])
		}
	}
}

func TestPointerChaseStrideValidation(t *testing.T) {
	m := quietMachine(7)
	p := MustNewProcess(m, 0, 5)
	buf, _ := p.Malloc(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("stride < 8 accepted")
		}
	}()
	p.BuildPointerChase(buf, []int{0, 1}, 4)
}

func TestStreamCrossesPages(t *testing.T) {
	// A stream spanning multiple (physically scattered) pages must
	// touch every line exactly once: miss count equals line count on
	// a cold cache.
	m := quietMachine(8)
	p := MustNewProcess(m, 0, 6)
	const pages = 3
	buf, _ := p.Malloc(pages * arch.PageSize)
	lines := pages * arch.LinesPerPage
	var misses int
	p.Launch("stream", 0, func(k *Kernel) {
		misses, _ = k.Stream(buf, lines, arch.CacheLineSize)
	})
	m.Run()
	if misses != lines {
		t.Errorf("cold cross-page stream misses = %d, want %d", misses, lines)
	}
}

func TestStreamDegenerateArgs(t *testing.T) {
	m := quietMachine(9)
	p := MustNewProcess(m, 0, 7)
	buf, _ := p.Malloc(4096)
	var misses int
	var total arch.Cycles
	p.Launch("degenerate", 0, func(k *Kernel) {
		misses, total = k.Stream(buf, 0, 128)
		if misses != 0 || total != 0 {
			t.Error("zero-count stream should be free")
		}
		// Zero stride defaults to line size.
		misses, total = k.Stream(buf, 4, 0)
	})
	m.Run()
	if misses != 4 {
		t.Errorf("default-stride stream misses = %d, want 4", misses)
	}
}

func TestProbeSetTranslatesAll(t *testing.T) {
	m := quietMachine(10)
	p := MustNewProcess(m, 0, 8)
	buf, _ := p.Malloc(arch.PageSize)
	vas := []arch.VA{buf, buf + 128, buf + 256}
	var lats []arch.Cycles
	p.Launch("probe", 0, func(k *Kernel) {
		lats, _ = k.ProbeSet(vas)
	})
	m.Run()
	if len(lats) != 3 {
		t.Fatalf("lats = %v", lats)
	}
}

func TestLaunchOnOtherDevice(t *testing.T) {
	m := quietMachine(11)
	p := MustNewProcess(m, 0, 9)
	var ran arch.DeviceID = -1
	if err := p.LaunchOn(4, "elsewhere", 0, func(k *Kernel) {
		ran = k.Device()
	}); err != nil {
		t.Fatal(err)
	}
	m.Run()
	if ran != 4 {
		t.Errorf("kernel ran on %v, want GPU4", ran)
	}
}
