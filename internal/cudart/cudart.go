// Package cudart is the CUDA-runtime-shaped user API over the
// simulator. Attack and victim code in this repository is written
// against this package the way the paper's code is written against
// CUDA 10: processes own contexts and virtual address spaces, memory
// is allocated on a chosen device, peer access must be enabled across
// NVLink before touching a remote GPU's memory, and kernels observe
// time through a per-block clock().
//
// A Process maps to one CUDA context owner. Allocating a buffer on a
// remote GPU does not create a context there — matching the paper's
// observation that trojan and spy keep separate contexts on their own
// GPUs while sharing only the home GPU's L2.
package cudart

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/sim"
	"spybox/internal/vmem"
	"spybox/internal/xrand"
)

// Process is one user process with a CUDA context on a specific GPU.
type Process struct {
	m     *sim.Machine
	pid   arch.ProcessID
	dev   arch.DeviceID
	space *vmem.Space
	rng   *xrand.Source
}

// NewProcess creates a process whose kernels run on dev. The seed
// determines this process's frame placement; the paper observes that
// placement is stable across runs for a fixed allocation size, which
// re-using a seed reproduces. Process IDs come from the machine
// (sim.Machine.AllocPID), so this package holds no cross-machine
// state and concurrent trials on separate machines never contend.
func NewProcess(m *sim.Machine, dev arch.DeviceID, seed uint64) (*Process, error) {
	if int(dev) >= m.NumGPUs() {
		return nil, fmt.Errorf("cudart: no such device %d", int(dev))
	}
	pid := m.AllocPID()
	rng := xrand.New(seed ^ 0x243f6a8885a308d3)
	return &Process{
		m:     m,
		pid:   pid,
		dev:   dev,
		space: vmem.NewSpaceFiltered(pid, m.Phys(), rng.Split(), m.FrameFilter(pid)),
		rng:   rng,
	}, nil
}

// MustNewProcess panics on error.
func MustNewProcess(m *sim.Machine, dev arch.DeviceID, seed uint64) *Process {
	p, err := NewProcess(m, dev, seed)
	if err != nil {
		panic(err)
	}
	return p
}

// PID returns the process ID.
func (p *Process) PID() arch.ProcessID { return p.pid }

// Device returns the GPU hosting this process's kernels.
func (p *Process) Device() arch.DeviceID { return p.dev }

// Machine returns the box the process runs on.
func (p *Process) Machine() *sim.Machine { return p.m }

// RNG returns the process-private random source.
func (p *Process) RNG() *xrand.Source { return p.rng }

// Malloc allocates size bytes homed on the process's own GPU.
func (p *Process) Malloc(size uint64) (arch.VA, error) {
	return p.space.Alloc(size, p.dev)
}

// MallocOnDevice allocates size bytes homed on GPU dev. This is the
// attack's key primitive: the spy allocates its buffer on the *victim
// trojan's* GPU so that the two processes contend in that GPU's L2.
// Like the real API, accessing it later requires peer access if dev
// differs from the process's GPU.
func (p *Process) MallocOnDevice(dev arch.DeviceID, size uint64) (arch.VA, error) {
	if int(dev) >= p.m.NumGPUs() {
		return 0, fmt.Errorf("cudart: no such device %d", int(dev))
	}
	return p.space.Alloc(size, dev)
}

// Free releases an allocation.
func (p *Process) Free(base arch.VA) error { return p.space.Free(base) }

// EnablePeerAccess makes memory homed on dev accessible from this
// process's GPU. It returns the NVLink-connectivity error the paper
// mentions when no direct link exists.
func (p *Process) EnablePeerAccess(dev arch.DeviceID) error {
	return p.m.EnablePeer(p.dev, dev)
}

// WriteU64 writes a word from the host side (cudaMemcpy H2D of one
// word); no simulated device time is charged.
func (p *Process) WriteU64(va arch.VA, v uint64) { p.space.WriteU64(va, v) }

// ReadU64 reads a word from the host side.
func (p *Process) ReadU64(va arch.VA) uint64 { return p.space.ReadU64(va) }

// Translate exposes VA->PA resolution. Real user space cannot do
// this; it exists for tests and for ground-truth instrumentation in
// experiments, never for attack logic (grep for callers to audit).
func (p *Process) Translate(va arch.VA) (arch.PA, error) { return p.space.Translate(va) }

// BuildPointerChase writes a pointer-chase permutation into the buffer
// at base: word i*stride holds the byte offset of element order[i+1],
// so a kernel can traverse elements in the given order with data-
// dependent loads, exactly like the paper's Algorithm 1 buffer. order
// values are element indices; stride is in bytes (>= 8).
func (p *Process) BuildPointerChase(base arch.VA, order []int, stride int) {
	if stride < 8 {
		panic("cudart: pointer chase stride must hold a word")
	}
	for i, el := range order {
		next := order[(i+1)%len(order)]
		p.WriteU64(base+arch.VA(el*stride), uint64(next*stride))
	}
}

// KernelFunc is the body of a simulated kernel thread block.
type KernelFunc func(*Kernel)

// Kernel is the device-side view a kernel body gets: timing, dummy
// work, and L1-bypassing loads through the process's address space.
type Kernel struct {
	w *sim.Worker
	p *Process

	// pas is ProbeSet's grow-only translation scratch; probes run per
	// monitoring epoch and must not allocate.
	pas []arch.PA
}

// Launch starts a kernel of one thread block on the process's GPU.
// sharedMemBytes takes part in SM occupancy (Sec. VI). The kernel
// runs when Machine.Run is called.
func (p *Process) Launch(name string, sharedMemBytes int, body KernelFunc) error {
	return p.LaunchOn(p.dev, name, sharedMemBytes, body)
}

// LaunchOn starts a kernel on an explicit device (a process can drive
// several GPUs, as the noise-mitigation study does).
func (p *Process) LaunchOn(dev arch.DeviceID, name string, sharedMemBytes int, body KernelFunc) error {
	_, err := p.m.Spawn(dev, fmt.Sprintf("pid%d/%s", p.pid, name), sharedMemBytes, func(w *sim.Worker) {
		body(&Kernel{w: w, p: p})
	})
	return err
}

// Process returns the owning process.
func (k *Kernel) Process() *Process { return k.p }

// Device returns the GPU the kernel runs on.
func (k *Kernel) Device() arch.DeviceID { return k.w.Device() }

// Clock reads the per-block cycle counter (CUDA clock()).
func (k *Kernel) Clock() arch.Cycles { return k.w.Clock() }

// Now returns current cycles without clock-read overhead.
func (k *Kernel) Now() arch.Cycles { return k.w.Now() }

// Busy executes n dummy ALU ops.
func (k *Kernel) Busy(n int) { k.w.Busy(n) }

// BusyHeavy executes n heavy (trigonometric) dummy ops.
func (k *Kernel) BusyHeavy(n int) { k.w.BusyHeavy(n) }

// SharedWrite buffers one value in shared memory.
func (k *Kernel) SharedWrite() { k.w.SharedWrite() }

// Yield parks for one scheduling slot.
func (k *Kernel) Yield() { k.w.Yield() }

// LdCG performs an L1-bypassing load of the word at va, returning the
// value and the measured latency. This is the paper's ldcg()
// primitive; all attack loads go through it so nothing pollutes L1.
func (k *Kernel) LdCG(va arch.VA) (uint64, arch.Cycles) {
	pa, err := k.p.space.Translate(va)
	if err != nil {
		panic(err)
	}
	return k.w.LoadCG(pa)
}

// LdCGHit is LdCG plus the ground-truth L2 hit flag — instrumentation
// only; attack logic classifies by latency like on real hardware.
func (k *Kernel) LdCGHit(va arch.VA) (uint64, arch.Cycles, bool) {
	pa, err := k.p.space.Translate(va)
	if err != nil {
		panic(err)
	}
	return k.w.LoadCGHit(pa)
}

// TouchCG moves va's line through the L2 without reading data.
func (k *Kernel) TouchCG(va arch.VA) arch.Cycles {
	pa, err := k.p.space.Translate(va)
	if err != nil {
		panic(err)
	}
	return k.w.TouchCG(pa)
}

// TouchCGHit is TouchCG plus the ground-truth L2 hit flag.
func (k *Kernel) TouchCGHit(va arch.VA) (arch.Cycles, bool) {
	pa, err := k.p.space.Translate(va)
	if err != nil {
		panic(err)
	}
	return k.w.TouchCGHit(pa)
}

// ProbeSet accesses all given addresses as one warp-parallel probe and
// returns per-line latencies plus the aggregate time. The latency
// slice is scratch owned by this kernel's worker — valid until the
// next probe; copy it out to retain it across probes.
//
//spylint:scratch
func (k *Kernel) ProbeSet(vas []arch.VA) (lats []arch.Cycles, total arch.Cycles) {
	lats, _, total = k.ProbeSetHits(vas)
	return lats, total
}

// ProbeSetHits is ProbeSet plus per-line ground-truth hit flags; both
// slices are worker-owned scratch with ProbeSet's lifetime rule.
//
//spylint:scratch
func (k *Kernel) ProbeSetHits(vas []arch.VA) (lats []arch.Cycles, hits []bool, total arch.Cycles) {
	if cap(k.pas) < len(vas) {
		k.pas = make([]arch.PA, len(vas))
	}
	pas := k.pas[:len(vas)]
	for i, va := range vas {
		pa, err := k.p.space.Translate(va)
		if err != nil {
			panic(err)
		}
		pas[i] = pa
	}
	return k.w.ProbeLinesHits(pas)
}

// Stream touches count lines from va with the given byte stride as a
// streaming access (one event). The range must stay within one
// allocation; it is split at page boundaries internally because pages
// are physically scattered.
func (k *Kernel) Stream(va arch.VA, count, stride int) (misses int, total arch.Cycles) {
	if count <= 0 {
		return 0, 0
	}
	if stride <= 0 {
		stride = k.p.m.LineSize()
	}
	// Split the virtual range into physically contiguous runs.
	i := 0
	for i < count {
		start := va + arch.VA(i*stride)
		pa, err := k.p.space.Translate(start)
		if err != nil {
			panic(err)
		}
		// How many strides stay within this page?
		remain := int((arch.PageSize - start.PageOffset() + uint64(stride) - 1) / uint64(stride))
		if remain > count-i {
			remain = count - i
		}
		m, t := k.w.StreamRange(pa, remain, stride)
		misses += m
		total += t
		i += remain
	}
	return misses, total
}

// space accessor for sibling packages in this module.
func (p *Process) Space() *vmem.Space { return p.space }
