// The defender's actuators. Sec. VII stops at detection; an online
// defense must also *act*. Controls bundles the management-plane
// levers a box operator actually holds — the detection threshold, the
// fabric manager's per-plane service rate and route table, and the
// suspect GPU's L2 partition — behind one object the game engine's
// Defender policy drives between rounds. Every lever is reversible
// and all underlying state is cleared by Machine.Reset, so pooled
// machines never leak a trial's defense posture.
package mitigate

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/sim"
)

// Controls is the defender's handle on one machine: a detection
// threshold plus the runtime throttle/route/partition levers.
type Controls struct {
	m       *sim.Machine
	suspect arch.DeviceID // GPU whose L2 hosts the suspected channel

	threshold float64 // txns/Mcycle, the Detect decision boundary
	floor     float64 // threshold never drops below this
	throttled int     // plane currently derated, -1 if none
	factor    int     // active derating factor
	part      bool    // suspect L2 partition active
}

// NewControls wires a control plane for m with the given starting
// detection threshold; suspect is the GPU whose L2 the partition
// lever targets (on the paper's channel, the trojan's home GPU).
func NewControls(m *sim.Machine, suspect arch.DeviceID, threshold float64) (*Controls, error) {
	if suspect < 0 || int(suspect) >= m.NumGPUs() {
		return nil, fmt.Errorf("mitigate: no device %v", suspect)
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("mitigate: threshold must be positive, got %g", threshold)
	}
	return &Controls{
		m: m, suspect: suspect,
		threshold: threshold,
		floor:     threshold / 8,
		throttled: -1,
	}, nil
}

// Threshold returns the current detection threshold in txns/Mcycle.
func (c *Controls) Threshold() float64 { return c.threshold }

// ScaleThreshold multiplies the detection threshold by factor,
// clamped to the floor (an eighth of the starting value, so a jumpy
// policy cannot tune itself into alarming on background noise).
func (c *Controls) ScaleThreshold(factor float64) {
	if factor <= 0 {
		return
	}
	c.threshold *= factor
	if c.threshold < c.floor {
		c.threshold = c.floor
	}
}

// ThrottlePlane derates one switch plane by factor, releasing any
// previously derated plane first (the fabric manager reprograms one
// plane at a time).
func (c *Controls) ThrottlePlane(plane, factor int) error {
	topo := c.m.Topology()
	if c.throttled >= 0 && c.throttled != plane {
		if err := topo.ThrottlePlane(c.throttled, 1); err != nil {
			return err
		}
		c.throttled = -1
	}
	if err := topo.ThrottlePlane(plane, factor); err != nil {
		return err
	}
	c.throttled, c.factor = plane, factor
	return nil
}

// Unthrottle restores full service on the derated plane, if any.
func (c *Controls) Unthrottle() error {
	if c.throttled < 0 {
		return nil
	}
	if err := c.m.Topology().ThrottlePlane(c.throttled, 1); err != nil {
		return err
	}
	c.throttled, c.factor = -1, 0
	return nil
}

// ThrottledPlane returns the derated plane and its factor, or (-1, 0).
func (c *Controls) ThrottledPlane() (plane, factor int) {
	if c.throttled < 0 {
		return -1, 0
	}
	return c.throttled, c.factor
}

// RepinPair re-routes the pair (a, b) onto the given plane — the
// defender moving a benign victim's traffic off a derated plane so
// the derating punishes only the suspect stream.
func (c *Controls) RepinPair(a, b arch.DeviceID, plane int) error {
	return c.m.Topology().PinPlane(a, b, plane)
}

// SetPartition toggles a half-associativity partition on the suspect
// GPU's L2. While on, eviction sets sized for the full associativity
// self-thrash (the spy's probes all miss), collapsing the channel
// without touching NVLink traffic — detection stays intact.
func (c *Controls) SetPartition(on bool) error {
	l2 := c.m.Device(c.suspect).L2()
	ways := 0
	if on {
		ways = l2.Config().Ways / 2
	}
	if err := l2.SetPartition(ways); err != nil {
		return err
	}
	c.part = on
	return nil
}

// Partitioned reports whether the suspect L2 partition is active.
func (c *Controls) Partitioned() bool { return c.part }
