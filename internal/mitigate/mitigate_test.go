package mitigate

import (
	"testing"

	"spybox/internal/arch"
	"spybox/internal/cudart"
	"spybox/internal/nvlink"
	"spybox/internal/sim"
)

func TestOccupyBlocksNoise(t *testing.T) {
	m := sim.MustNewMachine(sim.Options{Seed: 1, NoiseOff: true})
	stop := false
	b, err := Occupy(m, 0, 10, func() bool { return stop })
	if err != nil {
		t.Fatal(err)
	}
	// Two 32 KB blocks per SM saturate the 64 KB shared memory.
	if b.Placed != 2*arch.NumSMs {
		t.Errorf("placed %d blockers, want %d", b.Placed, 2*arch.NumSMs)
	}
	noise, err := NewNoise(m, 0, 11, 16, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	placed, err := noise.Launch(&stop)
	if err != nil {
		t.Fatal(err)
	}
	if placed != 0 {
		t.Errorf("%d noise blocks placed on a blocked GPU", placed)
	}
	stop = true
	m.Run()
}

func TestOccupyValidation(t *testing.T) {
	m := sim.MustNewMachine(sim.Options{Seed: 2, NoiseOff: true})
	if _, err := Occupy(m, 0, 1, nil); err == nil {
		t.Error("nil stop accepted")
	}
}

func TestNoiseRunsWithoutBlocking(t *testing.T) {
	m := sim.MustNewMachine(sim.Options{Seed: 3, NoiseOff: true})
	noise, err := NewNoise(m, 0, 4, 8, 8<<10)
	if err != nil {
		t.Fatal(err)
	}
	stop := false
	placed, err := noise.Launch(&stop)
	if err != nil || placed != 8 {
		t.Fatalf("placed %d of 8 (%v)", placed, err)
	}
	// Let the noise run briefly, then stop it via a peer kernel.
	p := cudart.MustNewProcess(m, 0, 5)
	p.Launch("stopper", 0, func(k *cudart.Kernel) {
		k.Busy(50000)
		stop = true
	})
	m.Run()
	h, miss, _ := m.Device(0).L2().Totals()
	if h+miss == 0 {
		t.Error("noise generated no cache traffic")
	}
}

func TestNoiseValidation(t *testing.T) {
	m := sim.MustNewMachine(sim.Options{Seed: 4, NoiseOff: true})
	if _, err := NewNoise(m, 0, 0, 0, 0); err == nil {
		t.Error("zero blocks accepted")
	}
}

func TestDetectorWindows(t *testing.T) {
	m := sim.MustNewMachine(sim.Options{Seed: 5, NoiseOff: true})
	if err := m.EnablePeer(1, 0); err != nil {
		t.Fatal(err)
	}
	det := NewDetector(m.Topology())
	// Quiet window.
	obs := det.Sample()
	if obs.TotalTxns != 0 {
		t.Errorf("quiet window has %d txns", obs.TotalTxns)
	}
	// Remote traffic window.
	p := cudart.MustNewProcess(m, 1, 6)
	p.EnablePeerAccess(0)
	buf, _ := p.MallocOnDevice(0, 64*1024)
	p.Launch("remote", 0, func(k *cudart.Kernel) {
		k.Stream(buf, 512, arch.CacheLineSize)
	})
	m.Run()
	obs = det.Sample()
	if obs.MaxLinkTxns != 512 {
		t.Errorf("busiest link saw %d txns, want 512", obs.MaxLinkTxns)
	}
	if obs.MaxLink != [2]arch.DeviceID{0, 1} {
		t.Errorf("busiest link %v, want 0-1", obs.MaxLink)
	}
	// Counters were consumed: next window is quiet again.
	if obs := det.Sample(); obs.TotalTxns != 0 {
		t.Errorf("window not reset: %d", obs.TotalTxns)
	}
}

// TestDetectorPlaneWindows covers the switch-plane view on a fabric
// box: per-plane deltas appear, land on the pair's pinned plane, and
// sum to the window total.
func TestDetectorPlaneWindows(t *testing.T) {
	prof := arch.V100DGX2()
	m := sim.MustNewMachine(sim.Options{Seed: 15, Profile: &prof, NoiseOff: true})
	det := NewDetector(m.Topology())
	if obs := det.Sample(); len(obs.PlaneTxns) != prof.Fabric.Planes {
		t.Fatalf("quiet window has %d plane slots, want %d", len(obs.PlaneTxns), prof.Fabric.Planes)
	}
	p := cudart.MustNewProcess(m, 1, 16)
	if err := p.EnablePeerAccess(0); err != nil {
		t.Fatal(err)
	}
	buf, err := p.MallocOnDevice(0, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	p.Launch("remote", 0, func(k *cudart.Kernel) {
		k.Stream(buf, 512, prof.L2LineSize)
	})
	m.Run()
	obs := det.Sample()
	plane := m.Topology().PlaneFor(1, 0)
	var sum uint64
	for i, v := range obs.PlaneTxns {
		sum += v
		if i != plane && v != 0 {
			t.Errorf("plane %d saw %d txns; all traffic belongs on plane %d", i, v, plane)
		}
	}
	if obs.PlaneTxns[plane] != 512 {
		t.Errorf("pinned plane saw %d txns, want 512", obs.PlaneTxns[plane])
	}
	if sum != obs.TotalTxns {
		t.Errorf("plane deltas sum to %d, window total is %d", sum, obs.TotalTxns)
	}
	// P100 boxes have no planes: Observation stays link-only.
	flat := sim.MustNewMachine(sim.Options{Seed: 17, NoiseOff: true})
	if obs := NewDetector(flat.Topology()).Sample(); obs.PlaneTxns != nil {
		t.Error("point-to-point box reported plane counters")
	}
}

// TestSamplerLocalizePlane drives sustained remote traffic on one
// plane and checks the localization verdict, then checks a quiet
// sampler refuses to localize.
func TestSamplerLocalizePlane(t *testing.T) {
	prof := arch.V100DGX2()
	m := sim.MustNewMachine(sim.Options{Seed: 18, Profile: &prof, NoiseOff: true})
	s := NewSampler(m.Topology(), 100_000)
	if plane, _ := s.LocalizePlane(100); plane != -1 {
		t.Error("empty sampler localized a plane")
	}
	done := false
	if err := s.Launch(m, 7, 19, func() bool { return done }); err != nil {
		t.Fatal(err)
	}
	p := cudart.MustNewProcess(m, 1, 20)
	if err := p.EnablePeerAccess(0); err != nil {
		t.Fatal(err)
	}
	buf, err := p.MallocOnDevice(0, 256*1024)
	if err != nil {
		t.Fatal(err)
	}
	p.Launch("probe-stream", 0, func(k *cudart.Kernel) {
		for i := 0; i < 40; i++ {
			k.Stream(buf, 512, prof.L2LineSize)
			k.Yield()
		}
		done = true
	})
	m.Run()
	want := m.Topology().PlaneFor(1, 0)
	plane, rate := s.LocalizePlane(100)
	if plane != want {
		t.Fatalf("localized plane %d (rate %.0f), want %d; medians %v",
			plane, rate, want, s.PlaneMedianRates())
	}
	if rate <= 100 {
		t.Errorf("localized rate %.0f did not clear the threshold", rate)
	}
}

func TestRateAndDetect(t *testing.T) {
	if got := RatePerMCycle(500, 1_000_000); got != 500 {
		t.Errorf("rate = %v", got)
	}
	if RatePerMCycle(500, 0) != 0 {
		t.Error("zero window should give zero rate")
	}
	obs := Observation{MaxLinkTxns: 10_000}
	if !Detect(obs, 1_000_000, 400) {
		t.Error("high rate not detected")
	}
	if Detect(Observation{MaxLinkTxns: 10}, 1_000_000, 400) {
		t.Error("low rate detected")
	}
}

func TestSamplerMedianVsPeak(t *testing.T) {
	m := sim.MustNewMachine(sim.Options{Seed: 7, NoiseOff: true})
	s := NewSampler(m.Topology(), 100_000)
	if s.MedianMaxLinkRate() != 0 || s.PeakMaxLinkRate() != 0 {
		t.Error("empty sampler should report zero rates")
	}
	// A one-shot remote burst while the sampler watches several
	// windows: peak high, median low.
	burstDone := false
	if err := s.Launch(m, 7, 8, func() bool { return burstDone }); err != nil {
		t.Fatal(err)
	}
	p := cudart.MustNewProcess(m, 1, 9)
	p.EnablePeerAccess(0)
	buf, _ := p.MallocOnDevice(0, 256*1024)
	p.Launch("burst", 0, func(k *cudart.Kernel) {
		k.Stream(buf, 2048, arch.CacheLineSize) // the burst
		k.BusyHeavy(20_000)                     // then long quiet
		k.Yield()                               // surface the elapsed time before flagging
		burstDone = true
	})
	m.Run()
	if len(s.Windows()) < 3 {
		t.Fatalf("only %d windows", len(s.Windows()))
	}
	if s.PeakMaxLinkRate() <= s.MedianMaxLinkRate() {
		t.Errorf("burst: peak %.0f should exceed median %.0f",
			s.PeakMaxLinkRate(), s.MedianMaxLinkRate())
	}
	if s.MedianMaxLinkRate() > 1000 {
		t.Errorf("median %.0f too high for a one-shot burst", s.MedianMaxLinkRate())
	}
}

// TestSampleMaxLinkTieBreaksDeterministically pins the Sample fold's
// tie-break: when two links carry identical deltas, MaxLink must name
// the smaller (A, B) pair regardless of map iteration order.
func TestSampleMaxLinkTieBreaksDeterministically(t *testing.T) {
	topo, err := nvlink.NewCustom(4, [][2]arch.DeviceID{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		det := NewDetector(topo)
		for _, l := range topo.Links() {
			if (l.A == 1 && l.B == 2) || (l.A == 2 && l.B == 3) {
				l.Transactions += 100 // two equally busy links
			}
		}
		obs := det.Sample()
		if obs.MaxLinkTxns != 100 {
			t.Fatalf("MaxLinkTxns = %d, want 100", obs.MaxLinkTxns)
		}
		if want := ([2]arch.DeviceID{1, 2}); obs.MaxLink != want {
			t.Fatalf("trial %d: MaxLink = %v, want %v (smaller pair on tie)", trial, obs.MaxLink, want)
		}
		if obs.TotalTxns != 200 {
			t.Fatalf("TotalTxns = %d, want 200", obs.TotalTxns)
		}
	}
}
