// Package mitigate implements both sides of the paper's last two
// sections: the attacker's noise-mitigation technique (Sec. VI —
// occupancy blocking via the leftover scheduling policy) and the
// defender's detection proposal (Sec. VII — NVLink traffic
// monitoring).
package mitigate

import (
	"fmt"
	"sort"

	"spybox/internal/arch"
	"spybox/internal/cudart"
	"spybox/internal/nvlink"
	"spybox/internal/sim"
	"spybox/internal/xrand"
)

// Noise is a background application competing for the target GPU's
// L2: it streams over a private buffer, adding contention jitter to
// everything else on that cache. Each block asks for shared memory,
// which is what the occupancy blocker starves it of.
type Noise struct {
	Proc      *cudart.Process
	Blocks    int
	SharedMem int
	buf       arch.VA
	lines     int
}

// NewNoise builds a noise app on dev with the given per-block shared
// memory demand (a typical compute kernel uses a tile buffer; 8 KB is
// representative).
func NewNoise(m *sim.Machine, dev arch.DeviceID, seed uint64, blocks, sharedMem int) (*Noise, error) {
	if blocks <= 0 {
		return nil, fmt.Errorf("mitigate: blocks must be positive")
	}
	p, err := cudart.NewProcess(m, dev, seed)
	if err != nil {
		return nil, err
	}
	const bufKB = 256
	buf, err := p.Malloc(bufKB * 1024)
	if err != nil {
		return nil, err
	}
	return &Noise{Proc: p, Blocks: blocks, SharedMem: sharedMem, buf: buf, lines: bufKB * 1024 / arch.CacheLineSize}, nil
}

// Launch starts as many noise blocks as the GPU will accept and
// returns the count placed. Blocks rejected by the occupancy limit —
// the Sec. VI defense in action — are simply not resident, exactly
// the leftover-policy behaviour.
func (n *Noise) Launch(stop *bool) (placed int, err error) {
	rng := xrand.New(uint64(n.Blocks) * 0x9e37)
	for b := 0; b < n.Blocks; b++ {
		start := rng.Intn(n.lines)
		lerr := n.Proc.Launch(fmt.Sprintf("noise-%d", b), n.SharedMem, func(k *cudart.Kernel) {
			for stop == nil || !*stop {
				k.Stream(n.buf+arch.VA(start*arch.CacheLineSize), 32, arch.CacheLineSize)
				k.Busy(16)
				if stop == nil {
					return
				}
			}
		})
		if lerr == nil {
			placed++
		}
	}
	return placed, nil
}

// OccupancyBlocker holds the idle blocks that saturate a GPU's
// shared memory so no other shared-memory-using kernel can co-reside.
type OccupancyBlocker struct {
	Proc   *cudart.Process
	Placed int
}

// Occupy launches idle 32 KB-shared-memory thread blocks on dev until
// the GPU rejects placement, pinning all leftover shared memory. The
// blocks never touch global memory, so they add no cache noise — the
// property Sec. VI relies on. Each blocker spins until stop() reports
// true; callers typically wire stop to the covert channel's
// transmission-complete flag so the machine run can finish.
func Occupy(m *sim.Machine, dev arch.DeviceID, seed uint64, stop func() bool) (*OccupancyBlocker, error) {
	if stop == nil {
		return nil, fmt.Errorf("mitigate: Occupy requires a stop predicate")
	}
	p, err := cudart.NewProcess(m, dev, seed)
	if err != nil {
		return nil, err
	}
	b := &OccupancyBlocker{Proc: p}
	for {
		err := p.Launch(fmt.Sprintf("blocker-%d", b.Placed), arch.MaxSharedMemPerBlock, func(k *cudart.Kernel) {
			for !stop() {
				k.BusyHeavy(2048) // idle spin, no global memory traffic
				k.Yield()
			}
		})
		if err != nil {
			break // GPU saturated: mission accomplished
		}
		b.Placed++
	}
	if b.Placed == 0 {
		return nil, fmt.Errorf("mitigate: could not place any blocker on %v", dev)
	}
	return b, nil
}

// LinkSnapshot is a point-in-time copy of per-link transaction
// counters.
type LinkSnapshot map[[2]arch.DeviceID]uint64

// Detector watches NVLink traffic for the signature of a cross-GPU
// cache attack: a sustained stream of fine-grained (cache-line-sized)
// remote transactions on one link. Sec. VII proposes exactly this. On
// switch-based boxes it additionally tracks per-plane counters, which
// is what lets the defense say *which switch plane* a stream rides.
type Detector struct {
	topo       *nvlink.Topology
	prev       LinkSnapshot
	prevPlanes []uint64
}

// NewDetector starts watching the fabric from its current state.
func NewDetector(topo *nvlink.Topology) *Detector {
	d := &Detector{topo: topo}
	d.prev = d.snapshot()
	d.prevPlanes = d.planeSnapshot()
	return d
}

func (d *Detector) snapshot() LinkSnapshot {
	s := make(LinkSnapshot)
	for _, l := range d.topo.Links() {
		s[[2]arch.DeviceID{l.A, l.B}] = l.Transactions
	}
	return s
}

func (d *Detector) planeSnapshot() []uint64 {
	planes := d.topo.Planes()
	if len(planes) == 0 {
		return nil
	}
	s := make([]uint64, len(planes))
	for i, p := range planes {
		s[i] = p.Transactions
	}
	return s
}

// Observation summarizes one detection window.
type Observation struct {
	// MaxLinkTxns is the busiest link's transaction count this window.
	MaxLinkTxns uint64
	// MaxLink names the busiest link.
	MaxLink [2]arch.DeviceID
	// TotalTxns sums all links.
	TotalTxns uint64
	// PlaneTxns holds per-switch-plane transaction counts for the
	// window; nil on point-to-point boxes without a fabric.
	PlaneTxns []uint64
}

// Sample closes the current window and opens the next, returning the
// per-window traffic deltas.
func (d *Detector) Sample() Observation {
	cur := d.snapshot()
	var obs Observation
	// The fold is order-independent: the sum is commutative, and the
	// max tie-breaks on the smaller link pair so two equally busy
	// links always report the same MaxLink.
	//spylint:allow detrand order-independent fold: commutative sum, max with smallest-pair tie-break
	for k, v := range cur {
		delta := v - d.prev[k]
		obs.TotalTxns += delta
		tieButSmaller := delta == obs.MaxLinkTxns && delta > 0 &&
			(k[0] < obs.MaxLink[0] || (k[0] == obs.MaxLink[0] && k[1] < obs.MaxLink[1]))
		if delta > obs.MaxLinkTxns || tieButSmaller {
			obs.MaxLinkTxns = delta
			obs.MaxLink = k
		}
	}
	d.prev = cur
	if planes := d.planeSnapshot(); planes != nil {
		obs.PlaneTxns = make([]uint64, len(planes))
		for i, v := range planes {
			obs.PlaneTxns[i] = v - d.prevPlanes[i]
		}
		d.prevPlanes = planes
	}
	return obs
}

// Sampler periodically snapshots link counters from a monitor kernel
// while other workloads run, producing per-subwindow observations.
// Distinguishing sustained fine-grained probing (covert channel) from
// one-shot bulk transfers (benign peer traffic) requires exactly this
// time-resolved view: a burst lights up one subwindow, an attack
// lights up all of them.
type Sampler struct {
	det      *Detector
	interval arch.Cycles
	windows  []Observation
}

// NewSampler creates a sampler with the given subwindow length.
func NewSampler(topo *nvlink.Topology, interval arch.Cycles) *Sampler {
	return &Sampler{det: NewDetector(topo), interval: interval}
}

// Launch starts the sampling kernel on dev (an otherwise idle GPU —
// the defender owns the box). It snapshots every interval cycles
// until stop() reports true.
func (s *Sampler) Launch(m *sim.Machine, dev arch.DeviceID, seed uint64, stop func() bool) error {
	p, err := cudart.NewProcess(m, dev, seed)
	if err != nil {
		return err
	}
	ops := int(s.interval / arch.LatHeavyOp)
	return p.Launch("nvlink-sampler", 0, func(k *cudart.Kernel) {
		for !stop() {
			k.BusyHeavy(ops)
			k.Yield()
			s.windows = append(s.windows, s.det.Sample())
		}
	})
}

// Windows returns the recorded per-subwindow observations.
func (s *Sampler) Windows() []Observation { return s.windows }

// Interval returns the subwindow length.
func (s *Sampler) Interval() arch.Cycles { return s.interval }

// MedianMaxLinkRate returns the median per-subwindow busiest-link
// rate in transactions per Mcycle — the sustained-traffic statistic.
func (s *Sampler) MedianMaxLinkRate() float64 {
	if len(s.windows) == 0 {
		return 0
	}
	rates := make([]float64, len(s.windows))
	for i, w := range s.windows {
		rates[i] = RatePerMCycle(w.MaxLinkTxns, s.interval)
	}
	sort.Float64s(rates)
	return rates[len(rates)/2]
}

// PlaneMedianRates returns each switch plane's median per-subwindow
// rate in transactions per Mcycle, or nil when the sampled topology
// has no fabric (or no windows were recorded). The per-plane median is
// the localization statistic: a covert stream is pinned to one plane,
// so exactly that plane stays hot across subwindows.
func (s *Sampler) PlaneMedianRates() []float64 {
	if len(s.windows) == 0 || len(s.windows[0].PlaneTxns) == 0 {
		return nil
	}
	out := make([]float64, len(s.windows[0].PlaneTxns))
	rates := make([]float64, len(s.windows))
	for p := range out {
		for i, w := range s.windows {
			rates[i] = RatePerMCycle(w.PlaneTxns[p], s.interval)
		}
		sort.Float64s(rates)
		out[p] = rates[len(rates)/2]
	}
	return out
}

// localizeDominance is how many times hotter than the runner-up plane
// the busiest plane must be before the stream counts as pinned there.
const localizeDominance = 4.0

// LocalizePlane names the switch plane a sustained stream is pinned
// to: the plane with the highest median subwindow rate, provided that
// rate clears the detection threshold and dominates every other plane
// by localizeDominance. Returns (-1, 0) when no plane qualifies (no
// fabric, no sustained stream, or traffic spread across planes).
func (s *Sampler) LocalizePlane(thresholdPerMCycle float64) (plane int, rate float64) {
	med := s.PlaneMedianRates()
	best, second := -1, 0.0
	for p, r := range med {
		if best < 0 || r > med[best] {
			if best >= 0 {
				second = med[best]
			}
			best = p
		} else if r > second {
			second = r
		}
	}
	if best < 0 || med[best] <= thresholdPerMCycle || med[best] < localizeDominance*second {
		return -1, 0
	}
	return best, med[best]
}

// PeakMaxLinkRate returns the highest subwindow rate (what a naive
// burst-sensitive detector would alarm on).
func (s *Sampler) PeakMaxLinkRate() float64 {
	peak := 0.0
	for _, w := range s.windows {
		if r := RatePerMCycle(w.MaxLinkTxns, s.interval); r > peak {
			peak = r
		}
	}
	return peak
}

// RatePerMCycle converts a transaction count over a window length to
// transactions per million cycles, the detector's decision statistic.
func RatePerMCycle(txns uint64, window arch.Cycles) float64 {
	if window == 0 {
		return 0
	}
	return float64(txns) / (float64(window) / 1e6)
}

// Detect applies a threshold to the busiest link's rate: covert
// channels probe remote sets thousands of times per millisecond,
// orders of magnitude above benign peer traffic, which moves data in
// coarse bursts.
func Detect(obs Observation, window arch.Cycles, thresholdPerMCycle float64) bool {
	return RatePerMCycle(obs.MaxLinkTxns, window) > thresholdPerMCycle
}
