package mitigate

import (
	"math"
	"reflect"
	"testing"

	"spybox/internal/arch"
	"spybox/internal/sim"
)

// The detector statistics were only exercised end to end through the
// sec7/armsrace experiments; these tables pin their edge behaviour
// directly: empty samplers, degenerate windows, single planes, ties.

func winPlanes(rates ...uint64) Observation {
	return Observation{PlaneTxns: rates}
}

func TestDetectTable(t *testing.T) {
	cases := []struct {
		name      string
		txns      uint64
		window    arch.Cycles
		threshold float64
		want      bool
	}{
		{"zero window never detects", 1 << 40, 0, 1, false},
		{"zero traffic under any threshold", 0, 1_000_000, 0.001, false},
		{"rate exactly at threshold is benign", 2000, 1_000_000, 2000, false},
		{"rate just above threshold alarms", 2001, 1_000_000, 2000, true},
		{"short window amplifies rate", 300, 100_000, 2000, true},
		{"long window dilutes the same count", 300, 10_000_000, 2000, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			obs := Observation{MaxLinkTxns: c.txns}
			if got := Detect(obs, c.window, c.threshold); got != c.want {
				t.Errorf("Detect(%d txns, %d cycles, thr %g) = %v, want %v",
					c.txns, c.window, c.threshold, got, c.want)
			}
		})
	}
}

func TestPlaneMedianRatesTable(t *testing.T) {
	const iv = 1_000_000 // 1 Mcycle: counts are rates verbatim
	cases := []struct {
		name    string
		windows []Observation
		want    []float64
	}{
		{"no windows", nil, nil},
		{"windows without a fabric", []Observation{{MaxLinkTxns: 9}}, nil},
		{"single plane single window", []Observation{winPlanes(70)}, []float64{70}},
		{
			"median picks the sustained rate over one burst",
			[]Observation{winPlanes(10), winPlanes(10), winPlanes(9000)},
			[]float64{10},
		},
		{
			"per-plane medians are independent",
			[]Observation{winPlanes(100, 1), winPlanes(300, 3), winPlanes(200, 2)},
			[]float64{200, 2},
		},
		{
			"tied rates keep the tie",
			[]Observation{winPlanes(50, 50), winPlanes(50, 50)},
			[]float64{50, 50},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := &Sampler{interval: iv, windows: c.windows}
			if got := s.PlaneMedianRates(); !reflect.DeepEqual(got, c.want) {
				t.Errorf("PlaneMedianRates() = %v, want %v", got, c.want)
			}
		})
	}
}

func TestLocalizePlaneTable(t *testing.T) {
	const iv = 1_000_000
	cases := []struct {
		name      string
		windows   []Observation
		threshold float64
		wantPlane int
		wantRate  float64
	}{
		{"no windows", nil, 1, -1, 0},
		{"no fabric", []Observation{{MaxLinkTxns: 9000}}, 1, -1, 0},
		{"single hot plane localizes", []Observation{winPlanes(5000)}, 1000, 0, 5000},
		{"single plane below threshold stays unlocalized", []Observation{winPlanes(500)}, 1000, -1, 0},
		{"single plane exactly at threshold stays unlocalized", []Observation{winPlanes(1000)}, 1000, -1, 0},
		{
			"dominant plane localizes over quiet peers",
			[]Observation{winPlanes(100, 5000, 200)},
			1000, 1, 5000,
		},
		{
			"tied planes cannot be dominant",
			[]Observation{winPlanes(5000, 5000)},
			1000, -1, 0,
		},
		{
			"runner-up within the dominance ratio blocks localization",
			[]Observation{winPlanes(5000, 2000)},
			1000, -1, 0,
		},
		{
			"runner-up at exactly 1/4 still qualifies",
			[]Observation{winPlanes(8000, 2000)},
			1000, 0, 8000,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := &Sampler{interval: iv, windows: c.windows}
			plane, rate := s.LocalizePlane(c.threshold)
			if plane != c.wantPlane || math.Abs(rate-c.wantRate) > 1e-9 {
				t.Errorf("LocalizePlane(%g) = (%d, %g), want (%d, %g)",
					c.threshold, plane, rate, c.wantPlane, c.wantRate)
			}
		})
	}
}

func TestControls(t *testing.T) {
	prof := arch.V100DGX2()
	m := sim.MustNewMachine(sim.Options{Seed: 40, Profile: &prof, NoiseOff: true})
	if _, err := NewControls(m, 99, 2000); err == nil {
		t.Error("out-of-range suspect accepted")
	}
	if _, err := NewControls(m, 0, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	c, err := NewControls(m, 0, 2000)
	if err != nil {
		t.Fatal(err)
	}

	// The threshold scales but never drops through its floor.
	c.ScaleThreshold(2)
	if c.Threshold() != 4000 {
		t.Errorf("threshold = %g, want 4000", c.Threshold())
	}
	for i := 0; i < 20; i++ {
		c.ScaleThreshold(0.5)
	}
	if c.Threshold() != 2000.0/8 {
		t.Errorf("threshold = %g, want floor %g", c.Threshold(), 2000.0/8)
	}

	// Throttling plane 3 then plane 1 releases plane 3.
	if err := c.ThrottlePlane(3, 4); err != nil {
		t.Fatal(err)
	}
	if m.Topology().PlaneThrottle(3) != 4 {
		t.Error("plane 3 not derated")
	}
	if err := c.ThrottlePlane(1, 2); err != nil {
		t.Fatal(err)
	}
	if m.Topology().PlaneThrottle(3) != 1 || m.Topology().PlaneThrottle(1) != 2 {
		t.Errorf("throttles: plane3=%d plane1=%d, want 1 and 2",
			m.Topology().PlaneThrottle(3), m.Topology().PlaneThrottle(1))
	}
	if plane, factor := c.ThrottledPlane(); plane != 1 || factor != 2 {
		t.Errorf("ThrottledPlane() = (%d, %d), want (1, 2)", plane, factor)
	}
	if err := c.Unthrottle(); err != nil {
		t.Fatal(err)
	}
	if m.Topology().PlaneThrottle(1) != 1 {
		t.Error("Unthrottle left plane 1 derated")
	}

	// The partition halves the suspect's L2 associativity and is
	// reversible; Machine.Reset clears it wholesale.
	if err := c.SetPartition(true); err != nil {
		t.Fatal(err)
	}
	l2 := m.Device(0).L2()
	if !c.Partitioned() || l2.PartitionWays() != l2.Config().Ways/2 {
		t.Errorf("partition ways = %d, want %d", l2.PartitionWays(), l2.Config().Ways/2)
	}
	if err := c.SetPartition(false); err != nil {
		t.Fatal(err)
	}
	if c.Partitioned() || l2.PartitionWays() != 0 {
		t.Error("partition not released")
	}
}

// TestResetClearsRuntimeLevers pins the pooling contract: a machine
// handed back with pins, throttles, and a partition active must be
// indistinguishable from fresh after Reset.
func TestResetClearsRuntimeLevers(t *testing.T) {
	prof := arch.V100DGX2()
	m := sim.MustNewMachine(sim.Options{Seed: 41, Profile: &prof, NoiseOff: true})
	topo := m.Topology()
	defRoute := topo.PlaneFor(1, 0)
	hop := (defRoute + 1) % topo.NumPlanes()
	if err := topo.PinPlane(1, 0, hop); err != nil {
		t.Fatal(err)
	}
	if topo.PlaneFor(1, 0) != hop || topo.PlaneFor(0, 1) != hop {
		t.Fatalf("pin not symmetric: %d/%d", topo.PlaneFor(1, 0), topo.PlaneFor(0, 1))
	}
	if err := topo.ThrottlePlane(2, 8); err != nil {
		t.Fatal(err)
	}
	if err := m.Device(0).L2().SetPartition(4); err != nil {
		t.Fatal(err)
	}
	m.Reset(41)
	if got := topo.PlaneFor(1, 0); got != defRoute {
		t.Errorf("route after Reset = %d, want default %d", got, defRoute)
	}
	if topo.PlaneThrottle(2) != 1 {
		t.Error("throttle survived Reset")
	}
	if m.Device(0).L2().PartitionWays() != 0 {
		t.Error("partition survived Reset")
	}
}
