// Package gpu assembles one GPU device of the simulated box: SMs with
// shared-memory and thread-block occupancy accounting, the L2 cache,
// and the HBM stack. SM count and resources come from the machine's
// architecture profile (56 SMs on the paper's P100). The occupancy
// model implements the "leftover policy" for GPU multiprogramming that
// Sec. VI exploits: thread blocks of the first kernel claim SM
// resources, and a second kernel's blocks co-reside only if shared
// memory and block slots remain.
package gpu

import (
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/hbm"
	"spybox/internal/l2cache"
	"spybox/internal/xrand"
)

// Config fixes one device's resources: its L2 geometry plus the SM
// occupancy parameters. The zero Config is invalid; use DefaultConfig
// for the P100 or FromProfile for another architecture.
type Config struct {
	Cache l2cache.Config

	NumSMs               int
	SharedMemPerSM       int
	MaxSharedMemPerBlock int
	MaxBlocksPerSM       int

	// HBMLat is the DRAM service latency charged per L2 fill.
	HBMLat arch.Cycles
}

// DefaultConfig returns the P100 device configuration.
func DefaultConfig() Config {
	return FromProfile(arch.P100DGX1())
}

// FromProfile builds the device configuration of an architecture
// profile.
func FromProfile(p arch.Profile) Config {
	return Config{
		Cache:                l2cache.FromProfile(p),
		NumSMs:               p.NumSMs,
		SharedMemPerSM:       p.SharedMemPerSM,
		MaxSharedMemPerBlock: p.MaxSharedMemPerBlock,
		MaxBlocksPerSM:       p.MaxBlocksPerSM,
		HBMLat:               p.Lat.HBM,
	}
}

// Validate reports a descriptive error for malformed configurations
// (the cache geometry validates separately in l2cache.New).
func (c Config) Validate() error {
	switch {
	case c.NumSMs < 1:
		return fmt.Errorf("gpu: NumSMs must be positive, got %d", c.NumSMs)
	case c.SharedMemPerSM < c.MaxSharedMemPerBlock || c.MaxSharedMemPerBlock < 1:
		return fmt.Errorf("gpu: shared memory %d/%d (per SM / max per block) inconsistent",
			c.SharedMemPerSM, c.MaxSharedMemPerBlock)
	case c.MaxBlocksPerSM < 1:
		return fmt.Errorf("gpu: MaxBlocksPerSM must be positive, got %d", c.MaxBlocksPerSM)
	}
	return nil
}

// SM tracks the occupancy-relevant resources of one streaming
// multiprocessor. Registers are folded into the block-slot limit.
type SM struct {
	SharedFree int // bytes of shared memory still available
	BlockSlots int // resident thread-block slots still available
}

// BlockReservation records a thread block's placement so it can be
// released when the kernel finishes.
type BlockReservation struct {
	dev       *Device
	sm        int
	sharedMem int
	released  bool
}

// SMIndex returns the SM the block was placed on.
func (r *BlockReservation) SMIndex() int { return r.sm }

// Release returns the block's resources to its SM. Releasing twice is
// a no-op.
func (r *BlockReservation) Release() {
	if r == nil || r.released {
		return
	}
	r.released = true
	sm := &r.dev.sms[r.sm]
	sm.SharedFree += r.sharedMem
	sm.BlockSlots++
}

// Device is one GPU in the box.
type Device struct {
	//spylint:allow resetcomplete identity is fixed at construction; Reset rewinds state, not wiring
	id arch.DeviceID
	//spylint:allow resetcomplete config is fixed at construction, identical across trials
	cfg Config
	l2  *l2cache.Cache
	mem *hbm.Stack
	sms []SM

	nextSM int // round-robin placement cursor
}

// New builds a device from its configuration. rng seeds the cache
// replacement policy when it is randomized.
func New(id arch.DeviceID, cfg Config, rng *xrand.Source) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l2, err := l2cache.New(cfg.Cache, rng)
	if err != nil {
		return nil, err
	}
	d := &Device{
		id:  id,
		cfg: cfg,
		l2:  l2,
		mem: hbm.NewSized(id, cfg.Cache.LineSize, cfg.HBMLat),
		sms: make([]SM, cfg.NumSMs),
	}
	for i := range d.sms {
		d.sms[i] = SM{SharedFree: cfg.SharedMemPerSM, BlockSlots: cfg.MaxBlocksPerSM}
	}
	return d, nil
}

// Reset restores the device to its freshly constructed state: L2
// flushed with its replacement RNG re-derived from parent (consuming
// one parent draw, exactly as New's rng argument does), HBM rewound,
// and every SM's occupancy refilled. Outstanding BlockReservations
// must have been released first.
func (d *Device) Reset(parent *xrand.Source) {
	d.l2.Reset(parent)
	d.mem.Reset()
	for i := range d.sms {
		d.sms[i] = SM{SharedFree: d.cfg.SharedMemPerSM, BlockSlots: d.cfg.MaxBlocksPerSM}
	}
	d.nextSM = 0
}

// ID returns the device's identity.
func (d *Device) ID() arch.DeviceID { return d.id }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// L2 returns the device's L2 cache.
func (d *Device) L2() *l2cache.Cache { return d.l2 }

// HBM returns the device's DRAM stack.
func (d *Device) HBM() *hbm.Stack { return d.mem }

// NumSMs returns the SM count.
func (d *Device) NumSMs() int { return len(d.sms) }

// PlaceBlock reserves one thread-block residency with the given
// shared-memory demand, following the leftover policy: the next SM in
// round-robin order with sufficient resources hosts the block. It
// fails when no SM can host it, which is exactly the condition the
// Sec. VI occupancy-blocking defense engineers on purpose.
func (d *Device) PlaceBlock(sharedMemBytes int) (*BlockReservation, error) {
	if sharedMemBytes < 0 || sharedMemBytes > d.cfg.MaxSharedMemPerBlock {
		return nil, fmt.Errorf("gpu: shared memory request %d outside [0,%d]",
			sharedMemBytes, d.cfg.MaxSharedMemPerBlock)
	}
	n := len(d.sms)
	for probe := 0; probe < n; probe++ {
		i := (d.nextSM + probe) % n
		sm := &d.sms[i]
		if sm.BlockSlots > 0 && sm.SharedFree >= sharedMemBytes {
			sm.BlockSlots--
			sm.SharedFree -= sharedMemBytes
			d.nextSM = (i + 1) % n
			return &BlockReservation{dev: d, sm: i, sharedMem: sharedMemBytes}, nil
		}
	}
	return nil, fmt.Errorf("gpu: %v: no SM can host a block needing %d B shared memory",
		d.id, sharedMemBytes)
}

// FreeSharedMem reports total unreserved shared memory across SMs.
func (d *Device) FreeSharedMem() int {
	t := 0
	for i := range d.sms {
		t += d.sms[i].SharedFree
	}
	return t
}

// ResidentBlocks reports how many thread blocks are currently placed.
func (d *Device) ResidentBlocks() int {
	t := 0
	for i := range d.sms {
		t += d.cfg.MaxBlocksPerSM - d.sms[i].BlockSlots
	}
	return t
}

// SMState returns a copy of SM occupancy (test and report helper).
func (d *Device) SMState() []SM {
	return append([]SM(nil), d.sms...)
}
