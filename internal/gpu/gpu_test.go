package gpu

import (
	"testing"

	"spybox/internal/arch"
)

func newDevice(t *testing.T) *Device {
	t.Helper()
	d, err := New(0, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeviceConstruction(t *testing.T) {
	d := newDevice(t)
	if d.ID() != 0 || d.NumSMs() != arch.NumSMs {
		t.Errorf("ID=%v SMs=%d", d.ID(), d.NumSMs())
	}
	if d.L2() == nil || d.HBM() == nil {
		t.Fatal("missing L2 or HBM")
	}
	if d.FreeSharedMem() != arch.NumSMs*arch.SharedMemPerSM {
		t.Errorf("FreeSharedMem = %d", d.FreeSharedMem())
	}
}

func TestPlaceBlockRoundRobin(t *testing.T) {
	d := newDevice(t)
	r1, err := d.PlaceBlock(1024)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := d.PlaceBlock(1024)
	if r1.SMIndex() == r2.SMIndex() {
		t.Error("consecutive blocks placed on same SM despite free SMs")
	}
	if d.ResidentBlocks() != 2 {
		t.Errorf("ResidentBlocks = %d", d.ResidentBlocks())
	}
	r1.Release()
	r2.Release()
	if d.ResidentBlocks() != 0 {
		t.Errorf("after release, ResidentBlocks = %d", d.ResidentBlocks())
	}
}

func TestReleaseIdempotent(t *testing.T) {
	d := newDevice(t)
	r, _ := d.PlaceBlock(2048)
	r.Release()
	r.Release() // must not double-credit
	if got := d.FreeSharedMem(); got != arch.NumSMs*arch.SharedMemPerSM {
		t.Errorf("FreeSharedMem = %d after double release", got)
	}
	var nilRes *BlockReservation
	nilRes.Release() // no panic
}

func TestPlaceBlockValidation(t *testing.T) {
	d := newDevice(t)
	if _, err := d.PlaceBlock(-1); err == nil {
		t.Error("negative shared memory accepted")
	}
	if _, err := d.PlaceBlock(arch.MaxSharedMemPerBlock + 1); err == nil {
		t.Error("over-limit shared memory accepted")
	}
}

func TestOccupancyBlocking(t *testing.T) {
	// The Sec. VI defense: two 32 KB blocks saturate each SM's 64 KB
	// of shared memory. After 2*NumSMs such blocks, a kernel that
	// needs any shared memory cannot be placed, but a zero-shared-mem
	// block still can (block slots remain).
	d := newDevice(t)
	var reservations []*BlockReservation
	for i := 0; i < 2*arch.NumSMs; i++ {
		r, err := d.PlaceBlock(arch.MaxSharedMemPerBlock)
		if err != nil {
			t.Fatalf("blocking block %d rejected: %v", i, err)
		}
		reservations = append(reservations, r)
	}
	if d.FreeSharedMem() != 0 {
		t.Fatalf("shared memory not saturated: %d free", d.FreeSharedMem())
	}
	if _, err := d.PlaceBlock(1); err == nil {
		t.Fatal("noise block needing shared memory was placed on a saturated GPU")
	}
	if _, err := d.PlaceBlock(0); err != nil {
		t.Fatalf("zero-shared-mem block should still fit: %v", err)
	}
	for _, r := range reservations {
		r.Release()
	}
	if _, err := d.PlaceBlock(1); err != nil {
		t.Fatalf("after release, placement failed: %v", err)
	}
}

func TestBlockSlotExhaustion(t *testing.T) {
	d := newDevice(t)
	total := arch.NumSMs * arch.MaxBlocksPerSM
	for i := 0; i < total; i++ {
		if _, err := d.PlaceBlock(0); err != nil {
			t.Fatalf("block %d/%d rejected: %v", i, total, err)
		}
	}
	if _, err := d.PlaceBlock(0); err == nil {
		t.Fatal("exceeded block-slot capacity without error")
	}
}

func TestSMStateCopy(t *testing.T) {
	d := newDevice(t)
	st := d.SMState()
	st[0].SharedFree = -1 // mutating the copy must not affect device
	if d.SMState()[0].SharedFree == -1 {
		t.Error("SMState returned shared slice")
	}
}
