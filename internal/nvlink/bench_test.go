package nvlink

import (
	"testing"

	"spybox/internal/arch"
)

// BenchmarkFabricTraversal compares the flat point-to-point hop charge
// against the two-stage switch fabric, uncontended and with four
// streams contending for one egress port. ns/op is the model's cost
// per remote transaction — the fabric may not make remote accesses
// meaningfully more expensive to simulate.
func BenchmarkFabricTraversal(b *testing.B) {
	b.Run("flat-hop", func(b *testing.B) {
		b.ReportAllocs()
		topo := DGX1()
		for i := 0; i < b.N; i++ {
			if _, err := topo.Traverse(0, 1, arch.CacheLineSize); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("two-stage", func(b *testing.B) {
		b.ReportAllocs()
		topo, err := FromProfile(arch.V100DGX2())
		if err != nil {
			b.Fatal(err)
		}
		hop := arch.V100DGX2().Lat.NVLinkHop
		now := arch.Cycles(0)
		for i := 0; i < b.N; i++ {
			if _, err := topo.Traverse(1, 0, arch.CacheLineSize); err != nil {
				b.Fatal(err)
			}
			topo.ReserveBurst(1, 0, 1, now)
			now += hop // uncontended cadence: the port always drains
		}
	})
	b.Run("two-stage-contended", func(b *testing.B) {
		b.ReportAllocs()
		topo, err := FromProfile(arch.V100DGX2())
		if err != nil {
			b.Fatal(err)
		}
		// Four sources share GPU0's plane-1 ingress port ((src+0) mod 6
		// == 1), arriving back to back: every burst exercises the
		// queue-wait path.
		srcs := []arch.DeviceID{1, 7, 13, 1}
		now := arch.Cycles(0)
		for i := 0; i < b.N; i++ {
			src := srcs[i%len(srcs)]
			if _, err := topo.Traverse(src, 0, arch.CacheLineSize); err != nil {
				b.Fatal(err)
			}
			topo.ReserveBurst(src, 0, 8, now)
			now++
		}
	})
}
