package nvlink

import (
	"errors"
	"testing"

	"spybox/internal/arch"
)

func TestDGX1Shape(t *testing.T) {
	topo := DGX1()
	if topo.NumGPUs() != 8 {
		t.Fatalf("NumGPUs = %d", topo.NumGPUs())
	}
	if got := len(topo.Links()); got != 16 {
		t.Fatalf("link count = %d, want 16", got)
	}
	// Every P100 has exactly 4 NVLinks.
	for d := arch.DeviceID(0); d < 8; d++ {
		if got := len(topo.Peers(d)); got != 4 {
			t.Errorf("%v has %d links, want 4", d, got)
		}
	}
}

func TestDGX1QuadAndCubeEdges(t *testing.T) {
	topo := DGX1()
	// Intra-quad: fully connected.
	for a := arch.DeviceID(0); a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if !topo.Connected(a, b) {
				t.Errorf("quad-0 pair %v-%v not connected", a, b)
			}
			if !topo.Connected(a+4, b+4) {
				t.Errorf("quad-1 pair %v-%v not connected", a+4, b+4)
			}
		}
	}
	// Cube edges i <-> i+4 only.
	for i := arch.DeviceID(0); i < 4; i++ {
		if !topo.Connected(i, i+4) {
			t.Errorf("cube edge %v-%v missing", i, i+4)
		}
	}
	// Cross pairs like 0-5 are NOT directly connected: this is what
	// forces the paper's single-hop peer-access constraint.
	for _, pair := range [][2]arch.DeviceID{{0, 5}, {0, 6}, {0, 7}, {1, 4}, {2, 7}, {3, 6}} {
		if topo.Connected(pair[0], pair[1]) {
			t.Errorf("%v-%v should not be directly linked", pair[0], pair[1])
		}
	}
}

func TestConnectedEdgeCases(t *testing.T) {
	topo := DGX1()
	if topo.Connected(0, 0) {
		t.Error("device connected to itself")
	}
	if topo.Connected(-1, 0) || topo.Connected(0, 99) {
		t.Error("out-of-range devices reported connected")
	}
}

func TestTraverse(t *testing.T) {
	topo := DGX1()
	lat, err := topo.Traverse(0, 1, arch.CacheLineSize)
	if err != nil {
		t.Fatalf("Traverse(0,1): %v", err)
	}
	if lat != arch.LatNVLinkHop {
		t.Errorf("hop latency = %v, want %v", lat, arch.LatNVLinkHop)
	}
	l := topo.LinkBetween(0, 1)
	if l.Transactions != 1 || l.Bytes != arch.CacheLineSize {
		t.Errorf("link counters = (%d,%d)", l.Transactions, l.Bytes)
	}
	// Non-connected pair errors, like the CUDA runtime.
	if _, err := topo.Traverse(0, 5, 128); err == nil {
		t.Fatal("Traverse(0,5) should fail: not directly linked")
	}
}

// TestTraverseNotConnectedSentinel pins the error contract of the
// unconnected-pair path: a matchable sentinel, not a fresh formatted
// error. Traverse sits on the simulator's hot path (Machine.service
// probes it per remote access), so the failure branch must not
// allocate either — a per-call fmt.Errorf here would show up in the
// 0-allocs benchmarks only on topologies that actually take it.
func TestTraverseNotConnectedSentinel(t *testing.T) {
	topo := DGX1()
	_, err := topo.Traverse(0, 5, 128)
	if !errors.Is(err, ErrNotConnected) {
		t.Fatalf("Traverse(0,5) error = %v, want ErrNotConnected", err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := topo.Traverse(0, 5, 128); err == nil {
			t.Fatal("Traverse(0,5) should fail")
		}
	}); allocs != 0 {
		t.Errorf("Traverse error path allocates %.0f times per call, want 0", allocs)
	}
}

func TestResetStatsAndTotals(t *testing.T) {
	topo := DGX1()
	for i := 0; i < 5; i++ {
		topo.Traverse(2, 3, 128)
	}
	if got := topo.TotalTransactions(); got != 5 {
		t.Errorf("TotalTransactions = %d", got)
	}
	topo.ResetStats()
	if got := topo.TotalTransactions(); got != 0 {
		t.Errorf("after reset, TotalTransactions = %d", got)
	}
}

func TestNewCustomValidation(t *testing.T) {
	if _, err := NewCustom(0, nil); err == nil {
		t.Error("0 GPUs should fail")
	}
	if _, err := NewCustom(2, [][2]arch.DeviceID{{0, 0}}); err == nil {
		t.Error("self-link should fail")
	}
	if _, err := NewCustom(2, [][2]arch.DeviceID{{0, 3}}); err == nil {
		t.Error("out-of-range link should fail")
	}
	if _, err := NewCustom(3, [][2]arch.DeviceID{{0, 1}, {0, 1}}); err == nil {
		t.Error("duplicate link should fail")
	}
	topo, err := NewCustom(2, [][2]arch.DeviceID{{0, 1}})
	if err != nil {
		t.Fatalf("valid custom topology failed: %v", err)
	}
	if !topo.Connected(0, 1) || !topo.Connected(1, 0) {
		t.Error("custom link not symmetric")
	}
}

func TestDGX2AllToAll(t *testing.T) {
	topo := DGX2()
	if topo.NumGPUs() != 16 {
		t.Fatalf("DGX-2 has %d GPUs, want 16", topo.NumGPUs())
	}
	if got, want := len(topo.Links()), 16*15/2; got != want {
		t.Fatalf("DGX-2 crossbar has %d links, want %d", got, want)
	}
	for a := 0; a < 16; a++ {
		for b := 0; b < 16; b++ {
			want := a != b
			if got := topo.Connected(arch.DeviceID(a), arch.DeviceID(b)); got != want {
				t.Errorf("Connected(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
		if peers := topo.Peers(arch.DeviceID(a)); len(peers) != 15 {
			t.Errorf("GPU%d has %d peers, want 15", a, len(peers))
		}
	}
	// Devices beyond the box (valid IDs on larger boxes) are not here.
	if topo.Connected(0, 16) || topo.Connected(16, 0) {
		t.Error("out-of-box device reported connected")
	}
}

func TestCustomTopologyBeyondEightGPUs(t *testing.T) {
	// A 12-GPU ring: legal now that the adjacency is profile-sized
	// (the old fixed [8][8] array rejected any box over 8 GPUs).
	var pairs [][2]arch.DeviceID
	for i := 0; i < 12; i++ {
		pairs = append(pairs, [2]arch.DeviceID{arch.DeviceID(i), arch.DeviceID((i + 1) % 12)})
	}
	topo, err := NewCustom(12, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if !topo.Connected(11, 0) || topo.Connected(0, 2) {
		t.Error("ring adjacency wrong")
	}
	if _, err := NewCustom(arch.MaxGPUs+1, nil); err == nil {
		t.Error("GPU count beyond MaxGPUs accepted")
	}
}

func TestFromProfileTopologies(t *testing.T) {
	cases := []struct {
		prof      arch.Profile
		wantLinks int
	}{
		{arch.P100DGX1(), 16},
		{arch.V100DGX2(), 16 * 15 / 2},
		{arch.A100Class(), 8 * 7 / 2},
	}
	for _, c := range cases {
		topo, err := FromProfile(c.prof)
		if err != nil {
			t.Fatalf("%s: %v", c.prof.Name, err)
		}
		if topo.NumGPUs() != c.prof.NumGPUs {
			t.Errorf("%s: %d GPUs, want %d", c.prof.Name, topo.NumGPUs(), c.prof.NumGPUs)
		}
		if len(topo.Links()) != c.wantLinks {
			t.Errorf("%s: %d links, want %d", c.prof.Name, len(topo.Links()), c.wantLinks)
		}
		if topo.HopLatency() != c.prof.Lat.NVLinkHop {
			t.Errorf("%s: hop latency %v, want %v", c.prof.Name, topo.HopLatency(), c.prof.Lat.NVLinkHop)
		}
		lat, err := topo.Traverse(0, 1, c.prof.L2LineSize)
		if err != nil || lat != c.prof.Lat.NVLinkHop {
			t.Errorf("%s: Traverse = %v, %v", c.prof.Name, lat, err)
		}
	}
	// A cube-mesh profile with the wrong GPU count must be rejected.
	bad := arch.P100DGX1()
	bad.NumGPUs = 4
	if _, err := FromProfile(bad); err == nil {
		t.Error("4-GPU cube-mesh accepted")
	}
}
