// Package nvlink models the NVLink fabric of a multi-GPU box: the
// link graph (the DGX-1's hybrid cube-mesh, an NVSwitch-style
// all-to-all crossbar, or any custom graph), per-link latency and
// traffic counters, and the peer-visibility rule the paper observes
// ("NVidia runtime API throws error if the GPUs are not connected via
// NVLink") — on NVLink-V1/CUDA 10, peer access requires a *direct*
// link. NVSwitch boxes make every pair "direct", which is exactly how
// the DGX-2 profile removes the unconnected-pair error class.
//
// The Sec. VII defense study consumes the per-link traffic counters:
// a covert channel shows up as a sustained fine-grained remote-access
// stream on one link.
package nvlink

import (
	"errors"
	"fmt"

	"spybox/internal/arch"
)

// ErrNotConnected reports a Traverse between GPUs with no direct
// NVLink. A sentinel rather than a fmt.Errorf so the connectivity
// check costs nothing on the sim hot path (hotalloc-vetted); the sim
// panics on it with its own context, so the pair's identity is never
// consumed from the message.
//
//spylint:allow detrand sentinel error, assigned once at init and never mutated
var ErrNotConnected = errors.New("nvlink: source and destination GPUs are not connected by NVLink")

// Link is one bidirectional NVLink connection between two GPUs.
type Link struct {
	A, B arch.DeviceID

	// Traffic accounting, split by direction (A->B and B->A) and by
	// request/response role is overkill for the attacks; total
	// transactions and bytes suffice for the detector.
	Transactions uint64
	Bytes        uint64
}

// Topology is the static link graph of the box plus its counters.
// Switch-based boxes additionally carry a two-stage fabric (fabric.go)
// with per-plane counters and per-port contention state.
type Topology struct {
	links   []*Link
	adj     [][]*Link // numGPUs x numGPUs
	numGPUs int
	hopLat  arch.Cycles // round-trip cost per traversal (flat path)
	fab     *fabric     // nil on point-to-point boxes
}

// newTopology allocates the adjacency for n GPUs with the default
// (P100-calibrated) hop latency.
func newTopology(n int) *Topology {
	t := &Topology{numGPUs: n, hopLat: arch.LatNVLinkHop, adj: make([][]*Link, n)}
	for i := range t.adj {
		t.adj[i] = make([]*Link, n)
	}
	return t
}

// DGX1 returns the NVLink-V1 hybrid cube-mesh of the Pascal DGX-1:
// GPUs {0,1,2,3} and {4,5,6,7} each form a fully connected quad, and
// the quads are joined by the four cube edges 0-4, 1-5, 2-6, 3-7.
// Each GPU has exactly four links, matching the P100.
func DGX1() *Topology {
	pairs := [][2]arch.DeviceID{
		// quad 0
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		// quad 1
		{4, 5}, {4, 6}, {4, 7}, {5, 6}, {5, 7}, {6, 7},
		// cube edges
		{0, 4}, {1, 5}, {2, 6}, {3, 7},
	}
	t := newTopology(arch.NumGPUs)
	for _, p := range pairs {
		t.addLink(p[0], p[1])
	}
	return t
}

// AllToAll returns an NVSwitch-style crossbar over n GPUs: every pair
// is one hop apart, so peer access never fails. Links are added in
// row-major (a < b) order so construction is deterministic.
func AllToAll(n int) (*Topology, error) {
	if n < 1 || n > arch.MaxGPUs {
		return nil, fmt.Errorf("nvlink: unsupported GPU count %d", n)
	}
	t := newTopology(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			t.addLink(arch.DeviceID(a), arch.DeviceID(b))
		}
	}
	return t, nil
}

// DGX2 returns the 16-GPU NVSwitch fabric of the Volta DGX-2 as the
// attacks see it: a full crossbar (the six physical switch planes are
// indistinguishable from user level — every pair is one hop).
func DGX2() *Topology {
	t, err := AllToAll(16)
	if err != nil {
		panic(err) // n=16 is always valid
	}
	return t
}

// FromProfile builds the link graph of an architecture profile and
// adopts the profile's hop latency.
func FromProfile(p arch.Profile) (*Topology, error) {
	var t *Topology
	switch p.Topology {
	case arch.TopoDGX1:
		if p.NumGPUs != arch.NumGPUs {
			return nil, fmt.Errorf("nvlink: the DGX-1 cube-mesh needs %d GPUs, profile %q has %d",
				arch.NumGPUs, p.Name, p.NumGPUs)
		}
		t = DGX1()
	case arch.TopoAllToAll:
		var err error
		t, err = AllToAll(p.NumGPUs)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("nvlink: profile %q has unknown topology kind %v", p.Name, p.Topology)
	}
	if p.Lat.NVLinkHop > 0 {
		t.hopLat = p.Lat.NVLinkHop
	}
	if p.Fabric.Enabled() {
		if p.Topology != arch.TopoAllToAll {
			return nil, fmt.Errorf("nvlink: profile %q: a switch-plane fabric requires an all-to-all topology", p.Name)
		}
		t.attachFabric(p.Fabric)
	}
	return t, nil
}

// NewCustom builds a topology over n GPUs with the given undirected
// links. Used by tests and by what-if experiments with other boxes.
func NewCustom(n int, pairs [][2]arch.DeviceID) (*Topology, error) {
	if n <= 0 || n > arch.MaxGPUs {
		return nil, fmt.Errorf("nvlink: unsupported GPU count %d", n)
	}
	t := newTopology(n)
	for _, p := range pairs {
		a, b := p[0], p[1]
		if int(a) >= n || int(b) >= n || a < 0 || b < 0 || a == b {
			return nil, fmt.Errorf("nvlink: bad link %v-%v", a, b)
		}
		if t.adj[a][b] != nil {
			return nil, fmt.Errorf("nvlink: duplicate link %v-%v", a, b)
		}
		t.addLink(a, b)
	}
	return t, nil
}

func (t *Topology) addLink(a, b arch.DeviceID) {
	l := &Link{A: a, B: b}
	t.links = append(t.links, l)
	t.adj[a][b] = l
	t.adj[b][a] = l
}

// NumGPUs returns the number of GPUs in the topology.
func (t *Topology) NumGPUs() int { return t.numGPUs }

// HopLatency returns the round-trip cost charged per traversal.
func (t *Topology) HopLatency() arch.Cycles { return t.hopLat }

// Connected reports whether a and b share a direct NVLink.
func (t *Topology) Connected(a, b arch.DeviceID) bool {
	if a == b || a < 0 || b < 0 || int(a) >= t.numGPUs || int(b) >= t.numGPUs {
		return false
	}
	return t.adj[a][b] != nil
}

// LinkBetween returns the direct link between a and b, or nil.
func (t *Topology) LinkBetween(a, b arch.DeviceID) *Link {
	if !t.Connected(a, b) {
		return nil
	}
	return t.adj[a][b]
}

// Peers returns the GPUs directly linked to dev, in ascending order.
func (t *Topology) Peers(dev arch.DeviceID) []arch.DeviceID {
	var out []arch.DeviceID
	for i := 0; i < t.numGPUs; i++ {
		if t.adj[dev][i] != nil {
			out = append(out, arch.DeviceID(i))
		}
	}
	return out
}

// Links returns all links (shared slice; callers must not mutate
// beyond the counter fields).
func (t *Topology) Links() []*Link { return t.links }

// Traverse charges one remote transaction of the given payload bytes
// to the direct link between src and dst and returns the round-trip
// latency contribution. It returns an error if no direct link exists;
// the runtime surfaces this exactly like the CUDA peer-access error
// the paper mentions.
//
// On a switch fabric the transaction is additionally charged to its
// pinned plane and the latency is the two-stage traversal (egress +
// switch + ingress). Port queueing is not charged here — callers
// account a whole burst at once through ReserveBurst, so per-line
// latencies stay clean for timing classification while the backlog
// surfaces on the event's total.
func (t *Topology) Traverse(src, dst arch.DeviceID, payload int) (arch.Cycles, error) {
	l := t.LinkBetween(src, dst)
	if l == nil {
		return 0, ErrNotConnected
	}
	l.Transactions++
	l.Bytes += uint64(payload)
	if t.fab != nil {
		p := t.fab.planes[t.PlaneFor(src, dst)]
		p.Transactions++
		p.Bytes += uint64(payload)
		return t.fab.cfg.TraversalLat(), nil
	}
	return t.hopLat, nil
}

// ResetStats zeroes every link's, plane's, and port's traffic
// counters. Port service-slot times are simulation clock state, not
// statistics, and are left alone.
func (t *Topology) ResetStats() {
	for _, l := range t.links {
		l.Transactions, l.Bytes = 0, 0
	}
	if t.fab != nil {
		for _, p := range t.fab.planes {
			p.Transactions, p.Bytes = 0, 0
		}
		for _, ports := range [][][]*Port{t.fab.egress, t.fab.ingress} {
			for _, row := range ports {
				for _, p := range row {
					p.Bursts, p.Queued, p.QueueCycles = 0, 0, 0
				}
			}
		}
	}
}

// TotalTransactions sums transactions over all links.
func (t *Topology) TotalTransactions() uint64 {
	var n uint64
	for _, l := range t.links {
		n += l.Transactions
	}
	return n
}
