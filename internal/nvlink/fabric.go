// The two-stage NVSwitch fabric: on switch-based boxes (DGX-2, DGX
// A100) a remote transaction does not ride a direct GPU-to-GPU wire —
// it leaves through the source GPU's egress port, crosses one of the
// physical switch planes, and arrives through the destination GPU's
// ingress port. Modeling the planes and ports buys two things the flat
// hop charge cannot express:
//
//  1. Localization: each ordered GPU pair is pinned to one plane
//     ((src+dst) mod planes, the fixed route an address-interleaved
//     switch assigns a pair), so per-plane traffic counters let the
//     Sec. VII detector say *which plane* a covert stream rides.
//  2. Contention: every port has a fixed number of service slots and a
//     per-transaction service time; co-scheduled streams sharing a
//     port queue FIFO, and the wait surfaces as extra latency — the
//     backpressure that deflates covert bandwidth on a busy fabric.
//
// Uncontended traversals cost EgressLat+SwitchLat+IngressLat, which
// the named profiles keep equal to the old flat NVLinkHop: the fabric
// moves no timing cluster, it only adds queueing and attribution.
// Point-to-point topologies (the P100 DGX-1) never build a fabric and
// keep the pre-fabric path byte for byte.
package nvlink

import (
	"fmt"

	"spybox/internal/arch"
)

// Plane is one physical switch plane with its traffic counters. The
// Sec. VII defense consumes these the way it consumes per-link
// counters: a covert stream shows up as one sustained hot plane.
type Plane struct {
	ID           int
	Transactions uint64
	Bytes        uint64
}

// Port is one GPU-side fabric port (egress or ingress) on one plane.
// slots holds the time each service slot frees up; bursts take the
// earliest slot and wait when none is free.
type Port struct {
	slots []arch.Cycles

	// Bursts counts reservations serviced; Queued counts those that
	// had to wait; QueueCycles accumulates the total wait. Together
	// they give the contention profile fabricsweep reports.
	Bursts      uint64
	Queued      uint64
	QueueCycles arch.Cycles
}

// reserve books hold cycles of port occupancy for a burst arriving at
// now and returns how long the burst waited for a free slot.
func (p *Port) reserve(now, hold arch.Cycles) arch.Cycles {
	best := 0
	for i, free := range p.slots {
		if free < p.slots[best] {
			best = i
		}
	}
	start := now
	var wait arch.Cycles
	if p.slots[best] > now {
		start = p.slots[best]
		wait = start - now
		p.Queued++
		p.QueueCycles += wait
	}
	p.slots[best] = start + hold
	p.Bursts++
	return wait
}

// fabric is the switch-plane stage state attached to an all-to-all
// topology built from a fabric-enabled profile.
type fabric struct {
	cfg     arch.FabricConfig
	planes  []*Plane
	egress  [][]*Port // [gpu][plane]
	ingress [][]*Port // [gpu][plane]

	// Runtime routing state, nil until first touched so the default
	// path stays byte-identical to a fabric without any overrides.
	// pin holds a per-ordered-pair plane override ([src*numGPUs+dst],
	// -1 = profile default route); throttle holds a per-plane service
	// multiplier (0 or 1 = full speed). Both express management
	// actions — an operator re-pinning a pair's route or derating one
	// plane's port service — and are cleared by ResetRouting.
	pin      []int
	throttle []int
}

// ensurePins lazily allocates the pair-override table.
func (t *Topology) ensurePins() []int {
	if t.fab.pin == nil {
		t.fab.pin = make([]int, t.numGPUs*t.numGPUs)
		for i := range t.fab.pin {
			t.fab.pin[i] = -1
		}
	}
	return t.fab.pin
}

// PinPlane routes the unordered pair (a, b) over the given switch
// plane instead of its profile-default route, modeling the fabric
// manager reprogramming a route table. A negative plane restores the
// default route for the pair. Both actors use it: the defender re-pins
// benign victim traffic off a derated plane, the attacker hops its
// covert stream between planes.
func (t *Topology) PinPlane(a, b arch.DeviceID, plane int) error {
	if t.fab == nil {
		return fmt.Errorf("nvlink: PinPlane needs a switch fabric")
	}
	if a == b || a < 0 || b < 0 || int(a) >= t.numGPUs || int(b) >= t.numGPUs {
		return fmt.Errorf("nvlink: PinPlane: bad pair %v-%v", a, b)
	}
	if plane >= len(t.fab.planes) {
		return fmt.Errorf("nvlink: PinPlane: plane %d out of range (have %d)", plane, len(t.fab.planes))
	}
	if plane < 0 {
		plane = -1
	}
	pin := t.ensurePins()
	pin[int(a)*t.numGPUs+int(b)] = plane
	pin[int(b)*t.numGPUs+int(a)] = plane
	return nil
}

// ThrottlePlane derates one switch plane: every port reservation on it
// holds its service slot factor times longer, modeling the fabric
// manager reducing the plane's service rate. Factor <= 1 restores full
// speed.
func (t *Topology) ThrottlePlane(plane, factor int) error {
	if t.fab == nil {
		return fmt.Errorf("nvlink: ThrottlePlane needs a switch fabric")
	}
	if plane < 0 || plane >= len(t.fab.planes) {
		return fmt.Errorf("nvlink: ThrottlePlane: plane %d out of range (have %d)", plane, len(t.fab.planes))
	}
	if t.fab.throttle == nil {
		t.fab.throttle = make([]int, len(t.fab.planes))
	}
	if factor < 1 {
		factor = 1
	}
	t.fab.throttle[plane] = factor
	return nil
}

// PlaneThrottle returns the service multiplier active on plane
// (1 = full speed, also for planes never throttled or no fabric).
func (t *Topology) PlaneThrottle(plane int) int {
	if t.fab == nil || t.fab.throttle == nil || plane < 0 || plane >= len(t.fab.throttle) {
		return 1
	}
	if f := t.fab.throttle[plane]; f > 1 {
		return f
	}
	return 1
}

// ResetRouting clears every runtime pin and throttle, restoring the
// profile-default routes and full-speed planes. Machine.Reset calls it
// so pooled machines never leak one trial's management actions into
// the next.
func (t *Topology) ResetRouting() {
	if t.fab == nil {
		return
	}
	t.fab.pin = nil
	t.fab.throttle = nil
}

// attachFabric builds plane and port state for the topology.
func (t *Topology) attachFabric(cfg arch.FabricConfig) {
	f := &fabric{cfg: cfg}
	for i := 0; i < cfg.Planes; i++ {
		f.planes = append(f.planes, &Plane{ID: i})
	}
	newPorts := func() [][]*Port {
		ports := make([][]*Port, t.numGPUs)
		for g := range ports {
			ports[g] = make([]*Port, cfg.Planes)
			for pl := range ports[g] {
				ports[g][pl] = &Port{slots: make([]arch.Cycles, cfg.PortSlots)}
			}
		}
		return ports
	}
	f.egress, f.ingress = newPorts(), newPorts()
	t.fab = f
}

// HasFabric reports whether the topology models switch planes.
func (t *Topology) HasFabric() bool { return t.fab != nil }

// NumPlanes returns the switch-plane count (0 without a fabric).
func (t *Topology) NumPlanes() int {
	if t.fab == nil {
		return 0
	}
	return len(t.fab.planes)
}

// PlaneFor returns the switch plane the ordered pair (src, dst) is
// pinned to, or -1 on point-to-point fabrics; the rule itself lives on
// arch.FabricConfig so experiments and the topology can never disagree.
// A runtime PinPlane override for the pair takes precedence over the
// profile-default route.
func (t *Topology) PlaneFor(src, dst arch.DeviceID) int {
	if t.fab == nil {
		return -1
	}
	if t.fab.pin != nil && src >= 0 && dst >= 0 && int(src) < t.numGPUs && int(dst) < t.numGPUs {
		if p := t.fab.pin[int(src)*t.numGPUs+int(dst)]; p >= 0 {
			return p
		}
	}
	return t.fab.cfg.PlaneFor(src, dst)
}

// Planes returns the switch planes (shared slice; callers must not
// mutate beyond reading counters). Nil without a fabric.
func (t *Topology) Planes() []*Plane {
	if t.fab == nil {
		return nil
	}
	return t.fab.planes
}

// EgressPort returns dev's egress port on the given plane (nil without
// a fabric). Exposed for contention tests and experiment reporting.
func (t *Topology) EgressPort(dev arch.DeviceID, plane int) *Port {
	if t.fab == nil {
		return nil
	}
	return t.fab.egress[dev][plane]
}

// IngressPort returns dev's ingress port on the given plane.
func (t *Topology) IngressPort(dev arch.DeviceID, plane int) *Port {
	if t.fab == nil {
		return nil
	}
	return t.fab.ingress[dev][plane]
}

// TotalPlaneTransactions sums transactions over all planes. On a
// fabric topology it equals TotalTransactions: every traversal is
// charged to exactly one plane.
func (t *Topology) TotalPlaneTransactions() uint64 {
	var n uint64
	if t.fab == nil {
		return 0
	}
	for _, p := range t.fab.planes {
		n += p.Transactions
	}
	return n
}

// ResetPortClocks zeroes every port's service-slot times without
// touching the traffic statistics. Worker clocks are per-kernel (each
// launched kernel starts at cycle 0), so slot times are only
// comparable between kernels of one Machine.Run; the machine calls
// this at the start of every run so a long-finished kernel's backlog
// cannot stall the next run's fresh kernels.
func (t *Topology) ResetPortClocks() {
	if t.fab == nil {
		return
	}
	for _, ports := range [][][]*Port{t.fab.egress, t.fab.ingress} {
		for _, row := range ports {
			for _, p := range row {
				for i := range p.slots {
					p.slots[i] = 0
				}
			}
		}
	}
}

// ReserveBurst books port occupancy for n line transactions from src
// to dst arriving at now, and returns the FIFO queue delay the burst
// suffered at the two ports. Zero on point-to-point topologies, local
// traffic, and empty bursts.
//
// A burst (one warp-parallel probe or one streaming event) occupies
// the source's egress port and then — after the egress and switch
// stages — the destination's ingress port, each for n*PortService
// cycles. The caller charges the returned wait on top of the per-
// transaction traversal latency from Traverse.
func (t *Topology) ReserveBurst(src, dst arch.DeviceID, n int, now arch.Cycles) arch.Cycles {
	if t.fab == nil || n <= 0 || src == dst {
		return 0
	}
	f := t.fab
	plane := t.PlaneFor(src, dst)
	hold := arch.Cycles(n) * f.cfg.PortService * arch.Cycles(t.PlaneThrottle(plane))
	egWait := f.egress[src][plane].reserve(now, hold)
	// The burst reaches the ingress port after clearing egress
	// (including its wait) and crossing the switch plane.
	inNow := now + egWait + f.cfg.EgressLat + f.cfg.SwitchLat
	inWait := f.ingress[dst][plane].reserve(inNow, hold)
	return egWait + inWait
}
