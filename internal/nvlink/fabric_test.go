package nvlink

import (
	"testing"

	"spybox/internal/arch"
)

// fabricTopo builds the DGX-2 profile's two-stage fabric topology.
func fabricTopo(t *testing.T) (*Topology, arch.Profile) {
	t.Helper()
	prof := arch.V100DGX2()
	topo, err := FromProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	return topo, prof
}

func TestFabricShape(t *testing.T) {
	topo, prof := fabricTopo(t)
	if !topo.HasFabric() {
		t.Fatal("v100-dgx2 topology has no fabric")
	}
	if got := topo.NumPlanes(); got != prof.Fabric.Planes {
		t.Errorf("NumPlanes = %d, want %d", got, prof.Fabric.Planes)
	}
	for src := arch.DeviceID(0); int(src) < prof.NumGPUs; src++ {
		for dst := arch.DeviceID(0); int(dst) < prof.NumGPUs; dst++ {
			p := topo.PlaneFor(src, dst)
			if p < 0 || p >= prof.Fabric.Planes {
				t.Fatalf("PlaneFor(%v,%v) = %d out of range", src, dst, p)
			}
			if q := topo.PlaneFor(dst, src); q != p {
				t.Errorf("plane pinning not symmetric: %v-%v on %d, reverse on %d", src, dst, p, q)
			}
		}
	}
	// Point-to-point boxes have no planes.
	flat := DGX1()
	if flat.HasFabric() || flat.NumPlanes() != 0 || flat.PlaneFor(0, 1) != -1 {
		t.Error("DGX-1 should have no switch fabric")
	}
	if flat.ReserveBurst(0, 1, 8, 100) != 0 {
		t.Error("flat topology charged a port queue delay")
	}
}

// TestFabricPortSerialization is the contention contract: concurrent
// bursts through one port serialize FIFO, with each burst's wait
// growing with the queue depth ahead of it; disjoint planes never
// interact; local traffic never touches a port.
func TestFabricPortSerialization(t *testing.T) {
	cases := []struct {
		name string
		// bursts arrive in order at the same cycle; each names its
		// endpoints and line count.
		bursts [][3]int // src, dst, n
		// wantWaits is the expected queue delay per burst, in units of
		// the profile's PortService (computed below).
		wantWaits []int // in transactions of backlog
	}{
		{
			name:      "three bursts one port serialize",
			bursts:    [][3]int{{1, 0, 4}, {1, 0, 4}, {1, 0, 4}},
			wantWaits: []int{0, 4, 8},
		},
		{
			name: "same plane, different ports, no interaction",
			// (1,0) and (7,6) both ride plane 1 on the DGX-2 pinning
			// ((src+dst) mod 6) but share no GPU-side port.
			bursts:    [][3]int{{1, 0, 4}, {7, 6, 4}},
			wantWaits: []int{0, 0},
		},
		{
			name: "disjoint planes do not interact",
			// (1,0) is plane 1; (2,3) is plane 5: different planes AND
			// different ports.
			bursts:    [][3]int{{1, 0, 8}, {2, 3, 8}, {1, 0, 8}},
			wantWaits: []int{0, 0, 8},
		},
		{
			name: "shared ingress port contends",
			// 1->0 and 13->0 both land on GPU0's plane-1 ingress port
			// ((13+0) mod 6 == 1); the second burst queues there even
			// though the egress ports differ.
			bursts:    [][3]int{{1, 0, 6}, {13, 0, 6}},
			wantWaits: []int{0, 6},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			topo, prof := fabricTopo(t)
			const now = arch.Cycles(1000)
			for i, b := range c.bursts {
				got := topo.ReserveBurst(arch.DeviceID(b[0]), arch.DeviceID(b[1]), b[2], now)
				want := arch.Cycles(c.wantWaits[i]) * prof.Fabric.PortService
				if got != want {
					t.Errorf("burst %d (%d->%d, n=%d): wait %d, want %d",
						i, b[0], b[1], b[2], got, want)
				}
			}
		})
	}
}

func TestFabricBurstEdgeCases(t *testing.T) {
	topo, _ := fabricTopo(t)
	if topo.ReserveBurst(0, 0, 8, 0) != 0 {
		t.Error("local burst charged a queue delay")
	}
	if topo.ReserveBurst(0, 1, 0, 0) != 0 {
		t.Error("empty burst charged a queue delay")
	}
	// A later arrival after the backlog drains waits nothing.
	topo.ReserveBurst(1, 0, 4, 0)
	free := arch.Cycles(4) * arch.V100DGX2().Fabric.PortService
	if got := topo.ReserveBurst(1, 0, 4, free); got != 0 {
		t.Errorf("burst arriving at drain time waited %d", got)
	}
}

// TestFabricPlaneCountersSumToTraversals pins the accounting
// invariant: every traversal lands on exactly one plane, so plane
// counters sum to the link totals.
func TestFabricPlaneCountersSumToTraversals(t *testing.T) {
	topo, prof := fabricTopo(t)
	pairs := [][2]arch.DeviceID{{0, 1}, {1, 0}, {2, 6}, {7, 3}, {15, 14}, {4, 4}}
	traversals := 0
	for i, p := range pairs {
		if p[0] == p[1] {
			continue // Traverse rejects self pairs; skip
		}
		for j := 0; j <= i; j++ {
			if _, err := topo.Traverse(p[0], p[1], prof.L2LineSize); err != nil {
				t.Fatal(err)
			}
			traversals++
		}
	}
	if got := topo.TotalTransactions(); got != uint64(traversals) {
		t.Errorf("link total %d, want %d", got, traversals)
	}
	if got := topo.TotalPlaneTransactions(); got != uint64(traversals) {
		t.Errorf("plane total %d, want %d (planes must sum to traversals)", got, traversals)
	}
	// The pinned plane carries exactly its pair's share.
	if got := topo.Planes()[topo.PlaneFor(0, 1)].Transactions; got != 3 {
		t.Errorf("plane for 0-1 carries %d txns, want 3 (1x 0->1 + 2x 1->0)", got)
	}
	topo.ResetStats()
	if topo.TotalPlaneTransactions() != 0 || topo.TotalTransactions() != 0 {
		t.Error("ResetStats left plane or link counters nonzero")
	}
}

// TestFabricTraversalLatency checks the two-stage split replaces the
// flat hop without moving the uncontended total.
func TestFabricTraversalLatency(t *testing.T) {
	topo, prof := fabricTopo(t)
	lat, err := topo.Traverse(0, 1, prof.L2LineSize)
	if err != nil {
		t.Fatal(err)
	}
	if want := prof.Fabric.TraversalLat(); lat != want {
		t.Errorf("two-stage traversal = %v, want egress+switch+ingress = %v", lat, want)
	}
	if lat != prof.Lat.NVLinkHop {
		t.Errorf("uncontended two-stage cost %v != flat NVLinkHop %v: timing clusters would move", lat, prof.Lat.NVLinkHop)
	}
}

// TestFabricPortStatsAndClockReset covers the port statistics the
// fabricsweep experiment reports and the per-run clock reset.
func TestFabricPortStatsAndClockReset(t *testing.T) {
	topo, prof := fabricTopo(t)
	plane := topo.PlaneFor(1, 0)
	topo.ReserveBurst(1, 0, 4, 0)
	topo.ReserveBurst(1, 0, 4, 0) // queues behind the first
	eg := topo.EgressPort(1, plane)
	if eg.Bursts != 2 || eg.Queued != 1 {
		t.Errorf("egress port stats: %d bursts, %d queued; want 2, 1", eg.Bursts, eg.Queued)
	}
	if eg.QueueCycles != 4*prof.Fabric.PortService {
		t.Errorf("queue cycles %d, want %d", eg.QueueCycles, 4*prof.Fabric.PortService)
	}
	in := topo.IngressPort(0, plane)
	if in.Bursts != 2 {
		t.Errorf("ingress port saw %d bursts, want 2", in.Bursts)
	}
	// ResetPortClocks clears backlog but keeps statistics: a fresh
	// kernel epoch starts with free ports.
	topo.ResetPortClocks()
	if got := topo.ReserveBurst(1, 0, 4, 0); got != 0 {
		t.Errorf("post-reset burst waited %d; stale backlog survived the run boundary", got)
	}
	if eg.Bursts != 3 || eg.Queued != 1 {
		t.Errorf("ResetPortClocks touched statistics: %d bursts, %d queued", eg.Bursts, eg.Queued)
	}
	topo.ResetStats()
	if eg.Bursts != 0 || eg.Queued != 0 || eg.QueueCycles != 0 {
		t.Error("ResetStats left port statistics nonzero")
	}
}
