// Synthetic MNIST-like digit data. The paper's MLP victim trains on
// MNIST; offline we generate a deterministic stand-in with the same
// shape (28x28 grayscale, 10 classes) that is genuinely learnable:
// each class has a fixed stroke prototype, and samples are noisy,
// shifted copies.
package victim

import (
	"spybox/internal/xrand"
)

// ImgSide is the digit image side length, matching MNIST.
const ImgSide = 28

// ImgPixels is the flattened image size (784), the MLP input width.
const ImgPixels = ImgSide * ImgSide

// Dataset is a labelled set of flattened digit images.
type Dataset struct {
	Images [][]float64 // each ImgPixels long, values in [0,1]
	Labels []int       // 0..9
}

// prototype renders the stroke skeleton for digit class d into a
// 28x28 grid. The shapes are crude seven-segment-style digits — more
// than enough structure for an MLP to separate.
func prototype(d int) []float64 {
	img := make([]float64, ImgPixels)
	seg := func(x0, y0, x1, y1 int) {
		steps := abs(x1-x0) + abs(y1-y0) + 1
		for s := 0; s <= steps; s++ {
			x := x0 + (x1-x0)*s/steps
			y := y0 + (y1-y0)*s/steps
			for dx := 0; dx < 2; dx++ {
				for dy := 0; dy < 2; dy++ {
					xx, yy := x+dx, y+dy
					if xx >= 0 && xx < ImgSide && yy >= 0 && yy < ImgSide {
						img[yy*ImgSide+xx] = 1
					}
				}
			}
		}
	}
	// Seven-segment layout: corners at (6,4) (20,4) (6,13) (20,13)
	// (6,22) (20,22).
	top := func() { seg(6, 4, 20, 4) }
	mid := func() { seg(6, 13, 20, 13) }
	bot := func() { seg(6, 22, 20, 22) }
	ul := func() { seg(6, 4, 6, 13) }
	ur := func() { seg(20, 4, 20, 13) }
	ll := func() { seg(6, 13, 6, 22) }
	lr := func() { seg(20, 13, 20, 22) }
	switch d {
	case 0:
		top()
		bot()
		ul()
		ur()
		ll()
		lr()
	case 1:
		ur()
		lr()
	case 2:
		top()
		ur()
		mid()
		ll()
		bot()
	case 3:
		top()
		ur()
		mid()
		lr()
		bot()
	case 4:
		ul()
		ur()
		mid()
		lr()
	case 5:
		top()
		ul()
		mid()
		lr()
		bot()
	case 6:
		top()
		ul()
		mid()
		ll()
		lr()
		bot()
	case 7:
		top()
		ur()
		lr()
	case 8:
		top()
		mid()
		bot()
		ul()
		ur()
		ll()
		lr()
	case 9:
		top()
		mid()
		bot()
		ul()
		ur()
		lr()
	}
	return img
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// SynthMNIST generates n deterministic labelled samples: prototypes
// jittered by up to +/-2 pixels of translation plus pixel noise.
func SynthMNIST(n int, rng *xrand.Source) *Dataset {
	ds := &Dataset{
		Images: make([][]float64, n),
		Labels: make([]int, n),
	}
	protos := make([][]float64, 10)
	for d := range protos {
		protos[d] = prototype(d)
	}
	for i := 0; i < n; i++ {
		d := rng.Intn(10)
		dx, dy := rng.Intn(5)-2, rng.Intn(5)-2
		img := make([]float64, ImgPixels)
		for y := 0; y < ImgSide; y++ {
			for x := 0; x < ImgSide; x++ {
				sx, sy := x-dx, y-dy
				if sx >= 0 && sx < ImgSide && sy >= 0 && sy < ImgSide {
					img[y*ImgSide+x] = protos[d][sy*ImgSide+sx]
				}
			}
		}
		for p := range img {
			img[p] += 0.15 * rng.Norm()
			if img[p] < 0 {
				img[p] = 0
			}
			if img[p] > 1 {
				img[p] = 1
			}
		}
		ds.Images[i] = img
		ds.Labels[i] = d
	}
	return ds
}
