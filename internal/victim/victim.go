// Package victim implements the workloads the paper spies on: the six
// CUDA-toolkit applications used for fingerprinting (Sec. V-A —
// vectoradd, histogram, blackscholes, matrix multiplication,
// quasirandom and Walsh transform) and the PyTorch-style MLP training
// victim (Sec. V-B).
//
// Each app is a real kernel against the cudart API whose address
// stream has the canonical structure of its namesake: streaming
// sweeps, hot lookup tables, tiled reuse, butterfly strides. Those
// structures — not the arithmetic — are what the memorygram captures,
// but the arithmetic is performed anyway (cheaply, host-side within
// the kernel body) so the workloads are genuine programs rather than
// synthetic tracers.
package victim

import (
	"fmt"
	"math"

	"spybox/internal/arch"
	"spybox/internal/cudart"
	"spybox/internal/sim"
	"spybox/internal/xrand"
)

// Config scales the fingerprinting workloads.
type Config struct {
	// ArrayKB is the main working-set array size in KiB per buffer.
	ArrayKB int
	// Passes is how many times the app sweeps its working set.
	Passes int
	// ChunkDelay is the per-chunk compute cost in ALU ops. Real
	// kernels interleave arithmetic with memory; for the side-channel
	// experiments it also sets the ratio between victim sweep period
	// and spy probe period, which is what gives each app its visible
	// temporal structure in the memorygram.
	ChunkDelay int
}

// DefaultConfig suits the side-channel experiments: working sets a
// few times larger than the spy's monitored region, runs long enough
// to span the monitoring window.
func DefaultConfig() Config { return Config{ArrayKB: 512, Passes: 6, ChunkDelay: 512} }

func (c Config) lines() int { return c.ArrayKB * 1024 / arch.CacheLineSize }

// App is one launchable victim application.
type App struct {
	Name string
	Proc *cudart.Process
	// Stop, if non-nil, is polled between passes: when *Stop is true
	// the app finishes early. Side-channel harnesses point it at the
	// monitor's done flag so victims don't outlive the measurement.
	Stop *bool
	body func(k *cudart.Kernel, stopped func() bool)
}

// stopped reports whether the app was asked to wind down.
func (a *App) stopped() bool { return a.Stop != nil && *a.Stop }

// Launch starts the app's kernel; when the kernel finishes it sets
// *done (the side-channel monitor polls it via StopEarly).
func (a *App) Launch(done *bool) error {
	return a.Proc.Launch(a.Name, 0, func(k *cudart.Kernel) {
		if done != nil {
			defer func() { *done = true }()
		}
		a.body(k, a.stopped)
	})
}

// mustMalloc allocates or panics; victims allocate at construction
// where errors indicate misconfiguration, not runtime conditions.
func mustMalloc(p *cudart.Process, size uint64) arch.VA {
	va, err := p.Malloc(size)
	if err != nil {
		panic(fmt.Sprintf("victim: %v", err))
	}
	return va
}

// NewVectorAdd builds the vectoradd victim: C[i] = A[i] + B[i], three
// equal arrays streamed in lockstep. Its memorygram is a uniform
// triple-density sweep.
func NewVectorAdd(m *sim.Machine, dev arch.DeviceID, seed uint64, cfg Config) *App {
	p := cudart.MustNewProcess(m, dev, seed)
	n := cfg.lines()
	size := uint64(cfg.ArrayKB) * 1024
	a, b, c := mustMalloc(p, size), mustMalloc(p, size), mustMalloc(p, size)
	return &App{Name: "vectoradd", Proc: p, body: func(k *cudart.Kernel, stopped func() bool) {
		const chunk = 64
		var acc float64
		for pass := 0; pass < cfg.Passes && !stopped(); pass++ {
			for off := 0; off < n; off += chunk {
				cnt := min(chunk, n-off)
				base := arch.VA(off * arch.CacheLineSize)
				k.Stream(a+base, cnt, arch.CacheLineSize)
				k.Stream(b+base, cnt, arch.CacheLineSize)
				k.Stream(c+base, cnt, arch.CacheLineSize)
				acc += float64(off) + 1 // the add itself
				k.Busy(cnt + cfg.ChunkDelay)
			}
		}
		_ = acc
	}}
}

// NewHistogram builds the histogram victim: a large input stream
// scattering increments into a small hot bin table. The memorygram
// shows a full-width sweep plus a persistent bright band at the bins.
func NewHistogram(m *sim.Machine, dev arch.DeviceID, seed uint64, cfg Config) *App {
	p := cudart.MustNewProcess(m, dev, seed)
	n := cfg.lines()
	input := mustMalloc(p, uint64(cfg.ArrayKB)*1024)
	const binLines = 8 // 256 x 4B bins = 1 KB = 8 lines, red hot
	bins := mustMalloc(p, binLines*arch.CacheLineSize)
	rng := xrand.New(seed ^ 0xbeef)
	return &App{Name: "histogram", Proc: p, body: func(k *cudart.Kernel, stopped func() bool) {
		const chunk = 64
		for pass := 0; pass < cfg.Passes && !stopped(); pass++ {
			for off := 0; off < n; off += chunk {
				cnt := min(chunk, n-off)
				k.Stream(input+arch.VA(off*arch.CacheLineSize), cnt, arch.CacheLineSize)
				// Scatter increments into bins: every chunk hits
				// several bin lines (conflict-heavy, like atomics).
				for h := 0; h < 12; h++ {
					k.TouchCG(bins + arch.VA(rng.Intn(binLines)*arch.CacheLineSize))
				}
				k.Busy(cnt + cfg.ChunkDelay)
			}
		}
	}}
}

// NewBlackScholes builds the Black-Scholes option pricer: five input
// arrays (spot, strike, rate, volatility, expiry) and two outputs
// (call, put) streamed per pass, with heavy per-element math. Seven
// interleaved sweeps at lower temporal rate distinguish it from
// vectoradd.
func NewBlackScholes(m *sim.Machine, dev arch.DeviceID, seed uint64, cfg Config) *App {
	p := cudart.MustNewProcess(m, dev, seed)
	n := cfg.lines()
	size := uint64(cfg.ArrayKB) * 1024
	bufs := make([]arch.VA, 7)
	for i := range bufs {
		bufs[i] = mustMalloc(p, size)
	}
	return &App{Name: "blackscholes", Proc: p, body: func(k *cudart.Kernel, stopped func() bool) {
		const chunk = 32
		var price float64
		for pass := 0; pass < cfg.Passes && !stopped(); pass++ {
			for off := 0; off < n; off += chunk {
				cnt := min(chunk, n-off)
				base := arch.VA(off * arch.CacheLineSize)
				for _, b := range bufs {
					k.Stream(b+base, cnt, arch.CacheLineSize)
				}
				// CND evaluations dominate BS compute.
				s := 100 + float64(off%37)
				d1 := (math.Log(s/95) + 0.06) / 0.23
				price += s*cnd(d1) - 95*cnd(d1-0.23)
				k.BusyHeavy(cnt / 2)
				k.Busy(cfg.ChunkDelay)
			}
		}
		_ = price
	}}
}

// cnd is the cumulative normal distribution (Hull's polynomial
// approximation), the Black-Scholes inner loop.
func cnd(x float64) float64 {
	l := math.Abs(x)
	kk := 1 / (1 + 0.2316419*l)
	w := 1 - 1/math.Sqrt(2*math.Pi)*math.Exp(-l*l/2)*
		(0.31938153*kk-0.356563782*kk*kk+1.781477937*kk*kk*kk-
			1.821255978*kk*kk*kk*kk+1.330274429*kk*kk*kk*kk*kk)
	if x < 0 {
		return 1 - w
	}
	return w
}

// NewMatMul builds the tiled matrix-multiply victim. Per output tile
// row it re-streams a block of A while sweeping all of B — strong
// temporal reuse that shows up as repeating bright bands.
func NewMatMul(m *sim.Machine, dev arch.DeviceID, seed uint64, cfg Config) *App {
	p := cudart.MustNewProcess(m, dev, seed)
	n := cfg.lines()
	size := uint64(cfg.ArrayKB) * 1024
	a, b, c := mustMalloc(p, size), mustMalloc(p, size), mustMalloc(p, size)
	return &App{Name: "matmul", Proc: p, body: func(k *cudart.Kernel, stopped func() bool) {
		tiles := 8
		tileLines := n / tiles
		var dot float64
		for pass := 0; pass < cfg.Passes && !stopped(); pass++ {
			for ti := 0; ti < tiles; ti++ {
				aBase := a + arch.VA(ti*tileLines*arch.CacheLineSize)
				for tj := 0; tj < tiles; tj++ {
					// Re-stream A's tile for every B tile: reuse.
					k.Stream(aBase, tileLines, arch.CacheLineSize)
					k.Stream(b+arch.VA(tj*tileLines*arch.CacheLineSize), tileLines, arch.CacheLineSize)
					dot += float64(ti*tj) * 1.5
					k.Busy(tileLines + cfg.ChunkDelay*4)
				}
				k.Stream(c+arch.VA(ti*tileLines*arch.CacheLineSize), tileLines, arch.CacheLineSize)
			}
		}
		_ = dot
	}}
}

// NewQuasiRandom builds the quasirandom (Niederreiter/Sobol-style)
// generator: a tiny hot direction table driving a long write-only
// output stream. Real direction numbers are computed and used.
func NewQuasiRandom(m *sim.Machine, dev arch.DeviceID, seed uint64, cfg Config) *App {
	p := cudart.MustNewProcess(m, dev, seed)
	n := cfg.lines()
	out := mustMalloc(p, uint64(cfg.ArrayKB)*1024)
	const dirLines = 4 // 32 direction words: 2 lines, padded
	dirs := mustMalloc(p, dirLines*arch.CacheLineSize)
	// Sobol dimension-1 direction numbers: v_j = 1 << (31-j).
	var v [32]uint32
	for j := range v {
		v[j] = 1 << (31 - j)
	}
	return &App{Name: "quasirandom", Proc: p, body: func(k *cudart.Kernel, stopped func() bool) {
		const chunk = 64
		var x uint32
		for pass := 0; pass < cfg.Passes && !stopped(); pass++ {
			for off := 0; off < n; off += chunk {
				cnt := min(chunk, n-off)
				// Gray-code Sobol step per element; table stays hot.
				for i := 0; i < 4; i++ {
					k.TouchCG(dirs + arch.VA((i%dirLines)*arch.CacheLineSize))
				}
				for i := 0; i < cnt; i++ {
					x ^= v[trailingOnes(uint32(off+i))%32]
				}
				k.Stream(out+arch.VA(off*arch.CacheLineSize), cnt, arch.CacheLineSize)
				k.Busy(cnt/2 + cfg.ChunkDelay)
			}
		}
		_ = x
	}}
}

// trailingOnes counts trailing one bits (Gray-code Sobol index).
func trailingOnes(x uint32) int {
	n := 0
	for x&1 == 1 {
		n++
		x >>= 1
	}
	return n
}

// NewWalshTransform builds the fast Walsh-Hadamard transform victim:
// log2(N) butterfly passes over one array with doubling strides. Its
// repeated full-array re-sweeps at shifting phase are unmistakable in
// the memorygram.
func NewWalshTransform(m *sim.Machine, dev arch.DeviceID, seed uint64, cfg Config) *App {
	p := cudart.MustNewProcess(m, dev, seed)
	n := cfg.lines()
	data := mustMalloc(p, uint64(cfg.ArrayKB)*1024)
	stages := 0
	for 1<<stages < n {
		stages++
	}
	return &App{Name: "walshtransform", Proc: p, body: func(k *cudart.Kernel, stopped func() bool) {
		const chunk = 64
		var butterfly float64
		for pass := 0; pass < cfg.Passes && !stopped(); pass++ {
			for st := 0; st < stages; st++ {
				// One butterfly stage touches every line; model the
				// pair accesses as two interleaved half-sweeps.
				half := n / 2
				for off := 0; off < half; off += chunk {
					cnt := min(chunk, half-off)
					k.Stream(data+arch.VA(off*arch.CacheLineSize), cnt, arch.CacheLineSize)
					k.Stream(data+arch.VA((off+half)*arch.CacheLineSize), cnt, arch.CacheLineSize)
					butterfly += float64(st ^ off)
					k.Busy(cnt + cfg.ChunkDelay)
				}
			}
		}
		_ = butterfly
	}}
}

// min returns the smaller int (Go 1.21 builtin shadow-safe helper for
// older toolchains in CI).
func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// AppNames lists the six fingerprinting victims in canonical order,
// matching the paper's Fig. 12 classes.
var AppNames = []string{
	"vectoradd", "histogram", "blackscholes", "matmul", "quasirandom", "walshtransform",
}

// NewApp constructs a victim by name.
func NewApp(name string, m *sim.Machine, dev arch.DeviceID, seed uint64, cfg Config) (*App, error) {
	switch name {
	case "vectoradd":
		return NewVectorAdd(m, dev, seed, cfg), nil
	case "histogram":
		return NewHistogram(m, dev, seed, cfg), nil
	case "blackscholes":
		return NewBlackScholes(m, dev, seed, cfg), nil
	case "matmul":
		return NewMatMul(m, dev, seed, cfg), nil
	case "quasirandom":
		return NewQuasiRandom(m, dev, seed, cfg), nil
	case "walshtransform":
		return NewWalshTransform(m, dev, seed, cfg), nil
	default:
		return nil, fmt.Errorf("victim: unknown app %q", name)
	}
}
