// The deep-learning victim (Sec. V-B): a one-hidden-layer MLP trained
// by SGD on the synthetic MNIST data, with its per-batch weight and
// activation traffic issued against the simulated GPU. The paper's
// Table II statistic — average L2 misses growing with hidden width —
// emerges because wider layers move proportionally more weight bytes
// per batch; Fig. 15's visible epochs come from the quiet evaluation
// pause between training epochs.
package victim

import (
	"fmt"
	"math"

	"spybox/internal/arch"
	"spybox/internal/cudart"
	"spybox/internal/sim"
	"spybox/internal/xrand"
)

// MLP is a 784-H-10 perceptron with sigmoid hidden units and a
// softmax output, trained with plain SGD. It is a real network: Train
// genuinely fits the synthetic digits.
type MLP struct {
	Hidden int
	W1     [][]float64 // [Hidden][ImgPixels]
	B1     []float64
	W2     [][]float64 // [10][Hidden]
	B2     []float64
	LR     float64
}

// NewMLP initializes a network with Xavier-ish random weights.
func NewMLP(hidden int, rng *xrand.Source) *MLP {
	n := &MLP{Hidden: hidden, LR: 0.15}
	scale1 := 1 / math.Sqrt(ImgPixels)
	n.W1 = make([][]float64, hidden)
	n.B1 = make([]float64, hidden)
	for h := range n.W1 {
		n.W1[h] = make([]float64, ImgPixels)
		for i := range n.W1[h] {
			n.W1[h][i] = rng.Norm() * scale1
		}
	}
	scale2 := 1 / math.Sqrt(float64(hidden))
	n.W2 = make([][]float64, 10)
	n.B2 = make([]float64, 10)
	for o := range n.W2 {
		n.W2[o] = make([]float64, hidden)
		for h := range n.W2[o] {
			n.W2[o][h] = rng.Norm() * scale2
		}
	}
	return n
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// Forward runs one sample, returning hidden activations and softmax
// output probabilities.
func (n *MLP) Forward(img []float64) (hidden, probs []float64) {
	hidden = make([]float64, n.Hidden)
	for h := range hidden {
		s := n.B1[h]
		w := n.W1[h]
		for i, v := range img {
			s += w[i] * v
		}
		hidden[h] = sigmoid(s)
	}
	logits := make([]float64, 10)
	maxL := math.Inf(-1)
	for o := range logits {
		s := n.B2[o]
		w := n.W2[o]
		for h, v := range hidden {
			s += w[h] * v
		}
		logits[o] = s
		if s > maxL {
			maxL = s
		}
	}
	probs = make([]float64, 10)
	var z float64
	for o, l := range logits {
		probs[o] = math.Exp(l - maxL)
		z += probs[o]
	}
	for o := range probs {
		probs[o] /= z
	}
	return hidden, probs
}

// TrainSample performs one SGD step and returns the cross-entropy
// loss for the sample.
func (n *MLP) TrainSample(img []float64, label int) float64 {
	hidden, probs := n.Forward(img)
	loss := -math.Log(math.Max(probs[label], 1e-12))

	// Output layer gradient: dL/dlogit_o = p_o - 1{o==label}.
	dOut := make([]float64, 10)
	for o := range dOut {
		dOut[o] = probs[o]
		if o == label {
			dOut[o]--
		}
	}
	// Hidden gradient through W2.
	dHid := make([]float64, n.Hidden)
	for o, g := range dOut {
		w := n.W2[o]
		for h := range w {
			dHid[h] += g * w[h]
		}
	}
	for h := range dHid {
		dHid[h] *= hidden[h] * (1 - hidden[h]) // sigmoid'
	}
	// Updates.
	for o, g := range dOut {
		w := n.W2[o]
		for h := range w {
			w[h] -= n.LR * g * hidden[h]
		}
		n.B2[o] -= n.LR * g
	}
	for h, g := range dHid {
		if g == 0 {
			continue
		}
		w := n.W1[h]
		step := n.LR * g
		for i, v := range img {
			w[i] -= step * v
		}
		n.B1[h] -= n.LR * g
	}
	return loss
}

// Accuracy evaluates classification accuracy on a dataset.
func (n *MLP) Accuracy(ds *Dataset) float64 {
	correct := 0
	for i, img := range ds.Images {
		_, probs := n.Forward(img)
		best := 0
		for o, p := range probs {
			if p > probs[best] {
				best = o
			}
		}
		if best == ds.Labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(ds.Images))
}

// MLPVictimConfig sizes the training victim.
type MLPVictimConfig struct {
	Hidden    int // hidden-layer width (the secret Table II recovers)
	Epochs    int // full passes over the training set (Fig. 15 counts these)
	Samples   int // training-set size
	BatchSize int // samples per device batch
	// EpochGapOps is the heavy-op count of the quiet evaluation pause
	// between epochs, which makes epoch boundaries visible (Fig. 15).
	EpochGapOps int
}

// DefaultMLPVictimConfig matches the experiments' scale.
func DefaultMLPVictimConfig(hidden int) MLPVictimConfig {
	return MLPVictimConfig{Hidden: hidden, Epochs: 1, Samples: 96, BatchSize: 16, EpochGapOps: 20000}
}

// MLPVictim couples the real network with its device-side buffers.
type MLPVictim struct {
	Net  *MLP
	Proc *cudart.Process
	Cfg  MLPVictimConfig
	Data *Dataset

	inputBuf  arch.VA // one batch of images
	w1Buf     arch.VA // W1 weights (784 x H x 4B)
	w2Buf     arch.VA // W2 weights (H x 10 x 4B)
	actBuf    arch.VA // hidden activations for a batch
	FinalLoss float64
}

// NewMLPVictim builds the victim on dev: allocates weight and
// activation buffers proportional to the architecture and generates
// its training data.
func NewMLPVictim(m *sim.Machine, dev arch.DeviceID, seed uint64, cfg MLPVictimConfig) (*MLPVictim, error) {
	if cfg.Hidden <= 0 || cfg.Epochs <= 0 || cfg.Samples <= 0 || cfg.BatchSize <= 0 {
		return nil, fmt.Errorf("victim: bad MLP config %+v", cfg)
	}
	p, err := cudart.NewProcess(m, dev, seed)
	if err != nil {
		return nil, err
	}
	rng := xrand.New(seed ^ 0x3141592653589793)
	v := &MLPVictim{
		Net:  NewMLP(cfg.Hidden, rng.Split()),
		Proc: p,
		Cfg:  cfg,
		Data: SynthMNIST(cfg.Samples, rng.Split()),
	}
	alloc := func(bytes uint64) arch.VA {
		if bytes < arch.CacheLineSize {
			bytes = arch.CacheLineSize
		}
		va, err2 := p.Malloc(bytes)
		if err2 != nil {
			err = err2
		}
		return va
	}
	v.inputBuf = alloc(uint64(cfg.BatchSize) * ImgPixels * 4)
	v.w1Buf = alloc(uint64(ImgPixels) * uint64(cfg.Hidden) * 4)
	v.w2Buf = alloc(uint64(cfg.Hidden) * 10 * 4)
	v.actBuf = alloc(uint64(cfg.BatchSize) * uint64(cfg.Hidden) * 4)
	if err != nil {
		return nil, err
	}
	return v, nil
}

// lines returns the line count of a byte size, at least 1.
func lines(bytes uint64) int {
	n := int((bytes + arch.CacheLineSize - 1) / arch.CacheLineSize)
	if n == 0 {
		n = 1
	}
	return n
}

// Launch starts the training kernel. Per batch it performs the real
// SGD math host-side and issues the corresponding device traffic:
// input batch in, W1 read (forward), activations, W2 read, then W2
// and W1 again for the backward pass and update. Between epochs it
// idles on heavy arithmetic (the evaluation pause).
func (v *MLPVictim) Launch(done *bool) error {
	cfg := v.Cfg
	inLines := lines(uint64(cfg.BatchSize) * ImgPixels * 4)
	w1Lines := lines(uint64(ImgPixels) * uint64(cfg.Hidden) * 4)
	w2Lines := lines(uint64(cfg.Hidden) * 10 * 4)
	actLines := lines(uint64(cfg.BatchSize) * uint64(cfg.Hidden) * 4)
	return v.Proc.Launch(fmt.Sprintf("mlp-h%d", cfg.Hidden), 0, func(k *cudart.Kernel) {
		if done != nil {
			defer func() { *done = true }()
		}
		for ep := 0; ep < cfg.Epochs; ep++ {
			var epochLoss float64
			for b := 0; b+cfg.BatchSize <= cfg.Samples; b += cfg.BatchSize {
				// Real SGD on the batch.
				for s := b; s < b+cfg.BatchSize; s++ {
					epochLoss += v.Net.TrainSample(v.Data.Images[s], v.Data.Labels[s])
				}
				// Device traffic of the same batch.
				k.Stream(v.inputBuf, inLines, arch.CacheLineSize) // H2D batch
				k.Stream(v.w1Buf, w1Lines, arch.CacheLineSize)    // forward W1
				k.Stream(v.actBuf, actLines, arch.CacheLineSize)  // activations
				k.Stream(v.w2Buf, w2Lines, arch.CacheLineSize)    // forward W2
				k.Stream(v.w2Buf, w2Lines, arch.CacheLineSize)    // backward W2 + update
				k.Stream(v.w1Buf, w1Lines, arch.CacheLineSize)    // backward W1 + update
				k.Busy(cfg.BatchSize * cfg.Hidden / 4)            // MACs
			}
			v.FinalLoss = epochLoss / float64(cfg.Samples)
			if ep < cfg.Epochs-1 && cfg.EpochGapOps > 0 {
				k.BusyHeavy(cfg.EpochGapOps) // quiet inter-epoch pause
			}
		}
	})
}
