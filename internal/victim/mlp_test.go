package victim

import (
	"testing"

	"spybox/internal/sim"
	"spybox/internal/xrand"
)

func TestSynthMNISTShape(t *testing.T) {
	ds := SynthMNIST(50, xrand.New(1))
	if len(ds.Images) != 50 || len(ds.Labels) != 50 {
		t.Fatalf("sizes %d/%d", len(ds.Images), len(ds.Labels))
	}
	for i, img := range ds.Images {
		if len(img) != ImgPixels {
			t.Fatalf("image %d has %d pixels", i, len(img))
		}
		for _, p := range img {
			if p < 0 || p > 1 {
				t.Fatalf("pixel %v out of range", p)
			}
		}
		if ds.Labels[i] < 0 || ds.Labels[i] > 9 {
			t.Fatalf("label %d out of range", ds.Labels[i])
		}
	}
}

func TestSynthMNISTDeterministic(t *testing.T) {
	a := SynthMNIST(10, xrand.New(7))
	b := SynthMNIST(10, xrand.New(7))
	for i := range a.Images {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ across identical seeds")
		}
		for p := range a.Images[i] {
			if a.Images[i][p] != b.Images[i][p] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
}

func TestPrototypesDistinct(t *testing.T) {
	// Every pair of digit prototypes must differ in enough pixels to
	// be separable.
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			pa, pb := prototype(a), prototype(b)
			diff := 0
			for i := range pa {
				if pa[i] != pb[i] {
					diff++
				}
			}
			if diff < 10 {
				t.Errorf("digits %d and %d differ in only %d pixels", a, b, diff)
			}
		}
	}
}

func TestMLPLearns(t *testing.T) {
	rng := xrand.New(3)
	net := NewMLP(32, rng.Split())
	train := SynthMNIST(300, rng.Split())
	test := SynthMNIST(100, rng.Split())
	before := net.Accuracy(test)
	var lastLoss float64
	for ep := 0; ep < 5; ep++ {
		lastLoss = 0
		for i := range train.Images {
			lastLoss += net.TrainSample(train.Images[i], train.Labels[i])
		}
		lastLoss /= float64(len(train.Images))
	}
	after := net.Accuracy(test)
	if after < 0.8 {
		t.Errorf("MLP test accuracy %.2f after training (was %.2f)", after, before)
	}
	if after <= before {
		t.Errorf("training did not improve accuracy: %.2f -> %.2f", before, after)
	}
	if lastLoss > 0.6 {
		t.Errorf("final loss %.2f too high", lastLoss)
	}
}

func TestMLPForwardIsDistribution(t *testing.T) {
	net := NewMLP(16, xrand.New(5))
	img := SynthMNIST(1, xrand.New(6)).Images[0]
	_, probs := net.Forward(img)
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("prob %v out of range", p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("probs sum to %v", sum)
	}
}

func TestMLPVictimConfigValidation(t *testing.T) {
	m := sim.MustNewMachine(sim.Options{Seed: 9, NoiseOff: true})
	bad := []MLPVictimConfig{
		{Hidden: 0, Epochs: 1, Samples: 16, BatchSize: 8},
		{Hidden: 8, Epochs: 0, Samples: 16, BatchSize: 8},
		{Hidden: 8, Epochs: 1, Samples: 0, BatchSize: 8},
		{Hidden: 8, Epochs: 1, Samples: 16, BatchSize: 0},
	}
	for _, cfg := range bad {
		if _, err := NewMLPVictim(m, 0, 1, cfg); err == nil {
			t.Errorf("bad config accepted: %+v", cfg)
		}
	}
}

func TestMLPVictimTrafficScalesWithHidden(t *testing.T) {
	run := func(hidden int) uint64 {
		m := sim.MustNewMachine(sim.Options{Seed: 10, NoiseOff: true})
		cfg := MLPVictimConfig{Hidden: hidden, Epochs: 1, Samples: 32, BatchSize: 16, EpochGapOps: 0}
		v, err := NewMLPVictim(m, 0, 11, cfg)
		if err != nil {
			t.Fatal(err)
		}
		done := false
		if err := v.Launch(&done); err != nil {
			t.Fatal(err)
		}
		m.Run()
		if !done {
			t.Fatal("victim did not finish")
		}
		h, miss, _ := m.Device(0).L2().Totals()
		return h + miss
	}
	small, big := run(32), run(256)
	if big <= small {
		t.Errorf("traffic did not scale with hidden width: h32=%d h256=%d", small, big)
	}
	if big < small*3 {
		t.Errorf("traffic scaling too weak: h32=%d h256=%d", small, big)
	}
}

func TestMLPVictimTrainsForReal(t *testing.T) {
	m := sim.MustNewMachine(sim.Options{Seed: 12, NoiseOff: true})
	cfg := MLPVictimConfig{Hidden: 32, Epochs: 3, Samples: 64, BatchSize: 16, EpochGapOps: 10}
	v, err := NewMLPVictim(m, 0, 13, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	v.Launch(&done)
	m.Run()
	if v.FinalLoss <= 0 || v.FinalLoss > 2.0 {
		t.Errorf("final loss %.3f implausible for 3 epochs", v.FinalLoss)
	}
	if acc := v.Net.Accuracy(v.Data); acc < 0.5 {
		t.Errorf("victim net only fits %.2f of its training data", acc)
	}
}

func TestDefaultMLPVictimConfig(t *testing.T) {
	cfg := DefaultMLPVictimConfig(128)
	if cfg.Hidden != 128 || cfg.Epochs <= 0 || cfg.Samples <= 0 {
		t.Errorf("bad default config %+v", cfg)
	}
}
