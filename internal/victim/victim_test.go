package victim

import (
	"testing"

	"spybox/internal/arch"
	"spybox/internal/sim"
)

func testMachine(seed uint64) *sim.Machine {
	return sim.MustNewMachine(sim.Options{Seed: seed, NoiseOff: true})
}

func smallCfg() Config {
	return Config{ArrayKB: 64, Passes: 2, ChunkDelay: 10}
}

func TestAllAppsRunAndTouchCache(t *testing.T) {
	for _, name := range AppNames {
		name := name
		t.Run(name, func(t *testing.T) {
			m := testMachine(7)
			app, err := NewApp(name, m, 0, 42, smallCfg())
			if err != nil {
				t.Fatal(err)
			}
			if app.Name != name {
				t.Errorf("Name = %q", app.Name)
			}
			done := false
			if err := app.Launch(&done); err != nil {
				t.Fatal(err)
			}
			m.Run()
			if !done {
				t.Error("done flag not set")
			}
			h, miss, _ := m.Device(0).L2().Totals()
			if h+miss == 0 {
				t.Error("app issued no cache accesses")
			}
		})
	}
}

func TestUnknownApp(t *testing.T) {
	m := testMachine(1)
	if _, err := NewApp("fortnite", m, 0, 1, smallCfg()); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestAppStopFlag(t *testing.T) {
	m := testMachine(3)
	cfg := smallCfg()
	cfg.Passes = 1 << 20
	app := NewVectorAdd(m, 0, 5, cfg)
	stop := false
	app.Stop = &stop
	done := false
	if err := app.Launch(&done); err != nil {
		t.Fatal(err)
	}
	other := NewHistogram(m, 1, 6, Config{ArrayKB: 64, Passes: 3, ChunkDelay: 10})
	if err := other.Launch(&stop); err != nil { // histogram's completion stops vectoradd
		t.Fatal(err)
	}
	doneCh := make(chan struct{})
	go func() {
		m.Run()
		close(doneCh)
	}()
	<-doneCh
	if !done {
		t.Error("vectoradd did not stop when flagged")
	}
}

func TestAppsHaveDistinctFootprints(t *testing.T) {
	// The L2 set-counter profile after a run differs across apps —
	// a cheap proxy for the memorygram separability the attack needs.
	misses := map[string]uint64{}
	accesses := map[string]uint64{}
	for _, name := range AppNames {
		m := testMachine(11)
		app, err := NewApp(name, m, 0, 99, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		done := false
		app.Launch(&done)
		m.Run()
		h, ms, _ := m.Device(0).L2().Totals()
		misses[name] = ms
		accesses[name] = h + ms
	}
	// Compulsory misses scale with footprint (array count)...
	if misses["blackscholes"] <= misses["vectoradd"] {
		t.Error("blackscholes (7 arrays) should out-miss vectoradd (3 arrays)")
	}
	// ...while total access volume scales with sweep count.
	if accesses["walshtransform"] <= accesses["histogram"] {
		t.Error("walsh (log N sweeps) should out-access histogram (1 sweep)")
	}
}

func TestCndSanity(t *testing.T) {
	if got := cnd(0); got < 0.49 || got > 0.51 {
		t.Errorf("cnd(0) = %v, want ~0.5", got)
	}
	if got := cnd(6); got < 0.999 {
		t.Errorf("cnd(6) = %v", got)
	}
	if got := cnd(-6); got > 0.001 {
		t.Errorf("cnd(-6) = %v", got)
	}
}

func TestTrailingOnes(t *testing.T) {
	cases := map[uint32]int{0: 0, 1: 1, 2: 0, 3: 2, 7: 3, 8: 0, 0xF: 4}
	for x, want := range cases {
		if got := trailingOnes(x); got != want {
			t.Errorf("trailingOnes(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestConfigLines(t *testing.T) {
	if got := (Config{ArrayKB: 128}).lines(); got != 1024 {
		t.Errorf("lines = %d", got)
	}
}

func TestVictimsStayOnTheirGPU(t *testing.T) {
	m := testMachine(13)
	app := NewMatMul(m, 3, 77, smallCfg())
	done := false
	app.Launch(&done)
	m.Run()
	h, miss, _ := m.Device(3).L2().Totals()
	if h+miss == 0 {
		t.Error("no traffic on the victim's GPU")
	}
	h0, m0, _ := m.Device(0).L2().Totals()
	if h0+m0 != 0 {
		t.Error("victim leaked traffic onto GPU0")
	}
	if arch.DeviceID(3) != app.Proc.Device() {
		t.Error("wrong device binding")
	}
}
