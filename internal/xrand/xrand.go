// Package xrand provides the deterministic pseudo-random machinery the
// simulator is built on. Every stochastic decision in the repository —
// physical frame placement, timing jitter, victim data, train/test
// splits — draws from a seeded xrand.Source, so any experiment is
// exactly reproducible from its seed.
//
// The generator is SplitMix64 feeding xoshiro256**, both public-domain
// algorithms with excellent statistical behaviour and trivial state.
package xrand

import "math"

// Source is a deterministic random number generator. It is not safe
// for concurrent use; give each simulated component its own Source
// (use Split) so that adding a consumer does not perturb the streams
// seen by others.
type Source struct {
	s         [4]uint64
	spare     float64
	haveSpare bool
}

// splitmix64 advances a 64-bit state and returns a well-mixed output;
// used only for seeding.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SplitMix64At returns the nth output (n = 0 first) of the splitmix64
// stream seeded with seed, without materializing the stream. Exported
// so seed-derivation elsewhere (the experiment trial runner) uses the
// exact generator and constants this package seeds Sources with.
func SplitMix64At(seed uint64, n uint64) uint64 {
	st := seed + n*0x9e3779b97f4a7c15
	return splitmix64(&st)
}

// New returns a Source seeded from the given seed. Distinct seeds give
// independent streams.
func New(seed uint64) *Source {
	var s Source
	s.Reseed(seed)
	return &s
}

// Reseed reinitializes the Source in place to exactly the state
// New(seed) returns, including clearing the cached normal deviate.
// This is the allocation-free path machine pooling uses to rewind
// every RNG stream between trials.
func (s *Source) Reseed(seed uint64) {
	st := seed
	for i := range s.s {
		s.s[i] = splitmix64(&st)
	}
	// xoshiro must not be seeded all-zero; splitmix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 0x9e3779b97f4a7c15
	}
	s.spare, s.haveSpare = 0, false
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Split derives an independent child Source. The child's stream is a
// pure function of the parent state at the moment of the call, and the
// parent advances by one draw, so sibling splits are independent too.
func (s *Source) Split() *Source {
	return New(s.Uint64() ^ 0xa0761d6478bd642f)
}

// ReseedFrom reinitializes s in place to exactly the state
// parent.Split() would return, advancing parent by one draw. Machine
// reset uses it to replay the construction-time stream derivations
// without allocating new Sources.
func (s *Source) ReseedFrom(parent *Source) {
	s.Reseed(parent.Uint64() ^ 0xa0761d6478bd642f)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and fast.
	bound := uint64(n)
	for {
		x := s.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	return a1*b1 + t>>32 + w1>>32, a * b
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal deviate (Box–Muller, one value per
// call; the spare is cached).
func (s *Source) Norm() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(q) / q)
		s.spare = v * f
		s.haveSpare = true
		return u * f
	}
}

// NormSigma returns a normal deviate with mean 0 and the given sigma.
func (s *Source) NormSigma(sigma float64) float64 {
	if sigma <= 0 {
		return 0
	}
	return s.Norm() * sigma
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap
// function (Fisher–Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Bool returns a fair random boolean.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }
