package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draw")
	}
	// Split is a pure function of parent state: replay it.
	parent2 := New(7)
	r1 := parent2.Split()
	if c1Val, r1Val := New(7).Split().Uint64(), r1.Uint64(); c1Val != r1Val {
		t.Fatalf("split not reproducible: %d vs %d", c1Val, r1Val)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: count %d deviates >10%% from %v", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestNormMoments(t *testing.T) {
	s := New(17)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v too far from 1", variance)
	}
}

func TestNormSigmaZero(t *testing.T) {
	s := New(1)
	if got := s.NormSigma(0); got != 0 {
		t.Fatalf("NormSigma(0) = %v, want 0", got)
	}
	if got := s.NormSigma(-3); got != 0 {
		t.Fatalf("NormSigma(-3) = %v, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	cfg := &quick.Config{MaxCount: 50}
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(13)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
