// Package plot renders experiment results as ASCII charts and CSV,
// so every paper figure has a terminal-viewable and a
// machine-readable form.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// Line draws one or more series as an ASCII scatter/line chart of the
// given size. Each series uses its own glyph.
func Line(series []Series, width, height int, xLabel, yLabel string) string {
	glyphs := "*o+x#@"
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			c := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			grid[r][c] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (y: %.4g..%.4g)\n", yLabel, minY, maxY)
	for _, row := range grid {
		b.WriteString("| ")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+-" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "  %s (x: %.4g..%.4g)", xLabel, minX, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  [%c]=%s", glyphs[si%len(glyphs)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}

// Bars draws a labelled horizontal bar chart.
func Bars(labels []string, values []float64, width int) string {
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		bar := 0
		if maxV > 0 {
			bar = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%-*s | %-*s %.4g\n", maxL, labels[i], width, strings.Repeat("#", bar), v)
	}
	return b.String()
}

// CSV writes series as columns: x, then one y column per series
// (series are assumed to share X; shorter series pad with blanks).
func CSV(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return nil
	}
	header := []string{"x"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	n := 0
	for _, s := range series {
		if len(s.X) > n {
			n = len(s.X)
		}
	}
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(series)+1)
		if i < len(series[0].X) {
			row = append(row, fmt.Sprintf("%g", series[0].X[i]))
		} else {
			row = append(row, "")
		}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%g", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
