// Package plot renders experiment results as ASCII charts and CSV,
// so every paper figure has a terminal-viewable and a
// machine-readable form.
package plot

import (
	"fmt"
	"math"
	"strings"

	"spybox/pkg/spybox/report"
)

// Series is one named line of (x, y) points. It is the public
// report.Series: experiments build chart data directly in the form
// the structured result model (and its JSON encoding) carries.
type Series = report.Series

// Line draws one or more series as an ASCII scatter/line chart of the
// given size. Each series uses its own glyph.
func Line(series []Series, width, height int, xLabel, yLabel string) string {
	glyphs := "*o+x#@"
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			c := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			grid[r][c] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s (y: %.4g..%.4g)\n", yLabel, minY, maxY)
	for _, row := range grid {
		b.WriteString("| ")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+-" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "  %s (x: %.4g..%.4g)", xLabel, minX, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "  [%c]=%s", glyphs[si%len(glyphs)], s.Name)
	}
	b.WriteByte('\n')
	return b.String()
}

// Bars draws a labelled horizontal bar chart.
func Bars(labels []string, values []float64, width int) string {
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		bar := 0
		if maxV > 0 {
			bar = int(v / maxV * float64(width))
		}
		fmt.Fprintf(&b, "%-*s | %-*s %.4g\n", maxL, labels[i], width, strings.Repeat("#", bar), v)
	}
	return b.String()
}
