package plot

import (
	"strings"
	"testing"
)

func TestLineRendersAllSeries(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
		{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}},
	}
	out := Line(s, 30, 8, "x", "y")
	if !strings.Contains(out, "[*]=a") || !strings.Contains(out, "[o]=b") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("glyphs missing")
	}
}

func TestLineEmpty(t *testing.T) {
	if got := Line(nil, 10, 5, "x", "y"); got != "(no data)\n" {
		t.Errorf("empty plot = %q", got)
	}
}

func TestLineDegenerateRanges(t *testing.T) {
	// Constant series must not divide by zero.
	s := []Series{{Name: "c", X: []float64{1, 1}, Y: []float64{5, 5}}}
	out := Line(s, 10, 4, "x", "y")
	if out == "" {
		t.Error("no output for constant series")
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"one", "two"}, []float64{1, 2}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("bar lines %d", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Error("max bar not full width")
	}
	if strings.Count(lines[0], "#") != 10 {
		t.Errorf("half bar wrong: %q", lines[0])
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars([]string{"z"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Error("zero value drew a bar")
	}
}
