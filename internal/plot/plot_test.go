package plot

import (
	"bytes"
	"strings"
	"testing"
)

func TestLineRendersAllSeries(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
		{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}},
	}
	out := Line(s, 30, 8, "x", "y")
	if !strings.Contains(out, "[*]=a") || !strings.Contains(out, "[o]=b") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("glyphs missing")
	}
}

func TestLineEmpty(t *testing.T) {
	if got := Line(nil, 10, 5, "x", "y"); got != "(no data)\n" {
		t.Errorf("empty plot = %q", got)
	}
}

func TestLineDegenerateRanges(t *testing.T) {
	// Constant series must not divide by zero.
	s := []Series{{Name: "c", X: []float64{1, 1}, Y: []float64{5, 5}}}
	out := Line(s, 10, 4, "x", "y")
	if out == "" {
		t.Error("no output for constant series")
	}
}

func TestBars(t *testing.T) {
	out := Bars([]string{"one", "two"}, []float64{1, 2}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("bar lines %d", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Error("max bar not full width")
	}
	if strings.Count(lines[0], "#") != 10 {
		t.Errorf("half bar wrong: %q", lines[0])
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars([]string{"z"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Error("zero value drew a bar")
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	s := []Series{
		{Name: "bw", X: []float64{1, 2}, Y: []float64{0.5, 1.5}},
		{Name: "err", X: []float64{1, 2}, Y: []float64{0.1, 0.2}},
	}
	if err := CSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	want := "x,bw,err\n1,0.5,0.1\n2,1.5,0.2\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestCSVEmptyAndRagged(t *testing.T) {
	var buf bytes.Buffer
	if err := CSV(&buf, nil); err != nil || buf.Len() != 0 {
		t.Error("empty CSV should write nothing")
	}
	s := []Series{
		{Name: "long", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}},
		{Name: "short", X: []float64{1}, Y: []float64{9}},
	}
	buf.Reset()
	if err := CSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("ragged CSV rows = %d, want 4", len(lines))
	}
}
