// Package stats provides the small statistical toolkit the attacks
// rely on: summary statistics, histograms (the paper's Fig. 4 and
// Fig. 13 are histograms), and 1-D k-means clustering, which the
// timing-characterization step uses to separate the four access-time
// clusters and place hit/miss thresholds between them.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between order statistics.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary captures the usual five-number-style description of a
// sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Med, Max float64
	P5, P95       float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  Min(xs),
		Med:  Median(xs),
		Max:  Max(xs),
		P5:   Percentile(xs, 5),
		P95:  Percentile(xs, 95),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f std=%.1f min=%.0f p5=%.0f med=%.0f p95=%.0f max=%.0f",
		s.N, s.Mean, s.Std, s.Min, s.P5, s.Med, s.P95, s.Max)
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	// Under and Over count samples falling outside [Lo, Hi).
	Under, Over int
}

// NewHistogram creates a histogram with the given bounds and bin
// count. It panics if hi <= lo or bins <= 0.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo || bins <= 0 {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // guard float rounding at the edge
			i--
		}
		h.Counts[i]++
	}
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of in-range samples recorded.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Modes returns the centers of local maxima with at least minCount
// samples, in ascending bin order. The timing characterization uses
// this as a sanity check against the k-means clusters.
func (h *Histogram) Modes(minCount int) []float64 {
	var modes []float64
	for i, c := range h.Counts {
		if c < minCount {
			continue
		}
		left := 0
		if i > 0 {
			left = h.Counts[i-1]
		}
		right := 0
		if i < len(h.Counts)-1 {
			right = h.Counts[i+1]
		}
		if c >= left && c > right || (c > left && c >= right) {
			modes = append(modes, h.BinCenter(i))
		}
	}
	return modes
}

// Render draws the histogram as ASCII art, one row per bin, scaled to
// width columns. Empty leading/trailing bins are trimmed.
func (h *Histogram) Render(width int) string {
	first, last := -1, -1
	maxC := 0
	for i, c := range h.Counts {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
			if c > maxC {
				maxC = c
			}
		}
	}
	if first < 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	for i := first; i <= last; i++ {
		c := h.Counts[i]
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "%8.0f | %-*s %d\n", h.BinCenter(i), width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

// KMeans1D clusters xs into k clusters by Lloyd's algorithm on the
// line, returning ascending cluster centers and the assignment of
// each sample. Initialization spreads the centers over the sample
// quantiles, which is deterministic and robust for well-separated
// clusters like the four timing classes.
func KMeans1D(xs []float64, k int) (centers []float64, assign []int) {
	if k <= 0 || len(xs) == 0 {
		return nil, nil
	}
	if k > len(xs) {
		k = len(xs)
	}
	centers = make([]float64, k)
	for i := range centers {
		// quantile-spread init: p in (0,100)
		p := (float64(i) + 0.5) / float64(k) * 100
		centers[i] = Percentile(xs, p)
	}
	assign = make([]int, len(xs))
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, x := range xs {
			best, bestD := 0, math.Abs(x-centers[0])
			for c := 1; c < k; c++ {
				if d := math.Abs(x - centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, x := range xs {
			sums[assign[i]] += x
			counts[assign[i]]++
		}
		for c := range centers {
			if counts[c] > 0 {
				centers[c] = sums[c] / float64(counts[c])
			}
		}
		if !changed && iter > 0 {
			break
		}
	}
	// Sort centers ascending and remap assignments.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return centers[order[a]] < centers[order[b]] })
	remap := make([]int, k)
	sorted := make([]float64, k)
	for newIdx, oldIdx := range order {
		remap[oldIdx] = newIdx
		sorted[newIdx] = centers[oldIdx]
	}
	for i := range assign {
		assign[i] = remap[assign[i]]
	}
	return sorted, assign
}

// ClusterGaps returns the midpoints between consecutive ascending
// centers. With the four timing clusters these midpoints are the
// hit/miss thresholds the attacks use.
func ClusterGaps(centers []float64) []float64 {
	if len(centers) < 2 {
		return nil
	}
	gaps := make([]float64, len(centers)-1)
	for i := 0; i+1 < len(centers); i++ {
		gaps[i] = (centers[i] + centers[i+1]) / 2
	}
	return gaps
}

// ArgMax returns the index of the largest element, or -1 if empty.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMaxInt returns the index of the largest int element, or -1.
func ArgMaxInt(xs []int) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// MeanInt returns the mean of integer samples as a float.
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum int
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}
