package stats

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"spybox/internal/xrand"
)

func TestMeanBasics(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); got != c.want {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceAndStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); math.Abs(got-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); math.Abs(got-5) > 1e-12 {
		t.Errorf("Percentile(50) = %v, want 5", got)
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for name, f := range map[string]func(){
		"Min": func() { Min(nil) },
		"Max": func() { Max(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(nil) did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Mean != 5.5 || s.Min != 1 || s.Max != 10 {
		t.Errorf("bad summary: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("Summarize(nil).N = %d", got.N)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	h.Add(-1)   // under
	h.Add(0)    // bin 0
	h.Add(9.99) // bin 0
	h.Add(10)   // bin 1
	h.Add(99.9) // bin 9
	h.Add(100)  // over
	h.Add(150)  // over
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[9] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d, want 4", h.Total())
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	if got := h.BinCenter(0); got != 5 {
		t.Errorf("BinCenter(0) = %v, want 5", got)
	}
	if got := h.BinCenter(9); got != 95 {
		t.Errorf("BinCenter(9) = %v, want 95", got)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(10, 10, 5)
}

func TestHistogramModes(t *testing.T) {
	h := NewHistogram(0, 100, 20)
	// Two clear clusters around 20 and 80.
	for i := 0; i < 50; i++ {
		h.Add(20)
		h.Add(80)
	}
	h.Add(50)
	modes := h.Modes(10)
	if len(modes) != 2 {
		t.Fatalf("found %d modes (%v), want 2", len(modes), modes)
	}
	if math.Abs(modes[0]-22.5) > 5 || math.Abs(modes[1]-82.5) > 5 {
		t.Errorf("mode centers %v not near 20/80", modes)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{1, 1, 5})
	out := h.Render(40)
	if out == "" || out == "(empty histogram)\n" {
		t.Errorf("unexpected render output: %q", out)
	}
	empty := NewHistogram(0, 10, 5)
	if empty.Render(40) != "(empty histogram)\n" {
		t.Error("empty histogram render mismatch")
	}
}

func TestKMeans1DFourClusters(t *testing.T) {
	// Emulates the Fig. 4 scenario: four well-separated timing
	// clusters; k-means must find all four centers.
	rng := xrand.New(99)
	var xs []float64
	trueCenters := []float64{268, 440, 630, 950}
	for _, c := range trueCenters {
		for i := 0; i < 200; i++ {
			xs = append(xs, c+rng.NormSigma(8))
		}
	}
	centers, assign := KMeans1D(xs, 4)
	if len(centers) != 4 {
		t.Fatalf("got %d centers", len(centers))
	}
	for i, want := range trueCenters {
		if math.Abs(centers[i]-want) > 15 {
			t.Errorf("center %d = %v, want near %v", i, centers[i], want)
		}
	}
	// Assignments must be consistent with sorted center order.
	for i, x := range xs {
		c := assign[i]
		for other := range centers {
			if math.Abs(x-centers[other]) < math.Abs(x-centers[c])-1e-9 {
				t.Fatalf("sample %v assigned to %d but %d is closer", x, c, other)
			}
		}
	}
}

func TestKMeans1DEdgeCases(t *testing.T) {
	if c, a := KMeans1D(nil, 3); c != nil || a != nil {
		t.Error("empty input should return nil")
	}
	c, _ := KMeans1D([]float64{5, 5, 5}, 2)
	if len(c) != 2 {
		t.Errorf("k capped incorrectly: %v", c)
	}
	c, a := KMeans1D([]float64{1, 2}, 5)
	if len(c) != 2 || len(a) != 2 {
		t.Errorf("k > n not capped: centers=%v assign=%v", c, a)
	}
}

func TestClusterGaps(t *testing.T) {
	gaps := ClusterGaps([]float64{268, 440, 630, 950})
	want := []float64{354, 535, 790}
	if !reflect.DeepEqual(gaps, want) {
		t.Errorf("gaps = %v, want %v", gaps, want)
	}
	if ClusterGaps([]float64{1}) != nil {
		t.Error("single center should have no gaps")
	}
}

func TestArgMax(t *testing.T) {
	if ArgMax(nil) != -1 || ArgMaxInt(nil) != -1 {
		t.Error("empty ArgMax should be -1")
	}
	if got := ArgMax([]float64{1, 5, 3}); got != 1 {
		t.Errorf("ArgMax = %d, want 1", got)
	}
	if got := ArgMaxInt([]int{7, 2, 9, 9}); got != 2 {
		t.Errorf("ArgMaxInt = %d, want 2 (first max)", got)
	}
}

func TestMeanInt(t *testing.T) {
	if got := MeanInt([]int{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("MeanInt = %v", got)
	}
	if MeanInt(nil) != 0 {
		t.Error("MeanInt(nil) != 0")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	rng := xrand.New(4)
	f := func(seed uint16) bool {
		r := xrand.New(uint64(seed))
		n := r.Intn(50) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()*1000 - 500
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < prev-1e-9 || v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram conserves samples (in-range + under + over).
func TestHistogramConservationProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := xrand.New(uint64(seed))
		h := NewHistogram(-100, 100, 13)
		n := r.Intn(500) + 1
		for i := 0; i < n; i++ {
			h.Add(r.Float64()*400 - 200)
		}
		return h.Total()+h.Under+h.Over == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
