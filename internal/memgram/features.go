// Classifier feature extraction. Physical placement shuffles
// memorygram rows and shifts temporal phase from run to run (the
// paper notes its memorygrams "can be different in each run"), so the
// feature vector combines the raw downsampled picture with
// pose-invariant summaries: the autocorrelation of the activity time
// series, the sorted row-intensity profile, and duty/activity
// statistics.
package memgram

import (
	"math"
	"sort"
)

// Features converts a memorygram to the classifier input vector used
// by the fingerprinting attack. The output length is fixed for fixed
// input dimensions, so grams recorded with the same monitor settings
// are directly comparable.
func (g *Gram) Features() []float64 {
	var x []float64

	// Phase-invariant periodicity signature: the dominant component is
	// the victim's working-set pass period, a per-application constant.
	cols := g.EpochTotals()
	maxLag := 32
	if maxLag > len(cols)-2 {
		maxLag = len(cols) - 2
	}
	ac := Autocorr(cols, maxLag)
	for len(ac) < 32 {
		ac = append(ac, 0)
	}
	for _, v := range ac {
		x = append(x, 2*v) // weighted up: the load-bearing features
	}

	// Placement-invariant row-intensity profile.
	rows := g.SetTotals()
	rowProfile := ResampleNorm(rows, 24)
	sort.Float64s(rowProfile)
	x = append(x, rowProfile...)

	// Scalar statistics: duty cycle, variability, active/hot rows.
	norm := ResampleNorm(cols, len(cols))
	duty, m, v := 0.0, 0.0, 0.0
	for _, c := range norm {
		if c > 0.5 {
			duty++
		}
		m += c
	}
	m /= float64(len(norm))
	for _, c := range norm {
		v += (c - m) * (c - m)
	}
	v /= float64(len(norm))
	activeRows, hotRows := 0.0, 0.0
	maxRow := 0
	for _, rv := range rows {
		if rv > maxRow {
			maxRow = rv
		}
	}
	for _, rv := range rows {
		if rv > 0 {
			activeRows++
		}
		if maxRow > 0 && float64(rv) > 0.8*float64(maxRow) {
			hotRows++
		}
	}
	// Dominant-period features: the lag of the strongest
	// autocorrelation peak is a direct estimate of the victim's
	// working-set pass period — the most class-identifying scalar of
	// all. Encoded as both a normalized lag and one-hot-ish bins so a
	// linear model can use it.
	peakLag, peakVal := 0, 0.0
	for lag := 1; lag < len(ac); lag++ { // skip lag 1 smear? keep from 2
		if lag >= 2 && ac[lag-1] > peakVal {
			peakLag, peakVal = lag, ac[lag-1]
		}
	}
	x = append(x, 2*float64(peakLag)/32, 2*peakVal)
	lagBins := make([]float64, 8)
	if peakLag > 0 {
		b := (peakLag - 2) * 8 / 31
		if b >= 0 && b < 8 {
			lagBins[b] = 2
		}
	}
	x = append(x, lagBins...)

	// Per-epoch concurrency: how many rows are active within a single
	// sweep, on average. An app streaming seven arrays in lockstep
	// (blackscholes) lights several regions at once; a three-array
	// streamer (vectoradd) fewer; a tiled kernel fewer still. Unlike
	// the cumulative active-row count, this does not saturate.
	var perEpochActive float64
	activeEpochs := 0
	for _, row := range g.Miss {
		n := 0
		for _, v := range row {
			if v > 0 {
				n++
			}
		}
		if n > 0 {
			perEpochActive += float64(n) / float64(len(row))
			activeEpochs++
		}
	}
	if activeEpochs > 0 {
		perEpochActive /= float64(activeEpochs)
	}

	// Hot-row share: fraction of all misses concentrated in the single
	// hottest row — large for apps with a small always-resident lookup
	// table (histogram bins, quasirandom direction numbers), and the
	// ratio differs with how hard that table is hammered.
	hotShare := 0.0
	if t := g.Total(); t > 0 {
		hotShare = float64(maxRow) / float64(t)
	}

	x = append(x,
		2*duty/float64(len(norm)),
		2*m,
		2*math.Sqrt(v),
		2*activeRows/float64(len(rows)),
		2*hotRows/float64(len(rows)),
		math.Log1p(float64(g.Total()))/10,
		3*perEpochActive,
		3*hotShare*float64(len(rows))/32, // scale-free in row count
	)

	// The raw downsampled picture, low-weighted: the paper classifies
	// images; here placement scatter makes pixels noisy, so they only
	// break ties the invariants cannot.
	for _, v := range g.Image(16, 12) {
		x = append(x, 0.3*v)
	}
	x = append(x, ResampleNorm(cols, 24)...)
	return x
}

// Autocorr returns the normalized autocorrelation of the mean-removed
// series at lags 1..maxLag. It is invariant to phase shifts, which is
// exactly what varies between runs of the same victim.
func Autocorr(series []int, maxLag int) []float64 {
	if maxLag < 0 {
		maxLag = 0
	}
	n := len(series)
	xs := make([]float64, n)
	var mean float64
	for i, v := range series {
		xs[i] = float64(v)
		mean += xs[i]
	}
	if n > 0 {
		mean /= float64(n)
	}
	var r0 float64
	for i := range xs {
		xs[i] -= mean
		r0 += xs[i] * xs[i]
	}
	out := make([]float64, maxLag)
	if r0 == 0 {
		return out
	}
	for lag := 1; lag <= maxLag; lag++ {
		var r float64
		for i := 0; i+lag < n; i++ {
			r += xs[i] * xs[i+lag]
		}
		out[lag-1] = r / r0
	}
	return out
}

// ResampleNorm average-pools integer samples into n buckets and
// normalizes the result to a maximum of 1.
func ResampleNorm(xs []int, n int) []float64 {
	out := make([]float64, n)
	cnt := make([]int, n)
	if len(xs) == 0 {
		return out
	}
	for i, v := range xs {
		b := i * n / len(xs)
		out[b] += float64(v)
		cnt[b]++
	}
	maxV := 0.0
	for i := range out {
		if cnt[i] > 0 {
			out[i] /= float64(cnt[i])
		}
		if out[i] > maxV {
			maxV = out[i]
		}
	}
	if maxV > 0 {
		for i := range out {
			out[i] /= maxV
		}
	}
	return out
}
