package memgram

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"spybox/internal/xrand"
)

func sample() *Gram {
	g, err := New([][]int{
		{0, 5, 0, 1},
		{2, 0, 0, 1},
		{0, 8, 0, 1},
	}, "test")
	if err != nil {
		panic(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, ""); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, err := New([][]int{{1, 2}, {1}}, ""); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := New([][]int{{}}, ""); err == nil {
		t.Error("zero sets accepted")
	}
}

func TestDimensionsAndTotals(t *testing.T) {
	g := sample()
	if g.Epochs() != 3 || g.Sets() != 4 {
		t.Errorf("dims %dx%d", g.Epochs(), g.Sets())
	}
	if g.Total() != 18 {
		t.Errorf("Total = %d", g.Total())
	}
	if g.MaxMiss() != 8 {
		t.Errorf("MaxMiss = %d", g.MaxMiss())
	}
	wantSet := []int{2, 13, 0, 3}
	for i, v := range g.SetTotals() {
		if v != wantSet[i] {
			t.Errorf("SetTotals[%d] = %d, want %d", i, v, wantSet[i])
		}
	}
	wantEpoch := []int{6, 3, 9}
	for i, v := range g.EpochTotals() {
		if v != wantEpoch[i] {
			t.Errorf("EpochTotals[%d] = %d, want %d", i, v, wantEpoch[i])
		}
	}
}

func TestImageNormalization(t *testing.T) {
	g := sample()
	img := g.Image(3, 4)
	if len(img) != 12 {
		t.Fatalf("image length %d", len(img))
	}
	maxV := 0.0
	for _, v := range img {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v out of [0,1]", v)
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV != 1 {
		t.Errorf("max pixel %v, want 1 after normalization", maxV)
	}
}

func TestImageDownsamples(t *testing.T) {
	// A 100x50 gram downsampled to 10x5 must preserve a hot corner.
	miss := make([][]int, 100)
	for e := range miss {
		miss[e] = make([]int, 50)
	}
	miss[0][0] = 100
	g, _ := New(miss, "")
	img := g.Image(10, 5)
	if img[0] != 1 {
		t.Errorf("hot corner lost: %v", img[0])
	}
}

func TestImagePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero dims")
		}
	}()
	sample().Image(0, 4)
}

func TestRenderASCII(t *testing.T) {
	out := sample().RenderASCII(10, 10)
	if !strings.Contains(out, "test") {
		t.Error("label missing from render")
	}
	if len(strings.Split(strings.TrimRight(out, "\n"), "\n")) < 4 {
		t.Errorf("render too short:\n%s", out)
	}
}

func TestWritePGM(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n3 4\n255\n")) {
		t.Errorf("bad PGM header: %q", out[:20])
	}
	if len(out) != len("P5\n3 4\n255\n")+12 {
		t.Errorf("PGM payload size %d", len(out))
	}
}

func TestWritePGMAllZero(t *testing.T) {
	g, _ := New([][]int{{0, 0}}, "")
	var buf bytes.Buffer
	if err := g.WritePGM(&buf); err != nil {
		t.Fatal(err) // must not divide by zero
	}
}

func TestActiveBursts(t *testing.T) {
	mk := func(totals []int) *Gram {
		miss := make([][]int, len(totals))
		for i, v := range totals {
			miss[i] = []int{v}
		}
		g, _ := New(miss, "")
		return g
	}
	cases := []struct {
		totals []int
		want   int
	}{
		{[]int{10, 10, 0, 0, 10, 10}, 2},
		{[]int{10, 10, 10}, 1},
		{[]int{0, 0, 0}, 0},
		{[]int{10, 0, 10}, 1},              // gap of 1 < minGap 2
		{[]int{10, 0, 0, 10, 0, 0, 10}, 3}, // three bursts
	}
	for _, c := range cases {
		if got := mk(c.totals).ActiveBursts(0.5, 2); got != c.want {
			t.Errorf("ActiveBursts(%v) = %d, want %d", c.totals, got, c.want)
		}
	}
}

// Property: Total equals the sum of SetTotals and of EpochTotals.
func TestTotalConsistencyProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := xrand.New(uint64(seed))
		epochs, sets := rng.Intn(20)+1, rng.Intn(20)+1
		miss := make([][]int, epochs)
		for e := range miss {
			miss[e] = make([]int, sets)
			for s := range miss[e] {
				miss[e][s] = rng.Intn(17)
			}
		}
		g, err := New(miss, "")
		if err != nil {
			return false
		}
		sumSet, sumEpoch := 0, 0
		for _, v := range g.SetTotals() {
			sumSet += v
		}
		for _, v := range g.EpochTotals() {
			sumEpoch += v
		}
		return sumSet == g.Total() && sumEpoch == g.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
