package memgram

import (
	"math"
	"testing"

	"spybox/internal/xrand"
)

// periodic builds a gram whose epoch activity repeats with the given
// period.
func periodic(epochs, sets, period int) *Gram {
	miss := make([][]int, epochs)
	for e := range miss {
		miss[e] = make([]int, sets)
		if e%period == 0 {
			for s := range miss[e] {
				miss[e][s] = 10
			}
		}
	}
	g, _ := New(miss, "periodic")
	return g
}

func TestAutocorrFindsPeriod(t *testing.T) {
	for _, period := range []int{3, 5, 8} {
		g := periodic(64, 4, period)
		ac := Autocorr(g.EpochTotals(), 20)
		best, bestV := 0, math.Inf(-1)
		for lag := 2; lag <= 20; lag++ {
			if ac[lag-1] > bestV {
				best, bestV = lag, ac[lag-1]
			}
		}
		if best != period {
			t.Errorf("period %d: autocorr peak at lag %d", period, best)
		}
	}
}

func TestAutocorrEdgeCases(t *testing.T) {
	if got := Autocorr(nil, 5); len(got) != 5 {
		t.Errorf("nil series: %v", got)
	}
	flat := Autocorr([]int{7, 7, 7, 7}, 3)
	for _, v := range flat {
		if v != 0 {
			t.Errorf("constant series autocorr = %v, want 0", flat)
		}
	}
	if got := Autocorr([]int{1, 2}, -1); len(got) != 0 {
		t.Errorf("negative maxLag: %v", got)
	}
}

func TestAutocorrPhaseInvariance(t *testing.T) {
	// The same periodic signal shifted in phase must produce nearly
	// the same autocorrelation — the property the classifier needs.
	mk := func(phase int) []int {
		xs := make([]int, 60)
		for i := range xs {
			if (i+phase)%6 == 0 {
				xs[i] = 10
			}
		}
		return xs
	}
	a, b := Autocorr(mk(0), 15), Autocorr(mk(3), 15)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 0.15 {
			t.Errorf("lag %d: autocorr differs across phases: %.2f vs %.2f", i+1, a[i], b[i])
		}
	}
}

func TestResampleNorm(t *testing.T) {
	out := ResampleNorm([]int{0, 0, 10, 10, 20, 20}, 3)
	if len(out) != 3 {
		t.Fatalf("len %d", len(out))
	}
	if out[0] != 0 || out[2] != 1 {
		t.Errorf("resample = %v", out)
	}
	if out[1] != 0.5 {
		t.Errorf("middle bucket %v, want 0.5", out[1])
	}
	if got := ResampleNorm(nil, 4); len(got) != 4 {
		t.Errorf("nil input: %v", got)
	}
}

func TestFeaturesFixedLength(t *testing.T) {
	rng := xrand.New(5)
	mkRandom := func(epochs, sets int) *Gram {
		miss := make([][]int, epochs)
		for e := range miss {
			miss[e] = make([]int, sets)
			for s := range miss[e] {
				miss[e][s] = rng.Intn(17)
			}
		}
		g, _ := New(miss, "")
		return g
	}
	// Same monitor dimensions -> same feature length, regardless of
	// content; different dimensions also agree because profiles are
	// resampled to fixed sizes.
	l1 := len(mkRandom(48, 96).Features())
	l2 := len(mkRandom(48, 96).Features())
	l3 := len(mkRandom(96, 256).Features())
	if l1 != l2 || l1 != l3 {
		t.Fatalf("feature lengths %d/%d/%d not fixed", l1, l2, l3)
	}
	for _, v := range mkRandom(48, 96).Features() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite feature")
		}
	}
}

func TestFeaturesDarkGram(t *testing.T) {
	miss := make([][]int, 10)
	for e := range miss {
		miss[e] = make([]int, 8)
	}
	g, _ := New(miss, "dark")
	for _, v := range g.Features() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("dark gram produced non-finite feature")
		}
	}
}

func TestFeaturesSeparateClasses(t *testing.T) {
	// A dense continuous gram and a sparse periodic one must land far
	// apart in feature space — the minimum for classification to work.
	dense := periodic(64, 8, 1)
	sparse := periodic(64, 8, 8)
	fd, fs := dense.Features(), sparse.Features()
	var dist float64
	for i := range fd {
		d := fd[i] - fs[i]
		dist += d * d
	}
	if math.Sqrt(dist) < 0.5 {
		t.Errorf("dense and sparse grams only %.3f apart", math.Sqrt(dist))
	}
}
