// Package memgram holds the memorygram data structure — the per-set,
// per-epoch cache-miss picture a Prime+Probe spy records (the paper's
// Figs. 11, 13-15) — together with the downsampling, rendering, and
// feature-extraction helpers the fingerprinting classifier and the
// experiment reports use.
package memgram

import (
	"fmt"
	"io"
	"strings"
)

// Gram is one memorygram: Miss[epoch][set] counts misses the spy saw
// in `set` during probe sweep `epoch`.
type Gram struct {
	Miss  [][]int
	Label string // optional class label (victim application name)
}

// New builds a Gram from a raw miss matrix; rows must be equal length.
func New(miss [][]int, label string) (*Gram, error) {
	if len(miss) == 0 {
		return nil, fmt.Errorf("memgram: empty matrix")
	}
	w := len(miss[0])
	for i, row := range miss {
		if len(row) != w {
			return nil, fmt.Errorf("memgram: ragged row %d (%d vs %d)", i, len(row), w)
		}
	}
	if w == 0 {
		return nil, fmt.Errorf("memgram: zero sets")
	}
	return &Gram{Miss: miss, Label: label}, nil
}

// Epochs returns the number of probe sweeps (the image's time axis).
func (g *Gram) Epochs() int { return len(g.Miss) }

// Sets returns the number of monitored sets (the image's y axis).
func (g *Gram) Sets() int { return len(g.Miss[0]) }

// MaxMiss returns the largest single cell value.
func (g *Gram) MaxMiss() int {
	m := 0
	for _, row := range g.Miss {
		for _, v := range row {
			if v > m {
				m = v
			}
		}
	}
	return m
}

// Total returns the sum of all misses.
func (g *Gram) Total() int {
	t := 0
	for _, row := range g.Miss {
		for _, v := range row {
			t += v
		}
	}
	return t
}

// SetTotals sums misses per set (Fig. 13's histogram data).
func (g *Gram) SetTotals() []int {
	t := make([]int, g.Sets())
	for _, row := range g.Miss {
		for s, v := range row {
			t[s] += v
		}
	}
	return t
}

// EpochTotals sums misses per epoch (activity over time).
func (g *Gram) EpochTotals() []int {
	t := make([]int, g.Epochs())
	for e, row := range g.Miss {
		for _, v := range row {
			t[e] += v
		}
	}
	return t
}

// Image downsamples the gram into a w x h float image in [0,1],
// row-major with h rows (sets) and w columns (epochs), average-pooled
// and normalized by the gram's own maximum. This fixed-size view is
// the classifier's input, mirroring the paper's image classifier over
// memorygram pictures.
func (g *Gram) Image(w, h int) []float64 {
	if w <= 0 || h <= 0 {
		panic("memgram: non-positive image dims")
	}
	img := make([]float64, w*h)
	counts := make([]int, w*h)
	epochs, sets := g.Epochs(), g.Sets()
	for e, row := range g.Miss {
		x := e * w / epochs
		for s, v := range row {
			y := s * h / sets
			img[y*w+x] += float64(v)
			counts[y*w+x]++
		}
	}
	maxV := 0.0
	for i := range img {
		if counts[i] > 0 {
			img[i] /= float64(counts[i])
		}
		if img[i] > maxV {
			maxV = img[i]
		}
	}
	if maxV > 0 {
		for i := range img {
			img[i] /= maxV
		}
	}
	return img
}

// RenderASCII draws the gram as character art (sets on y, epochs on
// x), downsampled to at most maxW x maxH cells. Intensity ramp:
// " .:-=+*#%@".
func (g *Gram) RenderASCII(maxW, maxH int) string {
	w, h := g.Epochs(), g.Sets()
	if w > maxW {
		w = maxW
	}
	if h > maxH {
		h = maxH
	}
	img := g.Image(w, h)
	ramp := " .:-=+*#%@"
	var b strings.Builder
	if g.Label != "" {
		fmt.Fprintf(&b, "memorygram %q  (%d sets x %d epochs, %d misses)\n",
			g.Label, g.Sets(), g.Epochs(), g.Total())
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := img[y*w+x]
			idx := int(v * float64(len(ramp)-1))
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WritePGM writes the gram as a binary PGM (P5) image, sets as rows,
// epochs as columns, for viewing with any image tool.
func (g *Gram) WritePGM(w io.Writer) error {
	epochs, sets := g.Epochs(), g.Sets()
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", epochs, sets); err != nil {
		return err
	}
	maxV := g.MaxMiss()
	if maxV == 0 {
		maxV = 1
	}
	row := make([]byte, epochs)
	for s := 0; s < sets; s++ {
		for e := 0; e < epochs; e++ {
			row[e] = byte(g.Miss[e][s] * 255 / maxV)
		}
		if _, err := w.Write(row); err != nil {
			return err
		}
	}
	return nil
}

// ActiveBursts counts runs of consecutive "active" epochs separated
// by quiet gaps, where an epoch is active if its total misses exceed
// frac of the maximum epoch total. This is how the Fig. 15 experiment
// counts training epochs from the memorygram.
func (g *Gram) ActiveBursts(frac float64, minGap int) int {
	totals := g.EpochTotals()
	maxT := 0
	for _, v := range totals {
		if v > maxT {
			maxT = v
		}
	}
	if maxT == 0 {
		return 0
	}
	thresh := frac * float64(maxT)
	bursts := 0
	quiet := minGap // so a burst at epoch 0 counts
	for _, v := range totals {
		if float64(v) >= thresh {
			if quiet >= minGap {
				bursts++
			}
			quiet = 0
		} else {
			quiet++
		}
	}
	return bursts
}
