package vmem

import (
	"testing"
	"testing/quick"

	"spybox/internal/arch"
	"spybox/internal/xrand"
)

func newSpace(seed uint64) (*Space, *PhysMem) {
	phys := NewPhysMem(arch.NumGPUs)
	return NewSpace(0, phys, xrand.New(seed)), phys
}

func TestAllocTranslate(t *testing.T) {
	s, _ := newSpace(1)
	base, err := s.Alloc(3*arch.PageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	if base == 0 {
		t.Fatal("VA 0 should stay unmapped")
	}
	for off := uint64(0); off < 3*arch.PageSize; off += 4096 {
		pa, err := s.Translate(base + arch.VA(off))
		if err != nil {
			t.Fatalf("Translate(+%#x): %v", off, err)
		}
		if pa.HomeDevice() != 2 {
			t.Fatalf("page homed on %v, want GPU2", pa.HomeDevice())
		}
		// Page offset must be preserved by the mapping.
		if uint64(pa)%arch.PageSize != off%arch.PageSize {
			t.Fatalf("page offset not preserved at +%#x", off)
		}
	}
}

func TestTranslateUnmappedFails(t *testing.T) {
	s, _ := newSpace(1)
	if _, err := s.Translate(0); err == nil {
		t.Error("translate of VA 0 should fail")
	}
	if _, err := s.Translate(arch.VA(1 << 40)); err == nil {
		t.Error("translate of wild VA should fail")
	}
}

func TestAllocValidation(t *testing.T) {
	s, _ := newSpace(1)
	if _, err := s.Alloc(0, 0); err == nil {
		t.Error("zero-size alloc should fail")
	}
	if _, err := s.Alloc(4096, arch.DeviceID(99)); err == nil {
		t.Error("bad device should fail")
	}
}

func TestAllocSubPageRoundsUp(t *testing.T) {
	s, _ := newSpace(1)
	base, err := s.Alloc(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The whole page is mapped.
	if _, err := s.Translate(base + arch.VA(arch.PageSize-1)); err != nil {
		t.Errorf("tail of rounded-up page unmapped: %v", err)
	}
	if s.MappedPages() != 1 {
		t.Errorf("MappedPages = %d", s.MappedPages())
	}
}

func TestRandomizedPlacement(t *testing.T) {
	s, _ := newSpace(7)
	base, _ := s.Alloc(16*arch.PageSize, 0)
	// Consecutive virtual pages should NOT be physically consecutive
	// (that's the property that forces eviction-set discovery).
	consecutive := 0
	prev, _ := s.Translate(base)
	for i := 1; i < 16; i++ {
		pa, _ := s.Translate(base + arch.VA(i*arch.PageSize))
		if uint64(pa) == uint64(prev)+arch.PageSize {
			consecutive++
		}
		prev = pa
	}
	if consecutive > 2 {
		t.Errorf("%d of 15 page transitions physically consecutive; placement not randomized", consecutive)
	}
}

func TestPlacementReproducibleAcrossRuns(t *testing.T) {
	// Same seed + same allocation sequence => same frames. This is
	// the cross-run stability of eviction sets the paper reports.
	s1, _ := newSpace(42)
	s2, _ := newSpace(42)
	b1, _ := s1.Alloc(8*arch.PageSize, 1)
	b2, _ := s2.Alloc(8*arch.PageSize, 1)
	for i := 0; i < 8; i++ {
		p1, _ := s1.Translate(b1 + arch.VA(i*arch.PageSize))
		p2, _ := s2.Translate(b2 + arch.VA(i*arch.PageSize))
		if p1 != p2 {
			t.Fatalf("page %d placed differently across identical runs", i)
		}
	}
}

func TestDistinctProcessesGetDistinctFrames(t *testing.T) {
	phys := NewPhysMem(arch.NumGPUs)
	s1 := NewSpace(1, phys, xrand.New(10))
	s2 := NewSpace(2, phys, xrand.New(20))
	b1, _ := s1.Alloc(32*arch.PageSize, 0)
	b2, _ := s2.Alloc(32*arch.PageSize, 0)
	frames := make(map[uint64]bool)
	for i := 0; i < 32; i++ {
		pa, _ := s1.Translate(b1 + arch.VA(i*arch.PageSize))
		frames[pa.FrameNumber()] = true
	}
	for i := 0; i < 32; i++ {
		pa, _ := s2.Translate(b2 + arch.VA(i*arch.PageSize))
		if frames[pa.FrameNumber()] {
			t.Fatal("two processes share a physical frame")
		}
	}
	if phys.FramesInUse(0) != 64 {
		t.Errorf("FramesInUse = %d, want 64", phys.FramesInUse(0))
	}
}

func TestReadWrite(t *testing.T) {
	s, _ := newSpace(3)
	base, _ := s.Alloc(2*arch.PageSize, 0)
	s.WriteU64(base+8, 0xdeadbeefcafe)
	if got := s.ReadU64(base + 8); got != 0xdeadbeefcafe {
		t.Fatalf("ReadU64 = %#x", got)
	}
	if got := s.ReadU64(base); got != 0 {
		t.Fatalf("fresh memory = %#x, want 0", got)
	}
	// Cross-page independence.
	s.WriteU64(base+arch.VA(arch.PageSize), 7)
	if got := s.ReadU64(base + arch.VA(arch.PageSize)); got != 7 {
		t.Fatal("second page write lost")
	}
}

func TestFree(t *testing.T) {
	s, phys := newSpace(4)
	base, _ := s.Alloc(4*arch.PageSize, 0)
	if err := s.Free(base); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Translate(base); err == nil {
		t.Error("freed memory still translates")
	}
	if phys.FramesInUse(0) != 0 {
		t.Errorf("frames leaked: %d", phys.FramesInUse(0))
	}
	if err := s.Free(base); err == nil {
		t.Error("double free should fail")
	}
	if err := s.Free(arch.VA(0x999000)); err == nil {
		t.Error("freeing unknown base should fail")
	}
}

func TestAllocsListing(t *testing.T) {
	s, _ := newSpace(5)
	b1, _ := s.Alloc(arch.PageSize, 0)
	b2, _ := s.Alloc(2*arch.PageSize, 3)
	allocs := s.Allocs()
	if len(allocs) != 2 {
		t.Fatalf("Allocs len = %d", len(allocs))
	}
	if allocs[0].Base != b1 || allocs[0].Dev != 0 {
		t.Errorf("alloc[0] = %+v", allocs[0])
	}
	if allocs[1].Base != b2 || allocs[1].Dev != 3 || allocs[1].Size != 2*arch.PageSize {
		t.Errorf("alloc[1] = %+v", allocs[1])
	}
}

func TestSharedPhysMemVisibleAcrossSpaces(t *testing.T) {
	// Two processes can see each other's data through physical memory
	// only via the same PA (simulating what an owning process wrote
	// being visible to a peer-access read).
	phys := NewPhysMem(arch.NumGPUs)
	s1 := NewSpace(1, phys, xrand.New(1))
	b, _ := s1.Alloc(arch.PageSize, 0)
	s1.WriteU64(b, 12345)
	pa, _ := s1.Translate(b)
	if got := phys.ReadU64(pa); got != 12345 {
		t.Fatalf("physical read = %d", got)
	}
}

// Property: translation is a bijection page-wise — no two mapped
// virtual pages in one space share a frame.
func TestNoFrameAliasingProperty(t *testing.T) {
	f := func(seed uint16, pagesRaw uint8) bool {
		pages := int(pagesRaw)%64 + 1
		s, _ := newSpace(uint64(seed))
		base, err := s.Alloc(uint64(pages)*arch.PageSize, 0)
		if err != nil {
			return false
		}
		seen := make(map[uint64]bool)
		for i := 0; i < pages; i++ {
			pa, err := s.Translate(base + arch.VA(i*arch.PageSize))
			if err != nil || seen[pa.FrameNumber()] {
				return false
			}
			seen[pa.FrameNumber()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFilteredPlacement(t *testing.T) {
	phys := NewPhysMem(arch.NumGPUs)
	evenOnly := func(frame uint64) bool { return frame%2 == 0 }
	s := NewSpaceFiltered(0, phys, xrand.New(30), evenOnly)
	base, err := s.Alloc(16*arch.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		pa, _ := s.Translate(base + arch.VA(i*arch.PageSize))
		_, off := pa.SplitPA()
		if (off/arch.PageSize)%2 != 0 {
			t.Fatalf("page %d placed on odd frame despite filter", i)
		}
	}
	// An unsatisfiable filter fails cleanly rather than spinning.
	never := NewSpaceFiltered(1, phys, xrand.New(31), func(uint64) bool { return false })
	if _, err := never.Alloc(arch.PageSize, 0); err == nil {
		t.Fatal("unsatisfiable placement policy should error")
	}
}
