// Package vmem implements the unified virtual memory of the box:
// per-process virtual address spaces, 64 KB pages, and a machine-wide
// physical memory with a seeded *randomized* frame allocator.
//
// Randomized placement is load-bearing for the reproduction: the L2 is
// physically indexed, so an attacker that knew VA->PA could compute
// set indices directly. Because frames land in effectively arbitrary
// places (and the L2 additionally hashes frame bits), the attacker
// must *discover* eviction sets by timing, exactly as in the paper.
// The paper also observes that discovered sets stay valid across runs
// when the allocation size is unchanged; the allocator reproduces that
// by deriving placement deterministically from (process seed,
// allocation sequence), not from global machine state.
package vmem

import (
	"encoding/binary"
	"fmt"

	"spybox/internal/arch"
	"spybox/internal/xrand"
)

// FramesPerGPU is how many page frames each GPU's HBM window holds.
const FramesPerGPU = arch.HBMBytesPerGPU / arch.PageSize

// PhysMem is the machine-wide physical memory: frame occupancy per
// device plus lazily materialized backing bytes. Backing matters
// because the attacks pointer-chase through real data (each word holds
// the index of the next element).
type PhysMem struct {
	used    []map[uint64]bool // per device: frame-within-device -> taken
	backing map[uint64][]byte // machine frame number -> page bytes
	free    [][]byte          // recycled page buffers (see Reset/freeFrame)
}

// NewPhysMem returns an empty physical memory for a box of numGPUs
// devices (the machine profile's GPU count).
func NewPhysMem(numGPUs int) *PhysMem {
	p := &PhysMem{
		used:    make([]map[uint64]bool, numGPUs),
		backing: make(map[uint64][]byte),
	}
	for i := range p.used {
		p.used[i] = make(map[uint64]bool)
	}
	return p
}

// NumGPUs returns how many devices this physical memory spans.
func (p *PhysMem) NumGPUs() int { return len(p.used) }

// allocFrame claims a random free frame on dev that satisfies allow
// (nil means any frame), drawing from rng.
func (p *PhysMem) allocFrame(dev arch.DeviceID, rng *xrand.Source, allow func(uint64) bool) (arch.PA, error) {
	if dev < 0 || int(dev) >= len(p.used) {
		return 0, fmt.Errorf("vmem: no such device %d (box has %d GPUs)", int(dev), len(p.used))
	}
	taken := p.used[dev]
	if len(taken) >= FramesPerGPU {
		return 0, fmt.Errorf("vmem: %v HBM exhausted", dev)
	}
	for attempts := 0; attempts < FramesPerGPU*64; attempts++ {
		f := uint64(rng.Intn(FramesPerGPU))
		if !taken[f] && (allow == nil || allow(f)) {
			taken[f] = true
			return arch.MakePA(dev, f*arch.PageSize), nil
		}
	}
	return 0, fmt.Errorf("vmem: %v: no free frame satisfies the placement policy", dev)
}

// freeFrame releases the frame at base (a page-aligned PA). Its
// backing buffer, if materialized, goes to the recycle list.
func (p *PhysMem) freeFrame(base arch.PA) {
	dev, off := base.SplitPA()
	delete(p.used[dev], off/arch.PageSize)
	fn := base.FrameNumber()
	if b, ok := p.backing[fn]; ok {
		p.free = append(p.free, b)
		delete(p.backing, fn)
	}
}

// page returns the backing bytes for the frame containing pa,
// materializing a zero page on first touch (from the recycle list
// when possible — re-zeroed, so recycled pages are indistinguishable
// from fresh ones).
func (p *PhysMem) page(pa arch.PA) []byte {
	fn := pa.FrameNumber()
	b, ok := p.backing[fn]
	if !ok {
		if n := len(p.free); n > 0 {
			b = p.free[n-1]
			p.free = p.free[:n-1]
			clear(b)
		} else {
			b = make([]byte, arch.PageSize) //spylint:allow hotalloc first-touch page materialization; pooled machines recycle buffers, so steady-state trials never reach this branch
		}
		p.backing[fn] = b
	}
	return b
}

// Reset releases every frame and every mapping, returning the physical
// memory to its freshly constructed (empty) state. Backing buffers are
// kept on the recycle list so a pooled machine's next trial reuses
// them instead of reallocating.
func (p *PhysMem) Reset() {
	for i := range p.used {
		clear(p.used[i])
	}
	// The free list's order is unobservable: recycled buffers are
	// zeroed page by page on reuse (page() clears before handing out),
	// so which buffer backs which frame next trial cannot leak.
	//spylint:allow detrand recycle-list order is unobservable, buffers are zeroed on reuse
	for fn, b := range p.backing {
		p.free = append(p.free, b)
		delete(p.backing, fn)
	}
}

// ReadU64 reads the 8-byte word at pa.
func (p *PhysMem) ReadU64(pa arch.PA) uint64 {
	off := uint64(pa) % arch.PageSize
	if off+8 > arch.PageSize {
		panic("vmem: unaligned word straddles a page")
	}
	return binary.LittleEndian.Uint64(p.page(pa)[off:])
}

// WriteU64 writes the 8-byte word at pa.
func (p *PhysMem) WriteU64(pa arch.PA, v uint64) {
	off := uint64(pa) % arch.PageSize
	if off+8 > arch.PageSize {
		panic("vmem: unaligned word straddles a page")
	}
	binary.LittleEndian.PutUint64(p.page(pa)[off:], v)
}

// FramesInUse returns the number of allocated frames on dev.
func (p *PhysMem) FramesInUse(dev arch.DeviceID) int { return len(p.used[dev]) }

// Alloc describes one virtual allocation.
type Alloc struct {
	Base arch.VA
	Size uint64
	Dev  arch.DeviceID
}

// Space is one process's virtual address space.
type Space struct {
	pid    arch.ProcessID
	phys   *PhysMem
	rng    *xrand.Source
	allow  func(uint64) bool  // frame placement policy, nil = any
	table  map[uint64]arch.PA // virtual page number -> frame base PA
	brk    arch.VA
	allocs []Alloc
}

// NewSpace creates an address space over phys. The rng governs frame
// placement for this process; seed it from the process seed so that
// re-running the same allocation sequence reproduces the same
// placement (the cross-run stability the paper reports).
func NewSpace(pid arch.ProcessID, phys *PhysMem, rng *xrand.Source) *Space {
	return NewSpaceFiltered(pid, phys, rng, nil)
}

// NewSpaceFiltered is NewSpace with a frame placement policy: every
// frame given to this space must satisfy allow. MIG-style L2/memory
// partitioning (Sec. VII) is modelled by confining each tenant's
// frames to a disjoint slice of the physical address space.
func NewSpaceFiltered(pid arch.ProcessID, phys *PhysMem, rng *xrand.Source, allow func(uint64) bool) *Space {
	return &Space{
		pid:   pid,
		phys:  phys,
		rng:   rng,
		allow: allow,
		table: make(map[uint64]arch.PA),
		brk:   arch.VA(arch.PageSize), // keep VA 0 unmapped
	}
}

// PID returns the owning process ID.
func (s *Space) PID() arch.ProcessID { return s.pid }

// Alloc maps size bytes of fresh virtual memory whose frames live on
// dev, returning the page-aligned base VA.
func (s *Space) Alloc(size uint64, dev arch.DeviceID) (arch.VA, error) {
	if size == 0 {
		return 0, fmt.Errorf("vmem: zero-size allocation")
	}
	if !dev.Valid() {
		return 0, fmt.Errorf("vmem: invalid device %d", int(dev))
	}
	pages := (size + arch.PageSize - 1) / arch.PageSize
	base := s.brk
	for i := uint64(0); i < pages; i++ {
		frame, err := s.phys.allocFrame(dev, s.rng, s.allow)
		if err != nil {
			// Unwind partial mapping.
			for j := uint64(0); j < i; j++ {
				vpn := (base + arch.VA(j*arch.PageSize)).PageNumber()
				s.phys.freeFrame(s.table[vpn])
				delete(s.table, vpn)
			}
			return 0, err
		}
		s.table[(base + arch.VA(i*arch.PageSize)).PageNumber()] = frame
	}
	s.brk += arch.VA(pages * arch.PageSize)
	s.allocs = append(s.allocs, Alloc{Base: base, Size: pages * arch.PageSize, Dev: dev})
	return base, nil
}

// Free unmaps the allocation starting at base. Only whole allocations
// can be freed, as with cudaFree.
func (s *Space) Free(base arch.VA) error {
	for i, a := range s.allocs {
		if a.Base == base {
			for off := uint64(0); off < a.Size; off += arch.PageSize {
				vpn := (base + arch.VA(off)).PageNumber()
				s.phys.freeFrame(s.table[vpn])
				delete(s.table, vpn)
			}
			s.allocs = append(s.allocs[:i], s.allocs[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("vmem: Free(%#x): no such allocation", uint64(base))
}

// Translate resolves a virtual address to its physical address.
func (s *Space) Translate(va arch.VA) (arch.PA, error) {
	frame, ok := s.table[va.PageNumber()]
	if !ok {
		return 0, fmt.Errorf("vmem: pid %d: unmapped address %#x", s.pid, uint64(va))
	}
	return frame + arch.PA(va.PageOffset()), nil
}

// MustTranslate is Translate that panics on fault (the simulated
// equivalent of a device-side segfault).
func (s *Space) MustTranslate(va arch.VA) arch.PA {
	pa, err := s.Translate(va)
	if err != nil {
		panic(err)
	}
	return pa
}

// ReadU64 loads the word at va through the page table.
func (s *Space) ReadU64(va arch.VA) uint64 { return s.phys.ReadU64(s.MustTranslate(va)) }

// WriteU64 stores the word at va through the page table.
func (s *Space) WriteU64(va arch.VA, v uint64) { s.phys.WriteU64(s.MustTranslate(va), v) }

// Allocs returns a copy of the live allocations.
func (s *Space) Allocs() []Alloc {
	return append([]Alloc(nil), s.allocs...)
}

// MappedPages returns the number of mapped pages.
func (s *Space) MappedPages() int { return len(s.table) }
