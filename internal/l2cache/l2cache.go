// Package l2cache models the P100's L2 data cache: physically indexed,
// set-associative, 128 B lines, true LRU (the paper's reverse
// engineering in Table I finds 2048 sets x 16 ways with LRU-like
// deterministic replacement).
//
// Two behaviours matter for the attacks and are modelled faithfully:
//
//   - Physical indexing with an index hash. The attacker does not know
//     virtual-to-physical placement, so it cannot compute which set an
//     address lands in; but the line-offset-within-page bits are used
//     verbatim, so addresses within one page index *consecutive* sets.
//     The hash only mixes physical frame bits into the index bits above
//     the page, exactly the structure the paper exploits ("the data
//     belonging to a page is indexed consecutively in the cache").
//
//   - Deterministic LRU. Accessing 16 distinct conflicting lines then a
//     17th always evicts the oldest, which is what makes eviction-set
//     discovery (Alg. 1) and the every-16th-access eviction staircase
//     (Fig. 5) work.
//
// The cache is not safe for concurrent use; the simulation engine
// serializes all accesses machine-wide.
package l2cache

import (
	"fmt"
	"math/bits"

	"spybox/internal/arch"
	"spybox/internal/xrand"
)

// ReplacementPolicy selects how a victim way is chosen on a miss in a
// full set.
type ReplacementPolicy int

const (
	// LRU evicts the least recently used way (paper-observed policy).
	LRU ReplacementPolicy = iota
	// RandomRepl evicts a uniformly random way. Used by the ablation
	// benches to show the attack degrading under randomized
	// replacement (a proposed class of defense).
	RandomRepl
)

// String names the policy for reports.
func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case RandomRepl:
		return "random"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config fixes a cache geometry. The zero Config is invalid; use
// P100Config for the real geometry or a smaller one in unit tests.
type Config struct {
	Sets     int // number of sets, power of two
	Ways     int // associativity
	LineSize int // bytes per line, power of two
	PageSize int // bytes per page (for index hashing), power of two
	Policy   ReplacementPolicy
	// HashIndex enables mixing of frame bits into the above-page index
	// bits. The real hardware hashes; disabling it is an ablation.
	HashIndex bool
}

// P100Config returns the geometry of the Tesla P100 L2 as reverse
// engineered in the paper (Table I).
func P100Config() Config {
	return FromProfile(arch.P100DGX1())
}

// FromProfile builds the cache geometry of an architecture profile:
// the profile's L2 shape over the global VM page size, with the
// hardware's LRU policy and index hash (both of which remain
// per-machine ablations via the Config fields).
func FromProfile(p arch.Profile) Config {
	return Config{
		Sets:      p.L2Sets,
		Ways:      p.L2Ways,
		LineSize:  p.L2LineSize,
		PageSize:  arch.PageSize,
		Policy:    LRU,
		HashIndex: true,
	}
}

// Validate reports a descriptive error for malformed geometry.
func (c Config) Validate() error {
	switch {
	case c.Sets <= 0 || c.Sets&(c.Sets-1) != 0:
		return fmt.Errorf("l2cache: Sets must be a positive power of two, got %d", c.Sets)
	case c.Ways <= 0:
		return fmt.Errorf("l2cache: Ways must be positive, got %d", c.Ways)
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("l2cache: LineSize must be a positive power of two, got %d", c.LineSize)
	case c.PageSize < c.LineSize || c.PageSize&(c.PageSize-1) != 0:
		return fmt.Errorf("l2cache: PageSize must be a power of two >= LineSize, got %d", c.PageSize)
	}
	return nil
}

// SizeBytes returns the cache capacity implied by the geometry.
func (c Config) SizeBytes() int { return c.Sets * c.Ways * c.LineSize }

// LinesPerPage returns how many cache lines one page holds.
func (c Config) LinesPerPage() int { return c.PageSize / c.LineSize }

// way is one cache line slot.
type way struct {
	valid bool
	tag   uint64
	used  uint64 // global LRU stamp
}

// SetStats accumulates per-set hit/miss counts. The side channel's
// memorygram is, in essence, the time series of these counters as seen
// through the spy's probes.
type SetStats struct {
	Hits, Misses uint64
}

// Cache is one GPU's L2.
type Cache struct {
	//spylint:allow resetcomplete geometry config is fixed at construction; Reset rewinds contents
	cfg Config
	// ways holds every line slot as one flat array (set i occupies
	// ways[i*Ways:(i+1)*Ways]): one allocation per cache instead of
	// one per set, and Flush is a single memclr — both of which matter
	// once machines are pooled and reset between trials.
	ways      []way
	stamp     uint64
	rng       *xrand.Source // used only by RandomRepl
	stats     []SetStats
	hits      uint64
	misses    uint64
	fills     uint64
	evictions uint64

	// partWays restricts fills to the first partWays ways of every set
	// while a runtime partition is active (0 = off, the whole set). The
	// remaining ways stay invalid after the partition flush, shrinking
	// the effective associativity — the paper's cache-partitioning
	// mitigation as a live defense action rather than a build-time
	// config.
	partWays int

	//spylint:allow resetcomplete derived geometry, recomputed only when cfg changes
	lineShift int
	//spylint:allow resetcomplete derived geometry, recomputed only when cfg changes
	setMask uint64
	// pageLines is the number of lines per page.
	//spylint:allow resetcomplete derived geometry, recomputed only when cfg changes
	pageLines uint64
	// regions is sets / linesPerPage, >=1.
	//spylint:allow resetcomplete derived geometry, recomputed only when cfg changes
	regions uint64
}

// New builds a cache with the given geometry. The rng seeds random
// replacement only and may be nil when Policy is LRU.
func New(cfg Config, rng *xrand.Source) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == RandomRepl && rng == nil {
		return nil, fmt.Errorf("l2cache: random replacement requires an rng")
	}
	c := &Cache{
		cfg:       cfg,
		ways:      make([]way, cfg.Sets*cfg.Ways),
		rng:       rng,
		stats:     make([]SetStats, cfg.Sets),
		lineShift: bits.TrailingZeros64(uint64(cfg.LineSize)),
		setMask:   uint64(cfg.Sets - 1),
		pageLines: uint64(cfg.LinesPerPage()),
	}
	c.regions = 1
	if uint64(cfg.Sets) > c.pageLines {
		c.regions = uint64(cfg.Sets) / c.pageLines
	}
	return c, nil
}

// set returns the way slots of one set.
func (c *Cache) set(i int) []way {
	return c.ways[i*c.cfg.Ways : (i+1)*c.cfg.Ways]
}

// MustNew is New that panics on error, for fixed known-good configs.
func MustNew(cfg Config, rng *xrand.Source) *Cache {
	c, err := New(cfg, rng)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// mix64 is a fast invertible mixer (Stafford variant 13) used for the
// index hash. It stands in for the undocumented hardware hash: the
// attacker must treat set placement of each page as opaque.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SetIndex returns the set the physical address maps to. Within one
// page the mapping is consecutive; across pages the hash scatters each
// page into one of the Sets/LinesPerPage aligned page-sized regions.
func (c *Cache) SetIndex(pa arch.PA) int {
	line := uint64(pa) >> c.lineShift
	idx := line & c.setMask
	if c.cfg.HashIndex && c.regions > 1 {
		frame := uint64(pa) / uint64(c.cfg.PageSize)
		region := mix64(frame) % c.regions
		// Replace the above-page index bits with the hashed region.
		idx = (idx & (c.pageLines - 1)) | region*c.pageLines
	}
	return int(idx)
}

// tagOf returns the tag stored for a line (everything above the line
// offset; the set index is not folded out so aliasing is impossible).
func (c *Cache) tagOf(pa arch.PA) uint64 {
	return uint64(pa) >> c.lineShift
}

// Access performs a cached read of the line containing pa: on a hit
// the LRU stamp refreshes; on a miss the line is filled, evicting per
// the replacement policy. It returns whether the access hit and which
// set it touched.
//
//spylint:hotpath
func (c *Cache) Access(pa arch.PA) (hit bool, set int) {
	set = c.SetIndex(pa)
	tag := c.tagOf(pa)
	c.stamp++
	ws := c.set(set)
	for i := range ws {
		if ws[i].valid && ws[i].tag == tag {
			ws[i].used = c.stamp
			c.hits++
			c.stats[set].Hits++
			return true, set
		}
	}
	c.misses++
	c.stats[set].Misses++
	c.fillLine(set, tag)
	return false, set
}

// Contains reports whether the line holding pa is currently cached,
// without touching LRU state or counters. Test helper and detector
// hook; the attacks themselves never use it (they only see timing).
func (c *Cache) Contains(pa arch.PA) bool {
	set := c.SetIndex(pa)
	tag := c.tagOf(pa)
	for _, w := range c.set(set) {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// SetPartition restricts the cache to the first ways ways of every set
// (0 restores full associativity). Repartitioning hardware invalidates
// residency, so the cache is flushed on every change. While active,
// fills never touch ways at or beyond the boundary, so an eviction set
// sized for the full associativity self-thrashes — the defender's
// runtime partition lever.
func (c *Cache) SetPartition(ways int) error {
	if ways < 0 || ways > c.cfg.Ways {
		return fmt.Errorf("l2cache: partition of %d ways outside [0,%d]", ways, c.cfg.Ways)
	}
	if ways == c.cfg.Ways {
		ways = 0
	}
	if ways == c.partWays {
		return nil
	}
	c.partWays = ways
	c.Flush()
	return nil
}

// PartitionWays returns the active partition width (0 = full set).
func (c *Cache) PartitionWays() int { return c.partWays }

// fillLine inserts the tag into the set, evicting if necessary.
func (c *Cache) fillLine(set int, tag uint64) {
	ws := c.set(set)
	if c.partWays > 0 {
		ws = ws[:c.partWays]
	}
	victim := -1
	for i := range ws {
		if !ws[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		c.evictions++
		switch c.cfg.Policy {
		case RandomRepl:
			victim = c.rng.Intn(len(ws))
		default: // LRU
			victim = 0
			for i := 1; i < len(ws); i++ {
				if ws[i].used < ws[victim].used {
					victim = i
				}
			}
		}
	}
	c.fills++
	ws[victim] = way{valid: true, tag: tag, used: c.stamp}
}

// Totals returns machine counters since construction or the last
// ResetStats.
func (c *Cache) Totals() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}

// SetCounters returns a copy of the per-set hit/miss counters.
func (c *Cache) SetCounters() []SetStats {
	out := make([]SetStats, len(c.stats))
	copy(out, c.stats)
	return out
}

// ResetStats clears all counters without disturbing cache contents.
func (c *Cache) ResetStats() {
	c.hits, c.misses, c.fills, c.evictions = 0, 0, 0, 0
	for i := range c.stats {
		c.stats[i] = SetStats{}
	}
}

// Flush invalidates the entire cache (used between experiment trials;
// no user-level flush exists on the real hardware, which is precisely
// why the attacks use eviction sets instead). One memclr over the flat
// way array.
func (c *Cache) Flush() {
	clear(c.ways)
}

// Reset restores the cache to its freshly constructed state: all lines
// invalid, the LRU stamp rewound, counters cleared. When parent is
// non-nil the replacement RNG is re-derived from it exactly as New
// receives it from parent.Split(), consuming one parent draw — this is
// what lets a pooled machine replay its construction-time RNG
// derivation sequence and stay byte-identical to a fresh build.
func (c *Cache) Reset(parent *xrand.Source) {
	c.Flush()
	c.stamp = 0
	c.partWays = 0
	c.ResetStats()
	if parent != nil {
		if c.rng == nil {
			c.rng = parent.Split()
		} else {
			c.rng.ReseedFrom(parent)
		}
	}
}

// OccupiedWays returns how many valid lines set holds (test helper).
func (c *Cache) OccupiedWays(set int) int {
	n := 0
	for _, w := range c.set(set) {
		if w.valid {
			n++
		}
	}
	return n
}
