package l2cache

import (
	"testing"
	"testing/quick"

	"spybox/internal/arch"
	"spybox/internal/xrand"
)

// tinyConfig is a small geometry for fast, exact tests: 64 sets, 4
// ways, 128 B lines, 4 KB pages -> 32 lines per page, 2 regions.
func tinyConfig() Config {
	return Config{Sets: 64, Ways: 4, LineSize: 128, PageSize: 4096, Policy: LRU, HashIndex: true}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"p100", P100Config(), true},
		{"tiny", tinyConfig(), true},
		{"zero", Config{}, false},
		{"non-pow2 sets", Config{Sets: 3, Ways: 2, LineSize: 128, PageSize: 4096}, false},
		{"zero ways", Config{Sets: 4, Ways: 0, LineSize: 128, PageSize: 4096}, false},
		{"bad line", Config{Sets: 4, Ways: 2, LineSize: 100, PageSize: 4096}, false},
		{"page < line", Config{Sets: 4, Ways: 2, LineSize: 128, PageSize: 64}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestP100Geometry(t *testing.T) {
	cfg := P100Config()
	if got := cfg.SizeBytes(); got != 4<<20 {
		t.Errorf("P100 L2 size = %d, want 4MB", got)
	}
	if got := cfg.LinesPerPage(); got != 512 {
		t.Errorf("lines per page = %d, want 512", got)
	}
}

func TestRandomReplNeedsRNG(t *testing.T) {
	cfg := tinyConfig()
	cfg.Policy = RandomRepl
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("random replacement without rng should fail")
	}
	if _, err := New(cfg, xrand.New(1)); err != nil {
		t.Fatalf("random replacement with rng failed: %v", err)
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := MustNew(tinyConfig(), nil)
	pa := arch.PA(0x1000)
	if hit, _ := c.Access(pa); hit {
		t.Fatal("first access should miss")
	}
	if hit, _ := c.Access(pa); !hit {
		t.Fatal("second access should hit")
	}
	if hit, _ := c.Access(pa + 64); !hit {
		t.Fatal("same-line access should hit")
	}
	if hit, _ := c.Access(pa + 128); hit {
		t.Fatal("next line should miss")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := MustNew(tinyConfig(), nil)
	// Build ways+1 addresses in the same set by construction: same
	// page-offset lines across pages that hash to the same region.
	addrs := sameSetAddrs(c, tinyConfig().Ways+1)
	for _, a := range addrs[:tinyConfig().Ways] {
		c.Access(a)
	}
	for _, a := range addrs[:tinyConfig().Ways] {
		if hit, _ := c.Access(a); !hit {
			t.Fatalf("warm line %#x missed", uint64(a))
		}
	}
	// Insert one more: evicts exactly the LRU line (addrs[0], because
	// the re-access order above made it oldest).
	c.Access(addrs[tinyConfig().Ways])
	if hit, _ := c.Access(addrs[1]); !hit {
		t.Error("addrs[1] should have survived")
	}
	if hit, _ := c.Access(addrs[0]); hit {
		t.Error("LRU line addrs[0] should have been evicted")
	}
}

// sameSetAddrs returns n line addresses that map to one set.
func sameSetAddrs(c *Cache, n int) []arch.PA {
	want := -1
	var out []arch.PA
	for pa := arch.PA(0); len(out) < n; pa += arch.PA(c.cfg.LineSize) {
		s := c.SetIndex(pa)
		if want < 0 {
			want = s
		}
		if s == want {
			out = append(out, pa)
		}
	}
	return out
}

func TestEvictionStaircaseEvery16th(t *testing.T) {
	// The Fig. 5 behaviour at full P100 geometry: accessing W lines of
	// a set keeps them all resident; the W+1st evicts one.
	c := MustNew(P100Config(), nil)
	addrs := sameSetAddrs(c, arch.L2Ways+1)
	for _, a := range addrs[:arch.L2Ways] {
		c.Access(a)
	}
	for _, a := range addrs[:arch.L2Ways] {
		if hit, _ := c.Access(a); !hit {
			t.Fatal("16 lines must co-reside in a 16-way set")
		}
	}
	c.Access(addrs[arch.L2Ways])
	evicted := 0
	for _, a := range addrs[:arch.L2Ways] {
		if !c.Contains(a) {
			evicted++
		}
	}
	if evicted != 1 {
		t.Errorf("exactly one line should be evicted by the 17th, got %d", evicted)
	}
}

func TestPageConsecutiveIndexing(t *testing.T) {
	// Within one page, consecutive lines must map to consecutive sets
	// (the paper's discovery optimization depends on this).
	c := MustNew(P100Config(), nil)
	base := arch.PA(7 * arch.PageSize) // arbitrary page
	first := c.SetIndex(base)
	for i := 1; i < arch.LinesPerPage; i++ {
		got := c.SetIndex(base + arch.PA(i*arch.CacheLineSize))
		if got != first+i {
			t.Fatalf("line %d of page maps to set %d, want %d", i, got, first+i)
		}
	}
	// And the page's base set is region-aligned.
	if first%arch.LinesPerPage != 0 {
		t.Errorf("page base set %d not aligned to page region", first)
	}
}

func TestIndexHashScattersPages(t *testing.T) {
	c := MustNew(P100Config(), nil)
	// With hashing, consecutive pages should not all land in
	// consecutive regions; count distinct regions over many pages.
	regions := make(map[int]bool)
	for p := 0; p < 64; p++ {
		regions[c.SetIndex(arch.PA(p*arch.PageSize))/arch.LinesPerPage] = true
	}
	if len(regions) < 3 {
		t.Errorf("hash left pages in %d regions, want >=3 of 4", len(regions))
	}

	// Without hashing, page p maps to region p mod 4 exactly.
	cfg := P100Config()
	cfg.HashIndex = false
	plain := MustNew(cfg, nil)
	for p := 0; p < 16; p++ {
		got := plain.SetIndex(arch.PA(p*arch.PageSize)) / arch.LinesPerPage
		if got != p%4 {
			t.Errorf("unhashed page %d in region %d, want %d", p, got, p%4)
		}
	}
}

func TestSetIndexStableAndInRange(t *testing.T) {
	c := MustNew(P100Config(), nil)
	rng := xrand.New(5)
	for i := 0; i < 10000; i++ {
		pa := arch.PA(rng.Uint64() % (8 << 30))
		s := c.SetIndex(pa)
		if s < 0 || s >= arch.L2Sets {
			t.Fatalf("set index %d out of range for %#x", s, uint64(pa))
		}
		if s != c.SetIndex(pa) {
			t.Fatal("SetIndex not deterministic")
		}
		// All bytes of a line share a set.
		if c.SetIndex(pa.LineAddr()) != s {
			t.Fatalf("line-address set differs for %#x", uint64(pa))
		}
	}
}

func TestCountersAndReset(t *testing.T) {
	c := MustNew(tinyConfig(), nil)
	pa := arch.PA(0)
	c.Access(pa)
	c.Access(pa)
	h, m, _ := c.Totals()
	if h != 1 || m != 1 {
		t.Errorf("totals = (%d,%d), want (1,1)", h, m)
	}
	set := c.SetIndex(pa)
	sc := c.SetCounters()
	if sc[set].Hits != 1 || sc[set].Misses != 1 {
		t.Errorf("set counters = %+v", sc[set])
	}
	c.ResetStats()
	h, m, _ = c.Totals()
	if h != 0 || m != 0 {
		t.Error("ResetStats did not clear totals")
	}
	// Contents survive a stats reset.
	if hit, _ := c.Access(pa); !hit {
		t.Error("ResetStats must not flush contents")
	}
}

func TestFlush(t *testing.T) {
	c := MustNew(tinyConfig(), nil)
	pa := arch.PA(0x2000)
	c.Access(pa)
	if !c.Contains(pa) {
		t.Fatal("line should be cached")
	}
	c.Flush()
	if c.Contains(pa) {
		t.Fatal("Flush left line resident")
	}
}

func TestOccupiedWays(t *testing.T) {
	c := MustNew(tinyConfig(), nil)
	addrs := sameSetAddrs(c, 3)
	for i, a := range addrs {
		c.Access(a)
		if got := c.OccupiedWays(c.SetIndex(a)); got != i+1 {
			t.Errorf("after %d fills, occupancy = %d", i+1, got)
		}
	}
}

func TestRandomReplacementEventuallyEvictsAnyLine(t *testing.T) {
	cfg := tinyConfig()
	cfg.Policy = RandomRepl
	c := MustNew(cfg, xrand.New(42))
	addrs := sameSetAddrs(c, cfg.Ways*4)
	// Fill the set, then hammer extra lines; the original victim
	// distribution should not be deterministic LRU.
	for _, a := range addrs[:cfg.Ways] {
		c.Access(a)
	}
	for _, a := range addrs[cfg.Ways:] {
		c.Access(a)
	}
	_, _, ev := c.Totals()
	if ev == 0 {
		t.Fatal("no evictions recorded")
	}
}

func TestContainsDoesNotPerturbLRU(t *testing.T) {
	c := MustNew(tinyConfig(), nil)
	addrs := sameSetAddrs(c, tinyConfig().Ways+1)
	for _, a := range addrs[:tinyConfig().Ways] {
		c.Access(a)
	}
	// Peek at the oldest line many times; it must still be the victim.
	for i := 0; i < 10; i++ {
		c.Contains(addrs[0])
	}
	c.Access(addrs[tinyConfig().Ways])
	if c.Contains(addrs[0]) {
		t.Error("Contains refreshed LRU state")
	}
}

// Property: after accessing any sequence, a set never holds more than
// Ways lines and re-accessing the most recent line always hits.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(seed uint16, steps uint8) bool {
		rng := xrand.New(uint64(seed))
		c := MustNew(tinyConfig(), nil)
		n := int(steps)%200 + 1
		var last arch.PA
		for i := 0; i < n; i++ {
			pa := arch.PA(rng.Intn(1 << 16)).LineAddr()
			c.Access(pa)
			last = pa
		}
		for s := 0; s < tinyConfig().Sets; s++ {
			if c.OccupiedWays(s) > tinyConfig().Ways {
				return false
			}
		}
		hit, _ := c.Access(last)
		return hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits + misses equals total accesses.
func TestCounterConservationProperty(t *testing.T) {
	f := func(seed uint16) bool {
		rng := xrand.New(uint64(seed))
		c := MustNew(tinyConfig(), nil)
		n := rng.Intn(500) + 1
		for i := 0; i < n; i++ {
			c.Access(arch.PA(rng.Intn(1 << 15)))
		}
		h, m, _ := c.Totals()
		return int(h+m) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFromProfileGeometries is the table-driven non-P100 coverage:
// each named profile's cache must validate, report the profile's
// capacity, and behave set-associatively at the profile's own
// associativity (eviction exactly at `ways` conflicting fills, not at
// the P100's 16).
func TestFromProfileGeometries(t *testing.T) {
	for _, prof := range arch.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			cfg := FromProfile(prof)
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			if cfg.SizeBytes() != prof.L2SizeBytes() {
				t.Errorf("size %d, want %d", cfg.SizeBytes(), prof.L2SizeBytes())
			}
			c := MustNew(cfg, nil)
			// `ways` distinct same-set lines all fit...
			addrs := sameSetAddrs(c, cfg.Ways+1)
			for _, a := range addrs[:cfg.Ways] {
				c.Access(a)
			}
			for _, a := range addrs[:cfg.Ways] {
				if !c.Contains(a) {
					t.Fatalf("line evicted before associativity was reached")
				}
			}
			// ...and the (ways+1)-th evicts exactly the LRU one.
			c.Access(addrs[cfg.Ways])
			if c.Contains(addrs[0]) {
				t.Error("LRU line survived over-fill")
			}
			for _, a := range addrs[1 : cfg.Ways+1] {
				if !c.Contains(a) {
					t.Error("non-LRU line evicted")
				}
			}
		})
	}
}

// TestPageConsecutiveIndexingPerProfile checks the property all
// discovery rests on — within one page, lines index consecutive sets —
// for every profile geometry (the paper observes it on the P100; the
// profiles model it as common to the generations).
func TestPageConsecutiveIndexingPerProfile(t *testing.T) {
	for _, prof := range arch.Profiles() {
		c := MustNew(FromProfile(prof), nil)
		base := arch.PA(11 * arch.PageSize)
		first := c.SetIndex(base)
		lpp := c.Config().LinesPerPage()
		for i := 1; i < lpp; i++ {
			got := c.SetIndex(base + arch.PA(i*c.Config().LineSize))
			if got != (first+i)%c.Config().Sets {
				t.Fatalf("%s: line %d of page maps to set %d, want %d",
					prof.Name, i, got, (first+i)%c.Config().Sets)
			}
		}
	}
}

// TestTinySixtyFourSetProfile pins behaviour of a deliberately tiny
// 64-set geometry (subpage cache: fewer sets than lines per page, so
// the hash has a single region and every page conflicts with every
// other).
func TestTinySixtyFourSetProfile(t *testing.T) {
	cfg := Config{Sets: 64, Ways: 4, LineSize: 128, PageSize: 8192, Policy: LRU, HashIndex: true}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	c := MustNew(cfg, nil)
	// With Sets == LinesPerPage the page wraps exactly once and there
	// is a single hash region: page base addresses all land in set 0's
	// region regardless of frame.
	if got := cfg.LinesPerPage(); got != 64 {
		t.Fatalf("lines per page = %d, want 64", got)
	}
	for page := 0; page < 16; page++ {
		if got := c.SetIndex(arch.PA(page * 8192)); got != c.SetIndex(0) {
			t.Errorf("page %d base indexes set %d; single-region cache should be uniform", page, got)
		}
	}
}
