// Modelextract: spies on an MLP being trained on GPU0 and recovers
// its hidden-layer width from the remote L2 miss intensity — the
// paper's Sec. V-B / Table II attack. Built on the public pkg/spybox
// API.
//
// Usage: modelextract [-hidden N]
package main

import (
	"flag"
	"fmt"
	"log"

	"spybox/pkg/spybox"
)

func main() {
	hidden := flag.Int("hidden", 256, "the victim's secret hidden-layer width (64, 128, 256 or 512)")
	flag.Parse()

	m := spybox.MustNewMachine(spybox.MachineOptions{Seed: 4242})
	prof, err := spybox.CharacterizeTiming(m, 0, 1, 48, 9)
	if err != nil {
		log.Fatal(err)
	}
	spy, err := spybox.NewAttacker(m, 1, 0, 256, prof.Thresholds, 55)
	if err != nil {
		log.Fatal(err)
	}
	sg, err := spy.DiscoverPageGroups(spy.Ways())
	if err != nil {
		log.Fatal(err)
	}
	all := spy.AllEvictionSets(sg, spy.Ways())
	monitored := make([]spybox.EvictionSet, 0, 256)
	for i := 0; i < 256; i++ {
		monitored = append(monitored, all[i*len(all)/256])
	}

	observe := func(h int, seed uint64) (float64, *spybox.Memorygram) {
		cfg := spybox.MLPVictimConfig{Hidden: h, Epochs: 1, Samples: 64, BatchSize: 16, EpochGapOps: 0}
		v, err := spybox.NewMLPVictim(m, 0, seed, cfg)
		if err != nil {
			log.Fatal(err)
		}
		victimDone := false
		res, err := spy.MonitorConcurrent(monitored, spybox.MonitorOptions{
			Epochs:    240,
			StopEarly: func() bool { return victimDone },
		}, func() error { return v.Launch(&victimDone) })
		if err != nil {
			log.Fatal(err)
		}
		for _, al := range v.Proc.Space().Allocs() {
			v.Proc.Free(al.Base)
		}
		g, _ := spybox.NewMemorygram(res.Miss, fmt.Sprintf("mlp-h%d", h))
		return res.AvgMissesPerSet(), g
	}

	// Offline: build the reference profile, as the attacker would in
	// their own DGX box.
	fmt.Println("building reference miss profiles (offline phase)...")
	candidates := []int{64, 128, 256, 512}
	reference := map[int]float64{}
	for _, h := range candidates {
		avg, _ := observe(h, uint64(h))
		reference[h] = avg
		fmt.Printf("  hidden=%3d -> avg misses per set %.1f\n", h, avg)
	}

	// Online: observe the victim with the secret width.
	fmt.Printf("\nspying on the victim (secret hidden width: %d)...\n", *hidden)
	obs, gram := observe(*hidden, 0xbeef)
	fmt.Printf("observed avg misses per set: %.1f\n\n", obs)
	fmt.Println(gram.RenderASCII(72, 14))

	best, bestD := 0, -1.0
	for _, h := range candidates {
		d := obs - reference[h]
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			best, bestD = h, d
		}
	}
	fmt.Printf("inferred hidden-layer width: %d (truth: %d)\n", best, *hidden)
}
