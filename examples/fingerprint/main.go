// Fingerprint: spies on a victim application running on GPU0 from
// GPU1 and renders its memorygram (the paper's Fig. 11), then guesses
// which of the six applications it was by matching against freshly
// collected reference samples. Built on the public pkg/spybox API.
//
// Usage: fingerprint [-app NAME]
package main

import (
	"flag"
	"fmt"
	"log"

	"spybox/pkg/spybox"
)

func main() {
	appName := flag.String("app", "matmul", "victim application (vectoradd, histogram, blackscholes, matmul, quasirandom, walshtransform)")
	flag.Parse()

	m := spybox.MustNewMachine(spybox.MachineOptions{Seed: 77})
	prof, err := spybox.CharacterizeTiming(m, 0, 1, 48, 3)
	if err != nil {
		log.Fatal(err)
	}
	spy, err := spybox.NewAttacker(m, 1, 0, 256, prof.Thresholds, 31)
	if err != nil {
		log.Fatal(err)
	}
	sg, err := spy.DiscoverPageGroups(spy.Ways())
	if err != nil {
		log.Fatal(err)
	}
	all := spy.AllEvictionSets(sg, spy.Ways())
	monitored := make([]spybox.EvictionSet, 0, 128)
	for i := 0; i < 128; i++ {
		monitored = append(monitored, all[i*len(all)/128])
	}
	vcfg := spybox.VictimConfig{ArrayKB: 256, Passes: 400, ChunkDelay: 2500}

	record := func(name string, seed uint64) *spybox.Memorygram {
		app, err := spybox.NewVictimApp(name, m, 0, seed, vcfg)
		if err != nil {
			log.Fatal(err)
		}
		victimDone, monitorDone := false, false
		app.Stop = &monitorDone
		res, err := spy.MonitorConcurrent(monitored, spybox.MonitorOptions{
			Epochs:    56,
			StopEarly: func() bool { return victimDone },
			DoneFlag:  &monitorDone,
		}, func() error { return app.Launch(&victimDone) })
		if err != nil {
			log.Fatal(err)
		}
		for _, al := range app.Proc.Space().Allocs() {
			app.Proc.Free(al.Base)
		}
		g, err := spybox.NewMemorygram(res.Miss, name)
		if err != nil {
			log.Fatal(err)
		}
		return g
	}

	fmt.Printf("spying on %q from a different GPU...\n\n", *appName)
	target := record(*appName, 999)
	fmt.Println(target.RenderASCII(72, 18))

	fmt.Println("collecting reference samples for all six applications...")
	var train []spybox.ClassifySample
	for class, name := range spybox.VictimAppNames() {
		for s := 0; s < 6; s++ {
			g := record(name, uint64(1000*class+s))
			train = append(train, spybox.ClassifySample{X: g.Features(), Y: class})
		}
	}
	knn, err := spybox.NewKNN(3, train)
	if err != nil {
		log.Fatal(err)
	}
	guess := knn.Predict(target.Features())
	fmt.Printf("\nclassifier's guess: %q (truth: %q)\n", spybox.VictimAppNames()[guess], *appName)
}
