// Quickstart: stand up the simulated DGX-1, reverse engineer the L2
// timing and geometry from user level, and print what the attacker
// learned. This walks the same path as Sec. III of the paper.
package main

import (
	"fmt"
	"log"

	"spybox/internal/core"
	"spybox/internal/sim"
)

func main() {
	// A DGX-1 box: eight P100s, NVLink hybrid cube-mesh. Pass another
	// arch.Profile (V100DGX2, A100Class) to simulate a different box.
	m := sim.MustNewMachine(sim.Options{Seed: 42})
	mp := m.Profile()
	fmt.Printf("machine: %d GPUs, L2 %d sets x %d ways x %d B lines\n",
		m.NumGPUs(), mp.L2Sets, mp.L2Ways, mp.L2LineSize)

	// Step 1: timing characterization (Fig. 4). One process on GPU0
	// times local accesses; another on GPU1 times remote accesses to
	// GPU0 memory over NVLink.
	prof, err := core.CharacterizeTiming(m, 0, 1, 48, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntiming characterization (four access classes):")
	fmt.Println(" ", prof.Thresholds)

	// Step 2: eviction-set discovery on the attacker's own buffer,
	// allocated on the target GPU (Sec. III-B, Algorithm 1).
	att, err := core.NewAttacker(m, 1, 0, 256, prof.Thresholds, 99)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := att.DiscoverPageGroups(att.Ways())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovered %d conflict groups over %d pages:\n", len(groups.Groups), att.Pages)
	for i, g := range groups.Groups {
		fmt.Printf("  group %d: %d pages\n", i, len(g))
	}
	sets := att.AllEvictionSets(groups, att.Ways())
	fmt.Printf("eviction sets covering %d unique cache sets\n", len(sets))

	// Step 3: geometry inference (Table I).
	fresh, err := core.NewAttacker(m, 1, 0, 16, prof.Thresholds, 100)
	if err != nil {
		log.Fatal(err)
	}
	geo, err := att.InferGeometry(groups, 32, fresh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreverse-engineered geometry: %s\n", geo)
	fmt.Println("\nall of the above was learned from timing alone, from a remote GPU.")
}
