// Quickstart for the public spybox library API: run a registered
// experiment through a Session and read its structured result, then
// drop to machine level — stand up the simulated DGX-1, reverse
// engineer the L2 timing and geometry from user level, and print what
// the attacker learned (the same path as Sec. III of the paper).
package main

import (
	"context"
	"fmt"
	"log"

	"spybox/pkg/spybox"
)

func main() {
	// Part 1: the experiment layer. Open a session and reproduce the
	// paper's Fig. 4 timing characterization; the result is structured
	// (typed records and keyed metrics), not log text.
	sess, err := spybox.Open(spybox.Config{Seed: 42, Scale: spybox.Small})
	if err != nil {
		log.Fatal(err)
	}
	results, err := sess.Run(context.Background(), "fig4")
	if err != nil {
		log.Fatal(err)
	}
	fig4 := results[0]
	fmt.Printf("ran %s — %s\n", fig4.ID, fig4.Title)
	for _, m := range fig4.MetricList() {
		fmt.Printf("  metric %-32s %10.1f %s\n", m.Key, m.Value, m.Unit)
	}

	// Part 2: machine-level scripting on the same session profile. A
	// DGX-1 box: eight P100s, NVLink hybrid cube-mesh. Open with
	// Config{Arch: "v100-dgx2"} (or "a100-class") for a different box.
	m, err := sess.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	mp := m.Profile()
	fmt.Printf("\nmachine: %d GPUs, L2 %d sets x %d ways x %d B lines\n",
		m.NumGPUs(), mp.L2Sets, mp.L2Ways, mp.L2LineSize)

	// Step 1: timing characterization (Fig. 4). One process on GPU0
	// times local accesses; another on GPU1 times remote accesses to
	// GPU0 memory over NVLink.
	prof, err := spybox.CharacterizeTiming(m, 0, 1, 48, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntiming characterization (four access classes):")
	fmt.Println(" ", prof.Thresholds)

	// Step 2: eviction-set discovery on the attacker's own buffer,
	// allocated on the target GPU (Sec. III-B, Algorithm 1).
	att, err := spybox.NewAttacker(m, 1, 0, 256, prof.Thresholds, 99)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := att.DiscoverPageGroups(att.Ways())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovered %d conflict groups over %d pages:\n", len(groups.Groups), att.Pages)
	for i, g := range groups.Groups {
		fmt.Printf("  group %d: %d pages\n", i, len(g))
	}
	sets := att.AllEvictionSets(groups, att.Ways())
	fmt.Printf("eviction sets covering %d unique cache sets\n", len(sets))

	// Step 3: geometry inference (Table I).
	fresh, err := spybox.NewAttacker(m, 1, 0, 16, prof.Thresholds, 100)
	if err != nil {
		log.Fatal(err)
	}
	geo, err := att.InferGeometry(groups, 32, fresh)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreverse-engineered geometry: %s\n", geo)
	fmt.Println("\nall of the above was learned from timing alone, from a remote GPU.")
}
