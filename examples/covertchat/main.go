// Covertchat: sends a message from a trojan on GPU0 to a spy on GPU1
// through L2 cache contention — the paper's Sec. IV attack end to
// end: discovery, cross-process alignment, transmission, decode.
// Built entirely on the public pkg/spybox machine-scripting API.
//
// Usage: covertchat [-sets N] [-msg TEXT]
package main

import (
	"flag"
	"fmt"
	"log"

	"spybox/pkg/spybox"
)

func main() {
	numSets := flag.Int("sets", 4, "parallel cache sets (the Fig. 9 x-axis)")
	msg := flag.String("msg", "Hello! How are you?", "message to transmit covertly")
	flag.Parse()

	m := spybox.MustNewMachine(spybox.MachineOptions{Seed: 1234})
	prof, err := spybox.CharacterizeTiming(m, 0, 1, 48, 5)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("discovering eviction sets (trojan on GPU0, spy on GPU1)...")
	trojan, err := spybox.NewAttacker(m, 0, 0, 256, prof.Thresholds, 11)
	if err != nil {
		log.Fatal(err)
	}
	spy, err := spybox.NewAttacker(m, 1, 0, 256, prof.Thresholds, 22)
	if err != nil {
		log.Fatal(err)
	}
	tg, err := trojan.DiscoverPageGroups(trojan.Ways())
	if err != nil {
		log.Fatal(err)
	}
	sg, err := spy.DiscoverPageGroups(spy.Ways())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("aligning %d cache-set channels across processes...\n", *numSets)
	pairs, err := spybox.AlignChannels(trojan, spy,
		trojan.AllEvictionSets(tg, trojan.Ways()),
		spy.AllEvictionSets(sg, spy.Ways()), *numSets)
	if err != nil {
		log.Fatal(err)
	}

	ch, err := spybox.NewChannel(trojan, spy, pairs, spybox.DefaultCovertConfig())
	if err != nil {
		log.Fatal(err)
	}
	tx, err := ch.Transmit([]byte(*msg))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntrojan sent:  %q\n", *msg)
	fmt.Printf("spy received: %q\n", string(spybox.BitsToBytes(tx.ReceivedBits)))
	fmt.Printf("bit errors:   %d/%d (%.2f%%)\n", tx.BitErrors, len(tx.SentBits), 100*tx.ErrorRate())
	fmt.Printf("bandwidth:    %.4f MB/s over %d sets (%.2f ms of GPU time)\n",
		tx.BandwidthMBps(), *numSets, 1000*tx.Duration.Seconds())

	fmt.Println("\nfirst probe samples (spy's view; ~630cy = '0', ~950cy = '1'):")
	for i, pt := range tx.Trace {
		if i >= 12 {
			break
		}
		fmt.Printf("  t=%-9d avg latency %.0f cycles\n", uint64(pt.T), pt.AvgLat)
	}
}
