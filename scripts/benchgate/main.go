// benchgate maintains the repository's committed benchmark trajectory
// (BENCH_core.json) and turns it into a CI gate.
//
// Emit mode parses `go test -bench -benchmem` text from stdin into a
// JSON snapshot, optionally prepending the history of an existing
// trajectory file:
//
//	go test -run '^$' -bench ... -benchmem . | benchgate -emit BENCH_core.json -label "PR 6" -merge BENCH_core.json
//
// Compare mode gates a fresh run against the committed baseline,
// failing (exit 1) on any benchmark whose ns/op regressed beyond
// -max-ratio, or that allocates where the baseline reports 0
// allocs/op:
//
//	benchgate -baseline BENCH_core.json -current cur.json -max-ratio 1.25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Schema is the trajectory file format version.
const Schema = "spybox.bench/v1"

// Bench is one benchmark's measured numbers. Metrics holds custom
// b.ReportMetric units (events/s, trials/s, ...).
type Bench struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Entry is one snapshot of the benchmark set.
type Entry struct {
	Label      string           `json:"label"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// File is the trajectory document: the current snapshot plus the
// ordered history of earlier ones (oldest first).
type File struct {
	Schema string `json:"schema"`
	Entry
	History []Entry `json:"history,omitempty"`
}

// gomaxprocsSuffix strips the -N goroutine-count suffix go test
// appends to benchmark names, so trajectories compare across hosts
// with different core counts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput extracts benchmark result lines from go test text.
func parseBenchOutput(r *bufio.Scanner) (map[string]Bench, error) {
	out := make(map[string]Bench)
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue // header or malformed line, not a result row
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // second field must be the iteration count
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		b := Bench{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value %q in %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[unit] = v
			}
		}
		out[name] = b
	}
	return out, r.Err()
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("benchgate: %s: schema %q, want %q", path, f.Schema, Schema)
	}
	return &f, nil
}

func writeFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func emit(out, label, merge string) error {
	benches, err := parseBenchOutput(bufio.NewScanner(os.Stdin))
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("benchgate: no benchmark results on stdin")
	}
	f := &File{Schema: Schema, Entry: Entry{Label: label, Benchmarks: benches}}
	if merge != "" {
		old, err := readFile(merge)
		if err != nil {
			return err
		}
		f.History = append(old.History, old.Entry)
	}
	if err := writeFile(out, f); err != nil {
		return err
	}
	fmt.Printf("benchgate: wrote %s (%d benchmarks, %d history entries)\n",
		out, len(benches), len(f.History))
	return nil
}

func compare(baselinePath, currentPath string, maxRatio float64) error {
	base, err := readFile(baselinePath)
	if err != nil {
		return err
	}
	cur, err := readFile(currentPath)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		if _, ok := cur.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return fmt.Errorf("benchgate: no benchmarks in common between %s and %s", baselinePath, currentPath)
	}
	failures := 0
	for _, name := range names {
		b, c := base.Benchmarks[name], cur.Benchmarks[name]
		status := "ok"
		switch {
		case b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*maxRatio:
			status = fmt.Sprintf("FAIL ns/op regression beyond %.2fx", maxRatio)
			failures++
		case b.AllocsPerOp == 0 && c.AllocsPerOp > 0:
			status = "FAIL allocates on a zero-alloc benchmark"
			failures++
		}
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = c.NsPerOp / b.NsPerOp
		}
		fmt.Printf("%-50s %14.1f -> %14.1f ns/op (%.2fx)  %g -> %g allocs/op  %s\n",
			name, b.NsPerOp, c.NsPerOp, ratio, b.AllocsPerOp, c.AllocsPerOp, status)
	}
	if failures > 0 {
		return fmt.Errorf("benchgate: %d benchmark(s) regressed against %s", failures, baselinePath)
	}
	fmt.Printf("benchgate: %d benchmarks within %.2fx of %s\n", len(names), maxRatio, baselinePath)
	return nil
}

func main() {
	var (
		emitPath = flag.String("emit", "", "write a trajectory snapshot parsed from stdin to this path")
		label    = flag.String("label", "local", "label for the emitted snapshot")
		merge    = flag.String("merge", "", "existing trajectory whose entries become the new file's history")
		baseline = flag.String("baseline", "", "committed trajectory to gate against")
		current  = flag.String("current", "", "fresh snapshot to compare with -baseline")
		maxRatio = flag.Float64("max-ratio", 1.25, "fail when current ns/op exceeds baseline * ratio")
	)
	flag.Parse()
	var err error
	switch {
	case *emitPath != "":
		err = emit(*emitPath, *label, *merge)
	case *baseline != "" && *current != "":
		err = compare(*baseline, *current, *maxRatio)
	default:
		err = fmt.Errorf("benchgate: use -emit OUT [-label L] [-merge OLD], or -baseline BASE -current CUR [-max-ratio R]")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
