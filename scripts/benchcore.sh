#!/usr/bin/env sh
# benchcore.sh — run the gated core benchmarks and emit a trajectory
# snapshot with scripts/benchgate.
#
# Usage: scripts/benchcore.sh OUT.json [LABEL] [MERGE.json]
#
#   OUT.json    snapshot to write (CI uses a temp file, then compares
#               it against the committed BENCH_core.json)
#   LABEL       label stored in the snapshot (default: "local")
#   MERGE.json  existing trajectory whose entries become OUT's history —
#               pass BENCH_core.json twice to append a new point to the
#               committed trajectory in place
set -eu
cd "$(dirname "$0")/.."

out="${1:?usage: benchcore.sh OUT.json [LABEL] [MERGE.json]}"
label="${2:-local}"
merge="${3:-}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkSchedulerEvents|BenchmarkRunnerTrials|BenchmarkMachineReset|BenchmarkProbeAlloc|BenchmarkGameRound' -benchmem -benchtime 1s . | tee "$tmp"
go test -run '^$' -bench 'BenchmarkFabricTraversal' -benchmem -benchtime 1s ./internal/nvlink | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkServiceSubmit' -benchmem -benchtime 1s ./pkg/spybox/service | tee -a "$tmp"

if [ -n "$merge" ]; then
    go run ./scripts/benchgate -emit "$out" -label "$label" -merge "$merge" <"$tmp"
else
    go run ./scripts/benchgate -emit "$out" -label "$label" <"$tmp"
fi
