// Package analysistest runs spylint analyzers over self-contained
// fixture modules and checks their diagnostics against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library only.
//
// A fixture is a directory containing its own go.mod (so the parent
// module's package walk never sees it) plus Go sources annotated with
// expectations:
//
//	w.lats = lats // want `storing probe scratch in field`
//
// Each expectation is a regexp in backquotes or double quotes; several
// may follow one `// want`. Every diagnostic must match an expectation
// on its exact file:line and every expectation must be consumed, or
// the test fails.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"spylint/internal/framework"
)

// wantRe matches one quoted expectation: `re` or "re".
var wantRe = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run analyzes ./... of the fixture module rooted at dir with the
// given analyzers and compares diagnostics with // want expectations.
func Run(t *testing.T, dir string, analyzers []*framework.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := collectWants(abs)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.RunStandalone(abs, []string{"./..."}, analyzers)
	if err != nil {
		t.Fatalf("analyzing %s: %v", dir, err)
	}
	for _, d := range diags {
		if !want.match(d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range want.unmatched() {
		t.Errorf("expected diagnostic not reported:\n  %s:%d: matching %q", w.file, w.line, w.re)
	}
}

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

type wants struct{ list []*expectation }

func (w *wants) match(file string, line int, msg string) bool {
	for _, e := range w.list {
		if e.file == file && e.line == line && e.re.MatchString(msg) {
			e.hit = true
			return true
		}
	}
	return false
}

func (w *wants) unmatched() []*expectation {
	var out []*expectation
	for _, e := range w.list {
		if !e.hit {
			out = append(out, e)
		}
	}
	return out
}

// collectWants scans every fixture .go file for // want comments.
// Scanning is textual (line-oriented) rather than AST-based so
// expectations may sit on lines the parser attaches no comment to.
func collectWants(root string) (*wants, error) {
	w := &wants{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, after, found := strings.Cut(line, "// want ")
			if !found {
				continue
			}
			ms := wantRe.FindAllStringSubmatch(after, -1)
			if len(ms) == 0 {
				return fmt.Errorf("%s:%d: malformed // want: no quoted regexp", path, i+1)
			}
			for _, m := range ms {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s:%d: bad // want regexp: %v", path, i+1, err)
				}
				w.list = append(w.list, &expectation{file: path, line: i + 1, re: re})
			}
		}
		return nil
	})
	return w, err
}
