package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func collect(t *testing.T, src string) (*token.FileSet, *directiveIndex) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, collectDirectives(fset, []*ast.File{f})
}

var known = map[string]bool{"detrand": true, "resetcomplete": true}

func TestDirectiveGrammarProblems(t *testing.T) {
	src := `package p

//spylint:allow
var a int

//spylint:allow nosuch because reasons
var b int

//spylint:allow detrand
var c int

//spylint:frobnicate
var d int

//spylint:allow detrand a perfectly fine reason
var e int

//spylint:scratch
func f() {}
`
	_, ix := collect(t, src)
	probs := ix.problems(known)
	wantSubstrings := []string{
		"needs an analyzer name",
		"unknown analyzer nosuch",
		"needs a reason",
		"unknown //spylint: directive kind frobnicate",
	}
	if len(probs) != len(wantSubstrings) {
		t.Fatalf("got %d problems, want %d: %v", len(probs), len(wantSubstrings), probs)
	}
	for i, want := range wantSubstrings {
		if !strings.Contains(probs[i].Message, want) {
			t.Errorf("problem %d = %q, want substring %q", i, probs[i].Message, want)
		}
	}
}

func TestDirectiveAllowPlacement(t *testing.T) {
	src := `package p

//spylint:allow detrand the line below is exempt
var a int

var b int //spylint:allow detrand same-line works too

var c int
`
	_, ix := collect(t, src)
	pos := func(line int) token.Position {
		return token.Position{Filename: "fix.go", Line: line}
	}
	if !ix.allowed("detrand", pos(4)) {
		t.Error("line-above directive did not suppress line 4")
	}
	if !ix.allowed("detrand", pos(6)) {
		t.Error("same-line directive did not suppress line 6")
	}
	if ix.allowed("detrand", pos(8)) {
		t.Error("undirected line 8 is suppressed")
	}
	if ix.allowed("resetcomplete", pos(4)) {
		t.Error("directive for detrand suppressed resetcomplete")
	}
}

func TestHasScratchDirective(t *testing.T) {
	src := `package p

// Scratchy returns scratch.
//
//spylint:scratch
func Scratchy() []int { return nil }

// Plain does not.
func Plain() []int { return nil }
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var got []bool
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			got = append(got, HasScratchDirective(fd))
		}
	}
	if len(got) != 2 || !got[0] || got[1] {
		t.Errorf("HasScratchDirective = %v, want [true false]", got)
	}
}
