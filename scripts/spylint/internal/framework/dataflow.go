// A small path-sensitive abstract interpreter over the CFG. Clients
// supply an immutable state value with a canonical Key and three
// hooks; Interpret explores every (block, state) pair once, so the
// cost is bounded by blocks × distinct abstract states — keep the
// state small.
package framework

import "go/ast"

// FlowState is one abstract state. Implementations must be immutable
// value types: Transfer and Branch return fresh states rather than
// mutating. Key canonically encodes the state so the driver can
// memoize visits.
type FlowState interface {
	Key() string
}

// FlowSemantics gives a lattice-free path-sensitive semantics.
type FlowSemantics interface {
	// Transfer folds one statement into the state.
	Transfer(s FlowState, n ast.Node) FlowState
	// Branch refines the state along a conditional edge; cond is the
	// branch condition and taken its value on this edge. Returning
	// ok=false marks the edge infeasible under s and prunes the path.
	Branch(s FlowState, cond ast.Expr, taken bool) (out FlowState, ok bool)
	// AtExit observes a state reaching the normal function exit
	// (after deferred calls). Panicking paths are not reported.
	AtExit(s FlowState)
}

// maxStatesPerBlock caps distinct states explored per block, a
// backstop against abstract-state explosion in pathological code.
const maxStatesPerBlock = 128

// Interpret runs sem over g starting from init at Entry.
func Interpret(g *CFG, init FlowState, sem FlowSemantics) {
	type item struct {
		b *Block
		s FlowState
	}
	seen := make([]map[string]bool, len(g.Blocks))
	push := func(work []item, b *Block, s FlowState) []item {
		if seen[b.Index] == nil {
			seen[b.Index] = map[string]bool{}
		}
		k := s.Key()
		if seen[b.Index][k] || len(seen[b.Index]) >= maxStatesPerBlock {
			return work
		}
		seen[b.Index][k] = true
		return append(work, item{b, s})
	}
	work := push(nil, g.Entry, init)
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		s := it.s
		for _, n := range it.b.Nodes {
			s = sem.Transfer(s, n)
		}
		if it.b == g.Exit {
			sem.AtExit(s)
			continue
		}
		if it.b == g.Panic {
			continue
		}
		for _, e := range it.b.Succs {
			next := s
			if e.Cond != nil {
				refined, ok := sem.Branch(s, e.Cond, e.Taken)
				if !ok {
					continue
				}
				next = refined
			}
			work = push(work, e.To, next)
		}
	}
}

// ImpliedTruths decomposes a branch condition into the atomic
// conditions it implies and their values, following short-circuit
// structure: `a && b` taken true implies both a and b; `a || b` taken
// false refutes both; `!a` flips; parentheses are transparent. Atoms
// whose value is not implied on this edge (the operands of a
// true-taken ||, say) are not reported. f is called once per implied
// (atom, value) pair.
func ImpliedTruths(cond ast.Expr, taken bool, f func(atom ast.Expr, val bool)) {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		ImpliedTruths(e.X, taken, f)
	case *ast.UnaryExpr:
		if e.Op.String() == "!" {
			ImpliedTruths(e.X, !taken, f)
			return
		}
		f(cond, taken)
	case *ast.BinaryExpr:
		switch e.Op.String() {
		case "&&":
			if taken {
				ImpliedTruths(e.X, true, f)
				ImpliedTruths(e.Y, true, f)
			}
			// false: either operand may have failed — nothing implied.
		case "||":
			if !taken {
				ImpliedTruths(e.X, false, f)
				ImpliedTruths(e.Y, false, f)
			}
		default:
			f(cond, taken)
		}
	default:
		f(cond, taken)
	}
}
