package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFuncCFG parses src as the body of the first function in a
// throwaway package and builds its CFG (no type info: the tests
// exercise pure structure).
func buildFuncCFG(t *testing.T, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return BuildCFG(fd.Body, nil)
		}
	}
	t.Fatal("no function in source")
	return nil
}

// recorder is a stateless FlowSemantics that records which nodes the
// interpreter visits and in what order. With a constant state key the
// interpreter visits each reachable block exactly once, so the trace
// doubles as a reachability set.
type recorder struct {
	seq   []string
	exits int
	prune func(cond ast.Expr, taken bool) bool
}

type nullState struct{}

func (nullState) Key() string { return "" }

func describe(n ast.Node) string {
	switch n := n.(type) {
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			return describe(call)
		}
	case *ast.CallExpr:
		switch f := n.Fun.(type) {
		case *ast.Ident:
			return f.Name + "()"
		case *ast.SelectorExpr:
			if x, ok := f.X.(*ast.Ident); ok {
				return x.Name + "." + f.Sel.Name + "()"
			}
		}
	case *ast.IncDecStmt:
		return "inc"
	case *ast.DeferStmt:
		return "defer"
	case *ast.ReturnStmt:
		return "return"
	}
	return ""
}

func (r *recorder) Transfer(s FlowState, n ast.Node) FlowState {
	if d := describe(n); d != "" {
		r.seq = append(r.seq, d)
	}
	return s
}

func (r *recorder) Branch(s FlowState, cond ast.Expr, taken bool) (FlowState, bool) {
	if r.prune != nil && !r.prune(cond, taken) {
		return s, false
	}
	return s, true
}

func (r *recorder) AtExit(FlowState) { r.exits++ }

func (r *recorder) visited(name string) bool {
	for _, s := range r.seq {
		if s == name {
			return true
		}
	}
	return false
}

func TestCFGDeferChainRunsLIFOBeforeExit(t *testing.T) {
	g := buildFuncCFG(t, `
func f() {
	defer a()
	defer b()
	return
}`)
	r := &recorder{}
	Interpret(g, nullState{}, r)
	trace := strings.Join(r.seq, " ")
	// The deferred calls replay after the return, last-registered
	// first: ... return b() a().
	want := "return b() a()"
	if !strings.HasSuffix(trace, want) {
		t.Errorf("trace %q does not end with %q", trace, want)
	}
	if r.exits != 1 {
		t.Errorf("exits = %d, want 1", r.exits)
	}
}

func TestCFGGotoBackEdgeFormsCycle(t *testing.T) {
	g := buildFuncCFG(t, `
func f() {
	i := 0
loop:
	i++
	if i < 3 {
		goto loop
	}
	done()
}`)
	// The label target (the block holding i++) must have two incoming
	// edges: fallthrough from the entry and the goto's back edge.
	var target *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if describe(n) == "inc" {
				target = blk
			}
		}
	}
	if target == nil {
		t.Fatal("no block holds the labeled statement")
	}
	preds := 0
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.To == target {
				preds++
			}
		}
	}
	if preds < 2 {
		t.Errorf("label target has %d incoming edges, want >= 2 (fallthrough + goto back edge)", preds)
	}
	r := &recorder{}
	Interpret(g, nullState{}, r)
	if !r.visited("done()") {
		t.Error("statement after the goto loop never reached")
	}
	if r.exits != 1 {
		t.Errorf("exits = %d, want 1", r.exits)
	}
}

func TestCFGLabeledBreakTargetsOuterLoop(t *testing.T) {
	g := buildFuncCFG(t, `
func f() {
outer:
	for {
		for {
			break outer
		}
		x()
	}
	y()
}`)
	r := &recorder{}
	Interpret(g, nullState{}, r)
	// break outer exits both loops: y() runs, x() (after the inner
	// loop, still inside the outer body) is unreachable.
	if r.visited("x()") {
		t.Error("x() reached: labeled break fell out of the inner loop only")
	}
	if !r.visited("y()") {
		t.Error("y() not reached: labeled break did not exit the outer loop")
	}
}

func TestCFGPanicAndExitRouteToPanicBlock(t *testing.T) {
	for _, tc := range []struct{ name, stmt, desc string }{
		{"panic", `panic("boom")`, ""},
		{"osExit", `os.Exit(1)`, "os.Exit()"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := buildFuncCFG(t, `
func f(c bool) {
	if c {
		`+tc.stmt+`
	}
	after()
}`)
			found := false
			for _, blk := range g.Blocks {
				for _, e := range blk.Succs {
					if e.To == g.Panic {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("no edge to the Panic block for %s", tc.stmt)
			}
			r := &recorder{}
			Interpret(g, nullState{}, r)
			if !r.visited("after()") {
				t.Error("statement after the conditional terminator never reached")
			}
		})
	}
}

func TestCFGCondEdgesCarryConditionAndTaken(t *testing.T) {
	g := buildFuncCFG(t, `
func f(c, d bool) {
	if c {
		a()
	} else {
		b()
	}
	for d {
		e()
	}
}`)
	// Both the if and the for-cond header must emit a matched pair of
	// edges: same Cond expression, Taken true on one and false on the
	// other.
	pairs := map[ast.Expr][]bool{}
	for _, blk := range g.Blocks {
		for _, e := range blk.Succs {
			if e.Cond != nil {
				pairs[e.Cond] = append(pairs[e.Cond], e.Taken)
			}
		}
	}
	if len(pairs) != 2 {
		t.Fatalf("found %d distinct branch conditions, want 2", len(pairs))
	}
	for cond, takens := range pairs {
		if len(takens) != 2 || takens[0] == takens[1] {
			t.Errorf("condition %v has taken values %v, want one true and one false", cond, takens)
		}
	}
}

func TestInterpretPrunesInfeasibleEdges(t *testing.T) {
	g := buildFuncCFG(t, `
func f(c bool) {
	if c {
		a()
	} else {
		b()
	}
}`)
	r := &recorder{prune: func(cond ast.Expr, taken bool) bool { return !taken }}
	Interpret(g, nullState{}, r)
	if r.visited("a()") {
		t.Error("a() reached through an edge Branch declared infeasible")
	}
	if !r.visited("b()") {
		t.Error("b() not reached through the surviving edge")
	}
}

func TestImpliedTruths(t *testing.T) {
	parse := func(s string) ast.Expr {
		e, err := parser.ParseExpr(s)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	collect := func(cond ast.Expr, taken bool) map[string]bool {
		out := map[string]bool{}
		ImpliedTruths(cond, taken, func(atom ast.Expr, val bool) {
			if id, ok := atom.(*ast.Ident); ok {
				out[id.Name] = val
			}
		})
		return out
	}
	// a && !b taken true implies a true and b false.
	got := collect(parse("a && !b"), true)
	if !got["a"] || got["b"] || len(got) != 2 {
		t.Errorf("a && !b taken=true implied %v", got)
	}
	// a || b taken false refutes both.
	got = collect(parse("a || b"), false)
	if got["a"] || got["b"] || len(got) != 2 {
		t.Errorf("a || b taken=false implied %v", got)
	}
	// a || b taken true implies neither operand.
	if got = collect(parse("a || b"), true); len(got) != 0 {
		t.Errorf("a || b taken=true implied %v, want nothing", got)
	}
}
