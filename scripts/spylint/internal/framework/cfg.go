// Statement-level control-flow graphs for flow-sensitive analyzers.
//
// The builder keeps exactly the structure path-sensitive checks need
// and no more: blocks hold statements in execution order, conditional
// edges carry the branch condition and its taken value so an abstract
// interpreter can refine state per edge, returns are routed through
// the function's deferred calls (in LIFO order) before reaching Exit,
// and calls to panic / os.Exit / log.Fatal* terminate their path in a
// distinct Panic block. Goto, labeled break/continue, switch, type
// switch, and select are all lowered.
//
// Deliberate approximations, fine for linting: deferred calls are not
// replayed on panicking paths (a panicking path is already terminal
// for every analyzer built on this), case clauses do not carry their
// match conditions (only if/for conditions refine state), and a
// `select` without a default is treated like one whose clauses are
// all reachable.
package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Entry is the block execution starts in.
	Entry *Block
	// Exit is the single normal-return block (empty; reached after
	// the defer chain). Panic collects paths that end in panic or a
	// process-terminating call.
	Exit  *Block
	Panic *Block
	// Blocks lists every block, including unreachable ones created
	// after returns; block Index fields index into it.
	Blocks []*Block
}

// Block is a maximal straight-line run of statements.
type Block struct {
	Index int
	// Nodes holds the block's statements (and, for range and select
	// headers, the header node itself) in execution order.
	Nodes []ast.Node
	Succs []Edge
}

// Edge is a control transfer. When Cond is non-nil the edge is taken
// exactly when Cond evaluates to Taken.
type Edge struct {
	To    *Block
	Cond  ast.Expr
	Taken bool
}

// loopFrame tracks break/continue targets for one enclosing loop,
// switch, or select (continueTo is nil for switch/select frames).
type loopFrame struct {
	label      string
	breakTo    *Block
	continueTo *Block
}

type cfgBuilder struct {
	cfg   *CFG
	info  *types.Info
	cur   *Block
	ret   *Block // returns edge here; the defer chain is spliced in later
	loops []loopFrame
	// pendingLabel is set by a labeled loop/switch so the construct
	// registers the label on its own frame.
	pendingLabel string
	labels       map[string]*Block
	gotos        []pendingGoto
	defers       []*ast.CallExpr
}

type pendingGoto struct {
	from  *Block
	label string
}

// BuildCFG constructs the CFG of body. info may be nil; it is used
// only to recognize the panic builtin precisely (a shadowed `panic`
// is then not treated as terminating).
func BuildCFG(body *ast.BlockStmt, info *types.Info) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, info: info, labels: map[string]*Block{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cfg.Panic = b.newBlock()
	b.ret = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	b.edge(b.cur, Edge{To: b.ret})
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, Edge{To: target})
		}
	}
	// Splice the defer chain between the return-collector and Exit,
	// last registered defer first.
	tail := b.ret
	for i := len(b.defers) - 1; i >= 0; i-- {
		d := b.newBlock()
		d.Nodes = append(d.Nodes, b.defers[i])
		b.edge(tail, Edge{To: d})
		tail = d
	}
	b.edge(tail, Edge{To: b.cfg.Exit})
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from *Block, e Edge) { from.Succs = append(from.Succs, e) }

// terminate ends the current path (after a return, branch, or panic):
// subsequent statements land in a fresh predecessor-less block that
// the interpreter never visits.
func (b *cfgBuilder) terminate() { b.cur = b.newBlock() }

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isTerminatingCall reports whether call never returns: the panic
// builtin, os.Exit, or log.Fatal*.
func (b *cfgBuilder) isTerminatingCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name != "panic" {
			return false
		}
		if b.info != nil {
			if obj, ok := b.info.Uses[fun]; ok {
				_, isBuiltin := obj.(*types.Builtin)
				return isBuiltin
			}
		}
		return true
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		name := fun.Sel.Name
		switch {
		case pkg.Name == "os" && name == "Exit":
			return true
		case pkg.Name == "log" && (name == "Fatal" || name == "Fatalf" || name == "Fatalln"):
			return true
		}
	}
	return false
}

func (b *cfgBuilder) findLoop(label string, needContinue bool) *loopFrame {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := &b.loops[i]
		if needContinue && f.continueTo == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
			b.stmt(s.Stmt)
		default:
			target := b.newBlock()
			b.labels[s.Label.Name] = target
			b.edge(b.cur, Edge{To: target})
			b.cur = target
			b.stmt(s.Stmt)
		}

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && b.isTerminatingCall(call) {
			b.edge(b.cur, Edge{To: b.cfg.Panic})
			b.terminate()
		}

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, Edge{To: b.ret})
		b.terminate()

	case *ast.DeferStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.defers = append(b.defers, s.Call)

	case *ast.IfStmt:
		b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		then := b.newBlock()
		join := b.newBlock()
		b.edge(b.cur, Edge{To: then, Cond: s.Cond, Taken: true})
		if s.Else != nil {
			els := b.newBlock()
			b.edge(b.cur, Edge{To: els, Cond: s.Cond, Taken: false})
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, Edge{To: join})
		} else {
			b.edge(b.cur, Edge{To: join, Cond: s.Cond, Taken: false})
		}
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, Edge{To: join})
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		header := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, Edge{To: header})
		if s.Cond != nil {
			b.edge(header, Edge{To: body, Cond: s.Cond, Taken: true})
			b.edge(header, Edge{To: after, Cond: s.Cond, Taken: false})
		} else {
			b.edge(header, Edge{To: body})
		}
		continueTo := header
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			continueTo = post
		}
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after, continueTo: continueTo})
		b.cur = body
		b.stmt(s.Body)
		b.loops = b.loops[:len(b.loops)-1]
		if post != nil {
			b.edge(b.cur, Edge{To: post})
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.cur, Edge{To: header})
		} else {
			b.edge(b.cur, Edge{To: header})
		}
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		header := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, Edge{To: header})
		// The range header both evaluates s.X and binds the
		// iteration variables; expose it to Transfer as a node.
		header.Nodes = append(header.Nodes, s)
		b.edge(header, Edge{To: body})
		b.edge(header, Edge{To: after})
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after, continueTo: header})
		b.cur = body
		b.stmt(s.Body)
		b.loops = b.loops[:len(b.loops)-1]
		b.edge(b.cur, Edge{To: header})
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, &ast.ExprStmt{X: s.Tag})
		}
		b.switchClauses(label, s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.switchClauses(label, s.Body.List, s.Assign)

	case *ast.SelectStmt:
		label := b.takeLabel()
		after := b.newBlock()
		head := b.cur
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after})
		for _, c := range s.Body.List {
			comm := c.(*ast.CommClause)
			cb := b.newBlock()
			b.edge(head, Edge{To: cb})
			if comm.Comm != nil {
				cb.Nodes = append(cb.Nodes, comm.Comm)
			}
			b.cur = cb
			b.stmtList(comm.Body)
			b.edge(b.cur, Edge{To: after})
		}
		b.loops = b.loops[:len(b.loops)-1]
		if len(s.Body.List) == 0 {
			// Empty select blocks forever.
			b.edge(head, Edge{To: b.cfg.Panic})
		}
		b.cur = after

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if f := b.findLoop(label, false); f != nil {
				b.edge(b.cur, Edge{To: f.breakTo})
			}
			b.terminate()
		case token.CONTINUE:
			label := ""
			if s.Label != nil {
				label = s.Label.Name
			}
			if f := b.findLoop(label, true); f != nil {
				b.edge(b.cur, Edge{To: f.continueTo})
			}
			b.terminate()
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			b.terminate()
		case token.FALLTHROUGH:
			// Handled by switchClauses (the clause body falls into
			// the next clause's body block); nothing to do here.
		}

	default:
		// Assignments, declarations, sends, go statements, inc/dec,
		// and empty statements are straight-line.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchClauses lowers the clause list of a switch or type switch.
// assign, when non-nil (type switch), is replayed at the top of every
// clause so Transfer sees the per-clause binding.
func (b *cfgBuilder) switchClauses(label string, clauses []ast.Stmt, assign ast.Stmt) {
	after := b.newBlock()
	head := b.cur
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	b.loops = append(b.loops, loopFrame{label: label, breakTo: after})
	for i, cs := range clauses {
		clause := cs.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		b.edge(head, Edge{To: bodies[i]})
		b.cur = bodies[i]
		if assign != nil {
			b.stmt(assign)
		}
		fallsThrough := false
		for _, st := range clause.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				break
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(clauses) {
			b.edge(b.cur, Edge{To: bodies[i+1]})
			b.terminate()
		} else {
			b.edge(b.cur, Edge{To: after})
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	if !hasDefault {
		b.edge(head, Edge{To: after})
	}
	b.cur = after
}
