// Directive handling: the `//spylint:` comment grammar.
//
//	//spylint:allow <analyzer> <reason>   suppress <analyzer> findings
//	                                      on this line or the next
//	//spylint:scratch                     (in a func's doc comment)
//	                                      the function returns scratch
//	                                      owned by its receiver; see
//	                                      the scratchalias analyzer
//	//spylint:hotpath                     (in a func's doc comment)
//	                                      the function and everything
//	                                      it calls intra-module must be
//	                                      allocation-free; see the
//	                                      hotalloc analyzer
//
// A reason is mandatory on allow directives: an exemption nobody can
// explain is a finding in itself.
package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

const directivePrefix = "//spylint:"

// directive is one parsed //spylint: comment.
type directive struct {
	kind     string // "allow", "scratch", or "hotpath"
	analyzer string // allow only
	reason   string // allow only
	pos      token.Position
}

type directiveIndex struct {
	// byFileLine holds allow directives keyed by file then line.
	byFileLine map[string]map[int][]directive
	all        []directive
}

// collectDirectives parses every //spylint: comment in files.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveIndex {
	ix := &directiveIndex{byFileLine: map[string]map[int][]directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				fields := strings.Fields(rest)
				d := directive{pos: fset.Position(c.Pos())}
				if len(fields) > 0 {
					d.kind = fields[0]
				}
				if d.kind == "allow" {
					if len(fields) > 1 {
						d.analyzer = fields[1]
					}
					if len(fields) > 2 {
						d.reason = strings.Join(fields[2:], " ")
					}
					m := ix.byFileLine[d.pos.Filename]
					if m == nil {
						m = map[int][]directive{}
						ix.byFileLine[d.pos.Filename] = m
					}
					m[d.pos.Line] = append(m[d.pos.Line], d)
				}
				ix.all = append(ix.all, d)
			}
		}
	}
	return ix
}

// allowed reports whether an allow directive for analyzer sits on the
// diagnostic's line or the line directly above it.
func (ix *directiveIndex) allowed(analyzer string, pos token.Position) bool {
	m := ix.byFileLine[pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range m[line] {
			if d.analyzer == analyzer && d.reason != "" {
				return true
			}
		}
	}
	return false
}

// problems validates directive grammar: every directive must have a
// known kind, and allow directives need a known analyzer plus a
// non-empty reason.
func (ix *directiveIndex) problems(knownAnalyzers map[string]bool) []Diagnostic {
	var out []Diagnostic
	bad := func(d directive, msg string) {
		out = append(out, Diagnostic{Analyzer: "directive", Pos: d.pos, Message: msg})
	}
	for _, d := range ix.all {
		switch d.kind {
		case "scratch", "hotpath":
			// no operands
		case "allow":
			switch {
			case d.analyzer == "":
				bad(d, "malformed directive: //spylint:allow needs an analyzer name and a reason")
			case !knownAnalyzers[d.analyzer]:
				bad(d, "unknown analyzer "+d.analyzer+" in //spylint:allow directive")
			case d.reason == "":
				bad(d, "//spylint:allow "+d.analyzer+" needs a reason: exemptions must say why")
			}
		default:
			bad(d, "unknown //spylint: directive kind "+d.kind+" (want allow, scratch, or hotpath)")
		}
	}
	return out
}

// HasScratchDirective reports whether fn's doc comment carries a
// //spylint:scratch line, declaring that the function's reference-
// typed results alias receiver-owned scratch storage.
func HasScratchDirective(fn *ast.FuncDecl) bool { return hasDocDirective(fn, "scratch") }

// HasHotpathDirective reports whether fn's doc comment carries a
// //spylint:hotpath line, declaring the function a hot-path root that
// the hotalloc analyzer must prove allocation-free.
func HasHotpathDirective(fn *ast.FuncDecl) bool { return hasDocDirective(fn, "hotpath") }

func hasDocDirective(fn *ast.FuncDecl, kind string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directivePrefix+kind {
			return true
		}
	}
	return false
}
