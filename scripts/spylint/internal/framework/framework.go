// Package framework is the minimal analysis framework spylint runs
// on. It deliberately mirrors the shape of golang.org/x/tools/go/
// analysis (Analyzer, Pass, Report) so the analyzers read idiomatically
// — but it is implemented on the standard library only, because this
// repository builds in environments with no module proxy access. Two
// drivers feed it: vetunit.go speaks the `go vet -vettool=` protocol
// (the build system supplies parsed file lists and compiler export
// data), and standalone.go loads packages itself via `go list -deps
// -export -json` (used by the test harness and ad-hoc runs).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check.
type Analyzer struct {
	// Name is the directive name: `//spylint:allow <Name> <reason>`
	// suppresses this analyzer's diagnostics on the annotated line.
	Name string
	// Doc is a one-paragraph description (shown by `spylint help`).
	Doc string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass)
	// ExportsFacts marks analyzers that publish per-package facts
	// (strings) consumed by dependent packages' passes. Only these
	// run on dependency-only ("vetx only") compilation units.
	ExportsFacts bool
	// NeedsUnit, when non-nil, reports that this fact-exporting
	// analyzer must see the syntax of the given dependency package
	// even when its sources carry no //spylint: markers (hotalloc's
	// allocation summaries cover every intra-module package, marked
	// or not). Consulted only on the vet driver's fast path.
	NeedsUnit func(pkgPath string) bool
}

// A Pass holds one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path with any test-variant suffix
	// ("pkg [pkg.test]") stripped, so path-scoped analyzers match the
	// unit `go vet` builds for packages that have in-package tests.
	PkgPath string

	imported map[string]bool // facts from dependencies, this analyzer
	exported map[string]bool // facts this pass published
	diags    *[]Diagnostic
	dirs     *directiveIndex // lazily built for Allowed
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (spylint:%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos. Findings carrying an
// `//spylint:allow` directive on their line (or the line above) are
// filtered out by the driver after the pass completes.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether an `//spylint:allow` directive for this
// analyzer covers pos (same line or the line above). The driver
// filters reported diagnostics this way already; analyzers that
// derive facts from would-be findings (hotalloc's allocation
// summaries) call this during collection so an allowed site does not
// poison the function's exported fact.
func (p *Pass) Allowed(pos token.Pos) bool {
	if p.dirs == nil {
		p.dirs = collectDirectives(p.Fset, p.Files)
	}
	return p.dirs.allowed(p.Analyzer.Name, p.Fset.Position(pos))
}

// HasFact reports whether id was published by this analyzer in any
// dependency of the current package (or earlier in this pass).
func (p *Pass) HasFact(id string) bool {
	return p.imported[id] || p.exported[id]
}

// ExportFact publishes id to passes over packages that import this one.
func (p *Pass) ExportFact(id string) {
	p.exported[id] = true
}

// Facts maps analyzer name -> sorted fact IDs. This is the JSON payload
// of the per-package .vetx files the vet driver exchanges with the
// build system, and the in-memory currency of the standalone driver.
// Each unit's output re-exports everything it imported, so the build
// system only ever needs to supply direct dependencies' files.
type Facts map[string][]string

// merge returns the union of a and b.
func mergeFacts(a, b Facts) Facts {
	if len(b) == 0 {
		return a
	}
	out := Facts{}
	seen := map[string]map[string]bool{}
	for _, f := range []Facts{a, b} {
		for name, ids := range f {
			if seen[name] == nil {
				seen[name] = map[string]bool{}
			}
			for _, id := range ids {
				seen[name][id] = true
			}
		}
	}
	for name, set := range seen {
		ids := make([]string, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		out[name] = ids
	}
	return out
}

// NormalizePkgPath strips the " [pkg.test]" variant suffix `go vet`
// uses for compilation units that include in-package test files.
func NormalizePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// AnalyzeUnit runs every applicable analyzer over one type-checked
// package and returns the surviving diagnostics (allow-directives
// applied, _test.go positions untouched — analyzers decide file scope
// themselves) plus the unit's outgoing facts (own ∪ imported).
//
// When factsOnly is set (the unit is a dependency being analyzed for
// facts, not a vet target) only fact-exporting analyzers run and no
// diagnostics are returned.
func AnalyzeUnit(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info,
	pkgPath string, analyzers []*Analyzer, imported Facts, factsOnly bool) ([]Diagnostic, Facts) {

	var diags []Diagnostic
	own := Facts{}
	for _, a := range analyzers {
		if factsOnly && !a.ExportsFacts {
			continue
		}
		imp := map[string]bool{}
		for _, id := range imported[a.Name] {
			imp[id] = true
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			PkgPath:  NormalizePkgPath(pkgPath),
			imported: imp,
			exported: map[string]bool{},
			diags:    &diags,
		}
		a.Run(pass)
		if len(pass.exported) > 0 {
			ids := make([]string, 0, len(pass.exported))
			for id := range pass.exported {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			own[a.Name] = ids
		}
	}
	out := mergeFacts(own, imported)
	if factsOnly {
		return nil, out
	}

	// Apply //spylint:allow directives and validate their grammar.
	dirs := collectDirectives(fset, files)
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	diags = append(diags, dirs.problems(known)...)
	kept := diags[:0]
	for _, d := range diags {
		if !dirs.allowed(d.Analyzer, d.Pos) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, out
}
