// The `go vet -vettool=` driver. The build system invokes the tool
// once per compilation unit with a JSON config file naming the Go
// sources, the compiler export data of every dependency, and the fact
// files of already-vetted dependencies; the tool type-checks the unit,
// runs the analyzers, writes its own fact file, and reports findings
// on stderr (exit 1). Dependencies are visited in "vetx only" mode:
// facts only, no diagnostics — exactly the contract
// golang.org/x/tools/go/analysis/unitchecker implements, rebuilt here
// on the standard library alone.
package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
)

// VetConfig is the JSON compilation-unit description `go vet` writes
// (cmd/go/internal/work.buildVetConfig); field names are the protocol.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetUnit analyzes the unit described by cfgPath and exits the
// process with the protocol's status code.
func RunVetUnit(cfgPath string, analyzers []*Analyzer) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("spylint: cannot decode vet config %s: %v", cfgPath, err)
	}
	if len(cfg.GoFiles) == 0 {
		log.Fatalf("spylint: package %s has no Go files", cfg.ImportPath)
	}

	imported := readImportedFacts(cfg.PackageVetx)

	srcs := make(map[string][]byte, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		b, err := os.ReadFile(name)
		if err != nil {
			log.Fatal(err)
		}
		srcs[name] = b
	}

	// Dependency units only publish facts, and facts mostly come from
	// //spylint: annotations — if no source mentions the marker and no
	// analyzer declares (via NeedsUnit) that it summarizes this
	// package regardless, re-export the imported facts without paying
	// for a parse and type-check. This keeps the first
	// `go vet -vettool` sweep over the standard library cheap while
	// letting hotalloc see every intra-module dependency.
	if cfg.VetxOnly && !anySpylintMarker(srcs) && !anyAnalyzerNeedsUnit(analyzers, cfg.ImportPath) {
		writeFacts(cfg.VetxOutput, imported)
		os.Exit(0)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, srcs[name], parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeFacts(cfg.VetxOutput, imported)
				os.Exit(0)
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeFacts(cfg.VetxOutput, imported)
			os.Exit(0)
		}
		log.Fatalf("spylint: %v", err)
	}

	diags, out := AnalyzeUnit(fset, files, pkg, info, cfg.ImportPath, analyzers, imported, cfg.VetxOnly)
	writeFacts(cfg.VetxOutput, out)
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(1)
	}
	os.Exit(0)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newTypesInfo allocates the full set of type-checker result maps the
// analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

func anySpylintMarker(srcs map[string][]byte) bool {
	marker := []byte("spylint:")
	for _, b := range srcs {
		if bytes.Contains(b, marker) {
			return true
		}
	}
	return false
}

func anyAnalyzerNeedsUnit(analyzers []*Analyzer, importPath string) bool {
	path := NormalizePkgPath(importPath)
	for _, a := range analyzers {
		if a.ExportsFacts && a.NeedsUnit != nil && a.NeedsUnit(path) {
			return true
		}
	}
	return false
}

// readImportedFacts loads and merges the fact files of every vetted
// dependency. A missing or malformed file contributes nothing: facts
// are an accelerant for cross-package checks, not a correctness gate,
// and dependency units from older tool versions must not wedge a vet.
func readImportedFacts(pkgVetx map[string]string) Facts {
	merged := Facts{}
	for _, file := range pkgVetx {
		b, err := os.ReadFile(file)
		if err != nil || len(b) == 0 {
			continue
		}
		var f Facts
		if json.Unmarshal(b, &f) != nil {
			continue
		}
		merged = mergeFacts(merged, f)
	}
	return merged
}

func writeFacts(path string, f Facts) {
	if path == "" {
		return
	}
	b, err := json.Marshal(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o666); err != nil {
		log.Fatal(err)
	}
}
