// The standalone driver: loads packages with `go list -deps -export
// -json`, type-checks them against the compiler export data the list
// step produced, and runs the analyzers over every requested (root)
// package, with facts flowing dependency-first in memory. The test
// harness drives analyzers through this path; `spylint ./...` from a
// module directory uses it too.
package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct {
		Path      string
		GoVersion string
	}
}

// RunStandalone loads the packages matched by patterns (resolved in
// dir, "" meaning the current directory) and runs the analyzers over
// every non-dependency match. It returns the surviving diagnostics.
func RunStandalone(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,CgoFiles,Imports,Export,DepOnly,Standard,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var pkgs []*listPackage
	exports := map[string]string{} // package path -> export data file
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	compilerImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var diags []Diagnostic
	facts := map[string]Facts{} // package path -> published facts
	// `go list -deps` emits packages in dependency order, so by the
	// time a package is type-checked every import's facts are known.
	for _, p := range pkgs {
		if p.Standard {
			continue // no spylint annotations in the standard library
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: spylint does not support cgo packages", p.ImportPath)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		tc := &types.Config{
			Importer: importerFunc(func(path string) (*types.Package, error) {
				return compilerImporter.Import(path)
			}),
			Sizes: types.SizesFor("gc", build.Default.GOARCH),
		}
		if p.Module != nil && p.Module.GoVersion != "" {
			tc.GoVersion = "go" + p.Module.GoVersion
		}
		info := newTypesInfo()
		pkg, err := tc.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		imported := Facts{}
		for _, imp := range p.Imports {
			imported = mergeFacts(imported, facts[imp])
		}
		ds, out := AnalyzeUnit(fset, files, pkg, info, p.ImportPath, analyzers, imported, p.DepOnly)
		facts[p.ImportPath] = out
		diags = append(diags, ds...)
	}
	return diags, nil
}
