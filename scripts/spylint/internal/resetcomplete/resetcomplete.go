// Package resetcomplete guards the machine-pooling invariant: a
// pooled object's Reset must rewind every piece of state its
// constructor establishes, or trials leak state into each other and
// the golden byte-identity tests fail long after the cause is
// obvious. For every named struct type with a pointer-receiver Reset
// (or Reseed, the RNG spelling) method, the analyzer requires each
// struct field to be either
//
//   - mutated somewhere in the reset method (assigned, cleared,
//     receiver of a method call, address-taken, or — for collections —
//     ranged over with the element mutated), including through helper
//     methods on the same receiver; or
//   - explicitly exempted with `//spylint:allow resetcomplete <reason>`
//     on the field's declaration line (construction-time constants,
//     synchronization primitives).
//
// Adding a struct field without extending Reset then fails the lint
// instead of becoming a pooling heisenbug.
package resetcomplete

import (
	"go/ast"
	"go/types"
	"strings"

	"spylint/internal/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "resetcomplete",
	Doc:  "every struct field of a type with a Reset/Reseed method must be reset or explicitly exempted",
	Run:  run,
}

// resetNames are the method names that identify a resettable type, in
// preference order (a type with both is judged by Reset alone).
var resetNames = []string{"Reset", "Reseed"}

func run(pass *framework.Pass) {
	// Index every method declared on a named type in this package.
	methods := map[string]map[string]*ast.FuncDecl{} // type name -> method name -> decl
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			tname := recvTypeName(fd.Recv.List[0].Type)
			if tname == "" {
				continue
			}
			if methods[tname] == nil {
				methods[tname] = map[string]*ast.FuncDecl{}
			}
			methods[tname][fd.Name.Name] = fd
		}
	}

	for tname, ms := range methods {
		var reset *ast.FuncDecl
		for _, rn := range resetNames {
			if ms[rn] != nil {
				reset = ms[rn]
				break
			}
		}
		if reset == nil || reset.Body == nil {
			continue
		}
		// Only pointer receivers can reset anything.
		if _, ok := reset.Recv.List[0].Type.(*ast.StarExpr); !ok {
			continue
		}
		obj, ok := pass.Pkg.Scope().Lookup(tname).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		c := &coverage{pass: pass, methods: ms, covered: map[string]bool{}, visited: map[*ast.FuncDecl]bool{}}
		c.walkMethod(reset)
		if c.all {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" || c.covered[f.Name()] {
				continue
			}
			pass.Reportf(f.Pos(),
				"field %s.%s is not reset by %s; a pooled %s would leak it across trials — reset it or exempt it with //spylint:allow resetcomplete <reason>",
				tname, f.Name(), reset.Name.Name, tname)
		}
	}
}

// recvTypeName unwraps a receiver type expression to its base name.
func recvTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr: // generic receiver T[P]
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// coverage walks a reset method (and same-receiver helpers it calls)
// recording which receiver fields are mutated.
type coverage struct {
	pass    *framework.Pass
	methods map[string]*ast.FuncDecl
	covered map[string]bool
	visited map[*ast.FuncDecl]bool
	all     bool // *recv = ... assigns every field
}

func (c *coverage) walkMethod(fd *ast.FuncDecl) {
	if c.visited[fd] || fd.Body == nil {
		return
	}
	c.visited[fd] = true
	if len(fd.Recv.List[0].Names) != 1 {
		return // unnamed receiver: nothing can be covered
	}
	recv := c.pass.Info.Defs[fd.Recv.List[0].Names[0]]
	if recv == nil {
		return
	}
	c.walkBody(fd.Body, recv)
}

// walkBody scans one body for mutations rooted at root (the receiver,
// or a range-element variable standing in for a field).
func (c *coverage) walkBody(body ast.Node, root types.Object) {
	mark := func(field string, isRoot bool) {
		if isRoot {
			c.all = true // *recv = T{...} rewrites every field
		} else if field != "" {
			c.covered[field] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(c.rootField(lhs, root))
			}
		case *ast.IncDecStmt:
			mark(c.rootField(n.X, root))
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if f, _ := c.rootField(n.X, root); f != "" {
					c.covered[f] = true
				}
			}
		case *ast.CallExpr:
			c.call(n, root)
		case *ast.RangeStmt:
			c.rangeStmt(n, root)
		}
		return true
	})
}

// call handles mutation through calls: builtins that write their
// argument, method calls on a field, and helper methods on the same
// receiver (recursed into).
func (c *coverage) call(n *ast.CallExpr, root types.Object) {
	switch fun := n.Fun.(type) {
	case *ast.Ident:
		// Builtins that mutate their first argument.
		if (fun.Name == "clear" || fun.Name == "delete" || fun.Name == "copy") && len(n.Args) > 0 {
			if f, _ := c.rootField(n.Args[0], root); f != "" {
				c.covered[f] = true
			}
		}
	case *ast.SelectorExpr:
		if f, isRoot := c.rootField(fun.X, root); f != "" {
			// recv.field.Method(...): the method can rewind the field.
			c.covered[f] = true
		} else if isRoot {
			// recv.helper(...): recurse into same-type helper methods
			// so Reset may delegate (Flush, ResetStats, ...).
			if helper := c.methods[fun.Sel.Name]; helper != nil {
				c.walkMethod(helper)
			}
		}
	}
}

// rangeStmt covers the `for i, d := range recv.f { d.Reset(...) }`
// idiom: the field is covered when the range element is mutated.
func (c *coverage) rangeStmt(n *ast.RangeStmt, root types.Object) {
	f, _ := c.rootField(n.X, root)
	if f == "" || c.covered[f] {
		return
	}
	val, ok := n.Value.(*ast.Ident)
	if !ok || val.Name == "_" {
		return
	}
	elem := c.pass.Info.Defs[val]
	if elem == nil {
		return
	}
	before := c.all
	sub := &coverage{pass: c.pass, methods: map[string]*ast.FuncDecl{}, covered: map[string]bool{}, visited: map[*ast.FuncDecl]bool{}}
	sub.walkBody(n.Body, elem)
	// Any mutation through the element variable counts: a method call
	// on it, taking its address, assigning through it.
	if sub.all || len(sub.covered) > 0 || sub.elementMutated(n.Body, elem) {
		c.covered[f] = true
	}
	c.all = before
}

// elementMutated reports whether v is used as a method-call receiver
// inside body — for pointer elements (e.g. []*Device) a call like
// d.Reset(...) mutates the pointee without any selector-field shape.
func (c *coverage) elementMutated(body ast.Node, v types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && c.pass.Info.Uses[id] == v {
			found = true
			return false
		}
		return true
	})
	return found
}

// rootField resolves expr to (fieldName, false) when it is rooted at
// root via a selector (root.f, root.f[i], *root.f, root.f.g, ...), or
// ("", true) when expr IS root (possibly via * / parens) — the
// *recv = value whole-struct form.
func (c *coverage) rootField(expr ast.Expr, root types.Object) (string, bool) {
	field := ""
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.SelectorExpr:
			field = e.Sel.Name
			expr = e.X
		case *ast.Ident:
			obj := c.pass.Info.Uses[e]
			if obj == nil {
				obj = c.pass.Info.Defs[e]
			}
			if obj != root {
				return "", false
			}
			if field == "" {
				return "", true
			}
			return field, false
		default:
			return "", false
		}
	}
}
