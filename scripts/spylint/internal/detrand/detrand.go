// Package detrand enforces the repository's trial-determinism
// contract inside the simulation packages: every trial must be
// bit-identical at any -parallel, which the golden byte-identity tests
// pin after the fact. This analyzer bans the sources of silent
// nondeterminism before they reach a golden diff:
//
//   - reading the wall clock (time.Now / time.Since / time.Until) —
//     simulated time is the only clock;
//   - math/rand (v1 or v2) — all randomness routes through
//     internal/xrand so streams are seeded and splittable;
//   - ranging over a map — iteration order varies run to run;
//   - package-level `var` declarations — shared mutable state lets one
//     trial perturb another.
//
// Benign cases (a map range whose order provably cannot be observed, a
// test hook) carry `//spylint:allow detrand <reason>` on the line.
// Test files are exempt: the invariant protects simulation results,
// and tests exercise determinism rather than produce it.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"spylint/internal/framework"
)

// Packages is the deterministic set: the simulation packages plus the
// measurement/analysis layers (memgram, classify, mitigate, stats)
// whose behaviour the golden byte-identity tests cover (the root
// module's TestDetPackagesMatchGoldenCoverage pins this list against
// the golden tests' actual import graph). Service-layer packages
// (pkg/spybox, cmd/...) are deliberately outside the set: they report
// wall-clock progress and talk to the OS, and determinism there is
// neither promised nor tested.
var Packages = []string{
	"spybox/internal/sim",
	"spybox/internal/l2cache",
	"spybox/internal/nvlink",
	"spybox/internal/gpu",
	"spybox/internal/hbm",
	"spybox/internal/vmem",
	"spybox/internal/core",
	"spybox/internal/game",
	"spybox/internal/expt",
	"spybox/internal/memgram",
	"spybox/internal/classify",
	"spybox/internal/mitigate",
	"spybox/internal/stats",
}

var bannedImports = map[string]string{
	"math/rand":    "use internal/xrand: all randomness must be seeded and splittable",
	"math/rand/v2": "use internal/xrand: all randomness must be seeded and splittable",
}

var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

var Analyzer = &framework.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock reads, math/rand, map ranges, and package-level mutable state " +
		"in the deterministic simulation packages",
	Run: run,
}

func run(pass *framework.Pass) {
	det := false
	for _, p := range Packages {
		if pass.PkgPath == p {
			det = true
			break
		}
	}
	if !det {
		return
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		checkFile(pass, file)
	}
}

func isTestFile(pass *framework.Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
}

func checkFile(pass *framework.Pass, file *ast.File) {
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if why, ok := bannedImports[path]; ok {
			pass.Reportf(imp.Pos(), "deterministic package imports %s; %s", path, why)
		}
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok.String() != "var" {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if name.Name == "_" {
					continue // interface-compliance assertions are immutable
				}
				pass.Reportf(name.Pos(),
					"package-level var %s is mutable state in a deterministic package; move it into a seeded struct or annotate why it cannot perturb trials", name.Name)
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if fn, ok := pass.Info.Uses[n].(*types.Func); ok {
				if fn.Pkg() != nil && fn.Pkg().Path() == "time" && bannedTimeFuncs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"deterministic package reads the wall clock (time.%s); simulated cycles are the only clock here", fn.Name())
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(),
						"range over a map has nondeterministic iteration order; iterate a sorted slice or annotate why the order cannot be observed")
				}
			}
		}
		return true
	})
}
