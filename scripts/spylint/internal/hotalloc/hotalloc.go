// Package hotalloc is the vet-time twin of the repository's 0
// allocs/op benchmark gates (BENCH_core.json): functions whose doc
// comment carries `//spylint:hotpath` — the sim event dispatch, the
// scheduler heap, the L2 probe/eviction loop, game.Engine.Step — plus
// everything they call intra-module, must be allocation-free.
//
// The analyzer flags, inside the hot closure:
//
//   - make, new, and slice/map composite literals (and &T{...});
//   - append growth onto a base that is not caller- or
//     receiver-owned scratch (appending to a fresh local grows a
//     heap slice every call; appending to a reused field or
//     parameter amortizes);
//   - function literals that capture variables, and go statements;
//   - string concatenation and allocating string conversions
//     (string<->[]byte/[]rune, integer->string);
//   - interface boxing at call sites, and any call into fmt/errors;
//   - dynamic calls (func values, interface methods) that cannot be
//     proven allocation-free.
//
// Allocations whose only use is a panic argument are exempt — a
// panicking hot path is already beyond performance concerns. A
// cold-but-reachable site carries `//spylint:allow hotalloc <reason>`;
// an allowed site also stays out of the function's exported
// allocation summary, so callers are not blamed for it.
//
// Cross-package reach uses exported facts: every intra-module package
// publishes the set of its functions that (transitively) allocate,
// and a hot function calling one of them is flagged at the call site.
// Test files are exempt.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"spylint/internal/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "hotalloc",
	Doc: "functions annotated //spylint:hotpath, and everything they call intra-module, " +
		"must be allocation-free (the vet-time twin of the 0 allocs/op benchmark gates)",
	Run:          run,
	ExportsFacts: true,
	NeedsUnit:    inModule,
}

// inModule reports whether pkgPath belongs to the root module, whose
// packages all export allocation summaries so hot callers in
// dependent packages can be checked.
func inModule(pkgPath string) bool {
	return pkgPath == "spybox" || strings.HasPrefix(pkgPath, "spybox/")
}

// allocPkgs are packages whose exported functions allocate by
// construction; any call into them from hot code is a finding.
var allocPkgs = map[string]bool{"fmt": true, "errors": true}

// site is one direct allocation in a function body.
type site struct {
	pos  token.Pos
	what string
}

type funcInfo struct {
	obj      *types.Func
	decl     *ast.FuncDecl
	hot      bool
	sites    []site
	callees  map[*types.Func]token.Pos // static callees, first call site
	dynCalls []token.Pos
}

func run(pass *framework.Pass) {
	infos := map[*types.Func]*funcInfo{}
	var order []*funcInfo
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{
				obj:     obj,
				decl:    fd,
				hot:     framework.HasHotpathDirective(fd),
				callees: map[*types.Func]token.Pos{},
			}
			collect(pass, fd, fi)
			infos[obj] = fi
			order = append(order, fi)
		}
	}

	// Transitive allocation summaries over the in-package call graph;
	// out-of-package intra-module callees contribute via facts.
	allocating := map[*types.Func]bool{}
	for changed := true; changed; {
		changed = false
		for _, fi := range order {
			if allocating[fi.obj] {
				continue
			}
			a := len(fi.sites) > 0 || len(fi.dynCalls) > 0
			if !a {
				for callee := range fi.callees {
					if calleeAllocates(pass, infos, allocating, callee) {
						a = true
						break
					}
				}
			}
			if a {
				allocating[fi.obj] = true
				changed = true
			}
		}
	}
	for _, fi := range order {
		if allocating[fi.obj] {
			if id := funcID(fi.obj); id != "" {
				pass.ExportFact(id)
			}
		}
	}

	// Hot closure: annotated roots plus every in-package function they
	// transitively call. Direct sites are reported where they sit;
	// cross-package allocating callees are reported at the call site.
	reach := map[*types.Func]string{}
	var queue []*funcInfo
	for _, fi := range order {
		if fi.hot {
			reach[fi.obj] = fi.obj.Name()
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		root := reach[fi.obj]
		for _, s := range fi.sites {
			pass.Reportf(s.pos, "%s on the hot path rooted at %s", s.what, root)
		}
		for _, pos := range fi.dynCalls {
			pass.Reportf(pos, "dynamic call on the hot path rooted at %s cannot be proven allocation-free; "+
				"//spylint:allow hotalloc with why it does not allocate, or devirtualize", root)
		}
		for callee, cpos := range fi.callees {
			if local, ok := infos[callee]; ok {
				if _, seen := reach[callee]; !seen {
					reach[callee] = root
					queue = append(queue, local)
				}
				continue
			}
			pkg := callee.Pkg()
			if pkg == nil {
				continue
			}
			path := framework.NormalizePkgPath(pkg.Path())
			if path == pass.PkgPath || !inModule(path) {
				continue
			}
			if pass.HasFact(funcID(callee)) && !pass.Allowed(cpos) {
				pass.Reportf(cpos, "call to %s allocates, on the hot path rooted at %s", funcID(callee), root)
			}
		}
	}
}

func calleeAllocates(pass *framework.Pass, infos map[*types.Func]*funcInfo,
	allocating map[*types.Func]bool, callee *types.Func) bool {
	if _, ok := infos[callee]; ok {
		return allocating[callee]
	}
	pkg := callee.Pkg()
	if pkg == nil {
		return false
	}
	path := framework.NormalizePkgPath(pkg.Path())
	if allocPkgs[path] {
		return true
	}
	if path == pass.PkgPath {
		// Declared in this package but no body seen (test file,
		// assembly): assume clean rather than guess.
		return false
	}
	if inModule(path) {
		return pass.HasFact(funcID(callee))
	}
	// The rest of the standard library is trusted not to allocate
	// unless it boxes at the call site, which is flagged separately.
	return false
}

// collect records fi's direct allocation sites, static callees, and
// dynamic calls. Function-literal bodies belong to the literal (the
// capture, go statement, or dynamic call is the finding); panic
// arguments are cold; allowed sites stay out of the summary.
func collect(pass *framework.Pass, fd *ast.FuncDecl, fi *funcInfo) {
	fresh := freshLocals(pass, fd)
	add := func(pos token.Pos, what string) {
		if !pass.Allowed(pos) {
			fi.sites = append(fi.sites, site{pos, what})
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capturesVars(pass, n) {
				add(n.Pos(), "function literal captures variables (closure allocates)")
			}
			return false
		case *ast.GoStmt:
			add(n.Pos(), "go statement starts a goroutine")
			return false
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					add(n.Pos(), "slice literal allocates")
				case *types.Map:
					add(n.Pos(), "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "composite literal escapes to the heap (&T{...})")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.Info.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
					add(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.CallExpr:
			return visitCall(pass, fi, fresh, add, n)
		}
		return true
	})
}

// visitCall classifies one call expression; the return value says
// whether to descend into the call's children.
func visitCall(pass *framework.Pass, fi *funcInfo, fresh map[*types.Var]bool,
	add func(token.Pos, string), call *ast.CallExpr) bool {

	fun := unparen(call.Fun)
	if tv, ok := pass.Info.Types[fun]; ok && tv.IsType() {
		checkConversion(pass, add, call, tv.Type)
		return true
	}

	switch f := fun.(type) {
	case *ast.Ident:
		if b, ok := pass.Info.Uses[f].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 && baseIsFresh(pass, fresh, call.Args[0]) {
					add(call.Pos(), "append grows a fresh slice every call (no reused backing array)")
				}
			case "panic":
				// Allocations feeding a panic are cold by definition.
				return false
			}
			return true
		}
	}

	callee := staticCallee(pass, fun)
	if callee == nil {
		if !pass.Allowed(call.Pos()) {
			fi.dynCalls = append(fi.dynCalls, call.Pos())
		}
		return true
	}
	if pkg := callee.Pkg(); pkg != nil && allocPkgs[pkg.Path()] {
		add(call.Pos(), "call to "+pkg.Path()+"."+callee.Name()+" allocates")
		return true
	}
	if _, seen := fi.callees[callee]; !seen {
		fi.callees[callee] = call.Pos()
	}
	checkBoxing(pass, add, call, callee)
	return true
}

// staticCallee resolves fun to a concrete *types.Func, or nil for
// func values and interface-method calls (dynamic dispatch).
func staticCallee(pass *framework.Pass, fun ast.Expr) *types.Func {
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[f]
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[f]; ok {
			if recv := sel.Recv(); recv != nil && types.IsInterface(recv) {
				return nil
			}
		}
		obj = pass.Info.Uses[f.Sel]
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// checkConversion flags T(x) conversions that allocate.
func checkConversion(pass *framework.Pass, add func(token.Pos, string), call *ast.CallExpr, dst types.Type) {
	if len(call.Args) != 1 {
		return
	}
	atv, ok := pass.Info.Types[call.Args[0]]
	if !ok || atv.Type == nil || atv.IsNil() {
		return
	}
	src := atv.Type
	switch {
	case isString(dst) && (isByteOrRuneSlice(src) || isInteger(src)):
		add(call.Pos(), "string conversion allocates")
	case isByteOrRuneSlice(dst) && isString(src):
		add(call.Pos(), "conversion to a byte/rune slice allocates")
	case types.IsInterface(dst.Underlying()) && !types.IsInterface(src):
		add(call.Pos(), "conversion boxes into an interface")
	}
}

// checkBoxing flags arguments boxed into interface parameters.
func checkBoxing(pass *framework.Pass, add func(token.Pos, string), call *ast.CallExpr, callee *types.Func) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				return
			}
			pt = params.At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = params.At(i).Type()
		default:
			return
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		atv, ok := pass.Info.Types[arg]
		if !ok || atv.Type == nil || atv.IsNil() {
			continue
		}
		if !types.IsInterface(atv.Type) {
			add(arg.Pos(), "argument boxes into an interface parameter")
		}
	}
}

// freshLocals computes the function's locals that can only hold a
// freshly allocated (or nil) slice: declared in this body and only
// ever assigned make/composite-literal/nil results or appends to
// themselves. Appending to such a local grows a new backing array on
// every call; appending to anything else (fields, parameters, slices
// of either) amortizes into caller- or receiver-owned scratch.
func freshLocals(pass *framework.Pass, fd *ast.FuncDecl) map[*types.Var]bool {
	fresh := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if spec, ok := n.(*ast.ValueSpec); ok && len(spec.Values) == 0 {
			for _, name := range spec.Names {
				if v, ok := pass.Info.Defs[name].(*types.Var); ok && isSlice(v.Type()) {
					fresh[v] = true
				}
			}
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != len(as.Lhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			v, _ := pass.Info.Defs[id].(*types.Var)
			if v == nil {
				v, _ = pass.Info.Uses[id].(*types.Var)
			}
			if v == nil || !isSlice(v.Type()) {
				continue
			}
			if freshRHS(pass, v, as.Rhs[i]) {
				if _, known := fresh[v]; !known {
					fresh[v] = true
				}
			} else {
				fresh[v] = false
			}
		}
		return true
	})
	out := map[*types.Var]bool{}
	for v, f := range fresh {
		if f {
			out[v] = true
		}
	}
	return out
}

// freshRHS reports whether assigning e to v keeps v fresh: a make, a
// composite literal, nil, or an append to v itself.
func freshRHS(pass *framework.Pass, v *types.Var, e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.Ident:
		if tv, ok := pass.Info.Types[e]; ok && tv.IsNil() {
			return true
		}
	case *ast.CallExpr:
		fun, ok := unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := pass.Info.Uses[fun].(*types.Builtin)
		if !ok {
			return false
		}
		switch b.Name() {
		case "make":
			return true
		case "append":
			if len(e.Args) > 0 {
				if base, ok := unparen(e.Args[0]).(*ast.Ident); ok {
					return pass.Info.Uses[base] == v
				}
			}
		}
	}
	return false
}

func baseIsFresh(pass *framework.Pass, fresh map[*types.Var]bool, base ast.Expr) bool {
	switch e := unparen(base).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.Ident:
		if tv, ok := pass.Info.Types[e]; ok && tv.IsNil() {
			return true
		}
		if v, ok := pass.Info.Uses[e].(*types.Var); ok {
			return fresh[v]
		}
	}
	return false
}

// capturesVars reports whether lit references a variable declared
// outside it in an enclosing function (a closure that must allocate).
func capturesVars(pass *framework.Pass, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit, func(n ast.Node) bool {
		if captures {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == types.Universe || v.Parent() == pass.Pkg.Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			captures = true
		}
		return true
	})
	return captures
}

func funcID(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return "(" + framework.NormalizePkgPath(named.Obj().Pkg().Path()) + "." +
			named.Obj().Name() + ")." + fn.Name()
	}
	if fn.Pkg() == nil {
		return ""
	}
	return framework.NormalizePkgPath(fn.Pkg().Path()) + "." + fn.Name()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isTestFile(pass *framework.Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isSlice(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
