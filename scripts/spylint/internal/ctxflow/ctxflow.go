// Package ctxflow enforces context propagation in the library-facing
// packages (pkg/spybox, pkg/spybox/service, internal/expt):
//
//   - an exported function or method that can block — channel sends,
//     receives, default-less selects, time.Sleep, WaitGroup.Wait,
//     Cond.Wait, or a call to any context-accepting function — must
//     accept a context.Context as its first parameter. A parameter
//     struct carrying a context.Context field (the expt.Params.Ctx
//     pattern) also satisfies the rule;
//   - inside a function that has a ctx parameter, every call to a
//     context-accepting callee must be passed that ctx (or a context
//     derived from it via context.With*), not a fresh one;
//   - context.Background() / context.TODO() are flagged everywhere in
//     these packages — they belong in main and in tests. A nil-ctx
//     default or a job outliving its request carries
//     `//spylint:allow ctxflow <reason>`.
//
// Test files are exempt.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"spylint/internal/framework"
)

// targetPkgs are the packages whose APIs callers cancel.
var targetPkgs = map[string]bool{
	"spybox/pkg/spybox":         true,
	"spybox/pkg/spybox/service": true,
	"spybox/internal/expt":      true,
}

var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc: "exported blocking APIs in the library packages must accept context.Context first " +
		"and pass it to blocking callees; context.Background()/TODO() belong in main and tests",
	Run: run,
}

func run(pass *framework.Pass) {
	if !targetPkgs[pass.PkgPath] {
		return
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	ctxParam := firstParamCtx(pass, fd)

	// The Background/TODO ban and the pass-the-ctx rule apply to every
	// function body here; the signature rule only to exported API.
	banFreshContexts(pass, fd, ctxParam)
	if ctxParam != nil {
		checkCtxHandoff(pass, fd, ctxParam)
	}

	if ctxParam != nil || !isExportedAPI(pass, fd) {
		return
	}
	if hasCtxStructParam(pass, fd) {
		return
	}
	if why := blocksBecause(pass, fd); why != "" {
		pass.Reportf(fd.Name.Pos(),
			"exported API %s can block (%s) but takes no context.Context: accept a ctx as the first parameter (or a params struct with a Context field) so callers can cancel",
			fd.Name.Name, why)
	}
}

// banFreshContexts flags context.Background()/TODO() calls.
func banFreshContexts(pass *framework.Pass, fd *ast.FuncDecl, ctxParam types.Object) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := contextPkgFunc(pass, call); name == "Background" || name == "TODO" {
			hint := "thread the caller's ctx through instead"
			if ctxParam == nil {
				hint = "accept and thread a caller ctx instead"
			}
			pass.Reportf(call.Pos(), "context.%s() in library code detaches this work from caller cancellation; %s", name, hint)
		}
		return true
	})
}

// checkCtxHandoff verifies that context-accepting callees receive the
// incoming ctx or a derivation of it.
func checkCtxHandoff(pass *framework.Pass, fd *ast.FuncDecl, ctxParam types.Object) {
	derived := derivedCtxVars(pass, fd, ctxParam)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !calleeTakesCtx(pass, call) || len(call.Args) == 0 {
			return true
		}
		arg := call.Args[0]
		if name := contextPkgFunc(pass, argCall(arg)); name == "Background" || name == "TODO" {
			return true // the Background/TODO ban already points here
		}
		if !ctxDerived(pass, arg, ctxParam, derived) {
			pass.Reportf(arg.Pos(),
				"%s drops the incoming ctx: pass the function's context.Context parameter (or a context derived from it) so cancellation propagates", fd.Name.Name)
		}
		return true
	})
}

// derivedCtxVars computes the context-typed variables derived from
// ctxParam: assigned from it, or from context.With*/context values
// built on a derived one. One fixpoint pass handles chains declared
// in source order (the overwhelmingly common case).
func derivedCtxVars(pass *framework.Pass, fd *ast.FuncDecl, ctxParam types.Object) map[types.Object]bool {
	derived := map[types.Object]bool{ctxParam: true}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) == 0 {
				return true
			}
			// ctx2 := context.WithX(ctx, ...) / ctx2 := ctx
			rhsDerived := false
			for _, rhs := range as.Rhs {
				if ctxDerived(pass, rhs, ctxParam, derived) {
					rhsDerived = true
				}
			}
			if !rhsDerived {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil && isContextType(obj.Type()) && !derived[obj] {
					derived[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return derived
}

// ctxDerived reports whether e evaluates to a context derived from
// ctxParam.
func ctxDerived(pass *framework.Pass, e ast.Expr, ctxParam types.Object, derived map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.Info.Uses[e]
		return obj != nil && derived[obj]
	case *ast.CallExpr:
		// context.WithCancel(parent, ...) and friends derive from
		// their first argument; so does any ctx-first call returning
		// a context.
		if len(e.Args) > 0 && (contextPkgFunc(pass, e) != "" || calleeTakesCtx(pass, e)) {
			return ctxDerived(pass, e.Args[0], ctxParam, derived)
		}
	case *ast.ParenExpr:
		return ctxDerived(pass, e.X, ctxParam, derived)
	}
	return false
}

// blocksBecause reports why fd can block, or "" if it provably
// cannot. Function literals are excluded: work launched on a
// goroutine does not block the caller.
func blocksBecause(pass *framework.Pass, fd *ast.FuncDecl) string {
	why := ""
	var scan func(n ast.Node)
	scan = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			if why != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.SendStmt:
				why = "channel send"
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					why = "channel receive"
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						why = "range over a channel"
					}
				}
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					why = "blocking select"
					return false
				}
				// A select with a default polls: its comm clauses
				// cannot block, but their bodies still might.
				for _, c := range n.Body.List {
					for _, st := range c.(*ast.CommClause).Body {
						scan(st)
					}
				}
				return false
			case *ast.CallExpr:
				switch {
				case isPkgCall(pass, n, "time", "Sleep"):
					why = "time.Sleep"
				case isSyncWait(pass, n):
					why = "sync Wait"
				case calleeTakesCtx(pass, n):
					why = "calls a context-accepting function"
				}
			}
			return true
		})
	}
	scan(fd.Body)
	return why
}

// isExportedAPI reports whether fd is callable from outside the
// package: exported name, and for methods an exported receiver type.
func isExportedAPI(pass *framework.Pass, fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// firstParamCtx returns the first parameter when it is a
// context.Context, else nil.
func firstParamCtx(pass *framework.Pass, fd *ast.FuncDecl) types.Object {
	params := fd.Type.Params
	if params == nil || len(params.List) == 0 {
		return nil
	}
	field := params.List[0]
	if len(field.Names) == 0 {
		return nil
	}
	obj := pass.Info.Defs[field.Names[0]]
	if obj == nil || !isContextType(obj.Type()) {
		return nil
	}
	return obj
}

// hasCtxStructParam reports whether any parameter is a struct (or
// pointer to one) with a context.Context field — the Params.Ctx
// convention for option-struct APIs.
func hasCtxStructParam(pass *framework.Pass, fd *ast.FuncDecl) bool {
	params := fd.Type.Params
	if params == nil {
		return false
	}
	for _, field := range params.List {
		if len(field.Names) == 0 {
			continue
		}
		obj := pass.Info.Defs[field.Names[0]]
		if obj == nil {
			continue
		}
		t := obj.Type()
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if isContextType(st.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

// calleeTakesCtx reports whether the call's callee declares a
// context.Context first parameter (the conventional marker of a
// blocking, cancellable API).
func calleeTakesCtx(pass *framework.Pass, call *ast.CallExpr) bool {
	var sig *types.Signature
	switch f := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[f].(*types.Func); ok {
			sig, _ = fn.Type().(*types.Signature)
		} else if obj := pass.Info.Uses[f]; obj != nil {
			sig, _ = obj.Type().Underlying().(*types.Signature)
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[f.Sel].(*types.Func); ok {
			sig, _ = fn.Type().(*types.Signature)
		}
	}
	if sig == nil || sig.Params().Len() == 0 {
		return false
	}
	return isContextType(sig.Params().At(0).Type())
}

// contextPkgFunc returns the name of the context-package function
// call (Background, TODO, WithCancel, ...) or "".
func contextPkgFunc(pass *framework.Pass, call *ast.CallExpr) string {
	if call == nil {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	return fn.Name()
}

func argCall(e ast.Expr) *ast.CallExpr {
	call, _ := e.(*ast.CallExpr)
	return call
}

func isPkgCall(pass *framework.Pass, call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkg
}

func isSyncWait(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	return true
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
