// Package droppederr flags silently discarded errors in the packages
// where a dropped error once cost real debugging time: experiment
// bodies and the report/render path (PR 2's attachPGM dropped render
// errors on the floor, and the bug only surfaced as missing chart
// artifacts much later). Within the scoped packages it reports:
//
//   - a call used as a statement whose results include an error;
//   - an error result assigned to the blank identifier;
//   - a deferred call whose error cannot be observed.
//
// Writes to *strings.Builder and *bytes.Buffer are exempt (their Write
// is documented to never return a non-nil error); anything else needs
// handling or an explicit `//spylint:allow droppederr <reason>`.
package droppederr

import (
	"go/ast"
	"go/types"
	"strings"

	"spylint/internal/framework"
)

// Packages scopes the check to experiment bodies and the report/render
// path. Repo-wide error-style enforcement is a non-goal: simulator hot
// paths use panics for invariant violations, and the service layer has
// its own error discipline.
var Packages = []string{
	"spybox/internal/expt",
	"spybox/internal/plot",
	"spybox/pkg/spybox/report",
}

var Analyzer = &framework.Analyzer{
	Name: "droppederr",
	Doc:  "flag discarded error returns in experiment bodies and the report/render path",
	Run:  run,
}

func run(pass *framework.Pass) {
	scoped := false
	for _, p := range Packages {
		if pass.PkgPath == p {
			scoped = true
			break
		}
	}
	if !scoped {
		return
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if hasErrorResult(pass, call) && !exempt(pass, call) {
						pass.Reportf(call.Pos(), "error result discarded; handle it or annotate why it cannot matter")
					}
				}
			case *ast.DeferStmt:
				if hasErrorResult(pass, n.Call) && !exempt(pass, n.Call) {
					pass.Reportf(n.Call.Pos(), "deferred call discards its error; capture it in a closure or annotate why it cannot matter")
				}
			case *ast.AssignStmt:
				checkBlankErr(pass, n)
			}
			return true
		})
	}
}

// checkBlankErr reports error results assigned to the blank identifier.
func checkBlankErr(pass *framework.Pass, n *ast.AssignStmt) {
	resultType := func(i int) types.Type {
		if len(n.Rhs) == len(n.Lhs) {
			if tv, ok := pass.Info.Types[n.Rhs[i]]; ok {
				return tv.Type
			}
			return nil
		}
		// Tuple form: x, _ := call().
		if len(n.Rhs) != 1 {
			return nil
		}
		tv, ok := pass.Info.Types[n.Rhs[0]]
		if !ok {
			return nil
		}
		if tuple, ok := tv.Type.(*types.Tuple); ok && i < tuple.Len() {
			return tuple.At(i).Type()
		}
		return nil
	}
	for i, lhs := range n.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if t := resultType(i); t != nil && isErrorType(t) {
			pass.Reportf(id.Pos(), "error explicitly discarded with _; handle it or annotate why it cannot matter")
		}
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func hasErrorResult(pass *framework.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// exempt reports whether the call's error is one that cannot be
// non-nil: a method on *strings.Builder / *bytes.Buffer, or an
// fmt.Fprint* writing to one of those.
func exempt(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		return isInfallibleWriter(recv.Type())
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		if tv, ok := pass.Info.Types[call.Args[0]]; ok {
			return isInfallibleWriter(tv.Type)
		}
	}
	return false
}

func isInfallibleWriter(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	return full == "strings.Builder" || full == "bytes.Buffer"
}
